// Fault-injection bench and property-based scenario fuzzer driver.
//
// Default mode: a table of swarm outcomes (leech completion, goodput, applied
// faults) under canonical fault schedules — the regression surface for the
// fault layer itself. Extra modes:
//
//   --fuzz N            run N random scenarios through exp::ScenarioFuzzer on
//                       the worker pool; any failure is shrunk to a minimal
//                       reproducing scenario and printed for the corpus
//                       (tests/integration/corpus/). Exit 1 on failure.
//   --fuzz-seed S       base seed for --fuzz (default 1).
//   --max-cells N       enable the fuzzer's cellular slice: generated
//                       scenarios may request up to N-cell topologies with
//                       cellular stations and cell-targeted faults (outage,
//                       BER, roam storms). Default 0 keeps the legacy
//                       scenario space byte-identical.
//   --max-classes N     enable the fuzzer's bandwidth-class slice: wired
//                       leeches may be assigned one of N heterogeneous
//                       bandwidth tiers (class= scenario key; link shape +
//                       upload limit from exp::three_tier_classes, cycled).
//                       Default 0 keeps the legacy scenario space
//                       byte-identical.
//   --max-adversaries N enable the fuzzer's adversary slice: generated
//                       scenarios may add up to N scripted misbehaving peers
//                       (adv= scenario key; kinds from bt/adversary.hpp).
//                       Default 0 keeps the legacy scenario space
//                       byte-identical.
//   --max-suspends N    enable the fuzzer's suspend/resume slice: generated
//                       scenarios may suspend apps mid-run (susp=/store=
//                       scenario keys; every honest peer journals resume
//                       snapshots through fault-injected stable storage —
//                       torn writes, stale drops, commit stalls). Default 0
//                       keeps the legacy scenario space byte-identical.
//   --replay FILE       parse a scenario spec (see TESTING.md) and run it
//                       once; exit 1 if it fails.
//   --break-cwnd-floor  disable TCP's 1-MSS cwnd floor in fuzzed/replayed
//                       scenarios. The invariant checker must catch this —
//                       it is the fuzz harness's self-test.
//   --no-ban            disable corruption banning (ClientConfig
//                       unsafe_no_peer_ban) in fuzzed/replayed scenarios;
//                       the peer-ban invariant rule must catch this.
//   --no-enforcement    disable the protocol-enforcement actions (ClientConfig
//                       unsafe_no_enforcement: detections still count and
//                       trace, strikes never fire) in fuzzed/replayed
//                       scenarios; under adversary peers the enforce-*
//                       invariant rules must catch this.
//   --blackout          run only the tracker-blackout survivability table:
//                       completion under a total tracker blackout with each
//                       of {naive, failover, failover+PEX, +bootstrap-cache}.
//                       The full stack completes during the blackout; the
//                       naive swarm stalls until the primary returns. Exit 1
//                       if that contract breaks. (Also part of the default
//                       table run.)
//   --poison            recovery-layer self-test: a swarm with a poisoning
//                       seed (whole-run kCorrupt fault) is run twice. With
//                       banning disabled the leeches keep accepting damaged
//                       pieces (waste inflates, invariants flag the run);
//                       with banning enabled they ban the poisoner and
//                       complete from the clean seed. Exit 1 if either half
//                       misbehaves.
#include <cstring>
#include <fstream>
#include <sstream>

#include "common.hpp"
#include "exp/scenario_fuzzer.hpp"

namespace wp2p {
namespace {

struct FaultBenchOptions {
  int fuzz = 0;
  std::uint64_t fuzz_seed = 1;
  int max_cells = 0;
  int max_classes = 0;
  int max_adversaries = 0;
  int max_suspends = 0;
  std::string replay_path;
  bool break_cwnd_floor = false;
  bool no_ban = false;
  bool no_enforcement = false;
  bool poison = false;
  bool blackout_only = false;
};

FaultBenchOptions& fault_options() {
  static FaultBenchOptions opts;
  return opts;
}

// --- Canonical fault-plan table ----------------------------------------------

struct NamedPlan {
  const char* label;
  sim::FaultPlan plan;
};

sim::FaultAction make_action(sim::FaultKind kind, double at_s, double dur_s, double mag,
                             std::string target) {
  sim::FaultAction a;
  a.kind = kind;
  a.at = sim::seconds(at_s);
  a.duration = sim::seconds(dur_s);
  a.magnitude = mag;
  a.target = std::move(target);
  return a;
}

// The fixed swarm under test: one wired seed, a wireless wP2P leech, a
// wireless default leech, and a wired leech. Names are what the plans target.
std::vector<exp::ScenarioPeer> canonical_peers() {
  return {
      {.name = "seed0", .wireless = false, .is_seed = true, .wp2p = false, .preload = 0.0},
      {.name = "mob-w", .wireless = true, .is_seed = false, .wp2p = true, .preload = 0.0},
      {.name = "mob-d", .wireless = true, .is_seed = false, .wp2p = false, .preload = 0.0},
      {.name = "fix-l", .wireless = false, .is_seed = false, .wp2p = false, .preload = 0.2},
  };
}

std::vector<NamedPlan> canonical_plans() {
  std::vector<NamedPlan> plans;
  plans.push_back({"baseline (no faults)", {}});
  plans.push_back({"link flaps", {{
      make_action(sim::FaultKind::kLinkFlap, 40, 12, 0, "mob-w"),
      make_action(sim::FaultKind::kLinkFlap, 90, 8, 0, "fix-l"),
  }}});
  plans.push_back({"BER episode", {{
      make_action(sim::FaultKind::kBerEpisode, 30, 50, 2e-5, "mob-w"),
      make_action(sim::FaultKind::kBerEpisode, 45, 40, 2e-5, "mob-d"),
  }}});
  plans.push_back({"hand-off storm", {{
      make_action(sim::FaultKind::kHandoffStorm, 50, 20, 4, "mob-w"),
      make_action(sim::FaultKind::kHandoffStorm, 70, 20, 4, "mob-d"),
  }}});
  plans.push_back({"tracker outage", {{
      make_action(sim::FaultKind::kTrackerOutage, 25, 70, 0, ""),
  }}});
  plans.push_back({"peer crash/restart", {{
      make_action(sim::FaultKind::kPeerCrash, 60, 25, 0, "fix-l"),
  }}});
  plans.push_back({"dup+reorder chaos", {{
      make_action(sim::FaultKind::kDuplicate, 20, 120, 0.1, "mob-w"),
      make_action(sim::FaultKind::kReorder, 20, 120, 0.1, "fix-l"),
      make_action(sim::FaultKind::kHandoff, 80, 0, 0, "mob-d"),
  }}});
  plans.push_back({"payload corruption", {{
      make_action(sim::FaultKind::kCorrupt, 15, 40, 0.2, "mob-w"),
  }}});
  return plans;
}

struct PlanOutcome {
  double completion = 0.0;  // mean completed fraction across leeches
  double goodput = 0.0;     // swarm payload-download rate, bytes/s
  double faults = 0.0;
  double violations = 0.0;
};

PlanOutcome run_canonical(std::uint64_t seed, const sim::FaultPlan& plan,
                          double duration_s) {
  exp::Scenario scenario;
  scenario.seed = seed;
  scenario.duration_s = duration_s;
  // Large enough that the download spans most of the window, so disruptive
  // schedules show up in completion/goodput instead of finishing early.
  scenario.file_size = 32 << 20;
  scenario.piece_size = 256 * 1024;
  scenario.peers = canonical_peers();
  scenario.faults = plan;

  exp::ScenarioFuzzer fuzzer;
  const exp::FuzzVerdict verdict = fuzzer.run(scenario);

  PlanOutcome out;
  int leeches = 0;
  for (const auto& p : scenario.peers) leeches += p.is_seed ? 0 : 1;
  out.completion = leeches > 0
                       ? static_cast<double>(verdict.completed_leeches) / leeches
                       : 0.0;
  out.goodput = static_cast<double>(verdict.bytes_downloaded) / duration_s;
  out.faults = static_cast<double>(verdict.faults_applied);
  out.violations = static_cast<double>(verdict.violations.size()) +
                   static_cast<double>(verdict.property_failures.size());
  return out;
}

// --- Announce recovery after a tracker outage ---------------------------------

// Watches one client's announce stream: records when the tracker outage
// lifted and when the client's first successful announce after it landed.
struct RecoverySink final : trace::Sink {
  sim::SimTime outage_end = -1;
  sim::SimTime first_ok = -1;
  void on_event(const trace::TraceEvent& ev) override {
    if (ev.kind == trace::Kind::kFaultEnd && ev.aux == "tracker-outage") {
      if (outage_end < 0) outage_end = ev.time;
    } else if (ev.kind == trace::Kind::kBtAnnounce && ev.node == "mob" &&
               outage_end >= 0 && first_ok < 0 && ev.field("ok") > 0.5) {
      first_ok = ev.time;
    }
  }
};

// A tracker outage (14-64 s) swallows the seed's first periodic announce
// (random phase in [0.25, 1.0] x interval = [15, 60] s). With retry the
// backoff chain lands a fresh announce seconds after the outage lifts;
// without it the client waits for the next periodic announce, up to a full
// announce_interval of avoidable swarm blindness. The watched client is a
// seed so no mid-run completion re-anchors its announce schedule.
double announce_recovery_seconds(std::uint64_t seed, bool retry) {
  trace::Recorder recorder{/*ring_capacity=*/4};
  RecoverySink sink;
  recorder.add_sink(&sink);
  auto meta = bt::Metainfo::create("rec", 4 << 20, 256 * 1024, "tr", seed);
  exp::Swarm swarm{seed, meta};
  swarm.world.sim.set_tracer(&recorder);
  bt::ClientConfig config;
  config.announce_interval = sim::seconds(60.0);
  swarm.add_wired("seed0", /*is_seed=*/true, config);
  config.listen_port = 6882;
  config.announce_retry = retry;
  config.announce_retry_cap = sim::seconds(8.0);
  swarm.add_wireless("mob", /*is_seed=*/true, config);
  sim::FaultPlan plan;
  plan.actions.push_back(make_action(sim::FaultKind::kTrackerOutage, 14, 50, 0, ""));
  auto injector = exp::bind_faults(swarm, plan);
  swarm.start_all();
  swarm.run_for(130.0);
  swarm.world.sim.set_tracer(nullptr);
  if (sink.outage_end < 0 || sink.first_ok < 0) return -1.0;
  return sim::to_seconds(sink.first_ok - sink.outage_end);
}

int announce_recovery_table() {
  metrics::Table table{"Time from tracker-outage end to first successful announce "
                       "(outage 14-64 s over the first periodic announce, interval 60 s, retry cap 8 s)"};
  table.columns({"client", "recovery (s)"});
  double with_retry = 0.0, without_retry = 0.0;
  for (const bool retry : {true, false}) {
    metrics::RunStats recovery;
    for (const double r : bench::over_seeds_map<double>(
             3, 7100, [&](std::uint64_t s) { return announce_recovery_seconds(s, retry); })) {
      if (r >= 0.0) recovery.add(r);
    }
    (retry ? with_retry : without_retry) = recovery.mean();
    table.row({retry ? "announce retry (backoff)" : "periodic announce only",
               metrics::Table::num(recovery.mean())});
  }
  bench::show(table);
  bench::print_shape_note(
      "the retry chain recovers within seconds of the outage lifting; the "
      "naive client stays dark for the rest of its announce interval");
  // The whole point of the retry schedule: recovery must beat waiting for
  // the next periodic announce by a wide margin.
  return with_retry >= 0.0 && without_retry > 0.0 && with_retry < without_retry / 2.0
             ? 0
             : 1;
}

int fault_table() {
  const double duration_s = 60.0;
  metrics::Table table{"Swarm outcomes under canonical fault schedules "
                       "(1 seed + 3 leeches, 32 MB, 60 s)"};
  table.columns({"fault schedule", "leech completion %", "goodput (KBps)",
                 "faults applied", "violations"});
  double total_violations = 0.0;
  for (const NamedPlan& named : canonical_plans()) {
    metrics::RunStats completion, goodput, faults, violations;
    for (const PlanOutcome& out : bench::over_seeds_map<PlanOutcome>(
             5, 4200, [&](std::uint64_t s) { return run_canonical(s, named.plan, duration_s); })) {
      completion.add(out.completion * 100.0);
      goodput.add(out.goodput);
      faults.add(out.faults);
      violations.add(out.violations);
    }
    total_violations += violations.mean() * static_cast<double>(violations.count());
    table.row({named.label, metrics::Table::num(completion.mean()),
               bench::kbps(goodput.mean()), metrics::Table::num(faults.mean()),
               metrics::Table::num(violations.mean() * static_cast<double>(violations.count()), 0)});
  }
  bench::show(table);
  bench::print_shape_note(
      "every schedule completes with zero protocol-invariant violations; "
      "disruptive schedules (storms, outages, crashes) cost completion/goodput "
      "but never correctness");
  return total_violations > 0.0 ? 1 : 0;
}

// --- Tracker-blackout survivability -------------------------------------------

struct SurvivalConfig {
  const char* label;
  bool failover = false;
  bool pex = false;
  bool cache = false;
};

// The survivability testbed: one wired seed, three wired leeches, and a
// mobile wireless leech. The primary tracker dies almost immediately (2-242 s)
// and the backup tier dies at 10 s for 140 s, so the swarm is totally dark
// from 10 s to 150 s. Inside that window the mobile host crashes, restarts,
// and hands off to a new address — the worst case the paper's Section 5
// testbeds gesture at: nobody can learn its new endpoint from any tracker.
// Tracker announces are also sparse (1 peer per response), so gossip is what
// densifies the mesh.
exp::Scenario blackout_scenario(std::uint64_t seed, const SurvivalConfig& cfg) {
  exp::Scenario s;
  s.seed = seed;
  s.duration_s = 300.0;
  s.file_size = 8 << 20;
  s.piece_size = 256 * 1024;
  s.trackers = 2;       // primary + one backup tier (same list for every config)
  s.tracker_peers = 1;  // sparse responses: discovery must come from the swarm
  s.failover = cfg.failover;
  s.pex = cfg.pex;
  s.bootstrap = cfg.cache;
  s.peers = {
      {.name = "seed0", .wireless = false, .is_seed = true, .wp2p = false, .preload = 0.0},
      {.name = "l0", .wireless = false, .is_seed = false, .wp2p = false, .preload = 0.0},
      {.name = "l1", .wireless = false, .is_seed = false, .wp2p = false, .preload = 0.0},
      {.name = "l2", .wireless = false, .is_seed = false, .wp2p = false, .preload = 0.0},
      {.name = "mob", .wireless = true, .is_seed = false, .wp2p = true, .preload = 0.0},
  };
  s.faults.actions = {
      make_action(sim::FaultKind::kTrackerOutage, 2, 240, 0, ""),     // primary
      make_action(sim::FaultKind::kTrackerOutage, 10, 140, 0, "tr1"), // backup tier
      make_action(sim::FaultKind::kPeerCrash, 25, 10, 0, "mob"),
      make_action(sim::FaultKind::kHandoff, 35.5, 0, 0, "mob"),
  };
  return s;
}

struct SurvivalOutcome {
  double completed = 0.0;  // leeches complete at end of run
  double mean_s = -1.0;    // mean leech completion time
  double last_s = -1.0;    // slowest leech (the mobile host's rejoin proxy)
  double violations = 0.0;
  bool full_by_150 = false;   // whole swarm done inside the blackout window
  bool dark_until_240 = false;  // nobody finished the swarm before the primary returned
};

SurvivalOutcome run_blackout(std::uint64_t seed, const SurvivalConfig& cfg) {
  exp::ScenarioFuzzer fuzzer;
  const exp::Scenario scenario = blackout_scenario(seed, cfg);
  const exp::FuzzVerdict verdict = fuzzer.run(scenario);
  int leeches = 0;
  for (const auto& p : scenario.peers) leeches += p.is_seed ? 0 : 1;
  SurvivalOutcome out;
  out.completed = static_cast<double>(verdict.completed_leeches);
  out.mean_s = verdict.mean_leech_completion_s;
  out.last_s = verdict.last_leech_completion_s;
  out.violations = static_cast<double>(verdict.violations.size()) +
                   static_cast<double>(verdict.property_failures.size());
  out.full_by_150 = verdict.completed_leeches == leeches && verdict.last_leech_completion_s >= 0 &&
                    verdict.last_leech_completion_s < 150.0;
  out.dark_until_240 =
      verdict.completed_leeches < leeches || verdict.last_leech_completion_s >= 240.0;
  return out;
}

int blackout_table() {
  const SurvivalConfig configs[] = {
      {.label = "naive (primary announce only)"},
      {.label = "failover", .failover = true},
      {.label = "failover+PEX", .failover = true, .pex = true},
      {.label = "failover+PEX+cache", .failover = true, .pex = true, .cache = true},
  };
  metrics::Table table{"Swarm survivability under total tracker blackout "
                       "(dark 10-150 s; mobile host crashes + hands off inside it; "
                       "1 seed + 4 leeches, 8 MB, 300 s)"};
  table.columns({"discovery stack", "leeches complete", "mean completion (s)",
                 "slowest leech (s)", "violations"});
  bool full_ok = true, naive_ok = true;
  double total_violations = 0.0;
  for (const SurvivalConfig& cfg : configs) {
    metrics::RunStats completed, mean_s, last_s, violations;
    for (const SurvivalOutcome& out : bench::over_seeds_map<SurvivalOutcome>(
             3, 5150, [&](std::uint64_t s) { return run_blackout(s, cfg); })) {
      completed.add(out.completed);
      if (out.mean_s >= 0) mean_s.add(out.mean_s);
      if (out.last_s >= 0) last_s.add(out.last_s);
      violations.add(out.violations);
      if (cfg.cache && !out.full_by_150) full_ok = false;
      if (!cfg.failover && !out.dark_until_240) naive_ok = false;
    }
    const double config_violations =
        violations.mean() * static_cast<double>(violations.count());
    total_violations += config_violations;
    table.row({cfg.label, metrics::Table::num(completed.mean()),
               mean_s.count() > 0 ? metrics::Table::num(mean_s.mean()) : "-",
               last_s.count() > 0 ? metrics::Table::num(last_s.mean()) : "-",
               metrics::Table::num(config_violations, 0)});
  }
  bench::show(table);
  bench::print_shape_note(
      "the full discovery stack re-knits the mobile host and finishes the "
      "whole swarm while every tracker is still dark; the naive swarm cannot "
      "finish until the primary tracker returns");
  int rc = 0;
  auto expect = [&](bool ok, const char* what) {
    std::printf("  %s: %s\n", ok ? "ok" : "FAIL", what);
    if (!ok) rc = 1;
  };
  expect(full_ok, "failover+PEX+cache: every leech completes inside the blackout");
  expect(naive_ok, "naive: swarm not complete before the primary tracker returns");
  expect(total_violations == 0.0, "no invariant violations in any configuration");
  return rc;
}

// --- Poison self-test ---------------------------------------------------------

exp::Scenario poison_scenario(bool no_ban) {
  exp::Scenario s;
  s.seed = 9000;
  s.duration_s = 120.0;
  s.file_size = 4 << 20;
  s.piece_size = 256 * 1024;
  s.peers = {
      {.name = "seed0", .wireless = false, .is_seed = true, .wp2p = false, .preload = 0.0},
      {.name = "venom", .wireless = false, .is_seed = true, .wp2p = false, .preload = 0.0},
      {.name = "l0", .wireless = false, .is_seed = false, .wp2p = false, .preload = 0.0},
      {.name = "l1", .wireless = false, .is_seed = false, .wp2p = false, .preload = 0.0},
  };
  // The poisoner's egress is damaged for the whole run: every piece it
  // serves fails verification at the receiver.
  s.faults.actions.push_back(make_action(sim::FaultKind::kCorrupt, 0.5, 119.0, 0.5, "venom"));
  s.unsafe_no_ban = no_ban;
  return s;
}

int poison_mode() {
  exp::ScenarioFuzzer fuzzer;
  const exp::FuzzVerdict banning = fuzzer.run(poison_scenario(/*no_ban=*/false));
  const exp::FuzzVerdict unbanned = fuzzer.run(poison_scenario(/*no_ban=*/true));

  metrics::Table table{"Poisoning seed vs corruption defense "
                       "(2 clean-seed leeches + 1 poisoner, 4 MB, 120 s)"};
  table.columns({"banning", "leeches complete", "wasted (MiB)", "bans",
                 "corrupt pieces", "violations"});
  auto row = [&](const char* label, const exp::FuzzVerdict& v) {
    table.row({label, metrics::Table::num(v.completed_leeches, 0),
               metrics::Table::num(static_cast<double>(v.wasted_bytes) / (1 << 20)),
               metrics::Table::num(static_cast<double>(v.peers_banned), 0),
               metrics::Table::num(static_cast<double>(v.corrupt_pieces), 0),
               metrics::Table::num(static_cast<double>(v.violations.size()), 0)});
  };
  row("enabled", banning);
  row("DISABLED (unsafe)", unbanned);
  bench::show(table);

  // Self-test contract: with banning the swarm shrugs the poisoner off; with
  // it disabled the waste balloons and the peer-ban invariant flags the run.
  int rc = 0;
  auto expect = [&](bool ok, const char* what) {
    std::printf("  %s: %s\n", ok ? "ok" : "FAIL", what);
    if (!ok) rc = 1;
  };
  expect(banning.completed_leeches == 2, "banning on: both leeches complete");
  expect(banning.peers_banned >= 2, "banning on: both leeches ban the poisoner");
  expect(banning.violations.empty(), "banning on: no invariant violations");
  expect(!unbanned.violations.empty(),
         "banning off: invariant checker flags the run (peer-ban rule)");
  expect(unbanned.wasted_bytes > banning.wasted_bytes,
         "banning off: wasted bytes exceed the banning run");
  for (const trace::Violation& v : unbanned.violations) {
    if (v.rule != "peer-ban") continue;
    std::printf("  first flag: %s\n", trace::to_string(v).c_str());
    break;
  }
  return rc;
}

// --- Fuzz / replay modes ------------------------------------------------------

void print_failure(const exp::Scenario& scenario, const exp::FuzzVerdict& verdict) {
  std::printf("verdict: %s\n", verdict.summary().c_str());
  for (const trace::Violation& v : verdict.violations) {
    std::printf("  violation: %s\n", trace::to_string(v).c_str());
  }
  for (const std::string& p : verdict.property_failures) {
    std::printf("  property: %s\n", p.c_str());
  }
  std::printf("--- scenario spec (save under tests/integration/corpus/) ---\n%s",
              scenario.serialize().c_str());
}

int fuzz_mode() {
  const FaultBenchOptions& fopts = fault_options();
  exp::FuzzLimits limits;
  limits.max_cells = fopts.max_cells;
  limits.max_classes = fopts.max_classes;
  limits.max_adversaries = fopts.max_adversaries;
  limits.max_suspends = fopts.max_suspends;
  exp::ScenarioFuzzer fuzzer{limits};
  std::printf("fuzzing %d scenarios from seed %llu%s%s%s%s%s...\n", fopts.fuzz,
              static_cast<unsigned long long>(fopts.fuzz_seed),
              fopts.max_cells > 1 ? " (cellular slice enabled)" : "",
              fopts.max_classes > 1 ? " (bandwidth-class slice enabled)" : "",
              fopts.max_adversaries > 0 ? " (adversary slice enabled)" : "",
              fopts.max_suspends > 0 ? " (suspend/resume slice enabled)" : "",
              fopts.break_cwnd_floor ? " (cwnd floor DISABLED — failures expected)" : "");

  auto scenario_for = [&](std::uint64_t seed) {
    exp::Scenario s = fuzzer.generate(seed);
    s.unsafe_no_cwnd_floor = fault_options().break_cwnd_floor;
    s.unsafe_no_ban = fault_options().no_ban;
    s.unsafe_no_enforcement = fault_options().no_enforcement;
    return s;
  };

  std::vector<exp::ScenarioFuzzer::SweepResult> results =
      bench::runner().map<exp::ScenarioFuzzer::SweepResult>(fopts.fuzz, [&](int i) {
        const std::uint64_t seed = fopts.fuzz_seed + static_cast<std::uint64_t>(i);
        const exp::FuzzVerdict verdict = fuzzer.run(scenario_for(seed));
        exp::ScenarioFuzzer::SweepResult r;
        r.seed = seed;
        r.passed = verdict.passed;
        r.violations = verdict.violations.size();
        r.property_failures = verdict.property_failures.size();
        r.trace_hash = verdict.trace_hash;
        if (!verdict.violations.empty()) {
          r.first_failure = trace::to_string(verdict.violations.front());
        } else if (!verdict.property_failures.empty()) {
          r.first_failure = verdict.property_failures.front();
        }
        return r;
      });

  int failures = 0;
  for (const auto& r : results) {
    if (r.passed) continue;
    ++failures;
    std::printf("seed %llu FAILED: %s\n", static_cast<unsigned long long>(r.seed),
                r.first_failure.c_str());
  }
  std::printf("%d/%d scenarios passed\n", fopts.fuzz - failures, fopts.fuzz);
  if (failures == 0) return 0;

  // Shrink the first failure to the minimal reproducing scenario.
  for (const auto& r : results) {
    if (r.passed) continue;
    std::printf("shrinking seed %llu...\n", static_cast<unsigned long long>(r.seed));
    const exp::Scenario minimal = fuzzer.shrink(scenario_for(r.seed));
    print_failure(minimal, fuzzer.run(minimal));
    break;
  }
  return 1;
}

int replay_mode() {
  std::ifstream in{fault_options().replay_path};
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", fault_options().replay_path.c_str());
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto scenario = exp::Scenario::parse(buffer.str());
  if (!scenario) {
    std::fprintf(stderr, "malformed scenario spec: %s\n",
                 fault_options().replay_path.c_str());
    return 2;
  }
  if (fault_options().break_cwnd_floor) scenario->unsafe_no_cwnd_floor = true;
  if (fault_options().no_ban) scenario->unsafe_no_ban = true;
  if (fault_options().no_enforcement) scenario->unsafe_no_enforcement = true;

  exp::ScenarioFuzzer fuzzer;
  const exp::FuzzVerdict verdict = fuzzer.run(*scenario);
  if (verdict.passed) {
    std::printf("replay %s: %s\n", fault_options().replay_path.c_str(),
                verdict.summary().c_str());
    return 0;
  }
  print_failure(*scenario, verdict);
  return 1;
}

}  // namespace
}  // namespace wp2p

int main(int argc, char** argv) {
  // Peel off this binary's own flags before the shared parser (which rejects
  // anything it does not know).
  wp2p::FaultBenchOptions& fopts = wp2p::fault_options();
  std::vector<char*> shared_args{argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (++i >= argc) {
        std::fprintf(stderr, "%s expects a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[i];
    };
    if (arg == "--fuzz") {
      fopts.fuzz = std::atoi(value());
      if (fopts.fuzz <= 0) {
        std::fprintf(stderr, "--fuzz: bad count\n");
        return 2;
      }
    } else if (arg == "--fuzz-seed") {
      fopts.fuzz_seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--max-cells") {
      fopts.max_cells = std::atoi(value());
      if (fopts.max_cells < 0) {
        std::fprintf(stderr, "--max-cells: bad count\n");
        return 2;
      }
    } else if (arg == "--max-classes") {
      fopts.max_classes = std::atoi(value());
      if (fopts.max_classes < 0) {
        std::fprintf(stderr, "--max-classes: bad count\n");
        return 2;
      }
    } else if (arg == "--max-adversaries") {
      fopts.max_adversaries = std::atoi(value());
      if (fopts.max_adversaries < 0) {
        std::fprintf(stderr, "--max-adversaries: bad count\n");
        return 2;
      }
    } else if (arg == "--max-suspends") {
      fopts.max_suspends = std::atoi(value());
      if (fopts.max_suspends < 0) {
        std::fprintf(stderr, "--max-suspends: bad count\n");
        return 2;
      }
    } else if (arg == "--replay") {
      fopts.replay_path = value();
    } else if (arg == "--break-cwnd-floor") {
      fopts.break_cwnd_floor = true;
    } else if (arg == "--no-ban") {
      fopts.no_ban = true;
    } else if (arg == "--no-enforcement") {
      fopts.no_enforcement = true;
    } else if (arg == "--poison") {
      fopts.poison = true;
    } else if (arg == "--blackout") {
      fopts.blackout_only = true;
    } else {
      shared_args.push_back(argv[i]);
    }
  }
  wp2p::bench::ArgParser{static_cast<int>(shared_args.size()), shared_args.data()};

  int rc;
  if (!fopts.replay_path.empty()) {
    rc = wp2p::replay_mode();
  } else if (fopts.fuzz > 0) {
    rc = wp2p::fuzz_mode();
  } else if (fopts.poison) {
    rc = wp2p::poison_mode();
  } else if (fopts.blackout_only) {
    rc = wp2p::blackout_table();
  } else {
    rc = wp2p::fault_table();
    const int recovery_rc = wp2p::announce_recovery_table();
    if (rc == 0) rc = recovery_rc;
    const int blackout_rc = wp2p::blackout_table();
    if (rc == 0) rc = blackout_rc;
  }
  wp2p::bench::print_runner_summary();
  const int trace_rc = wp2p::bench::trace_report();
  return rc != 0 ? rc : trace_rc;
}
