// Figure 8 — Evaluation of wP2P's AM and IA components.
//
// (a) Age-based Manipulation: two wireless leeches holding complementary
//     halves of a 100 MB file exchange over bi-directional TCP while the BER
//     of their wireless legs is swept. One runs the default client, the other
//     wP2P with AM: decoupled pure ACKs survive bit errors that kill
//     piggybacked ACK carriers, and DUPACK throttling sheds load during loss
//     recovery. wP2P's download rate should lead by roughly 20%.
// (b) Identity retention: two mobile leeches (default vs wP2P-IA) download a
//     688 MB image from a fixed swarm while their IP address changes every
//     minute. The default client re-joins as a stranger each time and loses
//     its tit-for-tat credit; wP2P keeps its peer-id and resumes with its
//     accumulated standing.
// (c) LIHD: a mobile leech on a shared channel whose physical bandwidth is
//     swept 50..200 KBps. The default client uploads whatever is demanded and
//     self-contends; LIHD finds the smallest upload rate that sustains the
//     maximum download rate.
#include "common.hpp"
#include "core/wp2p_client.hpp"

namespace wp2p {
namespace {

// --- Figure 8(a) ---------------------------------------------------------------

struct AmResult {
  double default_rate = 0.0;
  double wp2p_rate = 0.0;
};

AmResult run_am(std::uint64_t seed, double ber, double duration_s) {
  exp::World world{seed};
  bench::ScopedTrace trace{world.sim, "fig8a/am ber=" + std::to_string(ber)};
  bt::Tracker tracker{world.sim};
  auto meta = bt::Metainfo::create("file100", 100 * 1000 * 1000, 256 * 1024, "tr", 8);

  // Both mobile hosts sit behind their own emulated wireless leg (Fig. 10's
  // testbed): raw-ish error model, small-window P2P TCP (see Fig. 2a).
  net::WirelessParams wless;
  wless.capacity = util::Rate::kBps(120.0);
  wless.bit_error_rate = ber;
  wless.mac_retries = 0;  // the paper's ns-2 error emulation: losses reach TCP
  tcp::TcpParams small_window;
  small_window.rwnd = 4 * 1024;  // per-connection share in a busy P2P host

  bt::ClientConfig base;
  base.announce_interval = sim::seconds(60.0);

  // Default client.
  auto& host_a = world.add_wireless_host("default", wless, small_window);
  bt::Client default_client{*host_a.node, *host_a.stack, tracker, meta, base, false};
  // wP2P client with only the AM component enabled.
  auto& host_b = world.add_wireless_host("wp2p", wless, small_window);
  core::WP2PConfig wcfg;
  wcfg.age_based_manipulation = true;
  wcfg.incentive_aware = false;
  wcfg.mobility_aware = false;
  wcfg.base = base;
  core::WP2PClient wp2p_client{*host_b.node, *host_b.stack, tracker, meta, wcfg};

  // Complementary halves: each leech needs exactly what the other holds.
  std::vector<int> even, odd;
  for (int p = 0; p < meta.piece_count(); ++p) (p % 2 == 0 ? even : odd).push_back(p);
  default_client.preload_pieces(even);
  wp2p_client.client().preload_pieces(odd);

  auto faults = bench::apply_bench_faults(world, &tracker, seed, duration_s);
  default_client.start();
  wp2p_client.start();
  world.sim.run_until(sim::seconds(duration_s));
  return AmResult{
      static_cast<double>(default_client.stats().payload_downloaded) / duration_s,
      static_cast<double>(wp2p_client.client().stats().payload_downloaded) / duration_s};
}

void figure_8a() {
  const double bers[] = {1e-6, 5e-6, 1e-5, 1.5e-5};
  metrics::Table table{"Figure 8(a): AM — download throughput vs BER, default vs wP2P"};
  table.columns({"BER", "default (KBps)", "wP2P (KBps)", "wP2P/default"});
  for (double ber : bers) {
    auto results = bench::over_seeds_map<AmResult>(5, 1100, [&](std::uint64_t s) {
      return run_am(s, ber, 240.0);
    });
    metrics::RunStats def, wp;
    for (const AmResult& res : results) {
      def.add(res.default_rate);
      wp.add(res.wp2p_rate);
    }
    table.row({metrics::Table::num(ber * 1e6, 1) + "e-6", bench::kbps(def.mean()),
               bench::kbps(wp.mean()),
               metrics::Table::num(wp.mean() / std::max(def.mean(), 1.0), 2)});
  }
  bench::show(table);
  bench::print_shape_note("wP2P outperforms the default client at every BER, by roughly "
                          "20% (paper Fig. 8a)");
}

// --- Figure 8(b) ----------------------------------------------------------------

std::vector<double> run_identity(std::uint64_t seed, bool retain_id, double minutes_total) {
  exp::World world{seed};
  bench::ScopedTrace trace{world.sim, std::string{"fig8b/identity "} +
                                          (retain_id ? "retain" : "default")};
  bt::Tracker tracker{world.sim};
  // The paper downloads a 688 MB Fedora image from a ~200-peer swarm; we keep
  // the size and shrink the swarm, scaling per-peer rates accordingly.
  auto meta = bt::Metainfo::create("fedora.iso", 688 * 1000 * 1000, 256 * 1024, "tr", 9);

  bt::ClientConfig fixed_config;
  fixed_config.announce_interval = sim::minutes(2.0);
  fixed_config.unchoke_slots = 2;
  fixed_config.optimistic_interval = sim::seconds(30.0);

  std::vector<std::unique_ptr<bt::Client>> fixed;
  {
    bt::ClientConfig sc = fixed_config;
    sc.upload_limit = util::Rate::kBps(40.0);
    auto& host = world.add_wired_host("seed");
    fixed.push_back(
        std::make_unique<bt::Client>(*host.node, *host.stack, tracker, meta, sc, true));
  }
  for (int i = 0; i < 10; ++i) {
    bt::ClientConfig lc = fixed_config;
    lc.upload_limit = util::Rate::kBps(40.0);
    auto& host = world.add_wired_host("leech" + std::to_string(i));
    fixed.push_back(
        std::make_unique<bt::Client>(*host.node, *host.stack, tracker, meta, lc, false));
    fixed.back()->preload(0.1 + 0.05 * static_cast<double>(i));
  }

  net::WirelessParams wless;
  wless.capacity = util::Rate::kBps(400.0);
  auto& mobile = world.add_wireless_host("mobile", wless);
  bt::ClientConfig mc = fixed_config;
  mc.upload_limit = util::Rate::kBps(60.0);
  mc.retain_peer_id = retain_id;  // the IA identity-retention switch
  bt::Client client{*mobile.node, *mobile.stack, tracker, meta, mc, false};

  for (auto& c : fixed) c->start();
  client.start();
  auto mobility = bench::make_mobility(world, *mobile.node, sim::minutes(1.0));

  std::vector<double> mb_at;
  const int samples = 10;
  for (int i = 1; i <= samples; ++i) {
    world.sim.run_until(sim::minutes(minutes_total * i / samples));
    mb_at.push_back(static_cast<double>(client.stats().payload_downloaded) / 1e6);
  }
  return mb_at;
}

void figure_8b() {
  // Two independent single-seed worlds (default vs wP2P-IA): run both at once.
  // Trace the retain-id curve — it is the one whose bt.handoff/bt.recover
  // events carry the IA story.
  auto curves = bench::runner().map<std::vector<double>>(2, [&](int i) {
    const bool was_eligible = bench::trace_eligible();
    bench::trace_eligible() = (i == 1);
    std::vector<double> result = run_identity(bench::base_seed(1200), /*retain_id=*/i == 1, 50.0);
    bench::trace_eligible() = was_eligible;
    return result;
  });
  const std::vector<double>& def = curves[0];
  const std::vector<double>& wp = curves[1];
  metrics::Table table{
      "Figure 8(b): identity retention — downloaded size vs time, IP change every 1 min"};
  table.columns({"t (min)", "default (MB)", "wP2P (MB)"});
  for (std::size_t i = 0; i < def.size(); ++i) {
    table.row({metrics::Table::num(50.0 * static_cast<double>(i + 1) / 10.0, 0),
               metrics::Table::num(def[i]), metrics::Table::num(wp[i])});
  }
  bench::show(table);
  bench::print_shape_note("wP2P downloads substantially more than the default client over "
                          "50 minutes of per-minute hand-offs (paper Fig. 8b: ~100 MB more)");
}

// --- Figure 8(c) -----------------------------------------------------------------

double run_lihd(std::uint64_t seed, double bandwidth_kbps, bool use_lihd, double duration_s) {
  exp::World world{seed};
  bench::ScopedTrace trace{world.sim, "fig8c/lihd bw=" + std::to_string(bandwidth_kbps) +
                                          (use_lihd ? " lihd" : " default")};
  bt::Tracker tracker{world.sim};
  auto meta = bt::Metainfo::create("file", 64 * 1000 * 1000, 256 * 1024, "tr", 10);

  bt::ClientConfig fixed_config;
  fixed_config.announce_interval = sim::seconds(60.0);
  fixed_config.unchoke_slots = 2;
  fixed_config.optimistic_interval = sim::seconds(60.0);
  std::vector<std::unique_ptr<bt::Client>> fixed;
  {
    bt::ClientConfig sc = fixed_config;
    sc.upload_limit = util::Rate::kBps(75.0);
    auto& host = world.add_wired_host("seed");
    fixed.push_back(
        std::make_unique<bt::Client>(*host.node, *host.stack, tracker, meta, sc, true));
  }
  for (int i = 0; i < 8; ++i) {
    bt::ClientConfig lc = fixed_config;
    lc.upload_limit = util::Rate::kBps(36.0) * (0.4 + 0.2 * static_cast<double>(i));
    auto& host = world.add_wired_host("leech" + std::to_string(i));
    fixed.push_back(
        std::make_unique<bt::Client>(*host.node, *host.stack, tracker, meta, lc, false));
    fixed.back()->preload(0.15 + 0.07 * static_cast<double>(i));
  }
  for (int i = 0; i < 3; ++i) {
    bt::ClientConfig lc = fixed_config;
    lc.upload_limit = util::Rate::kBps(6.0);
    lc.pipeline_depth = 64;
    auto& host = world.add_wired_host("slow" + std::to_string(i));
    fixed.push_back(
        std::make_unique<bt::Client>(*host.node, *host.stack, tracker, meta, lc, false));
    fixed.back()->preload(0.05);
  }

  net::WirelessParams wless;
  wless.capacity = util::Rate::kBps(bandwidth_kbps);
  wless.contention_overhead = 1.0;
  auto& mobile = world.add_wireless_host("mobile", wless);

  bt::ClientConfig mc = fixed_config;
  std::unique_ptr<bt::Client> client;
  std::unique_ptr<core::LihdController> lihd;
  // Default CTorrent applies no upload limit at all and serves every
  // interested peer it can.
  mc.upload_limit = util::Rate::unlimited();
  mc.unchoke_slots = 5;
  client = std::make_unique<bt::Client>(*mobile.node, *mobile.stack, tracker, meta, mc,
                                        false);
  if (use_lihd) {
    core::LihdConfig lcfg;  // alpha = beta = 10 KBps, the paper's setting
    lcfg.max_upload = util::Rate::kBps(200.0);
    lihd = std::make_unique<core::LihdController>(world.sim, *client, lcfg);
  }

  for (auto& c : fixed) c->start();
  client->start();
  if (lihd) lihd->start();

  const double warmup_s = duration_s / 3.0;
  world.sim.run_until(sim::seconds(warmup_s));
  const std::int64_t down0 = client->stats().payload_downloaded;
  world.sim.run_until(sim::seconds(duration_s));
  return static_cast<double>(client->stats().payload_downloaded - down0) /
         (duration_s - warmup_s);
}

void figure_8c() {
  metrics::Table table{"Figure 8(c): LIHD — download throughput vs wireless bandwidth"};
  table.columns({"bandwidth (KBps)", "default (KBps)", "wP2P LIHD (KBps)", "wP2P/default"});
  for (double bw : {50.0, 100.0, 150.0, 200.0}) {
    auto def = bench::over_seeds(10, 1300, [&](std::uint64_t s) {
      return run_lihd(s, bw, false, 360.0);
    });
    auto wp = bench::over_seeds(10, 1300, [&](std::uint64_t s) {
      return run_lihd(s, bw, true, 360.0);
    });
    table.row({metrics::Table::num(bw, 0), bench::kbps(def.mean()), bench::kbps(wp.mean()),
               metrics::Table::num(wp.mean() / std::max(def.mean(), 1.0), 2)});
  }
  bench::show(table);
  bench::print_shape_note(
      "both rise with bandwidth at first; beyond a point the default client loses "
      "throughput to upload self-contention while LIHD keeps gaining — up to ~70% "
      "better at 200 KBps (paper Fig. 8c)");
}

}  // namespace
}  // namespace wp2p

int main(int argc, char** argv) {
  wp2p::bench::ArgParser{argc, argv};
  wp2p::figure_8a();
  wp2p::figure_8b();
  wp2p::figure_8c();
  wp2p::bench::print_runner_summary();
  return wp2p::bench::trace_report();
}
