// Shared scaffolding for the figure-reproduction benches.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "core/wp2p_client.hpp"
#include "exp/faults.hpp"
#include "exp/parallel_runner.hpp"
#include "exp/swarm.hpp"
#include "metrics/meters.hpp"
#include "metrics/table.hpp"
#include "trace_support.hpp"

namespace wp2p::bench {

// Process-wide bench configuration, populated by ArgParser in main() before
// any figure runs.
struct BenchOptions {
  int jobs = 0;                   // worker threads; 0 = one per hardware thread
  int runs_override = 0;          // 0 = keep each figure's default run count
  std::uint64_t seed_offset = 0;  // shifts every base seed
  bool csv = false;               // emit tables as CSV instead of aligned text
  bool faults = false;            // overlay a seeded background fault schedule
};

inline BenchOptions& options() {
  static BenchOptions opts;
  return opts;
}

// The pool every multi-seed sweep in this binary runs on. Constructed on
// first use, after ArgParser has set --jobs.
inline exp::ParallelRunner& runner() {
  static exp::ParallelRunner pool{options().jobs};
  return pool;
}

// Parser for the flags shared by every bench binary. Construct it first thing
// in main(); it fills options() and exits the process on --help or bad input.
class ArgParser {
 public:
  ArgParser(int argc, char** argv) {
    BenchOptions& opts = options();
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--help" || arg == "-h") {
        usage(argv[0], stdout);
        std::exit(0);
      } else if (arg == "--runs") {
        opts.runs_override = parse_int(arg, next_value(argc, argv, i), 1);
      } else if (arg == "--jobs") {
        opts.jobs = parse_int(arg, next_value(argc, argv, i), 1);
      } else if (arg == "--seed") {
        opts.seed_offset =
            static_cast<std::uint64_t>(parse_int(arg, next_value(argc, argv, i), 0));
      } else if (arg == "--csv") {
        opts.csv = true;
      } else if (arg == "--faults") {
        opts.faults = true;
      } else if (arg == "--trace") {
        trace_options().path = next_value(argc, argv, i);
      } else if (arg == "--check-invariants") {
        trace_options().check_invariants = true;
      } else {
        usage(argv[0], stderr);
        fail("unknown flag: " + arg);
      }
    }
    // Scenarios run directly on the main thread (not through a seed sweep)
    // are always the traced run.
    trace_eligible() = true;
  }

 private:
  static void usage(const char* prog, std::FILE* out) {
    std::fprintf(out,
                 "usage: %s [--runs N] [--jobs N] [--seed S] [--csv] [--faults]"
                 " [--trace FILE] [--check-invariants]\n"
                 "  --runs N  override every figure's seeded-run count\n"
                 "  --jobs N  worker threads for multi-seed sweeps"
                 " (default: one per hardware thread)\n"
                 "  --seed S  offset added to every base seed\n"
                 "  --csv     print tables as CSV rows\n"
                 "  --faults  overlay a seed-randomized background fault schedule\n"
                 "            (link flaps, BER episodes, hand-off storms, ...) on\n"
                 "            each scenario — stress mode, numbers will differ\n"
                 "  --trace FILE        write structured trace events (JSONL) for the\n"
                 "                      base-seed run of each scenario\n"
                 "  --check-invariants  replay traced events through the protocol\n"
                 "                      invariant checker; exit non-zero on violations\n",
                 prog);
  }

  [[noreturn]] static void fail(const std::string& message) {
    std::fprintf(stderr, "%s\n", message.c_str());
    std::exit(2);
  }

  static const char* next_value(int argc, char** argv, int& i) {
    if (++i >= argc) fail(std::string{argv[i - 1]} + " expects a value");
    return argv[i];
  }

  static int parse_int(const std::string& flag, const char* text, int min_value) {
    char* end = nullptr;
    const long value = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || value < min_value || value > 1 << 20) {
      fail(flag + ": bad value '" + text + "'");
    }
    return static_cast<int>(value);
  }
};

// Base seed with the --seed offset applied (over_seeds* apply it themselves;
// use this for single-run scenarios).
inline std::uint64_t base_seed(std::uint64_t seed) { return seed + options().seed_offset; }

// Run fn once per seed on the worker pool and return the per-seed results in
// seed order. Collection order is independent of thread interleaving, so any
// aggregate built from the returned vector is bit-identical for every --jobs
// value.
template <typename T>
std::vector<T> over_seeds_map(int runs, std::uint64_t seed,
                              const std::function<T(std::uint64_t)>& fn) {
  if (options().runs_override > 0) runs = options().runs_override;
  const std::uint64_t seed0 = base_seed(seed);
  // Only the base-seed run of a sweep is trace-eligible: one run per sweep
  // keeps --trace output a sequence of coherent scenarios instead of an
  // interleaving of every worker's events (and one JSONL file stays safe —
  // sweeps are sequential, so at most one traced run exists at a time).
  return runner().map<T>(runs, [&](int i) {
    const bool was_eligible = trace_eligible();
    trace_eligible() = (i == 0);
    T result = fn(seed0 + static_cast<std::uint64_t>(i));
    trace_eligible() = was_eligible;
    return result;
  });
}

// Average a scalar metric over independent seeded runs (the paper's
// "averaged over N runs").
inline metrics::RunStats over_seeds(int runs, std::uint64_t base_seed,
                                    const std::function<double(std::uint64_t)>& fn) {
  metrics::RunStats stats;
  for (double v : over_seeds_map<double>(runs, base_seed, fn)) stats.add(v);
  return stats;
}

// Print a finished table honouring --csv.
inline void show(const metrics::Table& table) {
  if (options().csv) {
    table.print_csv();
  } else {
    table.print();
  }
}

// Wall-clock accounting for the worker pool. Goes to stderr so stdout stays
// byte-comparable across --jobs values.
inline void print_runner_summary() {
  const exp::RunnerReport& r = runner().report();
  if (r.tasks == 0) return;
  std::fprintf(stderr,
               "parallel runner: %d seeded runs in %d batches, jobs=%d, "
               "task time %.1fs, wall %.1fs, speedup %.2fx\n",
               r.tasks, r.batches, runner().jobs(), r.task_seconds, r.wall_seconds,
               r.speedup());
}

// A population of fixed (wired) peers forming the remote side of a swarm.
struct FixedPeers {
  int seeds = 2;
  int leechers = 8;
  util::Rate seed_upload = util::Rate::kBps(100.0);
  util::Rate leech_upload = util::Rate::kBps(80.0);
  net::WiredParams link{};  // default: 10 Mbps symmetric
  bt::ClientConfig base{};
};

inline void add_fixed_peers(exp::Swarm& swarm, const FixedPeers& spec) {
  for (int i = 0; i < spec.seeds; ++i) {
    bt::ClientConfig config = spec.base;
    config.upload_limit = spec.seed_upload;
    swarm.add_wired("seed" + std::to_string(i), /*is_seed=*/true, config, spec.link);
  }
  for (int i = 0; i < spec.leechers; ++i) {
    bt::ClientConfig config = spec.base;
    config.upload_limit = spec.leech_upload;
    swarm.add_wired("leech" + std::to_string(i), /*is_seed=*/false, config, spec.link);
  }
}

// Under --faults, overlay a seed-randomized background fault schedule on an
// already-built swarm (call after all members are added, before start_all).
// Returns the owning injector, or null when --faults is off — keep it alive
// for the duration of the run. The plan derives from the run's seed, so a
// faulted sweep is exactly as reproducible as a clean one.
inline std::unique_ptr<net::FaultInjector> apply_bench_faults(exp::Swarm& swarm,
                                                              std::uint64_t seed,
                                                              double horizon_s) {
  if (!options().faults) return nullptr;
  std::vector<std::string> targets;
  std::vector<std::string> wireless;
  for (auto& member : swarm.members) {
    targets.push_back(member.host->node->name());
    if (member.host->wireless() != nullptr) wireless.push_back(targets.back());
  }
  sim::Rng rng{seed ^ 0xfa0175c1a0b5e27dULL};
  sim::FaultPlan plan =
      sim::FaultPlan::random(rng, targets, wireless, horizon_s, /*max_actions=*/4);
  return exp::bind_faults(swarm, std::move(plan));
}

// World-level variant for benches that assemble hosts and clients by hand.
// Network faults (flaps, BER, storms, duplication/reorder) apply in full;
// tracker outages flip `tracker` if given; peer-crash windows only sever the
// link (there is no registry mapping nodes to clients here).
inline std::unique_ptr<net::FaultInjector> apply_bench_faults(exp::World& world,
                                                              bt::Tracker* tracker,
                                                              std::uint64_t seed,
                                                              double horizon_s) {
  if (!options().faults) return nullptr;
  std::vector<std::string> targets;
  std::vector<std::string> wireless;
  for (auto& host : world.hosts) {
    targets.push_back(host.node->name());
    if (host.wireless() != nullptr) wireless.push_back(targets.back());
  }
  sim::Rng rng{seed ^ 0xfa0175c1a0b5e27dULL};
  sim::FaultPlan plan =
      sim::FaultPlan::random(rng, targets, wireless, horizon_s, /*max_actions=*/4);
  auto injector = std::make_unique<net::FaultInjector>(world.net, std::move(plan));
  if (tracker != nullptr) {
    // This path has a single tracker, so every named outage (and a blackout's
    // "*") lands on it.
    injector->on_tracker_outage = [tracker](const std::string&, bool down) {
      tracker->set_reachable(!down);
    };
  }
  return injector;
}

// Apply a periodic IP-address change to a host (the paper's emulated
// hand-offs via "ifup/ifdown"). `phase` staggers the first change so multiple
// mobile hosts do not hand off in lock-step. Returns the owning task.
inline std::unique_ptr<sim::PeriodicTask> make_mobility(exp::World& world, net::Node& node,
                                                        sim::SimTime interval,
                                                        double phase = 1.0) {
  auto task = std::make_unique<sim::PeriodicTask>(world.sim, interval,
                                                  [&node] { node.change_address(); });
  task->start_after(std::max<sim::SimTime>(1, static_cast<sim::SimTime>(
                                                  static_cast<double>(interval) * phase)));
  return task;
}

inline std::string kbps(double bytes_per_sec, int precision = 1) {
  return metrics::Table::num(bytes_per_sec / 1000.0, precision);
}

inline void print_shape_note(const char* note) { std::printf("shape target: %s\n", note); }

}  // namespace wp2p::bench
