// Shared scaffolding for the figure-reproduction benches.
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "core/wp2p_client.hpp"
#include "exp/swarm.hpp"
#include "metrics/meters.hpp"
#include "metrics/table.hpp"

namespace wp2p::bench {

// Average a scalar metric over independent seeded runs (the paper's
// "averaged over N runs").
inline metrics::RunStats over_seeds(int runs, std::uint64_t base_seed,
                                    const std::function<double(std::uint64_t)>& fn) {
  metrics::RunStats stats;
  for (int i = 0; i < runs; ++i) stats.add(fn(base_seed + static_cast<std::uint64_t>(i)));
  return stats;
}

// A population of fixed (wired) peers forming the remote side of a swarm.
struct FixedPeers {
  int seeds = 2;
  int leechers = 8;
  util::Rate seed_upload = util::Rate::kBps(100.0);
  util::Rate leech_upload = util::Rate::kBps(80.0);
  net::WiredParams link{};  // default: 10 Mbps symmetric
  bt::ClientConfig base{};
};

inline void add_fixed_peers(exp::Swarm& swarm, const FixedPeers& spec) {
  for (int i = 0; i < spec.seeds; ++i) {
    bt::ClientConfig config = spec.base;
    config.upload_limit = spec.seed_upload;
    swarm.add_wired("seed" + std::to_string(i), /*is_seed=*/true, config, spec.link);
  }
  for (int i = 0; i < spec.leechers; ++i) {
    bt::ClientConfig config = spec.base;
    config.upload_limit = spec.leech_upload;
    swarm.add_wired("leech" + std::to_string(i), /*is_seed=*/false, config, spec.link);
  }
}

// Apply a periodic IP-address change to a host (the paper's emulated
// hand-offs via "ifup/ifdown"). `phase` staggers the first change so multiple
// mobile hosts do not hand off in lock-step. Returns the owning task.
inline std::unique_ptr<sim::PeriodicTask> make_mobility(exp::World& world, net::Node& node,
                                                        sim::SimTime interval,
                                                        double phase = 1.0) {
  auto task = std::make_unique<sim::PeriodicTask>(world.sim, interval,
                                                  [&node] { node.change_address(); });
  task->start_after(std::max<sim::SimTime>(1, static_cast<sim::SimTime>(
                                                  static_cast<double>(interval) * phase)));
  return task;
}

inline std::string kbps(double bytes_per_sec, int precision = 1) {
  return metrics::Table::num(bytes_per_sec / 1000.0, precision);
}

inline void print_shape_note(const char* note) { std::printf("shape target: %s\n", note); }

}  // namespace wp2p::bench
