// Adversarial-peer fault model vs the protocol-enforcement layer.
//
// Three studies over scripted bt::AdversaryPeer attackers (bt/adversary.hpp),
// all driven through exp::ScenarioFuzzer so every run carries the
// InvariantChecker and the determinism fingerprint:
//
//   per-kind table     the same small swarm run clean, then with two
//                      adversaries of each kind (enforcement on): what each
//                      attack costs in completion time and what the
//                      enforcement layer does about it (strikes, bans,
//                      malformed frames dropped).
//   mixed-load test    four kinds at once (flooder + slowloris + garbage +
//                      liar), run enforced and with unsafe_no_enforcement.
//                      Contract: the enforced swarm completes within 2x the
//                      clean baseline; the unenforced swarm degrades or
//                      stalls outright.
//   false positives    NO adversaries — clean mobile hosts under hand-off
//                      storms of increasing intensity. Contract: zero bans
//                      and zero enforcement strikes in every row (the
//                      mobility-grace guard absorbs the hand-off artifacts),
//                      with grace windows actually granted under the storms.
//
// Flags: the shared bench set (--jobs N, --runs N, --seed-offset N, --csv).
// Output is byte-identical across --jobs: every sweep goes through
// bench::over_seeds_map and each run owns its Simulator and RNG tree.
#include <cstdio>

#include "common.hpp"
#include "exp/scenario_fuzzer.hpp"

namespace wp2p {
namespace {

sim::FaultAction make_action(sim::FaultKind kind, double at_s, double dur_s, double mag,
                             std::string target) {
  sim::FaultAction a;
  a.kind = kind;
  a.at = sim::seconds(at_s);
  a.duration = sim::seconds(dur_s);
  a.magnitude = mag;
  a.target = std::move(target);
  return a;
}

void add_adversaries(exp::Scenario& s, std::initializer_list<const char*> kinds) {
  int i = 0;
  for (const char* kind : kinds) {
    exp::ScenarioPeer p;
    p.name = "adv" + std::to_string(i++);
    p.adversary = kind;
    s.peers.push_back(std::move(p));
  }
}

// --- Per-kind table -----------------------------------------------------------

// One wired seed + three wired leeches, large enough that the download spans
// most of the window — an attack that slows the swarm shows up in the
// completion column instead of hiding behind an early finish.
exp::Scenario kind_scenario(std::uint64_t seed, const char* kind) {
  exp::Scenario s;
  s.seed = seed;
  s.duration_s = 240.0;
  s.file_size = 32 << 20;
  s.piece_size = 256 * 1024;
  s.peers = {
      {.name = "seed0", .wireless = false, .is_seed = true, .wp2p = false, .preload = 0.0},
      {.name = "l0", .wireless = false, .is_seed = false, .wp2p = false, .preload = 0.0},
      {.name = "l1", .wireless = false, .is_seed = false, .wp2p = false, .preload = 0.0},
      {.name = "l2", .wireless = false, .is_seed = false, .wp2p = false, .preload = 0.0},
  };
  if (kind != nullptr) add_adversaries(s, {kind, kind});
  return s;
}

struct KindOutcome {
  double leeches_done = 0.0;
  double completion_s = 0.0;  // last leech, -1 folded to duration below
  double strikes = 0.0;
  double bans = 0.0;
  double malformed = 0.0;
  double violations = 0.0;
};

int kind_table() {
  const int runs = bench::options().runs_override > 0 ? bench::options().runs_override : 3;
  metrics::Table table{
      "Enforcement response per adversary kind "
      "(1 seed + 3 leeches + 2 adversaries, 32 MB, 240 s, mean of seeds)"};
  table.columns({"adversaries", "leeches done", "last done (s)", "strikes", "bans",
                 "malformed", "violations"});

  std::vector<const char*> labels{"none (clean)"};
  std::vector<const char*> kinds{nullptr};
  for (const bt::AdversaryKind kind : bt::kAllAdversaryKinds) {
    labels.push_back(bt::to_string(kind));
    kinds.push_back(bt::to_string(kind));
  }

  double clean_done = 0.0, total_violations = 0.0;
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    const char* kind = kinds[k];
    metrics::RunStats done, last, strikes, bans, malformed, violations;
    for (const KindOutcome& o : bench::over_seeds_map<KindOutcome>(
             runs, 8200 + 100 * static_cast<std::uint64_t>(k), [&](std::uint64_t seed) {
               exp::ScenarioFuzzer fuzzer;
               const exp::Scenario s = kind_scenario(seed, kind);
               const exp::FuzzVerdict v = fuzzer.run(s);
               KindOutcome o;
               o.leeches_done = static_cast<double>(v.completed_leeches);
               o.completion_s = v.last_leech_completion_s >= 0.0
                                    ? v.last_leech_completion_s
                                    : s.duration_s;
               o.strikes = static_cast<double>(v.enforce_strikes);
               o.bans = static_cast<double>(v.peers_banned);
               o.malformed = static_cast<double>(v.malformed_msgs);
               o.violations = static_cast<double>(v.violations.size() +
                                                  v.property_failures.size());
               return o;
             })) {
      done.add(o.leeches_done);
      last.add(o.completion_s);
      strikes.add(o.strikes);
      bans.add(o.bans);
      malformed.add(o.malformed);
      violations.add(o.violations);
    }
    if (kind == nullptr) clean_done = done.mean();
    total_violations += violations.mean();
    table.row({labels[k], metrics::Table::num(done.mean()),
               metrics::Table::num(last.mean()), metrics::Table::num(strikes.mean()),
               metrics::Table::num(bans.mean()), metrics::Table::num(malformed.mean(), 0),
               metrics::Table::num(violations.mean(), 0)});
  }
  bench::show(table);
  bench::print_shape_note(
      "fast-burn attacks (flooder, garbage, pexspam, churner) are struck and "
      "banned within seconds; slow-burn ones (slowloris, liar, withholder) "
      "accrue stall and timeout evidence on 60 s clocks and only escalate "
      "when the download outlives their windows — and no run trips an "
      "invariant");

  int rc = 0;
  auto expect = [&](bool ok, const char* what) {
    std::printf("  %s: %s\n", ok ? "ok" : "FAIL", what);
    if (!ok) rc = 1;
  };
  expect(clean_done == 3.0, "clean baseline: every leech completes");
  expect(total_violations == 0.0, "no invariant violations in any per-kind run");
  return rc;
}

// --- Mixed-load self-test -----------------------------------------------------

exp::Scenario mixed_scenario(bool with_adversaries, bool no_enforcement) {
  exp::Scenario s;
  s.seed = 9100;
  // Short window on purpose: the clean swarm finishes in ~40 s and the
  // starved unenforced swarm in ~90 s, while every simulated second past
  // completion is spent serving flooder traffic at line rate.
  s.duration_s = 120.0;
  s.file_size = 16 << 20;
  s.piece_size = 256 * 1024;
  s.peers = {
      {.name = "seed0", .wireless = false, .is_seed = true, .wp2p = false, .preload = 0.0},
      {.name = "l0", .wireless = false, .is_seed = false, .wp2p = false, .preload = 0.0},
      {.name = "l1", .wireless = false, .is_seed = false, .wp2p = false, .preload = 0.0},
      {.name = "l2", .wireless = false, .is_seed = false, .wp2p = false, .preload = 0.0},
  };
  if (with_adversaries) {
    // Three kinds, none of which contributes real serving capacity (a
    // garbage or churner adversary serves honest requests between attacks
    // and would SPEED UP the unenforced swarm): four flooders drain the
    // seed's and the leeches' upload slots, the slowloris and the liar pin
    // request pipelines.
    add_adversaries(s, {"flooder", "flooder", "flooder", "flooder", "slowloris", "liar"});
  }
  s.unsafe_no_enforcement = no_enforcement;
  return s;
}

int mixed_table() {
  exp::ScenarioFuzzer fuzzer;
  const exp::FuzzVerdict clean = fuzzer.run(mixed_scenario(false, false));
  const exp::FuzzVerdict enforced = fuzzer.run(mixed_scenario(true, false));
  const exp::FuzzVerdict exposed = fuzzer.run(mixed_scenario(true, true));

  metrics::Table table{
      "Mixed adversary load: 4x flooder + slowloris + liar "
      "(1 seed + 3 leeches, 16 MB, 120 s)"};
  table.columns({"configuration", "leeches done", "last done (s)", "strikes", "bans",
                 "malformed", "violations"});
  auto row = [&](const char* label, const exp::FuzzVerdict& v) {
    table.row({label, metrics::Table::num(v.completed_leeches, 0),
               metrics::Table::num(v.last_leech_completion_s),
               metrics::Table::num(static_cast<double>(v.enforce_strikes), 0),
               metrics::Table::num(static_cast<double>(v.peers_banned), 0),
               metrics::Table::num(static_cast<double>(v.malformed_msgs), 0),
               metrics::Table::num(static_cast<double>(v.violations.size()), 0)});
  };
  row("clean (no adversaries)", clean);
  row("enforcement on", enforced);
  row("enforcement DISABLED (unsafe)", exposed);
  bench::show(table);
  bench::print_shape_note(
      "the enforced swarm strikes and bans the attackers and finishes within "
      "2x the clean baseline; with enforcement disabled the same attack "
      "starves the swarm");

  int rc = 0;
  auto expect = [&](bool ok, const char* what) {
    std::printf("  %s: %s\n", ok ? "ok" : "FAIL", what);
    if (!ok) rc = 1;
  };
  expect(clean.completed_leeches == 3 && clean.last_leech_completion_s > 0.0,
         "clean baseline: every leech completes");
  expect(enforced.completed_leeches == 3, "enforced: every leech completes under attack");
  expect(enforced.last_leech_completion_s > 0.0 &&
             enforced.last_leech_completion_s <= 2.0 * clean.last_leech_completion_s,
         "enforced: completion within 2x the clean baseline");
  expect(enforced.peers_banned > 0, "enforced: at least one adversary banned");
  expect(enforced.violations.empty() && clean.violations.empty(),
         "no invariant violations with enforcement on");
  const bool degraded =
      exposed.completed_leeches < 3 ||
      exposed.last_leech_completion_s > 2.0 * clean.last_leech_completion_s;
  expect(degraded, "enforcement off: swarm stalls or takes over 2x the clean baseline");
  return rc;
}

// --- Mobile false-positive table ----------------------------------------------

// The enforcement layer's hardest requirement (the paper's mobile hosts are
// the point): a roaming clean peer produces exactly the artifacts the
// adversary detectors key on — silent stalls mid-hand-off, identity
// reappearing from a new address, timed-out requests — and must NEVER be
// punished for them. No adversaries here: any ban or strike is a false
// positive by construction.
struct StormRow {
  const char* label;
  std::vector<sim::FaultAction> actions;
};

std::vector<StormRow> storm_rows() {
  std::vector<StormRow> rows;
  rows.push_back({"calm (no hand-offs)", {}});
  rows.push_back({"storm x4 on both mobiles",
                  {make_action(sim::FaultKind::kHandoffStorm, 40, 20, 4, "mob-w"),
                   make_action(sim::FaultKind::kHandoffStorm, 55, 20, 4, "mob-d")}});
  rows.push_back({"sustained x8 + x8",
                  {make_action(sim::FaultKind::kHandoffStorm, 30, 60, 8, "mob-w"),
                   make_action(sim::FaultKind::kHandoffStorm, 45, 60, 8, "mob-d"),
                   make_action(sim::FaultKind::kHandoff, 130, 0, 0, "mob-w")}});
  return rows;
}

exp::Scenario storm_scenario(std::uint64_t seed, const StormRow& row) {
  exp::Scenario s;
  s.seed = seed;
  s.duration_s = 240.0;
  s.file_size = 4 << 20;
  s.piece_size = 256 * 1024;
  s.peers = {
      {.name = "seed0", .wireless = false, .is_seed = true, .wp2p = false, .preload = 0.0},
      {.name = "mob-w", .wireless = true, .is_seed = false, .wp2p = true, .preload = 0.0},
      {.name = "mob-d", .wireless = true, .is_seed = false, .wp2p = false, .preload = 0.0},
      {.name = "fix-l", .wireless = false, .is_seed = false, .wp2p = false, .preload = 0.0},
  };
  s.faults.actions = row.actions;
  return s;
}

struct StormOutcome {
  double leeches_done = 0.0;
  double strikes = 0.0;
  double bans = 0.0;
  double grace = 0.0;
  double faults = 0.0;
  double violations = 0.0;
};

int false_positive_table() {
  const int runs = bench::options().runs_override > 0 ? bench::options().runs_override : 3;
  metrics::Table table{
      "Clean mobile hosts under hand-off storms — enforcement false positives "
      "(wired seed + wP2P mobile + default mobile + wired leech, 4 MB, 240 s, "
      "mean of seeds)"};
  table.columns({"schedule", "leeches done", "grace windows", "strikes", "bans",
                 "hand-offs", "violations"});

  int rc = 0;
  auto expect = [&](bool ok, const char* what) {
    std::printf("  %s: %s\n", ok ? "ok" : "FAIL", what);
    if (!ok) rc = 1;
  };

  const std::vector<StormRow> rows = storm_rows();
  std::vector<StormOutcome> outcomes;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    metrics::RunStats done, strikes, bans, grace, faults, violations;
    for (const StormOutcome& o : bench::over_seeds_map<StormOutcome>(
             runs, 8600 + 100 * static_cast<std::uint64_t>(r), [&](std::uint64_t seed) {
               exp::ScenarioFuzzer fuzzer;
               const exp::FuzzVerdict v = fuzzer.run(storm_scenario(seed, rows[r]));
               StormOutcome o;
               o.leeches_done = static_cast<double>(v.completed_leeches);
               o.strikes = static_cast<double>(v.enforce_strikes);
               o.bans = static_cast<double>(v.peers_banned);
               o.grace = static_cast<double>(v.grace_grants);
               o.faults = static_cast<double>(v.faults_applied);
               o.violations = static_cast<double>(v.violations.size() +
                                                  v.property_failures.size());
               return o;
             })) {
      done.add(o.leeches_done);
      strikes.add(o.strikes);
      bans.add(o.bans);
      grace.add(o.grace);
      faults.add(o.faults);
      violations.add(o.violations);
    }
    table.row({rows[r].label, metrics::Table::num(done.mean()),
               metrics::Table::num(grace.mean()), metrics::Table::num(strikes.mean(), 0),
               metrics::Table::num(bans.mean(), 0), metrics::Table::num(faults.mean(), 0),
               metrics::Table::num(violations.mean(), 0)});
    StormOutcome sum;
    sum.leeches_done = done.mean();
    sum.strikes = strikes.mean();
    sum.bans = bans.mean();
    sum.grace = grace.mean();
    sum.violations = violations.mean();
    outcomes.push_back(sum);
  }
  bench::show(table);
  bench::print_shape_note(
      "grace windows climb with storm intensity while strikes and bans stay "
      "pinned at zero — hand-off artifacts never read as misbehavior");

  for (std::size_t r = 0; r < rows.size(); ++r) {
    char what[160];
    std::snprintf(what, sizeof what, "%s: zero bans and zero enforcement strikes",
                  rows[r].label);
    expect(outcomes[r].bans == 0.0 && outcomes[r].strikes == 0.0, what);
  }
  expect(outcomes[0].leeches_done == 3.0, "calm row: every leech completes");
  expect(outcomes[1].grace > 0.0 && outcomes[2].grace > 0.0,
         "storm rows: mobility grace windows actually granted");
  double total_violations = 0.0;
  for (const StormOutcome& o : outcomes) total_violations += o.violations;
  expect(total_violations == 0.0, "no invariant violations in any storm run");
  return rc;
}

}  // namespace
}  // namespace wp2p

int main(int argc, char** argv) {
  wp2p::bench::ArgParser{argc, argv};

  int rc = wp2p::kind_table();
  const int mixed_rc = wp2p::mixed_table();
  if (rc == 0) rc = mixed_rc;
  const int fp_rc = wp2p::false_positive_table();
  if (rc == 0) rc = fp_rc;

  wp2p::bench::print_runner_summary();
  const int trace_rc = wp2p::bench::trace_report();
  return rc != 0 ? rc : trace_rc;
}
