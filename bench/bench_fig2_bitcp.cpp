// Figure 2 — Impact of bi-directional TCP on a wireless leg.
//
// (a) Download throughput of uni- vs bi-directional TCP under increasing BER.
//     Bi-TCP loses twice: the shared channel self-contends, and its ACKs ride
//     full-size data packets whose packet error rate is ~40x that of a pure
//     40-byte ACK.
// (b,c) Packets sent from the client on the wireless leg around buffer-drop
//     (congestion) events: the uni-directional connection sheds load after a
//     drop; the bi-directional one keeps the leg loaded because loss-recovery
//     DUPACKs are pure extra packets decoupled from the reverse data stream.
#include <memory>

#include "common.hpp"
#include "core/am_filter.hpp"
#include "tcp/connection.hpp"

namespace wp2p {
namespace {

using exp::World;

struct TransferResult {
  double down_rate_bytes_per_sec = 0.0;
};

// One raw TCP connection between a wireless mobile host and a wired fixed
// peer; `bidirectional` controls whether the mobile also uploads bulk data.
// `with_am` attaches the paper's AM filter below the mobile's stack — unused
// by the Fig. 2 tables (which demonstrate the problem AM solves), but run as
// an extra traced scenario so --trace output covers the AM events too.
TransferResult run_transfer(std::uint64_t seed, double ber, bool bidirectional,
                            double duration_s, bool with_am = false) {
  World world{seed};
  bench::ScopedTrace trace{world.sim, "fig2/transfer ber=" + std::to_string(ber) +
                                          (bidirectional ? " bi" : " uni") +
                                          (with_am ? " am" : "")};
  // The paper's regime: the wireless leg is NOT the throughput bottleneck
  // (the remote peer's access uplink is), so at BER=0 uni and bi differ only
  // mildly; as BER grows, bi-TCP's piggybacked ACKs — riding 1.5 KB packets —
  // die far more often than uni-TCP's 40-byte pure ACKs.
  net::WirelessParams wless;
  wless.capacity = util::Rate::kBps(120.0);
  wless.bit_error_rate = ber;
  // The paper's ns-2 error emulation exposes most bit errors to TCP; a single
  // MAC retry gives a residual-loss curve spanning the swept BER range.
  wless.mac_retries = 1;
  // P2P peers run ~50 connections per swarm, so each connection's share of
  // the window is small (Section 3.2): model one such connection by capping
  // the receive window at ~6 segments. Small windows are exactly where ACK
  // losses hurt.
  tcp::TcpParams small_window;
  small_window.rwnd = 8 * 1024;
  auto& mobile = world.add_wireless_host("mobile", wless, small_window);
  net::WiredParams cable;
  cable.up_capacity = util::Rate::kbps(384.0);  // residential uplink: 48 KBps
  cable.down_capacity = util::Rate::mbps(4.0);
  auto& fixed = world.add_wired_host("fixed", cable, small_window);

  std::unique_ptr<core::AmFilter> am;
  if (with_am) {
    am = std::make_unique<core::AmFilter>(world.sim);
    mobile.node->add_egress_filter(am.get());
    mobile.node->add_ingress_filter(am.get());
  }

  std::shared_ptr<tcp::Connection> server;
  fixed.stack->listen(9000, [&](std::shared_ptr<tcp::Connection> c) { server = std::move(c); });
  auto client = mobile.stack->connect(fixed.endpoint(9000));

  // Continuously backlogged bulk transfer(s), as between two exchanging
  // BitTorrent peers. In the bi-directional case the mobile's upstream data
  // shares the half-duplex channel with the download AND carries the
  // download's ACKs: ACK info queues behind bulk data and rides long,
  // error-prone packets — exactly the Section 3.2 pathology.
  const std::int64_t chunk = 16 * 1024;
  sim::PeriodicTask feeder{world.sim, sim::milliseconds(100.0), [&] {
    if (server && server->established() && server->send_queue_bytes() < 4 * chunk) {
      server->send_message(nullptr, chunk);
    }
    if (bidirectional && client->established() && client->send_queue_bytes() < 4 * chunk) {
      client->send_message(nullptr, chunk);
    }
  }};
  feeder.start_after(sim::milliseconds(1.0));

  auto faults = bench::apply_bench_faults(world, /*tracker=*/nullptr, seed, duration_s);
  world.sim.run_until(sim::seconds(duration_s));
  TransferResult result;
  result.down_rate_bytes_per_sec =
      static_cast<double>(client->stats().bytes_delivered) / duration_s;
  return result;
}

void figure_2a() {
  const double bers[] = {0.0, 0.5e-5, 1.0e-5, 1.5e-5, 2.0e-5};
  const int runs = 10;  // paper reports 5-run averages; we use 10 for tighter CIs
  metrics::Table table{"Figure 2(a): downloading throughput vs BER, bi-TCP vs uni-TCP"};
  table.columns({"BER", "uni-TCP (KBps)", "bi-TCP (KBps)", "bi/uni"});
  for (double ber : bers) {
    auto uni = bench::over_seeds(runs, 100, [&](std::uint64_t s) {
      return run_transfer(s, ber, /*bidirectional=*/false, 180.0).down_rate_bytes_per_sec;
    });
    auto bi = bench::over_seeds(runs, 200, [&](std::uint64_t s) {
      return run_transfer(s, ber, /*bidirectional=*/true, 180.0).down_rate_bytes_per_sec;
    });
    table.row({metrics::Table::num(ber * 1e5, 1) + "e-5", bench::kbps(uni.mean()),
               bench::kbps(bi.mean()),
               metrics::Table::num(bi.mean() / std::max(uni.mean(), 1.0), 2)});
  }
  bench::show(table);
  bench::print_shape_note(
      "uni-TCP > bi-TCP at every BER; gap widens as BER grows (paper Fig. 2a)");
}

// Packets sent from the client per interval, with buffer-drop events marked.
void figure_2bc(bool bidirectional) {
  World world{bench::base_seed(42)};
  bench::ScopedTrace trace{world.sim,
                           std::string{"fig2"} + (bidirectional ? "c" : "b")};
  net::WirelessParams wless;
  wless.capacity = util::Rate::kBps(100.0);
  wless.down_queue_limit = 16;  // small AP buffer to force congestion drops
  wless.up_queue_limit = 16;
  auto& mobile = world.add_wireless_host("mobile", wless);
  auto& fixed = world.add_wired_host("fixed");

  std::shared_ptr<tcp::Connection> server;
  fixed.stack->listen(9000, [&](std::shared_ptr<tcp::Connection> c) { server = std::move(c); });
  auto client = mobile.stack->connect(fixed.endpoint(9000));

  const std::int64_t chunk = 64 * 1024;
  sim::PeriodicTask feeder{world.sim, sim::milliseconds(250.0), [&] {
    if (server && server->established() && server->send_queue_bytes() < 4 * chunk) {
      server->send_message(nullptr, chunk);
    }
    if (bidirectional && client->established() && client->send_queue_bytes() < 4 * chunk) {
      client->send_message(nullptr, chunk);
    }
  }};
  feeder.start_after(sim::milliseconds(1.0));

  std::uint64_t up_packets = 0;
  std::uint64_t drops = 0;
  mobile.node->access()->on_transmit = [&](net::Direction dir, const net::Packet&) {
    if (dir == net::Direction::kUp) ++up_packets;
  };
  mobile.node->access()->on_queue_drop = [&](net::Direction, const net::Packet&) { ++drops; };

  metrics::Table table{std::string{"Figure 2("} + (bidirectional ? "c" : "b") +
                       "): packets sent from client on the wireless leg, " +
                       (bidirectional ? "bi" : "uni") + "-directional"};
  table.columns({"t (s)", "pkts/0.5s", "buffer drops (cum)"});
  const double interval = 0.5;
  std::uint64_t last_packets = 0;
  for (int i = 1; i <= 20; ++i) {
    world.sim.run_until(sim::seconds(i * interval));
    table.row({metrics::Table::num(i * interval, 1),
               std::to_string(up_packets - last_packets), std::to_string(drops)});
    last_packets = up_packets;
  }
  bench::show(table);
}

}  // namespace
}  // namespace wp2p

int main(int argc, char** argv) {
  wp2p::bench::ArgParser{argc, argv};
  wp2p::figure_2a();
  wp2p::figure_2bc(false);
  wp2p::figure_2bc(true);
  if (wp2p::bench::trace_options().enabled()) {
    // Trace-only AM probe: the Fig. 2 tables show the bi-TCP pathology
    // without AM, so run one extra (non-printing) transfer with the AM filter
    // attached to get am.* events into the trace alongside tcp.* and chan.*.
    wp2p::run_transfer(wp2p::bench::base_seed(300), 1.5e-5, /*bidirectional=*/true,
                       60.0, /*with_am=*/true);
  }
  wp2p::bench::print_shape_note(
      "after drops, uni-directional client packet counts dip; bi-directional stays "
      "flat (paper Fig. 2b,c)");
  wp2p::bench::print_runner_summary();
  return wp2p::bench::trace_report();
}
