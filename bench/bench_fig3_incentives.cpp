// Figure 3 — Uploads-based incentives and the impact of mobility.
//
// (a) Wired access (cable: 4 Mbps down / 384 Kbps up): aggregate download
//     rate of five simultaneous tasks grows with the upload rate limit —
//     tit-for-tat reciprocation rewards upload.
// (b) Wireless access (shared channel): downloads first grow with the upload
//     limit, then fall — uploads self-contend with downloads on the shared
//     medium, so the optimum is an interior point.
// (c) Downloaded size vs time for {mobility} x {uploading}: without mobility,
//     uploading buys a clearly better download rate; with per-minute IP
//     changes the incentive mechanism is voided (new peer-id each time), so
//     uploading hardly helps and both mobility curves trail badly.
#include "common.hpp"

namespace wp2p {
namespace {

using exp::Swarm;

// One "task": a torrent with a small fixed swarm (1 throttled seed + 4
// leechers), plus the client-under-test as a member.
struct TaskSpec {
  std::int64_t file_size = 64 * 1000 * 1000;
  // The seed injects unique data at this rate; a peer riding the swarm
  // frontier downloads at the injection rate, a peer that loses tit-for-tat
  // reciprocation trails it — that spread is what the upload limit buys.
  util::Rate seed_upload = util::Rate::kBps(25.0);
  // Fixed leechers have home-link-class upload budgets comparable to the
  // client's, so the client's upload limit decides whether it wins
  // reciprocation slots.
  util::Rate leech_upload = util::Rate::kBps(12.0);
  int leechers = 8;
  // Slow peers that perpetually trail the frontier. Like the long tail of a
  // real swarm they absorb any upload bandwidth offered to them (a single
  // optimistic-unchoke pull runs at full pipeline speed), which is what makes
  // a generous upload limit actually cost wireless airtime.
  int trailing = 3;
  util::Rate trailing_upload = util::Rate::kBps(2.0);
  // Scarce reciprocation: two regular unchoke slots + one optimistic make
  // tit-for-tat credit genuinely contested (a 50-peer swarm with 4 slots has
  // the same slot-to-peer scarcity).
  int unchoke_slots = 2;
};

// Build `tasks` independent swarms that all include `client_host`, give the
// client an upload limit, run for `duration_s`, and return the client's
// aggregate download rate (bytes/sec).
struct TaskResult {
  double download_rate = 0.0;  // bytes/sec, post-warmup
  double upload_rate = 0.0;
};

// One task in its own swarm. The five "simultaneous tasks" of the paper are
// modelled as independent swarms sharing the client's upload budget equally;
// the client's access link was never the binding resource in the coupled
// variant, so independence preserves the economics while decoupling the
// measurement noise.
TaskResult run_one_task(std::uint64_t seed, bool wireless_client,
                        util::Rate client_upload, double duration_s,
                        const TaskSpec& spec, int task_index) {
  exp::World world{seed * 97 + static_cast<std::uint64_t>(task_index)};
  bench::ScopedTrace trace{world.sim,
                           std::string{"fig3/task "} +
                               (wireless_client ? "wireless" : "wired") + " up=" +
                               std::to_string(client_upload.bytes_per_sec()) +
                               " t=" + std::to_string(task_index)};
  bt::Tracker tracker{world.sim};
  auto meta = bt::Metainfo::create("task" + std::to_string(task_index), spec.file_size,
                                   256 * 1024, "tracker",
                                   static_cast<std::uint64_t>(task_index + 1));
  std::vector<std::unique_ptr<bt::Client>> clients;
  bt::ClientConfig fixed_config;
  fixed_config.announce_interval = sim::seconds(60.0);
  fixed_config.unchoke_slots = spec.unchoke_slots;
  fixed_config.optimistic_interval = sim::seconds(60.0);
  {
    bt::ClientConfig seed_config = fixed_config;
    seed_config.upload_limit = spec.seed_upload;
    auto& host = world.add_wired_host("seed");
    clients.push_back(std::make_unique<bt::Client>(*host.node, *host.stack, tracker,
                                                   meta, seed_config, true));
  }
  for (int i = 0; i < spec.leechers; ++i) {
    bt::ClientConfig lc = fixed_config;
    // Diverse budgets (like a real swarm): the client's rank — and thus its
    // reciprocated download — grows smoothly with its own upload limit.
    lc.upload_limit = spec.leech_upload * (0.4 + 0.2 * static_cast<double>(i));
    auto& host = world.add_wired_host("leech" + std::to_string(i));
    clients.push_back(
        std::make_unique<bt::Client>(*host.node, *host.stack, tracker, meta, lc, false));
    // Steady-state swarm: fixed leechers joined earlier and hold partial
    // content, so trading material exists from t=0.
    clients.back()->preload(0.15 + 0.07 * static_cast<double>(i));
  }
  for (int i = 0; i < spec.trailing; ++i) {
    bt::ClientConfig lc = fixed_config;
    lc.upload_limit = spec.trailing_upload;
    lc.pipeline_depth = 64;  // a trailing peer absorbs whatever an unchoke offers
    auto& host = world.add_wired_host("slow" + std::to_string(i));
    clients.push_back(
        std::make_unique<bt::Client>(*host.node, *host.stack, tracker, meta, lc, false));
    clients.back()->preload(0.05);
  }

  exp::World::Host* client_host;
  if (wireless_client) {
    net::WirelessParams wless;
    // The five tasks share ONE physical channel; with tasks modelled in
    // independent worlds, each gets a fifth of the shared WLAN budget.
    wless.capacity = util::Rate::kBps(250.0 / 5.0);
    wless.contention_overhead = 0.5;  // loaded CSMA/CA: collisions + backoff
    client_host = &world.add_wireless_host("client", wless);
  } else {
    net::WiredParams cable;
    cable.down_capacity = util::Rate::mbps(4.0);
    cable.up_capacity = util::Rate::kbps(384.0);
    client_host = &world.add_wired_host("client", cable);
  }
  bt::ClientConfig cc = fixed_config;
  cc.upload_limit = client_upload;
  bt::Client client{*client_host->node, *client_host->stack, tracker, meta, cc, false};

  auto faults = bench::apply_bench_faults(world, &tracker, seed, duration_s);
  for (auto& c : clients) c->start();
  client.start();
  const double warmup_s = duration_s / 3.0;
  world.sim.run_until(sim::seconds(warmup_s));
  const std::int64_t down0 = client.stats().payload_downloaded;
  const std::int64_t up0 = client.stats().payload_uploaded;
  world.sim.run_until(sim::seconds(duration_s));
  return TaskResult{
      static_cast<double>(client.stats().payload_downloaded - down0) / (duration_s - warmup_s),
      static_cast<double>(client.stats().payload_uploaded - up0) / (duration_s - warmup_s)};
}

TaskResult run_tasks(std::uint64_t seed, bool wireless_client, util::Rate client_upload_total,
                     double duration_s, const TaskSpec& spec, int tasks) {
  TaskResult total;
  for (int t = 0; t < tasks; ++t) {
    TaskResult r = run_one_task(seed, wireless_client,
                                client_upload_total / static_cast<double>(tasks),
                                duration_s, spec, t);
    total.download_rate += r.download_rate;
    total.upload_rate += r.upload_rate;
  }
  return total;
}

void figure_3ab(bool wireless) {
  // Upload limit as a percentage of the physical upload budget.
  const util::Rate budget =
      wireless ? util::Rate::kBps(250.0) : util::Rate::kbps(384.0);
  metrics::Table table{wireless
                           ? std::string{"Figure 3(b): download vs upload limit, wireless"}
                           : std::string{"Figure 3(a): download vs upload limit, wired"}};
  table.columns({"upload limit (% of phys)", "aggregate download (KBps)",
                 "actual upload (KBps)"});
  for (int pct : {0, 10, 20, 30, 40, 60, 80}) {
    // Common random numbers across the sweep: every pct reuses the same seeds.
    auto results = bench::over_seeds_map<TaskResult>(4, 500, [&](std::uint64_t s) {
      util::Rate limit = pct == 0 ? util::Rate::bytes_per_sec(1.0)  // effectively zero
                                  : budget * (pct / 100.0);
      return run_tasks(s, wireless, limit, 480.0, TaskSpec{}, 5);
    });
    metrics::RunStats stats, up_stats;
    for (const TaskResult& r : results) {
      stats.add(r.download_rate);
      up_stats.add(r.upload_rate);
    }
    table.row({std::to_string(pct), bench::kbps(stats.mean()), bench::kbps(up_stats.mean())});
  }
  bench::show(table);
  bench::print_shape_note(
      wireless ? "download rises with upload limit, peaks, then FALLS (self-contention; "
                 "paper Fig. 3b)"
               : "download increases monotonically with upload limit (paper Fig. 3a)");
}

// Figure 3(c): 100 MB download, {mobility} x {uploading}.
void figure_3c() {
  struct Curve {
    const char* label;
    bool mobile;
    bool uploading;
    std::vector<double> mb_at;  // sampled downloaded size (MB)
  };
  std::vector<Curve> curves{
      {"no mobility, uploading", false, true, {}},
      {"no mobility, no uploading", false, false, {}},
      {"mobility, uploading", true, true, {}},
      {"mobility, no uploading", true, false, {}},
  };
  const double horizon_s = 40.0 * 60.0;
  const int samples = 8;  // every 5 minutes

  // The four curves are independent single-seed worlds: run them on the pool.
  auto curve_results = bench::runner().map<std::vector<double>>(
      static_cast<int>(curves.size()), [&](int c) {
    const Curve& curve = curves[static_cast<std::size_t>(c)];
    std::vector<double> mb_at;
    exp::World world{bench::base_seed(77)};
    // Like over_seeds_map, trace only the first curve of this direct map().
    const bool was_eligible = bench::trace_eligible();
    bench::trace_eligible() = (c == 0);
    bench::ScopedTrace trace{world.sim, std::string{"fig3c/"} + curve.label};
    bench::trace_eligible() = was_eligible;
    bt::Tracker tracker{world.sim};
    auto meta = bt::Metainfo::create("file100", 100 * 1000 * 1000, 256 * 1024, "tr", 3);
    std::vector<std::unique_ptr<bt::Client>> fixed;
    bt::ClientConfig fixed_config;
    fixed_config.announce_interval = sim::seconds(120.0);
    fixed_config.unchoke_slots = 2;  // scarce reciprocation (see figure_3ab)
    for (int i = 0; i < 1; ++i) {
      bt::ClientConfig sc = fixed_config;
      sc.upload_limit = util::Rate::kBps(30.0);
      auto& host = world.add_wired_host("seed" + std::to_string(i));
      fixed.push_back(
          std::make_unique<bt::Client>(*host.node, *host.stack, tracker, meta, sc, true));
    }
    for (int i = 0; i < 10; ++i) {
      bt::ClientConfig lc = fixed_config;
      lc.upload_limit = util::Rate::kBps(10.0);
      auto& host = world.add_wired_host("leech" + std::to_string(i));
      fixed.push_back(
          std::make_unique<bt::Client>(*host.node, *host.stack, tracker, meta, lc, false));
      fixed.back()->preload(0.1 + 0.05 * static_cast<double>(i));
    }
    net::WirelessParams wless;
    wless.capacity = util::Rate::kBps(400.0);
    auto& mobile_host = world.add_wireless_host("mobile", wless);
    bt::ClientConfig mc;
    mc.announce_interval = sim::seconds(120.0);
    mc.unchoke_slots = 2;
    mc.upload_limit =
        curve.uploading ? util::Rate::kBps(60.0) : util::Rate::bytes_per_sec(1.0);
    bt::Client client{*mobile_host.node, *mobile_host.stack, tracker, meta, mc, false};

    for (auto& c : fixed) c->start();
    client.start();
    std::unique_ptr<sim::PeriodicTask> mobility;
    if (curve.mobile) {
      mobility = bench::make_mobility(world, *mobile_host.node, sim::minutes(1.0));
    }
    for (int i = 1; i <= samples; ++i) {
      world.sim.run_until(sim::seconds(horizon_s * i / samples));
      mb_at.push_back(static_cast<double>(client.stats().payload_downloaded) / 1e6);
    }
    return mb_at;
  });
  for (std::size_t c = 0; c < curves.size(); ++c) curves[c].mb_at = std::move(curve_results[c]);

  metrics::Table table{"Figure 3(c): downloaded size (MB) vs time, incentive x mobility"};
  std::vector<std::string> cols{"t (min)"};
  for (const Curve& c : curves) cols.push_back(c.label);
  table.columns(cols);
  for (int i = 0; i < samples; ++i) {
    std::vector<std::string> row{metrics::Table::num(40.0 * (i + 1) / samples, 0)};
    for (const Curve& c : curves) row.push_back(metrics::Table::num(c.mb_at[static_cast<std::size_t>(i)], 1));
    table.row(row);
  }
  bench::show(table);
  bench::print_shape_note(
      "no-mobility+uploading >> no-mobility+no-upload; with mobility both collapse and "
      "the uploading advantage nearly vanishes (paper Fig. 3c)");
}

}  // namespace
}  // namespace wp2p

int main(int argc, char** argv) {
  wp2p::bench::ArgParser{argc, argv};
  wp2p::figure_3ab(false);
  wp2p::figure_3ab(true);
  wp2p::figure_3c();
  wp2p::bench::print_runner_summary();
  return wp2p::bench::trace_report();
}
