// Figure 4 — Server mobility (a) and rarest-first playability (b, c).
//
// (a) A fixed peer downloads from three mobile seeds. When a seed hands off,
//     its connections blackhole: the fixed peer discovers the new address
//     only through tracker round-trips (minutes), so throughput falls as the
//     mobility rate rises — and collapses when every source is mobile.
// (b,c) Rarest-first fetching leaves almost nothing playable (in-order
//     prefix) until the download is nearly complete, for both 5 MB and
//     100 MB files.
#include "common.hpp"
#include "media/playability.hpp"

namespace wp2p {
namespace {

// --- Figure 4(a) -------------------------------------------------------------

double run_server_mobility(std::uint64_t seed, double change_interval_min, int mobile_count,
                           double duration_s) {
  exp::World world{seed};
  bench::ScopedTrace trace{world.sim,
                           "fig4a/server-mobility interval=" +
                               std::to_string(change_interval_min) +
                               "min mobile=" + std::to_string(mobile_count)};
  bt::Tracker tracker{world.sim};
  auto meta = bt::Metainfo::create("file", 500 * 1000 * 1000, 256 * 1024, "tr", 4);

  bt::ClientConfig seed_config;
  seed_config.announce_interval = sim::minutes(2.0);
  seed_config.upload_limit = util::Rate::kBps(100.0);

  std::vector<std::unique_ptr<bt::Client>> seeds;
  std::vector<std::unique_ptr<sim::PeriodicTask>> mobility;
  for (int i = 0; i < 3; ++i) {
    auto& host = world.add_wireless_host("mobile" + std::to_string(i));
    seeds.push_back(std::make_unique<bt::Client>(*host.node, *host.stack, tracker, meta,
                                                 seed_config, true));
    if (i < mobile_count && change_interval_min > 0) {
      mobility.push_back(bench::make_mobility(world, *host.node,
                                              sim::minutes(change_interval_min),
                                              (static_cast<double>(i) + 1.0) / 3.0));
    }
  }

  bt::ClientConfig fixed_config;
  fixed_config.announce_interval = sim::minutes(2.0);
  auto& fixed = world.add_wired_host("fixed");
  bt::Client client{*fixed.node, *fixed.stack, tracker, meta, fixed_config, false};

  auto faults = bench::apply_bench_faults(world, &tracker, seed, duration_s);
  for (auto& s : seeds) s->start();
  client.start();
  world.sim.run_until(sim::seconds(duration_s));
  return static_cast<double>(client.stats().payload_downloaded) / duration_s;
}

void figure_4a() {
  struct Point {
    const char* label;
    double interval_min;
  };
  const Point points[] = {
      {"no mobility", 0.0}, {"every 2 min", 2.0}, {"every 1.5 min", 1.5},
      {"every 1 min", 1.0}, {"every 0.5 min", 0.5},
  };
  metrics::Table table{"Figure 4(a): fixed-peer throughput vs server mobility rate"};
  table.columns({"mobility rate", "one peer mobile (KBps)", "all peers mobile (KBps)"});
  for (const Point& p : points) {
    auto one = bench::over_seeds(3, 700, [&](std::uint64_t s) {
      return run_server_mobility(s, p.interval_min, 1, 600.0);
    });
    auto all = bench::over_seeds(3, 700, [&](std::uint64_t s) {
      return run_server_mobility(s, p.interval_min, 3, 600.0);
    });
    table.row({p.label, bench::kbps(one.mean()), bench::kbps(all.mean())});
  }
  bench::show(table);
  bench::print_shape_note(
      "throughput falls as IP changes become more frequent, and degradation is "
      "amplified when all corresponding peers are mobile (paper Fig. 4a)");
}

// --- Figures 4(b,c) -----------------------------------------------------------

std::vector<double> run_playability(std::uint64_t seed, std::int64_t file_size,
                                    bt::SelectorKind selector) {
  exp::World world{seed};
  bench::ScopedTrace trace{world.sim, "fig4bc/playability size=" +
                                          std::to_string(file_size)};
  bt::Tracker tracker{world.sim};
  auto meta = bt::Metainfo::create("media", file_size, 256 * 1024, "tr", 5);

  bt::ClientConfig seed_config;
  seed_config.announce_interval = sim::seconds(60.0);
  auto& seed_host = world.add_wired_host("seed");
  bt::Client seeder{*seed_host.node, *seed_host.stack, tracker, meta, seed_config, true};

  bt::ClientConfig leech_config;
  leech_config.announce_interval = sim::seconds(60.0);
  leech_config.selector = selector;
  auto& leech_host = world.add_wired_host("leech");
  bt::Client leech{*leech_host.node, *leech_host.stack, tracker, meta, leech_config, false};

  media::PlayabilityAnalyzer analyzer;
  leech.on_piece_complete = [&](int) { analyzer.sample(leech.store()); };

  seeder.start();
  leech.start();
  const sim::SimTime deadline = sim::minutes(120.0);
  while (!leech.complete() && world.sim.now() < deadline) {
    world.sim.run_until(world.sim.now() + sim::seconds(5.0));
  }
  std::vector<double> playable_at;
  for (int pct = 10; pct <= 100; pct += 10) {
    playable_at.push_back(analyzer.playable_at(pct / 100.0) * 100.0);
  }
  return playable_at;
}

void figure_4bc(std::int64_t file_size, const char* which) {
  const int runs = 10;  // the paper averages over 10 runs
  auto per_run = bench::over_seeds_map<std::vector<double>>(runs, 800, [&](std::uint64_t s) {
    return run_playability(s, file_size, bt::SelectorKind::kRarestFirst);
  });
  std::vector<metrics::RunStats> stats(10);
  for (const auto& playable : per_run) {
    for (std::size_t i = 0; i < playable.size(); ++i) stats[i].add(playable[i]);
  }
  metrics::Table table{std::string{"Figure 4("} + which + "): playable% vs downloaded%, " +
                       "rarest-first, " + std::to_string(file_size / 1000 / 1000) + " MB"};
  table.columns({"downloaded %", "playable % (mean)", "stddev"});
  for (int i = 0; i < 10; ++i) {
    table.row({std::to_string((i + 1) * 10), metrics::Table::num(stats[static_cast<std::size_t>(i)].mean()),
               metrics::Table::num(stats[static_cast<std::size_t>(i)].stddev())});
  }
  bench::show(table);
}

}  // namespace
}  // namespace wp2p

int main(int argc, char** argv) {
  wp2p::bench::ArgParser{argc, argv};
  wp2p::figure_4a();
  wp2p::figure_4bc(5 * 1000 * 1000, "b");
  wp2p::figure_4bc(100 * 1000 * 1000, "c");
  wp2p::bench::print_shape_note(
      "playable fraction stays near zero until a very large share of the file is "
      "downloaded; the effect is starker for the larger file (paper Fig. 4b,c)");
  wp2p::bench::print_runner_summary();
  return wp2p::bench::trace_report();
}
