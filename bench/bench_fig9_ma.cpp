// Figure 9 — Evaluation of wP2P's Mobility-Aware operations.
//
// (a,b) Mobility-aware Fetching: playable fraction vs downloaded fraction for
//     a 5 MB and a 100 MB media file, default rarest-first vs wP2P MF with
//     pr = downloaded fraction (the paper's evaluation setting). MF keeps a
//     large in-order prefix early while converging to rarest-first late.
// (c) Role Reversal: two mobile seeds serve a swarm while their IP addresses
//     change every 2-6 minutes. The default client waits out detection delays
//     and tracker round-trips after every hand-off; the wP2P client detects
//     the change, re-announces, and reconnects to its stored peers instantly.
#include "common.hpp"
#include "core/ma_selector.hpp"
#include "media/playability.hpp"

namespace wp2p {
namespace {

// --- Figures 9(a,b) --------------------------------------------------------------

std::vector<double> run_playability(std::uint64_t seed, std::int64_t file_size, bool use_mf) {
  exp::World world{seed};
  bench::ScopedTrace trace{world.sim, "fig9ab/playability size=" +
                                          std::to_string(file_size) +
                                          (use_mf ? " mf" : " rarest")};
  bt::Tracker tracker{world.sim};
  auto meta = bt::Metainfo::create("media", file_size, 256 * 1024, "tr", 11);

  bt::ClientConfig seed_config;
  seed_config.announce_interval = sim::seconds(60.0);
  auto& seed_host = world.add_wired_host("seed");
  bt::Client seeder{*seed_host.node, *seed_host.stack, tracker, meta, seed_config, true};

  bt::ClientConfig leech_config;
  leech_config.announce_interval = sim::seconds(60.0);
  auto& leech_host = world.add_wireless_host("mobile");
  bt::Client leech{*leech_host.node, *leech_host.stack, tracker, meta, leech_config, false};
  if (use_mf) {
    leech.set_selector(std::make_unique<core::MobilityAwareSelector>());
  }

  media::PlayabilityAnalyzer analyzer;
  leech.on_piece_complete = [&](int) { analyzer.sample(leech.store()); };

  seeder.start();
  leech.start();
  const sim::SimTime deadline = sim::minutes(120.0);
  while (!leech.complete() && world.sim.now() < deadline) {
    world.sim.run_until(world.sim.now() + sim::seconds(5.0));
  }
  std::vector<double> playable_at;
  for (int pct = 10; pct <= 100; pct += 10) {
    playable_at.push_back(analyzer.playable_at(pct / 100.0) * 100.0);
  }
  return playable_at;
}

struct PlayabilityPair {
  std::vector<double> def;
  std::vector<double> mf;
};

void figure_9ab(std::int64_t file_size, const char* which) {
  const int runs = 20;  // the paper averages over 20 runs
  auto per_run = bench::over_seeds_map<PlayabilityPair>(runs, 1400, [&](std::uint64_t s) {
    return PlayabilityPair{run_playability(s, file_size, false),
                           run_playability(s, file_size, true)};
  });
  std::vector<metrics::RunStats> def(10), mf(10);
  for (const PlayabilityPair& pair : per_run) {
    for (std::size_t i = 0; i < 10; ++i) {
      def[i].add(pair.def[i]);
      mf[i].add(pair.mf[i]);
    }
  }
  metrics::Table table{std::string{"Figure 9("} + which +
                       "): playable% vs downloaded%, default vs wP2P MF, " +
                       std::to_string(file_size / 1000 / 1000) + " MB"};
  table.columns({"downloaded %", "default P2P (%)", "wP2P MF (%)"});
  for (int i = 0; i < 10; ++i) {
    table.row({std::to_string((i + 1) * 10),
               metrics::Table::num(def[static_cast<std::size_t>(i)].mean()),
               metrics::Table::num(mf[static_cast<std::size_t>(i)].mean())});
  }
  bench::show(table);
}

// --- Figure 9(c) --------------------------------------------------------------------

double run_role_reversal(std::uint64_t seed, double interval_min, bool use_rr,
                         double duration_s) {
  exp::World world{seed};
  bench::ScopedTrace trace{world.sim, "fig9c/role-reversal interval=" +
                                          std::to_string(interval_min) +
                                          (use_rr ? "min rr" : "min default")};
  bt::Tracker tracker{world.sim};
  auto meta = bt::Metainfo::create("fedora.iso", 500 * 1000 * 1000, 256 * 1024, "tr", 12);

  bt::ClientConfig leech_config;
  leech_config.announce_interval = sim::minutes(2.0);
  std::vector<std::unique_ptr<bt::Client>> leechers;
  for (int i = 0; i < 6; ++i) {
    bt::ClientConfig lc = leech_config;
    lc.upload_limit = util::Rate::kBps(30.0);
    auto& host = world.add_wired_host("leech" + std::to_string(i));
    leechers.push_back(
        std::make_unique<bt::Client>(*host.node, *host.stack, tracker, meta, lc, false));
    leechers.back()->preload(0.05 * static_cast<double>(i));
  }

  bt::ClientConfig seed_config;
  seed_config.announce_interval = sim::minutes(5.0);
  seed_config.upload_limit = util::Rate::kBps(100.0);
  seed_config.retain_peer_id = use_rr;   // wP2P IA
  seed_config.role_reversal = use_rr;    // wP2P MA role reversal
  std::vector<std::unique_ptr<bt::Client>> seeds;
  std::vector<std::unique_ptr<sim::PeriodicTask>> mobility;
  for (int i = 0; i < 2; ++i) {
    auto& host = world.add_wireless_host("mobile" + std::to_string(i));
    seeds.push_back(std::make_unique<bt::Client>(*host.node, *host.stack, tracker, meta,
                                                 seed_config, true));
    mobility.push_back(bench::make_mobility(world, *host.node, sim::minutes(interval_min),
                                            (static_cast<double>(i) + 1.0) / 2.0));
  }

  auto faults = bench::apply_bench_faults(world, &tracker, seed, duration_s);
  for (auto& c : leechers) c->start();
  for (auto& s : seeds) s->start();
  world.sim.run_until(sim::seconds(duration_s));
  std::int64_t uploaded = 0;
  for (auto& s : seeds) uploaded += s->stats().payload_uploaded;
  return static_cast<double>(uploaded) / duration_s / 2.0;  // per mobile seed
}

void figure_9c() {
  metrics::Table table{"Figure 9(c): role reversal — mobile seed upload vs mobility rate"};
  table.columns({"mobility rate", "default P2P (KBps)", "wP2P (KBps)", "wP2P/default"});
  for (double interval : {6.0, 4.0, 2.0}) {
    auto def = bench::over_seeds(3, 1500, [&](std::uint64_t s) {
      return run_role_reversal(s, interval, false, 1800.0);
    });
    auto wp = bench::over_seeds(3, 1500, [&](std::uint64_t s) {
      return run_role_reversal(s, interval, true, 1800.0);
    });
    table.row({"every " + metrics::Table::num(interval, 0) + " min", bench::kbps(def.mean()),
               bench::kbps(wp.mean()),
               metrics::Table::num(wp.mean() / std::max(def.mean(), 1.0), 2)});
  }
  bench::show(table);
  bench::print_shape_note(
      "upload throughput falls with disruption rate for both, but wP2P recovers "
      "instantly and leads by more at higher rates — up to ~50% at 2-minute "
      "disruptions (paper Fig. 9c)");
}

}  // namespace
}  // namespace wp2p

int main(int argc, char** argv) {
  wp2p::bench::ArgParser{argc, argv};
  wp2p::figure_9ab(5 * 1000 * 1000, "a");
  wp2p::figure_9ab(100 * 1000 * 1000, "b");
  wp2p::figure_9c();
  wp2p::bench::print_runner_summary();
  return wp2p::bench::trace_report();
}
