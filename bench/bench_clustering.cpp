// Incentive-clustering bench: heterogeneous-bandwidth swarms, free riders,
// and the mobile-exile question.
//
// Tables:
//   1. Clustering by bandwidth class (Legout et al., arXiv:cs/0703107) — a
//      wired 3-tier swarm (slow/mid/fast, 5 leeches each, one seed). Each
//      class's unchoke-time clustering coefficient is compared against an
//      empirical shuffled baseline (class labels permuted): tit-for-tat alone
//      should make same-class affinity emerge in the upper tiers.
//   2. Free rider in the same swarm — a leech with a ~1 KBps upload limit.
//      Its download yield (relative to the mean contributing leech) and its
//      dependence on seed provisioning quantify how hard tit-for-tat
//      punishes it.
//   3. The mobile-exile cross — the mid tier roams across 3 asymmetric cells
//      (thin uplink, fat downlink) while slow/fast stay wired. Rows grow the
//      mobility stack: wired baseline, naive mobile, +AM, +LIHD with identity
//      retention + role reversal. Does mobility exile the mid tier from its
//      cluster, and does the paper's stack buy it back in?
//
// Affinity is a leech-phase quantity, and only while reciprocation is LIVE:
// every peer's outgoing accounting is frozen once it crosses 80% completion
// (ClusteringProbe::freeze) — beyond that point its same-tier partners lose
// interest in it and its unchoke time drifts down-tier exactly like a seed's
// would.
//
// Flags (on top of the shared bench flags):
//   --roam S    mid-tier hand-off interval in seconds (default 25)
//
// Output is byte-identical for any --jobs: every sweep runs through
// bench::over_seeds_map and aggregates in run-index order.
#include <algorithm>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/am_filter.hpp"
#include "core/lihd.hpp"
#include "exp/swarm.hpp"
#include "trace/invariant_checker.hpp"
#include "trace/recorder.hpp"

namespace wp2p {
namespace {

struct ClusterBenchOptions {
  double roam_interval_s = 25.0;
};

ClusterBenchOptions& cluster_options() {
  static ClusterBenchOptions opts;
  return opts;
}

constexpr int kPerClass = 5;      // leeches per bandwidth class
constexpr int kNumClasses = 3;    // slow / mid / fast
constexpr double kDeadline = 600.0;
// Wired clustering tables: big enough that the fast tier spends several choke
// rounds mid-download. The mobility cross uses half of it — the mid tier over
// cells is slower and the cross is about completion, not affinity depth.
constexpr std::int64_t kFileBytes = 48 << 20;
constexpr std::int64_t kMobileFileBytes = 24 << 20;

bt::ClientConfig base_config() {
  bt::ClientConfig config;
  config.announce_interval = sim::seconds(20.0);
  // 2 regular slots << the number of same-class partners (4): the choker has
  // room to express a preference, per-slot rates are high enough to contrast
  // the tiers sharply, and the optimistic slot is the only forced cross-tier
  // mixing. (3 slots was tried: the extra slot becomes a standing cross-tier
  // leak and every coefficient collapses toward the shuffled baseline.)
  config.unchoke_slots = 2;
  // Rate-dominated choker: credit memory (a mobility aid — it re-seats a
  // returning peer quickly) makes a low-tier peer keep chasing a high-tier
  // one long after reciprocation stopped, which blurs exactly the class
  // boundary this bench measures. Legout's choker is pure current-rate.
  config.credit_to_rate_seconds = 3600.0;
  // Sticky rankings: a 40 s rate window spans four choke rounds, so one slow
  // sample does not demote a locked partner and partnerships survive between
  // decisions instead of reshuffling every round.
  config.rate_window = sim::seconds(40.0);
  return config;
}

// --- Shared scenario: the 3-tier swarm, optionally mobile mid tier ------------

struct TierStats {
  double done = 0.0;    // members complete by the deadline
  double mean_s = 0.0;  // mean completion time of the completed members
  double coeff = -1.0;  // class clustering coefficient
};

struct ClusterOutcome {
  TierStats tier[kNumClasses];
  double shuffled = 0.0;   // empirical label-permutation baseline
  double overall = -1.0;   // unchoke-time-weighted coefficient over classes
  double rider_yield = -1.0;      // rider rate / mean contributing leech rate
  double rider_seed_share = -1.0;
  double rider_rate = -1.0;       // leech-phase download rate, KB/s
  double leech_rate = -1.0;       // mean contributing leech download rate, KB/s
  double roams = 0.0;
  double violations = 0.0;
};

struct MobilityConfig {
  const char* label;
  bool mobile = false;  // mid tier on cells instead of wired
  bool am = false;      // ACK-moderation filter on each mobile's link
  bool rr = false;      // identity retention + role reversal
  bool lihd = false;    // LIHD upload-rate control on each mobile
};

// The asymmetric cell of the mobility cross: HSDPA-ish fat downlink over a
// thin uplink sized to the mid tier's access link, loaded-WLAN contention.
net::WirelessParams asymmetric_cell_params() {
  net::WirelessParams params;
  params.up_capacity = util::Rate::kBps(200.0);
  params.down_capacity = util::Rate::mbps(4.0);
  params.contention_overhead = 0.5;
  return params;
}

ClusterOutcome run_cluster(std::uint64_t seed, bool with_rider, const MobilityConfig& mob,
                           std::int64_t file_bytes = kFileBytes) {
  const ClusterBenchOptions& copts = cluster_options();

  trace::Recorder recorder{/*ring_capacity=*/4};
  trace::InvariantChecker checker;
  recorder.add_sink(&checker);

  // 32 KB pieces: enough pieces (384) that pairwise interest stays alive
  // between choke rounds — with coarse pieces interest flickers and
  // tit-for-tat cannot lock partnerships in.
  auto meta = bt::Metainfo::create("cluster", file_bytes, 32 * 1024, "tr", seed);
  exp::Swarm swarm{seed, meta};
  swarm.world.sim.set_tracer(&recorder);
  exp::ClusteringProbe probe{swarm.world.sim};

  net::CellularTopology* cells = nullptr;
  if (mob.mobile) {
    cells = &swarm.world.enable_cells();
    for (int i = 0; i < 3; ++i) cells->add_cell(asymmetric_cell_params());
  }

  const std::vector<exp::BandwidthClass> classes = exp::three_tier_classes();
  bt::ClientConfig config = base_config();
  auto& seeder = swarm.add_wired("seed0", /*is_seed=*/true, config);
  // Fast initial seed: injection must not be the bottleneck, or completion
  // times measure the seed, not the incentive structure.
  seeder->set_upload_limit(util::Rate::kBps(400.0));
  probe.track(*seeder.client, "seed0", /*bw_class=*/-1, /*is_seed=*/true);

  int total_leeches = 0;
  int done_count = 0;
  std::vector<bt::Client*> leeches;
  std::vector<int> leech_rows;     // matrix row per leeches[] entry
  std::vector<double> leech_done;  // completion time per leeches[] entry, -1 = never
  int rider_idx = -1;
  std::vector<double> done_at[kNumClasses];
  std::vector<std::string> mobile_names;
  std::uint16_t port = 6882;
  for (int cls = 0; cls < kNumClasses; ++cls) {
    for (int i = 0; i < kPerClass; ++i) {
      const std::string name = classes[static_cast<std::size_t>(cls)].label + std::to_string(i);
      bt::ClientConfig lc = config;
      lc.listen_port = port++;
      exp::Swarm::Member* member;
      if (mob.mobile && cls == 1) {
        // The mid tier goes cellular: same upload limit (its tit-for-tat
        // signature), but the access link is now a shared asymmetric cell.
        lc.upload_limit = classes[1].upload_limit;
        lc.retain_peer_id = mob.rr;
        lc.role_reversal = mob.rr;
        member = &swarm.add_cellular(name, false, lc, static_cast<std::size_t>(i % 3));
        mobile_names.push_back(name);
      } else {
        member = &swarm.add_classed(name, false, classes[static_cast<std::size_t>(cls)], lc);
      }
      // Steady-state swarm, not a flash crowd: each leech joins holding a
      // random ~35% of the pieces. In a cold start the single seed's upload
      // rate bounds the piece frontier, so same-class peers hold nearly
      // identical sets and their mutual interest flickers — clustering is a
      // steady-state phenomenon and needs durable pairwise interest.
      member->client->preload(0.35);
      const int row = probe.track(*member->client, name, cls, /*is_seed=*/false);
      bt::Client* client = member->client.get();
      const std::size_t idx = leeches.size();
      member->client->on_complete = [&, cls, client, idx] {
        done_at[cls].push_back(sim::to_seconds(swarm.world.sim.now()));
        leech_done[idx] = sim::to_seconds(swarm.world.sim.now());
        probe.freeze(*client);
        ++done_count;
      };
      leeches.push_back(client);
      leech_rows.push_back(row);
      leech_done.push_back(-1.0);
      ++total_leeches;
    }
  }

  if (with_rider) {
    bt::ClientConfig rc = config;
    rc.listen_port = port++;
    rc.upload_limit = util::Rate::kBps(1.0);
    auto& rider = swarm.add_wired("rider", false, rc);
    // Same preload as everyone else: the comparison is leech vs rider under
    // identical starting conditions, differing only in what they give back.
    rider.client->preload(0.35);
    const int row = probe.track(*rider.client, "rider", /*bw_class=*/-1, /*is_seed=*/false);
    bt::Client* client = rider.client.get();
    rider_idx = static_cast<int>(leeches.size());
    const std::size_t idx = leeches.size();
    rider.client->on_complete = [&, client, idx] {
      leech_done[idx] = sim::to_seconds(swarm.world.sim.now());
      probe.freeze(*client);
      ++done_count;
    };
    leeches.push_back(client);
    leech_rows.push_back(row);
    leech_done.push_back(-1.0);
    ++total_leeches;
  }

  // Affinity is measured while reciprocation is LIVE: a peer above ~80%
  // completion has little left to want, its same-tier partners lose interest
  // in it (and it in them), and its remaining unchoke time drifts down-tier
  // exactly like a seed's would. Freeze each row at 80%, not at completion.
  sim::PeriodicTask freeze_task{swarm.world.sim, sim::seconds(2.0), [&] {
    for (bt::Client* leech : leeches) {
      if (leech->store().completed_fraction() >= 0.8) probe.freeze(*leech);
    }
  }};
  freeze_task.start();

  std::deque<core::AmFilter> am_filters;
  std::deque<core::LihdController> lihds;
  std::optional<net::RoamingModel> roam;
  if (mob.mobile) {
    for (auto& member : swarm.members) {
      const std::string& name = member.host->node->name();
      if (std::find(mobile_names.begin(), mobile_names.end(), name) == mobile_names.end()) {
        continue;
      }
      if (mob.am) {
        am_filters.emplace_back(swarm.world.sim);
        member.host->node->add_egress_filter(&am_filters.back());
        member.host->node->add_ingress_filter(&am_filters.back());
      }
      if (mob.lihd) {
        core::LihdConfig lconf;
        lconf.max_upload = util::Rate::kBps(200.0);
        lihds.emplace_back(swarm.world.sim, *member.client, lconf);
      }
    }
    roam.emplace(*cells);
    roam->commute(mobile_names, copts.roam_interval_s, /*horizon_s=*/240.0, seed);
    roam->start();
  }

  // Staggered joins: starting every client at t=0 synchronizes every choke
  // round swarm-wide (all decisions fire at t=10,20,...), a simultaneous
  // best-response dynamic that reshuffles globally each round and never
  // converges. Real peers join at arbitrary times; spreading the starts
  // desynchronizes the rounds.
  {
    std::size_t i = 0;
    for (auto& member : swarm.members) {
      bt::Client* client = member.client.get();
      swarm.world.sim.after(sim::seconds(0.1 + 0.73 * static_cast<double>(i++)),
                            [client] { client->start(); });
    }
  }
  for (auto& lihd : lihds) lihd.start();
  while (sim::to_seconds(swarm.world.sim.now()) < kDeadline && done_count < total_leeches) {
    swarm.run_for(1.0);
  }
  probe.detach();
  swarm.world.sim.set_tracer(nullptr);

  ClusterOutcome out;
  const metrics::TransferMatrix& matrix = probe.matrix();
  for (int cls = 0; cls < kNumClasses; ++cls) {
    TierStats& tier = out.tier[cls];
    tier.done = static_cast<double>(done_at[cls].size());
    for (double t : done_at[cls]) tier.mean_s += t / std::max(1.0, tier.done);
    tier.coeff = matrix.clustering_coefficient(cls);
  }
  out.shuffled = matrix.shuffled_coefficient(seed);
  out.overall = matrix.overall_coefficient();
  if (with_rider) {
    // Everyone preloads the same fraction and (given time) completes, so raw
    // byte totals cannot separate the rider from a leech — the rider's
    // penalty is TIME. Yield compares leech-phase download rates: bytes the
    // matrix saw arrive at the row, over the time it took to complete (or the
    // whole run if it never did).
    const auto rate_of = [&](std::size_t k) {
      const double end = leech_done[k] >= 0.0 ? leech_done[k]
                                              : sim::to_seconds(swarm.world.sim.now());
      if (end <= 0.0) return 0.0;
      return static_cast<double>(matrix.total_downloaded(leech_rows[k])) / end / 1000.0;
    };
    double rate_sum = 0.0;
    int rate_n = 0;
    for (std::size_t k = 0; k < leeches.size(); ++k) {
      if (static_cast<int>(k) == rider_idx) continue;
      rate_sum += rate_of(k);
      ++rate_n;
    }
    out.leech_rate = rate_n > 0 ? rate_sum / static_cast<double>(rate_n) : -1.0;
    out.rider_rate = rate_of(static_cast<std::size_t>(rider_idx));
    out.rider_yield = out.leech_rate > 0.0 ? out.rider_rate / out.leech_rate : -1.0;
    out.rider_seed_share = matrix.seed_share(leech_rows[static_cast<std::size_t>(rider_idx)]);
  }
  if (roam) out.roams = static_cast<double>(roam->executed());
  out.violations = static_cast<double>(checker.violations().size());
  return out;
}

// --- Table 1: clustering by bandwidth class -----------------------------------

int clustering_table() {
  const MobilityConfig wired{.label = "wired"};
  const std::vector<ClusterOutcome> runs = bench::over_seeds_map<ClusterOutcome>(
      3, 8400, [&](std::uint64_t s) { return run_cluster(s, /*with_rider=*/false, wired); });

  metrics::Table table{
      "Clustering by bandwidth class (wired 3-tier swarm, 5 leeches/class + "
      "1 seed, 48 MB, leech-phase unchoke time)"};
  table.columns({"class", "upload limit (KB/s)", "complete", "mean completion (s)",
                 "coefficient", "shuffled baseline", "violations"});
  const std::vector<exp::BandwidthClass> classes = exp::three_tier_classes();
  double total_violations = 0.0;
  bool all_complete = true;
  metrics::RunStats shuffled, overall;
  for (const ClusterOutcome& out : runs) {
    shuffled.add(out.shuffled);
    overall.add(out.overall);
    total_violations += out.violations;
  }
  metrics::RunStats coeff_by_class[kNumClasses];
  for (int cls = 0; cls < kNumClasses; ++cls) {
    metrics::RunStats done, mean_s;
    for (const ClusterOutcome& out : runs) {
      done.add(out.tier[cls].done);
      mean_s.add(out.tier[cls].mean_s);
      if (out.tier[cls].coeff > -1.0) coeff_by_class[cls].add(out.tier[cls].coeff);
      if (out.tier[cls].done < kPerClass) all_complete = false;
    }
    table.row({classes[static_cast<std::size_t>(cls)].label,
               metrics::Table::num(
                   classes[static_cast<std::size_t>(cls)].upload_limit.bytes_per_sec() / 1000.0, 0),
               metrics::Table::num(done.mean()), metrics::Table::num(mean_s.mean()),
               metrics::Table::num(coeff_by_class[cls].mean(), 3),
               metrics::Table::num(shuffled.mean(), 3),
               metrics::Table::num(total_violations, 0)});
  }
  table.row({"overall", "-", "-", "-", metrics::Table::num(overall.mean(), 3),
             metrics::Table::num(shuffled.mean(), 3), metrics::Table::num(total_violations, 0)});
  bench::show(table);
  bench::print_shape_note(
      "tit-for-tat clusters the upper tiers: mid and fast sit above the "
      "label-shuffled baseline and faster tiers finish first; the slow tier "
      "is reported but not contracted (see comment)");
  int rc = 0;
  auto expect = [&](bool ok, const char* what) {
    std::printf("  %s: %s\n", ok ? "ok" : "FAIL", what);
    if (!ok) rc = 1;
  };
  expect(all_complete, "every leech completes in every run");
  expect(overall.mean() > shuffled.mean() + 0.03,
         "overall clustering coefficient clears the shuffled baseline");
  expect(coeff_by_class[2].mean() > shuffled.mean() + 0.05,
         "fast class clusters clearly above the shuffled baseline");
  expect(coeff_by_class[1].mean() > shuffled.mean(),
         "mid class clusters above the shuffled baseline");
  // The slow tier is NOT contracted. In a 15-leech swarm the 10 up-tier peers
  // optimistically gift some slow peer every ~45 s; a 10 s gift at 100-400
  // KB/s dominates a slow partner's steady 15 KB/s for a full rate window, so
  // slow peers spend much of their slot time chasing gifters that never
  // reciprocate. Legout's swarms are an order of magnitude larger — gifts are
  // diluted there, and even so his slowest class clusters least. The
  // coefficient is reported above so regressions stay visible.
  expect(coeff_by_class[2].mean() > coeff_by_class[0].mean(),
         "clustering strengthens with tier bandwidth (fast above slow)");
  expect(total_violations == 0.0, "no invariant violations in any run");
  return rc;
}

// --- Table 2: the free rider ---------------------------------------------------

int free_rider_table() {
  const MobilityConfig wired{.label = "wired"};
  const std::vector<ClusterOutcome> runs = bench::over_seeds_map<ClusterOutcome>(
      3, 8450, [&](std::uint64_t s) { return run_cluster(s, /*with_rider=*/true, wired); });

  metrics::Table table{
      "Free rider in the 3-tier swarm (upload limit 1 KB/s vs contributing "
      "leeches)"};
  table.columns({"identity", "download rate (KB/s)", "yield vs mean leech",
                 "seed-provisioned share", "violations"});
  metrics::RunStats rider_yield, rider_seed, leech_rate, rider_rate;
  double total_violations = 0.0;
  for (const ClusterOutcome& out : runs) {
    rider_yield.add(out.rider_yield);
    rider_seed.add(out.rider_seed_share);
    leech_rate.add(out.leech_rate);
    rider_rate.add(out.rider_rate);
    total_violations += out.violations;
  }
  table.row({"contributing leech (mean)", metrics::Table::num(leech_rate.mean(), 1), "1.00", "-",
             metrics::Table::num(total_violations, 0)});
  table.row({"free rider", metrics::Table::num(rider_rate.mean(), 1),
             metrics::Table::num(rider_yield.mean(), 2),
             metrics::Table::num(rider_seed.mean(), 2),
             metrics::Table::num(total_violations, 0)});
  bench::show(table);
  bench::print_shape_note(
      "the free rider's leech-phase download rate is a fraction of a "
      "contributing leech's, and what it does get leans on seed provisioning");
  int rc = 0;
  auto expect = [&](bool ok, const char* what) {
    std::printf("  %s: %s\n", ok ? "ok" : "FAIL", what);
    if (!ok) rc = 1;
  };
  expect(rider_yield.mean() < 0.85,
         "free rider downloads materially slower than the mean contributing leech");
  expect(rider_seed.mean() > 0.0, "what the rider does get leans on the seed");
  expect(total_violations == 0.0, "no invariant violations in any run");
  return rc;
}

// --- Table 3: the mobile-exile cross ------------------------------------------

int mobile_exile_table() {
  const ClusterBenchOptions& copts = cluster_options();
  const MobilityConfig configs[] = {
      {.label = "wired mid tier (baseline)"},
      {.label = "naive mobile", .mobile = true},
      {.label = "+AM (ACK moderation)", .mobile = true, .am = true},
      {.label = "+LIHD + identity retention", .mobile = true, .am = true, .rr = true,
       .lihd = true},
  };
  char title[192];
  std::snprintf(title, sizeof title,
                "Mobile-exile cross: mid tier roams 3 asymmetric cells "
                "(hand-off every ~%.0f s) while slow/fast stay wired",
                copts.roam_interval_s);
  metrics::Table table{title};
  table.columns({"mid-tier stack", "mid complete", "mid completion (s)", "mid coefficient",
                 "roams", "violations"});
  double total_violations = 0.0;
  metrics::RunStats mid_coeff[4], mid_done[4], mid_s[4];
  int row_idx = 0;
  for (const MobilityConfig& cfg : configs) {
    const std::uint64_t base = 8500 + static_cast<std::uint64_t>(row_idx) * 40;
    metrics::RunStats roams;
    double row_violations = 0.0;
    for (const ClusterOutcome& out : bench::over_seeds_map<ClusterOutcome>(
             3, base, [&](std::uint64_t s) { return run_cluster(s, false, cfg, kMobileFileBytes); })) {
      mid_done[row_idx].add(out.tier[1].done);
      if (out.tier[1].done > 0.0) mid_s[row_idx].add(out.tier[1].mean_s);
      if (out.tier[1].coeff > -1.0) mid_coeff[row_idx].add(out.tier[1].coeff);
      roams.add(out.roams);
      row_violations += out.violations;
    }
    total_violations += row_violations;
    table.row({cfg.label, metrics::Table::num(mid_done[row_idx].mean()),
               mid_s[row_idx].count() > 0 ? metrics::Table::num(mid_s[row_idx].mean()) : "-",
               metrics::Table::num(mid_coeff[row_idx].mean(), 3),
               metrics::Table::num(roams.mean()),
               metrics::Table::num(row_violations, 0)});
    ++row_idx;
  }
  bench::show(table);
  bench::print_shape_note(
      "going mobile costs the mid tier time against its wired baseline; the "
      "paper's stack claws the loss back without surrendering its cluster");
  int rc = 0;
  auto expect = [&](bool ok, const char* what) {
    std::printf("  %s: %s\n", ok ? "ok" : "FAIL", what);
    if (!ok) rc = 1;
  };
  expect(mid_done[0].mean() >= kPerClass, "wired baseline: the mid tier always completes");
  expect(mid_done[3].mean() >= mid_done[1].mean(),
         "full stack completes at least as many mid peers as the naive mobile");
  expect(mid_s[1].count() == 0 || mid_s[3].count() == 0 ||
             mid_s[3].mean() <= mid_s[1].mean() + 1.0,
         "full stack is no slower than the naive mobile");
  expect(total_violations == 0.0, "no invariant violations in any configuration");
  return rc;
}

}  // namespace
}  // namespace wp2p

int main(int argc, char** argv) {
  wp2p::ClusterBenchOptions& copts = wp2p::cluster_options();
  std::vector<char*> shared_args{argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--roam") {
      if (++i >= argc) {
        std::fprintf(stderr, "--roam expects a value\n");
        return 2;
      }
      copts.roam_interval_s = std::atof(argv[i]);
      if (copts.roam_interval_s <= 0.0) {
        std::fprintf(stderr, "--roam: bad interval\n");
        return 2;
      }
    } else {
      shared_args.push_back(argv[i]);
    }
  }
  wp2p::bench::ArgParser{static_cast<int>(shared_args.size()), shared_args.data()};

  int rc = wp2p::clustering_table();
  const int rider_rc = wp2p::free_rider_table();
  if (rc == 0) rc = rider_rc;
  const int exile_rc = wp2p::mobile_exile_table();
  if (rc == 0) rc = exile_rc;
  wp2p::bench::print_runner_summary();
  const int trace_rc = wp2p::bench::trace_report();
  return rc != 0 ? rc : trace_rc;
}
