// Micro-benchmarks (google-benchmark) for the core data structures and the
// simulation substrate: bencode, bitfields, selectors, the event queue, the
// piece store, and end-to-end simulated-swarm event throughput.
#include <benchmark/benchmark.h>

#include "bt/bencode.hpp"
#include "bt/bitfield.hpp"
#include "bt/metainfo.hpp"
#include "bt/piece_store.hpp"
#include "bt/selector.hpp"
#include "exp/parallel_runner.hpp"
#include "exp/swarm.hpp"
#include "sim/simulator.hpp"

namespace wp2p {
namespace {

void BM_BencodeEncode(benchmark::State& state) {
  auto meta = bt::Metainfo::create("file", 688 * 1000 * 1000, 256 * 1024);
  const bt::Bencode value = meta.to_bencode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(value.encode());
  }
}
BENCHMARK(BM_BencodeEncode);

void BM_BencodeDecode(benchmark::State& state) {
  auto meta = bt::Metainfo::create("file", 688 * 1000 * 1000, 256 * 1024);
  const std::string encoded = meta.encode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bt::Bencode::decode(encoded));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(encoded.size()));
}
BENCHMARK(BM_BencodeDecode);

void BM_BitfieldCountAndPrefix(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  bt::Bitfield bf{n};
  for (int i = 0; i < n; i += 2) bf.set(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bf.count());
    benchmark::DoNotOptimize(bf.prefix_length());
    benchmark::DoNotOptimize(bf.first_missing());
  }
}
BENCHMARK(BM_BitfieldCountAndPrefix)->Arg(400)->Arg(4000);

void BM_RarestFirstPick(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  sim::Rng rng{7};
  std::vector<int> availability(static_cast<std::size_t>(n));
  for (auto& a : availability) a = static_cast<int>(rng.below(30));
  std::vector<int> candidates;
  for (int i = 0; i < n; i += 3) candidates.push_back(i);
  bt::RarestFirstSelector selector;
  for (auto _ : state) {
    bt::SelectionContext ctx{candidates, availability, 0.5, 0, rng};
    benchmark::DoNotOptimize(selector.pick(ctx));
  }
}
BENCHMARK(BM_RarestFirstPick)->Arg(400)->Arg(4000);

void BM_EventQueueScheduleAndRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < 1000; ++i) {
      sim.after(sim::microseconds(i * 7 % 997), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleAndRun);

void BM_PieceStoreMarkAllBlocks(benchmark::State& state) {
  auto meta = bt::Metainfo::create("file", 100 * 1000 * 1000, 256 * 1024);
  for (auto _ : state) {
    bt::PieceStore store{meta};
    for (int p = 0; p < store.piece_count(); ++p) {
      for (int b = 0; b < store.blocks_in_piece(p); ++b) store.mark_block(p, b);
    }
    benchmark::DoNotOptimize(store.complete());
  }
}
BENCHMARK(BM_PieceStoreMarkAllBlocks);

// Worker-pool dispatch overhead and scaling: a batch of small independent
// simulator runs, as the multi-seed bench sweeps issue them.
void BM_ParallelRunnerMap(benchmark::State& state) {
  exp::ParallelRunner runner{static_cast<int>(state.range(0))};
  for (auto _ : state) {
    auto events = runner.map<std::uint64_t>(32, [](int task) {
      sim::Simulator sim{static_cast<std::uint64_t>(task) + 1};
      for (int e = 0; e < 2000; ++e) sim.after(sim::microseconds(e * 13 % 997), [] {});
      sim.run();
      return sim.events_processed();
    });
    benchmark::DoNotOptimize(events.data());
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_ParallelRunnerMap)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

// End-to-end: simulated events per second for a seed->leech 10 MB transfer.
void BM_SwarmTransferEvents(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    exp::Swarm swarm{seed++, bt::Metainfo::create("f", 10 * 1000 * 1000, 256 * 1024)};
    bt::ClientConfig config;
    config.announce_interval = sim::seconds(30.0);
    swarm.add_wired("seed", true, config);
    auto& leech = swarm.add_wired("leech", false, config);
    swarm.start_all();
    swarm.run_until_complete(leech, 600.0);
    state.counters["events"] = static_cast<double>(swarm.world.sim.events_processed());
    benchmark::DoNotOptimize(leech.client->complete());
  }
}
BENCHMARK(BM_SwarmTransferEvents)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wp2p

BENCHMARK_MAIN();
