// Multi-cell topology bench: crowded-cell flash crowds under each downlink
// scheduler, and commuter roaming storms layered on a tracker blackout with
// the paper's mobility stack (AM / RR / PEX) enabled piecewise.
//
// Tables:
//   1. Flash crowd — N stations downloading through ONE loaded cell
//      (contention_overhead 0.5, the recommended loaded-WLAN value; see
//      DESIGN.md) under FIFO, round-robin, and longest-queue-first downlink
//      scheduling.
//   2. Roaming storm — a mobile leecher commuting around the topology every
//      --roam seconds while every tracker is dark, with the recovery stack
//      grown row by row: naive, +AM (ACK moderation), +RR (identity retention
//      + role reversal), +PEX (gossip + bootstrap cache).
//
// Flags (on top of the shared bench flags):
//   --cells N   cells in the roaming-storm topology (default 3)
//   --roam S    commuter hand-off interval in seconds (default 18)
//
// Output is byte-identical for any --jobs: every sweep runs through
// bench::over_seeds_map and aggregates in run-index order.
#include <algorithm>
#include <string>

#include "common.hpp"
#include "core/am_filter.hpp"
#include "exp/faults.hpp"
#include "exp/swarm.hpp"
#include "trace/invariant_checker.hpp"
#include "trace/recorder.hpp"

namespace wp2p {
namespace {

struct CellBenchOptions {
  int cells = 3;
  double roam_interval_s = 18.0;
};

CellBenchOptions& cell_options() {
  static CellBenchOptions opts;
  return opts;
}

// The canonical loaded-WLAN cell (satellite of Figs. 3b/8c: self-contention
// is ON, not the analytic 0 default). Documented in DESIGN.md §9.
net::WirelessParams loaded_cell_params() {
  net::WirelessParams params;
  params.contention_overhead = 0.5;
  return params;
}

// --- Flash crowd: one crowded cell per downlink scheduler ---------------------

struct FlashOutcome {
  double completed = 0.0;   // leeches done by the deadline
  double mean_s = 0.0;      // mean leech completion time
  double slowest_s = 0.0;   // last leech (the discipline's fairness proxy)
  double violations = 0.0;
};

FlashOutcome run_flash_crowd(std::uint64_t seed, net::SchedulerKind sched) {
  constexpr int kStations = 5;
  constexpr double kDuration = 240.0;

  trace::Recorder recorder{/*ring_capacity=*/4};
  trace::InvariantChecker checker;
  recorder.add_sink(&checker);

  auto meta = bt::Metainfo::create("flash", 2 << 20, 256 * 1024, "tr", seed);
  exp::Swarm swarm{seed, meta};
  swarm.world.sim.set_tracer(&recorder);

  net::CellularTopology& cells = swarm.world.enable_cells();
  cells.add_cell(loaded_cell_params(), sched);

  bt::ClientConfig config;
  config.announce_interval = sim::seconds(20.0);
  swarm.add_wired("seed0", /*is_seed=*/true, config);

  FlashOutcome out;
  std::vector<double> done_at;
  for (int i = 0; i < kStations; ++i) {
    bt::ClientConfig lc = config;
    lc.listen_port = static_cast<std::uint16_t>(6882 + i);
    auto& leech = swarm.add_cellular("sta" + std::to_string(i), false, lc, 0);
    leech.client->on_complete = [&done_at, &sim = swarm.world.sim] {
      done_at.push_back(sim::to_seconds(sim.now()));
    };
  }
  swarm.start_all();
  swarm.run_for(kDuration);
  swarm.world.sim.set_tracer(nullptr);

  out.completed = static_cast<double>(done_at.size());
  for (double t : done_at) {
    out.mean_s += t / static_cast<double>(kStations);
    out.slowest_s = std::max(out.slowest_s, t);
  }
  out.violations = static_cast<double>(checker.violations().size());
  return out;
}

int flash_crowd_table() {
  metrics::Table table{
      "Flash crowd through one loaded cell (5 stations, 2 MB each, "
      "contention 0.5) per downlink scheduler"};
  table.columns({"downlink scheduler", "stations complete", "mean completion (s)",
                 "slowest station (s)", "violations"});
  double total_violations = 0.0;
  bool all_complete = true;
  for (const net::SchedulerKind sched :
       {net::SchedulerKind::kFifo, net::SchedulerKind::kRoundRobin,
        net::SchedulerKind::kLongestQueue}) {
    metrics::RunStats completed, mean_s, slowest_s;
    double row_violations = 0.0;
    for (const FlashOutcome& out : bench::over_seeds_map<FlashOutcome>(
             3, 8200, [&](std::uint64_t s) { return run_flash_crowd(s, sched); })) {
      completed.add(out.completed);
      mean_s.add(out.mean_s);
      slowest_s.add(out.slowest_s);
      if (out.completed < 5.0) all_complete = false;
      row_violations += out.violations;
    }
    total_violations += row_violations;
    table.row({net::to_string(sched), metrics::Table::num(completed.mean()),
               metrics::Table::num(mean_s.mean()),
               metrics::Table::num(slowest_s.mean()),
               metrics::Table::num(row_violations, 0)});
  }
  bench::show(table);
  bench::print_shape_note(
      "every discipline drains the crowd with zero invariant violations; "
      "the schedulers trade mean completion against the slowest station");
  int rc = 0;
  auto expect = [&](bool ok, const char* what) {
    std::printf("  %s: %s\n", ok ? "ok" : "FAIL", what);
    if (!ok) rc = 1;
  };
  expect(all_complete, "every station completes under every scheduler");
  expect(total_violations == 0.0, "no invariant violations in any run");
  return rc;
}

// --- Roaming storm on a tracker blackout: AM / RR / PEX ----------------------

struct StormConfig {
  const char* label;
  bool am = false;   // ACK-moderation packet filter on the mobile's link
  bool rr = false;   // identity retention + role reversal
  bool pex = false;  // gossip + bootstrap cache
};

struct StormOutcome {
  double mobile_done = 0.0;  // 1.0 when the commuter finished inside the run
  double mobile_s = -1.0;    // its completion time (-1: never)
  double roams = 0.0;
  double violations = 0.0;
};

// One wired seed (throttled so the download spans the storm), one wired
// leecher, and the commuting mobile. The tracker is dark for the whole storm
// window, so whatever re-knits the mobile after each hand-off is the row's
// mobility stack, not an announce.
StormOutcome run_roaming_storm(std::uint64_t seed, const StormConfig& cfg) {
  const CellBenchOptions& copts = cell_options();
  constexpr double kDuration = 300.0;

  trace::Recorder recorder{/*ring_capacity=*/4};
  trace::InvariantChecker checker;
  recorder.add_sink(&checker);

  auto meta = bt::Metainfo::create("storm", 6 << 20, 256 * 1024, "tr", seed);
  exp::Swarm swarm{seed, meta};
  swarm.world.sim.set_tracer(&recorder);

  net::CellularTopology& cells = swarm.world.enable_cells();
  for (int i = 0; i < copts.cells; ++i) cells.add_cell();

  bt::ClientConfig config;
  config.announce_interval = sim::seconds(20.0);
  config.reconnect = false;  // the rows below are the only re-knit mechanisms
  auto& seeder = swarm.add_wired("seed0", /*is_seed=*/true, config);
  seeder->set_upload_limit(util::Rate::kBps(200.0));
  bt::ClientConfig fc = config;
  fc.listen_port = 6882;
  swarm.add_wired("fix0", /*is_seed=*/false, fc);

  bt::ClientConfig mc = config;
  mc.listen_port = 6883;
  mc.retain_peer_id = cfg.rr;
  mc.role_reversal = cfg.rr;
  mc.pex = cfg.pex;
  mc.bootstrap_cache = cfg.pex;
  auto& mobile = swarm.add_cellular("mob", /*is_seed=*/false, mc, 0);
  core::AmFilter am_filter{swarm.world.sim};
  if (cfg.am) {
    mobile.host->node->add_egress_filter(&am_filter);
    mobile.host->node->add_ingress_filter(&am_filter);
  }

  StormOutcome out;
  mobile.client->on_complete = [&out, &sim = swarm.world.sim] {
    out.mobile_done = 1.0;
    out.mobile_s = sim::to_seconds(sim.now());
  };

  net::RoamingModel roam{cells};
  roam.commute({"mob"}, copts.roam_interval_s, /*horizon_s=*/180.0, seed);
  roam.start();

  sim::FaultPlan plan;
  sim::FaultAction blackout;
  blackout.kind = sim::FaultKind::kTrackerOutage;
  blackout.at = sim::seconds(10.0);
  blackout.duration = sim::seconds(200.0);
  plan.actions.push_back(blackout);
  auto injector = exp::bind_faults(swarm, plan);

  swarm.start_all();
  swarm.run_for(kDuration);
  swarm.world.sim.set_tracer(nullptr);

  out.roams = static_cast<double>(roam.executed());
  out.violations = static_cast<double>(checker.violations().size());
  return out;
}

int roaming_storm_table() {
  const CellBenchOptions& copts = cell_options();
  const StormConfig configs[] = {
      {.label = "naive (no mobility stack)"},
      {.label = "+AM (ACK moderation)", .am = true},
      {.label = "+RR (identity + role reversal)", .am = true, .rr = true},
      {.label = "+PEX (gossip + bootstrap)", .am = true, .rr = true, .pex = true},
  };
  char title[192];
  std::snprintf(title, sizeof title,
                "Commuter roaming storm on a tracker blackout (%d cells, "
                "hand-off every ~%.0f s, tracker dark 10-210 s, 6 MB, 300 s)",
                copts.cells, copts.roam_interval_s);
  metrics::Table table{title};
  table.columns({"mobility stack", "mobile completes %", "mobile completion (s)",
                 "roams", "violations"});
  double total_violations = 0.0;
  bool full_ok = true;
  for (const StormConfig& cfg : configs) {
    metrics::RunStats done, done_s, roams;
    double row_violations = 0.0;
    for (const StormOutcome& out : bench::over_seeds_map<StormOutcome>(
             3, 9300, [&](std::uint64_t s) { return run_roaming_storm(s, cfg); })) {
      done.add(out.mobile_done * 100.0);
      if (out.mobile_s >= 0.0) done_s.add(out.mobile_s);
      roams.add(out.roams);
      row_violations += out.violations;
      // The full stack must finish while every tracker is still dark — a
      // completion after the blackout lifts (210 s) means the mobility stack
      // stalled and the tracker bailed it out.
      if (cfg.pex && (out.mobile_done < 1.0 || out.mobile_s >= 210.0)) full_ok = false;
    }
    total_violations += row_violations;
    table.row({cfg.label, metrics::Table::num(done.mean()),
               done_s.count() > 0 ? metrics::Table::num(done_s.mean()) : "-",
               metrics::Table::num(roams.mean()),
               metrics::Table::num(row_violations, 0)});
  }
  bench::show(table);
  bench::print_shape_note(
      "the full stack finishes the commute during the blackout; the naive "
      "client strands on its first mid-blackout hand-off and can only "
      "recover once the tracker returns");
  int rc = 0;
  auto expect = [&](bool ok, const char* what) {
    std::printf("  %s: %s\n", ok ? "ok" : "FAIL", what);
    if (!ok) rc = 1;
  };
  expect(full_ok, "full stack: the mobile completes inside the blackout in every seeded run");
  expect(total_violations == 0.0, "no invariant violations in any configuration");
  return rc;
}

}  // namespace
}  // namespace wp2p

int main(int argc, char** argv) {
  wp2p::CellBenchOptions& copts = wp2p::cell_options();
  std::vector<char*> shared_args{argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (++i >= argc) {
        std::fprintf(stderr, "%s expects a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[i];
    };
    if (arg == "--cells") {
      copts.cells = std::atoi(value());
      if (copts.cells < 1) {
        std::fprintf(stderr, "--cells: need at least 1\n");
        return 2;
      }
    } else if (arg == "--roam") {
      copts.roam_interval_s = std::atof(value());
      if (copts.roam_interval_s <= 0.0) {
        std::fprintf(stderr, "--roam: bad interval\n");
        return 2;
      }
    } else {
      shared_args.push_back(argv[i]);
    }
  }
  wp2p::bench::ArgParser{static_cast<int>(shared_args.size()), shared_args.data()};

  int rc = wp2p::flash_crowd_table();
  const int storm_rc = wp2p::roaming_storm_table();
  if (rc == 0) rc = storm_rc;
  wp2p::bench::print_runner_summary();
  const int trace_rc = wp2p::bench::trace_report();
  return rc != 0 ? rc : trace_rc;
}
