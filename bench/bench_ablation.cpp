// Ablation benches for the wP2P design choices called out in DESIGN.md:
//   * AM gamma (YOUNG/MATURE threshold) and DUPACK drop ratio
//   * MF pr schedule (linear / quadratic / constant)
//   * LIHD alpha/beta
//   * choker unchoke-slot count
#include "common.hpp"
#include "core/wp2p_client.hpp"
#include "media/playability.hpp"

namespace wp2p {
namespace {

// --- AM parameter ablations (Fig. 8a scenario at BER 1e-5) -----------------------

double run_am_config(std::uint64_t seed, const core::AmConfig& am, double duration_s) {
  exp::World world{seed};
  bench::ScopedTrace trace{world.sim,
                           "ablation/am gamma=" + std::to_string(am.gamma_bytes) +
                               " modulus=" + std::to_string(am.dupack_drop_modulus)};
  bt::Tracker tracker{world.sim};
  auto meta = bt::Metainfo::create("file", 100 * 1000 * 1000, 256 * 1024, "tr", 8);
  net::WirelessParams wless;
  wless.capacity = util::Rate::kBps(120.0);
  wless.bit_error_rate = 1e-5;
  wless.mac_retries = 0;
  tcp::TcpParams small_window;
  small_window.rwnd = 8 * 1024;
  bt::ClientConfig base;
  base.announce_interval = sim::seconds(60.0);

  auto& host_a = world.add_wireless_host("peer", wless, small_window);
  bt::Client peer_client{*host_a.node, *host_a.stack, tracker, meta, base, false};
  auto& host_b = world.add_wireless_host("wp2p", wless, small_window);
  core::WP2PConfig wcfg;
  wcfg.incentive_aware = false;
  wcfg.mobility_aware = false;
  wcfg.am = am;
  wcfg.base = base;
  core::WP2PClient wp2p_client{*host_b.node, *host_b.stack, tracker, meta, wcfg};

  std::vector<int> even, odd;
  for (int p = 0; p < meta.piece_count(); ++p) (p % 2 == 0 ? even : odd).push_back(p);
  peer_client.preload_pieces(even);
  wp2p_client.client().preload_pieces(odd);
  auto faults = bench::apply_bench_faults(world, &tracker, seed, duration_s);
  peer_client.start();
  wp2p_client.start();
  world.sim.run_until(sim::seconds(duration_s));
  return static_cast<double>(wp2p_client.client().stats().payload_downloaded) / duration_s;
}

void ablate_am_gamma() {
  metrics::Table table{"Ablation: AM gamma (YOUNG/MATURE threshold), BER 1e-5"};
  table.columns({"gamma (segments)", "wP2P download (KBps)"});
  for (int segments : {2, 4, 6, 10, 16}) {
    core::AmConfig am;
    am.gamma_bytes = static_cast<std::int64_t>(segments) * 1448;
    auto stats = bench::over_seeds(4, 1600, [&](std::uint64_t s) {
      return run_am_config(s, am, 180.0);
    });
    table.row({std::to_string(segments), bench::kbps(stats.mean())});
  }
  bench::show(table);
}

void ablate_am_dupack() {
  metrics::Table table{"Ablation: AM DUPACK drop modulus (0 = throttling off), BER 1e-5"};
  table.columns({"drop 1-in-N", "wP2P download (KBps)"});
  for (int modulus : {0, 2, 4, 8}) {
    core::AmConfig am;
    am.throttle_dupacks = modulus != 0;
    am.dupack_drop_modulus = modulus == 0 ? 4 : modulus;
    auto stats = bench::over_seeds(4, 1700, [&](std::uint64_t s) {
      return run_am_config(s, am, 180.0);
    });
    table.row({modulus == 0 ? "off" : std::to_string(modulus), bench::kbps(stats.mean())});
  }
  bench::show(table);
}

// --- MF schedule ablation ----------------------------------------------------------

struct MfResult {
  double playable_at_half = 0.0;
  double completion_s = 0.0;
};

MfResult run_mf_variant(std::uint64_t seed, const core::MaConfig& config) {
  exp::World world{seed};
  bench::ScopedTrace trace{world.sim, "ablation/mf"};
  bt::Tracker tracker{world.sim};
  auto meta = bt::Metainfo::create("media", 5 * 1000 * 1000, 256 * 1024, "tr", 13);
  bt::ClientConfig base;
  base.announce_interval = sim::seconds(60.0);
  auto& seed_host = world.add_wired_host("seed");
  bt::Client seeder{*seed_host.node, *seed_host.stack, tracker, meta, base, true};
  auto& leech_host = world.add_wireless_host("mobile");
  bt::Client leech{*leech_host.node, *leech_host.stack, tracker, meta, base, false};
  leech.set_selector(std::make_unique<core::MobilityAwareSelector>(config));
  media::PlayabilityAnalyzer analyzer;
  leech.on_piece_complete = [&](int) { analyzer.sample(leech.store()); };
  seeder.start();
  leech.start();
  while (!leech.complete() && world.sim.now() < sim::minutes(60.0)) {
    world.sim.run_until(world.sim.now() + sim::seconds(1.0));
  }
  return MfResult{analyzer.playable_at(0.5) * 100.0, sim::to_seconds(world.sim.now())};
}

void ablate_mf_schedule() {
  struct Variant {
    const char* label;
    core::MaConfig config;
  };
  core::MaConfig linear;
  core::MaConfig quadratic;
  quadratic.schedule = core::PrSchedule::kQuadratic;
  core::MaConfig constant;
  constant.schedule = core::PrSchedule::kConstant;
  constant.constant_pr = 0.2;
  const Variant variants[] = {
      {"linear (paper)", linear}, {"quadratic", quadratic}, {"constant 0.2", constant}};

  metrics::Table table{"Ablation: MF pr schedule (5 MB file, single seed)"};
  table.columns({"schedule", "playable% at 50% downloaded", "completion time (s)"});
  for (const Variant& v : variants) {
    auto results = bench::over_seeds_map<MfResult>(6, 1800, [&](std::uint64_t s) {
      return run_mf_variant(s, v.config);
    });
    metrics::RunStats playable, completion;
    for (const MfResult& r : results) {
      playable.add(r.playable_at_half);
      completion.add(r.completion_s);
    }
    table.row({v.label, metrics::Table::num(playable.mean()),
               metrics::Table::num(completion.mean())});
  }
  bench::show(table);
}

// --- LIHD alpha/beta ablation --------------------------------------------------------

struct LihdResult {
  double rate = 0.0;
  double final_limit_kbps = 0.0;
};

LihdResult run_lihd_steps(std::uint64_t seed, double alpha, double beta) {
  exp::World world{seed};
  bench::ScopedTrace trace{world.sim, "ablation/lihd alpha=" + std::to_string(alpha) +
                                          " beta=" + std::to_string(beta)};
  bt::Tracker tracker{world.sim};
  auto meta = bt::Metainfo::create("file", 64 * 1000 * 1000, 256 * 1024, "tr", 10);
  bt::ClientConfig base;
  base.announce_interval = sim::seconds(60.0);
  base.unchoke_slots = 2;
  std::vector<std::unique_ptr<bt::Client>> fixed;
  {
    bt::ClientConfig sc = base;
    sc.upload_limit = util::Rate::kBps(75.0);
    auto& host = world.add_wired_host("seed");
    fixed.push_back(std::make_unique<bt::Client>(*host.node, *host.stack, tracker,
                                                 meta, sc, true));
  }
  for (int i = 0; i < 8; ++i) {
    bt::ClientConfig lc = base;
    lc.upload_limit = util::Rate::kBps(36.0) * (0.4 + 0.2 * static_cast<double>(i));
    auto& host = world.add_wired_host("leech" + std::to_string(i));
    fixed.push_back(std::make_unique<bt::Client>(*host.node, *host.stack, tracker,
                                                 meta, lc, false));
    fixed.back()->preload(0.15 + 0.07 * static_cast<double>(i));
  }
  net::WirelessParams wless;
  wless.capacity = util::Rate::kBps(200.0);
  wless.contention_overhead = 1.0;
  auto& mobile = world.add_wireless_host("mobile", wless);
  bt::ClientConfig mc = base;
  mc.unchoke_slots = 5;
  bt::Client client{*mobile.node, *mobile.stack, tracker, meta, mc, false};
  core::LihdConfig lcfg;
  lcfg.alpha = util::Rate::kBps(alpha);
  lcfg.beta = util::Rate::kBps(beta);
  lcfg.max_upload = util::Rate::kBps(200.0);
  core::LihdController lihd{world.sim, client, lcfg};
  for (auto& c : fixed) c->start();
  client.start();
  lihd.start();
  world.sim.run_until(sim::seconds(120.0));
  const std::int64_t down0 = client.stats().payload_downloaded;
  world.sim.run_until(sim::seconds(360.0));
  return LihdResult{static_cast<double>(client.stats().payload_downloaded - down0) / 240.0,
                    lihd.current_limit().kilobytes_per_sec()};
}

void ablate_lihd() {
  metrics::Table table{"Ablation: LIHD step sizes at 200 KBps shared channel"};
  table.columns({"alpha (KBps)", "beta (KBps)", "download (KBps)", "final limit (KBps)"});
  for (auto [alpha, beta] : std::vector<std::pair<double, double>>{
           {5, 5}, {10, 10}, {20, 20}, {10, 20}, {20, 10}}) {
    auto results = bench::over_seeds_map<LihdResult>(4, 1900, [&](std::uint64_t s) {
      return run_lihd_steps(s, alpha, beta);
    });
    metrics::RunStats rate, limit;
    for (const LihdResult& r : results) {
      rate.add(r.rate);
      limit.add(r.final_limit_kbps);
    }
    table.row({metrics::Table::num(alpha, 0), metrics::Table::num(beta, 0),
               bench::kbps(rate.mean()), metrics::Table::num(limit.mean())});
  }
  bench::show(table);
}

// --- Choker slot-count ablation ------------------------------------------------------

double run_choker_slots(std::uint64_t seed, int slots) {
  exp::World world{seed};
  bench::ScopedTrace trace{world.sim, "ablation/choker slots=" + std::to_string(slots)};
  bt::Tracker tracker{world.sim};
  auto meta = bt::Metainfo::create("file", 16 * 1000 * 1000, 256 * 1024, "tr", 14);
  bt::ClientConfig config;
  config.announce_interval = sim::seconds(30.0);
  config.unchoke_slots = slots;
  config.upload_limit = util::Rate::kBps(50.0);
  std::vector<std::unique_ptr<bt::Client>> clients;
  {
    auto& host = world.add_wired_host("seed");
    clients.push_back(std::make_unique<bt::Client>(*host.node, *host.stack, tracker,
                                                   meta, config, true));
  }
  for (int i = 0; i < 9; ++i) {
    auto& host = world.add_wired_host("leech" + std::to_string(i));
    clients.push_back(std::make_unique<bt::Client>(*host.node, *host.stack, tracker,
                                                   meta, config, false));
  }
  for (auto& c : clients) c->start();
  bt::Client& probe = *clients[1];
  while (!probe.complete() && world.sim.now() < sim::minutes(60.0)) {
    world.sim.run_until(world.sim.now() + sim::seconds(5.0));
  }
  return sim::to_seconds(world.sim.now());
}

void ablate_choker_slots() {
  metrics::Table table{"Ablation: unchoke slots (leech completion in a 10-peer swarm)"};
  table.columns({"slots", "completion time (s)"});
  for (int slots : {1, 2, 4, 8}) {
    auto completion = bench::over_seeds(4, 2000, [&](std::uint64_t s) {
      return run_choker_slots(s, slots);
    });
    table.row({std::to_string(slots), metrics::Table::num(completion.mean())});
  }
  bench::show(table);
}

}  // namespace
}  // namespace wp2p

int main(int argc, char** argv) {
  wp2p::bench::ArgParser{argc, argv};
  wp2p::ablate_am_gamma();
  wp2p::ablate_am_dupack();
  wp2p::ablate_mf_schedule();
  wp2p::ablate_lihd();
  wp2p::ablate_choker_slots();
  wp2p::bench::print_runner_summary();
  return wp2p::bench::trace_report();
}
