// Swarm-scale bench: events/sec and wall-clock vs swarm size.
//
// Populates a swarm with flyweight background peers (exp::FlyweightSwarm)
// around a small measured cut of full bt::Clients, sweeps the population from
// hundreds to tens of thousands, and reports simulator throughput at each
// point. Results persist to BENCH_scale.json so the scaling trajectory is
// visible across PRs; CI runs a reduced sweep and gates on regression against
// the committed baseline.
//
//   --sizes A,B,C   comma-separated background-peer counts
//                   (default 100,1000,10000,50000)
//   --duration S    simulated seconds per point (default 60)
//   --out FILE      write results JSON (default BENCH_scale.json; "-" skips)
//   --compare FILE  gate mode: fail (exit 1) if any matching size's
//                   events/sec fell more than --tolerance below FILE's
//   --tolerance F   allowed fractional drop in gate mode (default 0.5)
//
// Shared flags (--seed, --csv, ...) are parsed by bench::ArgParser.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "exp/flyweight.hpp"

namespace wp2p {
namespace {

struct ScaleOptions {
  std::vector<int> sizes{100, 1000, 10000, 50000};
  double duration_s = 60.0;
  std::string out_path = "BENCH_scale.json";
  std::string compare_path;
  double tolerance = 0.5;
};

ScaleOptions& scale_options() {
  static ScaleOptions opts;
  return opts;
}

struct ScalePoint {
  int peers = 0;  // background + measured-cut clients
  std::uint64_t events = 0;
  double wall_s = 0.0;
  double events_per_sec = 0.0;
};

// One point of the sweep: `background` flyweight peers plus a measured cut of
// one full seed and two full leeches, run for duration_s simulated seconds.
ScalePoint run_point(int background, double duration_s, std::uint64_t seed) {
  constexpr int kForeground = 3;
  auto meta = bt::Metainfo::create("scale", 4 * 1024 * 1024, 256 * 1024, "tr", 1);
  exp::Swarm swarm{seed, meta};

  exp::FlyweightSwarm fly{swarm.world, swarm.tracker, meta};
  // One aggregator host per 10k peers: listen ports stay within range and the
  // shared access link's capacity scales with the population it carries.
  const int hosts = (background + 9999) / 10000;
  for (int h = 0; h < hosts; ++h) {
    net::WiredParams link;
    link.up_capacity = util::Rate::mbps(1000.0);
    link.down_capacity = util::Rate::mbps(1000.0);
    fly.add_host(swarm.world.add_wired_host("agg" + std::to_string(h), link));
  }
  fly.add_peers(background);

  bt::ClientConfig config;
  config.announce_interval = sim::seconds(30.0);
  swarm.add_wired("seed0", /*is_seed=*/true, config);
  swarm.add_wired("leech0", /*is_seed=*/false, config);
  swarm.add_wired("leech1", /*is_seed=*/false, config);

  const auto start = std::chrono::steady_clock::now();
  fly.start();
  swarm.start_all();
  swarm.run_for(duration_s);
  const std::chrono::duration<double> wall = std::chrono::steady_clock::now() - start;

  ScalePoint point;
  point.peers = background + kForeground;
  point.events = swarm.world.sim.events_processed();
  point.wall_s = wall.count();
  point.events_per_sec =
      point.wall_s > 0 ? static_cast<double>(point.events) / point.wall_s : 0.0;
  return point;
}

void write_json(const std::vector<ScalePoint>& points, const std::string& path,
                double duration_s) {
  std::ofstream out{path};
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(2);
  }
  out << "{\n  \"bench\": \"scale\",\n  \"duration_s\": " << duration_s
      << ",\n  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const ScalePoint& p = points[i];
    char line[160];
    std::snprintf(line, sizeof line,
                  "    {\"peers\": %d, \"events\": %llu, \"wall_s\": %.3f, "
                  "\"events_per_sec\": %.0f}%s\n",
                  p.peers, static_cast<unsigned long long>(p.events), p.wall_s,
                  p.events_per_sec, i + 1 < points.size() ? "," : "");
    out << line;
  }
  out << "  ]\n}\n";
}

// Minimal extraction of {peers, events_per_sec} pairs from a BENCH_scale.json
// written by write_json above (or hand-edited to the same shape).
std::vector<ScalePoint> read_baseline(const std::string& path) {
  std::ifstream in{path};
  if (!in) {
    std::fprintf(stderr, "cannot read baseline %s\n", path.c_str());
    std::exit(2);
  }
  std::vector<ScalePoint> points;
  std::string line;
  while (std::getline(in, line)) {
    const char* peers_key = std::strstr(line.c_str(), "\"peers\":");
    const char* rate_key = std::strstr(line.c_str(), "\"events_per_sec\":");
    if (peers_key == nullptr || rate_key == nullptr) continue;
    ScalePoint p;
    p.peers = std::atoi(peers_key + std::strlen("\"peers\":"));
    p.events_per_sec = std::atof(rate_key + std::strlen("\"events_per_sec\":"));
    points.push_back(p);
  }
  return points;
}

// Gate: every size present in both runs must hold events/sec within the
// tolerance band below the baseline. Faster is always fine.
int compare_against_baseline(const std::vector<ScalePoint>& current) {
  const ScaleOptions& opts = scale_options();
  const std::vector<ScalePoint> baseline = read_baseline(opts.compare_path);
  int failures = 0;
  for (const ScalePoint& p : current) {
    const ScalePoint* base = nullptr;
    for (const ScalePoint& b : baseline) {
      if (b.peers == p.peers) base = &b;
    }
    if (base == nullptr || base->events_per_sec <= 0) {
      std::printf("gate: %d peers — no baseline point, skipped\n", p.peers);
      continue;
    }
    const double ratio = p.events_per_sec / base->events_per_sec;
    const bool ok = ratio >= 1.0 - opts.tolerance;
    std::printf("gate: %d peers — %.0f ev/s vs baseline %.0f (%.2fx) %s\n", p.peers,
                p.events_per_sec, base->events_per_sec, ratio, ok ? "ok" : "REGRESSION");
    failures += ok ? 0 : 1;
  }
  return failures == 0 ? 0 : 1;
}

int scale_main() {
  const ScaleOptions& opts = scale_options();
  metrics::Table table{"Simulator throughput vs swarm size (flyweight background peers)"};
  table.columns({"peers", "events", "wall_s", "events/s"});
  std::vector<ScalePoint> points;
  for (int size : opts.sizes) {
    const ScalePoint p = run_point(size, opts.duration_s, bench::base_seed(1));
    points.push_back(p);
    table.row({metrics::Table::num(p.peers, 0),
               metrics::Table::num(static_cast<double>(p.events), 0),
               metrics::Table::num(p.wall_s, 3), metrics::Table::num(p.events_per_sec, 0)});
    std::fprintf(stderr, "scale: %d peers done (%.2fs wall)\n", p.peers, p.wall_s);
  }
  bench::show(table);
  if (opts.out_path != "-") write_json(points, opts.out_path, opts.duration_s);
  if (!opts.compare_path.empty()) return compare_against_baseline(points);
  return 0;
}

}  // namespace
}  // namespace wp2p

int main(int argc, char** argv) {
  // Peel off this binary's own flags before the shared parser (which rejects
  // anything it does not know).
  wp2p::ScaleOptions& sopts = wp2p::scale_options();
  std::vector<char*> shared_args{argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (++i >= argc) {
        std::fprintf(stderr, "%s expects a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[i];
    };
    if (arg == "--sizes") {
      sopts.sizes.clear();
      std::stringstream ss{value()};
      std::string item;
      while (std::getline(ss, item, ',')) {
        const int n = std::atoi(item.c_str());
        if (n < 0) {
          std::fprintf(stderr, "--sizes: bad count '%s'\n", item.c_str());
          return 2;
        }
        sopts.sizes.push_back(n);
      }
      if (sopts.sizes.empty()) {
        std::fprintf(stderr, "--sizes: empty list\n");
        return 2;
      }
    } else if (arg == "--duration") {
      sopts.duration_s = std::atof(value());
      if (sopts.duration_s <= 0) {
        std::fprintf(stderr, "--duration: bad value\n");
        return 2;
      }
    } else if (arg == "--out") {
      sopts.out_path = value();
    } else if (arg == "--compare") {
      sopts.compare_path = value();
    } else if (arg == "--tolerance") {
      sopts.tolerance = std::atof(value());
      if (sopts.tolerance <= 0 || sopts.tolerance >= 1) {
        std::fprintf(stderr, "--tolerance: expected a fraction in (0,1)\n");
        return 2;
      }
    } else {
      shared_args.push_back(argv[i]);
    }
  }
  wp2p::bench::ArgParser{static_cast<int>(shared_args.size()), shared_args.data()};
  return wp2p::scale_main();
}
