// Crash-consistent session persistence: cold restart vs resume-from-snapshot.
//
// The testbed is the paper's commuting mobile host made mortal: a cellular
// leech roams between two cells, naps once (battery/app-kill suspend through
// the roaming model's power schedule), and is then killed outright mid-
// download — process gone, piece store gone. Ten seconds later the app
// restarts on the same host and the three arms diverge:
//
//   cold restart   no resume journal; the new incarnation re-fetches the
//                  whole file.
//   resume         journaled checkpoints on clean stable storage; the new
//                  incarnation restores its bitfield, credit standing, and
//                  peer identity from the newest snapshot and only fetches
//                  what the snapshot missed.
//   resume (torn)  same journal but the storage tears every commit mid-write
//                  (truncated payload under a full-payload checksum). The
//                  loader must detect each torn record by its chain checksum,
//                  discard the whole journal, and degrade to a cold start —
//                  never claiming a piece the journal cannot vouch for.
//
// Shape contracts (exit 1 if broken): resume completes measurably earlier
// and re-downloads less than cold restart; the torn arm discards checksum-
// invalid records; and in every arm the restored bitfield is a subset of the
// pieces actually verified before the kill.
#include <string>
#include <vector>

#include "bt/resume_store.hpp"
#include "common.hpp"
#include "net/cell.hpp"
#include "sim/stable_storage.hpp"

namespace wp2p {
namespace {

enum class Arm { kCold, kResume, kTorn };

const char* arm_name(Arm arm) {
  switch (arm) {
    case Arm::kCold: return "cold restart";
    case Arm::kResume: return "resume";
    case Arm::kTorn: return "resume (torn writes)";
  }
  return "?";
}

constexpr double kKillAt = 60.0;     // app killed this far into the run
constexpr double kDeadFor = 10.0;    // gap before the restart
constexpr double kHorizon = 300.0;   // total simulated time

struct ResumeOutcome {
  double completion_s = kHorizon;  // horizon = did not finish
  bool completed = false;
  double frac_at_restart = 0.0;    // store fraction right after the restart
  std::int64_t refetched = 0;      // payload the second incarnation downloaded
  std::uint64_t restored = 0;      // pieces restored from the snapshot
  std::uint64_t discarded = 0;     // checksum-invalid journal records skipped
  std::uint64_t cold_restarts = 0;
  std::uint64_t torn_writes = 0;
  bool subset_ok = true;  // restored bitfield ⊆ pre-kill verified pieces
};

ResumeOutcome run_arm(std::uint64_t seed, Arm arm) {
  auto meta = bt::Metainfo::create("resume", 8 << 20, 256 * 1024, "tr", seed);
  exp::Swarm swarm{seed, meta};
  bench::ScopedTrace trace_guard{
      swarm.world.sim,
      std::string{"resume/"} + arm_name(arm) + "/seed=" + std::to_string(seed)};

  net::CellularTopology& cells = swarm.world.enable_cells();
  cells.add_cell();
  cells.add_cell();

  exp::Swarm::Member& seeder = swarm.add_wired("seed0", /*is_seed=*/true);
  // Throttle the seed so the kill at 60 s lands mid-download: ~100 KB/s
  // against an 8 MB file leaves the first incarnation with real but partial
  // progress for the journal to carry over.
  seeder.client->set_upload_limit(util::Rate::kBps(100.0));

  bt::ClientConfig mob_cfg;
  mob_cfg.listen_port = 6882;
  mob_cfg.retain_peer_id = true;
  mob_cfg.role_reversal = true;
  mob_cfg.resume_checkpoint_interval = sim::seconds(5.0);
  exp::Swarm::Member& mob = swarm.add_cellular("mob", /*is_seed=*/false, mob_cfg,
                                               /*cell_id=*/0);

  // The commute plus one battery nap before the kill: the nap exercises the
  // suspend path (which also writes a snapshot) and the roaming keeps the
  // host's address churning around the whole lifecycle.
  net::RoamingModel roaming{cells};
  roaming.commute({"mob"}, /*interval_s=*/35.0, kHorizon, seed);
  roaming.add_suspend(/*at_s=*/30.0, "mob", /*duration_s=*/8.0);
  roaming.on_power = [&mob](const std::string& node, bool suspend) {
    if (node != "mob" || mob.client == nullptr) return;
    if (suspend) {
      mob.client->suspend();
    } else {
      mob.client->resume();
    }
  };

  // The "disk": survives the app kill, so both incarnations share it. The
  // torn arm tears every commit — deterministic, so the shape contract on
  // journal rejection holds for any seed count.
  sim::StorageParams storage_params;
  if (arm == Arm::kTorn) storage_params.torn_write_prob = 1.0;
  sim::StableStorage storage{swarm.world.sim, storage_params, "mob"};
  bt::ResumeStore resume_store{storage, meta.info_hash};
  if (arm != Arm::kCold) mob.client->attach_resume(resume_store);

  ResumeOutcome out;
  mob.client->on_complete = [&out, &sim = swarm.world.sim] {
    out.completed = true;
    out.completion_s = sim::to_seconds(sim.now());
  };

  roaming.start();
  swarm.start_all();
  swarm.run_for(kKillAt);

  // Pre-kill ground truth: which pieces the first incarnation verified.
  std::vector<bool> verified(static_cast<std::size_t>(meta.piece_count()));
  for (int p = 0; p < meta.piece_count(); ++p) {
    verified[static_cast<std::size_t>(p)] = mob.client->store().has_piece(p);
  }
  mob.client->stop();
  mob.client.reset();  // the app is gone; only the journal survives
  swarm.run_for(kDeadFor);

  mob.client = std::make_unique<bt::Client>(*mob.host->node, *mob.host->stack,
                                            swarm.tracker, swarm.meta, mob_cfg,
                                            /*is_seed=*/false);
  if (arm != Arm::kCold) mob.client->attach_resume(resume_store);
  mob.client->on_complete = [&out, &sim = swarm.world.sim] {
    out.completed = true;
    out.completion_s = sim::to_seconds(sim.now());
  };
  mob.client->start();  // restore (if any) happens synchronously in here

  // The restored bitfield must never claim a piece the first incarnation did
  // not verify — a torn or stale journal degrades, it never invents data.
  for (int p = 0; p < meta.piece_count(); ++p) {
    if (mob.client->store().has_piece(p) && !verified[static_cast<std::size_t>(p)]) {
      out.subset_ok = false;
    }
  }
  out.frac_at_restart = mob.client->store().completed_fraction();

  swarm.run_for(kHorizon - kKillAt - kDeadFor);

  out.refetched = mob.client->stats().payload_downloaded;
  out.restored = mob.client->stats().resume_restored_pieces;
  out.cold_restarts = mob.client->stats().cold_restarts;
  out.discarded = storage.stats().records_discarded;
  out.torn_writes = storage.stats().torn_writes;
  return out;
}

int resume_table() {
  metrics::Table table{
      "Cold restart vs journaled resume for a commuting mobile host "
      "(8 MB, app killed at 60 s, restarted at 70 s, 300 s horizon)"};
  table.columns({"restart arm", "completion (s)", "% at restart", "refetched (MiB)",
                 "restored pieces", "records discarded", "subset ok"});

  struct ArmAggregate {
    metrics::RunStats completion, frac, refetched, restored, discarded;
    int completions = 0;
    int runs = 0;
    std::uint64_t torn = 0;
    bool subset_ok = true;
  };
  ArmAggregate aggregates[3];
  for (const Arm arm : {Arm::kCold, Arm::kResume, Arm::kTorn}) {
    ArmAggregate& agg = aggregates[static_cast<int>(arm)];
    for (const ResumeOutcome& out : bench::over_seeds_map<ResumeOutcome>(
             5, 8200, [&](std::uint64_t s) { return run_arm(s, arm); })) {
      agg.completion.add(out.completion_s);
      agg.frac.add(out.frac_at_restart * 100.0);
      agg.refetched.add(static_cast<double>(out.refetched) / (1 << 20));
      agg.restored.add(static_cast<double>(out.restored));
      agg.discarded.add(static_cast<double>(out.discarded));
      agg.completions += out.completed ? 1 : 0;
      ++agg.runs;
      agg.torn += out.torn_writes;
      agg.subset_ok = agg.subset_ok && out.subset_ok;
    }
    table.row({arm_name(arm), metrics::Table::num(agg.completion.mean()),
               metrics::Table::num(agg.frac.mean()),
               metrics::Table::num(agg.refetched.mean()),
               metrics::Table::num(agg.restored.mean()),
               metrics::Table::num(agg.discarded.mean()),
               agg.subset_ok ? "yes" : "NO"});
  }
  bench::show(table);
  bench::print_shape_note(
      "resume restarts with most of its pre-kill progress and finishes well "
      "before the cold restart; torn-write journals are detected by the "
      "checksum chain and only degrade the restore — no arm ever resurrects "
      "an unverified piece");

  const ArmAggregate& cold = aggregates[static_cast<int>(Arm::kCold)];
  const ArmAggregate& resume = aggregates[static_cast<int>(Arm::kResume)];
  const ArmAggregate& torn = aggregates[static_cast<int>(Arm::kTorn)];
  int rc = 0;
  auto expect = [&](bool ok, const char* what) {
    std::printf("  %s: %s\n", ok ? "ok" : "FAIL", what);
    if (!ok) rc = 1;
  };
  expect(cold.completions == cold.runs && resume.completions == resume.runs,
         "cold and resume arms both finish inside the horizon");
  expect(resume.completion.mean() < cold.completion.mean(),
         "resume completes earlier than cold restart");
  expect(resume.refetched.mean() < cold.refetched.mean(),
         "resume re-downloads less than cold restart");
  expect(resume.frac.mean() > 0.0 && cold.frac.mean() == 0.0,
         "only the journaled arm restarts with progress");
  expect(resume.restored.mean() > 0.0, "resume restores pieces in every seed");
  expect(torn.torn > 0 && torn.discarded.mean() > 0.0,
         "torn arm tears journal records and the loader discards them");
  expect(torn.restored.mean() == 0.0 && torn.frac.mean() == 0.0,
         "a fully torn journal degrades to a cold start, never a fake restore");
  expect(cold.subset_ok && resume.subset_ok && torn.subset_ok,
         "no arm restores a piece that was not verified before the kill");
  return rc;
}

}  // namespace
}  // namespace wp2p

int main(int argc, char** argv) {
  wp2p::bench::ArgParser{argc, argv};
  const int rc = wp2p::resume_table();
  wp2p::bench::print_runner_summary();
  const int trace_rc = wp2p::bench::trace_report();
  return rc != 0 ? rc : trace_rc;
}
