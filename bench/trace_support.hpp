// Shared --trace / --check-invariants plumbing for the figure benches.
//
// One process-wide trace session (recorder + JSONL sink + invariant checker)
// is shared by every traced scenario in the binary, so a single --trace file
// accumulates all of them, separated by `scenario` marker events. Tracing
// never touches stdout and never perturbs the simulation itself, so bench
// output stays byte-identical with and without --trace.
#pragma once

#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "sim/simulator.hpp"
#include "trace/invariant_checker.hpp"
#include "trace/jsonl.hpp"
#include "trace/recorder.hpp"

namespace wp2p::bench {

// Trace flags shared by every bench binary; filled by ArgParser in main().
struct TraceOptions {
  std::string path;               // --trace FILE; empty = no JSONL sink
  bool check_invariants = false;  // --check-invariants
  bool enabled() const { return !path.empty() || check_invariants; }
};

inline TraceOptions& trace_options() {
  static TraceOptions opts;
  return opts;
}

// Per-thread trace eligibility. Tracing every worker of a multi-seed sweep at
// once would interleave unrelated runs into one stream, so only the sweep's
// base-seed run (see over_seeds_map) and direct main-thread scenarios (the
// ArgParser marks the main thread eligible) may claim the session.
inline bool& trace_eligible() {
  thread_local bool eligible = false;
  return eligible;
}

namespace detail {

struct TraceSession {
  trace::Recorder recorder{1024};
  std::unique_ptr<trace::JsonlWriter> writer;
  std::unique_ptr<trace::InvariantChecker> checker;
  std::mutex claim;  // the recorder serves one simulator at a time

  TraceSession() {
    if (!trace_options().path.empty()) {
      writer = std::make_unique<trace::JsonlWriter>(trace_options().path);
      if (!writer->ok()) {
        std::fprintf(stderr, "trace: cannot open %s for writing\n",
                     trace_options().path.c_str());
        std::exit(2);
      }
      recorder.add_sink(writer.get());
    }
    if (trace_options().check_invariants) {
      checker = std::make_unique<trace::InvariantChecker>();
      recorder.add_sink(checker.get());
    }
  }
};

// Lazily constructed after ArgParser has filled trace_options(); nullptr when
// tracing is off so the common path costs one branch.
inline TraceSession* trace_session() {
  if (!trace_options().enabled()) return nullptr;
  static TraceSession session;
  return &session;
}

}  // namespace detail

// RAII guard attaching the shared trace session to one simulator for the
// duration of a scenario, announced by a `scenario` marker event (which also
// resets the invariant checker's per-flow state). Inactive — one branch, no
// work — when tracing is off or this run is not the sweep's traced run.
class ScopedTrace {
 public:
  ScopedTrace(sim::Simulator& sim, std::string label) {
    detail::TraceSession* session =
        trace_eligible() ? detail::trace_session() : nullptr;
    if (session == nullptr) return;
    if (!session->claim.try_lock()) return;  // another scenario is mid-trace
    session_ = session;
    sim_ = &sim;
    sim_->set_tracer(&session->recorder);
    session->recorder.emit(trace::event(trace::Component::kSim, trace::Kind::kScenario)
                               .on(std::move(label)));
  }

  ~ScopedTrace() {
    if (session_ == nullptr) return;
    sim_->set_tracer(nullptr);
    if (session_->writer) session_->writer->flush();
    session_->claim.unlock();
  }

  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

  bool active() const { return session_ != nullptr; }

 private:
  detail::TraceSession* session_ = nullptr;
  sim::Simulator* sim_ = nullptr;
};

// End-of-main summary. Prints to stderr (stdout stays byte-comparable across
// trace settings) and returns the process exit code: non-zero iff
// --check-invariants saw a violation.
inline int trace_report() {
  detail::TraceSession* session = detail::trace_session();
  if (session == nullptr) return 0;
  std::fprintf(stderr, "trace: %llu events recorded",
               static_cast<unsigned long long>(session->recorder.emitted()));
  if (session->writer) {
    session->writer->flush();
    std::fprintf(stderr, ", %llu lines -> %s",
                 static_cast<unsigned long long>(session->writer->lines_written()),
                 session->writer->path().c_str());
  }
  std::fprintf(stderr, "\n");
  if (session->checker) {
    const auto& violations = session->checker->violations();
    std::fprintf(stderr,
                 "invariants: %llu events checked, %llu matched a rule, "
                 "%zu violations\n",
                 static_cast<unsigned long long>(session->checker->events_checked()),
                 static_cast<unsigned long long>(session->checker->events_matched()),
                 violations.size());
    for (const trace::Violation& v : violations) {
      std::fprintf(stderr, "  VIOLATION %s\n", trace::to_string(v).c_str());
    }
    if (!violations.empty()) return 1;
  }
  return 0;
}

}  // namespace wp2p::bench
