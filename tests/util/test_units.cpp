#include "util/units.hpp"

#include <gtest/gtest.h>

namespace wp2p::util {
namespace {

TEST(Rate, FactoryConversions) {
  EXPECT_DOUBLE_EQ(Rate::bytes_per_sec(1000).bytes_per_sec(), 1000.0);
  EXPECT_DOUBLE_EQ(Rate::kBps(100).bytes_per_sec(), 100000.0);
  EXPECT_DOUBLE_EQ(Rate::mbps(8).bytes_per_sec(), 1e6);
  EXPECT_DOUBLE_EQ(Rate::kbps(8).bytes_per_sec(), 1000.0);
  EXPECT_DOUBLE_EQ(Rate::mbps(1).bps(), 1e6);
}

TEST(Rate, SecondsFor) {
  Rate r = Rate::bytes_per_sec(500);
  EXPECT_DOUBLE_EQ(r.seconds_for(1000), 2.0);
  EXPECT_DOUBLE_EQ(r.seconds_for(0), 0.0);
}

TEST(Rate, ZeroRateNeverCompletes) {
  EXPECT_GT(Rate::zero().seconds_for(1), 1e17);
  EXPECT_TRUE(Rate::zero().is_zero());
}

TEST(Rate, UnlimitedIsRecognized) {
  EXPECT_TRUE(Rate::unlimited().is_unlimited());
  EXPECT_FALSE(Rate::mbps(10000).is_unlimited());
}

TEST(Rate, Arithmetic) {
  Rate a = Rate::kBps(100), b = Rate::kBps(50);
  EXPECT_DOUBLE_EQ((a + b).kilobytes_per_sec(), 150.0);
  EXPECT_DOUBLE_EQ((a - b).kilobytes_per_sec(), 50.0);
  EXPECT_DOUBLE_EQ((a * 2.0).kilobytes_per_sec(), 200.0);
  EXPECT_DOUBLE_EQ((a / 2.0).kilobytes_per_sec(), 50.0);
  EXPECT_LT(b, a);
}

TEST(Format, Bytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2048), "2.00 KiB");
  EXPECT_EQ(format_bytes(3 * kMiB), "3.00 MiB");
}

TEST(Format, RateString) {
  EXPECT_EQ(format_rate(Rate::kBps(128)), "128.0 KBps");
  EXPECT_EQ(format_rate(Rate::unlimited()), "unlimited");
}

}  // namespace
}  // namespace wp2p::util
