#include "util/token_bucket.hpp"

#include <gtest/gtest.h>

namespace wp2p::util {
namespace {

TEST(TokenBucket, StartsFull) {
  TokenBucket bucket{Rate::kBps(10), 1000};
  EXPECT_TRUE(bucket.try_consume(0, 1000));
  EXPECT_FALSE(bucket.try_consume(0, 1));
}

TEST(TokenBucket, RefillsAtRate) {
  TokenBucket bucket{Rate::bytes_per_sec(100), 1000};
  ASSERT_TRUE(bucket.try_consume(0, 1000));
  EXPECT_FALSE(bucket.try_consume(sim::seconds(1.0), 200));  // only 100 back
  EXPECT_TRUE(bucket.try_consume(sim::seconds(2.0), 200));
}

TEST(TokenBucket, CapsAtBurst) {
  TokenBucket bucket{Rate::bytes_per_sec(1000), 500};
  bucket.try_consume(0, 500);
  // After 10 s, 10000 bytes accrued but cap is 500.
  EXPECT_FALSE(bucket.try_consume(sim::seconds(10.0), 501));
  EXPECT_TRUE(bucket.try_consume(sim::seconds(10.0), 500));
}

TEST(TokenBucket, UnlimitedAlwaysConsumes) {
  TokenBucket bucket{Rate::unlimited(), 16};
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(bucket.try_consume(0, 1 << 20));
}

TEST(TokenBucket, TimeUntilComputesDeficit) {
  TokenBucket bucket{Rate::bytes_per_sec(100), 100};
  bucket.try_consume(0, 100);
  // Needs 50 bytes: 0.5 s at 100 B/s (plus 1 us rounding).
  sim::SimTime wait = bucket.time_until(0, 50);
  EXPECT_GE(wait, sim::milliseconds(500.0));
  EXPECT_LE(wait, sim::milliseconds(501.0));
  EXPECT_EQ(bucket.time_until(0, 0), 0);
}

TEST(TokenBucket, ZeroRateNeverRefills) {
  TokenBucket bucket{Rate::zero(), 100};
  bucket.try_consume(0, 100);
  EXPECT_FALSE(bucket.try_consume(sim::seconds(1000.0), 1));
  EXPECT_GT(bucket.time_until(sim::seconds(1000.0), 1), sim::seconds(1e9));
}

TEST(TokenBucket, SetRateTakesEffect) {
  TokenBucket bucket{Rate::bytes_per_sec(10), 1000};
  bucket.try_consume(0, 1000);
  bucket.set_rate(Rate::bytes_per_sec(1000), 0);
  EXPECT_TRUE(bucket.try_consume(sim::seconds(1.0), 900));
}

}  // namespace
}  // namespace wp2p::util
