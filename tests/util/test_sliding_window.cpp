#include "util/sliding_window.hpp"

#include <gtest/gtest.h>

namespace wp2p::util {
namespace {

TEST(WindowedSum, SumsWithinWindow) {
  WindowedSum w{100};
  w.add(0, 5.0);
  w.add(50, 10.0);
  EXPECT_DOUBLE_EQ(w.sum(50), 15.0);
}

TEST(WindowedSum, EvictsOldSamples) {
  WindowedSum w{100};
  w.add(0, 5.0);
  w.add(50, 10.0);
  // Sample at t=0 falls out once now-window >= 0.
  EXPECT_DOUBLE_EQ(w.sum(100), 10.0);
  EXPECT_DOUBLE_EQ(w.sum(150), 0.0);
}

TEST(WindowedSum, RateIsSumOverFullWindowOnceWarm) {
  WindowedSum w{1000};
  w.add(0, 300.0);
  w.add(900, 200.0);
  // A full window has elapsed: divide by the window.
  EXPECT_DOUBLE_EQ(w.rate(1000), 0.2);  // sample at t=0 just evicted
  w.add(1500, 100.0);
  EXPECT_DOUBLE_EQ(w.rate(1500), 0.3);  // samples at 900 and 1500
}

TEST(WindowedSum, WarmUpRateDividesByElapsedSpanNotWindow) {
  WindowedSum w{1000};
  w.add(0, 100.0);
  // Only 100 time units observed; dividing by the 1000-unit window would
  // understate the rate 10x and mislead LIHD's first decisions.
  EXPECT_DOUBLE_EQ(w.rate(100), 1.0);
  w.add(250, 100.0);
  EXPECT_DOUBLE_EQ(w.rate(500), 0.4);
  // From a full window onward the denominator saturates at the window.
  EXPECT_DOUBLE_EQ(w.rate(1200), 0.1);  // only the t=250 sample remains
}

TEST(WindowedSum, FirstSampleRateIsFiniteNotZeroDivide) {
  WindowedSum w{1000};
  w.add(100, 500.0);
  // Span clamps to >= 1 time unit, so the instant after the first sample the
  // rate is the sample itself per unit, not sum/window.
  EXPECT_DOUBLE_EQ(w.rate(100), 500.0);
  EXPECT_DOUBLE_EQ(w.rate(0 + 100), w.sum(100) / 1.0);
}

TEST(WindowedSum, RateBeforeAnySampleIsZero) {
  WindowedSum w{1000};
  EXPECT_DOUBLE_EQ(w.rate(0), 0.0);
  EXPECT_DOUBLE_EQ(w.rate(5000), 0.0);
}

TEST(WindowedSum, ClearResets) {
  WindowedSum w{100};
  w.add(0, 5.0);
  w.clear();
  EXPECT_DOUBLE_EQ(w.sum(0), 0.0);
}

TEST(WindowedSum, ClearRestartsWarmUp) {
  WindowedSum w{1000};
  w.add(0, 100.0);
  w.add(900, 100.0);
  EXPECT_DOUBLE_EQ(w.rate(900), 200.0 / 900.0);
  // A hand-off resets measurement: the next sample begins a new warm-up.
  w.clear();
  EXPECT_DOUBLE_EQ(w.rate(2000), 0.0);
  w.add(2000, 50.0);
  EXPECT_DOUBLE_EQ(w.rate(2100), 0.5);
}

TEST(WindowedSum, ManySamplesStayConsistent) {
  WindowedSum w{10};
  for (int t = 0; t < 1000; ++t) w.add(t, 1.0);
  EXPECT_DOUBLE_EQ(w.sum(999), 10.0);  // exactly the last 10 samples
}

TEST(Ewma, FirstSampleSeeds) {
  Ewma e{0.5};
  EXPECT_FALSE(e.seeded());
  e.add(10.0);
  EXPECT_TRUE(e.seeded());
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(Ewma, ConvergesTowardConstant) {
  Ewma e{0.25};
  e.add(0.0);
  for (int i = 0; i < 100; ++i) e.add(100.0);
  EXPECT_NEAR(e.value(), 100.0, 1e-6);
}

TEST(Ewma, GainControlsResponsiveness) {
  Ewma fast{0.9}, slow{0.1};
  fast.add(0.0);
  slow.add(0.0);
  fast.add(100.0);
  slow.add(100.0);
  EXPECT_GT(fast.value(), slow.value());
}

TEST(Ewma, ResetClears) {
  Ewma e{0.5};
  e.add(42.0);
  e.reset();
  EXPECT_FALSE(e.seeded());
}

}  // namespace
}  // namespace wp2p::util
