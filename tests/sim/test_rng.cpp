#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace wp2p::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{42}, b{42};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{7};
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) ASSERT_LT(rng.below(13), 13u);
}

TEST(Rng, BelowCoversAllValues) {
  Rng rng{7};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusiveBounds) {
  Rng rng{3};
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    auto v = rng.range(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng{9};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng{9};
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.01);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng{11};
  double sum = 0.0;
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / trials, 5.0, 0.1);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng{13};
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent{21};
  Rng child = parent.fork();
  // The child must not replay the parent's stream.
  Rng parent_copy{21};
  parent_copy.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (child.next_u64() == parent.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

}  // namespace
}  // namespace wp2p::sim
