#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace wp2p::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_FALSE(sim.has_pending());
}

TEST(Simulator, ExecutesEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(seconds(3.0), [&] { order.push_back(3); });
  sim.at(seconds(1.0), [&] { order.push_back(1); });
  sim.at(seconds(2.0), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), seconds(3.0));
}

TEST(Simulator, TiesExecuteInSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.at(seconds(1.0), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, AfterSchedulesRelativeToNow) {
  Simulator sim;
  SimTime fired_at = -1;
  sim.at(seconds(5.0), [&] {
    sim.after(seconds(2.0), [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired_at, seconds(7.0));
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  EventId id = sim.at(seconds(1.0), [&] { fired = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelIsIdempotentAndSafeAfterFire) {
  Simulator sim;
  int count = 0;
  EventId id = sim.at(seconds(1.0), [&] { ++count; });
  sim.run();
  sim.cancel(id);  // already fired: no-op
  sim.cancel(id);
  sim.cancel(kInvalidEventId);
  EXPECT_EQ(count, 1);
}

TEST(Simulator, CancelAfterFireDoesNotPoisonPendingCount) {
  Simulator sim;
  EventId id = sim.at(seconds(1.0), [] {});
  sim.run();
  sim.cancel(id);  // stale: the event already fired
  // A stale cancel must not mask genuinely pending work. The leaky
  // implementation kept the id in a tombstone set forever, so the next
  // scheduled event made has_pending() report false.
  sim.at(seconds(2.0), [] {});
  EXPECT_TRUE(sim.has_pending());
  sim.run();
  EXPECT_EQ(sim.now(), seconds(2.0));
}

TEST(Simulator, RepeatedStaleCancelsDoNotAccumulate) {
  Simulator sim;
  // A long-lived simulation cancels many timers that already fired (or never
  // existed). None of them may be retained.
  for (EventId id = 1; id <= 1000; ++id) sim.cancel(id);
  EXPECT_FALSE(sim.has_pending());
  bool fired = false;
  sim.at(seconds(1.0), [&] { fired = true; });
  EXPECT_TRUE(sim.has_pending());
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_FALSE(sim.has_pending());
}

TEST(Simulator, HasPendingTracksCancelledEvents) {
  Simulator sim;
  EventId id = sim.at(seconds(1.0), [] {});
  EXPECT_TRUE(sim.has_pending());
  sim.cancel(id);
  EXPECT_FALSE(sim.has_pending());
  sim.run();
  EXPECT_EQ(sim.now(), 0);
}

TEST(Simulator, RunUntilStopsAtHorizonAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.at(seconds(1.0), [&] { ++fired; });
  sim.at(seconds(10.0), [&] { ++fired; });
  sim.run_until(seconds(5.0));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), seconds(5.0));
  sim.run_until(seconds(20.0));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), seconds(20.0));
}

TEST(Simulator, RunUntilWithCancelledHeadDoesNotStall) {
  Simulator sim;
  bool fired = false;
  EventId id = sim.at(seconds(1.0), [&] {});
  sim.cancel(id);
  sim.at(seconds(2.0), [&] { fired = true; });
  sim.run_until(seconds(3.0));
  EXPECT_TRUE(fired);
}

TEST(Simulator, EventsCanScheduleAtSameTime) {
  Simulator sim;
  int depth = 0;
  sim.at(seconds(1.0), [&] {
    sim.after(0, [&] { depth = 1; });
  });
  sim.run();
  EXPECT_EQ(depth, 1);
  EXPECT_EQ(sim.now(), seconds(1.0));
}

TEST(Simulator, CountsProcessedEvents) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.after(seconds(i), [] {});
  sim.run();
  EXPECT_EQ(sim.events_processed(), 5u);
}

TEST(PeriodicTask, FiresAtInterval) {
  Simulator sim;
  int fires = 0;
  PeriodicTask task{sim, seconds(1.0), [&] { ++fires; }};
  task.start();
  sim.run_until(seconds(5.5));
  EXPECT_EQ(fires, 5);
}

TEST(PeriodicTask, StopHaltsFiring) {
  Simulator sim;
  int fires = 0;
  PeriodicTask task{sim, seconds(1.0), [&] {
    ++fires;
    if (fires == 3) task.stop();
  }};
  task.start();
  sim.run_until(seconds(100.0));
  EXPECT_EQ(fires, 3);
}

TEST(PeriodicTask, StartAfterControlsFirstDelay) {
  Simulator sim;
  SimTime first = -1;
  PeriodicTask task{sim, seconds(10.0), [&] {
    if (first < 0) first = sim.now();
  }};
  task.start_after(seconds(2.0));
  sim.run_until(seconds(30.0));
  EXPECT_EQ(first, seconds(2.0));
}

TEST(PeriodicTask, DestructorCancelsCleanly) {
  Simulator sim;
  int fires = 0;
  {
    PeriodicTask task{sim, seconds(1.0), [&] { ++fires; }};
    task.start();
    sim.run_until(seconds(2.5));
  }
  sim.run_until(seconds(10.0));
  EXPECT_EQ(fires, 2);
}


// --- Event-queue scaling -----------------------------------------------------------

// Regression: cancel() used to leave a tombstone in the queue forever. A
// workload that schedules and cancels in a loop (TCP timers do exactly this)
// must not grow the queue without bound.
TEST(Simulator, CancelCompactsTombstones) {
  for (EventQueueKind kind : {EventQueueKind::kCalendar, EventQueueKind::kBinaryHeap}) {
    Simulator sim{1, kind};
    for (int round = 0; round < 200; ++round) {
      std::vector<EventId> ids;
      for (int i = 0; i < 100; ++i) {
        ids.push_back(sim.after(seconds(1000.0 + i), [] {}));
      }
      for (EventId id : ids) sim.cancel(id);
    }
    // 20k schedule/cancel pairs and zero live events: compaction must have
    // kept the stored queue near-empty, not at 20k tombstones.
    EXPECT_LE(sim.queue_entries(), 128u) << "kind=" << static_cast<int>(kind);
    EXPECT_FALSE(sim.has_pending());
  }
}

TEST(Simulator, CancelCompactionPreservesPendingEvents) {
  for (EventQueueKind kind : {EventQueueKind::kCalendar, EventQueueKind::kBinaryHeap}) {
    Simulator sim{1, kind};
    std::vector<int> fired;
    // Interleave survivors with a cancel-heavy churn so compaction runs while
    // real events are stored.
    for (int i = 0; i < 50; ++i) {
      sim.at(seconds(10.0 + i), [&fired, i] { fired.push_back(i); });
      std::vector<EventId> churn;
      for (int j = 0; j < 100; ++j) {
        churn.push_back(sim.at(seconds(500.0 + j), [] {}));
      }
      for (EventId id : churn) sim.cancel(id);
    }
    sim.run();
    ASSERT_EQ(fired.size(), 50u) << "kind=" << static_cast<int>(kind);
    for (int i = 0; i < 50; ++i) EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
  }
}

// The calendar queue must reproduce the binary heap's execution order
// exactly — same times, same FIFO tie-breaks — under a randomized mix of
// schedules, reschedules, and cancels.
TEST(Simulator, CalendarMatchesBinaryHeapOrder) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Simulator cal{seed, EventQueueKind::kCalendar};
    Simulator heap{seed, EventQueueKind::kBinaryHeap};
    std::vector<std::pair<SimTime, int>> cal_order, heap_order;

    auto drive = [seed](Simulator& sim, std::vector<std::pair<SimTime, int>>& order) {
      Rng rng{seed * 0x9e3779b97f4a7c15ULL};
      std::vector<EventId> cancelable;
      int tag = 0;
      for (int i = 0; i < 500; ++i) {
        const int op_tag = tag++;
        const SimTime when = static_cast<SimTime>(rng.below(1000000)) + 1;
        EventId id = sim.at(when, [&order, &sim, op_tag] {
          order.emplace_back(sim.now(), op_tag);
        });
        // Clustered ties: every third event lands on a shared time.
        if (i % 3 == 0) {
          const int tie_tag = tag++;
          sim.at(when, [&order, &sim, tie_tag] {
            order.emplace_back(sim.now(), tie_tag);
          });
        }
        if (rng.bernoulli(0.4)) cancelable.push_back(id);
        if (cancelable.size() > 20 && rng.bernoulli(0.5)) {
          sim.cancel(cancelable.back());
          cancelable.pop_back();
        }
      }
      sim.run();
    };

    drive(cal, cal_order);
    drive(heap, heap_order);
    EXPECT_EQ(cal_order, heap_order) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace wp2p::sim
