// End-to-end TCP behaviour over the simulated network: handshake, framed
// delivery, reliability under loss, piggybacking, duplicate ACKs, congestion
// response, close semantics, and failure detection.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "exp/world.hpp"
#include "tcp/connection.hpp"

namespace wp2p::tcp {
namespace {

using exp::World;

struct Peer {
  std::shared_ptr<Connection> conn;
  std::vector<std::int64_t> messages;
  std::int64_t bytes = 0;
  bool connected = false;
  bool closed = false;
  CloseReason reason{};

  void wire(std::shared_ptr<Connection> c) {
    conn = std::move(c);
    conn->on_connected = [this] { connected = true; };
    conn->on_message = [this](const Connection::MessageHandle&, std::int64_t n) {
      messages.push_back(n);
      bytes += n;
    };
    conn->on_closed = [this](CloseReason r) {
      closed = true;
      reason = r;
    };
  }
};

// Builds two wired hosts with a listener on B and a client connection from A.
struct TcpFixture : ::testing::Test {
  World world{7};
  World::Host* a = nullptr;
  World::Host* b = nullptr;
  Peer client;
  Peer server;

  void SetUp() override {
    a = &world.add_wired_host("a");
    b = &world.add_wired_host("b");
    b->stack->listen(6881, [this](std::shared_ptr<Connection> c) { server.wire(std::move(c)); });
    client.wire(a->stack->connect(b->endpoint(6881)));
  }

  void run_for(double seconds) { world.sim.run_until(world.sim.now() + sim::seconds(seconds)); }
};

TEST_F(TcpFixture, HandshakeCompletesBothSides) {
  run_for(1.0);
  EXPECT_TRUE(client.connected);
  EXPECT_TRUE(client.conn->established());
  ASSERT_NE(server.conn, nullptr);
  EXPECT_TRUE(server.conn->established());
}

TEST_F(TcpFixture, SingleMessageDelivered) {
  run_for(1.0);
  client.conn->send_message(nullptr, 1000);
  run_for(2.0);
  ASSERT_EQ(server.messages.size(), 1u);
  EXPECT_EQ(server.messages[0], 1000);
  EXPECT_EQ(server.conn->stats().bytes_delivered, 1000);
}

TEST_F(TcpFixture, MessageHandlesArriveInOrder) {
  run_for(1.0);
  auto h1 = std::make_shared<int>(1);
  auto h2 = std::make_shared<int>(2);
  std::vector<int> seen;
  server.conn->on_message = [&](const Connection::MessageHandle& h, std::int64_t) {
    seen.push_back(*std::static_pointer_cast<const int>(h));
  };
  client.conn->send_message(h1, 5000);
  client.conn->send_message(h2, 3000);
  run_for(3.0);
  EXPECT_EQ(seen, (std::vector<int>{1, 2}));
}

TEST_F(TcpFixture, LargeTransferCompletes) {
  run_for(1.0);
  const std::int64_t total = 2 * 1024 * 1024;
  const std::int64_t chunk = 16 * 1024;
  for (std::int64_t sent = 0; sent < total; sent += chunk) {
    client.conn->send_message(nullptr, chunk);
  }
  run_for(60.0);
  EXPECT_EQ(server.bytes, total);
  EXPECT_EQ(client.conn->stats().bytes_acked, total);
  EXPECT_EQ(client.conn->send_queue_bytes(), 0);
}

TEST_F(TcpFixture, ThroughputBoundedByAccessLink) {
  run_for(1.0);
  const std::int64_t total = 1024 * 1024;
  for (std::int64_t sent = 0; sent < total; sent += 16384) {
    client.conn->send_message(nullptr, 16384);
  }
  sim::SimTime start = world.sim.now();
  run_for(120.0);
  ASSERT_EQ(server.bytes, total);
  // 10 Mbps = 1.25 MB/s; the 1 MiB transfer must take at least ~0.8 s.
  // (Headers and handshake add overhead, so strictly more.)
  EXPECT_GT(world.sim.now() - start, sim::seconds(0.8));
}

TEST_F(TcpFixture, ReliableUnderCoreLoss) {
  world.net.path().loss = 0.05;
  run_for(2.0);
  ASSERT_TRUE(client.connected);
  const std::int64_t total = 512 * 1024;
  for (std::int64_t sent = 0; sent < total; sent += 16384) {
    client.conn->send_message(nullptr, 16384);
  }
  run_for(200.0);
  EXPECT_EQ(server.bytes, total);
  EXPECT_GT(client.conn->stats().bytes_retransmitted, 0);
}

TEST_F(TcpFixture, FastRetransmitTriggersUnderMildLoss) {
  world.net.path().loss = 0.02;
  run_for(2.0);
  const std::int64_t total = 1024 * 1024;
  for (std::int64_t sent = 0; sent < total; sent += 16384) {
    client.conn->send_message(nullptr, 16384);
  }
  run_for(300.0);
  EXPECT_EQ(server.bytes, total);
  EXPECT_GT(client.conn->stats().fast_retransmits, 0u);
  EXPECT_GT(server.conn->stats().dupacks_sent, 0u);
}

TEST_F(TcpFixture, DupacksAreAlwaysPureEvenWithReverseData) {
  // Bi-directional transfer with loss: DUPACKs must never be piggybacked.
  world.net.path().loss = 0.02;
  run_for(2.0);
  for (int i = 0; i < 64; ++i) {
    client.conn->send_message(nullptr, 16384);
    server.conn->send_message(nullptr, 16384);
  }
  run_for(300.0);
  // dupacks_sent counts pure-ACK emissions flagged dup; by construction they
  // are pure, so simply require that some exist and totals reconcile.
  EXPECT_GT(server.conn->stats().dupacks_sent + client.conn->stats().dupacks_sent, 0u);
  EXPECT_EQ(server.bytes, 64 * 16384);
  EXPECT_EQ(client.bytes, 64 * 16384);
}

TEST_F(TcpFixture, BidirectionalTransferPiggybacksAcks) {
  run_for(1.0);
  for (int i = 0; i < 128; ++i) {
    client.conn->send_message(nullptr, 16384);
    server.conn->send_message(nullptr, 16384);
  }
  run_for(120.0);
  ASSERT_EQ(server.bytes, 128 * 16384);
  ASSERT_EQ(client.bytes, 128 * 16384);
  // With data flowing both ways most ACK info should ride on data segments.
  EXPECT_GT(client.conn->stats().piggybacked_acks, client.conn->stats().pure_acks_sent);
}

TEST_F(TcpFixture, UnidirectionalTransferUsesPureAcks) {
  run_for(1.0);
  for (int i = 0; i < 64; ++i) client.conn->send_message(nullptr, 16384);
  run_for(60.0);
  ASSERT_EQ(server.bytes, 64 * 16384);
  EXPECT_GT(server.conn->stats().pure_acks_sent, 50u);
  EXPECT_EQ(server.conn->stats().piggybacked_acks, 0u);
}

TEST_F(TcpFixture, GracefulCloseReachesBothSides) {
  run_for(1.0);
  client.conn->send_message(nullptr, 1000);
  client.conn->close();
  run_for(5.0);
  EXPECT_TRUE(server.closed);
  EXPECT_EQ(server.reason, CloseReason::kRemoteClose);
  EXPECT_TRUE(client.closed);
  EXPECT_EQ(client.reason, CloseReason::kLocalClose);
  EXPECT_EQ(server.bytes, 1000);  // data before FIN is fully delivered
}

TEST_F(TcpFixture, CloseWithEmptyQueueStillCloses) {
  run_for(1.0);
  server.conn->close();
  run_for(5.0);
  EXPECT_TRUE(client.closed);
  EXPECT_EQ(client.reason, CloseReason::kRemoteClose);
}

TEST_F(TcpFixture, AbortedPeerAnswersWithRst) {
  run_for(1.0);
  server.conn->abort();
  EXPECT_TRUE(server.closed);
  EXPECT_EQ(server.reason, CloseReason::kAborted);
  // Client still believes the connection is up; its next data gets an RST.
  client.conn->send_message(nullptr, 1000);
  run_for(5.0);
  EXPECT_TRUE(client.closed);
  EXPECT_EQ(client.reason, CloseReason::kReset);
  EXPECT_GT(b->stack->rsts_sent(), 0u);
}

TEST_F(TcpFixture, AddressChangeBlackholesAndTimesOut) {
  run_for(1.0);
  ASSERT_TRUE(client.connected);
  // The mobile host (a) hands off: its stack aborts, its address changes.
  a->stack->abort_all();
  a->node->change_address();
  EXPECT_TRUE(client.closed);
  EXPECT_EQ(client.reason, CloseReason::kAborted);
  // The fixed peer keeps pushing data to the dead address; retransmissions
  // back off and the connection eventually dies with a timeout.
  server.conn->send_message(nullptr, 64 * 1024);
  run_for(400.0);
  EXPECT_TRUE(server.closed);
  EXPECT_EQ(server.reason, CloseReason::kTimeout);
}

TEST_F(TcpFixture, ConnectToNonListeningPortIsReset) {
  Peer other;
  other.wire(a->stack->connect(b->endpoint(1234)));
  run_for(5.0);
  EXPECT_TRUE(other.closed);
  EXPECT_EQ(other.reason, CloseReason::kReset);
}

TEST_F(TcpFixture, ConnectToDeadAddressTimesOut) {
  Peer other;
  other.wire(a->stack->connect(net::Endpoint{net::IpAddr{99999}, 6881}));
  run_for(600.0);
  EXPECT_TRUE(other.closed);
  EXPECT_EQ(other.reason, CloseReason::kTimeout);
}

TEST_F(TcpFixture, CwndGrowsDuringSlowStart) {
  run_for(1.0);
  double initial = client.conn->cwnd_bytes();
  for (int i = 0; i < 32; ++i) client.conn->send_message(nullptr, 16384);
  run_for(3.0);
  EXPECT_GT(client.conn->cwnd_bytes(), initial * 4);
}

TEST_F(TcpFixture, TimeoutRecoversWhenLossStops) {
  // Total blackout long enough for an RTO, then recovery.
  run_for(1.0);
  world.net.path().loss = 1.0;
  for (int i = 0; i < 8; ++i) client.conn->send_message(nullptr, 16384);
  run_for(3.0);
  EXPECT_GT(client.conn->stats().timeouts, 0u);
  world.net.path().loss = 0.0;
  run_for(120.0);
  EXPECT_EQ(server.bytes, 8 * 16384);
  EXPECT_FALSE(client.closed);
}

TEST_F(TcpFixture, StatsReconcile) {
  run_for(1.0);
  const std::int64_t total = 256 * 1024;
  for (std::int64_t sent = 0; sent < total; sent += 16384) {
    client.conn->send_message(nullptr, 16384);
  }
  run_for(60.0);
  const auto& cs = client.conn->stats();
  EXPECT_EQ(cs.bytes_sent, total);  // no loss: every byte sent exactly once
  EXPECT_EQ(cs.bytes_retransmitted, 0);
  EXPECT_EQ(cs.bytes_acked, total);
  EXPECT_EQ(server.conn->stats().bytes_delivered, total);
}

}  // namespace
}  // namespace wp2p::tcp
