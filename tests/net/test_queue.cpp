#include "net/queue.hpp"

#include <gtest/gtest.h>

namespace wp2p::net {
namespace {

Packet make_packet(std::int64_t size) {
  Packet p;
  p.size = size;
  return p;
}

TEST(DropTailQueue, FifoOrder) {
  DropTailQueue q{10};
  q.push(make_packet(1));
  q.push(make_packet(2));
  q.push(make_packet(3));
  EXPECT_EQ(q.pop().size, 1);
  EXPECT_EQ(q.pop().size, 2);
  EXPECT_EQ(q.pop().size, 3);
  EXPECT_TRUE(q.empty());
}

TEST(DropTailQueue, TracksBytes) {
  DropTailQueue q{10};
  q.push(make_packet(100));
  q.push(make_packet(200));
  EXPECT_EQ(q.bytes(), 300);
  q.pop();
  EXPECT_EQ(q.bytes(), 200);
}

TEST(DropTailQueue, DropsAtLimit) {
  DropTailQueue q{2};
  EXPECT_TRUE(q.push(make_packet(1)));
  EXPECT_TRUE(q.push(make_packet(2)));
  EXPECT_TRUE(q.full());
  EXPECT_FALSE(q.push(make_packet(3)));
  EXPECT_EQ(q.drops(), 1u);
  EXPECT_EQ(q.size(), 2u);
}

TEST(DropTailQueue, DropCallbackFires) {
  DropTailQueue q{1};
  std::int64_t dropped_size = 0;
  q.on_drop = [&](const Packet& p) { dropped_size = p.size; };
  q.push(make_packet(1));
  q.push(make_packet(99));
  EXPECT_EQ(dropped_size, 99);
}

TEST(DropTailQueue, ClearEmptiesEverything) {
  DropTailQueue q{5};
  q.push(make_packet(1));
  q.push(make_packet(2));
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.bytes(), 0);
}

}  // namespace
}  // namespace wp2p::net
