// Cloud routing, impairments, address allocation, and mobility rebinding.
#include <gtest/gtest.h>

#include <memory>

#include "net/network.hpp"
#include "net/wired_link.hpp"
#include "sim/simulator.hpp"

namespace wp2p::net {
namespace {

struct CollectSink final : PacketSink {
  std::vector<Packet> received;
  void receive(const Packet& pkt) override { received.push_back(pkt); }
};

struct NetworkFixture : ::testing::Test {
  sim::Simulator sim{1};
  Network net{sim};

  Node& make_host(const char* name, CollectSink* sink = nullptr,
                  WiredParams params = {}) {
    Node& n = net.add_node(name);
    n.attach(std::make_unique<WiredLink>(sim, n, net, params));
    if (sink != nullptr) n.set_sink(sink);
    return n;
  }

  static Packet make_packet(Endpoint src, Endpoint dst, std::int64_t size = 100) {
    Packet p;
    p.src = src;
    p.dst = dst;
    p.size = size;
    return p;
  }
};

TEST_F(NetworkFixture, AllocatesDistinctAddresses) {
  Node& a = make_host("a");
  Node& b = make_host("b");
  EXPECT_NE(a.address(), b.address());
  EXPECT_TRUE(a.address().valid());
  EXPECT_EQ(net.find(a.address()), &a);
  EXPECT_EQ(net.find(b.address()), &b);
}

TEST_F(NetworkFixture, CoreDelayIsApplied) {
  net.path().core_delay = sim::milliseconds(100.0);
  CollectSink sink;
  Node& a = make_host("a");
  Node& b = make_host("b", &sink);
  a.send(make_packet({a.address(), 1}, {b.address(), 2}));
  sim.run();
  EXPECT_GE(sim.now(), sim::milliseconds(100.0));
  EXPECT_EQ(sink.received.size(), 1u);
}

TEST_F(NetworkFixture, CoreLossDropsFraction) {
  net.path().loss = 0.5;
  net.path().core_delay = 0;
  CollectSink sink;
  WiredParams roomy;
  roomy.queue_limit = 20000;  // the whole burst must fit; we test core loss only
  Node& a = make_host("a", nullptr, roomy);
  Node& b = make_host("b", &sink, roomy);
  const int n = 10000;
  for (int i = 0; i < n; ++i) a.send(make_packet({a.address(), 1}, {b.address(), 2}, 40));
  sim.run();
  EXPECT_NEAR(static_cast<double>(sink.received.size()) / n, 0.5, 0.03);
  EXPECT_EQ(net.core_loss_drops() + sink.received.size(), static_cast<std::uint64_t>(n));
}

TEST_F(NetworkFixture, UnknownDestinationIsDropped) {
  Node& a = make_host("a");
  a.send(make_packet({a.address(), 1}, {IpAddr{12345}, 2}));
  sim.run();
  EXPECT_EQ(net.no_route_drops(), 1u);
}

TEST_F(NetworkFixture, AddressChangeRebindsRouting) {
  CollectSink sink;
  Node& a = make_host("a");
  Node& b = make_host("b", &sink);
  IpAddr old_addr = b.address();

  b.change_address();
  EXPECT_NE(b.address(), old_addr);
  EXPECT_EQ(net.find(old_addr), nullptr);
  EXPECT_EQ(net.find(b.address()), &b);
  EXPECT_EQ(b.address_changes(), 1u);

  // Packets to the old address blackhole; to the new address they arrive.
  a.send(make_packet({a.address(), 1}, {old_addr, 2}));
  a.send(make_packet({a.address(), 1}, {b.address(), 2}));
  sim.run();
  EXPECT_EQ(net.no_route_drops(), 1u);
  EXPECT_EQ(sink.received.size(), 1u);
}

TEST_F(NetworkFixture, PacketInFlightDuringHandoffIsDropped) {
  net.path().core_delay = sim::milliseconds(50.0);
  CollectSink sink;
  Node& a = make_host("a");
  Node& b = make_host("b", &sink);
  IpAddr old_addr = b.address();
  a.send(make_packet({a.address(), 1}, {old_addr, 2}));
  // Change the address while the packet is crossing the core.
  sim.at(sim::milliseconds(10.0), [&] { b.change_address(); });
  sim.run();
  EXPECT_TRUE(sink.received.empty());
  EXPECT_EQ(net.no_route_drops(), 1u);
}

TEST_F(NetworkFixture, AddressChangeObserversFire) {
  Node& a = make_host("a");
  IpAddr observed_old{}, observed_new{};
  a.on_address_change.push_back([&](IpAddr o, IpAddr n) {
    observed_old = o;
    observed_new = n;
  });
  IpAddr before = a.address();
  a.change_address();
  EXPECT_EQ(observed_old, before);
  EXPECT_EQ(observed_new, a.address());
}

TEST_F(NetworkFixture, ConnectivityObserversFire) {
  Node& a = make_host("a");
  std::vector<bool> transitions;
  a.on_connectivity_change.push_back([&](bool c) { transitions.push_back(c); });
  a.set_connected(false);
  a.set_connected(false);  // no transition
  a.set_connected(true);
  EXPECT_EQ(transitions, (std::vector<bool>{false, true}));
}

TEST_F(NetworkFixture, JitterStaysWithinBound) {
  net.path().core_delay = sim::milliseconds(10.0);
  net.path().jitter = sim::milliseconds(5.0);
  CollectSink sink;
  Node& a = make_host("a");
  Node& b = make_host("b", &sink);
  for (int i = 0; i < 100; ++i) a.send(make_packet({a.address(), 1}, {b.address(), 2}, 40));
  sim.run();
  EXPECT_EQ(sink.received.size(), 100u);
  // All packets must arrive within core_delay + jitter + serialization slack.
  EXPECT_LE(sim.now(), sim::milliseconds(20.0));
}

}  // namespace
}  // namespace wp2p::net
