// net::FaultInjector: every fault kind applies, restores, and traces cleanly.
#include <gtest/gtest.h>

#include "exp/world.hpp"
#include "net/fault_injector.hpp"
#include "net/wireless_channel.hpp"
#include "trace/invariant_checker.hpp"
#include "trace/recorder.hpp"

namespace wp2p {
namespace {

sim::FaultAction action(sim::FaultKind kind, double at_s, double dur_s, double mag,
                        std::string target) {
  sim::FaultAction a;
  a.kind = kind;
  a.at = sim::seconds(at_s);
  a.duration = sim::seconds(dur_s);
  a.magnitude = mag;
  a.target = std::move(target);
  return a;
}

// --- Plan data model ---------------------------------------------------------

TEST(FaultPlan, SerializeParseRoundTrip) {
  sim::FaultPlan plan;
  plan.actions = {
      action(sim::FaultKind::kLinkFlap, 10, 5, 0, "a"),
      action(sim::FaultKind::kBerEpisode, 20, 30, 2e-5, "b"),
      action(sim::FaultKind::kHandoff, 25, 0, 0, "a"),
      action(sim::FaultKind::kHandoffStorm, 30, 10, 4, "b"),
      action(sim::FaultKind::kTrackerOutage, 40, 60, 0, ""),
      action(sim::FaultKind::kTrackerOutage, 42, 60, 0, "tr1"),
      action(sim::FaultKind::kDuplicate, 50, 25, 0.125, "a"),
      action(sim::FaultKind::kReorder, 60, 25, 0.25, "b"),
      action(sim::FaultKind::kPeerCrash, 70, 15, 0, "a"),
      action(sim::FaultKind::kTrackerBlackout, 80, 30, 0, ""),
  };
  const sim::FaultPlan parsed = sim::FaultPlan::parse(plan.serialize());
  ASSERT_EQ(parsed.actions.size(), plan.actions.size());
  for (std::size_t i = 0; i < plan.actions.size(); ++i) {
    EXPECT_EQ(parsed.actions[i], plan.actions[i]) << "action " << i;
  }
}

TEST(FaultPlan, ParseRejectsMalformedLines) {
  EXPECT_FALSE(sim::FaultAction::parse("fault bogus-kind at=1"));
  EXPECT_FALSE(sim::FaultAction::parse("fault ber at=xyz"));
  EXPECT_FALSE(sim::FaultAction::parse("fault ber unknown=1"));
  EXPECT_FALSE(sim::FaultAction::parse("nonsense"));
  // Non-"fault" lines are skipped at plan level (spec files embed them).
  EXPECT_TRUE(sim::FaultPlan::parse("# comment\npeer name=x\n").empty());
}

TEST(FaultPlan, RandomIsDeterministicAndWellFormed) {
  const std::vector<std::string> targets{"a", "b", "c"};
  const std::vector<std::string> wireless{"c"};
  sim::Rng rng1{42}, rng2{42};
  const auto plan1 = sim::FaultPlan::random(rng1, targets, wireless, 200.0, 6);
  const auto plan2 = sim::FaultPlan::random(rng2, targets, wireless, 200.0, 6);
  ASSERT_EQ(plan1.actions.size(), plan2.actions.size());
  for (std::size_t i = 0; i < plan1.actions.size(); ++i) {
    EXPECT_EQ(plan1.actions[i], plan2.actions[i]);
  }
  for (const auto& a : plan1.actions) {
    EXPECT_GE(sim::to_seconds(a.at), 5.0);
    EXPECT_LE(sim::to_seconds(a.at), 200.0 * 0.8);
    if (a.kind == sim::FaultKind::kBerEpisode) EXPECT_EQ(a.target, "c");
    if (a.kind == sim::FaultKind::kTrackerOutage) EXPECT_TRUE(a.target.empty());
    if (a.kind == sim::FaultKind::kTrackerBlackout) EXPECT_TRUE(a.target.empty());
  }
}

TEST(FaultPlan, RandomWithTiersTargetsIndividualTrackers) {
  const std::vector<std::string> targets{"a", "b"};
  bool saw_named_tracker = false, saw_blackout = false;
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    sim::Rng rng{seed};
    const auto plan =
        sim::FaultPlan::random(rng, targets, {}, 300.0, 40, /*t_min_s=*/5.0, /*trackers=*/3);
    for (const auto& a : plan.actions) {
      if (a.kind == sim::FaultKind::kTrackerOutage && !a.target.empty()) {
        saw_named_tracker = true;
        // Only real tiers may be named: tr1..tr2 for a three-tracker list.
        EXPECT_TRUE(a.target == "tr1" || a.target == "tr2") << a.target;
      }
      if (a.kind == sim::FaultKind::kTrackerBlackout) {
        saw_blackout = true;
        EXPECT_TRUE(a.target.empty());
      }
    }
  }
  EXPECT_TRUE(saw_named_tracker);
  EXPECT_TRUE(saw_blackout);
}

// --- Network-layer application ----------------------------------------------

TEST(FaultInjector, LinkFlapTogglesAndRestoresConnectivity) {
  exp::World world{1};
  auto& host = world.add_wired_host("a");
  sim::FaultPlan plan;
  plan.actions = {action(sim::FaultKind::kLinkFlap, 5, 10, 0, "a")};
  net::FaultInjector injector{world.net, plan};

  world.sim.run_until(sim::seconds(6.0));
  EXPECT_FALSE(host.node->connected());
  EXPECT_EQ(injector.active_faults(), 1);
  world.sim.run_until(sim::seconds(16.0));
  EXPECT_TRUE(host.node->connected());
  EXPECT_EQ(injector.active_faults(), 0);
  EXPECT_EQ(injector.stats().applied, 1u);
}

TEST(FaultInjector, BerEpisodeRaisesAndRestoresWithNesting) {
  exp::World world{2};
  net::WirelessParams params;
  params.bit_error_rate = 1e-7;
  auto& host = world.add_wireless_host("m", params);
  auto* channel = host.wireless();
  ASSERT_NE(channel, nullptr);

  sim::FaultPlan plan;
  plan.actions = {
      action(sim::FaultKind::kBerEpisode, 5, 20, 2e-5, "m"),
      action(sim::FaultKind::kBerEpisode, 10, 5, 1e-5, "m"),  // nested, weaker
  };
  net::FaultInjector injector{world.net, plan};

  world.sim.run_until(sim::seconds(6.0));
  EXPECT_DOUBLE_EQ(channel->params().bit_error_rate, 2e-5);
  world.sim.run_until(sim::seconds(11.0));
  // The nested episode must never LOWER the BER in force.
  EXPECT_DOUBLE_EQ(channel->params().bit_error_rate, 2e-5);
  world.sim.run_until(sim::seconds(16.0));  // inner ended, outer still open
  EXPECT_DOUBLE_EQ(channel->params().bit_error_rate, 2e-5);
  world.sim.run_until(sim::seconds(26.0));  // both ended: baseline restored
  EXPECT_DOUBLE_EQ(channel->params().bit_error_rate, 1e-7);
  EXPECT_EQ(injector.stats().applied, 2u);
}

TEST(FaultInjector, BerOnWiredTargetIsSkipped) {
  exp::World world{3};
  world.add_wired_host("a");
  sim::FaultPlan plan;
  plan.actions = {action(sim::FaultKind::kBerEpisode, 5, 10, 1e-5, "a")};
  net::FaultInjector injector{world.net, plan};
  world.sim.run_until(sim::seconds(20.0));
  EXPECT_EQ(injector.stats().applied, 0u);
  EXPECT_EQ(injector.stats().skipped, 1u);
}

TEST(FaultInjector, MissingTargetIsSkipped) {
  exp::World world{4};
  world.add_wired_host("a");
  sim::FaultPlan plan;
  plan.actions = {action(sim::FaultKind::kLinkFlap, 5, 10, 0, "ghost")};
  net::FaultInjector injector{world.net, plan};
  world.sim.run_until(sim::seconds(20.0));
  EXPECT_EQ(injector.stats().applied, 0u);
  EXPECT_EQ(injector.stats().skipped, 1u);
}

TEST(FaultInjector, HandoffStormChangesAddressRepeatedly) {
  exp::World world{5};
  auto& host = world.add_wireless_host("m");
  sim::FaultPlan plan;
  plan.actions = {
      action(sim::FaultKind::kHandoff, 5, 0, 0, "m"),
      action(sim::FaultKind::kHandoffStorm, 10, 8, 4, "m"),
  };
  net::FaultInjector injector{world.net, plan};
  world.sim.run_until(sim::seconds(30.0));
  EXPECT_EQ(host.node->address_changes(), 5u);  // 1 single + 4 storm
  EXPECT_EQ(injector.stats().applied, 2u);
  EXPECT_EQ(injector.active_faults(), 0);
}

TEST(FaultInjector, PeerCrashSeversLinkThenRestores) {
  exp::World world{6};
  auto& host = world.add_wired_host("a");
  sim::FaultPlan plan;
  plan.actions = {action(sim::FaultKind::kPeerCrash, 5, 10, 0, "a")};
  net::FaultInjector injector{world.net, plan};

  std::vector<std::pair<double, bool>> process_events;
  injector.on_peer_process = [&](net::Node& node, bool up) {
    EXPECT_EQ(&node, host.node);
    process_events.emplace_back(sim::to_seconds(node.sim().now()), up);
  };
  world.sim.run_until(sim::seconds(6.0));
  EXPECT_FALSE(host.node->connected());
  world.sim.run_until(sim::seconds(20.0));
  EXPECT_TRUE(host.node->connected());
  ASSERT_EQ(process_events.size(), 2u);
  EXPECT_FALSE(process_events[0].second);
  EXPECT_TRUE(process_events[1].second);
}

TEST(FaultInjector, TrackerOutageFiresHookBracketed) {
  exp::World world{7};
  world.add_wired_host("a");
  sim::FaultPlan plan;
  plan.actions = {action(sim::FaultKind::kTrackerOutage, 5, 10, 0, "")};
  net::FaultInjector injector{world.net, plan};
  std::vector<std::pair<std::string, bool>> transitions;
  injector.on_tracker_outage = [&](const std::string& target, bool down) {
    transitions.emplace_back(target, down);
  };
  world.sim.run_until(sim::seconds(30.0));
  ASSERT_EQ(transitions.size(), 2u);
  EXPECT_EQ(transitions[0], (std::pair<std::string, bool>{"", true}));
  EXPECT_EQ(transitions[1], (std::pair<std::string, bool>{"", false}));
}

TEST(FaultInjector, BlackoutTargetsEveryTrackerWithoutANode) {
  exp::World world{12};
  world.add_wired_host("a");
  sim::FaultPlan plan;
  plan.actions = {
      action(sim::FaultKind::kTrackerOutage, 3, 4, 0, "tr1"),
      action(sim::FaultKind::kTrackerBlackout, 5, 10, 0, ""),
  };
  net::FaultInjector injector{world.net, plan};
  std::vector<std::pair<std::string, bool>> transitions;
  injector.on_tracker_outage = [&](const std::string& target, bool down) {
    transitions.emplace_back(target, down);
  };
  world.sim.run_until(sim::seconds(30.0));
  // Neither action names a network node; both must still apply via the hook:
  // the tiered outage passes its tracker name through, the blackout "*".
  EXPECT_EQ(injector.stats().applied, 2u);
  EXPECT_EQ(injector.stats().skipped, 0u);
  ASSERT_EQ(transitions.size(), 4u);
  EXPECT_EQ(transitions[0], (std::pair<std::string, bool>{"tr1", true}));
  EXPECT_EQ(transitions[1], (std::pair<std::string, bool>{"*", true}));
  EXPECT_EQ(transitions[2], (std::pair<std::string, bool>{"tr1", false}));
  EXPECT_EQ(transitions[3], (std::pair<std::string, bool>{"*", false}));
}

// --- Chaos filters -----------------------------------------------------------

struct CountingSink final : net::PacketSink {
  std::uint64_t received = 0;
  void receive(const net::Packet&) override { ++received; }
};

void send_paced(exp::World& world, net::Node& from, net::Node& to, int count,
                double start_s) {
  for (int i = 0; i < count; ++i) {
    world.sim.at(sim::seconds(start_s) + sim::milliseconds(i * 10.0), [&from, &to] {
      net::Packet p;
      p.src = {from.address(), 1};
      p.dst = {to.address(), 2};
      p.size = 500;
      from.send(std::move(p));
    });
  }
}

TEST(FaultInjector, DuplicateWindowDuplicatesPackets) {
  exp::World world{8};
  auto& a = world.add_wired_host("a");
  auto& b = world.add_wired_host("b");
  CountingSink sink;
  b.node->set_sink(&sink);

  sim::FaultPlan plan;
  plan.actions = {action(sim::FaultKind::kDuplicate, 1, 30, 1.0, "a")};
  net::FaultInjector injector{world.net, plan};
  send_paced(world, *a.node, *b.node, 50, 2.0);
  world.sim.run_until(sim::seconds(40.0));

  EXPECT_EQ(injector.stats().duplicated, 50u);
  EXPECT_EQ(sink.received, 100u);  // every packet arrives twice
}

TEST(FaultInjector, ReorderWindowSwapsButLosesNothing) {
  exp::World world{9};
  auto& a = world.add_wired_host("a");
  auto& b = world.add_wired_host("b");
  CountingSink sink;
  b.node->set_sink(&sink);

  sim::FaultPlan plan;
  plan.actions = {action(sim::FaultKind::kReorder, 1, 30, 1.0, "a")};
  net::FaultInjector injector{world.net, plan};
  send_paced(world, *a.node, *b.node, 50, 2.0);
  world.sim.run_until(sim::seconds(60.0));

  EXPECT_GT(injector.stats().reordered, 0u);
  // Conservation: a reorder window delays packets but never drops them —
  // including a stashed packet flushed when the window closes.
  EXPECT_EQ(sink.received, 50u);
}

// --- Tracing -----------------------------------------------------------------

TEST(FaultInjector, EmitsBalancedTraceBrackets) {
  exp::World world{10};
  trace::Recorder recorder{256};
  trace::InvariantChecker checker;
  recorder.add_sink(&checker);
  world.sim.set_tracer(&recorder);

  world.add_wireless_host("m");
  world.add_wired_host("a");
  sim::FaultPlan plan;
  plan.actions = {
      action(sim::FaultKind::kLinkFlap, 5, 10, 0, "a"),
      action(sim::FaultKind::kBerEpisode, 7, 12, 1e-5, "m"),
      action(sim::FaultKind::kHandoff, 9, 0, 0, "m"),
      action(sim::FaultKind::kTrackerOutage, 11, 5, 0, ""),
  };
  net::FaultInjector injector{world.net, plan};
  world.sim.run_until(sim::seconds(40.0));
  world.sim.set_tracer(nullptr);

  int starts = 0, ends = 0;
  for (const auto& ev : recorder.ring().events()) {
    if (ev.kind == trace::Kind::kFaultStart) ++starts;
    if (ev.kind == trace::Kind::kFaultEnd) ++ends;
  }
  EXPECT_EQ(starts, 4);
  EXPECT_EQ(ends, 4);
  EXPECT_TRUE(checker.violations().empty())
      << trace::to_string(checker.violations().front());
  EXPECT_EQ(injector.active_faults(), 0);
}

TEST(InvariantChecker, FlagsUnmatchedFaultEnd) {
  trace::InvariantChecker checker;
  trace::TraceEvent ev = trace::event(trace::Component::kFault, trace::Kind::kFaultEnd)
                             .at("a")
                             .why("link-flap");
  checker.on_event(ev);
  ASSERT_EQ(checker.violations().size(), 1u);
  EXPECT_EQ(checker.violations().front().rule, "fault-bracket");
}

TEST(FaultInjector, DestructionCancelsPendingActions) {
  exp::World world{11};
  auto& host = world.add_wired_host("a");
  {
    sim::FaultPlan plan;
    plan.actions = {action(sim::FaultKind::kLinkFlap, 50, 10, 0, "a")};
    net::FaultInjector injector{world.net, plan};
    world.sim.run_until(sim::seconds(1.0));
  }
  // The injector is gone before its action fires; the run must not crash and
  // the link must stay up.
  world.sim.run_until(sim::seconds(100.0));
  EXPECT_TRUE(host.node->connected());
}

}  // namespace
}  // namespace wp2p
