// net::cell subsystem: single-cell equivalence with WirelessChannel, downlink
// scheduler disciplines, outage and hand-off semantics, roaming schedules,
// and cell-targeted fault injection.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "net/cell.hpp"
#include "net/fault_injector.hpp"
#include "net/network.hpp"
#include "net/wired_link.hpp"
#include "net/wireless_channel.hpp"
#include "sim/fault_plan.hpp"
#include "sim/simulator.hpp"

namespace wp2p::net {
namespace {

struct CollectSink final : PacketSink {
  std::vector<Packet> received;
  void receive(const Packet& pkt) override { received.push_back(pkt); }
};

// Records the virtual time of every delivery — the currency of the
// equivalence tests.
struct TimedSink final : PacketSink {
  sim::Simulator& sim;
  std::vector<std::pair<sim::SimTime, std::int64_t>> got;
  explicit TimedSink(sim::Simulator& s) : sim{s} {}
  void receive(const Packet& pkt) override { got.emplace_back(sim.now(), pkt.size); }
};

// Appends this station's name to a shared log — the downlink service order.
struct OrderSink final : PacketSink {
  std::vector<std::string>* order = nullptr;
  std::string name;
  void receive(const Packet&) override { order->push_back(name); }
};

struct CellFixture : ::testing::Test {
  sim::Simulator sim{1};
  Network net{sim};
};

Packet make_packet(Endpoint src, Endpoint dst, std::int64_t size) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.size = size;
  return p;
}

// Exact zero-RNG timeline through a ONE-cell topology: byte-for-byte the
// MacArqRetriesPayContentionOverhead schedule from test_links.cpp. A single
// station in a single cell must reproduce the WirelessChannel event stream.
TEST_F(CellFixture, OneCellOneStationReproducesChannelArqTimeline) {
  WirelessParams params;
  params.capacity = util::Rate::bytes_per_sec(1000);
  params.bit_error_rate = 1.0;
  params.mac_retries = 3;
  params.prop_delay = 0;
  params.per_packet_overhead = 0;
  params.contention_overhead = 1.0;
  net.path().core_delay = 0;

  CellularTopology topo{sim, net};
  Cell& cell = topo.add_cell(params, SchedulerKind::kFifo);
  Node& m = net.add_node("mobile");
  topo.attach(m, 0);
  Node& f = net.add_node("fixed");
  WiredParams fast;
  fast.up_capacity = util::Rate::mbps(1000);
  fast.prop_delay = 0;
  f.attach(std::make_unique<WiredLink>(sim, f, net, fast));

  for (int i = 0; i < 2; ++i) {
    m.send(make_packet({m.address(), 1}, {f.address(), 2}, 1000));
    f.send(make_packet({f.address(), 2}, {m.address(), 1}, 1000));
  }
  sim.run();

  // Same schedule as the single-channel test: up#1 7 s, down#1 8 s (t=15),
  // up#2 8 s (t=23), down#2 uncontended 4 s (t=27).
  EXPECT_EQ(sim.now(), sim::seconds(27.0));
  EXPECT_EQ(cell.mac_retransmissions(), 12u);
  EXPECT_EQ(m.access()->stats().up_error_drops, 2u);
  EXPECT_EQ(m.access()->stats().down_error_drops, 2u);
}

// Stochastic equivalence: the same seeded workload through a WirelessChannel
// world and a 1-cell world produces identical delivery timestamps, identical
// retransmission counts, and an identical final clock — the corruption RNG is
// forked at the same stream position in both.
TEST(CellEquivalence, OneCellMatchesWirelessChannelUnderBerWorkload) {
  struct Outcome {
    std::vector<std::pair<sim::SimTime, std::int64_t>> up_deliveries;
    std::vector<std::pair<sim::SimTime, std::int64_t>> down_deliveries;
    std::uint64_t retx = 0;
    std::uint64_t up_error_drops = 0;
    std::uint64_t down_error_drops = 0;
    sim::SimTime end = 0;
  };
  auto run_world = [](bool use_cell) {
    sim::Simulator sim{7};
    Network net{sim};
    WirelessParams params;
    params.capacity = util::Rate::mbps(24);
    params.bit_error_rate = 2e-5;
    params.mac_retries = 6;
    params.up_queue_limit = 100000;
    params.down_queue_limit = 100000;
    net.path().core_delay = 0;

    CellularTopology topo{sim, net};
    if (use_cell) topo.add_cell(params, SchedulerKind::kFifo);
    Node& m = net.add_node("mobile");
    if (use_cell) {
      topo.attach(m, 0);
    } else {
      m.attach(std::make_unique<WirelessChannel>(sim, m, net, params));
    }
    Node& f = net.add_node("fixed");
    WiredParams roomy;
    roomy.up_capacity = util::Rate::mbps(1000);
    roomy.down_capacity = util::Rate::mbps(1000);
    roomy.queue_limit = 100000;
    f.attach(std::make_unique<WiredLink>(sim, f, net, roomy));

    TimedSink sink_f{sim}, sink_m{sim};
    f.set_sink(&sink_f);
    m.set_sink(&sink_m);
    for (int i = 0; i < 300; ++i) {
      m.send(make_packet({m.address(), 1}, {f.address(), 2}, 1500));
    }
    for (int i = 0; i < 200; ++i) {
      f.send(make_packet({f.address(), 2}, {m.address(), 1}, 1500));
    }
    sim.run();

    Outcome out;
    out.up_deliveries = std::move(sink_f.got);
    out.down_deliveries = std::move(sink_m.got);
    if (use_cell) {
      auto* link = dynamic_cast<CellLink*>(m.access());
      out.retx = link->cell()->mac_retransmissions();
    } else {
      out.retx = dynamic_cast<WirelessChannel*>(m.access())->mac_retransmissions();
    }
    out.up_error_drops = m.access()->stats().up_error_drops;
    out.down_error_drops = m.access()->stats().down_error_drops;
    out.end = sim.now();
    return out;
  };

  const Outcome channel = run_world(false);
  const Outcome cell = run_world(true);
  EXPECT_GT(channel.retx, 0u);  // the workload actually exercised the ARQ path
  EXPECT_EQ(channel.retx, cell.retx);
  EXPECT_EQ(channel.up_error_drops, cell.up_error_drops);
  EXPECT_EQ(channel.down_error_drops, cell.down_error_drops);
  EXPECT_EQ(channel.end, cell.end);
  EXPECT_EQ(channel.up_deliveries, cell.up_deliveries);
  EXPECT_EQ(channel.down_deliveries, cell.down_deliveries);
}

// Drives one up-frame (occupying the server for 1 s while the downlink
// backlog builds), then four 1 s down-frames whose service order is the
// scheduler's to choose. Returns the delivery order as station names.
std::vector<std::string> downlink_order(SchedulerKind kind, const std::vector<int>& dsts) {
  sim::Simulator sim{1};
  Network net{sim};
  WirelessParams params;
  params.capacity = util::Rate::bytes_per_sec(1000);
  params.prop_delay = 0;
  params.per_packet_overhead = 0;
  net.path().core_delay = 0;
  CellularTopology topo{sim, net};
  topo.add_cell(params, kind);
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  topo.attach(a, 0);  // slot 0
  topo.attach(b, 0);  // slot 1
  Node& f = net.add_node("fixed");
  WiredParams fast;
  fast.up_capacity = util::Rate::mbps(1000);
  fast.prop_delay = 0;
  f.attach(std::make_unique<WiredLink>(sim, f, net, fast));

  std::vector<std::string> order;
  OrderSink sink_a, sink_b;
  sink_a.order = sink_b.order = &order;
  sink_a.name = "a";
  sink_b.name = "b";
  a.set_sink(&sink_a);
  b.set_sink(&sink_b);

  // Occupy the medium 0..1 s so every down-frame is queued before the first
  // downlink pick.
  a.send(make_packet({a.address(), 1}, {f.address(), 2}, 1000));
  for (int dst : dsts) {
    Node& to = dst == 0 ? a : b;
    f.send(make_packet({f.address(), 2}, {to.address(), 1}, 1000));
  }
  sim.run();
  return order;
}

TEST(DownlinkScheduler, FifoServesGlobalArrivalOrder) {
  EXPECT_EQ(downlink_order(SchedulerKind::kFifo, {0, 1, 0, 1}),
            (std::vector<std::string>{"a", "b", "a", "b"}));
  // FIFO ignores per-station depth: a's three frames go out before b's one.
  EXPECT_EQ(downlink_order(SchedulerKind::kFifo, {0, 0, 0, 1}),
            (std::vector<std::string>{"a", "a", "a", "b"}));
}

TEST(DownlinkScheduler, RoundRobinAlternatesAmongBacklogged) {
  // a holds 3 frames, b holds 1: round-robin gives b its slot after a's first
  // frame instead of letting a drain.
  EXPECT_EQ(downlink_order(SchedulerKind::kRoundRobin, {0, 0, 0, 1}),
            (std::vector<std::string>{"a", "b", "a", "a"}));
}

TEST(DownlinkScheduler, LongestQueueFirstDrainsDeepestBacklog) {
  // b holds 3 frames, a holds 1: LQF works b down to parity (ties break to
  // the lowest slot, so a goes third).
  EXPECT_EQ(downlink_order(SchedulerKind::kLongestQueue, {0, 1, 1, 1}),
            (std::vector<std::string>{"b", "b", "a", "b"}));
}

TEST_F(CellFixture, OutageFlushesDropsAndRecovers) {
  WirelessParams params;
  params.capacity = util::Rate::bytes_per_sec(1000);
  params.prop_delay = 0;
  params.per_packet_overhead = 0;
  net.path().core_delay = 0;
  CellularTopology topo{sim, net};
  Cell& cell = topo.add_cell(params, SchedulerKind::kFifo);
  Node& m = net.add_node("mobile");
  topo.attach(m, 0);
  Node& f = net.add_node("fixed");
  f.attach(std::make_unique<WiredLink>(sim, f, net, WiredParams{}));
  CollectSink sink;
  f.set_sink(&sink);

  // Three up-frames: #1 in service 0..1 s, #2 and #3 backlogged.
  for (int i = 0; i < 3; ++i) {
    m.send(make_packet({m.address(), 1}, {f.address(), 2}, 1000));
  }
  // AP dies mid-service: the 2 backlogged frames flush, the frame on the air
  // dies at its scheduled completion, and a send during the outage is refused.
  sim.at(sim::seconds(0.5), [&] { cell.set_down(true); });
  sim.at(sim::seconds(1.5), [&] {
    EXPECT_TRUE(cell.down());
    m.send(make_packet({m.address(), 1}, {f.address(), 2}, 1000));
  });
  sim.at(sim::seconds(2.0), [&] { cell.set_down(false); });
  // After recovery the cell serves normally again.
  sim.at(sim::seconds(2.5), [&] {
    m.send(make_packet({m.address(), 1}, {f.address(), 2}, 1000));
  });
  sim.run();

  EXPECT_EQ(cell.outage_drops(), 4u);  // 2 flushed + 1 in-flight + 1 refused
  ASSERT_EQ(sink.received.size(), 1u);  // only the post-recovery frame arrives
  EXPECT_FALSE(cell.down());
}

TEST_F(CellFixture, HandoffDropsOldCellTrafficAndChangesAddress) {
  WirelessParams params;
  params.capacity = util::Rate::bytes_per_sec(1000);
  params.prop_delay = 0;
  params.per_packet_overhead = 0;
  net.path().core_delay = 0;
  CellularTopology topo{sim, net};
  Cell& cell0 = topo.add_cell(params, SchedulerKind::kFifo);
  topo.add_cell(params, SchedulerKind::kFifo);
  Node& m = net.add_node("mobile");
  topo.attach(m, 0);
  Node& f = net.add_node("fixed");
  WiredParams fast;
  fast.up_capacity = util::Rate::mbps(1000);
  fast.prop_delay = 0;
  f.attach(std::make_unique<WiredLink>(sim, f, net, fast));
  CollectSink sink_m, sink_f;
  m.set_sink(&sink_m);
  f.set_sink(&sink_f);

  // One down-frame on the air (0..1 s), one queued behind it.
  f.send(make_packet({f.address(), 2}, {m.address(), 1}, 1000));
  f.send(make_packet({f.address(), 2}, {m.address(), 1}, 1000));
  sim.at(sim::seconds(0.5), [&] { topo.handoff(m, 1); });
  // After re-association, traffic flows through the new cell in both
  // directions under the new address.
  sim.at(sim::seconds(2.0), [&] {
    f.send(make_packet({f.address(), 2}, {m.address(), 1}, 1000));
    m.send(make_packet({m.address(), 1}, {f.address(), 2}, 1000));
  });
  sim.run();

  EXPECT_EQ(m.address_changes(), 1u);
  EXPECT_EQ(topo.cell_of(m), 1);
  EXPECT_EQ(topo.handoffs(), 1u);
  EXPECT_EQ(cell0.attached_stations(), 0u);
  EXPECT_EQ(topo.cell(1).attached_stations(), 1u);
  // The in-flight frame died at finish() against a detached station; the
  // queued frame was lost with the association.
  EXPECT_EQ(cell0.handoff_drops(), 1u);
  EXPECT_EQ(sink_m.received.size(), 1u);  // only the post-hand-off down-frame
  EXPECT_EQ(sink_f.received.size(), 1u);  // the post-hand-off up-frame
}

TEST_F(CellFixture, RoamBackReusesSlotAndKeepsServing) {
  CellularTopology topo{sim, net};
  topo.add_cell();
  topo.add_cell();
  Node& m = net.add_node("mobile");
  topo.attach(m, 0);
  topo.handoff(m, 1);
  topo.handoff(m, 0);
  EXPECT_EQ(topo.cell_of(m), 0);
  EXPECT_EQ(topo.cell(0).attached_stations(), 1u);
  EXPECT_EQ(topo.cell(1).attached_stations(), 0u);
  EXPECT_EQ(m.address_changes(), 2u);
}

TEST_F(CellFixture, SendsDuringReassociationVanish) {
  // on_address_change observers run while the interface is detached; anything
  // they send synchronously must be dropped silently, as on a real
  // re-associating interface.
  net.path().core_delay = 0;
  CellularTopology topo{sim, net};
  topo.add_cell();
  topo.add_cell();
  Node& m = net.add_node("mobile");
  topo.attach(m, 0);
  Node& f = net.add_node("fixed");
  f.attach(std::make_unique<WiredLink>(sim, f, net, WiredParams{}));
  CollectSink sink_f;
  f.set_sink(&sink_f);

  m.on_address_change.push_back([&](IpAddr, IpAddr) {
    m.send(make_packet({m.address(), 1}, {f.address(), 2}, 100));
  });
  topo.handoff(m, 1);
  sim.run();
  EXPECT_TRUE(sink_f.received.empty());

  // Once re-associated, sends flow again.
  m.send(make_packet({m.address(), 1}, {f.address(), 2}, 100));
  sim.run();
  EXPECT_EQ(sink_f.received.size(), 1u);
}

TEST_F(CellFixture, RoamingModelScriptedStepsFire) {
  CellularTopology topo{sim, net};
  topo.add_cell();
  topo.add_cell();
  topo.add_cell();
  Node& m = net.add_node("mobile");
  topo.attach(m, 0);

  RoamingModel roam{topo};
  roam.add(0.5, "mobile", 2);
  roam.add(1.0, "mobile");  // kNextCell: 2 -> 0
  roam.add(1.5, "ghost");   // unknown node: ignored
  roam.start();
  sim.run();

  EXPECT_EQ(roam.scheduled(), 3u);
  EXPECT_EQ(roam.executed(), 2u);
  EXPECT_EQ(topo.cell_of(m), 0);
  EXPECT_EQ(topo.handoffs(), 2u);
}

TEST(RoamingModelDeterminism, CommuteReplaysIdenticallyForASeed) {
  auto run = [](std::uint64_t seed) {
    sim::Simulator sim{1};
    Network net{sim};
    CellularTopology topo{sim, net};
    for (int i = 0; i < 3; ++i) topo.add_cell();
    Node& a = net.add_node("a");
    Node& b = net.add_node("b");
    topo.attach(a, 0);
    topo.attach(b, 1);
    RoamingModel roam{topo};
    roam.commute({"a", "b"}, 5.0, 60.0, seed);
    roam.start();
    sim.run();
    return std::tuple{roam.scheduled(), topo.handoffs(), topo.cell_of(a), topo.cell_of(b)};
  };
  const auto first = run(42);
  EXPECT_GT(std::get<0>(first), 0u);
  EXPECT_EQ(std::get<1>(first), std::get<0>(first));  // every step executed
  EXPECT_EQ(first, run(42));
  EXPECT_NE(first, run(43));  // and the seed actually matters
}

// --- FaultInjector cell faults ----------------------------------------------

sim::FaultAction cell_fault(sim::FaultKind kind, double at_s, double dur_s, double mag,
                            std::string target) {
  sim::FaultAction a;
  a.kind = kind;
  a.at = sim::seconds(at_s);
  a.duration = sim::seconds(dur_s);
  a.magnitude = mag;
  a.target = std::move(target);
  return a;
}

struct CellFaultFixture : CellFixture {
  CellularTopology topo{sim, net};

  Node& make_world(int n_cells) {
    WirelessParams params;
    params.capacity = util::Rate::bytes_per_sec(1000);
    params.prop_delay = 0;
    params.per_packet_overhead = 0;
    net.path().core_delay = 0;
    for (int i = 0; i < n_cells; ++i) topo.add_cell(params, SchedulerKind::kFifo);
    Node& m = net.add_node("mobile");
    topo.attach(m, 0);
    return m;
  }
};

TEST_F(CellFaultFixture, CellOutageBracketsDownAndUp) {
  Node& m = make_world(1);
  Node& f = net.add_node("fixed");
  f.attach(std::make_unique<WiredLink>(sim, f, net, WiredParams{}));
  CollectSink sink;
  f.set_sink(&sink);

  sim::FaultPlan plan;
  plan.actions.push_back(cell_fault(sim::FaultKind::kCellOutage, 1.0, 1.0, 0, "cell0"));
  FaultInjector injector{net, plan};
  injector.bind_cells(&topo);

  sim.at(sim::seconds(1.5), [&] {
    EXPECT_TRUE(topo.cell(0).down());
    m.send(make_packet({m.address(), 1}, {f.address(), 2}, 1000));  // refused
  });
  sim.at(sim::seconds(2.5), [&] {
    EXPECT_FALSE(topo.cell(0).down());
    m.send(make_packet({m.address(), 1}, {f.address(), 2}, 1000));  // delivered
  });
  sim.run();

  EXPECT_EQ(injector.stats().applied, 1u);
  EXPECT_EQ(injector.stats().skipped, 0u);
  EXPECT_EQ(injector.active_faults(), 0);
  EXPECT_EQ(topo.cell(0).outage_drops(), 1u);
  EXPECT_EQ(sink.received.size(), 1u);
}

TEST_F(CellFaultFixture, CellFaultsSkipWithoutBoundTopology) {
  make_world(1);
  sim::FaultPlan plan;
  plan.actions.push_back(cell_fault(sim::FaultKind::kCellOutage, 1.0, 1.0, 0, "cell0"));
  plan.actions.push_back(cell_fault(sim::FaultKind::kCellBer, 1.0, 1.0, 1e-4, "cell0"));
  plan.actions.push_back(cell_fault(sim::FaultKind::kRoamStorm, 1.0, 1.0, 3, "mobile"));
  FaultInjector injector{net, plan};  // bind_cells never called
  sim.at(sim::seconds(1.5), [&] { EXPECT_FALSE(topo.cell(0).down()); });
  sim.run();
  EXPECT_EQ(injector.stats().applied, 0u);
  EXPECT_EQ(injector.stats().skipped, 3u);
  EXPECT_EQ(topo.handoffs(), 0u);
}

TEST_F(CellFaultFixture, CellBerEpisodesNestAndRestore) {
  make_world(1);
  sim::FaultPlan plan;
  plan.actions.push_back(cell_fault(sim::FaultKind::kCellBer, 1.0, 2.0, 1e-4, "cell0"));
  plan.actions.push_back(cell_fault(sim::FaultKind::kCellBer, 2.0, 2.0, 2e-4, "cell0"));
  FaultInjector injector{net, plan};
  injector.bind_cells(&topo);

  sim.at(sim::seconds(1.5), [&] {
    EXPECT_DOUBLE_EQ(topo.cell(0).params().bit_error_rate, 1e-4);
  });
  // Overlap raises to the max of both episodes...
  sim.at(sim::seconds(2.5), [&] {
    EXPECT_DOUBLE_EQ(topo.cell(0).params().bit_error_rate, 2e-4);
  });
  // ...and the first episode's end must NOT restore while the second holds.
  sim.at(sim::seconds(3.5), [&] {
    EXPECT_DOUBLE_EQ(topo.cell(0).params().bit_error_rate, 2e-4);
  });
  sim.run();
  EXPECT_DOUBLE_EQ(topo.cell(0).params().bit_error_rate, 0.0);
  EXPECT_EQ(injector.stats().applied, 2u);
}

TEST_F(CellFaultFixture, RoamStormWalksTheStationAroundTheRing) {
  Node& m = make_world(3);
  sim::FaultPlan plan;
  plan.actions.push_back(cell_fault(sim::FaultKind::kRoamStorm, 1.0, 0.9, 3, "mobile"));
  FaultInjector injector{net, plan};
  injector.bind_cells(&topo);
  sim.run();

  EXPECT_EQ(injector.stats().applied, 1u);
  EXPECT_EQ(topo.handoffs(), 3u);
  EXPECT_EQ(topo.cell_of(m), 0);  // 0 -> 1 -> 2 -> 0
  EXPECT_EQ(m.address_changes(), 3u);
}

TEST_F(CellFaultFixture, RoamStormOnNonCellularTargetSkips) {
  make_world(2);
  Node& wired = net.add_node("wired");
  wired.attach(std::make_unique<WiredLink>(sim, wired, net, WiredParams{}));
  sim::FaultPlan plan;
  plan.actions.push_back(cell_fault(sim::FaultKind::kRoamStorm, 1.0, 1.0, 2, "wired"));
  FaultInjector injector{net, plan};
  injector.bind_cells(&topo);
  sim.run();
  EXPECT_EQ(injector.stats().skipped, 1u);
  EXPECT_EQ(topo.handoffs(), 0u);
}

// Live parameter mutation on a Cell: WirelessChannel semantics (the frame in
// service keeps its airtime / takes the BER in force at completion) — the
// cell-side half of the channel-mutation regression pins.
TEST_F(CellFixture, CellParameterMutationMatchesChannelSemantics) {
  WirelessParams params;
  params.capacity = util::Rate::bytes_per_sec(1000);
  params.bit_error_rate = 1.0;
  params.mac_retries = 0;
  params.prop_delay = 0;
  params.per_packet_overhead = 0;
  net.path().core_delay = 0;
  CellularTopology topo{sim, net};
  Cell& cell = topo.add_cell(params, SchedulerKind::kFifo);
  Node& m = net.add_node("mobile");
  topo.attach(m, 0);
  Node& f = net.add_node("fixed");
  f.attach(std::make_unique<WiredLink>(sim, f, net, WiredParams{}));
  CollectSink sink;
  f.set_sink(&sink);

  // Frame #1 (0..1 s) dies at BER 1; clearing the BER at t=1.5 rescues frame
  // #2 already on the air; doubling the capacity at t=2.5 speeds up frame #3
  // but not frame #2's already-spent airtime.
  for (int i = 0; i < 3; ++i) {
    m.send(make_packet({m.address(), 1}, {f.address(), 2}, 1000));
  }
  sim.at(sim::seconds(1.5), [&] { cell.set_bit_error_rate(0.0); });
  sim.at(sim::seconds(2.5), [&] { cell.set_capacity(util::Rate::bytes_per_sec(2000)); });
  sim.run();

  EXPECT_EQ(m.access()->stats().up_error_drops, 1u);
  EXPECT_EQ(sink.received.size(), 2u);
  EXPECT_EQ(m.access()->stats().up_packets, 3u);
}

// Asymmetric cells: the uplink and downlink of one cell serialize at their
// own capacities, and the directional mutators follow the same mid-service
// boundary as set_capacity.
TEST_F(CellFixture, CellAsymmetricCapacitiesShapeEachDirection) {
  WirelessParams params;
  params.up_capacity = util::Rate::bytes_per_sec(500);
  params.down_capacity = util::Rate::bytes_per_sec(2000);
  params.prop_delay = 0;
  params.per_packet_overhead = 0;
  net.path().core_delay = 0;
  CellularTopology topo{sim, net};
  Cell& cell = topo.add_cell(params, SchedulerKind::kFifo);
  Node& m = net.add_node("mobile");
  topo.attach(m, 0);
  Node& f = net.add_node("fixed");
  WiredParams roomy;
  roomy.up_capacity = util::Rate::mbps(1000);
  roomy.down_capacity = util::Rate::mbps(1000);
  roomy.prop_delay = 0;
  f.attach(std::make_unique<WiredLink>(sim, f, net, roomy));
  std::vector<std::pair<Direction, sim::SimTime>> done;
  m.access()->on_transmit = [&](Direction dir, const Packet&) {
    done.emplace_back(dir, sim.now());
  };

  // Uplink: 1000 B at 500 B/s = 2 s. Then a mid-service uplink mutation: the
  // frame on the air keeps its airtime, the backlogged one re-serializes.
  m.send(make_packet({m.address(), 1}, {f.address(), 2}, 1000));
  m.send(make_packet({m.address(), 1}, {f.address(), 2}, 1000));
  sim.at(sim::seconds(1.0), [&] { cell.set_up_capacity(util::Rate::bytes_per_sec(1000)); });
  // Downlink: 1000 B at 2000 B/s = 0.5 s, untouched by the uplink mutation.
  sim.at(sim::seconds(6.0), [&] {
    f.send(make_packet({f.address(), 2}, {m.address(), 1}, 1000));
  });
  sim.run();

  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0].first, Direction::kUp);
  EXPECT_EQ(done[0].second, sim::seconds(2.0));  // in-flight airtime honoured
  EXPECT_EQ(done[1].first, Direction::kUp);
  EXPECT_EQ(done[1].second, sim::seconds(3.0));  // backlog at the new 1000 B/s
  EXPECT_EQ(done[2].first, Direction::kDown);
  EXPECT_NEAR(sim::to_seconds(done[2].second), 6.5, 1e-3);
}

}  // namespace
}  // namespace wp2p::net
