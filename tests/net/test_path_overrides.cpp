// Per-node-pair netem-style path overrides.
#include <gtest/gtest.h>

#include <memory>

#include "net/network.hpp"
#include "net/wired_link.hpp"
#include "sim/simulator.hpp"

namespace wp2p::net {
namespace {

struct CollectSink final : PacketSink {
  std::vector<sim::SimTime> arrivals;
  sim::Simulator* sim = nullptr;
  void receive(const Packet&) override { arrivals.push_back(sim->now()); }
};

struct PathOverrideTest : ::testing::Test {
  sim::Simulator sim{3};
  Network net{sim};
  Node* a = nullptr;
  Node* b = nullptr;
  Node* c = nullptr;
  CollectSink sink_b, sink_c;

  void SetUp() override {
    net.path().core_delay = sim::milliseconds(10.0);
    a = &make_host("a", nullptr);
    b = &make_host("b", &sink_b);
    c = &make_host("c", &sink_c);
    sink_b.sim = &sim;
    sink_c.sim = &sim;
  }

  Node& make_host(const char* name, CollectSink* sink) {
    Node& n = net.add_node(name);
    WiredParams fast;
    fast.prop_delay = 0;
    fast.up_capacity = util::Rate::mbps(1000);
    fast.down_capacity = util::Rate::mbps(1000);
    n.attach(std::make_unique<WiredLink>(sim, n, net, fast));
    if (sink != nullptr) n.set_sink(sink);
    return n;
  }

  void send(Node& from, Node& to, std::int64_t size = 100) {
    Packet p;
    p.src = {from.address(), 1};
    p.dst = {to.address(), 2};
    p.size = size;
    from.send(std::move(p));
  }
};

TEST_F(PathOverrideTest, OverrideChangesDelayForThatPairOnly) {
  PathParams slow;
  slow.core_delay = sim::milliseconds(200.0);
  net.set_path_override(*a, *b, slow);
  send(*a, *b);
  send(*a, *c);
  sim.run();
  ASSERT_EQ(sink_b.arrivals.size(), 1u);
  ASSERT_EQ(sink_c.arrivals.size(), 1u);
  EXPECT_GE(sink_b.arrivals[0], sim::milliseconds(200.0));
  EXPECT_LT(sink_c.arrivals[0], sim::milliseconds(50.0));
}

TEST_F(PathOverrideTest, OverrideIsSymmetric) {
  PathParams slow;
  slow.core_delay = sim::milliseconds(200.0);
  net.set_path_override(*a, *b, slow);
  send(*b, *a);  // reverse direction uses the same override
  sim.run();
  EXPECT_GE(sim.now(), sim::milliseconds(200.0));
}

TEST_F(PathOverrideTest, OverrideLossDropsPackets) {
  PathParams lossy;
  lossy.core_delay = 0;
  lossy.loss = 1.0;
  net.set_path_override(*a, *b, lossy);
  for (int i = 0; i < 20; ++i) send(*a, *b);
  for (int i = 0; i < 20; ++i) send(*a, *c);
  sim.run();
  EXPECT_TRUE(sink_b.arrivals.empty());
  EXPECT_EQ(sink_c.arrivals.size(), 20u);
}

TEST_F(PathOverrideTest, ClearRestoresDefault) {
  PathParams slow;
  slow.core_delay = sim::milliseconds(500.0);
  net.set_path_override(*a, *b, slow);
  net.clear_path_override(*a, *b);
  send(*a, *b);
  sim.run();
  EXPECT_LT(sim.now(), sim::milliseconds(50.0));
}

TEST_F(PathOverrideTest, OverrideSurvivesAddressChange) {
  PathParams slow;
  slow.core_delay = sim::milliseconds(200.0);
  net.set_path_override(*a, *b, slow);
  b->change_address();  // override is keyed by node identity, not address
  send(*a, *b);
  sim.run();
  ASSERT_EQ(sink_b.arrivals.size(), 1u);
  EXPECT_GE(sink_b.arrivals[0], sim::milliseconds(200.0));
}

}  // namespace
}  // namespace wp2p::net
