// Access-link behaviour: serialization timing, shared-channel contention,
// BER loss scaling, queue drops, and disconnection semantics.
#include <gtest/gtest.h>

#include <memory>

#include "net/network.hpp"
#include "net/wired_link.hpp"
#include "net/wireless_channel.hpp"
#include "sim/simulator.hpp"

namespace wp2p::net {
namespace {

struct CollectSink final : PacketSink {
  std::vector<Packet> received;
  void receive(const Packet& pkt) override { received.push_back(pkt); }
};

struct LinkFixture : ::testing::Test {
  sim::Simulator sim{1};
  Network net{sim};
};

Packet make_packet(Endpoint src, Endpoint dst, std::int64_t size) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.size = size;
  return p;
}

TEST_F(LinkFixture, WiredDeliversEndToEnd) {
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  a.attach(std::make_unique<WiredLink>(sim, a, net, WiredParams{}));
  b.attach(std::make_unique<WiredLink>(sim, b, net, WiredParams{}));
  CollectSink sink;
  b.set_sink(&sink);

  a.send(make_packet({a.address(), 1}, {b.address(), 2}, 1000));
  sim.run();
  ASSERT_EQ(sink.received.size(), 1u);
  EXPECT_EQ(sink.received[0].size, 1000);
}

TEST_F(LinkFixture, WiredSerializationDelayMatchesCapacity) {
  WiredParams params;
  params.up_capacity = util::Rate::bytes_per_sec(1000);  // 1 KB/s
  params.prop_delay = 0;
  net.path().core_delay = 0;
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  a.attach(std::make_unique<WiredLink>(sim, a, net, params));
  b.attach(std::make_unique<WiredLink>(sim, b, net, WiredParams{}));
  CollectSink sink;
  b.set_sink(&sink);

  a.send(make_packet({a.address(), 1}, {b.address(), 2}, 500));  // 0.5 s at 1 KB/s
  sim.run();
  // 0.5s serialization on a's uplink; b's downlink at default 10 Mbps is ~0.
  EXPECT_GE(sim.now(), sim::seconds(0.5));
  EXPECT_LT(sim.now(), sim::seconds(0.6));
  EXPECT_EQ(sink.received.size(), 1u);
}

TEST_F(LinkFixture, WiredUpAndDownAreIndependent) {
  // Full duplex: simultaneous transfers in both directions do not contend.
  WiredParams params;
  params.up_capacity = util::Rate::bytes_per_sec(1000);
  params.down_capacity = util::Rate::bytes_per_sec(1000);
  params.prop_delay = 0;
  net.path().core_delay = 0;
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  a.attach(std::make_unique<WiredLink>(sim, a, net, params));
  b.attach(std::make_unique<WiredLink>(sim, b, net, params));
  CollectSink sink_a, sink_b;
  a.set_sink(&sink_a);
  b.set_sink(&sink_b);

  a.send(make_packet({a.address(), 1}, {b.address(), 2}, 1000));
  b.send(make_packet({b.address(), 2}, {a.address(), 1}, 1000));
  sim.run();
  EXPECT_EQ(sink_a.received.size(), 1u);
  EXPECT_EQ(sink_b.received.size(), 1u);
  // Each direction: 1s up + 1s down = 2s; both finish at the same time.
  EXPECT_GE(sim.now(), sim::seconds(2.0));
  EXPECT_LT(sim.now(), sim::seconds(2.2));
}

TEST_F(LinkFixture, WirelessSharedChannelHalvesEachDirection) {
  // Half duplex: bidirectional traffic through the same channel takes twice
  // as long as the sum of two independent directions would suggest.
  WirelessParams params;
  params.capacity = util::Rate::bytes_per_sec(1000);
  params.prop_delay = 0;
  params.per_packet_overhead = 0;
  net.path().core_delay = 0;
  Node& m = net.add_node("mobile");
  Node& f = net.add_node("fixed");
  m.attach(std::make_unique<WirelessChannel>(sim, m, net, params));
  f.attach(std::make_unique<WiredLink>(sim, f, net, WiredParams{}));
  CollectSink sink_m, sink_f;
  m.set_sink(&sink_m);
  f.set_sink(&sink_f);

  // 4 upstream packets of 1000 B at 1 KB/s = 4 s of airtime if alone.
  for (int i = 0; i < 4; ++i) {
    m.send(make_packet({m.address(), 1}, {f.address(), 2}, 1000));
  }
  sim.run();
  EXPECT_EQ(sink_f.received.size(), 4u);
  EXPECT_GE(sim.now(), sim::seconds(4.0));

  // Now push 4 packets down while 4 go up: 8 s of shared airtime.
  sim::SimTime start = sim.now();
  for (int i = 0; i < 4; ++i) {
    m.send(make_packet({m.address(), 1}, {f.address(), 2}, 1000));
    f.send(make_packet({f.address(), 2}, {m.address(), 1}, 1000));
  }
  sim.run();
  EXPECT_EQ(sink_f.received.size(), 8u);
  EXPECT_EQ(sink_m.received.size(), 4u);
  EXPECT_GE(sim.now() - start, sim::seconds(8.0));
}

TEST_F(LinkFixture, WirelessBerDropsLongPacketsMoreOften) {
  WirelessParams params;
  params.bit_error_rate = 1e-5;
  Node& m = net.add_node("mobile");
  m.attach(std::make_unique<WirelessChannel>(sim, m, net, params));
  auto* ch = dynamic_cast<WirelessChannel*>(m.access());
  ASSERT_NE(ch, nullptr);
  const double per_small = ch->packet_error_rate(40);
  const double per_large = ch->packet_error_rate(1488);
  EXPECT_GT(per_large, per_small * 10);
  EXPECT_NEAR(per_small, 1.0 - std::pow(1.0 - 1e-5, 320), 1e-12);
}

TEST_F(LinkFixture, WirelessBerLosesExpectedFraction) {
  WirelessParams params;
  params.capacity = util::Rate::mbps(100);
  params.bit_error_rate = 2e-5;
  params.mac_retries = 0;  // raw error model: every corruption is a loss
  params.up_queue_limit = 100000;
  net.path().core_delay = 0;
  Node& m = net.add_node("mobile");
  Node& f = net.add_node("fixed");
  m.attach(std::make_unique<WirelessChannel>(sim, m, net, params));
  WiredParams roomy;
  roomy.down_capacity = util::Rate::mbps(1000);
  roomy.queue_limit = 50000;  // only BER losses should matter in this test
  f.attach(std::make_unique<WiredLink>(sim, f, net, roomy));
  CollectSink sink;
  f.set_sink(&sink);

  const int n = 20000;
  const std::int64_t size = 1500;
  for (int i = 0; i < n; ++i) {
    m.send(make_packet({m.address(), 1}, {f.address(), 2}, size));
  }
  sim.run();
  auto* ch = dynamic_cast<WirelessChannel*>(m.access());
  const double expected_loss = ch->packet_error_rate(size);
  const double measured_loss = 1.0 - static_cast<double>(sink.received.size()) / n;
  EXPECT_NEAR(measured_loss, expected_loss, 0.02);
}

TEST_F(LinkFixture, MacArqRecoversMostCorruptedFrames) {
  // With 802.11-style retries, bit errors mostly cost airtime, not packets.
  WirelessParams params;
  params.capacity = util::Rate::mbps(100);
  params.bit_error_rate = 2e-5;  // ~21% per-attempt error on 1500 B frames
  params.mac_retries = 6;
  params.up_queue_limit = 100000;
  net.path().core_delay = 0;
  Node& m = net.add_node("mobile");
  Node& f = net.add_node("fixed");
  m.attach(std::make_unique<WirelessChannel>(sim, m, net, params));
  WiredParams roomy;
  roomy.down_capacity = util::Rate::mbps(1000);
  roomy.queue_limit = 50000;
  f.attach(std::make_unique<WiredLink>(sim, f, net, roomy));
  CollectSink sink;
  f.set_sink(&sink);

  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    m.send(make_packet({m.address(), 1}, {f.address(), 2}, 1500));
  }
  sim.run();
  auto* ch = dynamic_cast<WirelessChannel*>(m.access());
  // Residual loss = per_attempt^(retries+1): ~0.21^7 ~ 1e-5, i.e. none here.
  EXPECT_GT(static_cast<double>(sink.received.size()) / n, 0.999);
  // But a substantial fraction of airtime went to retransmissions.
  EXPECT_GT(ch->mac_retransmissions(), static_cast<std::uint64_t>(n / 10));
  // note_transmit counted every attempt.
  EXPECT_EQ(ch->stats().up_packets, static_cast<std::uint64_t>(n) + ch->mac_retransmissions());
}

TEST_F(LinkFixture, MacArqRetriesPayContentionOverhead) {
  // A retry is a fresh CSMA/CA medium acquisition: when the opposite direction
  // has backlog it must pay the same contention surcharge as a first
  // transmission. BER = 1 makes every attempt fail deterministically (the
  // bernoulli(1.0) fast path draws no RNG), so the whole schedule is exact.
  WirelessParams params;
  params.capacity = util::Rate::bytes_per_sec(1000);  // 1000 B frame = 1 s base
  params.bit_error_rate = 1.0;
  params.mac_retries = 3;  // 4 attempts per frame, then drop
  params.prop_delay = 0;
  params.per_packet_overhead = 0;
  params.contention_overhead = 1.0;  // contended attempts cost 2 s
  net.path().core_delay = 0;
  Node& m = net.add_node("mobile");
  Node& f = net.add_node("fixed");
  m.attach(std::make_unique<WirelessChannel>(sim, m, net, params));
  WiredParams fast;
  fast.up_capacity = util::Rate::mbps(1000);
  fast.prop_delay = 0;
  f.attach(std::make_unique<WiredLink>(sim, f, net, fast));

  // Two frames queued in each direction. Down frames traverse the fast wired
  // uplink and reach the AP queue microseconds in, well before the first
  // up-frame attempt completes.
  for (int i = 0; i < 2; ++i) {
    m.send(make_packet({m.address(), 1}, {f.address(), 2}, 1000));
    f.send(make_packet({f.address(), 2}, {m.address(), 1}, 1000));
  }
  sim.run();

  auto* ch = dynamic_cast<WirelessChannel*>(m.access());
  ASSERT_NE(ch, nullptr);
  // Exact timeline: up#1 = 1 s uncontended first attempt + 3 contended
  // retries (6 s) = 7 s; down#1 = 4 contended attempts = 8 s (t=15); up#2
  // likewise 8 s (t=23); down#2 is alone on the medium = 4 s (t=27). The old
  // code charged every retry the uncontended airtime and finished at 18 s.
  EXPECT_EQ(sim.now(), sim::seconds(27.0));
  EXPECT_EQ(ch->mac_retransmissions(), 12u);  // 3 retries x 4 frames
  EXPECT_EQ(ch->stats().up_error_drops, 2u);
  EXPECT_EQ(ch->stats().down_error_drops, 2u);
}

TEST_F(LinkFixture, WirelessQueueDropsWhenSaturated) {
  WirelessParams params;
  params.capacity = util::Rate::bytes_per_sec(1000);
  params.up_queue_limit = 5;
  Node& m = net.add_node("mobile");
  Node& f = net.add_node("fixed");
  m.attach(std::make_unique<WirelessChannel>(sim, m, net, params));
  f.attach(std::make_unique<WiredLink>(sim, f, net, WiredParams{}));

  int drops = 0;
  m.access()->on_queue_drop = [&](Direction dir, const Packet&) {
    if (dir == Direction::kUp) ++drops;
  };
  for (int i = 0; i < 20; ++i) {
    m.send(make_packet({m.address(), 1}, {f.address(), 2}, 1000));
  }
  // 1 in service + 5 queued leaves 14 drops.
  EXPECT_EQ(drops, 14);
  EXPECT_EQ(m.access()->stats().up_queue_drops, 14u);
}

TEST_F(LinkFixture, DisconnectedNodeSendsAndReceivesNothing) {
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  a.attach(std::make_unique<WiredLink>(sim, a, net, WiredParams{}));
  b.attach(std::make_unique<WiredLink>(sim, b, net, WiredParams{}));
  CollectSink sink;
  b.set_sink(&sink);

  b.set_connected(false);
  a.send(make_packet({a.address(), 1}, {b.address(), 2}, 100));
  sim.run();
  EXPECT_TRUE(sink.received.empty());
  EXPECT_EQ(net.no_route_drops(), 1u);

  a.set_connected(false);
  a.send(make_packet({a.address(), 1}, {b.address(), 2}, 100));
  sim.run();
  EXPECT_EQ(a.sent_packets(), 1u);  // second send rejected at the node
}

TEST_F(LinkFixture, TransmitObserverSeesPackets) {
  Node& a = net.add_node("a");
  Node& b = net.add_node("b");
  a.attach(std::make_unique<WiredLink>(sim, a, net, WiredParams{}));
  b.attach(std::make_unique<WiredLink>(sim, b, net, WiredParams{}));
  int up = 0, down = 0;
  a.access()->on_transmit = [&](Direction dir, const Packet&) {
    (dir == Direction::kUp ? up : down)++;
  };
  a.send(make_packet({a.address(), 1}, {b.address(), 2}, 100));
  sim.run();
  EXPECT_EQ(up, 1);
  EXPECT_EQ(down, 0);
  EXPECT_EQ(a.access()->stats().up_packets, 1u);
  EXPECT_EQ(a.access()->stats().up_bytes, 100);
}

TEST_F(LinkFixture, SetCapacityMidServiceKeepsInFlightAirtime) {
  // Live capacity mutation: the frame already on the air keeps the airtime it
  // was scheduled with; frames still queued serialize at the new rate when
  // they enter service. Pinned because FaultInjector and the cell layer both
  // rely on this boundary for mid-run parameter episodes.
  WirelessParams params;
  params.capacity = util::Rate::bytes_per_sec(1000);  // 1000 B frame = 1 s
  params.prop_delay = 0;
  params.per_packet_overhead = 0;
  net.path().core_delay = 0;
  Node& m = net.add_node("mobile");
  Node& f = net.add_node("fixed");
  m.attach(std::make_unique<WirelessChannel>(sim, m, net, params));
  f.attach(std::make_unique<WiredLink>(sim, f, net, WiredParams{}));
  auto* ch = dynamic_cast<WirelessChannel*>(m.access());
  ASSERT_NE(ch, nullptr);
  std::vector<sim::SimTime> attempt_done;
  ch->on_transmit = [&](Direction, const Packet&) { attempt_done.push_back(sim.now()); };

  // Two frames: #1 in service 0..1 s, #2 backlogged behind it.
  m.send(make_packet({m.address(), 1}, {f.address(), 2}, 1000));
  m.send(make_packet({m.address(), 1}, {f.address(), 2}, 1000));
  // Mid-service of frame #1, double the rate.
  sim.at(sim::seconds(0.5), [&] { ch->set_capacity(util::Rate::bytes_per_sec(2000)); });
  sim.run();

  ASSERT_EQ(attempt_done.size(), 2u);
  EXPECT_EQ(attempt_done[0], sim::seconds(1.0));  // old rate honoured to completion
  EXPECT_EQ(attempt_done[1], sim::seconds(1.5));  // backlogged frame at the new rate
}

TEST_F(LinkFixture, WirelessAsymmetricCapacitiesShapeEachDirection) {
  // Cellular asymmetry: a thin uplink and a fat downlink on the SAME channel.
  // A zero directional capacity inherits the symmetric `capacity`, so legacy
  // configs are untouched.
  WirelessParams params;
  params.capacity = util::Rate::bytes_per_sec(1000);
  params.up_capacity = util::Rate::bytes_per_sec(500);
  params.down_capacity = util::Rate::bytes_per_sec(2000);
  params.prop_delay = 0;
  params.per_packet_overhead = 0;
  net.path().core_delay = 0;
  EXPECT_EQ(directional_capacity(params, Direction::kUp).bytes_per_sec(), 500.0);
  EXPECT_EQ(directional_capacity(params, Direction::kDown).bytes_per_sec(), 2000.0);
  params.up_capacity = util::Rate::zero();
  EXPECT_EQ(directional_capacity(params, Direction::kUp).bytes_per_sec(), 1000.0);
  params.up_capacity = util::Rate::bytes_per_sec(500);

  Node& m = net.add_node("mobile");
  Node& f = net.add_node("fixed");
  m.attach(std::make_unique<WirelessChannel>(sim, m, net, params));
  WiredParams roomy;
  roomy.up_capacity = util::Rate::mbps(1000);
  roomy.down_capacity = util::Rate::mbps(1000);
  roomy.prop_delay = 0;
  f.attach(std::make_unique<WiredLink>(sim, f, net, roomy));
  std::vector<std::pair<Direction, sim::SimTime>> done;
  m.access()->on_transmit = [&](Direction dir, const Packet&) {
    done.emplace_back(dir, sim.now());
  };

  // 1000 B up at 500 B/s = 2 s of airtime; 1000 B down at 2000 B/s = 0.5 s.
  m.send(make_packet({m.address(), 1}, {f.address(), 2}, 1000));
  sim.at(sim::seconds(4.0), [&] {
    f.send(make_packet({f.address(), 2}, {m.address(), 1}, 1000));
  });
  sim.run();

  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0].first, Direction::kUp);
  EXPECT_EQ(done[0].second, sim::seconds(2.0));
  EXPECT_EQ(done[1].first, Direction::kDown);
  EXPECT_NEAR(sim::to_seconds(done[1].second), 4.5, 1e-3);  // + wired serialization
}

TEST_F(LinkFixture, SetUpCapacityMidServiceKeepsInFlightAirtime) {
  // The directional mutators obey the same boundary as set_capacity: the
  // frame on the air keeps its scheduled airtime, the backlog re-serializes.
  WirelessParams params;
  params.up_capacity = util::Rate::bytes_per_sec(1000);
  params.down_capacity = util::Rate::bytes_per_sec(1000);
  params.prop_delay = 0;
  params.per_packet_overhead = 0;
  net.path().core_delay = 0;
  Node& m = net.add_node("mobile");
  Node& f = net.add_node("fixed");
  m.attach(std::make_unique<WirelessChannel>(sim, m, net, params));
  f.attach(std::make_unique<WiredLink>(sim, f, net, WiredParams{}));
  auto* ch = dynamic_cast<WirelessChannel*>(m.access());
  ASSERT_NE(ch, nullptr);
  std::vector<sim::SimTime> attempt_done;
  ch->on_transmit = [&](Direction, const Packet&) { attempt_done.push_back(sim.now()); };

  m.send(make_packet({m.address(), 1}, {f.address(), 2}, 1000));
  m.send(make_packet({m.address(), 1}, {f.address(), 2}, 1000));
  sim.at(sim::seconds(0.5), [&] { ch->set_up_capacity(util::Rate::bytes_per_sec(2000)); });
  sim.run();

  ASSERT_EQ(attempt_done.size(), 2u);
  EXPECT_EQ(attempt_done[0], sim::seconds(1.0));  // in-flight airtime honoured
  EXPECT_EQ(attempt_done[1], sim::seconds(1.5));  // backlog at the new rate
}

TEST_F(LinkFixture, SetBitErrorRateAppliesAtFrameCompletion) {
  // The corruption draw happens when a frame's airtime ENDS, against the BER
  // in force at that instant: clearing the BER mid-service rescues the frame
  // currently on the air, not just the backlog behind it. (BER transitions
  // between 1.0 and 0.0 hit the deterministic bernoulli fast paths, so no RNG
  // is consumed and the outcome is exact.)
  WirelessParams params;
  params.capacity = util::Rate::bytes_per_sec(1000);
  params.bit_error_rate = 1.0;
  params.mac_retries = 0;  // every corruption is a loss
  params.prop_delay = 0;
  params.per_packet_overhead = 0;
  net.path().core_delay = 0;
  Node& m = net.add_node("mobile");
  Node& f = net.add_node("fixed");
  m.attach(std::make_unique<WirelessChannel>(sim, m, net, params));
  f.attach(std::make_unique<WiredLink>(sim, f, net, WiredParams{}));
  CollectSink sink;
  f.set_sink(&sink);
  auto* ch = dynamic_cast<WirelessChannel*>(m.access());

  // Frame #1 serves 0..1 s (lost: BER still 1 at t=1), #2 serves 1..2 s, #3
  // serves 2..3 s. Clearing the BER at t=1.5 — while #2 is on the air —
  // must save #2 and #3.
  for (int i = 0; i < 3; ++i) {
    m.send(make_packet({m.address(), 1}, {f.address(), 2}, 1000));
  }
  sim.at(sim::seconds(1.5), [&] { ch->set_bit_error_rate(0.0); });
  sim.run();

  EXPECT_EQ(ch->stats().up_error_drops, 1u);
  EXPECT_EQ(sink.received.size(), 2u);
}

}  // namespace
}  // namespace wp2p::net
