// Unit tests of the trace substrate: event builders, ring-buffer eviction,
// recorder fan-out, JSONL round-trip, and live World integration.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "exp/world.hpp"
#include "tcp/connection.hpp"
#include "trace/jsonl.hpp"
#include "trace/recorder.hpp"

namespace wp2p::trace {
namespace {

TraceEvent sample_event(double v = 1.0) {
  return event(Component::kTcp, Kind::kTcpCwnd)
      .at("mobile")
      .on("1.0.0.1:49152>1.0.0.2:9000")
      .why("slow-start")
      .with("cwnd", v)
      .with("ssthresh", 65536.0);
}

TEST(TraceEvent, BuilderFillsFields) {
  TraceEvent ev = sample_event(14480.0);
  EXPECT_EQ(ev.component, Component::kTcp);
  EXPECT_EQ(ev.kind, Kind::kTcpCwnd);
  EXPECT_EQ(ev.node, "mobile");
  EXPECT_EQ(ev.aux, "slow-start");
  EXPECT_TRUE(ev.has_field("cwnd"));
  EXPECT_DOUBLE_EQ(ev.field("cwnd"), 14480.0);
  EXPECT_DOUBLE_EQ(ev.field("missing", -1.0), -1.0);
  EXPECT_FALSE(ev.has_field("missing"));
}

TEST(TraceEvent, FieldCapIsEnforced) {
  TraceEvent ev = event(Component::kSim, Kind::kScenario)
                      .with("a", 1)
                      .with("b", 2)
                      .with("c", 3)
                      .with("d", 4)
                      .with("e", 5)
                      .with("f", 6)
                      .with("overflow", 7);
  EXPECT_EQ(ev.nfields, TraceEvent::kMaxFields);
  EXPECT_FALSE(ev.has_field("overflow"));
}

TEST(RingBufferSink, EvictsOldestBeyondCapacity) {
  RingBufferSink ring{3};
  for (int i = 0; i < 5; ++i) ring.on_event(sample_event(static_cast<double>(i)));
  EXPECT_EQ(ring.events().size(), 3u);
  EXPECT_EQ(ring.evicted(), 2u);
  // Survivors are the three newest, still in emission order.
  EXPECT_DOUBLE_EQ(ring.events().front().field("cwnd"), 2.0);
  EXPECT_DOUBLE_EQ(ring.events().back().field("cwnd"), 4.0);
  ring.clear();
  EXPECT_TRUE(ring.events().empty());
  EXPECT_EQ(ring.evicted(), 0u);
}

TEST(Recorder, FansOutToSinksAndRing) {
  Recorder recorder{8};
  RingBufferSink extra{8};
  recorder.add_sink(&extra);
  recorder.emit(sample_event());
  recorder.emit(sample_event());
  EXPECT_EQ(recorder.emitted(), 2u);
  EXPECT_EQ(recorder.ring().events().size(), 2u);
  EXPECT_EQ(extra.events().size(), 2u);
  recorder.remove_sink(&extra);
  recorder.emit(sample_event());
  EXPECT_EQ(extra.events().size(), 2u);
  EXPECT_EQ(recorder.ring().events().size(), 3u);
}

TEST(Jsonl, RoundTripsAllMembers) {
  TraceEvent ev = sample_event(14480.0);
  ev.time = sim::seconds(12.5);
  const std::string line = to_jsonl(ev);
  auto back = from_jsonl(line);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->time, ev.time);
  EXPECT_EQ(back->component, ev.component);
  EXPECT_EQ(back->kind, ev.kind);
  EXPECT_EQ(back->node, ev.node);
  EXPECT_EQ(back->key, ev.key);
  EXPECT_EQ(back->aux, ev.aux);
  ASSERT_EQ(back->nfields, ev.nfields);
  EXPECT_DOUBLE_EQ(back->field("cwnd"), 14480.0);
  EXPECT_DOUBLE_EQ(back->field("ssthresh"), 65536.0);
}

TEST(Jsonl, RoundTripsStringEscapes) {
  TraceEvent ev = event(Component::kSim, Kind::kScenario)
                      .on("label \"quoted\" back\\slash\ttab\nnewline");
  const std::string line = to_jsonl(ev);
  EXPECT_EQ(line.find('\n'), std::string::npos);  // escapes keep it one line
  auto back = from_jsonl(line);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->key, ev.key);
}

TEST(Jsonl, OmitsEmptyMembersAndParsesAnyOrder) {
  TraceEvent bare = event(Component::kChan, Kind::kChanLoss);
  const std::string line = to_jsonl(bare);
  EXPECT_EQ(line.find("\"key\""), std::string::npos);
  EXPECT_EQ(line.find("\"why\""), std::string::npos);
  EXPECT_EQ(line.find("\"f\""), std::string::npos);
  // Members reordered by external tooling still parse.
  auto back = from_jsonl(R"({"k":"chan.loss","t":7,"c":"chan","n":"ap"})");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->kind, Kind::kChanLoss);
  EXPECT_EQ(back->time, 7);
  EXPECT_EQ(back->node, "ap");
}

TEST(Jsonl, RejectsMalformedLines) {
  EXPECT_FALSE(from_jsonl("").has_value());
  EXPECT_FALSE(from_jsonl("not json").has_value());
  EXPECT_FALSE(from_jsonl(R"({"t":1,"c":"tcp"})").has_value());  // no kind
  EXPECT_FALSE(from_jsonl(R"({"t":1,"c":"nope","k":"tcp.cwnd"})").has_value());
  EXPECT_FALSE(from_jsonl(R"({"t":1,"c":"tcp","k":"tcp.cwnd")").has_value());
}

TEST(Jsonl, WriterAndReaderRoundTripAFile) {
  const std::string path = ::testing::TempDir() + "trace_roundtrip.jsonl";
  {
    JsonlWriter writer{path};
    ASSERT_TRUE(writer.ok());
    for (int i = 0; i < 10; ++i) writer.on_event(sample_event(static_cast<double>(i)));
    writer.flush();
    EXPECT_EQ(writer.lines_written(), 10u);
  }
  auto file = read_jsonl(path);
  ASSERT_TRUE(file.has_value());
  EXPECT_EQ(file->malformed, 0u);
  ASSERT_EQ(file->events.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(file->events[static_cast<std::size_t>(i)].field("cwnd"),
                     static_cast<double>(i));
  }
  std::remove(path.c_str());
}

TEST(Jsonl, ReaderCountsMalformedLinesWithoutFailing) {
  const std::string path = ::testing::TempDir() + "trace_malformed.jsonl";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs((to_jsonl(sample_event()) + "\n").c_str(), f);
    std::fputs("garbage line\n\n", f);  // one malformed + one blank
    std::fputs((to_jsonl(sample_event()) + "\n").c_str(), f);
    std::fclose(f);
  }
  auto file = read_jsonl(path);
  ASSERT_TRUE(file.has_value());
  EXPECT_EQ(file->events.size(), 2u);
  EXPECT_EQ(file->malformed, 1u);
  std::remove(path.c_str());
}

// Integration: a World with tracing enabled records real TCP events, and
// detaching the tracer stops recording without disturbing the simulation.
TEST(WorldTracing, RecordsLiveTcpEvents) {
#ifdef WP2P_TRACE_DISABLED
  GTEST_SKIP() << "instrumentation compiled out (WP2P_TRACE_DISABLED)";
#else
  exp::World world{7};
  Recorder& recorder = world.enable_tracing();
  auto& a = world.add_wired_host("a");
  auto& b = world.add_wired_host("b");
  std::shared_ptr<tcp::Connection> server;
  b.stack->listen(9000, [&](std::shared_ptr<tcp::Connection> c) { server = std::move(c); });
  auto client = a.stack->connect(b.endpoint(9000));
  world.sim.run_until(sim::seconds(1.0));
  ASSERT_TRUE(client->established());
  client->send_message(nullptr, 64 * 1024);
  world.sim.run_until(sim::seconds(5.0));

  bool saw_established = false;
  bool saw_cwnd = false;
  for (const TraceEvent& ev : recorder.ring().events()) {
    if (ev.kind == Kind::kTcpState && ev.aux == "established") saw_established = true;
    if (ev.kind == Kind::kTcpCwnd) saw_cwnd = true;
  }
  EXPECT_TRUE(saw_established);
  EXPECT_TRUE(saw_cwnd);

  const std::uint64_t emitted = recorder.emitted();
  EXPECT_GT(emitted, 0u);
  world.sim.set_tracer(nullptr);
  client->send_message(nullptr, 64 * 1024);
  world.sim.run_until(sim::seconds(10.0));
  EXPECT_EQ(recorder.emitted(), emitted);  // detached: nothing new recorded
#endif
}

}  // namespace
}  // namespace wp2p::trace
