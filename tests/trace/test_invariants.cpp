// InvariantChecker tests: every rule must fire on a deliberately corrupted
// stream and stay silent on the equivalent clean stream.
#include <gtest/gtest.h>

#include <vector>

#include "trace/invariant_checker.hpp"

namespace wp2p::trace {
namespace {

TraceEvent at_time(TraceEvent ev, double seconds) {
  ev.time = sim::seconds(seconds);
  return ev;
}

TraceEvent fast_retx(double cwnd_before, double flight, double mss) {
  return event(Component::kTcp, Kind::kTcpFastRetransmit)
      .at("mobile")
      .on("flow")
      .with("cwnd_before", cwnd_before)
      .with("flight", flight)
      .with("mss", mss);
}

TraceEvent exit_recovery(double cwnd, double mss) {
  return event(Component::kTcp, Kind::kTcpCwnd)
      .at("mobile")
      .on("flow")
      .why("exit-recovery")
      .with("cwnd", cwnd)
      .with("mss", mss);
}

std::vector<Violation> run(const std::vector<TraceEvent>& events) {
  InvariantChecker checker;
  checker.replay(events);
  return checker.violations();
}

TEST(Invariants, CleanLossEpisodePasses) {
  auto v = run({fast_retx(10000, 10000, 1000), exit_recovery(5000, 1000)});
  EXPECT_TRUE(v.empty());
}

TEST(Invariants, TcpLossResponseFiresOnUnhalvedWindow) {
  auto v = run({fast_retx(10000, 10000, 1000), exit_recovery(9500, 1000)});
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "tcp-loss-response");
}

TEST(Invariants, TcpLossResponseAllowsFlightAboveCwnd) {
  // After an earlier window cut, packets from the old window may still be in
  // the air: flight 8000 with cwnd_before 2000 legally exits at 4000.
  auto v = run({fast_retx(2000, 8000, 1000), exit_recovery(4000, 1000)});
  EXPECT_TRUE(v.empty());
}

TEST(Invariants, RtoAbandonsTheLossEpisode) {
  auto v = run({fast_retx(10000, 10000, 1000),
                event(Component::kTcp, Kind::kTcpRto).at("mobile").on("flow"),
                exit_recovery(9500, 1000)});
  EXPECT_TRUE(v.empty());
}

TEST(Invariants, TcpCwndFloorFiresBelowOneMss) {
  auto v = run({event(Component::kTcp, Kind::kTcpCwnd)
                    .at("mobile")
                    .on("flow")
                    .why("slow-start")
                    .with("cwnd", 400.0)
                    .with("mss", 1000.0)});
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "tcp-cwnd-floor");
}

TEST(Invariants, AmDecoupleYoungFiresOnMatureEstimate) {
  TraceEvent young = event(Component::kAm, Kind::kAmDecouple)
                         .on("flow")
                         .with("estimate", 4000.0)
                         .with("gamma", 9000.0);
  TraceEvent mature = event(Component::kAm, Kind::kAmDecouple)
                          .on("flow")
                          .with("estimate", 12000.0)
                          .with("gamma", 9000.0);
  EXPECT_TRUE(run({young}).empty());
  auto v = run({mature});
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "am-decouple-young");
}

TEST(Invariants, AmDupackBudgetFiresOnOverDropping) {
  auto dupack = [](Kind kind, double seen, double dropped) {
    return event(Component::kAm, kind)
        .on("flow")
        .with("seen", seen)
        .with("dropped", dropped)
        .with("modulus", 4.0);
  };
  EXPECT_TRUE(run({dupack(Kind::kAmDupackDrop, 8, 2)}).empty());  // exactly 1-in-4
  auto v = run({dupack(Kind::kAmDupackDrop, 8, 3)});              // over budget
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "am-dupack-budget");
  EXPECT_TRUE(run({dupack(Kind::kAmDupackPass, 100, 25)}).empty());
}

TEST(Invariants, LihdBoundsFiresOutsideTheClamp) {
  auto step = [](double limit) {
    return event(Component::kLihd, Kind::kLihdStep)
        .at("mobile")
        .why("decrease")
        .with("limit", limit)
        .with("min", 5000.0)
        .with("max", 200000.0);
  };
  EXPECT_TRUE(run({step(5000.0), step(200000.0), step(42000.0)}).empty());
  auto low = run({step(1000.0)});
  ASSERT_EQ(low.size(), 1u);
  EXPECT_EQ(low[0].rule, "lihd-bounds");
  auto high = run({step(250000.0)});
  ASSERT_EQ(high.size(), 1u);
  EXPECT_EQ(high[0].rule, "lihd-bounds");
}

TEST(Invariants, MobSingleDetectFiresInsideConfirmWindow) {
  auto detect = [](double seconds) {
    return at_time(event(Component::kMob, Kind::kMobDetect)
                       .at("mobile")
                       .with("confirm_samples", 2.0)
                       .with("interval_us", sim::seconds(5.0)),
                   seconds);
  };
  // Detections 20 s apart re-armed legitimately (window is 10 s).
  EXPECT_TRUE(run({detect(10.0), detect(30.0)}).empty());
  // A re-detection 4 s later cannot have re-confirmed over 2x5 s samples.
  auto v = run({detect(10.0), detect(14.0)});
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "mob-single-detect");
}

TEST(Invariants, ScenarioMarkerResetsFlowState) {
  auto v = run({fast_retx(10000, 10000, 1000),
                event(Component::kSim, Kind::kScenario).on("next scenario"),
                exit_recovery(9500, 1000)});
  EXPECT_TRUE(v.empty());  // the pending loss episode died with the scenario
}

// --- Recovery-layer rules ----------------------------------------------------

TraceEvent retry(double base, double delay, double cap = 30.0, double jitter = 0.25) {
  return event(Component::kBt, Kind::kBtAnnounceRetry)
      .at("leech")
      .with("attempt", 0.0)
      .with("base_s", base)
      .with("delay_s", delay)
      .with("cap_s", cap)
      .with("jitter", jitter);
}

TraceEvent announce(bool ok) {
  return event(Component::kBt, Kind::kBtAnnounce).at("leech").with("ok", ok ? 1.0 : 0.0);
}

TraceEvent piece_event(Kind kind, double piece) {
  return event(Component::kBt, kind).at("leech").with("piece", piece);
}

TraceEvent strike(double peer, double strikes, double threshold = 3.0) {
  return event(Component::kBt, Kind::kBtPeerStrike)
      .at("leech")
      .with("peer_id", peer)
      .with("strikes", strikes)
      .with("threshold", threshold);
}

TraceEvent peer_event(Kind kind, double peer) {
  return event(Component::kBt, kind).at("leech").with("peer_id", peer);
}

TEST(Invariants, AnnounceBackoffCleanChainPasses) {
  auto v = run({announce(false), retry(2, 2), retry(4, 4.8), retry(8, 6.2), retry(16, 16),
                retry(30, 30), retry(30, 24.5), announce(true)});
  EXPECT_TRUE(v.empty());
}

TEST(Invariants, AnnounceBackoffShrinkingBaseFires) {
  auto v = run({retry(8, 8), retry(4, 4)});
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "announce-backoff");
}

TEST(Invariants, AnnounceBackoffResetBySuccessfulAnnounce) {
  // A good announce legitimately restarts the chain from the initial base.
  EXPECT_TRUE(run({retry(8, 8), announce(true), retry(2, 2)}).empty());
  // A FAILED announce must not reset it.
  auto v = run({retry(8, 8), announce(false), retry(2, 2)});
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "announce-backoff");
}

TEST(Invariants, AnnounceBackoffCapAndJitterBandsFire) {
  auto over_cap = run({retry(40, 40, /*cap=*/30.0)});
  ASSERT_EQ(over_cap.size(), 1u);
  EXPECT_EQ(over_cap[0].rule, "announce-backoff");
  auto off_band = run({retry(8, 12, 30.0, /*jitter=*/0.25)});  // 12 > 8 * 1.25
  ASSERT_EQ(off_band.size(), 1u);
  EXPECT_EQ(off_band[0].rule, "announce-backoff");
}

TEST(Invariants, CorruptDetectionsMustBeReset) {
  EXPECT_TRUE(run({piece_event(Kind::kBtPieceCorrupt, 3), piece_event(Kind::kBtPieceReset, 3),
                   piece_event(Kind::kBtPieceCorrupt, 3), piece_event(Kind::kBtPieceReset, 3)})
                  .empty());
  // Re-detecting the same piece without a reset in between loses bytes.
  auto unreset = run({piece_event(Kind::kBtPieceCorrupt, 3), piece_event(Kind::kBtPieceCorrupt, 3)});
  ASSERT_EQ(unreset.size(), 1u);
  EXPECT_EQ(unreset[0].rule, "corrupt-reset");
  // A reset with no pending detection resets healthy data.
  auto phantom = run({piece_event(Kind::kBtPieceReset, 5)});
  ASSERT_EQ(phantom.size(), 1u);
  EXPECT_EQ(phantom[0].rule, "corrupt-reset");
}

TEST(Invariants, NoRequestsToBannedPeers) {
  // Requests before the ban are fine; one after it is a violation.
  EXPECT_TRUE(run({peer_event(Kind::kBtRequest, 7), peer_event(Kind::kBtPeerBan, 7)}).empty());
  auto v = run({peer_event(Kind::kBtPeerBan, 7), peer_event(Kind::kBtRequest, 7)});
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "banned-request");
  // Other peers remain requestable.
  EXPECT_TRUE(run({peer_event(Kind::kBtPeerBan, 7), peer_event(Kind::kBtRequest, 8)}).empty());
}

TEST(Invariants, StrikesPastThresholdFirePeerBanRule) {
  EXPECT_TRUE(run({strike(7, 1), strike(7, 2), strike(7, 3)}).empty());
  // A fourth strike means the ban at 3 never happened (unsafe_no_peer_ban).
  auto v = run({strike(7, 4)});
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "peer-ban");
}

// --- Discovery-resilience rules ----------------------------------------------

TraceEvent pex_send(const char* to, double interval_s, double seconds) {
  return at_time(event(Component::kBt, Kind::kBtPexSend)
                     .at("leech")
                     .on(to)
                     .with("peer_id", 9.0)
                     .with("added", 1.0)
                     .with("dropped", 0.0)
                     .with("interval_s", interval_s),
                 seconds);
}

TraceEvent pex_entry(double ep, double self_ep, double peer) {
  return event(Component::kBt, Kind::kBtPexEntry)
      .at("leech")
      .on("10.0.0.9:6881")
      .with("ep", ep)
      .with("peer_id", peer)
      .with("self_ep", self_ep);
}

TraceEvent failover(const char* why, double from, double to, double trackers,
                    double from_tier = 0.0, double to_tier = 1.0) {
  return event(Component::kBt, Kind::kBtTrackerFailover)
      .at("leech")
      .why(why)
      .with("from", from)
      .with("to", to)
      .with("trackers", trackers)
      .with("from_tier", from_tier)
      .with("to_tier", to_tier);
}

TraceEvent bootstrap(double trackers) {
  return event(Component::kBt, Kind::kBtBootstrap)
      .at("leech")
      .with("failures", trackers)
      .with("trackers", trackers)
      .with("dialed", 1.0)
      .with("cached", 2.0);
}

TEST(Invariants, PexRateLimitFiresInsideTheAdvertisedInterval) {
  // Sends a full interval apart are clean; per-recipient state is independent.
  EXPECT_TRUE(run({pex_send("a:1", 30.0, 0.0), pex_send("b:2", 30.0, 1.0),
                   pex_send("a:1", 30.0, 30.0)})
                  .empty());
  auto v = run({pex_send("a:1", 30.0, 0.0), pex_send("a:1", 30.0, 10.0)});
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "pex-rate-limit");
}

TEST(Invariants, PexNoSelfFiresWhenAClientGossipsItsOwnEndpoint) {
  EXPECT_TRUE(run({pex_entry(1000.0, 2000.0, 7.0)}).empty());
  auto v = run({pex_entry(2000.0, 2000.0, 7.0)});
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "pex-no-self");
}

TEST(Invariants, PexNoBannedFiresWhenABannedIdentityIsGossiped) {
  // Banning is per-node state: the ban on peer 7 poisons only 7's entries.
  EXPECT_TRUE(run({peer_event(Kind::kBtPeerBan, 7), pex_entry(1000.0, 2000.0, 8.0)}).empty());
  auto v = run({peer_event(Kind::kBtPeerBan, 7), pex_entry(1000.0, 2000.0, 7.0)});
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "pex-no-banned");
}

TEST(Invariants, FailoverMustWalkTheTierListInOrder) {
  // A clean cycle: one slot at a time, wrapping back to the primary.
  EXPECT_TRUE(run({failover("failover", 0, 1, 3, 0, 1), failover("failover", 1, 2, 3, 1, 1),
                   failover("failover", 2, 0, 3, 1, 0)})
                  .empty());
  // Promotions reorder within a tier and are not failovers.
  EXPECT_TRUE(run({failover("promote", 2, 1, 3, 1, 1)}).empty());
  auto skipped = run({failover("failover", 0, 2, 3, 0, 1)});
  ASSERT_EQ(skipped.size(), 1u);
  EXPECT_EQ(skipped[0].rule, "failover-tier-order");
  // Advancing into a LOWER tier without wrapping means the list was missorted.
  auto regressed = run({failover("failover", 1, 2, 3, /*from_tier=*/2, /*to_tier=*/1)});
  ASSERT_EQ(regressed.size(), 1u);
  EXPECT_EQ(regressed[0].rule, "failover-tier-order");
}

TEST(Invariants, FailbackMustLandOnThePrimary) {
  EXPECT_TRUE(run({failover("failback", 2, 0, 3)}).empty());
  auto v = run({failover("failback", 2, 1, 3)});
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "failover-tier-order");
}

TEST(Invariants, BootstrapOnlyWhenEveryTrackerTierFailed) {
  // Two tiers, two consecutive failures: discovery is dark, the cache may act.
  EXPECT_TRUE(run({announce(false), announce(false), bootstrap(2)}).empty());
  auto early = run({announce(false), bootstrap(2)});
  ASSERT_EQ(early.size(), 1u);
  EXPECT_EQ(early[0].rule, "bootstrap-only-when-dark");
  // A successful announce in between resets the streak.
  auto reset = run({announce(false), announce(true), announce(false), bootstrap(2)});
  ASSERT_EQ(reset.size(), 1u);
  EXPECT_EQ(reset[0].rule, "bootstrap-only-when-dark");
}

// --- Cell rules --------------------------------------------------------------

TraceEvent cell_attach(double cell) {
  return event(Component::kCell, Kind::kCellAttach)
      .at("mobile")
      .with("cell", cell)
      .with("stations", 1.0);
}

TraceEvent cell_detach(double cell) {
  return event(Component::kCell, Kind::kCellDetach).at("mobile").with("cell", cell);
}

TraceEvent cell_serve(double cell, double qlen) {
  return event(Component::kCell, Kind::kCellServe)
      .at("mobile")
      .why("fifo")
      .with("cell", cell)
      .with("qlen", qlen);
}

TraceEvent cell_deliver(double cell) {
  return event(Component::kCell, Kind::kCellDeliver)
      .at("mobile")
      .with("cell", cell)
      .with("size", 1000.0);
}

TEST(Invariants, CleanRoamSequencePasses) {
  auto v = run({cell_attach(0), cell_serve(0, 2), cell_deliver(0), cell_detach(0),
                cell_attach(1), cell_serve(1, 1), cell_deliver(1)});
  EXPECT_TRUE(v.empty());
}

TEST(Invariants, CellSingleAttachFiresOnAttachWhileAttached) {
  auto v = run({cell_attach(0), cell_attach(1)});
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "cell-single-attach");
}

TEST(Invariants, CellSingleAttachFiresOnDetachAnomalies) {
  // Detaching while not attached anywhere...
  auto v = run({cell_detach(0)});
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "cell-single-attach");
  // ...and detaching from a cell the station was never in.
  v = run({cell_attach(0), cell_detach(1)});
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "cell-single-attach");
}

TEST(Invariants, CellNoDetachedDeliveryFires) {
  // Delivery mid-hand-off (detached)...
  auto v = run({cell_attach(0), cell_detach(0), cell_deliver(0)});
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "cell-no-detached-delivery");
  // ...and delivery through the OLD cell after re-attaching elsewhere.
  v = run({cell_attach(0), cell_detach(0), cell_attach(1), cell_deliver(0)});
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "cell-no-detached-delivery");
}

TEST(Invariants, CellServeBackloggedFiresOnEmptyPickOrWrongCell) {
  auto v = run({cell_attach(0), cell_serve(0, 0)});
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "cell-serve-backlogged");
  v = run({cell_attach(0), cell_serve(1, 2)});
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "cell-serve-backlogged");
}

TEST(Invariants, ScenarioMarkerResetsCellState) {
  auto v = run({cell_attach(0),
                event(Component::kSim, Kind::kScenario).on("next scenario"),
                cell_attach(0)});
  EXPECT_TRUE(v.empty());
}

TEST(Invariants, CountsCheckedAndMatchedEvents) {
  InvariantChecker checker;
  checker.check(event(Component::kBt, Kind::kBtChoke));  // no rule attached
  checker.check(exit_recovery(5000, 1000));
  EXPECT_EQ(checker.events_checked(), 2u);
  EXPECT_EQ(checker.events_matched(), 1u);
  EXPECT_TRUE(checker.violations().empty());
}


// The per-kind rule index must make dispatch cost independent of how many
// rules exist for *other* kinds: an event only ever touches the rules
// registered for its own kind.
TEST(Invariants, DispatchCostIndependentOfInactiveRules) {
  InvariantChecker plain;
  InvariantChecker loaded;
  // Pile external rules onto a kind the stream below never contains.
  for (int i = 0; i < 256; ++i) {
    loaded.register_rule({Kind::kBtPexSend}, [](const TraceEvent&) {});
  }
  ASSERT_EQ(loaded.rule_count(), plain.rule_count() + 256);

  const std::vector<TraceEvent> stream{
      exit_recovery(5000, 1000),
      event(Component::kBt, Kind::kBtChoke),
      fast_retx(10000, 8000, 1000),
      event(Component::kBt, Kind::kBtUnchoke),
  };
  plain.replay(stream);
  loaded.replay(stream);
  // Identical dispatch counts: none of the 256 inactive rules was consulted.
  EXPECT_EQ(loaded.rule_dispatches(), plain.rule_dispatches());
  EXPECT_EQ(loaded.events_checked(), plain.events_checked());
  EXPECT_EQ(loaded.events_matched(), plain.events_matched());
}

TEST(Invariants, RegisteredExternalRuleFiresOnItsKind) {
  InvariantChecker checker;
  int calls = 0;
  checker.register_rule({Kind::kBtChoke, Kind::kBtUnchoke},
                        [&calls](const TraceEvent&) { ++calls; });
  checker.check(event(Component::kBt, Kind::kBtChoke));
  checker.check(event(Component::kBt, Kind::kBtUnchoke));
  checker.check(event(Component::kBt, Kind::kBtRecover));
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(checker.events_matched(), 2u);
}

// --- Suspend/resume lifecycle rules -----------------------------------------------

TraceEvent suspend_begin(double peer_id) {
  return event(Component::kBt, Kind::kBtSuspend)
      .at("mob")
      .why("begin")
      .with("peer_id", peer_id)
      .with("pieces", 3.0);
}

TraceEvent resumed(double peer_id) {
  return event(Component::kBt, Kind::kBtResume)
      .at("mob")
      .why("resumed")
      .with("peer_id", peer_id)
      .with("pieces", 3.0);
}

TraceEvent restored(double snapshot, double rest, double dropped, double seq) {
  return event(Component::kBt, Kind::kBtResume)
      .at("mob")
      .why("restored")
      .with("peer_id", 10.0)
      .with("snapshot", snapshot)
      .with("restored", rest)
      .with("dropped", dropped)
      .with("seq", seq)
      .with("discarded", 0.0);
}

TraceEvent store_load(double seq, double discarded) {
  return event(Component::kStore, Kind::kStoreLoad)
      .at("mob")
      .why(seq < 0 ? "empty" : "ok")
      .with("seq", seq)
      .with("discarded", discarded)
      .with("journal", 4.0);
}

TEST(Invariants, SuspendedNodeMustStaySilent) {
  const TraceEvent announce = event(Component::kBt, Kind::kBtAnnounce).at("mob");
  // Clean: the announce lands outside the suspend bracket.
  EXPECT_TRUE(run({suspend_begin(10), resumed(10), announce}).empty());
  // Another node's traffic during the bracket is fine too.
  EXPECT_TRUE(run({suspend_begin(10),
                   event(Component::kBt, Kind::kBtAnnounce).at("seed0")})
                  .empty());
  // The suspended node itself serving anything is the violation.
  auto v = run({suspend_begin(10), announce});
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "no-serve-while-suspended");
  auto piece = run({suspend_begin(10),
                    event(Component::kBt, Kind::kBtPieceComplete).at("mob")});
  ASSERT_EQ(piece.size(), 1u);
  EXPECT_EQ(piece[0].rule, "no-serve-while-suspended");
}

TEST(Invariants, ResumeBitfieldMustBeASnapshotSubset) {
  // Clean: restored + dropped == snapshot, restored <= snapshot.
  EXPECT_TRUE(run({store_load(3, 0), restored(5, 3, 2, 3)}).empty());
  // More pieces than the snapshot carried: invented data.
  auto inflated = run({store_load(3, 0), restored(5, 6, 0, 3)});
  ASSERT_EQ(inflated.size(), 1u);
  EXPECT_EQ(inflated[0].rule, "resume-bitfield-subset");
  // Drop accounting must balance.
  auto leaky = run({store_load(3, 0), restored(5, 3, 1, 3)});
  ASSERT_EQ(leaky.size(), 1u);
  EXPECT_EQ(leaky[0].rule, "resume-bitfield-subset");
}

TEST(Invariants, RestoreMustMatchTheChecksumValidatedRecord) {
  // Clean: the restore consumed exactly the record the journal walk validated.
  EXPECT_TRUE(run({store_load(7, 2), restored(5, 5, 0, 7)}).empty());
  // The journal found nothing checksum-valid, yet a snapshot was restored.
  auto phantom = run({store_load(-1, 3), restored(5, 5, 0, 7)});
  ASSERT_EQ(phantom.size(), 1u);
  EXPECT_EQ(phantom[0].rule, "snapshot-checksum-valid");
  // The restore consumed a different record than the walk validated.
  auto swapped = run({store_load(7, 2), restored(5, 5, 0, 6)});
  ASSERT_EQ(swapped.size(), 1u);
  EXPECT_EQ(swapped[0].rule, "snapshot-checksum-valid");
}

TEST(Invariants, ResumeMustCarryTheSuspendedIdentityForward) {
  EXPECT_TRUE(run({suspend_begin(10), resumed(10)}).empty());
  auto v = run({suspend_begin(10), resumed(11)});
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "identity-retained-across-resume");
  // A cold restart legitimately mints a fresh identity: the bracket closes
  // without an identity expectation, so a later fresh suspend/resume is clean.
  EXPECT_TRUE(run({suspend_begin(10),
                   event(Component::kBt, Kind::kBtResume)
                       .at("mob")
                       .why("cold")
                       .with("peer_id", 99.0)
                       .with("discarded", 2.0),
                   suspend_begin(99), resumed(99)})
                  .empty());
}

}  // namespace
}  // namespace wp2p::trace
