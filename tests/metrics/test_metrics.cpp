#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "metrics/histogram.hpp"
#include "metrics/meters.hpp"
#include "metrics/table.hpp"

namespace wp2p::metrics {
namespace {

TEST(ThroughputMeter, MeasuresWindowRate) {
  ThroughputMeter meter{sim::seconds(10.0)};
  meter.add(sim::seconds(1.0), 1000);
  meter.add(sim::seconds(2.0), 1000);
  // Warm-up: only 1 s has elapsed since the first sample, so the denominator
  // is the observed span, not the 10 s window — 2000 bytes over 1 s.
  EXPECT_NEAR(meter.rate(sim::seconds(2.0)).bytes_per_sec(), 2000.0, 1e-9);
  // Once a full window has elapsed the denominator saturates at the window;
  // the t=1 s sample has just expired, leaving 1000 bytes over 10 s.
  EXPECT_NEAR(meter.rate(sim::seconds(11.0)).bytes_per_sec(), 100.0, 1e-9);
  EXPECT_EQ(meter.total(), 2000);
}

TEST(ThroughputMeter, OldSamplesExpire) {
  ThroughputMeter meter{sim::seconds(10.0)};
  meter.add(sim::seconds(1.0), 5000);
  EXPECT_NEAR(meter.rate(sim::seconds(20.0)).bytes_per_sec(), 0.0, 1e-9);
  EXPECT_EQ(meter.total(), 5000);  // totals are cumulative
}

TEST(TimeSeries, RecordsAndAggregates) {
  TimeSeries series;
  series.record(sim::seconds(1.0), 10.0);
  series.record(sim::seconds(2.0), 20.0);
  series.record(sim::seconds(3.0), 30.0);
  EXPECT_EQ(series.size(), 3u);
  EXPECT_DOUBLE_EQ(series.last_value(), 30.0);
  EXPECT_DOUBLE_EQ(series.mean(), 20.0);
  EXPECT_DOUBLE_EQ(series.mean(sim::seconds(2.0), sim::seconds(3.0)), 25.0);
}

TEST(RunStats, SummaryStatistics) {
  RunStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(v);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.stddev(), 2.1380899, 1e-6);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunStats, EmptyIsSafe) {
  RunStats stats;
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.stddev(), 0.0);
}

TEST(Histogram, CountsAndMoments) {
  Histogram h{0.0, 100.0, 10};
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i));
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 49.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 99.0);
  for (std::size_t b = 0; b < 10; ++b) EXPECT_EQ(h.bucket_count(b), 10u);
}

TEST(Histogram, PercentilesInterpolate) {
  Histogram h{0.0, 100.0, 100};
  for (int i = 0; i < 1000; ++i) h.add(static_cast<double>(i % 100));
  EXPECT_NEAR(h.percentile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.percentile(0.99), 99.0, 1.5);
  EXPECT_NEAR(h.percentile(0.0), 0.0, 1e-9);
}

TEST(Histogram, OutOfRangeClampsToEdges) {
  Histogram h{0.0, 10.0, 5};
  h.add(-100.0);
  h.add(100.0);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(4), 1u);
  EXPECT_DOUBLE_EQ(h.min(), -100.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
}

// Regression: percentile(0) used to answer the range floor lo_ and
// percentile(1) could answer the range ceiling hi_; both must report values
// that were actually observed.
TEST(Histogram, ExtremePercentilesReturnObservedValues) {
  Histogram h{0.0, 100.0, 10};
  h.add(12.0);
  h.add(37.0);
  h.add(64.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 12.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 64.0);
}

TEST(Histogram, ExtremePercentilesWithClampedSamples) {
  Histogram h{0.0, 10.0, 5};
  h.add(-3.0);   // clamps into bucket 0, but min() knows the real value
  h.add(5.0);
  h.add(42.0);   // clamps into the last bucket; hi_ (10.0) was never observed
  EXPECT_DOUBLE_EQ(h.percentile(0.0), -3.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 42.0);
}

TEST(Table, FormatsNumbersAndPrints) {
  Table table{"test"};
  table.columns({"a", "b"});
  table.row({Table::num(1.2345, 2), Table::num(7.0, 0)});
  EXPECT_EQ(Table::num(1.2345, 2), "1.23");
  EXPECT_EQ(Table::num(7.0, 0), "7");
  // Smoke-test print to a scratch stream.
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  table.print(f);
  EXPECT_GT(std::ftell(f), 0);
  std::fclose(f);
}

TEST(Table, PrintCsvQuotesSpecialCells) {
  Table table{"csv"};
  table.columns({"name", "value"});
  table.row({"plain", "1"});
  table.row({"with,comma", "say \"hi\""});
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  table.print_csv(f);
  std::fflush(f);
  long len = std::ftell(f);
  ASSERT_GT(len, 0);
  std::rewind(f);
  std::string out(static_cast<std::size_t>(len), '\0');
  ASSERT_EQ(std::fread(out.data(), 1, out.size(), f), out.size());
  std::fclose(f);
  EXPECT_NE(out.find("# csv"), std::string::npos);
  EXPECT_NE(out.find("name,value"), std::string::npos);
  EXPECT_NE(out.find("plain,1"), std::string::npos);
  EXPECT_NE(out.find("\"with,comma\",\"say \"\"hi\"\"\""), std::string::npos);
}

}  // namespace
}  // namespace wp2p::metrics
