#include <gtest/gtest.h>

#include "metrics/transfer_matrix.hpp"
#include "sim/time.hpp"

namespace wp2p::metrics {
namespace {

// A 2x2-class swarm where every leech unchokes ONLY its own class: the
// coefficient of both classes must read exactly 1.
TEST(TransferMatrix, PerfectClusteringReadsOne) {
  TransferMatrix m;
  const int a0 = m.add_identity("a0", 0, false);
  const int a1 = m.add_identity("a1", 0, false);
  const int b0 = m.add_identity("b0", 1, false);
  const int b1 = m.add_identity("b1", 1, false);
  m.set_unchoked(a0, a1, true, sim::seconds(0.0));
  m.set_unchoked(a1, a0, true, sim::seconds(0.0));
  m.set_unchoked(b0, b1, true, sim::seconds(0.0));
  m.set_unchoked(b1, b0, true, sim::seconds(0.0));
  m.finish(sim::seconds(100.0));
  EXPECT_DOUBLE_EQ(m.same_class_affinity(a0), 1.0);
  EXPECT_DOUBLE_EQ(m.clustering_coefficient(0), 1.0);
  EXPECT_DOUBLE_EQ(m.clustering_coefficient(1), 1.0);
  EXPECT_DOUBLE_EQ(m.overall_coefficient(), 1.0);
}

// Class-blind mixing: every leech unchokes every other leech for the same
// time, so affinity equals the null model and the coefficient reads exactly 0.
TEST(TransferMatrix, UniformMixingReadsZero) {
  TransferMatrix m;
  int rows[6];
  for (int i = 0; i < 6; ++i) rows[i] = m.add_identity("p", i / 3, false);
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 6; ++j) {
      if (i != j) m.set_unchoked(rows[i], rows[j], true, sim::seconds(0.0));
    }
  }
  m.finish(sim::seconds(50.0));
  EXPECT_DOUBLE_EQ(m.null_affinity(rows[0]), 2.0 / 5.0);
  EXPECT_DOUBLE_EQ(m.same_class_affinity(rows[0]), 2.0 / 5.0);
  EXPECT_NEAR(m.clustering_coefficient(0), 0.0, 1e-12);
  EXPECT_NEAR(m.overall_coefficient(), 0.0, 1e-12);
}

// Seeds neither cluster nor count as targets: a seed row has no affinity, and
// unchoke time given TO a seed does not enter a leech's affinity denominator.
TEST(TransferMatrix, SeedsAreExcludedFromAffinity) {
  TransferMatrix m;
  const int seed = m.add_identity("seed", -1, true);
  const int a0 = m.add_identity("a0", 0, false);
  const int a1 = m.add_identity("a1", 0, false);
  const int b0 = m.add_identity("b0", 1, false);
  m.set_unchoked(seed, a0, true, sim::seconds(0.0));
  m.set_unchoked(a0, seed, true, sim::seconds(0.0));  // ignored by affinity
  m.set_unchoked(a0, a1, true, sim::seconds(0.0));
  m.finish(sim::seconds(10.0));
  EXPECT_DOUBLE_EQ(m.same_class_affinity(seed), -1.0);
  EXPECT_DOUBLE_EQ(m.same_class_affinity(a0), 1.0);
  EXPECT_DOUBLE_EQ(m.same_class_affinity(b0), -1.0);  // never unchoked a leech
}

// A one-class swarm makes affinity vacuous (null model = 1): no signal.
TEST(TransferMatrix, OneClassSwarmIsVacuous) {
  TransferMatrix m;
  const int a0 = m.add_identity("a0", 0, false);
  const int a1 = m.add_identity("a1", 0, false);
  m.set_unchoked(a0, a1, true, sim::seconds(0.0));
  m.finish(sim::seconds(10.0));
  EXPECT_DOUBLE_EQ(m.clustering_coefficient(0), -1.0);
  EXPECT_DOUBLE_EQ(m.overall_coefficient(), -1.0);
}

// Nested opens (simultaneous open before the duplicate-handshake tie-break)
// are reference-counted: the pair is unchoked while at least one connection
// is, and a close without a matching open is ignored.
TEST(TransferMatrix, UnchokeIntervalsAreRefCounted) {
  TransferMatrix m;
  const int a = m.add_identity("a", 0, false);
  const int b = m.add_identity("b", 0, false);
  m.set_unchoked(a, b, false, sim::seconds(1.0));  // close before any open
  m.set_unchoked(a, b, true, sim::seconds(2.0));
  m.set_unchoked(a, b, true, sim::seconds(4.0));   // second live connection
  m.set_unchoked(a, b, false, sim::seconds(6.0));  // one closes, pair stays open
  m.set_unchoked(a, b, false, sim::seconds(9.0));  // last close ends the interval
  m.set_unchoked(a, b, false, sim::seconds(12.0));  // stray close, ignored
  EXPECT_EQ(m.unchoke_time(a, b), sim::seconds(7.0));
}

// finish_row freezes one identity's outgoing intervals; the rest of the
// matrix keeps accumulating until finish().
TEST(TransferMatrix, FinishRowFreezesOnlyThatRow) {
  TransferMatrix m;
  const int a = m.add_identity("a", 0, false);
  const int b = m.add_identity("b", 0, false);
  m.set_unchoked(a, b, true, sim::seconds(0.0));
  m.set_unchoked(b, a, true, sim::seconds(0.0));
  m.finish_row(a, sim::seconds(10.0));
  m.finish(sim::seconds(30.0));
  EXPECT_EQ(m.unchoke_time(a, b), sim::seconds(10.0));
  EXPECT_EQ(m.unchoke_time(b, a), sim::seconds(30.0));
}

// Identity binding: bytes recorded under any id a peer has ever used land in
// the same row; a fresh id binds on top without dropping the old one.
TEST(TransferMatrix, BindingSurvivesIdRegeneration) {
  TransferMatrix m;
  const int row = m.add_identity("roamer", 0, false);
  m.bind(0xAAAA, row);
  EXPECT_EQ(m.row_of(0xAAAA), row);
  m.bind(0xBBBB, row);  // regenerated after a hand-off
  EXPECT_EQ(m.row_of(0xAAAA), row);
  EXPECT_EQ(m.row_of(0xBBBB), row);
  EXPECT_EQ(m.row_of(0xCCCC), -1);
}

TEST(TransferMatrix, FreeRiderYieldAndSeedShare) {
  TransferMatrix m;
  const int seed = m.add_identity("seed", -1, true);
  const int l0 = m.add_identity("l0", 0, false);
  const int l1 = m.add_identity("l1", 0, false);
  const int rider = m.add_identity("rider", -1, false);
  m.record_upload(l0, l1, 1000);
  m.record_download(l0, l1, 2000);
  m.record_upload(l1, l0, 2000);
  m.record_download(l1, l0, 1000);
  m.record_download(l1, seed, 3000);
  m.record_download(rider, seed, 900);
  m.record_download(rider, l0, 100);
  // Contributors are l0 (2000 down) and l1 (4000 down): the rider never
  // uploads, so it is not a contributor; mean contributor download = 3000.
  EXPECT_DOUBLE_EQ(m.free_rider_yield(rider), 1000.0 / 3000.0);
  // A contributor's own yield is measured against the OTHER contributors.
  EXPECT_DOUBLE_EQ(m.free_rider_yield(l0), 2000.0 / 4000.0);
  EXPECT_DOUBLE_EQ(m.seed_share(rider), 0.9);
  EXPECT_DOUBLE_EQ(m.seed_share(l0), 0.0);
  EXPECT_DOUBLE_EQ(m.seed_share(seed), 0.0);  // downloaded nothing
}

// No contributing leech to compare against (all-seed swarm): yield is 0, not
// a division by zero.
TEST(TransferMatrix, FreeRiderYieldWithNoContributors) {
  TransferMatrix m;
  m.add_identity("seed0", -1, true);
  m.add_identity("seed1", -1, true);
  const int rider = m.add_identity("rider", -1, false);
  m.record_download(rider, 0, 500);
  EXPECT_DOUBLE_EQ(m.free_rider_yield(rider), 0.0);
}

// The shuffled baseline is a pure function of (matrix, seed): identical
// across calls, different seeds decorrelate, and it sits near 0 for a
// perfectly clustered matrix (labels carry all the structure).
TEST(TransferMatrix, ShuffledBaselineIsDeterministic) {
  TransferMatrix m;
  int rows[8];
  for (int i = 0; i < 8; ++i) rows[i] = m.add_identity("p", i / 4, false);
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      if (i != j && i / 4 == j / 4) m.set_unchoked(rows[i], rows[j], true, sim::seconds(0.0));
    }
  }
  m.finish(sim::seconds(60.0));
  const double first = m.shuffled_coefficient(42);
  EXPECT_DOUBLE_EQ(first, m.shuffled_coefficient(42));
  EXPECT_NE(first, m.shuffled_coefficient(43));
  EXPECT_DOUBLE_EQ(m.overall_coefficient(), 1.0);
  EXPECT_LT(std::abs(first), 0.35);  // straddles 0, far below the real signal
}

}  // namespace
}  // namespace wp2p::metrics
