// End-to-end acceptance for the multi-cell subsystem: wP2P clients complete
// downloads while commuting across a four-cell topology — identities retained
// through every hand-off, discovery trackerless (PEX + role reversal) for the
// whole roaming phase, a cell outage landing mid-roam — with the cell
// invariant rules auditing the full trace.
#include <gtest/gtest.h>

#include <string>

#include "exp/swarm.hpp"
#include "trace/invariant_checker.hpp"
#include "trace/recorder.hpp"

namespace wp2p {
namespace {

using exp::Swarm;

std::string violation_digest(const trace::InvariantChecker& checker) {
  std::string out;
  for (const auto& v : checker.violations()) out += to_string(v) + "\n";
  return out;
}

// One wired seed, two cellular wP2P leeches. m1 is walked 0 -> 1 -> 2 -> 3 by
// hand with an outage of its serving cell bracketing the middle hand-off (it
// roams OUT of a dark cell); m2 commutes on a scripted RoamingModel schedule
// through cells 1 -> 2 -> 3 -> 0. The tracker goes dark before the first roam,
// so every re-discovery below runs on the wP2P machinery alone: retained peer
// ids, role reversal from remembered endpoints, and PEX gossip keeping the
// endpoint lists fresh as addresses churn.
TEST(CellsE2E, RoamingLeechersCompleteTrackerlessUnderMidRoamOutage) {
  auto meta = bt::Metainfo::create("e2e-cells", 3 * 1024 * 1024, 256 * 1024, "tr", 91);
  Swarm swarm{91, meta};

  trace::Recorder recorder{/*ring_capacity=*/4};
  trace::InvariantChecker checker;
  recorder.add_sink(&checker);
  swarm.world.sim.set_tracer(&recorder);

  net::CellularTopology& cells = swarm.world.enable_cells();
  for (int i = 0; i < 4; ++i) cells.add_cell();

  bt::ClientConfig config;
  config.announce_interval = sim::seconds(20.0);
  config.pex = true;
  auto& seed = swarm.add_wired("seed", true, config);
  seed->set_upload_limit(util::Rate::kBps(150.0));  // stretch across the roams

  bt::ClientConfig mc = config;
  mc.retain_peer_id = true;
  mc.role_reversal = true;
  mc.bootstrap_cache = true;
  mc.listen_port = 6882;
  auto& m1 = swarm.add_cellular("m1", false, mc, 0);
  mc.listen_port = 6883;
  auto& m2 = swarm.add_cellular("m2", false, mc, 1);

  net::RoamingModel roam{cells};
  roam.add(18.0, "m2", 2);
  roam.add(30.0, "m2", 3);
  roam.add(44.0, "m2", 0);
  roam.start();

  swarm.start_all();
  swarm.run_for(15.0);
  const bt::PeerId id1 = m1->peer_id();
  const bt::PeerId id2 = m2->peer_id();
  ASSERT_GT(m1->stats().payload_downloaded, 0);
  ASSERT_GT(m2->stats().payload_downloaded, 0);
  ASSERT_FALSE(m1->complete());
  ASSERT_FALSE(m2->complete());

  // Tracker dark for good: the roaming phase below is fully trackerless.
  swarm.tracker.set_reachable(false);

  net::Node& node1 = *m1.host->node;
  swarm.run_for(5.0);
  cells.handoff(node1, 1);  // t = 20
  swarm.run_for(10.0);

  // Mid-roam outage: m1's serving cell dies, and the next hand-off leaves a
  // dark cell — the flush, the refused enqueues, and the re-association all
  // overlap one episode.
  cells.cell(1).set_down(true);  // t = 30
  swarm.run_for(3.0);
  cells.handoff(node1, 2);  // t = 33, roaming out of the outage
  swarm.run_for(5.0);
  cells.cell(1).set_down(false);  // t = 38
  swarm.run_for(10.0);
  cells.handoff(node1, 3);  // t = 48

  ASSERT_TRUE(swarm.run_until_complete(m1, 900.0));
  ASSERT_TRUE(swarm.run_until_complete(m2, 900.0));
  EXPECT_TRUE(m1->store().bitfield().all());
  EXPECT_TRUE(m2->store().bitfield().all());

  // Identity survived every hand-off; both stations visited >= 3 cells.
  EXPECT_EQ(m1->peer_id(), id1);
  EXPECT_EQ(m2->peer_id(), id2);
  EXPECT_EQ(cells.handoffs(), 6u);
  EXPECT_EQ(roam.executed(), 3u);
  EXPECT_EQ(cells.cell_of(node1), 3);
  EXPECT_EQ(cells.cell_of(*m2.host->node), 0);
  EXPECT_GE(m1->stats().task_reinitiations, 1u);
  EXPECT_GE(m2->stats().task_reinitiations, 1u);

  // The outage really cost the dark cell traffic, and PEX gossip flowed.
  EXPECT_GT(cells.cell(1).outage_drops(), 0u);
  EXPECT_GT(m1->stats().pex_received + m2->stats().pex_received, 0u);

  // Every cell/fault/protocol invariant held across the whole trace.
  swarm.world.sim.set_tracer(nullptr);
  EXPECT_TRUE(checker.violations().empty()) << violation_digest(checker);
}

}  // namespace
}  // namespace wp2p
