// End-to-end acceptance for session persistence: a commuting cellular leech
// lives the full mobile-app lifecycle — background nap (suspend/resume via the
// roaming model's power schedule), then an outright app kill and a restart
// that restores from the journaled snapshot — with the lifecycle invariant
// rules (no-serve-while-suspended, resume-bitfield-subset,
// snapshot-checksum-valid, identity-retained-across-resume) auditing the full
// trace. A second pass runs the same life on storage that tears most commits:
// the restore must degrade (older snapshot or cold start) and never claim an
// unverified piece.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bt/resume_store.hpp"
#include "exp/swarm.hpp"
#include "net/cell.hpp"
#include "sim/stable_storage.hpp"
#include "trace/invariant_checker.hpp"
#include "trace/recorder.hpp"

namespace wp2p {
namespace {

using exp::Swarm;

std::string violation_digest(const trace::InvariantChecker& checker) {
  std::string out;
  for (const auto& v : checker.violations()) out += to_string(v) + "\n";
  return out;
}

struct LifeOutcome {
  bool completed = false;
  bool subset_ok = true;          // post-restart bitfield ⊆ pre-kill verified
  std::uint64_t restored = 0;
  std::uint64_t cold_restarts = 0;
  std::uint64_t suspends = 0;
  std::uint64_t torn_writes = 0;
  std::string violations;
};

// One wired seed, one commuting cellular leech over two cells. The leech naps
// at t=25 for 10 s, is killed at t=60, restarts at t=70, and then has until
// t=300 to finish the 4 MB download.
LifeOutcome live_one_life(double torn_write_prob) {
  auto meta = bt::Metainfo::create("e2e-resume", 4 * 1024 * 1024, 256 * 1024, "tr", 92);
  Swarm swarm{92, meta};
  trace::Recorder recorder{/*ring_capacity=*/4};
  trace::InvariantChecker checker;
  recorder.add_sink(&checker);
  swarm.world.sim.set_tracer(&recorder);

  net::CellularTopology& cells = swarm.world.enable_cells();
  cells.add_cell();
  cells.add_cell();

  swarm.add_wired("seed0", /*is_seed=*/true);

  bt::ClientConfig mc;
  mc.listen_port = 6882;
  mc.retain_peer_id = true;
  mc.role_reversal = true;
  mc.resume_checkpoint_interval = sim::seconds(5.0);
  auto& mob = swarm.add_cellular("mob", /*is_seed=*/false, mc, /*cell_id=*/0);

  net::RoamingModel roaming{cells};
  roaming.commute({"mob"}, /*interval_s=*/35.0, /*horizon_s=*/300.0, /*seed=*/92);
  roaming.add_suspend(/*at_s=*/25.0, "mob", /*duration_s=*/10.0);
  roaming.on_power = [&mob](const std::string& node, bool suspend) {
    if (node != "mob" || mob.client == nullptr) return;
    if (suspend) {
      mob.client->suspend();
    } else {
      mob.client->resume();
    }
  };

  sim::StorageParams params;
  params.torn_write_prob = torn_write_prob;
  sim::StableStorage storage{swarm.world.sim, params, "mob"};
  bt::ResumeStore store{storage, meta.info_hash};
  mob->attach_resume(store);

  roaming.start();
  swarm.start_all();
  swarm.run_for(60.0);

  std::vector<bool> verified(static_cast<std::size_t>(meta.piece_count()));
  for (int p = 0; p < meta.piece_count(); ++p) {
    verified[static_cast<std::size_t>(p)] = mob->store().has_piece(p);
  }
  LifeOutcome out;
  out.suspends = mob->stats().suspends;  // the nap belongs to this incarnation
  mob->stop();
  mob.client.reset();
  swarm.run_for(10.0);
  mob.client = std::make_unique<bt::Client>(*mob.host->node, *mob.host->stack,
                                            swarm.tracker, swarm.meta, mc,
                                            /*is_seed=*/false);
  mob->attach_resume(store);
  mob->start();

  for (int p = 0; p < meta.piece_count(); ++p) {
    if (mob->store().has_piece(p) && !verified[static_cast<std::size_t>(p)]) {
      out.subset_ok = false;
    }
  }
  swarm.run_for(230.0);
  swarm.world.sim.set_tracer(nullptr);

  out.completed = mob->complete();
  out.restored = mob->stats().resume_restored_pieces;
  out.cold_restarts = mob->stats().cold_restarts;
  out.torn_writes = storage.stats().torn_writes;
  out.violations = violation_digest(checker);
  return out;
}

TEST(ResumeE2E, JournaledLifeRestoresAndCompletesWithInvariantsClean) {
  const LifeOutcome life = live_one_life(/*torn_write_prob=*/0.0);
  EXPECT_TRUE(life.violations.empty()) << life.violations;
  EXPECT_GE(life.suspends, 1u);          // the nap actually happened
  EXPECT_GT(life.restored, 0u);          // the restart came back warm
  EXPECT_EQ(life.cold_restarts, 0u);
  EXPECT_TRUE(life.subset_ok);
  EXPECT_TRUE(life.completed);
}

TEST(ResumeE2E, TornWriteLifeDegradesButNeverInventsPieces) {
  const LifeOutcome life = live_one_life(/*torn_write_prob=*/0.85);
  EXPECT_TRUE(life.violations.empty()) << life.violations;
  EXPECT_GE(life.suspends, 1u);
  EXPECT_GT(life.torn_writes, 0u);       // the storage really did tear commits
  // A torn journal may still yield an older intact snapshot or degrade to a
  // cold start — both are legal. What is never legal is resurrecting a piece
  // the first incarnation did not verify.
  EXPECT_TRUE(life.subset_ok);
  EXPECT_TRUE(life.completed);
}

}  // namespace
}  // namespace wp2p
