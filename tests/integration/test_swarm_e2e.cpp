// End-to-end swarm scenarios: whole-stack downloads through tracker, choker,
// piece store, TCP, and the access links — the repo's highest-level tests.
#include <gtest/gtest.h>

#include "exp/faults.hpp"
#include "exp/swarm.hpp"

namespace wp2p {
namespace {

using exp::Swarm;

// A seed and three leechers all reach a full, verified copy.
TEST(SwarmE2E, SeedAndThreeLeechersCompleteAFile) {
  auto meta = bt::Metainfo::create("e2e", 3 * 1024 * 1024, 256 * 1024, "tr", 77);
  Swarm swarm{77, meta};
  bt::ClientConfig config;
  config.announce_interval = sim::seconds(30.0);
  swarm.add_wired("seed", true, config);
  for (int i = 0; i < 3; ++i) {
    bt::ClientConfig lc = config;
    lc.listen_port = static_cast<std::uint16_t>(6882 + i);
    swarm.add_wireless("leech" + std::to_string(i), false, lc);
  }
  swarm.start_all();

  for (std::size_t i = 1; i < swarm.members.size(); ++i) {
    ASSERT_TRUE(swarm.run_until_complete(swarm.members[i], 600.0)) << "leech " << i;
    EXPECT_TRUE(swarm.members[i].client->store().bitfield().all());
    EXPECT_EQ(swarm.members[i].client->store().bytes_completed(), meta.total_size);
  }
}

// A wP2P leecher survives a mid-download hand-off: identity (peer id) is
// retained across the re-initiation and the download still completes.
TEST(SwarmE2E, Wp2pLeecherSurvivesMidDownloadHandoff) {
  auto meta = bt::Metainfo::create("e2e-ho", 4 * 1024 * 1024, 256 * 1024, "tr", 78);
  Swarm swarm{78, meta};
  bt::ClientConfig config;
  config.announce_interval = sim::seconds(30.0);
  auto& source = swarm.add_wired("seed", true, config);
  source->set_upload_limit(util::Rate::kBps(120.0));  // stretch the download

  bt::ClientConfig mc = config;
  mc.listen_port = 6882;
  mc.retain_peer_id = true;  // wP2P incentive-aware identity retention
  mc.role_reversal = true;
  auto& mobile = swarm.add_wireless("mobile", false, mc);
  swarm.start_all();

  // Let the download get going, then hand off mid-transfer.
  swarm.run_for(20.0);
  const bt::PeerId id_before = mobile->peer_id();
  ASSERT_GT(mobile->stats().payload_downloaded, 0);
  ASSERT_FALSE(mobile->complete());
  mobile.host->node->change_address();

  ASSERT_TRUE(swarm.run_until_complete(mobile, 600.0));
  EXPECT_EQ(mobile->peer_id(), id_before);  // identity survived the hand-off
  EXPECT_GE(mobile->stats().task_reinitiations, 1u);
  EXPECT_EQ(mobile->store().bytes_completed(), meta.total_size);
}

// A default (non-wP2P) leecher also completes after a hand-off — slower, via
// tracker rediscovery — and regenerates its peer id.
TEST(SwarmE2E, DefaultLeecherRecoversViaTrackerAfterHandoff) {
  auto meta = bt::Metainfo::create("e2e-def", 3 * 1024 * 1024, 256 * 1024, "tr", 79);
  Swarm swarm{79, meta};
  bt::ClientConfig config;
  config.announce_interval = sim::seconds(20.0);
  auto& source = swarm.add_wired("seed", true, config);
  source->set_upload_limit(util::Rate::kBps(120.0));

  bt::ClientConfig mc = config;
  mc.listen_port = 6882;  // defaults: retain_peer_id = role_reversal = false
  auto& mobile = swarm.add_wireless("mobile", false, mc);
  swarm.start_all();

  swarm.run_for(20.0);
  const bt::PeerId id_before = mobile->peer_id();
  ASSERT_FALSE(mobile->complete());
  mobile.host->node->change_address();

  ASSERT_TRUE(swarm.run_until_complete(mobile, 600.0));
  EXPECT_NE(mobile->peer_id(), id_before);  // default client regenerates
  EXPECT_GE(mobile->stats().task_reinitiations, 1u);
}

// A swarm completes through an injected mid-run fault barrage (flap + BER +
// tracker outage) with conservation intact.
TEST(SwarmE2E, SwarmCompletesThroughFaultBarrage) {
  auto meta = bt::Metainfo::create("e2e-faults", 2 * 1024 * 1024, 256 * 1024, "tr", 80);
  Swarm swarm{80, meta};
  bt::ClientConfig config;
  config.announce_interval = sim::seconds(20.0);
  auto& source = swarm.add_wired("seed", true, config);
  source->set_upload_limit(util::Rate::kBps(60.0));  // stretch across the faults
  bt::ClientConfig lc = config;
  lc.listen_port = 6882;
  auto& leech = swarm.add_wireless("mobile", false, lc);

  sim::FaultPlan plan;
  plan.actions = sim::FaultPlan::parse(
                     "fault link-flap at=10 dur=8 mag=0 target=mobile\n"
                     "fault ber at=25 dur=20 mag=1e-5 target=mobile\n"
                     "fault tracker-outage at=30 dur=30 mag=0 target=\n")
                     .actions;
  ASSERT_EQ(plan.actions.size(), 3u);
  auto injector = exp::bind_faults(swarm, plan);
  swarm.start_all();

  ASSERT_TRUE(swarm.run_until_complete(leech, 900.0));
  swarm.run_for(90.0);  // drain any fault still scheduled or active
  EXPECT_EQ(injector->stats().applied, 3u);
  EXPECT_EQ(injector->active_faults(), 0);

  std::int64_t uploaded = 0, downloaded = 0;
  for (auto& member : swarm.members) {
    uploaded += member.client->stats().payload_uploaded;
    downloaded += member.client->stats().payload_downloaded;
  }
  EXPECT_GE(uploaded, downloaded);
}

// A peer-crash window stops the client process and restarts it; the piece
// store survives (disk), and the swarm still completes.
TEST(SwarmE2E, PeerCrashRestartKeepsStoreAndCompletes) {
  auto meta = bt::Metainfo::create("e2e-crash", 2 * 1024 * 1024, 256 * 1024, "tr", 81);
  Swarm swarm{81, meta};
  bt::ClientConfig config;
  config.announce_interval = sim::seconds(15.0);
  auto& source = swarm.add_wired("seed", true, config);
  source->set_upload_limit(util::Rate::kBps(100.0));
  bt::ClientConfig lc = config;
  lc.listen_port = 6882;
  auto& leech = swarm.add_wired("victim", false, lc);

  sim::FaultPlan plan;
  plan.actions = sim::FaultPlan::parse("fault peer-crash at=15 dur=20 mag=0 target=victim\n")
                     .actions;
  auto injector = exp::bind_faults(swarm, plan);
  swarm.start_all();

  swarm.run_for(16.0);
  EXPECT_FALSE(leech->running());  // crashed
  const std::int64_t bytes_at_crash = leech->store().bytes_completed();
  EXPECT_GT(bytes_at_crash, 0);

  swarm.run_for(25.0);  // past the restart
  EXPECT_TRUE(leech->running());
  EXPECT_GE(leech->store().bytes_completed(), bytes_at_crash);

  ASSERT_TRUE(swarm.run_until_complete(leech, 900.0));
  EXPECT_EQ(injector->stats().applied, 1u);
}

}  // namespace
}  // namespace wp2p
