// Property-style sweeps over random seeds: end-to-end invariants that must
// hold for ANY seed, exercised via parameterized gtest.
#include <gtest/gtest.h>

#include "bt/bencode.hpp"
#include "exp/faults.hpp"
#include "exp/swarm.hpp"

namespace wp2p {
namespace {

using exp::Swarm;

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

// --- TCP: reliable in-order delivery under loss + jitter -------------------------

TEST_P(SeedSweep, TcpDeliversReliablyUnderLossAndJitter) {
  exp::World world{GetParam()};
  world.net.path().loss = 0.03;
  world.net.path().jitter = sim::milliseconds(15.0);  // reordering across packets
  auto& a = world.add_wired_host("a");
  auto& b = world.add_wired_host("b");

  std::shared_ptr<tcp::Connection> server;
  std::vector<int> received;
  b.stack->listen(9000, [&](std::shared_ptr<tcp::Connection> c) {
    server = std::move(c);
    server->on_message = [&](const tcp::Connection::MessageHandle& h, std::int64_t) {
      received.push_back(*std::static_pointer_cast<const int>(h));
    };
  });
  auto client = a.stack->connect(b.endpoint(9000));

  sim::Rng rng{GetParam() * 33};
  const int messages = 200;
  std::int64_t total = 0;
  world.sim.run_until(sim::seconds(2.0));
  for (int i = 0; i < messages; ++i) {
    const std::int64_t size = rng.range(1, 40000);
    total += size;
    client->send_message(std::make_shared<int>(i), size);
  }
  world.sim.run_until(sim::seconds(300.0));

  // Every message arrives exactly once, in order, regardless of loss pattern.
  ASSERT_EQ(received.size(), static_cast<std::size_t>(messages));
  for (int i = 0; i < messages; ++i) EXPECT_EQ(received[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(server->stats().bytes_delivered, total);
}

// --- Swarm: any random swarm completes, and conservation holds -------------------

TEST_P(SeedSweep, RandomSwarmCompletesWithConservation) {
  const std::uint64_t seed = GetParam();
  sim::Rng rng{seed * 77};
  auto meta = bt::Metainfo::create("f", 2 * 1024 * 1024 + rng.range(0, 2'000'000),
                                   256 * 1024, "tr", seed);
  Swarm swarm{seed, meta};
  bt::ClientConfig config;
  config.announce_interval = sim::seconds(30.0);

  const int leeches = static_cast<int>(rng.range(1, 4));
  swarm.add_wired("seed", true, config);
  for (int i = 0; i < leeches; ++i) {
    bt::ClientConfig lc = config;
    lc.listen_port = static_cast<std::uint16_t>(6881 + i + 1);
    auto& member = swarm.add_wired("leech" + std::to_string(i), false, lc);
    member->preload(rng.uniform(0.0, 0.5));
  }
  swarm.start_all();

  for (std::size_t i = 1; i < swarm.members.size(); ++i) {
    ASSERT_TRUE(swarm.run_until_complete(swarm.members[i], 900.0))
        << "leech " << i << " did not complete (seed " << seed << ")";
    EXPECT_EQ(swarm.members[i].client->store().bytes_completed(), meta.total_size);
  }

  // Conservation: every payload byte downloaded was uploaded by someone.
  std::int64_t uploaded = 0, downloaded = 0;
  for (auto& member : swarm.members) {
    uploaded += member.client->stats().payload_uploaded;
    downloaded += member.client->stats().payload_downloaded;
  }
  // Uploads can exceed useful downloads (duplicates are dropped by the store)
  // but nothing can be downloaded that was never sent.
  EXPECT_GE(uploaded, downloaded - 0);
  // And every leech ends with a full, verified piece set.
  for (std::size_t i = 1; i < swarm.members.size(); ++i) {
    EXPECT_TRUE(swarm.members[i].client->store().bitfield().all());
  }
}

// --- Mobility: hand-offs never wedge the swarm -----------------------------------

TEST_P(SeedSweep, HandoffsNeverWedgeTheDownload) {
  const std::uint64_t seed = GetParam();
  auto meta = bt::Metainfo::create("f", 4 * 1024 * 1024, 256 * 1024, "tr", seed + 100);
  Swarm swarm{seed, meta};
  bt::ClientConfig config;
  config.announce_interval = sim::seconds(20.0);
  auto& source = swarm.add_wired("seed", true, config);
  source->set_upload_limit(util::Rate::kBps(150.0));
  bt::ClientConfig mc = config;
  mc.retain_peer_id = true;
  mc.role_reversal = true;
  auto& mobile = swarm.add_wireless("mobile", false, mc);
  swarm.start_all();

  sim::Rng rng{seed};
  // A burst of hand-offs at random times in the first minute.
  for (int i = 0; i < 5; ++i) {
    swarm.world.sim.at(sim::seconds(rng.uniform(5.0, 60.0)),
                       [&mobile] { mobile.host->node->change_address(); });
  }
  ASSERT_TRUE(swarm.run_until_complete(mobile, 900.0)) << "seed " << seed;
  EXPECT_EQ(mobile->store().bytes_completed(), meta.total_size);
}

// --- Choker: incremental sets match a from-scratch recompute ---------------------

TEST_P(SeedSweep, ChokerIncrementalSetsConsistentUnderChurn) {
  // The choker maintains interested/unchoked/pending-upload sets
  // incrementally (updated at each state edge, never rebuilt). Under rate
  // churn, connectivity blackouts (drops, timeouts, reconnect storms), and a
  // poisoning peer that gets struck and banned mid-run, the maintained sets
  // must stay identical to a from-scratch recompute over peers_.
  const std::uint64_t seed = GetParam();
  auto meta = bt::Metainfo::create("f", 6 * 1024 * 1024, 256 * 1024, "tr", seed + 500);
  Swarm swarm{seed + 500, meta};
  bt::ClientConfig config;
  config.announce_interval = sim::seconds(10.0);
  config.choke_interval = sim::seconds(5.0);  // more choke rounds per wall-second
  swarm.add_wired("seed", true, config);
  auto& venom = swarm.add_wired("venom", true, [&] {
    bt::ClientConfig c = config;
    c.listen_port = 6882;
    return c;
  }());
  const int leeches = 4;
  for (int i = 0; i < leeches; ++i) {
    bt::ClientConfig lc = config;
    lc.listen_port = static_cast<std::uint16_t>(6883 + i);
    auto& member = swarm.add_wired("leech" + std::to_string(i), false, lc);
    member->preload(0.2);
  }

  // The venom seed corrupts half its payload for a while: leeches strike and
  // ban it, exercising the ban path through the incremental sets.
  sim::FaultPlan plan;
  sim::FaultAction corrupt;
  corrupt.kind = sim::FaultKind::kCorrupt;
  corrupt.at = sim::seconds(0.5);
  corrupt.duration = sim::seconds(60.0);
  corrupt.magnitude = 0.5;
  corrupt.target = "venom";
  plan.actions.push_back(corrupt);
  auto injector = exp::bind_faults(swarm, plan);

  swarm.start_all();
  sim::Rng rng{seed * 131};
  for (int tick = 0; tick < 120; ++tick) {
    swarm.run_for(1.0);
    // Rate churn: re-rank somebody every tick.
    auto& victim = swarm.members[rng.below(swarm.members.size())];
    victim.client->set_upload_limit(util::Rate::kBps(rng.uniform(20.0, 400.0)));
    // Blackouts: a random leech goes dark for a couple of seconds, long
    // enough for drops and reconnect attempts to fire.
    if (tick % 11 == 7) {
      auto& dark = swarm.members[2 + rng.below(leeches)];
      dark.host->node->set_connected(false);
      swarm.world.sim.after(sim::seconds(2.0 + rng.uniform(0.0, 2.0)),
                            [&dark] { dark.host->node->set_connected(true); });
    }
    for (auto& member : swarm.members) {
      ASSERT_TRUE(member.client->incremental_sets_consistent())
          << "tick " << tick << " (seed " << seed << ")";
    }
  }
  // The poisoner was actually exercised: at least one leech struck it.
  std::uint64_t strikes = 0;
  for (auto& member : swarm.members) strikes += member.client->stats().peer_strikes;
  EXPECT_GT(strikes, 0u) << "seed " << seed;
  (void)venom;
}

// --- Bencode: fuzz round trip ------------------------------------------------------

bt::Bencode random_value(sim::Rng& rng, int depth) {
  const auto kind = depth > 2 ? rng.below(2) : rng.below(4);
  switch (kind) {
    case 0: return bt::Bencode{static_cast<std::int64_t>(rng.next_u64() >> 1) *
                               (rng.bernoulli(0.5) ? 1 : -1)};
    case 1: {
      std::string s;
      const auto len = rng.below(64);
      for (std::uint64_t i = 0; i < len; ++i) {
        s.push_back(static_cast<char>(rng.below(256)));
      }
      return bt::Bencode{std::move(s)};
    }
    case 2: {
      bt::Bencode::List list;
      const auto len = rng.below(5);
      for (std::uint64_t i = 0; i < len; ++i) list.push_back(random_value(rng, depth + 1));
      return bt::Bencode{std::move(list)};
    }
    default: {
      bt::Bencode::Dict dict;
      const auto len = rng.below(5);
      for (std::uint64_t i = 0; i < len; ++i) {
        dict["k" + std::to_string(rng.next_u64() % 1000)] = random_value(rng, depth + 1);
      }
      return bt::Bencode{std::move(dict)};
    }
  }
}

TEST_P(SeedSweep, BencodeRoundTripsRandomValues) {
  sim::Rng rng{GetParam() * 1337};
  for (int i = 0; i < 50; ++i) {
    bt::Bencode value = random_value(rng, 0);
    const std::string encoded = value.encode();
    EXPECT_EQ(bt::Bencode::decode(encoded), value);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Values(1, 2, 3, 4, 5, 6));

// --- Wireless channel conservation -------------------------------------------------

class ChannelSweep : public ::testing::TestWithParam<double> {};

TEST_P(ChannelSweep, PacketsAreDeliveredOrAccountedAsDrops) {
  sim::Simulator sim{9};
  net::Network net{sim};
  net.path().core_delay = 0;
  net::WirelessParams params;
  params.capacity = util::Rate::kBps(500.0);
  params.bit_error_rate = GetParam();
  params.mac_retries = 1;
  params.up_queue_limit = 10;
  net::Node& m = net.add_node("m");
  net::Node& f = net.add_node("f");
  m.attach(std::make_unique<net::WirelessChannel>(sim, m, net, params));
  net::WiredParams roomy;
  roomy.queue_limit = 100000;
  f.attach(std::make_unique<net::WiredLink>(sim, f, net, roomy));

  struct Sink final : net::PacketSink {
    std::uint64_t received = 0;
    void receive(const net::Packet&) override { ++received; }
  } sink;
  f.set_sink(&sink);

  auto* channel = dynamic_cast<net::WirelessChannel*>(m.access());
  const int n = 3000;
  int sent_into_queue = 0;
  // Pace sends so the queue can drain; count tail drops separately.
  for (int i = 0; i < n; ++i) {
    sim.at(sim::milliseconds(i * 2.0), [&, i] {
      net::Packet p;
      p.src = {m.address(), 1};
      p.dst = {f.address(), 2};
      p.size = 1500;
      m.send(std::move(p));
      ++sent_into_queue;
    });
  }
  sim.run();
  const auto& stats = channel->stats();
  // Conservation: every packet either arrived, died to residual bit errors,
  // or was tail-dropped at the queue.
  EXPECT_EQ(sink.received + stats.up_error_drops + stats.up_queue_drops,
            static_cast<std::uint64_t>(n));
}

INSTANTIATE_TEST_SUITE_P(Bers, ChannelSweep, ::testing::Values(0.0, 1e-6, 1e-5, 3e-5));

}  // namespace
}  // namespace wp2p
