// Regression corpus replay and golden-trace comparison.
//
// tests/integration/corpus/*.scenario are minimized scenario specs promoted
// from fuzzer failures (see TESTING.md). Each must replay clean against the
// current code: the bug they minimized is fixed, and stays fixed.
//
// The golden-trace test pins the full event stream of one canonical fig-2
// style run (wired seed -> wireless leecher). Regenerate deliberately with
//   WP2P_UPDATE_GOLDEN=1 ./tests/test_corpus --gtest_filter='*GoldenTrace*'
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "exp/scenario_fuzzer.hpp"

namespace wp2p {
namespace {

namespace fs = std::filesystem;

fs::path corpus_dir() {
  return fs::path{WP2P_SOURCE_DIR} / "tests" / "integration" / "corpus";
}

std::string slurp(const fs::path& path) {
  std::ifstream in{path};
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(Corpus, EveryScenarioReplaysClean) {
  ASSERT_TRUE(fs::exists(corpus_dir())) << corpus_dir();
  std::vector<fs::path> specs;
  for (const auto& entry : fs::directory_iterator(corpus_dir())) {
    if (entry.path().extension() == ".scenario") specs.push_back(entry.path());
  }
  std::sort(specs.begin(), specs.end());
  ASSERT_FALSE(specs.empty()) << "corpus is empty";

  exp::ScenarioFuzzer fuzzer;
  for (const fs::path& path : specs) {
    const auto scenario = exp::Scenario::parse(slurp(path));
    ASSERT_TRUE(scenario.has_value()) << "malformed spec: " << path;
    const exp::FuzzVerdict verdict = fuzzer.run(*scenario);
    EXPECT_TRUE(verdict.passed) << path.filename() << ": " << verdict.summary();
  }
}

// The corpus entries minimized from the cwnd-floor self-test must still
// reproduce the failure when the floor is disabled — proof that the corpus
// exercises the code path it was minimized from, not a vacuous pass.
TEST(Corpus, CwndFloorEntriesStillBiteWithFloorDisabled) {
  exp::ScenarioFuzzer fuzzer;
  int checked = 0;
  for (const auto& entry : fs::directory_iterator(corpus_dir())) {
    if (entry.path().extension() != ".scenario") continue;
    if (entry.path().filename().string().rfind("cwnd-floor", 0) != 0) continue;
    auto scenario = exp::Scenario::parse(slurp(entry.path()));
    ASSERT_TRUE(scenario.has_value()) << entry.path();
    scenario->unsafe_no_cwnd_floor = true;
    const exp::FuzzVerdict verdict = fuzzer.run(*scenario);
    EXPECT_FALSE(verdict.passed) << entry.path().filename();
    ASSERT_FALSE(verdict.violations.empty()) << entry.path().filename();
    EXPECT_EQ(verdict.violations.front().rule, "tcp-cwnd-floor");
    ++checked;
  }
  EXPECT_GE(checked, 1) << "no cwnd-floor-*.scenario entries in the corpus";
}

// Likewise the corruption entries: with banning disabled, the same scenario
// must trip the peer-ban invariant — the poisoner really is poisoning, and
// only the defense layer makes the clean replay above possible.
TEST(Corpus, CorruptEntriesStillBiteWithBanDisabled) {
  exp::ScenarioFuzzer fuzzer;
  int checked = 0;
  for (const auto& entry : fs::directory_iterator(corpus_dir())) {
    if (entry.path().extension() != ".scenario") continue;
    if (entry.path().filename().string().rfind("corrupt-", 0) != 0) continue;
    auto scenario = exp::Scenario::parse(slurp(entry.path()));
    ASSERT_TRUE(scenario.has_value()) << entry.path();
    scenario->unsafe_no_ban = true;
    const exp::FuzzVerdict verdict = fuzzer.run(*scenario);
    EXPECT_FALSE(verdict.passed) << entry.path().filename();
    bool peer_ban_rule = false;
    for (const auto& v : verdict.violations) peer_ban_rule |= v.rule == "peer-ban";
    EXPECT_TRUE(peer_ban_rule) << entry.path().filename();
    ++checked;
  }
  EXPECT_GE(checked, 1) << "no corrupt-*.scenario entries in the corpus";
}

// And the adversary entries: with the enforcement actions disabled the same
// scenarios must trip an enforce-* invariant rule — the adversary really is
// attacking, and only the enforcement layer makes the clean replay above
// possible (detections still count and trace under unsafe_no_enforcement,
// so the evidence counts run past the limit the events advertise).
TEST(Corpus, AdversaryEntriesStillBiteWithEnforcementDisabled) {
  exp::ScenarioFuzzer fuzzer;
  int checked = 0;
  for (const auto& entry : fs::directory_iterator(corpus_dir())) {
    if (entry.path().extension() != ".scenario") continue;
    if (entry.path().filename().string().rfind("adv-", 0) != 0) continue;
    auto scenario = exp::Scenario::parse(slurp(entry.path()));
    ASSERT_TRUE(scenario.has_value()) << entry.path();
    scenario->unsafe_no_enforcement = true;
    const exp::FuzzVerdict verdict = fuzzer.run(*scenario);
    EXPECT_FALSE(verdict.passed) << entry.path().filename();
    bool enforce_rule = false;
    for (const auto& v : verdict.violations) {
      enforce_rule |= v.rule.rfind("enforce-", 0) == 0;
    }
    EXPECT_TRUE(enforce_rule) << entry.path().filename();
    ++checked;
  }
  EXPECT_GE(checked, 2) << "no adv-*.scenario entries in the corpus";
}

// --- Golden trace -------------------------------------------------------------

class LineSink final : public trace::Sink {
 public:
  void on_event(const trace::TraceEvent& ev) override {
    lines.push_back(trace::to_jsonl(ev));
  }
  std::vector<std::string> lines;
};

// One canonical run: a wired seed serving a wireless leecher — the paper's
// fig-2 shape — traced end to end.
std::vector<std::string> golden_run() {
  trace::Recorder recorder{/*ring_capacity=*/4};
  LineSink sink;
  recorder.add_sink(&sink);

  auto meta = bt::Metainfo::create("golden", 1 << 20, 256 * 1024, "tr", 42);
  exp::Swarm swarm{42, meta};
  swarm.world.sim.set_tracer(&recorder);
  recorder.emit(trace::event(trace::Component::kSim, trace::Kind::kScenario)
                    .on("golden/fig2"));

  bt::ClientConfig config;
  config.announce_interval = sim::seconds(20.0);
  swarm.add_wired("seed", true, config);
  bt::ClientConfig lc = config;
  lc.listen_port = 6882;
  swarm.add_wireless("mobile", false, lc);
  swarm.start_all();
  swarm.run_for(30.0);

  swarm.world.sim.set_tracer(nullptr);
  return sink.lines;
}

TEST(Corpus, GoldenTraceMatchesCanonicalRun) {
  const fs::path golden_path = corpus_dir() / "golden_fig2.jsonl";
  const std::vector<std::string> lines = golden_run();
  ASSERT_GT(lines.size(), 10u) << "canonical run produced almost no events";

  if (std::getenv("WP2P_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out{golden_path};
    for (const std::string& line : lines) out << line << '\n';
    GTEST_SKIP() << "golden trace regenerated: " << golden_path;
  }

  ASSERT_TRUE(fs::exists(golden_path))
      << "missing golden file; regenerate with WP2P_UPDATE_GOLDEN=1";
  std::ifstream in{golden_path};
  std::vector<std::string> expected;
  for (std::string line; std::getline(in, line);) expected.push_back(line);

  ASSERT_EQ(lines.size(), expected.size())
      << "event count diverged from golden trace";
  for (std::size_t i = 0; i < lines.size(); ++i) {
    ASSERT_EQ(lines[i], expected[i]) << "first divergence at line " << i + 1;
  }

  // Every golden line parses back into an event (format round trip).
  const auto file = trace::read_jsonl(golden_path.string());
  ASSERT_TRUE(file.has_value());
  EXPECT_EQ(file->malformed, 0u);
  EXPECT_EQ(file->events.size(), expected.size());
}

// The same canonical run, but with the mobile attached through a ONE-cell
// CellularTopology instead of the flat WirelessChannel. A single cell must be
// a drop-in: the AP-side queueing, ARQ schedule, and every delivery land at
// the same instants, so the trace matches the golden file byte-for-byte once
// the cell-bookkeeping events (component "cell": attach/serve/deliver) are
// filtered out — those are pure annotation on top of identical behaviour.
std::vector<std::string> golden_run_one_cell() {
  trace::Recorder recorder{/*ring_capacity=*/4};
  LineSink sink;
  recorder.add_sink(&sink);

  auto meta = bt::Metainfo::create("golden", 1 << 20, 256 * 1024, "tr", 42);
  exp::Swarm swarm{42, meta};
  swarm.world.sim.set_tracer(&recorder);
  recorder.emit(trace::event(trace::Component::kSim, trace::Kind::kScenario)
                    .on("golden/fig2"));

  bt::ClientConfig config;
  config.announce_interval = sim::seconds(20.0);
  swarm.add_wired("seed", true, config);
  bt::ClientConfig lc = config;
  lc.listen_port = 6882;
  swarm.world.enable_cells();
  swarm.world.cells->add_cell();
  swarm.add_cellular("mobile", false, lc, 0);
  swarm.start_all();
  swarm.run_for(30.0);

  swarm.world.sim.set_tracer(nullptr);
  return sink.lines;
}

TEST(Corpus, OneCellTopologyReproducesGoldenTrace) {
  const fs::path golden_path = corpus_dir() / "golden_fig2.jsonl";
  ASSERT_TRUE(fs::exists(golden_path))
      << "missing golden file; regenerate with WP2P_UPDATE_GOLDEN=1";

  std::vector<std::string> lines = golden_run_one_cell();
  std::vector<std::string> filtered;
  for (std::string& line : lines) {
    if (line.find("\"c\":\"cell\"") == std::string::npos) {
      filtered.push_back(std::move(line));
    }
  }
  // The cellular run really went through the cell path (sanity, not vacuous).
  ASSERT_LT(filtered.size(), lines.size()) << "run emitted no cell events";

  std::ifstream in{golden_path};
  std::vector<std::string> expected;
  for (std::string line; std::getline(in, line);) expected.push_back(line);

  ASSERT_EQ(filtered.size(), expected.size())
      << "event count diverged from golden trace";
  for (std::size_t i = 0; i < filtered.size(); ++i) {
    ASSERT_EQ(filtered[i], expected[i]) << "first divergence at line " << i + 1;
  }
}

}  // namespace
}  // namespace wp2p
