// exp::ScenarioFuzzer: determinism, the broken-invariant self-test, and
// shrinking convergence.
#include <gtest/gtest.h>

#include "exp/parallel_runner.hpp"
#include "exp/scenario_fuzzer.hpp"

namespace wp2p {
namespace {

using exp::Scenario;
using exp::ScenarioFuzzer;

// Small limits keep fuzz tests fast; the nightly CI job uses the defaults.
exp::FuzzLimits quick_limits() {
  exp::FuzzLimits limits;
  limits.min_peers = 2;
  limits.max_peers = 4;
  limits.min_duration_s = 60.0;
  limits.max_duration_s = 120.0;
  limits.min_file = 512 * 1024;
  limits.max_file = 1024 * 1024;
  limits.max_faults = 4;
  return limits;
}

TEST(ScenarioFuzzer, GenerateIsDeterministicPerSeed) {
  ScenarioFuzzer fuzzer{quick_limits()};
  const Scenario a = fuzzer.generate(11);
  const Scenario b = fuzzer.generate(11);
  EXPECT_EQ(a.serialize(), b.serialize());
  const Scenario c = fuzzer.generate(12);
  EXPECT_NE(a.serialize(), c.serialize());
  // Structural guarantees: an anchor seed exists, fault targets are members.
  ASSERT_FALSE(a.peers.empty());
  EXPECT_TRUE(a.peers[0].is_seed);
  EXPECT_FALSE(a.peers[0].wireless);
}

TEST(ScenarioFuzzer, ScenarioSpecRoundTrips) {
  ScenarioFuzzer fuzzer{quick_limits()};
  Scenario s = fuzzer.generate(21);
  s.unsafe_no_cwnd_floor = true;
  const auto parsed = Scenario::parse(s.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->serialize(), s.serialize());
  EXPECT_EQ(parsed->seed, s.seed);
  EXPECT_EQ(parsed->peers.size(), s.peers.size());
  EXPECT_EQ(parsed->faults.size(), s.faults.size());
  EXPECT_TRUE(parsed->unsafe_no_cwnd_floor);

  EXPECT_FALSE(Scenario::parse(""));                       // no header
  EXPECT_FALSE(Scenario::parse("scenario seed=1\n"));      // no peers
  EXPECT_FALSE(Scenario::parse("scenario bogus=1\n"));     // unknown key
  EXPECT_FALSE(Scenario::parse("scenario seed=1\npeer link=wired\n"));  // nameless
}

TEST(ScenarioFuzzer, BandwidthClassesGateAndRoundTrip) {
  // Gated off (the default): no seed may emit a classed peer, so legacy
  // seeds keep their exact serialization and replay byte-identically.
  ScenarioFuzzer legacy{quick_limits()};
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const Scenario s = legacy.generate(seed);
    EXPECT_EQ(s.serialize().find("class="), std::string::npos) << "seed " << seed;
    for (const auto& p : s.peers) EXPECT_EQ(p.bw_class, -1);
  }

  // Gated on: some seed draws classed wired leeches, the class stays inside
  // [0, max_classes), and the spec round-trips through parse().
  exp::FuzzLimits limits = quick_limits();
  limits.max_classes = 3;
  ScenarioFuzzer fuzzer{limits};
  bool saw_classed = false;
  for (std::uint64_t seed = 1; seed <= 40 && !saw_classed; ++seed) {
    const Scenario s = fuzzer.generate(seed);
    for (const auto& p : s.peers) {
      if (p.bw_class < 0) continue;
      saw_classed = true;
      EXPECT_LT(p.bw_class, 3);
      EXPECT_FALSE(p.wireless);  // classes shape WIRED access links
      EXPECT_FALSE(p.is_seed);
    }
    if (!saw_classed) continue;
    const auto parsed = Scenario::parse(s.serialize());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->serialize(), s.serialize());
    for (std::size_t i = 0; i < s.peers.size(); ++i) {
      EXPECT_EQ(parsed->peers[i].bw_class, s.peers[i].bw_class);
    }
  }
  EXPECT_TRUE(saw_classed) << "no seed drew a bandwidth class";

  // A handwritten classed spec parses and replays deterministically.
  const auto spec = Scenario::parse(
      "scenario seed=7 duration=60 file=524288 piece=262144 unsafe=0 noban=0 "
      "trackers=1 trpeers=50 pex=0 boot=0 failover=0\n"
      "peer name=s0 link=wired role=seed wp2p=0 preload=1\n"
      "peer name=l0 link=wired role=leech wp2p=0 preload=0 class=2\n"
      "peer name=l1 link=wired role=leech wp2p=0 preload=0 class=0\n");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->peers[1].bw_class, 2);
  const exp::FuzzVerdict v1 = fuzzer.run(*spec);
  const exp::FuzzVerdict v2 = fuzzer.run(*spec);
  EXPECT_GT(v1.events, 0u);
  EXPECT_EQ(v1.trace_hash, v2.trace_hash);
}

TEST(ScenarioFuzzer, RunIsDeterministicAcrossRepeatsAndJobs) {
  ScenarioFuzzer fuzzer{quick_limits()};
  const Scenario scenario = fuzzer.generate(31);

  const exp::FuzzVerdict v1 = fuzzer.run(scenario);
  const exp::FuzzVerdict v2 = fuzzer.run(scenario);
  EXPECT_GT(v1.events, 0u);
  EXPECT_EQ(v1.trace_hash, v2.trace_hash);
  EXPECT_EQ(v1.events, v2.events);
  EXPECT_EQ(v1.passed, v2.passed);
  EXPECT_EQ(v1.summary(), v2.summary());

  // The same 4-seed sweep on 1 worker and 4 workers: identical verdicts and
  // hashes in identical order.
  exp::ParallelRunner serial{1}, parallel{4};
  const auto r1 = fuzzer.sweep(31, 4, serial);
  const auto r4 = fuzzer.sweep(31, 4, parallel);
  ASSERT_EQ(r1.size(), r4.size());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1[i].seed, r4[i].seed);
    EXPECT_EQ(r1[i].passed, r4[i].passed);
    EXPECT_EQ(r1[i].trace_hash, r4[i].trace_hash) << "seed " << r1[i].seed;
  }
}

TEST(ScenarioFuzzer, CleanSweepPasses) {
  ScenarioFuzzer fuzzer{quick_limits()};
  exp::ParallelRunner pool{2};
  for (const auto& r : fuzzer.sweep(100, 6, pool)) {
    EXPECT_TRUE(r.passed) << "seed " << r.seed << ": " << r.first_failure;
  }
}

// The harness self-test: with TCP's cwnd floor deliberately disabled, the
// invariant checker must catch the violation, and shrinking must converge to
// a minimal scenario (tiny fault plan) that still fails.
TEST(ScenarioFuzzer, BrokenCwndFloorIsCaughtAndShrunk) {
  ScenarioFuzzer fuzzer{quick_limits()};

  // Find a failing seed; with the floor gone, RTO collapse goes below 1 MSS
  // as soon as any fault (or plain congestion) forces a timeout.
  std::optional<Scenario> failing;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    Scenario s = fuzzer.generate(seed);
    s.unsafe_no_cwnd_floor = true;
    const exp::FuzzVerdict v = fuzzer.run(s);
    if (!v.passed) {
      ASSERT_FALSE(v.violations.empty());
      EXPECT_EQ(v.violations.front().rule, "tcp-cwnd-floor");
      failing = std::move(s);
      break;
    }
  }
  ASSERT_TRUE(failing.has_value()) << "no seed tripped the broken floor";

  const Scenario minimal = fuzzer.shrink(*failing);
  const exp::FuzzVerdict v = fuzzer.run(minimal);
  EXPECT_FALSE(v.passed) << "shrunk scenario no longer fails";
  EXPECT_LE(minimal.faults.size(), 5u);           // acceptance bound
  EXPECT_LE(minimal.peers.size(), failing->peers.size());
  EXPECT_LE(minimal.duration_s, failing->duration_s);
  EXPECT_LE(minimal.file_size, failing->file_size);
  // The minimized spec replays from its serialization alone.
  const auto replayed = Scenario::parse(minimal.serialize());
  ASSERT_TRUE(replayed.has_value());
  EXPECT_FALSE(fuzzer.run(*replayed).passed);
}

// A hand-built poisoning scenario: a clean seed, a seed whose egress payload
// is corrupted in flight, and one leech. The corruption-defense layer must
// hold the invariants with banning on — and visibly fail with it off.
exp::Scenario poison_scenario() {
  exp::Scenario s;
  s.seed = 90;
  s.duration_s = 90.0;
  s.file_size = 1 << 20;
  s.piece_size = 256 * 1024;
  exp::ScenarioPeer clean, venom, leech;
  clean.name = "p0";
  clean.is_seed = true;
  venom.name = "venom";
  venom.is_seed = true;
  leech.name = "leech";
  s.peers = {clean, venom, leech};
  sim::FaultAction corrupt;
  corrupt.kind = sim::FaultKind::kCorrupt;
  corrupt.at = sim::seconds(0.5);
  corrupt.duration = sim::seconds(85.0);
  corrupt.magnitude = 0.5;
  corrupt.target = "venom";
  s.faults.actions.push_back(corrupt);
  return s;
}

TEST(ScenarioFuzzer, CorruptionDefenseHoldsInvariantsAndNoBanTripsThem) {
  ScenarioFuzzer fuzzer{quick_limits()};
  exp::Scenario s = poison_scenario();

  // Corrupt faults and the noban switch survive the text round-trip.
  const auto parsed = Scenario::parse(s.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->serialize(), s.serialize());

  const exp::FuzzVerdict defended = fuzzer.run(s);
  EXPECT_TRUE(defended.passed) << defended.summary();
  EXPECT_GT(defended.corrupt_pieces, 0u);
  EXPECT_GE(defended.peers_banned, 1u);
  EXPECT_GT(defended.wasted_bytes, 0);

  s.unsafe_no_ban = true;
  const exp::FuzzVerdict exposed = fuzzer.run(s);
  EXPECT_FALSE(exposed.passed);
  EXPECT_EQ(exposed.peers_banned, 0u);
  bool peer_ban_rule = false;
  for (const auto& v : exposed.violations) peer_ban_rule |= v.rule == "peer-ban";
  EXPECT_TRUE(peer_ban_rule) << exposed.summary();
  // More bytes are wasted without the defense than with it.
  EXPECT_GT(exposed.wasted_bytes, defended.wasted_bytes);
}

TEST(ScenarioFuzzer, CorruptFaultRunsAreDeterministicAcrossJobs) {
  ScenarioFuzzer fuzzer{quick_limits()};

  // Find a generated scenario whose fault plan includes payload corruption:
  // the new fault kind must not disturb seed-determinism or job-independence.
  std::optional<std::uint64_t> corrupt_seed;
  for (std::uint64_t seed = 200; seed < 260 && !corrupt_seed; ++seed) {
    for (const auto& a : fuzzer.generate(seed).faults.actions) {
      if (a.kind == sim::FaultKind::kCorrupt) corrupt_seed = seed;
    }
  }
  ASSERT_TRUE(corrupt_seed.has_value()) << "no generated plan contained kCorrupt";

  const Scenario scenario = fuzzer.generate(*corrupt_seed);
  const exp::FuzzVerdict v1 = fuzzer.run(scenario);
  const exp::FuzzVerdict v2 = fuzzer.run(scenario);
  EXPECT_EQ(v1.trace_hash, v2.trace_hash);
  EXPECT_EQ(v1.wasted_bytes, v2.wasted_bytes);
  EXPECT_EQ(v1.corrupt_pieces, v2.corrupt_pieces);
  EXPECT_EQ(v1.peers_banned, v2.peers_banned);

  // The sweep covering this seed agrees verdict-for-verdict across --jobs.
  exp::ParallelRunner serial{1}, parallel{4};
  const auto r1 = fuzzer.sweep(*corrupt_seed - 1, 3, serial);
  const auto r4 = fuzzer.sweep(*corrupt_seed - 1, 3, parallel);
  ASSERT_EQ(r1.size(), r4.size());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1[i].passed, r4[i].passed) << "seed " << r1[i].seed;
    EXPECT_EQ(r1[i].trace_hash, r4[i].trace_hash) << "seed " << r1[i].seed;
  }
}

TEST(ScenarioFuzzer, MultiTrackerAndDiscoveryKeysRoundTrip) {
  ScenarioFuzzer fuzzer{quick_limits()};
  Scenario s = fuzzer.generate(51);
  s.trackers = 3;
  s.tracker_peers = 2;
  s.pex = false;
  s.bootstrap = false;
  s.failover = false;
  const std::string spec = s.serialize();
  EXPECT_NE(spec.find("trackers=3"), std::string::npos);
  const auto parsed = Scenario::parse(spec);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->serialize(), spec);
  EXPECT_EQ(parsed->trackers, 3);
  EXPECT_EQ(parsed->tracker_peers, 2);
  EXPECT_FALSE(parsed->pex);
  EXPECT_FALSE(parsed->bootstrap);
  EXPECT_FALSE(parsed->failover);

  // A pre-discovery spec (no tracker keys) still parses, with the defaults.
  const auto legacy = Scenario::parse(
      "scenario seed=5 duration=60 file=524288 piece=262144\n"
      "peer name=p0 link=wired role=seed\n"
      "peer name=p1 link=wired\n");
  ASSERT_TRUE(legacy.has_value());
  EXPECT_EQ(legacy->trackers, 1);
  EXPECT_TRUE(legacy->pex);
  EXPECT_TRUE(legacy->bootstrap);
  EXPECT_TRUE(legacy->failover);
}

TEST(ScenarioFuzzer, GeneratesMultiTrackerPlansThatRunDeterministically) {
  ScenarioFuzzer fuzzer{quick_limits()};
  // The generator dedicates a slice of its space to multi-tracker scenarios;
  // find one whose plan includes a tracker fault and pin its behaviour.
  std::optional<Scenario> multi;
  for (std::uint64_t seed = 300; seed < 400 && !multi; ++seed) {
    Scenario s = fuzzer.generate(seed);
    if (s.trackers < 2) continue;
    for (const auto& a : s.faults.actions) {
      if (a.kind == sim::FaultKind::kTrackerOutage ||
          a.kind == sim::FaultKind::kTrackerBlackout) {
        multi = std::move(s);
        break;
      }
    }
  }
  ASSERT_TRUE(multi.has_value()) << "no multi-tracker plan with a tracker fault";
  const exp::FuzzVerdict v1 = fuzzer.run(*multi);
  const exp::FuzzVerdict v2 = fuzzer.run(*multi);
  EXPECT_TRUE(v1.passed) << v1.summary();
  EXPECT_EQ(v1.trace_hash, v2.trace_hash);
  EXPECT_EQ(v1.leech_completion_s, v2.leech_completion_s);
}

// Queue-equivalence property: the calendar queue and the binary heap must
// produce identical event orders — and therefore identical FNV-1a trace
// hashes and verdicts — for every generated scenario, including cancel-heavy
// plans (hand-offs and tracker faults cancel/reschedule timers constantly).
TEST(ScenarioFuzzer, CalendarAndHeapQueuesAgreeAcrossSeeds) {
  ScenarioFuzzer fuzzer{quick_limits()};
  int fault_heavy = 0;
  for (std::uint64_t seed = 61; seed <= 66; ++seed) {
    const Scenario scenario = fuzzer.generate(seed);
    fault_heavy += scenario.faults.size() >= 2 ? 1 : 0;
    const exp::FuzzVerdict cal = fuzzer.run(scenario, sim::EventQueueKind::kCalendar);
    const exp::FuzzVerdict heap = fuzzer.run(scenario, sim::EventQueueKind::kBinaryHeap);
    EXPECT_GT(cal.events, 0u) << "seed " << seed;
    EXPECT_EQ(cal.trace_hash, heap.trace_hash) << "seed " << seed;
    EXPECT_EQ(cal.events, heap.events) << "seed " << seed;
    EXPECT_EQ(cal.passed, heap.passed) << "seed " << seed;
    EXPECT_EQ(cal.leech_completion_s, heap.leech_completion_s) << "seed " << seed;
    EXPECT_EQ(cal.faults_applied, heap.faults_applied) << "seed " << seed;
  }
  // The sweep must actually exercise the cancel-heavy regime somewhere.
  EXPECT_GT(fault_heavy, 0) << "no generated scenario carried >=2 faults";
}

TEST(ScenarioFuzzer, QueueKindsAgreeOnCancelHeavyPoisonScenario) {
  ScenarioFuzzer fuzzer{quick_limits()};
  exp::Scenario s = poison_scenario();
  const exp::FuzzVerdict cal = fuzzer.run(s, sim::EventQueueKind::kCalendar);
  const exp::FuzzVerdict heap = fuzzer.run(s, sim::EventQueueKind::kBinaryHeap);
  EXPECT_EQ(cal.trace_hash, heap.trace_hash);
  EXPECT_EQ(cal.events, heap.events);
  EXPECT_EQ(cal.wasted_bytes, heap.wasted_bytes);
  EXPECT_EQ(cal.peers_banned, heap.peers_banned);
}

TEST(ScenarioFuzzer, CellKeysRoundTripAndStayAbsentWithoutCells) {
  // Hand-built cellular scenario: every cell key survives the text round-trip.
  exp::Scenario s = poison_scenario();
  s.cells = 3;
  s.cell_sched = net::SchedulerKind::kLongestQueue;
  s.peers[2].wireless = true;
  s.peers[2].cell = 2;
  const std::string spec = s.serialize();
  EXPECT_NE(spec.find("cells=3"), std::string::npos);
  EXPECT_NE(spec.find("sched=lqf"), std::string::npos);
  EXPECT_NE(spec.find("cell=2"), std::string::npos);
  const auto parsed = Scenario::parse(spec);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->serialize(), spec);
  EXPECT_EQ(parsed->cells, 3);
  EXPECT_EQ(parsed->cell_sched, net::SchedulerKind::kLongestQueue);
  EXPECT_EQ(parsed->peers[2].cell, 2);
  // An unknown scheduler name must not parse.
  std::string bad = spec;
  bad.replace(bad.find("sched=lqf"), 9, "sched=wfq");
  EXPECT_FALSE(Scenario::parse(bad));

  // With the cell slice disabled (the default limits), generated specs never
  // carry cell keys — the legacy text form is untouched.
  ScenarioFuzzer legacy{quick_limits()};
  for (std::uint64_t seed = 500; seed < 520; ++seed) {
    const Scenario g = legacy.generate(seed);
    EXPECT_EQ(g.cells, 0) << "seed " << seed;
    EXPECT_EQ(g.serialize().find("cells="), std::string::npos) << "seed " << seed;
  }
  // And a pre-cell spec parses with the cellular layer off.
  const auto pre = Scenario::parse(
      "scenario seed=5 duration=60 file=524288 piece=262144\n"
      "peer name=p0 link=wired role=seed\n"
      "peer name=p1 link=wireless\n");
  ASSERT_TRUE(pre.has_value());
  EXPECT_EQ(pre->cells, 0);
  EXPECT_EQ(pre->peers[1].cell, -1);
}

TEST(ScenarioFuzzer, GeneratesCellularScenariosThatRunDeterministically) {
  // With the cell slice enabled, the generator must produce multi-cell
  // scenarios with cellular stations and cell-targeted faults — and their
  // runs must stay deterministic, with the cell aggregates reproducing.
  auto limits = quick_limits();
  limits.max_cells = 3;
  ScenarioFuzzer fuzzer{limits};

  std::optional<Scenario> cellular;
  for (std::uint64_t seed = 600; seed < 700 && !cellular; ++seed) {
    Scenario s = fuzzer.generate(seed);
    if (s.cells < 2) continue;
    bool has_station = false;
    for (const auto& p : s.peers) has_station |= p.cell >= 0;
    bool has_cell_fault = false;
    for (const auto& a : s.faults.actions) {
      has_cell_fault |= a.kind == sim::FaultKind::kCellOutage ||
                        a.kind == sim::FaultKind::kCellBer ||
                        a.kind == sim::FaultKind::kRoamStorm;
    }
    if (has_station && has_cell_fault) cellular = std::move(s);
  }
  ASSERT_TRUE(cellular.has_value()) << "no cellular scenario with a cell fault generated";

  // The spec replays from its serialization alone.
  const auto replayed = Scenario::parse(cellular->serialize());
  ASSERT_TRUE(replayed.has_value());
  EXPECT_EQ(replayed->serialize(), cellular->serialize());

  const exp::FuzzVerdict v1 = fuzzer.run(*cellular);
  const exp::FuzzVerdict v2 = fuzzer.run(*cellular);
  EXPECT_TRUE(v1.passed) << v1.summary();
  EXPECT_GT(v1.events, 0u);
  EXPECT_EQ(v1.trace_hash, v2.trace_hash);
  EXPECT_EQ(v1.roams, v2.roams);
  EXPECT_EQ(v1.cell_outage_drops, v2.cell_outage_drops);
  EXPECT_EQ(v1.cell_handoff_drops, v2.cell_handoff_drops);
  // The text form carries ~µs timestamp precision, so a replay matches on
  // verdicts (the corpus contract), not on the exact event hash.
  const exp::FuzzVerdict vr = fuzzer.run(*replayed);
  EXPECT_EQ(vr.passed, v1.passed) << vr.summary();

  // Cell scenarios keep the calendar/heap queue equivalence.
  const exp::FuzzVerdict heap = fuzzer.run(*cellular, sim::EventQueueKind::kBinaryHeap);
  EXPECT_EQ(v1.trace_hash, heap.trace_hash);
  EXPECT_EQ(v1.roams, heap.roams);
}

TEST(ScenarioFuzzer, AdversaryKeysGateAndRoundTrip) {
  // Gated off (the default): no seed may emit an adversary peer or the noenf
  // switch, so legacy seeds keep their exact serialization.
  ScenarioFuzzer legacy{quick_limits()};
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const std::string spec = legacy.generate(seed).serialize();
    EXPECT_EQ(spec.find("adv="), std::string::npos) << "seed " << seed;
    EXPECT_EQ(spec.find("noenf="), std::string::npos) << "seed " << seed;
  }

  // Gated on: some seed draws adversaries, every drawn kind is a real one,
  // and the spec round-trips through parse().
  exp::FuzzLimits limits = quick_limits();
  limits.max_adversaries = 3;
  ScenarioFuzzer fuzzer{limits};
  bool saw_adversary = false;
  for (std::uint64_t seed = 1; seed <= 40 && !saw_adversary; ++seed) {
    const Scenario s = fuzzer.generate(seed);
    for (const auto& p : s.peers) {
      if (p.adversary.empty()) continue;
      saw_adversary = true;
      EXPECT_TRUE(bt::adversary_kind_from(p.adversary)) << p.adversary;
    }
    if (!saw_adversary) continue;
    const auto parsed = Scenario::parse(s.serialize());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->serialize(), s.serialize());
    for (std::size_t i = 0; i < s.peers.size(); ++i) {
      EXPECT_EQ(parsed->peers[i].adversary, s.peers[i].adversary);
    }
  }
  EXPECT_TRUE(saw_adversary) << "no seed drew an adversary";

  // An unknown adversary kind is a parse error, not a silent honest peer.
  EXPECT_FALSE(Scenario::parse(
      "scenario seed=1 duration=60 file=524288 piece=262144\n"
      "peer name=s0 link=wired role=seed wp2p=0 preload=1\n"
      "peer name=adv0 link=wired role=leech wp2p=0 preload=0 adv=santa\n"));
}

TEST(ScenarioFuzzer, AdversaryRunDetectsAttackAndNoEnforcementTripsRules) {
  // A handwritten flooder spec (noenf survives the round-trip too): with the
  // enforcement layer on the flood is struck and invariants hold; with it
  // off the flood runs free and the enforce-flood-cap rule fires.
  const auto parsed = Scenario::parse(
      "scenario seed=77 duration=90 file=524288 piece=262144\n"
      "peer name=s0 link=wired role=seed wp2p=0 preload=1\n"
      "peer name=l0 link=wired role=leech wp2p=0 preload=0\n"
      "peer name=adv0 link=wired role=leech wp2p=0 preload=0 adv=flooder\n");
  ASSERT_TRUE(parsed.has_value());

  ScenarioFuzzer fuzzer{quick_limits()};
  const exp::FuzzVerdict defended = fuzzer.run(*parsed);
  EXPECT_TRUE(defended.passed) << defended.summary();
  EXPECT_GT(defended.enforce_strikes, 0u);
  EXPECT_GE(defended.peers_banned, 1u);

  Scenario exposed_spec = *parsed;
  exposed_spec.unsafe_no_enforcement = true;
  const auto reparsed = Scenario::parse(exposed_spec.serialize());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_TRUE(reparsed->unsafe_no_enforcement);
  const exp::FuzzVerdict exposed = fuzzer.run(*reparsed);
  EXPECT_FALSE(exposed.passed);
  EXPECT_EQ(exposed.peers_banned, 0u);
  bool flood_rule = false;
  for (const auto& v : exposed.violations) {
    flood_rule |= v.rule == "enforce-flood-cap";
  }
  EXPECT_TRUE(flood_rule) << exposed.summary();
}

TEST(ScenarioFuzzer, SuspendKeysGateAndRoundTrip) {
  // Gated off (the default): no seed may emit the susp/store keys, so legacy
  // seeds keep their exact serialization and replay byte-identically.
  ScenarioFuzzer legacy{quick_limits()};
  for (std::uint64_t seed = 700; seed < 740; ++seed) {
    const std::string spec = legacy.generate(seed).serialize();
    EXPECT_EQ(spec.find("susp="), std::string::npos) << "seed " << seed;
    EXPECT_EQ(spec.find("store="), std::string::npos) << "seed " << seed;
  }

  // Gated on: some seed draws the suspend slice with a real storage profile,
  // the plan's vocabulary includes app-suspend faults, and the spec
  // round-trips through parse().
  exp::FuzzLimits limits = quick_limits();
  limits.max_suspends = 2;
  ScenarioFuzzer fuzzer{limits};
  bool saw_suspend_scenario = false;
  bool saw_suspend_fault = false;
  for (std::uint64_t seed = 700; seed < 780; ++seed) {
    const Scenario s = fuzzer.generate(seed);
    if (!s.suspend_lifecycle) continue;
    saw_suspend_scenario = true;
    EXPECT_TRUE(exp::valid_storage_profile(s.storage_profile)) << s.storage_profile;
    for (const auto& a : s.faults.actions) {
      saw_suspend_fault |= a.kind == sim::FaultKind::kSuspend;
    }
    const auto parsed = Scenario::parse(s.serialize());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->serialize(), s.serialize());
    EXPECT_TRUE(parsed->suspend_lifecycle);
    EXPECT_EQ(parsed->storage_profile, s.storage_profile);
    if (saw_suspend_fault) break;
  }
  EXPECT_TRUE(saw_suspend_scenario) << "no seed drew the suspend slice";
  EXPECT_TRUE(saw_suspend_fault) << "no suspend-slice plan carried a kSuspend fault";

  // An unknown storage profile is a parse error, not a silent clean disk.
  EXPECT_FALSE(Scenario::parse(
      "scenario seed=1 duration=60 file=524288 piece=262144 store=ssd\n"
      "peer name=s0 link=wired role=seed wp2p=0 preload=1\n"
      "peer name=l0 link=wired role=leech wp2p=0 preload=0\n"));
}

TEST(ScenarioFuzzer, SuspendSpecRunsDeterministicallyAndFillsVerdict) {
  // A handwritten suspend-under-torn-writes spec: the mobile leech naps for
  // 15 s over journaled storage that tears writes. The run must hold every
  // lifecycle invariant and reproduce bit-for-bit.
  const auto parsed = Scenario::parse(
      "scenario seed=88 duration=90 file=524288 piece=262144 susp=1 store=torn\n"
      "peer name=s0 link=wired role=seed wp2p=0 preload=1\n"
      "peer name=mob0 link=wireless role=leech wp2p=0 preload=0\n"
      "fault suspend at=20.000000 dur=15.000000 mag=0 target=mob0\n");
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->suspend_lifecycle);
  EXPECT_EQ(parsed->storage_profile, "torn");

  ScenarioFuzzer fuzzer{quick_limits()};
  const exp::FuzzVerdict v1 = fuzzer.run(*parsed);
  const exp::FuzzVerdict v2 = fuzzer.run(*parsed);
  EXPECT_TRUE(v1.passed) << v1.summary();
  EXPECT_EQ(v1.trace_hash, v2.trace_hash);
  EXPECT_EQ(v1.suspends, 1u);
  EXPECT_EQ(v1.resumes, 1u);
  EXPECT_GE(v1.snapshots_written, 1u);  // the suspend journals a snapshot
  EXPECT_EQ(v1.suspends, v2.suspends);
  EXPECT_EQ(v1.snapshots_written, v2.snapshots_written);
  EXPECT_EQ(v1.torn_writes, v2.torn_writes);

  // The same nap over a clean disk: identical lifecycle, no torn writes.
  Scenario clean = *parsed;
  clean.storage_profile.clear();
  const exp::FuzzVerdict vc = fuzzer.run(clean);
  EXPECT_TRUE(vc.passed) << vc.summary();
  EXPECT_EQ(vc.suspends, 1u);
  EXPECT_EQ(vc.torn_writes, 0u);
}

TEST(ScenarioFuzzer, ShrinkKeepsPassingScenarioIntact) {
  // shrink() on a passing scenario has nothing to chase: every candidate
  // passes, so the "minimized" result is the input itself.
  ScenarioFuzzer fuzzer{quick_limits()};
  const Scenario s = fuzzer.generate(41);
  ASSERT_TRUE(fuzzer.run(s).passed);
  const Scenario same = fuzzer.shrink(s, /*budget=*/20);
  EXPECT_EQ(same.serialize(), s.serialize());
}

}  // namespace
}  // namespace wp2p
