// exp::FlyweightSwarm: background peers must be real enough that a full
// bt::Client can discover them through the tracker, handshake, and complete a
// download against them — and cheap enough that thousands fit in one world.
#include <gtest/gtest.h>

#include "exp/flyweight.hpp"
#include "exp/swarm.hpp"

namespace wp2p {
namespace {

exp::FlyweightConfig quick_config() {
  exp::FlyweightConfig config;
  config.announce_interval = sim::seconds(30.0);
  config.choke_interval = sim::seconds(5.0);
  config.progress_interval = sim::seconds(5.0);
  return config;
}

TEST(FlyweightSwarm, ForegroundClientCompletesAgainstFlyweightSeeds) {
  auto meta = bt::Metainfo::create("fly", 512 * 1024, 128 * 1024, "tr", 7);
  exp::Swarm swarm{/*seed=*/7, meta};

  exp::FlyweightSwarm fly{swarm.world, swarm.tracker, meta, quick_config()};
  net::WiredParams aggregator_link;
  // The aggregator's single access link stands in for every flyweight peer's
  // own link: scale capacity with the population it carries.
  aggregator_link.up_capacity = util::Rate::mbps(400.0);
  aggregator_link.down_capacity = util::Rate::mbps(400.0);
  fly.add_host(swarm.world.add_wired_host("agg0", aggregator_link));
  fly.add_peers(12);
  fly.start();

  // One real leech under measurement; announce fast so it learns the
  // flyweight population early.
  bt::ClientConfig config;
  config.announce_interval = sim::seconds(10.0);
  exp::Swarm::Member& leech = swarm.add_wired("leech", /*is_seed=*/false, config);
  swarm.start_all();

  ASSERT_TRUE(swarm.run_until_complete(leech, /*deadline_seconds=*/180.0))
      << "foreground leech did not complete against flyweight peers";
  EXPECT_TRUE(leech.client->store().bitfield().all());
  EXPECT_GT(fly.stats().blocks_served, 0u);
  EXPECT_GT(fly.stats().sessions_accepted, 0u);
  // The tracker sees the whole population, not just the real client.
  EXPECT_GE(swarm.tracker.swarm_size(meta.info_hash), fly.peer_count());
}

TEST(FlyweightSwarm, LeechesProgressToSeedsViaProgressModel) {
  auto meta = bt::Metainfo::create("fly2", 256 * 1024, 64 * 1024, "tr", 9);
  exp::Swarm swarm{/*seed=*/9, meta};

  exp::FlyweightConfig config = quick_config();
  config.seed_fraction = 0.5;
  config.progress_per_tick = 1.0;  // deterministic grant per tick
  config.progress_interval = sim::seconds(2.0);
  exp::FlyweightSwarm fly{swarm.world, swarm.tracker, meta, config};
  fly.add_host(swarm.world.add_wired_host("agg0"));
  fly.add_peers(10);
  fly.start();

  const std::size_t seeds_before = fly.seed_count();
  swarm.run_for(60.0);
  // 4 pieces per leech at one grant per 2s tick: everyone is a seed long
  // before the minute is up, and each completion freed its private bitfield.
  EXPECT_LT(seeds_before, fly.peer_count());
  EXPECT_EQ(fly.seed_count(), fly.peer_count());
  EXPECT_GT(fly.stats().pieces_granted, 0u);
}

TEST(FlyweightSwarm, PopulationScalesAcrossHosts) {
  auto meta = bt::Metainfo::create("fly3", 256 * 1024, 128 * 1024, "tr", 11);
  exp::Swarm swarm{/*seed=*/11, meta};

  exp::FlyweightSwarm fly{swarm.world, swarm.tracker, meta, quick_config()};
  fly.add_host(swarm.world.add_wired_host("agg0"));
  fly.add_host(swarm.world.add_wired_host("agg1"));
  fly.add_peers(2000);
  fly.start();
  swarm.run_for(45.0);

  EXPECT_EQ(fly.peer_count(), 2000u);
  // Every peer registered with the tracker (null-callback announces).
  EXPECT_EQ(swarm.tracker.swarm_size(meta.info_hash), 2000u);
  // Shared wheels only: the world is not carrying thousands of live timers.
  EXPECT_LT(swarm.world.sim.queue_entries(), 100u);
}

}  // namespace
}  // namespace wp2p
