// ParallelRunner: completeness, result ordering, determinism across job
// counts, error propagation, and wall-clock accounting.
#include "exp/parallel_runner.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "exp/swarm.hpp"
#include "metrics/meters.hpp"

namespace wp2p::exp {
namespace {

TEST(ParallelRunner, RunsEveryIndexExactlyOnce) {
  ParallelRunner runner{8};
  std::vector<std::atomic<int>> counts(100);
  runner.for_each_index(100, [&](int i) { counts[static_cast<std::size_t>(i)]++; });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ParallelRunner, MapReturnsResultsInIndexOrder) {
  ParallelRunner runner{4};
  auto squares = runner.map<int>(64, [](int i) { return i * i; });
  ASSERT_EQ(squares.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(squares[static_cast<std::size_t>(i)], i * i);
}

TEST(ParallelRunner, ZeroAndNegativeCountsAreNoOps) {
  ParallelRunner runner{4};
  int calls = 0;
  runner.for_each_index(0, [&](int) { ++calls; });
  runner.for_each_index(-3, [&](int) { ++calls; });
  EXPECT_EQ(calls, 0);
  EXPECT_TRUE(runner.map<int>(0, [](int i) { return i; }).empty());
}

TEST(ParallelRunner, JobsDefaultToHardwareThreads) {
  ParallelRunner runner{0};
  EXPECT_EQ(runner.jobs(), ParallelRunner::hardware_jobs());
  runner.set_jobs(3);
  EXPECT_EQ(runner.jobs(), 3);
}

// A small but real seeded simulation: deterministic per seed, heavy enough
// that workers genuinely interleave.
double seeded_sim_metric(std::uint64_t seed) {
  sim::Simulator sim{seed};
  double acc = 0.0;
  for (int i = 0; i < 200; ++i) {
    sim.after(sim::microseconds(static_cast<std::int64_t>(sim.rng().below(1000)) + 1),
              [&] { acc += sim.rng().uniform(); });
  }
  sim.run();
  return acc;
}

TEST(ParallelRunner, OneJobAndEightJobsProduceIdenticalAggregates) {
  auto run_with = [](int jobs) {
    ParallelRunner runner{jobs};
    auto values = runner.map<double>(
        16, [](int i) { return seeded_sim_metric(1000 + static_cast<std::uint64_t>(i)); });
    metrics::RunStats stats;
    for (double v : values) stats.add(v);
    return stats;
  };
  const metrics::RunStats serial = run_with(1);
  const metrics::RunStats parallel = run_with(8);
  ASSERT_EQ(serial.count(), parallel.count());
  // Bit-identical, not just close: same seeds, same per-seed simulations, and
  // index-ordered aggregation make the result independent of interleaving.
  EXPECT_EQ(serial.values(), parallel.values());
  EXPECT_EQ(serial.mean(), parallel.mean());
  EXPECT_EQ(serial.stddev(), parallel.stddev());
}

TEST(ParallelRunner, SwarmRunsAreDeterministicAcrossJobCounts) {
  auto run_with = [](int jobs) {
    ParallelRunner runner{jobs};
    return runner.map<std::int64_t>(6, [](int i) {
      exp::Swarm swarm{500 + static_cast<std::uint64_t>(i),
                       bt::Metainfo::create("f", 2 * 1000 * 1000, 256 * 1024)};
      bt::ClientConfig config;
      config.announce_interval = sim::seconds(30.0);
      swarm.add_wired("seed", true, config);
      auto& leech = swarm.add_wired("leech", false, config);
      swarm.start_all();
      swarm.run_until_complete(leech, 300.0);
      return leech.client->stats().payload_downloaded;
    });
  };
  EXPECT_EQ(run_with(1), run_with(8));
}

TEST(ParallelRunner, FirstTaskExceptionPropagates) {
  ParallelRunner runner{4};
  EXPECT_THROW(runner.for_each_index(32,
                                     [](int i) {
                                       if (i == 17) throw std::runtime_error{"boom"};
                                     }),
               std::runtime_error);
}

TEST(ParallelRunner, ReportAccumulatesAcrossBatches) {
  ParallelRunner runner{2};
  runner.for_each_index(8, [](int) {});
  runner.for_each_index(4, [](int) {});
  const RunnerReport& report = runner.report();
  EXPECT_EQ(report.tasks, 12);
  EXPECT_EQ(report.batches, 2);
  EXPECT_GE(report.wall_seconds, 0.0);
  EXPECT_GE(report.task_seconds, 0.0);
  EXPECT_GT(report.speedup(), 0.0);
}

TEST(RunStats, MergeMatchesSerialAccumulation) {
  metrics::RunStats serial;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) serial.add(v);

  metrics::RunStats a, b, merged;
  a.add(1.0);
  a.add(2.0);
  b.add(3.0);
  b.add(4.0);
  b.add(5.0);
  merged.merge(a);
  merged.merge(b);
  EXPECT_EQ(merged.values(), serial.values());
  EXPECT_EQ(merged.mean(), serial.mean());
  EXPECT_EQ(merged.stddev(), serial.stddev());
}

}  // namespace
}  // namespace wp2p::exp
