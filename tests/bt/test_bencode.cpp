#include "bt/bencode.hpp"

#include <gtest/gtest.h>

namespace wp2p::bt {
namespace {

TEST(Bencode, EncodesIntegers) {
  EXPECT_EQ(Bencode{42}.encode(), "i42e");
  EXPECT_EQ(Bencode{-7}.encode(), "i-7e");
  EXPECT_EQ(Bencode{0}.encode(), "i0e");
}

TEST(Bencode, EncodesStrings) {
  EXPECT_EQ(Bencode{"spam"}.encode(), "4:spam");
  EXPECT_EQ(Bencode{""}.encode(), "0:");
}

TEST(Bencode, EncodesLists) {
  Bencode::List l{Bencode{"spam"}, Bencode{42}};
  EXPECT_EQ(Bencode{l}.encode(), "l4:spami42ee");
}

TEST(Bencode, EncodesDictsWithSortedKeys) {
  Bencode::Dict d;
  d["zebra"] = 1;
  d["apple"] = "x";
  EXPECT_EQ(Bencode{d}.encode(), "d5:apple1:x5:zebrai1ee");
}

TEST(Bencode, DecodesNestedStructure) {
  auto v = Bencode::decode("d4:infod6:lengthi100e4:name4:filee3:key5:valuee");
  EXPECT_TRUE(v.is_dict());
  EXPECT_EQ(v.at("info").at("length").as_int(), 100);
  EXPECT_EQ(v.at("info").at("name").as_string(), "file");
  EXPECT_EQ(v.at("key").as_string(), "value");
}

TEST(Bencode, RoundTripsArbitraryValues) {
  Bencode::Dict d;
  d["list"] = Bencode::List{1, "two", Bencode::List{3}};
  d["neg"] = -12345;
  d["str"] = std::string("with\0null", 9);
  Bencode original{d};
  EXPECT_EQ(Bencode::decode(original.encode()), original);
}

TEST(Bencode, BinaryStringsSurvive) {
  std::string binary;
  for (int i = 0; i < 256; ++i) binary.push_back(static_cast<char>(i));
  Bencode b{binary};
  EXPECT_EQ(Bencode::decode(b.encode()).as_string(), binary);
}

struct BadInput {
  const char* label;
  const char* input;
};

class BencodeRejects : public ::testing::TestWithParam<BadInput> {};

TEST_P(BencodeRejects, ThrowsOnMalformedInput) {
  EXPECT_THROW(Bencode::decode(GetParam().input), BencodeError);
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, BencodeRejects,
    ::testing::Values(
        BadInput{"empty", ""}, BadInput{"unterminated_int", "i42"},
        BadInput{"empty_int", "ie"}, BadInput{"leading_zero", "i042e"},
        BadInput{"negative_zero", "i-0e"}, BadInput{"lone_minus", "i-e"},
        BadInput{"non_digit_int", "iabce"}, BadInput{"unterminated_list", "li1e"},
        BadInput{"unterminated_dict", "d3:key"},
        BadInput{"non_string_key", "di1ei2ee"},
        BadInput{"unsorted_keys", "d1:b1:x1:a1:ye"},
        BadInput{"duplicate_keys", "d1:a1:x1:a1:ye"},
        BadInput{"short_string", "10:abc"},
        BadInput{"string_leading_zero_len", "01:a"},
        BadInput{"trailing_garbage", "i1ei2e"},
        BadInput{"unknown_token", "x"}),
    [](const auto& info) { return info.param.label; });

TEST(Bencode, RejectsHostileNestingDepth) {
  // Recursion-bomb guard: 100 nested lists blow the depth cap; a modest
  // nesting parses fine.
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += 'l';
  deep += "i1e";
  for (int i = 0; i < 100; ++i) deep += 'e';
  EXPECT_THROW(Bencode::decode(deep), BencodeError);

  std::string shallow;
  for (int i = 0; i < 10; ++i) shallow += 'l';
  shallow += "i1e";
  for (int i = 0; i < 10; ++i) shallow += 'e';
  EXPECT_NO_THROW(Bencode::decode(shallow));
}

TEST(Bencode, RejectsHugeDeclaredStringLength) {
  // Declared lengths far past the buffer must fail the remaining-bytes check
  // (never an allocation), including lengths that overflow 64 bits.
  EXPECT_THROW(Bencode::decode("4294967296:abc"), BencodeError);
  EXPECT_THROW(Bencode::decode("99999999999999999999999:abc"), BencodeError);
}

TEST(Bencode, TypeAccessorsThrowOnMismatch) {
  Bencode b{42};
  EXPECT_THROW(b.as_string(), BencodeError);
  EXPECT_THROW(b.as_list(), BencodeError);
  EXPECT_THROW(b.at("x"), BencodeError);
  EXPECT_EQ(b.as_int(), 42);
}

TEST(Bencode, ContainsChecksDictMembership) {
  auto v = Bencode::decode("d1:ai1ee");
  EXPECT_TRUE(v.contains("a"));
  EXPECT_FALSE(v.contains("b"));
  EXPECT_FALSE(Bencode{1}.contains("a"));
}

}  // namespace
}  // namespace wp2p::bt
