#include <gtest/gtest.h>

#include "bt/selector.hpp"
#include "exp/swarm.hpp"
#include "media/playability.hpp"

namespace wp2p::bt {
namespace {

struct StreamingSelectorTest : ::testing::Test {
  sim::Rng rng{23};
  std::vector<int> availability;

  SelectionContext ctx(const std::vector<int>& candidates) {
    return SelectionContext{candidates, availability, 0.0, 0, rng};
  }
};

TEST_F(StreamingSelectorTest, PicksInOrderInsideWindow) {
  availability = std::vector<int>(32, 1);
  StreamingWindowSelector sel{8};
  std::vector<int> candidates{5, 3, 9, 20};
  // Frontier = 3; window [3, 11): the lowest in-window candidate wins.
  EXPECT_EQ(sel.pick(ctx(candidates)), 3);
}

TEST_F(StreamingSelectorTest, FallsBackToRarestBeyondWindow) {
  availability = std::vector<int>(64, 5);
  availability[40] = 1;  // rare
  StreamingWindowSelector sel{4};
  // Frontier = 30, window [30,34) — but this peer offers only 40 and 50.
  // (Frontier derives from candidates; with candidates {40, 50} the frontier
  // IS 40, so 40 is in-window.) Use candidates where the window is empty:
  std::vector<int> candidates{40, 50};
  EXPECT_EQ(sel.pick(ctx(candidates)), 40);  // in-order within its own window
}

TEST_F(StreamingSelectorTest, WindowBoundsRespected) {
  availability = std::vector<int>(64, 3);
  availability[60] = 1;  // rare and outside the window
  StreamingWindowSelector sel{4};
  std::vector<int> candidates{10, 12, 60};
  // Frontier 10, window [10,14): 10 wins despite 60 being rarest.
  EXPECT_EQ(sel.pick(ctx(candidates)), 10);
}

TEST_F(StreamingSelectorTest, EndToEndKeepsPrefixAhead) {
  // A streaming-window leech should hold a much larger playable prefix than a
  // rarest-first leech at equal progress.
  auto run = [](bool streaming) {
    auto meta = Metainfo::create("media", 8 * 1024 * 1024, 256 * 1024, "tr", 24);
    exp::Swarm swarm{51, meta};
    ClientConfig config;
    config.announce_interval = sim::seconds(30.0);
    auto& seed = swarm.add_wired("seed", true, config);
    seed->set_upload_limit(util::Rate::kBps(120.0));
    auto& leech = swarm.add_wired("leech", false, config);
    if (streaming) {
      leech->set_selector(std::make_unique<StreamingWindowSelector>(4));
    }
    swarm.start_all();
    while (leech->store().completed_fraction() < 0.5 &&
           swarm.world.sim.now() < sim::minutes(30.0)) {
      swarm.run_for(1.0);
    }
    return media::PlayabilityAnalyzer::playable_fraction(leech->store());
  };
  const double windowed = run(true);
  const double rarest = run(false);
  EXPECT_GT(windowed, 0.3);
  EXPECT_GT(windowed, rarest * 2.0);
}

}  // namespace
}  // namespace wp2p::bt
