#include "bt/tracker.hpp"

#include <gtest/gtest.h>

namespace wp2p::bt {
namespace {

struct TrackerTest : ::testing::Test {
  sim::Simulator sim{5};
  Tracker tracker{sim};

  AnnounceRequest request(PeerId id, bool seed = false,
                          AnnounceEvent event = AnnounceEvent::kStarted) {
    AnnounceRequest r;
    r.info_hash = 0xabc;
    r.endpoint = {net::IpAddr{100 + static_cast<std::uint32_t>(id)}, 6881};
    r.peer_id = id;
    r.seed = seed;
    r.event = event;
    return r;
  }
};

TEST_F(TrackerTest, FirstAnnounceGetsEmptyList) {
  std::vector<TrackerPeerInfo> got;
  bool called = false;
  tracker.announce(request(1), [&](auto res) {
    EXPECT_TRUE(res.ok);
    got = std::move(res.peers);
    called = true;
  });
  sim.run();
  EXPECT_TRUE(called);
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(tracker.swarm_size(0xabc), 1u);
}

TEST_F(TrackerTest, ResponseExcludesRequester) {
  tracker.announce(request(1), nullptr);
  tracker.announce(request(2), nullptr);
  std::vector<TrackerPeerInfo> got;
  tracker.announce(request(2), [&](auto res) { got = std::move(res.peers); });
  sim.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].peer_id, 1u);
}

TEST_F(TrackerTest, ResponseDelayedByRpcLatency) {
  sim::SimTime answered_at = -1;
  tracker.announce(request(1), [&](auto) { answered_at = sim.now(); });
  sim.run();
  EXPECT_EQ(answered_at, sim::milliseconds(150.0));
}

TEST_F(TrackerTest, CompletedEventMarksSeed) {
  tracker.announce(request(1), nullptr);
  EXPECT_EQ(tracker.seed_count(0xabc), 0u);
  tracker.announce(request(1, false, AnnounceEvent::kCompleted), nullptr);
  EXPECT_EQ(tracker.seed_count(0xabc), 1u);
}

TEST_F(TrackerTest, StoppedRemovesPeer) {
  tracker.announce(request(1), nullptr);
  tracker.announce(request(2), nullptr);
  tracker.announce(request(1, false, AnnounceEvent::kStopped), nullptr);
  EXPECT_EQ(tracker.swarm_size(0xabc), 1u);
}

TEST_F(TrackerTest, ReannounceUpdatesEndpoint) {
  tracker.announce(request(1), nullptr);
  auto moved = request(1);
  moved.endpoint = {net::IpAddr{999}, 6881};
  tracker.announce(moved, nullptr);
  std::vector<TrackerPeerInfo> got;
  tracker.announce(request(2), [&](auto res) { got = std::move(res.peers); });
  sim.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].endpoint.addr, net::IpAddr{999});
  EXPECT_EQ(tracker.swarm_size(0xabc), 2u);
}

TEST_F(TrackerTest, CapsReturnedPeers) {
  TrackerConfig config;
  config.max_peers_returned = 10;
  Tracker small{sim, config};
  for (PeerId id = 1; id <= 30; ++id) small.announce(request(id), nullptr);
  std::vector<TrackerPeerInfo> got;
  small.announce(request(99), [&](auto res) { got = std::move(res.peers); });
  sim.run();
  EXPECT_EQ(got.size(), 10u);
}

TEST_F(TrackerTest, StaleEntriesExpire) {
  TrackerConfig config;
  config.peer_ttl = sim::minutes(1.0);
  Tracker t{sim, config};
  t.announce(request(1), nullptr);
  sim.run_until(sim::minutes(2.0));
  std::vector<TrackerPeerInfo> got{TrackerPeerInfo{}};
  t.announce(request(2), [&](auto res) { got = std::move(res.peers); });
  sim.run();
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(t.swarm_size(0xabc), 1u);  // only the fresh announcer remains
}

TEST_F(TrackerTest, UnreachableTrackerReportsFailure) {
  tracker.set_reachable(false);
  bool called = false;
  sim::SimTime failed_at = -1;
  tracker.announce(request(1), [&](auto res) {
    EXPECT_FALSE(res.ok);
    EXPECT_TRUE(res.peers.empty());
    failed_at = sim.now();
    called = true;
  });
  sim.run();
  // The callback fires exactly once, after the failure timeout — the announce
  // is never silently swallowed.
  EXPECT_TRUE(called);
  EXPECT_EQ(failed_at, sim::seconds(3.0));
  EXPECT_EQ(tracker.swarm_size(0xabc), 0u);  // no state registered
  EXPECT_EQ(tracker.dropped_announces(), 1u);
  EXPECT_EQ(tracker.stats().dropped_announces, 1u);
  EXPECT_EQ(tracker.stats().announces, 0u);
}

TEST_F(TrackerTest, AnnounceSucceedsOnceReachableAgain) {
  tracker.set_reachable(false);
  tracker.announce(request(1), nullptr);  // dropped; nullptr callback is fine
  sim.run();
  tracker.set_reachable(true);
  bool ok = false;
  tracker.announce(request(1), [&](auto res) { ok = res.ok; });
  sim.run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(tracker.swarm_size(0xabc), 1u);
  EXPECT_EQ(tracker.stats().dropped_announces, 1u);
  EXPECT_EQ(tracker.stats().announces, 1u);
}

TEST_F(TrackerTest, SwarmsAreIndependent) {
  auto r1 = request(1);
  auto r2 = request(2);
  r2.info_hash = 0xdef;
  tracker.announce(r1, nullptr);
  tracker.announce(r2, nullptr);
  EXPECT_EQ(tracker.swarm_size(0xabc), 1u);
  EXPECT_EQ(tracker.swarm_size(0xdef), 1u);
  std::vector<TrackerPeerInfo> got{TrackerPeerInfo{}};
  tracker.announce(request(3), [&](auto res) { got = std::move(res.peers); });
  sim.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].peer_id, 1u);
}

}  // namespace
}  // namespace wp2p::bt
