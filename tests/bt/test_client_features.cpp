// Client robustness features: end-game duplication, snub handling,
// keep-alive / idle-timeout housekeeping, and disconnection recovery.
#include <gtest/gtest.h>

#include "exp/swarm.hpp"

namespace wp2p::bt {
namespace {

using exp::Swarm;

Metainfo small_file(std::int64_t size = 2 * 1024 * 1024) {
  return Metainfo::create("testfile", size, 256 * 1024, "tracker", 21);
}

ClientConfig fast_config(std::uint16_t port = 6881) {
  ClientConfig c;
  c.listen_port = port;
  c.announce_interval = sim::seconds(30.0);
  return c;
}

TEST(ClientFeatures, EndgameFinishesDespiteStalledSeed) {
  // Two seeds: one healthy, one that stalls mid-transfer (disconnected).
  // Without end-game + request timeouts the blocks outstanding at the dead
  // seed would strand the download for the full request_timeout; end-game
  // re-requests stragglers from the healthy seed as soon as the tail is
  // reached.
  Swarm swarm{31, small_file(4 * 1024 * 1024)};
  auto config = fast_config();
  config.request_timeout = sim::seconds(30.0);
  auto& healthy = swarm.add_wired("healthy", true, config);
  healthy->set_upload_limit(util::Rate::kBps(400.0));
  auto& flaky = swarm.add_wired("flaky", true, fast_config(6882));
  flaky->set_upload_limit(util::Rate::kBps(400.0));
  auto& leech = swarm.add_wired("leech", false, config);
  swarm.start_all();
  // Let the transfer get going, then silence the flaky seed.
  swarm.run_for(4.0);
  flaky.host->node->set_connected(false);
  ASSERT_TRUE(swarm.run_until_complete(leech, 300.0));
}

TEST(ClientFeatures, EndgameCancelsDuplicateRequests) {
  // With two full seeds and a tiny file, end-game duplicates the tail blocks
  // to both; whichever loses the race gets a Cancel, so no duplicate blocks
  // are double-counted.
  Swarm swarm{32, small_file(512 * 1024)};
  auto config = fast_config();
  config.endgame_block_threshold = 64;  // whole file fits: end-game from the start
  swarm.add_wired("s1", true, fast_config());
  swarm.add_wired("s2", true, fast_config(6882));
  auto& leech = swarm.add_wired("leech", false, config);
  swarm.start_all();
  ASSERT_TRUE(swarm.run_until_complete(leech, 120.0));
  // Duplicates may arrive but must not inflate the store.
  EXPECT_EQ(leech->store().bytes_completed(), swarm.meta.total_size);
}

TEST(ClientFeatures, EndgameDisabledStillCompletes) {
  Swarm swarm{33, small_file()};
  auto config = fast_config();
  config.endgame_block_threshold = 0;
  swarm.add_wired("seed", true, fast_config());
  auto& leech = swarm.add_wired("leech", false, config);
  swarm.start_all();
  ASSERT_TRUE(swarm.run_until_complete(leech, 300.0));
}

TEST(ClientFeatures, SnubbedPeerLosesReciprocation) {
  // l1 uploads to l2 but the reverse direction dies (l2's node drops all
  // traffic): l1 requeues its requests, marks l2 snubbed, and the next choke
  // round takes the slot away.
  Swarm swarm{34, small_file(16 * 1024 * 1024)};
  auto config = fast_config();
  config.request_timeout = sim::seconds(20.0);
  config.upload_limit = util::Rate::kBps(50.0);  // keep the exchange mid-flight
  auto config2 = fast_config(6882);
  config2.upload_limit = util::Rate::kBps(50.0);
  auto& l1 = swarm.add_wired("l1", false, config);
  auto& l2 = swarm.add_wired("l2", false, config2);
  const int n = swarm.meta.piece_count();
  for (int p = 0; p < n; ++p) {
    auto& store = const_cast<PieceStore&>((p % 2 == 0 ? l1 : l2)->store());
    store.mark_piece(p);
  }
  swarm.start_all();
  swarm.run_for(15.0);
  EXPECT_GT(l1->stats().payload_downloaded, 0);
  // Kill l2 silently; l1's outstanding requests to it eventually time out.
  l2.host->node->set_connected(false);
  swarm.run_for(60.0);
  EXPECT_GT(l1->stats().blocks_requeued, 0u);
}

TEST(ClientFeatures, IdleDeadConnectionsAreReaped) {
  // A connected idle peer whose remote host silently vanishes is dropped
  // after idle_timeout instead of occupying a slot forever.
  Swarm swarm{35, small_file()};
  auto config = fast_config();
  config.idle_timeout = sim::seconds(60.0);
  config.keepalive_interval = sim::seconds(20.0);
  swarm.add_wired("seed", true, config);
  auto& leech = swarm.add_wired("leech", false, config);
  swarm.start_all();
  ASSERT_TRUE(swarm.run_until_complete(leech, 300.0));
  // Leech is now a seed too; both idle but exchange keep-alives: no reaping.
  swarm.run_for(180.0);
  // (seed-to-seed connections were closed at completion; just assert stability)
  SUCCEED();
}

TEST(ClientFeatures, KeepalivesPreserveHealthyIdleConnections) {
  // A leech choked by everyone sits idle; keep-alives must keep the
  // connection alive well past idle_timeout.
  Swarm swarm{36, small_file(8 * 1024 * 1024)};
  auto config = fast_config();
  config.idle_timeout = sim::seconds(45.0);
  config.keepalive_interval = sim::seconds(15.0);
  auto& seed = swarm.add_wired("seed", true, config);
  seed->set_upload_limit(util::Rate::bytes_per_sec(1.0));  // effectively mute
  auto& leech = swarm.add_wired("leech", false, config);
  swarm.start_all();
  swarm.run_for(5.0);
  ASSERT_EQ(leech->peer_count(), 1u);
  swarm.run_for(120.0);  // several idle_timeouts with no piece traffic
  EXPECT_EQ(leech->peer_count(), 1u);
}

TEST(ClientFeatures, IdleTimeoutReapsBlackholedPeer) {
  Swarm swarm{37, small_file()};
  auto config = fast_config();
  config.idle_timeout = sim::seconds(45.0);
  config.keepalive_interval = sim::seconds(15.0);
  auto& seed = swarm.add_wired("seed", true, config);
  auto& leech = swarm.add_wired("leech", false, config);
  swarm.start_all();
  ASSERT_TRUE(swarm.run_until_complete(leech, 120.0));
  swarm.run_for(2.0);
  // Blackhole the (now idle) seed: keep-alives stop arriving at the leech.
  seed.host->node->set_connected(false);
  swarm.run_for(120.0);
  EXPECT_EQ(leech->peer_count(), 0u);
}

TEST(ClientFeatures, RecoverFromDisconnectionRebuildsSwarm) {
  Swarm swarm{38, small_file(8 * 1024 * 1024)};
  auto config = fast_config();
  config.role_reversal = true;
  config.retain_peer_id = true;
  swarm.add_wired("seed", true, fast_config());
  auto& mobile = swarm.add_wireless("mobile", false, config);
  swarm.start_all();
  swarm.run_for(10.0);
  ASSERT_GT(mobile->peer_count(), 0u);
  // Silent loss: all connections die without an address change event.
  mobile.host->stack->abort_all();
  ASSERT_EQ(mobile->peer_count(), 0u);
  mobile->recover_from_disconnection();
  swarm.run_for(3.0);
  EXPECT_GT(mobile->peer_count(), 0u);
  EXPECT_GE(mobile->stats().task_reinitiations, 1u);
}

}  // namespace
}  // namespace bt
