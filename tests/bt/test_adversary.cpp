// bt::AdversaryPeer kinds against a real bt::Client victim: each scripted
// attack must be visible in the adversary's own stats (it really attacked)
// AND in the victim's enforcement counters (the defense really reacted).
// Also covers the mobility-grace guard that keeps clean roaming hosts out of
// the same counters.
#include <gtest/gtest.h>

#include "bt/adversary.hpp"
#include "exp/swarm.hpp"

namespace wp2p::bt {
namespace {

using exp::Swarm;

Metainfo small_file(std::int64_t size = 2 * 1024 * 1024) {
  return Metainfo::create("advfile", size, 256 * 1024, "tracker", 5);
}

ClientConfig victim_config(std::uint16_t port = 6881) {
  ClientConfig c;
  c.listen_port = port;
  c.announce_interval = sim::seconds(20.0);
  return c;
}

TEST(AdversaryKinds, NamesRoundTripAndUnknownIsRejected) {
  for (const AdversaryKind kind : kAllAdversaryKinds) {
    const auto parsed = adversary_kind_from(to_string(kind));
    ASSERT_TRUE(parsed.has_value()) << to_string(kind);
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(adversary_kind_from("santa"));
  EXPECT_FALSE(adversary_kind_from(""));
}

// Seed + honest leech + one adversary of the given kind, run for `seconds`.
struct Arena {
  Swarm swarm;
  Swarm::Member& seed;
  Swarm::Member& leech;
  Swarm::AdversaryMember& adv;

  explicit Arena(AdversaryKind kind, std::uint64_t seed_value = 50)
      : swarm{seed_value, small_file()},
        seed{swarm.add_wired("seed", true, victim_config())},
        leech{swarm.add_wired("leech", false, victim_config(6882))},
        adv{swarm.add_adversary("adv", kind)} {}

  void run(double seconds) {
    swarm.start_all();
    swarm.run_for(seconds);
  }
};

TEST(Adversary, FlooderIsDetectedStruckAndBanned) {
  Arena a{AdversaryKind::kFlooder};
  a.run(30.0);
  EXPECT_GT(a.adv->stats().requests_sent, 0u);
  EXPECT_GT(a.seed->stats().flood_dropped, 0u);
  EXPECT_GT(a.seed->stats().enforce_strikes, 0u);
  EXPECT_GE(a.seed->stats().peers_banned, 1u);
  // The honest download is unharmed.
  EXPECT_TRUE(a.swarm.run_until_complete(a.leech, 120.0));
}

TEST(Adversary, GarbageFramesAreDroppedAndSenderBanned) {
  // The garbage peer picks its target from the tracker list, so count the
  // defense across both honest members.
  Arena a{AdversaryKind::kGarbage};
  a.run(30.0);
  EXPECT_GT(a.adv->stats().garbage_sent, 0u);
  EXPECT_GT(a.seed->stats().malformed_msgs + a.leech->stats().malformed_msgs, 0u);
  EXPECT_GE(a.seed->stats().peers_banned + a.leech->stats().peers_banned, 1u);
  EXPECT_TRUE(a.swarm.run_until_complete(a.leech, 120.0));
}

TEST(Adversary, PexSpammerIsFilteredAndBanned) {
  Arena a{AdversaryKind::kPexSpammer};
  a.run(60.0);
  EXPECT_GT(a.adv->stats().pex_bogus_sent, 0u);
  EXPECT_GT(a.seed->stats().pex_spam_entries + a.seed->stats().pex_budget_dropped, 0u);
  EXPECT_GE(a.seed->stats().peers_banned, 1u);
}

TEST(Adversary, ChurnerFlipsAreScored) {
  // Churn flips only fire while the victim is interested, so make the
  // churner the victim's only source: every 0.5 s tick flips the choke
  // state, blowing past the 16-flips-per-60 s budget within seconds.
  Swarm swarm{53, small_file(32 * 1024 * 1024)};
  auto& victim = swarm.add_wired("victim", false, victim_config());
  auto& adv = swarm.add_adversary("adv", AdversaryKind::kChurner);
  swarm.start_all();
  swarm.run_for(60.0);
  EXPECT_GT(adv->stats().churn_flips, 16u);
  EXPECT_GT(victim->stats().churn_detections, 0u);
  EXPECT_GT(victim->stats().enforce_strikes, 0u);
}

TEST(Adversary, SlowlorisTripsTheStallAuditor) {
  // The slowloris presents as a seed, unchokes the victim, absorbs its
  // pipeline, and trickles one block per 45 s: requests expire, the peer
  // stays snubbed, and six consecutive snubbed maintenance ticks score a
  // stall audit. No honest seed — the victim must depend on the slowloris.
  Swarm swarm{54, small_file()};
  auto& victim = swarm.add_wired("victim", false, victim_config());
  auto& adv = swarm.add_adversary("adv", AdversaryKind::kSlowloris);
  swarm.start_all();
  swarm.run_for(220.0);
  EXPECT_GT(adv->stats().requests_withheld, 0u);
  EXPECT_GE(victim->stats().stall_audits, 1u);
  EXPECT_GT(victim->stats().enforce_strikes, 0u);
}

TEST(Adversary, LiarAccruesZeroPayloadEvidence) {
  // The liar advertises a full bitfield and never serves a byte: every
  // timed-out piece against a zero-payload peer is liar evidence. Again the
  // liar is the only source so the victim keeps asking it.
  Swarm swarm{55, small_file()};
  auto& victim = swarm.add_wired("victim", false, victim_config());
  auto& adv = swarm.add_adversary("adv", AdversaryKind::kLiar);
  swarm.start_all();
  swarm.run_for(160.0);
  EXPECT_GT(adv->stats().requests_withheld, 0u);
  EXPECT_GT(victim->stats().liar_detections, 0u);
  EXPECT_FALSE(victim->complete());
}

TEST(Adversary, WithholderAccruesRepeatPieceEvidence) {
  // The withholder serves most pieces but silently refuses a slice: with the
  // withholder as the only source of those pieces, the same pieces time out
  // pass after pass and cross liar_repeat_passes. No seed here — the victim
  // can only ask the withholder.
  Metainfo meta = small_file();
  Swarm swarm{51, meta};
  auto& victim = swarm.add_wired("victim", false, victim_config());
  auto& adv = swarm.add_adversary("adv", AdversaryKind::kWithholder);
  swarm.start_all();
  swarm.run_for(260.0);
  EXPECT_GT(adv->stats().requests_withheld, 0u);
  EXPECT_GT(adv->stats().uploaded_payload, 0);  // it does serve the rest
  EXPECT_FALSE(victim->complete());
  EXPECT_GT(victim->stats().liar_detections, 0u);
}

TEST(Adversary, MobilityGraceShieldsRoamingPeerFromEnforcement) {
  // A clean wP2P mobile mid-download hands off. The victim seed grants a
  // grace window for the retained identity, and the stall the hand-off
  // caused never reaches the enforcement counters.
  Swarm swarm{52, small_file()};
  auto& seed = swarm.add_wired("seed", true, victim_config());
  // Slow the seed down so the mobile is mid-download (outstanding requests
  // in both directions) at hand-off time.
  seed->set_upload_limit(util::Rate::kBps(40.0));
  auto config_m = victim_config(6882);
  config_m.retain_peer_id = true;
  config_m.role_reversal = true;
  auto& mob = swarm.add_wireless("mob", false, config_m);
  swarm.start_all();
  swarm.run_for(10.0);
  ASSERT_FALSE(mob->complete());
  const PeerId mob_id = mob->peer_id();

  mob.host->node->change_address();
  swarm.run_for(5.0);
  EXPECT_EQ(mob->peer_id(), mob_id);  // identity retained
  EXPECT_GE(seed->stats().grace_grants, 1u);
  EXPECT_TRUE(seed->mobility_grace_active(mob_id));

  // Long after the dust settles: the clean mobile was never struck or banned.
  ASSERT_TRUE(swarm.run_until_complete(mob, 300.0));
  EXPECT_EQ(seed->stats().enforce_strikes, 0u);
  EXPECT_EQ(seed->stats().peers_banned, 0u);
  EXPECT_EQ(seed->stats().liar_detections, 0u);
  EXPECT_EQ(seed->stats().stall_audits, 0u);
}

}  // namespace
}  // namespace wp2p::bt
