#include "bt/metainfo.hpp"

#include <gtest/gtest.h>

namespace wp2p::bt {
namespace {

TEST(Metainfo, CreateComputesPieceCount) {
  auto m = Metainfo::create("file", 1000 * 1000, 256 * 1024);
  EXPECT_EQ(m.piece_count(), 4);  // ceil(1e6 / 262144)
  EXPECT_EQ(m.total_size, 1000 * 1000);
}

TEST(Metainfo, LastPieceIsShort) {
  auto m = Metainfo::create("file", 1000 * 1000, 256 * 1024);
  EXPECT_EQ(m.piece_size(0), 256 * 1024);
  EXPECT_EQ(m.piece_size(3), 1000 * 1000 - 3 * 256 * 1024);
}

TEST(Metainfo, ExactMultipleHasFullLastPiece) {
  auto m = Metainfo::create("file", 512 * 1024, 256 * 1024);
  EXPECT_EQ(m.piece_count(), 2);
  EXPECT_EQ(m.piece_size(1), 256 * 1024);
}

TEST(Metainfo, InfoHashIsDeterministic) {
  auto a = Metainfo::create("x", 1 << 20, 1 << 18, "t", 7);
  auto b = Metainfo::create("x", 1 << 20, 1 << 18, "t", 7);
  EXPECT_EQ(a.info_hash, b.info_hash);
}

TEST(Metainfo, InfoHashDependsOnContent) {
  auto a = Metainfo::create("x", 1 << 20, 1 << 18, "t", 1);
  auto b = Metainfo::create("x", 1 << 20, 1 << 18, "t", 2);
  auto c = Metainfo::create("y", 1 << 20, 1 << 18, "t", 1);
  EXPECT_NE(a.info_hash, b.info_hash);
  EXPECT_NE(a.info_hash, c.info_hash);
}

TEST(Metainfo, BencodeRoundTrip) {
  auto m = Metainfo::create("fedora.iso", 688 * 1000 * 1000, 256 * 1024, "tracker-1", 42);
  auto restored = Metainfo::decode(m.encode());
  EXPECT_EQ(restored.name, m.name);
  EXPECT_EQ(restored.announce, m.announce);
  EXPECT_EQ(restored.total_size, m.total_size);
  EXPECT_EQ(restored.piece_length, m.piece_length);
  EXPECT_EQ(restored.info_hash, m.info_hash);
  EXPECT_EQ(restored.piece_hashes, m.piece_hashes);
}

TEST(Metainfo, PieceHashesAreDistinct) {
  auto m = Metainfo::create("file", 10 * 256 * 1024, 256 * 1024);
  for (std::size_t i = 0; i < m.piece_hashes.size(); ++i) {
    for (std::size_t j = i + 1; j < m.piece_hashes.size(); ++j) {
      EXPECT_NE(m.piece_hashes[i], m.piece_hashes[j]);
    }
  }
}

TEST(Fnv1a, MatchesKnownVector) {
  // FNV-1a 64-bit of empty string is the offset basis.
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(fnv1a("a"), fnv1a("b"));
}

}  // namespace
}  // namespace wp2p::bt
