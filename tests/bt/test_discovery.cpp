// Discovery resilience: multi-tracker failover tiers, PEX gossip, and the
// bootstrap cache that survives crash/restart.
#include <gtest/gtest.h>

#include "exp/faults.hpp"
#include "exp/swarm.hpp"
#include "net/address.hpp"

namespace wp2p::bt {
namespace {

using exp::Swarm;

Metainfo small_file(std::int64_t size = 1024 * 1024) {
  return Metainfo::create("discfile", size, 256 * 1024, "tracker", 77);
}

// An announce interval long enough that nothing periodic fires inside a test
// window: every tracker contact is attributable to the discovery layer.
ClientConfig quiet_config(std::uint16_t port = 6881) {
  ClientConfig c;
  c.listen_port = port;
  c.announce_interval = sim::minutes(60.0);
  return c;
}

TEST(TrackerList, TiersKeepRegistrationOrderAndNeverOutrankLowerOnes) {
  sim::Simulator sim;
  Tracker primary{sim}, a{sim}, b{sim}, c{sim};
  TrackerList list{primary};
  list.add(a, 1);
  list.add(b, 1);
  list.add(c, 0);  // late tier-0 registration still sorts before every tier 1
  ASSERT_EQ(list.size(), 4u);
  EXPECT_EQ(list.tier_of(0), 0);
  EXPECT_EQ(list.tier_of(1), 0);
  EXPECT_EQ(list.tier_of(2), 1);
  EXPECT_EQ(list.tier_of(3), 1);
  EXPECT_EQ(&list.primary(), &primary);
  EXPECT_EQ(&list.current(), &primary);

  // The cursor walks the tier order and wraps.
  EXPECT_EQ(list.advance(), 1u);
  EXPECT_EQ(&list.current(), &c);
  EXPECT_EQ(list.advance(), 2u);
  EXPECT_EQ(&list.current(), &a);
  EXPECT_EQ(list.advance(), 3u);
  EXPECT_EQ(&list.current(), &b);
  EXPECT_EQ(list.advance(), 0u);
}

TEST(TrackerList, PromoteMovesWithinTierOnlyAndFailbackGoesHome) {
  sim::Simulator sim;
  Tracker primary{sim}, a{sim}, b{sim};
  TrackerList list{primary};
  list.add(a, 1);
  list.add(b, 1);
  list.advance();  // a
  list.advance();  // b
  list.promote_current();
  // b now leads tier 1 (slot 1) but never outranks the tier-0 primary.
  EXPECT_EQ(list.cursor(), 1u);
  EXPECT_EQ(&list.current(), &b);
  EXPECT_EQ(list.tier_of(1), 1);
  EXPECT_EQ(&list.primary(), &primary);
  list.promote_current();  // already at its tier head: no-op
  EXPECT_EQ(&list.current(), &b);
  list.failback();
  EXPECT_EQ(list.cursor(), 0u);
  EXPECT_EQ(&list.current(), &primary);
}

TEST(Discovery, FailoverRegistersOnBackupThenFailsBackToPrimary) {
  Swarm swarm{301, small_file()};
  Tracker& backup = swarm.add_backup_tracker(1);
  auto config = quiet_config();
  config.tracker_probe_interval = sim::seconds(10.0);
  auto& seed = swarm.add_wired("seed", true, config);
  auto config2 = config;
  config2.listen_port = 6882;
  auto& leech = swarm.add_wired("leech", false, config2);
  swarm.tracker.set_reachable(false);
  swarm.start_all();

  // The kStarted announce fails; the cursor advances and the retry chain dials
  // the backup within seconds — the swarm forms without the primary.
  swarm.run_for(30.0);
  EXPECT_EQ(swarm.tracker.swarm_size(swarm.meta.info_hash), 0u);
  EXPECT_EQ(backup.swarm_size(swarm.meta.info_hash), 2u);
  EXPECT_GE(leech->stats().tracker_failovers, 1u);
  EXPECT_EQ(leech->tracker_cursor(), 1u);
  ASSERT_TRUE(swarm.run_until_complete(leech, 60.0));
  // The backup answered, so discovery was never dark: no cache dials.
  EXPECT_EQ(leech->stats().bootstrap_dials, 0u);
  EXPECT_EQ(seed->stats().bootstrap_dials, 0u);

  // Once the primary returns, the periodic probe moves announces home.
  swarm.tracker.set_reachable(true);
  swarm.run_for(25.0);
  EXPECT_GE(leech->stats().tracker_failbacks, 1u);
  EXPECT_EQ(leech->tracker_cursor(), 0u);
  EXPECT_GE(swarm.tracker.swarm_size(swarm.meta.info_hash), 1u);
}

TEST(Discovery, FirstResponsiveBackupIsPromotedToItsTierHead) {
  Swarm swarm{302, small_file()};
  swarm.add_backup_tracker(1);           // tr1: down, like the primary
  Tracker& tr2 = swarm.add_backup_tracker(1);  // tr2: the only one alive
  auto& solo = swarm.add_wired("solo", true, quiet_config());
  swarm.tracker.set_reachable(false);
  swarm.set_tracker_reachable("tr1", false);
  swarm.start_all();

  swarm.run_for(30.0);
  ASSERT_EQ(solo->tracker_count(), 3u);
  EXPECT_GE(solo->stats().tracker_failovers, 2u);
  EXPECT_EQ(tr2.swarm_size(swarm.meta.info_hash), 1u);
  // tr2 served and was promoted past tr1 to the head of tier 1 (slot 1), so
  // the next failover cycle tries it before the dead backup.
  EXPECT_EQ(solo->tracker_cursor(), 1u);
}

TEST(Discovery, PexGossipBridgesPeersTheTrackerNeverIntroduced) {
  // A tracker that returns a single peer per announce: the only way the two
  // leeches can ever meet is the seed gossiping them to each other.
  TrackerConfig stingy;
  stingy.max_peers_returned = 1;
  Swarm swarm{303, small_file(), stingy};
  auto config = quiet_config();
  config.pex_interval = sim::seconds(10.0);
  // Throttle the hub so both leeches are still mid-download when gossip
  // introduces them — the new edge carries real piece traffic.
  config.upload_limit = util::Rate::kBps(40.0);
  auto& hub = swarm.add_wired("hub", true, config);
  auto config_b = config;
  config_b.listen_port = 6882;
  auto& b = swarm.add_wired("b", false, config_b);
  auto config_c = config;
  config_c.listen_port = 6883;
  auto& c = swarm.add_wired("c", false, config_c);
  swarm.start_all();

  swarm.run_for(20.0);
  // Gossip flowed and introduced the third edge of the mesh mid-download.
  ASSERT_FALSE(b->complete());
  ASSERT_FALSE(c->complete());
  EXPECT_GE(hub->stats().pex_sent, 1u);
  EXPECT_GE(b->stats().pex_received + c->stats().pex_received, 1u);
  EXPECT_GE(b->stats().pex_peers_learned + c->stats().pex_peers_learned, 1u);
  EXPECT_EQ(b->peer_count(), 2u);
  EXPECT_EQ(c->peer_count(), 2u);
  ASSERT_TRUE(swarm.run_until_complete(b, 120.0));
  ASSERT_TRUE(swarm.run_until_complete(c, 120.0));
}

TEST(Discovery, PexPropagatesPostHandoffAddressWhileTrackersDark) {
  // The composition the paper's mobile host needs: after a hand-off with every
  // tracker dark, the mover re-enters through its bootstrap cache, the
  // handshake carries its new listen endpoint, and PEX spreads that address to
  // peers the mover never re-dialed — identity retained throughout.
  Swarm swarm{304, small_file()};
  auto config = quiet_config();
  config.pex_interval = sim::seconds(10.0);
  config.upload_limit = util::Rate::kBps(40.0);  // keep m mid-download at hand-off
  auto& hub = swarm.add_wired("hub", true, config);
  auto config_c = config;
  config_c.listen_port = 6882;
  // c holds exactly one connection (the hub) and rejects every inbound dial
  // beyond it, so m can never reach c directly — neither now nor from its
  // bootstrap cache later. c's only way to hear about m is the hub's gossip.
  config_c.max_peers = 1;
  auto& c = swarm.add_wired("c", false, config_c);
  auto config_m = config;
  config_m.listen_port = 6883;
  config_m.retain_peer_id = true;
  auto& m = swarm.add_wireless("m", false, config_m);
  swarm.start_all();

  swarm.run_for(12.0);
  ASSERT_FALSE(m->complete());
  ASSERT_GE(m->bootstrap_cache().size(), 1u);
  ASSERT_EQ(c->peer_count(), 1u);
  const PeerId m_id = m->peer_id();
  const auto c_learned_before = c->stats().pex_peers_learned;

  swarm.tracker.set_reachable(false);
  m.host->node->change_address();
  swarm.run_for(60.0);

  // m found its way back without any tracker: the failed re-announce left
  // discovery dark and the cache supplied the re-dials.
  EXPECT_GE(m->stats().bootstrap_dials, 1u);
  EXPECT_EQ(m->peer_id(), m_id);
  EXPECT_GE(m->peer_count(), 1u);
  // The new address reached c by gossip alone (fresh endpoint for a known id).
  EXPECT_GE(hub->stats().pex_sent, 1u);
  EXPECT_GT(c->stats().pex_peers_learned, c_learned_before);
  ASSERT_TRUE(swarm.run_until_complete(m, 180.0));
}

// Runs `swarm` (clean seed + corrupting seed "venom" + leech) until the leech
// has banned venom; returns venom's peer id.
PeerId ban_venom(Swarm& swarm, Swarm::Member& venom, Swarm::Member& leech) {
  sim::FaultPlan plan;
  sim::FaultAction corrupt;
  corrupt.kind = sim::FaultKind::kCorrupt;
  corrupt.at = sim::seconds(0.5);
  corrupt.duration = sim::seconds(110.0);
  corrupt.magnitude = 0.5;
  corrupt.target = "venom";
  plan.actions.push_back(corrupt);
  auto injector = exp::bind_faults(swarm, plan);
  swarm.start_all();
  for (int i = 0; i < 120 && leech->stats().peers_banned == 0; ++i) swarm.run_for(1.0);
  EXPECT_EQ(leech->stats().peers_banned, 1u);
  return venom->peer_id();
}

TEST(Discovery, PexEntryWithBannedIdentityIsNeverLearnedOrDialed) {
  Swarm swarm{305, small_file(2 * 1024 * 1024)};
  auto& clean = swarm.add_wired("clean", true, quiet_config());
  auto& venom = swarm.add_wired("venom", true, quiet_config(6882));
  auto& leech = swarm.add_wired("leech", false, quiet_config(6883));
  const PeerId venom_id = ban_venom(swarm, venom, leech);

  // The ban scrubbed venom from the bootstrap cache as well.
  for (const auto& entry : leech->bootstrap_cache().entries()) {
    EXPECT_NE(entry.peer_id, venom_id);
  }

  // Gossip arrives advertising the banned identity at a brand-new endpoint
  // (a moved corrupter), alongside one legitimately unknown peer.
  PeerConnection* conn = leech->peer_by_id(clean->peer_id());
  ASSERT_NE(conn, nullptr);
  const auto learned_before = leech->stats().pex_peers_learned;
  const net::Endpoint venom_moved{net::IpAddr{777}, 7000};
  leech->inject_peer_message(
      *conn, *WireMessage::pex({PexPeer{venom_moved, venom_id},
                                PexPeer{net::Endpoint{net::IpAddr{778}, 7001}, 555}},
                               {}));
  EXPECT_EQ(leech->stats().pex_banned_skipped, 1u);
  EXPECT_EQ(leech->stats().pex_peers_learned, learned_before + 1);
  swarm.run_for(5.0);
  // The banned identity was neither learned nor dialed at its new address.
  EXPECT_EQ(leech->peer_by_id(venom_id), nullptr);
}

TEST(Discovery, GossipFromBannedSenderIsDiscardedWhole) {
  Swarm swarm{306, small_file(2 * 1024 * 1024)};
  auto& clean = swarm.add_wired("clean", true, quiet_config());
  auto& venom = swarm.add_wired("venom", true, quiet_config(6882));
  auto& leech = swarm.add_wired("leech", false, quiet_config(6883));
  const PeerId venom_id = ban_venom(swarm, venom, leech);

  // Stage the race the async stack cannot schedule on demand: gossip already
  // in flight from a peer the ban decision just condemned. Re-labelling the
  // surviving connection with the banned identity reproduces exactly what
  // handle_pex sees in that window.
  PeerConnection* conn = leech->peer_by_id(clean->peer_id());
  ASSERT_NE(conn, nullptr);
  const PeerId clean_id = conn->remote_id;
  conn->remote_id = venom_id;
  const auto received_before = leech->stats().pex_received;
  const auto learned_before = leech->stats().pex_peers_learned;
  leech->inject_peer_message(
      *conn,
      *WireMessage::pex({PexPeer{net::Endpoint{net::IpAddr{900}, 7100}, 556}}, {}));
  conn->remote_id = clean_id;
  // Discarded whole: not counted as received, nothing learned from it.
  EXPECT_EQ(leech->stats().pex_discarded, 1u);
  EXPECT_EQ(leech->stats().pex_received, received_before);
  EXPECT_EQ(leech->stats().pex_peers_learned, learned_before);
}

TEST(Discovery, BanOutlivesHandoffAndRoleReversalSkipsBannedEndpoints) {
  // The ban/identity-retention interplay: a wP2P mover bans a corrupter, then
  // hands off. Role reversal re-dials every remembered listen endpoint — the
  // banned identity's endpoint is still remembered (consider_reconnect needs
  // the mapping to keep refusing it), so the re-dial loop must skip it while
  // still re-dialing the clean peer.
  Swarm swarm{307, small_file(2 * 1024 * 1024)};
  auto& clean = swarm.add_wired("clean", true, quiet_config());
  auto& venom = swarm.add_wired("venom", true, quiet_config(6882));
  auto config_m = quiet_config(6883);
  config_m.retain_peer_id = true;
  config_m.role_reversal = true;
  auto& m = swarm.add_wireless("m", false, config_m);
  const PeerId venom_id = ban_venom(swarm, venom, m);
  ASSERT_EQ(m->peer_by_id(venom_id), nullptr);

  const auto reinit_before = m->stats().task_reinitiations;
  m.host->node->change_address();
  swarm.run_for(20.0);
  EXPECT_GT(m->stats().task_reinitiations, reinit_before);
  EXPECT_NE(m->peer_by_id(clean->peer_id()), nullptr);
  EXPECT_EQ(m->peer_by_id(venom_id), nullptr);

  // The ban itself survived the hand-off: gossip re-advertising the banned
  // identity at a fresh endpoint is still skipped.
  PeerConnection* conn = m->peer_by_id(clean->peer_id());
  ASSERT_NE(conn, nullptr);
  const auto skipped_before = m->stats().pex_banned_skipped;
  m->inject_peer_message(
      *conn,
      *WireMessage::pex({PexPeer{net::Endpoint{net::IpAddr{901}, 7200}, venom_id}}, {}));
  EXPECT_EQ(m->stats().pex_banned_skipped, skipped_before + 1);
}

TEST(BootstrapCache, TouchDedupsByIdentityEvictsOldestAndRemoveScrubs) {
  BootstrapCache cache{3};
  const net::Endpoint e1{net::IpAddr{1}, 1000};
  const net::Endpoint e2{net::IpAddr{2}, 2000};
  const net::Endpoint e3{net::IpAddr{3}, 3000};
  const net::Endpoint e4{net::IpAddr{4}, 4000};
  cache.touch(e1, 11, 10);
  cache.touch(e2, 22, 20);
  // A moved host keeps its id: the entry is re-pointed, not duplicated.
  cache.touch(e3, 11, 30);
  ASSERT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.entries().back().peer_id, 11u);
  EXPECT_EQ(cache.entries().back().endpoint, e3);
  // Filling past capacity evicts the oldest touch (id 22).
  cache.touch(e1, 33, 40);
  cache.touch(e4, 44, 50);
  ASSERT_EQ(cache.size(), 3u);
  for (const auto& entry : cache.entries()) EXPECT_NE(entry.peer_id, 22u);
  cache.remove(11);
  ASSERT_EQ(cache.size(), 2u);
  for (const auto& entry : cache.entries()) EXPECT_NE(entry.peer_id, 11u);
  // Invalid endpoints and the anonymous id are never cached.
  cache.touch(net::Endpoint{}, 55, 60);
  cache.touch(e2, 0, 60);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(Discovery, BootstrapCacheSurvivesCrashAndRedialsWhenTrackersDark) {
  Swarm swarm{307, small_file()};
  auto config = quiet_config();
  config.upload_limit = util::Rate::kBps(50.0);  // still downloading at the crash
  auto& hub = swarm.add_wired("hub", true, config);
  auto config_l = quiet_config(6882);
  auto& leech = swarm.add_wired("leech", false, config_l);
  swarm.start_all();
  swarm.run_for(8.0);
  ASSERT_FALSE(leech->complete());
  ASSERT_GE(leech->bootstrap_cache().size(), 1u);

  // Crash, and the world goes dark while the client is down.
  leech->stop();
  swarm.tracker.set_reachable(false);
  swarm.run_for(2.0);
  // The cache is member data, like the piece store: it survived the crash.
  ASSERT_GE(leech->bootstrap_cache().size(), 1u);

  leech->start();
  swarm.run_for(15.0);
  // The restart announce failed at every tier (there is only one), so the
  // cache re-dialed the hub and the transfer resumed trackerless.
  EXPECT_GE(leech->stats().bootstrap_dials, 1u);
  EXPECT_GE(leech->peer_count(), 1u);
  ASSERT_TRUE(swarm.run_until_complete(leech, 120.0));
  (void)hub;
}

TEST(Discovery, BootstrapRedialsAfterRoamIntoDarkCell) {
  // The harshest re-entry the cell layer can stage: the mover roams INTO a
  // cell that is itself down, with every tracker already unreachable. Nothing
  // flows until the cell recovers; then the failed re-announces leave
  // discovery dark and the bootstrap cache supplies the re-dials that rebuild
  // the swarm trackerless, identity intact.
  Swarm swarm{308, small_file()};
  auto config = quiet_config();
  config.upload_limit = util::Rate::kBps(50.0);  // still mid-download at the roam
  auto& hub = swarm.add_wired("hub", true, config);
  auto config_m = quiet_config(6882);
  config_m.retain_peer_id = true;
  swarm.world.enable_cells();
  swarm.world.cells->add_cell();  // cell 0: home
  swarm.world.cells->add_cell();  // cell 1: dark at association time
  auto& m = swarm.add_cellular("m", false, config_m, 0);
  swarm.start_all();
  swarm.run_for(8.0);
  ASSERT_FALSE(m->complete());
  ASSERT_GE(m->bootstrap_cache().size(), 1u);
  const PeerId m_id = m->peer_id();

  swarm.tracker.set_reachable(false);
  swarm.world.cells->cell(1).set_down(true);
  swarm.world.cells->handoff(*m.host->node, 1);
  swarm.run_for(5.0);
  ASSERT_EQ(swarm.world.cells->cell_of(*m.host->node), 1);
  ASSERT_EQ(m->peer_count(), 0u);  // the dark cell passes nothing

  swarm.world.cells->cell(1).set_down(false);
  swarm.run_for(40.0);
  // The re-announce failed at every tier (there is only one), so the cache
  // re-dialed the hub through the recovered cell.
  EXPECT_GE(m->stats().bootstrap_dials, 1u);
  EXPECT_EQ(m->peer_id(), m_id);
  EXPECT_GE(m->peer_count(), 1u);
  ASSERT_TRUE(swarm.run_until_complete(m, 180.0));
  (void)hub;
}

}  // namespace
}  // namespace wp2p::bt
