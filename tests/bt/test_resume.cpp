// Session persistence: ResumeSnapshot text format, the StableStorage fault
// model, and the client's suspend/resume + kill/restore lifecycle.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bt/resume_store.hpp"
#include "exp/swarm.hpp"
#include "sim/stable_storage.hpp"
#include "trace/invariant_checker.hpp"
#include "trace/recorder.hpp"

namespace wp2p::bt {
namespace {

using exp::Swarm;

Metainfo small_file(std::int64_t size = 1024 * 1024) {
  return Metainfo::create("resfile", size, 256 * 1024, "tracker", 91);
}

ClientConfig quiet_config(std::uint16_t port = 6881) {
  ClientConfig c;
  c.listen_port = port;
  c.announce_interval = sim::minutes(60.0);
  return c;
}

// --- ResumeSnapshot text format ------------------------------------------------

ResumeSnapshot sample_snapshot() {
  ResumeSnapshot snap;
  snap.info_hash = 0xfeedfacecafebeefULL;
  snap.peer_id = 0xab54a98ceb1f0ad3ULL;
  snap.taken_at = sim::seconds(123.456789);
  snap.piece_count = 8;
  snap.have = {0, 2, 3, 7};
  snap.partials.push_back(
      PieceStore::PartialState{5, {true, false, true}, {false, false, true}});
  snap.credit.push_back(CreditLedger::Exported{0x11, 3.25, sim::seconds(100.0)});
  snap.credit.push_back(CreditLedger::Exported{0x22, -1.5, sim::seconds(110.0)});
  snap.strikes.emplace_back(0x22, 2);
  snap.banned.push_back(0x33);
  BootstrapCache::Entry entry;
  entry.endpoint.addr.value = 42;
  entry.endpoint.port = 6881;
  entry.peer_id = 0x11;
  entry.last_good = sim::seconds(99.0);
  snap.bootstrap.push_back(entry);
  return snap;
}

TEST(ResumeSnapshot, RoundTripsEverySection) {
  const ResumeSnapshot snap = sample_snapshot();
  const auto parsed = ResumeSnapshot::parse(snap.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->serialize(), snap.serialize());
  EXPECT_EQ(parsed->info_hash, snap.info_hash);
  EXPECT_EQ(parsed->peer_id, snap.peer_id);
  EXPECT_EQ(parsed->taken_at, snap.taken_at);
  EXPECT_EQ(parsed->piece_count, snap.piece_count);
  EXPECT_EQ(parsed->have, snap.have);
  ASSERT_EQ(parsed->partials.size(), 1u);
  EXPECT_EQ(parsed->partials[0].piece, 5);
  EXPECT_EQ(parsed->partials[0].blocks, snap.partials[0].blocks);
  EXPECT_EQ(parsed->partials[0].corrupt, snap.partials[0].corrupt);
  ASSERT_EQ(parsed->credit.size(), 2u);
  EXPECT_EQ(parsed->credit[1].peer, 0x22u);
  EXPECT_DOUBLE_EQ(parsed->credit[1].value, -1.5);
  EXPECT_EQ(parsed->strikes, snap.strikes);
  EXPECT_EQ(parsed->banned, snap.banned);
  ASSERT_EQ(parsed->bootstrap.size(), 1u);
  EXPECT_EQ(parsed->bootstrap[0].endpoint.addr.value, 42u);
  EXPECT_EQ(parsed->bootstrap[0].last_good, sim::seconds(99.0));
}

TEST(ResumeSnapshot, RejectsTruncationAndGarbage) {
  const std::string text = sample_snapshot().serialize();
  // A torn write that drops the "end" trailer (even on a line boundary) must
  // not parse — that is exactly what the half-payload torn-write model does.
  const std::string no_trailer = text.substr(0, text.size() - 4);
  EXPECT_FALSE(ResumeSnapshot::parse(no_trailer));
  EXPECT_FALSE(ResumeSnapshot::parse(text.substr(0, text.size() / 2)));
  EXPECT_FALSE(ResumeSnapshot::parse(""));
  EXPECT_FALSE(ResumeSnapshot::parse("end\n"));                 // no header
  EXPECT_FALSE(ResumeSnapshot::parse("junk x=1\n" + text));     // unknown tag
  EXPECT_FALSE(ResumeSnapshot::parse("resume v2 info=1 peer=1 at_us=0 pieces=4\nend\n"));
}

// --- StableStorage fault model ---------------------------------------------------

TEST(StableStorage, CleanJournalLoadsNewestRecord) {
  sim::Simulator sim{7};
  sim::StableStorage storage{sim, sim::StorageParams{}, "disk"};
  std::vector<std::uint64_t> acked;
  storage.append("snap-one", [&](std::uint64_t seq) { acked.push_back(seq); });
  storage.append("snap-two", [&](std::uint64_t seq) { acked.push_back(seq); });
  sim.run();
  EXPECT_EQ(acked, (std::vector<std::uint64_t>{1, 2}));
  const auto result = storage.load();
  ASSERT_TRUE(result.record.has_value());
  EXPECT_EQ(result.record->seq, 2u);
  EXPECT_EQ(result.record->payload, "snap-two");
  EXPECT_EQ(result.discarded, 0);
  EXPECT_EQ(storage.stats().writes, 2u);
  EXPECT_EQ(storage.stats().torn_writes, 0u);
}

TEST(StableStorage, TornRecordFailsItsChainChecksumAndOlderSnapshotWins) {
  // Torn writes are drawn from the storage's forked rng, so which append
  // tears is seed-dependent; sweep a few seeds and require the interesting
  // shape — a torn newest record with an intact older one — to occur, then
  // pin the fallback semantics on it.
  bool demonstrated = false;
  for (std::uint64_t seed = 1; seed <= 20 && !demonstrated; ++seed) {
    sim::Simulator sim{seed};
    sim::StorageParams params;
    params.torn_write_prob = 0.5;
    sim::StableStorage storage{sim, params, "disk"};
    for (int i = 0; i < 6; ++i) storage.append("snapshot-" + std::to_string(i));
    sim.run();
    const auto result = storage.load();
    if (!result.record || result.discarded == 0) continue;
    demonstrated = true;
    // The winner is the newest intact record: every younger one was torn and
    // rejected by the chain checksum (no stale drops, so seqs are dense).
    EXPECT_FALSE(result.record->torn);
    EXPECT_EQ(result.record->seq,
              storage.last_seq() - static_cast<std::uint64_t>(result.discarded));
    EXPECT_EQ(sim::StableStorage::chain_checksum(result.record->prev,
                                                 result.record->payload),
              result.record->checksum);
    EXPECT_GE(storage.stats().torn_writes,
              static_cast<std::uint64_t>(result.discarded));
    EXPECT_EQ(storage.stats().records_discarded,
              static_cast<std::uint64_t>(result.discarded));
  }
  EXPECT_TRUE(demonstrated) << "no seed tore the newest record over an intact one";
}

TEST(StableStorage, EveryRecordTornMeansColdStart) {
  sim::Simulator sim{3};
  sim::StorageParams params;
  params.torn_write_prob = 1.0;
  sim::StableStorage storage{sim, params, "disk"};
  storage.append("snapshot-a");
  storage.append("snapshot-b");
  sim.run();
  const auto result = storage.load();
  EXPECT_FALSE(result.record.has_value());
  EXPECT_EQ(result.discarded, 2);
  EXPECT_EQ(storage.stats().torn_writes, 2u);
}

TEST(StableStorage, StaleDropAcksTheCallerWithoutJournaling) {
  sim::Simulator sim{5};
  sim::StorageParams params;
  params.stale_drop_prob = 1.0;
  sim::StableStorage storage{sim, params, "disk"};
  bool acked = false;
  storage.append("vanishes", [&](std::uint64_t) { acked = true; });
  sim.run();
  EXPECT_TRUE(acked);  // the device lied
  EXPECT_EQ(storage.journal_size(), 0u);
  EXPECT_FALSE(storage.load().record.has_value());
  EXPECT_EQ(storage.stats().stale_drops, 1u);
}

TEST(StableStorage, BoundedJournalEvictsOldestRecords) {
  sim::Simulator sim{9};
  sim::StorageParams params;
  params.journal_capacity = 2;
  sim::StableStorage storage{sim, params, "disk"};
  for (int i = 0; i < 5; ++i) storage.append("snapshot-" + std::to_string(i));
  sim.run();
  EXPECT_EQ(storage.journal_size(), 2u);
  const auto result = storage.load();
  ASSERT_TRUE(result.record.has_value());
  EXPECT_EQ(result.record->seq, 5u);
}

TEST(ResumeStore, WrongTorrentSnapshotDegradesToColdStart) {
  sim::Simulator sim{11};
  sim::StableStorage storage{sim, sim::StorageParams{}, "disk"};
  ResumeStore writer{storage, /*info_hash=*/0x1111};
  ResumeSnapshot snap = sample_snapshot();
  snap.info_hash = 0x1111;
  writer.save(snap);
  sim.run();
  ASSERT_TRUE(writer.load().has_value());
  // The same journal read for another torrent: checksum-valid but useless.
  ResumeStore other{storage, /*info_hash=*/0x2222};
  EXPECT_FALSE(other.load().has_value());
  EXPECT_EQ(other.stats().load_failures, 1u);
}

// --- Client lifecycle -------------------------------------------------------------

TEST(Resume, SuspendGoesSilentAndResumeRetainsIdentity) {
  trace::Recorder recorder{/*ring_capacity=*/1024};
  trace::InvariantChecker checker;
  recorder.add_sink(&checker);
  Swarm swarm{92, small_file(2 * 1024 * 1024)};
  swarm.world.sim.set_tracer(&recorder);
  auto& seed = swarm.add_wired("seed0", true, quiet_config());
  seed->set_upload_limit(util::Rate::kBps(100.0));  // still mid-download at suspend
  auto& mob = swarm.add_wired("mob", false, quiet_config(6882));
  swarm.start_all();
  swarm.run_for(10.0);
  ASSERT_FALSE(mob->complete());
  const PeerId id_before = mob->peer_id();

  mob->suspend();
  EXPECT_FALSE(mob->running());
  swarm.run_for(30.0);
  EXPECT_EQ(mob->lifecycle(), Client::Lifecycle::kSuspended);
  mob->resume();
  EXPECT_TRUE(mob->running());
  EXPECT_EQ(mob->lifecycle(), Client::Lifecycle::kRunning);
  EXPECT_EQ(mob->peer_id(), id_before);
  EXPECT_EQ(mob->stats().suspends, 1u);
  EXPECT_EQ(mob->stats().resumes, 1u);

  seed->set_upload_limit(util::Rate::kBps(1e9));
  ASSERT_TRUE(swarm.run_until_complete(mob, 120.0));
  swarm.world.sim.set_tracer(nullptr);
  // The no-serve-while-suspended, identity, and bracket rules audited live.
  EXPECT_TRUE(checker.violations().empty())
      << trace::to_string(checker.violations().front());
}

TEST(Resume, SuspendJournalsAFinalSnapshot) {
  Swarm swarm{93, small_file()};
  swarm.add_wired("seed0", true, quiet_config());
  auto config = quiet_config(6882);
  config.resume_checkpoint_interval = sim::seconds(4.0);
  auto& mob = swarm.add_wired("mob", false, config);
  sim::StableStorage storage{swarm.world.sim, sim::StorageParams{}, "mob"};
  ResumeStore store{storage, swarm.meta.info_hash};
  mob->attach_resume(store);
  swarm.start_all();
  swarm.run_for(10.0);  // a couple of periodic checkpoints land too
  const std::uint64_t checkpoints = mob->stats().snapshots_written;
  EXPECT_GE(checkpoints, 2u);

  mob->suspend();
  EXPECT_EQ(mob->lifecycle(), Client::Lifecycle::kSuspending);
  swarm.run_for(1.0);  // past the write latency: the device acks
  EXPECT_EQ(mob->lifecycle(), Client::Lifecycle::kSuspended);
  EXPECT_EQ(mob->stats().snapshots_written, checkpoints + 1);
  // The journaled snapshot is the client's state, verbatim.
  const auto loaded = store.load();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->snapshot.peer_id, mob->peer_id());
  EXPECT_EQ(loaded->snapshot.piece_count, swarm.meta.piece_count());
  EXPECT_EQ(loaded->snapshot.have.size(), mob->store().bitfield().count());
}

TEST(Resume, CrashRestartOnSuspendedAppIsAWakeUpNotAColdBoot) {
  // A kCrashRestart up-edge landing on a suspended client calls start();
  // the client must treat it as the missing resume edge (closing the suspend
  // bracket) instead of tripping the !running_ assertion or double-starting.
  Swarm swarm{94, small_file()};
  swarm.add_wired("seed0", true, quiet_config());
  auto& mob = swarm.add_wired("mob", false, quiet_config(6882));
  swarm.start_all();
  swarm.run_for(5.0);
  mob->suspend();
  swarm.run_for(1.0);
  ASSERT_EQ(mob->lifecycle(), Client::Lifecycle::kSuspended);
  mob->start();
  EXPECT_TRUE(mob->running());
  EXPECT_EQ(mob->lifecycle(), Client::Lifecycle::kRunning);
  EXPECT_EQ(mob->stats().resumes, 1u);
}

// Kill the process (client object destroyed), keep the journal, restart.
TEST(Resume, KillAndRestoreCarriesProgressAndIdentity) {
  Swarm swarm{95, small_file(4 * 1024 * 1024)};
  auto& seed = swarm.add_wired("seed0", true, quiet_config());
  seed->set_upload_limit(util::Rate::kBps(40.0));  // partial progress only
  auto config = quiet_config(6882);
  config.resume_checkpoint_interval = sim::seconds(3.0);
  auto& mob = swarm.add_wired("mob", false, config);
  sim::StableStorage storage{swarm.world.sim, sim::StorageParams{}, "mob"};
  ResumeStore store{storage, swarm.meta.info_hash};
  mob->attach_resume(store);
  swarm.start_all();
  swarm.run_for(60.0);
  ASSERT_FALSE(mob->complete());
  const PeerId id_before = mob->peer_id();
  std::vector<bool> verified(static_cast<std::size_t>(swarm.meta.piece_count()));
  std::size_t had = 0;
  for (int p = 0; p < swarm.meta.piece_count(); ++p) {
    verified[static_cast<std::size_t>(p)] = mob->store().has_piece(p);
    had += verified[static_cast<std::size_t>(p)] ? 1 : 0;
  }
  ASSERT_GT(had, 0u);

  mob->stop();
  mob.client.reset();  // the process dies; only the journal survives
  swarm.run_for(5.0);
  mob.client = std::make_unique<Client>(*mob.host->node, *mob.host->stack,
                                        swarm.tracker, swarm.meta, config,
                                        /*is_seed=*/false);
  mob->attach_resume(store);
  mob->start();

  // Identity and progress came back from the snapshot, and the restored
  // bitfield is a subset of what the dead incarnation actually verified.
  EXPECT_EQ(mob->peer_id(), id_before);
  EXPECT_GT(mob->stats().resume_restored_pieces, 0u);
  EXPECT_EQ(mob->stats().cold_restarts, 0u);
  for (int p = 0; p < swarm.meta.piece_count(); ++p) {
    if (mob->store().has_piece(p)) EXPECT_TRUE(verified[static_cast<std::size_t>(p)]);
  }
  seed->set_upload_limit(util::Rate::kBps(1e9));
  EXPECT_TRUE(swarm.run_until_complete(mob, 120.0));
}

TEST(Resume, EmptyJournalDegradesToColdStart) {
  Swarm swarm{96, small_file()};
  swarm.add_wired("seed0", true, quiet_config());
  auto& mob = swarm.add_wired("mob", false, quiet_config(6882));
  sim::StableStorage storage{swarm.world.sim, sim::StorageParams{}, "mob"};
  ResumeStore store{storage, swarm.meta.info_hash};
  mob->attach_resume(store);
  swarm.start_all();
  EXPECT_EQ(mob->stats().cold_restarts, 1u);
  EXPECT_EQ(mob->stats().resume_restored_pieces, 0u);
  EXPECT_TRUE(swarm.run_until_complete(mob, 120.0));  // cold ≠ broken
}

TEST(Resume, RottedMediumDegradesToPartialRestoreNeverAFalseHave) {
  Swarm swarm{97, small_file(4 * 1024 * 1024)};
  auto& seed = swarm.add_wired("seed0", true, quiet_config());
  seed->set_upload_limit(util::Rate::kBps(150.0));
  auto config = quiet_config(6882);
  config.resume_checkpoint_interval = sim::seconds(3.0);
  auto& mob = swarm.add_wired("mob", false, config);
  sim::StableStorage storage{swarm.world.sim, sim::StorageParams{}, "mob"};
  ResumeStore store{storage, swarm.meta.info_hash};
  mob->attach_resume(store);
  swarm.start_all();
  swarm.run_for(60.0);
  std::size_t had = 0;
  for (int p = 0; p < swarm.meta.piece_count(); ++p) had += mob->store().has_piece(p);
  ASSERT_GT(had, 0u);
  mob->stop();
  mob.client.reset();

  // Every stored piece decayed at rest: the trust-but-verify samples find the
  // rot, escalate to a full scan, and nothing re-enters the bitfield.
  for (int p = 0; p < swarm.meta.piece_count(); ++p) storage.rot_piece(p);
  mob.client = std::make_unique<Client>(*mob.host->node, *mob.host->stack,
                                        swarm.tracker, swarm.meta, config,
                                        /*is_seed=*/false);
  mob->attach_resume(store);
  mob->start();
  EXPECT_EQ(mob->stats().resume_restored_pieces, 0u);
  EXPECT_GE(mob->stats().resume_dropped_pieces, had);
  for (int p = 0; p < swarm.meta.piece_count(); ++p) {
    EXPECT_FALSE(mob->store().has_piece(p));
  }
}

// --- Satellite regressions --------------------------------------------------------

// A hand-off reinitiation timer armed by one incarnation must not fire into
// the next one after a crash/restart inside the reinit delay window.
TEST(Resume, StaleReinitTimerDiesWithItsIncarnation) {
  trace::Recorder recorder{/*ring_capacity=*/1024};
  Swarm swarm{98, small_file(4 * 1024 * 1024)};
  swarm.world.sim.set_tracer(&recorder);
  swarm.add_wired("seed0", true, quiet_config());
  auto config = quiet_config(6882);  // default client: delayed reinitiation
  ASSERT_FALSE(config.role_reversal);
  auto& mob = swarm.add_wireless("mob", false, config);
  swarm.start_all();
  swarm.run_for(5.0);

  // Hand-off arms the reinit timer (leech_reinit_delay = 5 s); the crash
  // lands inside the window and the restart follows immediately.
  mob.host->node->change_address();
  swarm.run_for(1.0);
  mob->stop();
  swarm.run_for(0.5);
  mob->start();
  const PeerId id_after_restart = mob->peer_id();
  swarm.run_for(10.0);  // well past the old timer's deadline
  swarm.world.sim.set_tracer(nullptr);

  // The dead incarnation's timer must not have fired: no "reinit" hand-off
  // event after the restart, and the restarted identity is untouched.
  EXPECT_EQ(mob->peer_id(), id_after_restart);
  for (const auto& ev : recorder.ring().events()) {
    if (ev.kind == trace::Kind::kBtHandoff && ev.aux == "reinit") {
      ADD_FAILURE() << "stale reinit timer fired at t=" << sim::to_seconds(ev.time);
    }
  }
}

TEST(BootstrapCacheTtl, PruneDropsOnlyStaleEntriesAndRestoreKeepsAges) {
  BootstrapCache cache{4};
  cache.touch({net::IpAddr{1}, 6881}, 0x1, sim::seconds(10.0));
  cache.touch({net::IpAddr{2}, 6881}, 0x2, sim::seconds(100.0));
  EXPECT_EQ(cache.prune(sim::seconds(110.0), sim::minutes(30.0)), 0u);
  EXPECT_EQ(cache.prune(sim::seconds(110.0), sim::seconds(50.0)), 1u);
  ASSERT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.entries()[0].peer_id, 0x2u);
  EXPECT_EQ(cache.prune(sim::seconds(110.0), 0), 0u);  // ttl <= 0 disables aging

  // restore() reinserts with the snapshotted timestamp — a later prune still
  // sees the entry's true age (touch() would have reset it to "now").
  BootstrapCache::Entry old_entry;
  old_entry.endpoint = {net::IpAddr{3}, 6881};
  old_entry.peer_id = 0x3;
  old_entry.last_good = sim::seconds(5.0);
  cache.restore(old_entry);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.prune(sim::seconds(110.0), sim::seconds(50.0)), 1u);
  EXPECT_EQ(cache.entries()[0].peer_id, 0x2u);
}

// Suspend across a hand-off: the snapshot carries the old cell's endpoints;
// a restore after a long-enough gap must age them out before dialing.
TEST(Resume, RestoreAfterLongSuspendPrunesStaleBootstrapEndpoints) {
  Swarm swarm{99, small_file()};
  auto config = quiet_config(6882);
  config.bootstrap_entry_ttl = sim::seconds(60.0);
  auto& mob = swarm.add_wired("mob", false, config);
  sim::StableStorage storage{swarm.world.sim, sim::StorageParams{}, "mob"};
  ResumeStore store{storage, swarm.meta.info_hash};

  // A snapshot written "before the suspend": one endpoint proven long ago
  // (the old cell) and one proven recently, relative to the restore instant.
  ResumeSnapshot snap;
  snap.info_hash = swarm.meta.info_hash;
  snap.peer_id = 0x777;
  snap.piece_count = swarm.meta.piece_count();
  BootstrapCache::Entry stale, fresh;
  stale.endpoint = {net::IpAddr{101}, 6881};
  stale.peer_id = 0xaaa;
  stale.last_good = sim::seconds(10.0);
  fresh.endpoint = {net::IpAddr{102}, 6881};
  fresh.peer_id = 0xbbb;
  fresh.last_good = sim::seconds(170.0);
  snap.bootstrap = {stale, fresh};
  store.save(snap);
  swarm.world.sim.run_until(sim::seconds(180.0));  // the long suspend

  mob->attach_resume(store);
  mob->start();
  ASSERT_EQ(mob->bootstrap_cache().size(), 1u);
  EXPECT_EQ(mob->bootstrap_cache().entries()[0].peer_id, 0xbbbu);
  EXPECT_EQ(mob->peer_id(), 0x777u);
}

// A corrupted piece snapshotted mid-reset: the corrupt-block flags ride the
// snapshot, so the restored partial re-enters the corrupt-reset path instead
// of verifying a piece the first incarnation already knew was damaged.
TEST(Resume, CorruptPartialReentersCorruptResetPathAfterRestore) {
  const Metainfo meta = small_file();
  PieceStore first{meta};
  const int blocks = first.blocks_in_piece(0);
  ASSERT_GE(blocks, 2);
  EXPECT_EQ(first.mark_block(0, 0, /*corrupt=*/true), BlockResult::kAccepted);
  for (int b = 1; b < blocks - 1; ++b) {
    EXPECT_EQ(first.mark_block(0, b), BlockResult::kAccepted);
  }

  // The suspend snapshots the in-progress piece — corrupt flags included —
  // and the snapshot survives the text round-trip.
  ResumeSnapshot snap;
  snap.partials = first.export_partials();
  snap.info_hash = meta.info_hash;
  snap.piece_count = meta.piece_count();
  const auto parsed = ResumeSnapshot::parse(snap.serialize());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->partials.size(), 1u);
  EXPECT_TRUE(parsed->partials[0].corrupt[0]);

  PieceStore second{meta};
  second.restore_partial(parsed->partials[0]);
  EXPECT_EQ(second.missing_blocks(0), std::vector<int>{blocks - 1});
  // The last block lands clean, but the piece still fails verification:
  // every block is thrown back and the piece re-enters the selector.
  EXPECT_EQ(second.mark_block(0, blocks - 1), BlockResult::kPieceCorrupt);
  EXPECT_FALSE(second.has_piece(0));
  EXPECT_EQ(second.corrupt_pieces_detected(), 1);
  EXPECT_EQ(static_cast<int>(second.missing_blocks(0).size()), blocks);
  EXPECT_GT(second.wasted_bytes(), 0);
}

}  // namespace
}  // namespace wp2p::bt
