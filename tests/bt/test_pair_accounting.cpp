// Per-pair (identity-keyed) transfer accounting under connection churn.
//
// The TransferMatrix is keyed by peer IDENTITY, not by connection: bytes and
// unchoke intervals must survive duplicate-handshake tie-breaks (both sides
// of a pair dialling each other after a tracker round introduces them both
// ways — the simultaneous-open scenario), and hand-offs where a naive mobile
// regenerates its peer-id on every re-initiation. The invariant in both
// cases: the matrix row of each client agrees byte-for-byte with the
// client's own ClientStats payload counters, so no transfer vanished with a
// losing connection.
#include <gtest/gtest.h>

#include "exp/swarm.hpp"

namespace wp2p::bt {
namespace {

using exp::ClusteringProbe;
using exp::Swarm;

ClientConfig churn_config(std::uint16_t port) {
  ClientConfig c;
  c.listen_port = port;
  // Aggressive announces: every round re-introduces the leeches to each
  // other BOTH ways, so each keeps re-dialling a peer it is already
  // connected to and the duplicate-handshake tie-break runs continually.
  c.announce_interval = sim::seconds(5.0);
  return c;
}

// Rows must agree with ClientStats even though the run is full of duplicate
// handshakes: whichever connection loses the tie-break dies with payload
// bytes already on its counters, and those bytes must still be in the row.
TEST(PairAccounting, SurvivesDuplicateHandshakeTieBreaks) {
  auto meta = Metainfo::create("f", 6 * 1024 * 1024, 256 * 1024, "tr", 91);
  Swarm swarm{91, meta};
  ClusteringProbe probe{swarm.world.sim};

  auto config = churn_config(6881);
  auto& seed = swarm.add_wired("seed", true, config);
  seed->set_upload_limit(util::Rate::kBps(100.0));
  auto& l1 = swarm.add_wired("l1", false, churn_config(6882));
  l1->set_upload_limit(util::Rate::kBps(100.0));
  auto& l2 = swarm.add_wired("l2", false, churn_config(6883));
  l2->set_upload_limit(util::Rate::kBps(100.0));

  const int seed_row = probe.track(*seed.client, "seed", -1, /*is_seed=*/true);
  const int r1 = probe.track(*l1.client, "l1", 0, /*is_seed=*/false);
  const int r2 = probe.track(*l2.client, "l2", 0, /*is_seed=*/false);

  swarm.start_all();
  ASSERT_TRUE(swarm.run_until_complete(l1, 600.0));
  ASSERT_TRUE(swarm.run_until_complete(l2, 600.0));
  probe.detach();

  // Announce-driven re-dials really produced extra connections (the scenario
  // under test, not a quiet two-connection run).
  EXPECT_GT(l1->stats().peers_connected_total, 2u);

  const metrics::TransferMatrix& m = probe.matrix();
  const Swarm::Member* members[] = {&seed, &l1, &l2};
  const int rows[] = {seed_row, r1, r2};
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(m.total_uploaded(rows[i]), members[i]->client->stats().payload_uploaded)
        << "row " << i;
    EXPECT_EQ(m.total_downloaded(rows[i]), members[i]->client->stats().payload_downloaded)
        << "row " << i;
  }
  // Conservation inside the matrix itself: what l1 saw arrive from l2 is
  // what l2 recorded sending to l1 (and vice versa) — pairwise, not just in
  // aggregate.
  EXPECT_EQ(m.downloaded(r1, r2), m.uploaded(r2, r1));
  EXPECT_EQ(m.downloaded(r2, r1), m.uploaded(r1, r2));
}

// A naive mobile (no identity retention) regenerates its peer-id on every
// re-initiation after a hand-off. The probe rebinds the fresh id to the same
// row, so the row keeps accumulating across all of the peer's lives.
TEST(PairAccounting, SurvivesHandoffIdRegeneration) {
  auto meta = Metainfo::create("f", 4 * 1024 * 1024, 256 * 1024, "tr", 92);
  Swarm swarm{92, meta};
  ClusteringProbe probe{swarm.world.sim};

  auto config = churn_config(6881);
  auto& seed = swarm.add_wired("seed", true, config);
  seed->set_upload_limit(util::Rate::kBps(150.0));
  ClientConfig mc = churn_config(6882);
  mc.retain_peer_id = false;  // naive: every hand-off is a fresh identity
  auto& mobile = swarm.add_wireless("mobile", false, mc);

  const int seed_row = probe.track(*seed.client, "seed", -1, /*is_seed=*/true);
  const int mob_row = probe.track(*mobile.client, "mobile", 0, /*is_seed=*/false);

  swarm.start_all();
  for (int i = 0; i < 3; ++i) {
    swarm.world.sim.at(sim::seconds(8.0 + 9.0 * i),
                       [&mobile] { mobile.host->node->change_address(); });
  }
  ASSERT_TRUE(swarm.run_until_complete(mobile, 600.0));
  probe.detach();

  EXPECT_GE(mobile->stats().task_reinitiations, 1u);
  const metrics::TransferMatrix& m = probe.matrix();
  EXPECT_EQ(m.total_downloaded(mob_row), mobile->stats().payload_downloaded);
  EXPECT_EQ(m.total_uploaded(seed_row), seed->stats().payload_uploaded);
  // Everything the mobile got came from the seed's row, under however many
  // peer-ids the mobile used along the way.
  EXPECT_EQ(m.downloaded(mob_row, seed_row), m.total_downloaded(mob_row));
}

}  // namespace
}  // namespace wp2p::bt
