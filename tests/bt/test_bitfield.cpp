#include "bt/bitfield.hpp"

#include <gtest/gtest.h>

namespace wp2p::bt {
namespace {

TEST(Bitfield, StartsEmpty) {
  Bitfield bf{10};
  EXPECT_EQ(bf.size(), 10);
  EXPECT_EQ(bf.count(), 0);
  EXPECT_TRUE(bf.none());
  EXPECT_FALSE(bf.all());
}

TEST(Bitfield, SetAndTest) {
  Bitfield bf{10};
  bf.set(3);
  bf.set(9);
  EXPECT_TRUE(bf.test(3));
  EXPECT_TRUE(bf.test(9));
  EXPECT_FALSE(bf.test(4));
  EXPECT_EQ(bf.count(), 2);
}

TEST(Bitfield, SetIsIdempotent) {
  Bitfield bf{4};
  bf.set(1);
  bf.set(1);
  EXPECT_EQ(bf.count(), 1);
}

TEST(Bitfield, ResetClearsBit) {
  Bitfield bf{4};
  bf.set(2);
  bf.reset(2);
  bf.reset(2);
  EXPECT_FALSE(bf.test(2));
  EXPECT_EQ(bf.count(), 0);
}

TEST(Bitfield, SetAllAndAll) {
  Bitfield bf{17};  // crosses byte boundaries
  bf.set_all();
  EXPECT_TRUE(bf.all());
  EXPECT_EQ(bf.count(), 17);
}

TEST(Bitfield, FirstMissing) {
  Bitfield bf{5};
  EXPECT_EQ(bf.first_missing(), 0);
  bf.set(0);
  bf.set(1);
  bf.set(3);
  EXPECT_EQ(bf.first_missing(), 2);
  bf.set(2);
  bf.set(4);
  EXPECT_EQ(bf.first_missing(), -1);
}

TEST(Bitfield, PrefixLength) {
  Bitfield bf{6};
  EXPECT_EQ(bf.prefix_length(), 0);
  bf.set(0);
  bf.set(1);
  bf.set(4);
  EXPECT_EQ(bf.prefix_length(), 2);
  bf.set(2);
  bf.set(3);
  EXPECT_EQ(bf.prefix_length(), 5);
}

TEST(Bitfield, HasMissingPiece) {
  Bitfield peer{8}, mine{8};
  peer.set(3);
  EXPECT_TRUE(Bitfield::has_missing_piece(peer, mine));
  mine.set(3);
  EXPECT_FALSE(Bitfield::has_missing_piece(peer, mine));
  mine.set(5);  // we have more; peer still offers nothing new
  EXPECT_FALSE(Bitfield::has_missing_piece(peer, mine));
}

TEST(Bitfield, ByteSizeMatchesWireEncoding) {
  EXPECT_EQ(Bitfield{8}.byte_size(), 1);
  EXPECT_EQ(Bitfield{9}.byte_size(), 2);
  EXPECT_EQ(Bitfield{400}.byte_size(), 50);
  EXPECT_EQ(Bitfield{0}.byte_size(), 0);
}

TEST(Bitfield, ClearResets) {
  Bitfield bf{12};
  bf.set_all();
  bf.clear();
  EXPECT_TRUE(bf.none());
}


TEST(Bitfield, WordAccessorsExposePackedStorage) {
  Bitfield bf{130};  // 3 words, 2-bit tail
  ASSERT_EQ(bf.word_count(), 3);
  bf.set(0);
  bf.set(63);
  bf.set(64);
  bf.set(129);
  EXPECT_EQ(bf.word(0), (std::uint64_t{1} << 63) | 1u);
  EXPECT_EQ(bf.word(1), std::uint64_t{1});
  EXPECT_EQ(bf.word(2), std::uint64_t{1} << 1);
}

TEST(Bitfield, SetAllKeepsBitsPastSizeZero) {
  Bitfield bf{70};  // 6-bit tail in word 1
  bf.set_all();
  EXPECT_TRUE(bf.all());
  EXPECT_EQ(bf.word(1), (std::uint64_t{1} << 6) - 1);
  EXPECT_EQ(bf.first_missing(), -1);
}

}  // namespace
}  // namespace wp2p::bt
