// Client recovery layer: announce retry/backoff, corruption strikes and peer
// banning, and the post-timeout reconnect policy.
#include <gtest/gtest.h>

#include "exp/faults.hpp"
#include "exp/swarm.hpp"
#include "trace/invariant_checker.hpp"
#include "trace/recorder.hpp"

namespace wp2p::bt {
namespace {

using exp::Swarm;

Metainfo small_file(std::int64_t size = 1024 * 1024) {
  return Metainfo::create("recfile", size, 256 * 1024, "tracker", 77);
}

// An announce interval long enough that nothing periodic fires inside a
// test window: any tracker contact is attributable to the recovery layer.
ClientConfig quiet_config(std::uint16_t port = 6881) {
  ClientConfig c;
  c.listen_port = port;
  c.announce_interval = sim::minutes(60.0);
  return c;
}

TEST(Recovery, AnnounceRetryReachesTrackerAfterOutage) {
  Swarm swarm{71, small_file()};
  auto& client = swarm.add_wired("solo", true, quiet_config());
  swarm.tracker.set_reachable(false);
  swarm.start_all();
  // The kStarted announce fails; the backoff chain keeps dialing.
  swarm.run_for(60.0);
  EXPECT_EQ(swarm.tracker.swarm_size(swarm.meta.info_hash), 0u);
  EXPECT_GE(client->stats().announce_failures, 4u);
  EXPECT_GE(client->stats().announce_retries, 3u);
  // Once the tracker returns, the next retry (at most the 30 s cap away)
  // registers the client — no waiting for the hour-long periodic announce.
  swarm.tracker.set_reachable(true);
  swarm.run_for(35.0);
  EXPECT_EQ(swarm.tracker.swarm_size(swarm.meta.info_hash), 1u);
}

TEST(Recovery, WithoutRetryClientStaysDarkUntilPeriodicAnnounce) {
  Swarm swarm{72, small_file()};
  auto config = quiet_config();
  config.announce_retry = false;
  auto& client = swarm.add_wired("solo", true, config);
  swarm.tracker.set_reachable(false);
  swarm.start_all();
  swarm.run_for(60.0);
  swarm.tracker.set_reachable(true);
  swarm.run_for(35.0);
  // The naive client lost its one announce and will not try again for ~1 h.
  EXPECT_EQ(swarm.tracker.swarm_size(swarm.meta.info_hash), 0u);
  EXPECT_EQ(client->stats().announce_retries, 0u);
  EXPECT_EQ(client->stats().announce_failures, 1u);
}

TEST(Recovery, TrackerRecoveryMidChainSucceedsOnNextRetryAndResetsBackoff) {
  // Regression for the flapping tracker: recovery *between* two retries of a
  // grown backoff chain must let the very next retry register the client, and
  // a later outage must start a fresh chain from the initial base — the chain
  // state may not leak across an intervening success.
  trace::Recorder recorder{/*ring_capacity=*/256};
  trace::InvariantChecker checker;
  recorder.add_sink(&checker);
  Swarm swarm{79, small_file()};
  swarm.world.sim.set_tracer(&recorder);
  auto config = quiet_config();
  config.announce_interval = sim::seconds(15.0);  // the second outage is noticed
  auto& client = swarm.add_wired("solo", true, config);
  swarm.tracker.set_reachable(false);
  swarm.start_all();
  swarm.run_for(22.0);  // several retries in: base has doubled past the initial
  ASSERT_EQ(swarm.tracker.swarm_size(swarm.meta.info_hash), 0u);
  ASSERT_GE(client->stats().announce_retries, 2u);

  // The tracker flaps back up mid-chain: the pending retry (at most one grown
  // base away) succeeds without waiting for the periodic announce.
  swarm.tracker.set_reachable(true);
  swarm.run_for(17.0);
  ASSERT_EQ(swarm.tracker.swarm_size(swarm.meta.info_hash), 1u);

  // A second outage: the next failure must open a chain at the initial base.
  swarm.tracker.set_reachable(false);
  swarm.run_for(20.0);
  swarm.world.sim.set_tracer(nullptr);

  double grown_base = 0.0;      // largest base before the success
  bool saw_success = false;
  bool checked_fresh = false;   // first retry after the success
  for (const auto& ev : recorder.ring().events()) {
    if (ev.kind == trace::Kind::kBtAnnounce && ev.field("ok") > 0.5) {
      saw_success = true;
      continue;
    }
    if (ev.kind != trace::Kind::kBtAnnounceRetry) continue;
    if (!saw_success) {
      grown_base = std::max(grown_base, ev.field("base_s"));
    } else if (!checked_fresh) {
      checked_fresh = true;
      EXPECT_EQ(ev.field("attempt"), 1.0);
      EXPECT_EQ(ev.field("base_s"), 2.0);  // default announce_retry_initial
    }
  }
  EXPECT_GE(grown_base, 8.0);
  EXPECT_TRUE(saw_success);
  EXPECT_TRUE(checked_fresh);
  // The shrink back to the initial base is legal exactly because a successful
  // announce separated the chains — the backoff invariant stays clean.
  EXPECT_TRUE(checker.violations().empty())
      << trace::to_string(checker.violations().front());
}

TEST(Recovery, AnnounceBackoffDelaysAreCappedAndMonotone) {
  trace::Recorder recorder{/*ring_capacity=*/256};
  trace::InvariantChecker checker;
  recorder.add_sink(&checker);
  Swarm swarm{73, small_file()};
  swarm.world.sim.set_tracer(&recorder);
  swarm.add_wired("solo", true, quiet_config());
  swarm.tracker.set_reachable(false);
  swarm.start_all();
  swarm.run_for(180.0);
  swarm.world.sim.set_tracer(nullptr);

  // The checker audits the chain live (monotone bases, cap, jitter band).
  EXPECT_TRUE(checker.violations().empty())
      << trace::to_string(checker.violations().front());
  // And the raw events show the base actually climbing to the cap.
  double max_base = 0.0;
  int retries = 0;
  for (const auto& ev : recorder.ring().events()) {
    if (ev.kind != trace::Kind::kBtAnnounceRetry) continue;
    ++retries;
    max_base = std::max(max_base, ev.field("base_s"));
    EXPECT_LE(ev.field("base_s"), ev.field("cap_s") + 1e-9);
  }
  EXPECT_GE(retries, 5);
  EXPECT_DOUBLE_EQ(max_base, 30.0);  // default announce_retry_cap
}

TEST(Recovery, CorruptingSeedIsStruckBannedAndRoutedAround) {
  trace::Recorder recorder{/*ring_capacity=*/4};
  trace::InvariantChecker checker;
  recorder.add_sink(&checker);
  Swarm swarm{74, small_file(2 * 1024 * 1024)};
  swarm.world.sim.set_tracer(&recorder);
  auto config = quiet_config();
  config.announce_interval = sim::seconds(20.0);
  swarm.add_wired("clean", true, config);
  auto& venom = swarm.add_wired("venom", true, quiet_config(6882));
  auto& leech = swarm.add_wired("leech", false, quiet_config(6883));

  sim::FaultPlan plan;
  sim::FaultAction corrupt;
  corrupt.kind = sim::FaultKind::kCorrupt;
  corrupt.at = sim::seconds(0.5);
  corrupt.duration = sim::seconds(110.0);
  corrupt.magnitude = 0.5;
  corrupt.target = "venom";
  plan.actions.push_back(corrupt);
  auto injector = exp::bind_faults(swarm, plan);

  swarm.start_all();
  ASSERT_TRUE(swarm.run_until_complete(leech, 120.0));
  swarm.world.sim.set_tracer(nullptr);

  // The poisoner was detected, struck to the threshold, and banned.
  EXPECT_GE(leech->stats().corrupt_pieces, 3u);
  EXPECT_GE(leech->stats().peer_strikes, 3u);
  EXPECT_EQ(leech->stats().peers_banned, 1u);
  EXPECT_GT(leech->store().wasted_bytes(), 0);
  // Every corrupt piece was reset and cleanly re-downloaded.
  EXPECT_EQ(leech->store().bytes_completed(), swarm.meta.total_size);
  // No requests to the banned peer, every detection reset, backoff sane.
  EXPECT_TRUE(checker.violations().empty())
      << trace::to_string(checker.violations().front());
  (void)venom;
}

TEST(Recovery, BanDisabledKeepsStrikingAndTripsInvariant) {
  trace::Recorder recorder{/*ring_capacity=*/4};
  trace::InvariantChecker checker;
  recorder.add_sink(&checker);
  Swarm swarm{75, small_file()};
  swarm.world.sim.set_tracer(&recorder);
  swarm.add_wired("venom", true, quiet_config());
  auto config = quiet_config(6882);
  config.unsafe_no_peer_ban = true;
  auto& leech = swarm.add_wired("leech", false, config);

  sim::FaultPlan plan;
  sim::FaultAction corrupt;
  corrupt.kind = sim::FaultKind::kCorrupt;
  corrupt.at = sim::seconds(0.5);
  corrupt.duration = sim::seconds(58.0);
  corrupt.magnitude = 0.5;
  corrupt.target = "venom";
  plan.actions.push_back(corrupt);
  auto injector = exp::bind_faults(swarm, plan);

  swarm.start_all();
  swarm.run_for(60.0);
  swarm.world.sim.set_tracer(nullptr);

  // Only corrupt data on offer and no defense: strikes sail past the
  // threshold and the peer-ban rule flags the run.
  EXPECT_EQ(leech->stats().peers_banned, 0u);
  EXPECT_GT(leech->stats().peer_strikes, 3u);
  bool flagged = false;
  for (const auto& v : checker.violations()) flagged |= v.rule == "peer-ban";
  EXPECT_TRUE(flagged);
}

TEST(Recovery, ReconnectsAfterTcpTimeoutOnceRemoteReturns) {
  Swarm swarm{76, small_file(8 * 1024 * 1024)};
  auto config = quiet_config();
  // Fail fast: a few data RTOs kill the connection, short SYN ladder on
  // re-dials, snappy reconnect backoff.
  tcp::TcpParams fast_fail;
  fast_fail.max_data_retries = 3;
  fast_fail.max_syn_retries = 2;
  config.reconnect_initial = sim::seconds(2.0);
  // Frequent keep-alives give the dead link unACKed data to time out on.
  config.keepalive_interval = sim::seconds(5.0);
  auto& seed = swarm.add_wired("seed", true, quiet_config());
  // Throttle so the transfer is still mid-flight when the outage hits.
  seed->set_upload_limit(util::Rate::kBps(300.0));
  auto& leech = swarm.add_wired("leech", false, config, {}, fast_fail);
  swarm.start_all();
  swarm.run_for(5.0);
  ASSERT_EQ(leech->peer_count(), 1u);
  ASSERT_FALSE(leech->complete());

  // The seed's host silently vanishes mid-transfer (outage / hand-off): the
  // leech's connection dies by retransmission timeout.
  seed.host->node->set_connected(false);
  swarm.run_for(20.0);
  // The dead connection was torn down (kTimeout) and the backoff ladder is
  // re-dialing; a dial in flight may legitimately occupy a slot here.
  EXPECT_GE(leech->stats().reconnect_attempts, 1u);

  // Once the seed returns, a queued re-dial re-knits the swarm — with the
  // hour-long announce interval the tracker cannot be the discovery path.
  seed.host->node->set_connected(true);
  swarm.run_for(30.0);
  EXPECT_EQ(leech->peer_count(), 1u);
  ASSERT_TRUE(swarm.run_until_complete(leech, 200.0));
}

TEST(Recovery, ReconnectDisabledStaysDisconnected) {
  Swarm swarm{77, small_file(8 * 1024 * 1024)};
  auto config = quiet_config();
  config.reconnect = false;
  tcp::TcpParams fast_fail;
  fast_fail.max_data_retries = 3;
  fast_fail.max_syn_retries = 2;
  config.keepalive_interval = sim::seconds(5.0);
  auto seed_config = quiet_config();
  seed_config.reconnect = false;  // isolate: neither side may re-dial
  auto& seed = swarm.add_wired("seed", true, seed_config);
  seed->set_upload_limit(util::Rate::kBps(300.0));
  auto& leech = swarm.add_wired("leech", false, config, {}, fast_fail);
  swarm.start_all();
  swarm.run_for(5.0);
  ASSERT_EQ(leech->peer_count(), 1u);
  seed.host->node->set_connected(false);
  swarm.run_for(20.0);
  seed.host->node->set_connected(true);
  swarm.run_for(60.0);
  EXPECT_FALSE(leech->complete());
  // Nobody re-dials and no announce is due for an hour: still partitioned.
  EXPECT_EQ(leech->peer_count(), 0u);
  EXPECT_EQ(leech->stats().reconnect_attempts, 0u);
}

TEST(Recovery, DeadDialIsReapedByIdleTimeout) {
  // Regression: a dial to a peer that crashed after announcing must not hold
  // a connection slot forever — the handshake never completes, so the idle
  // timeout reaps it (and no reconnect chain starts for it).
  Swarm swarm{78, small_file()};
  auto config = quiet_config();
  config.idle_timeout = sim::seconds(20.0);
  auto& leech = swarm.add_wired("leech", false, config);

  // A ghost entry: an endpoint nothing listens on (the "crashed" peer).
  AnnounceRequest ghost;
  ghost.info_hash = swarm.meta.info_hash;
  ghost.endpoint = {net::IpAddr{9999}, 6881};
  ghost.peer_id = 777;
  ghost.event = AnnounceEvent::kStarted;
  swarm.tracker.announce(ghost, nullptr);

  swarm.start_all();
  swarm.run_for(5.0);
  // The dial is in flight (SYN retries), occupying a slot.
  EXPECT_EQ(leech->peer_count(), 1u);
  swarm.run_for(25.0);  // > idle_timeout
  EXPECT_EQ(leech->peer_count(), 0u);
  // A never-established dial must not enter the reconnect ladder.
  EXPECT_EQ(leech->stats().reconnect_attempts, 0u);
}

}  // namespace
}  // namespace wp2p::bt
