// End-to-end BitTorrent client behaviour on the simulated network: full
// downloads, piece exchange between leeches, tit-for-tat choking, rarest-first
// dispersal, seeding, mobility re-initiation, and identity retention.
#include <gtest/gtest.h>

#include "exp/swarm.hpp"

namespace wp2p::bt {
namespace {

using exp::Swarm;

Metainfo small_file(std::int64_t size = 2 * 1024 * 1024) {
  return Metainfo::create("testfile", size, 256 * 1024, "tracker", 1);
}

ClientConfig fast_config(std::uint16_t port = 6881) {
  ClientConfig c;
  c.listen_port = port;
  c.announce_interval = sim::seconds(30.0);
  return c;
}

TEST(ClientSwarm, LeechDownloadsFromSeed) {
  Swarm swarm{1, small_file()};
  auto& seed = swarm.add_wired("seed", true, fast_config());
  auto& leech = swarm.add_wired("leech", false, fast_config());
  swarm.start_all();
  ASSERT_TRUE(swarm.run_until_complete(leech, 300.0));
  EXPECT_EQ(leech->store().bytes_completed(), swarm.meta.total_size);
  EXPECT_EQ(seed->stats().payload_uploaded, swarm.meta.total_size);
  EXPECT_EQ(leech->stats().payload_downloaded, swarm.meta.total_size);
}

TEST(ClientSwarm, CompletedLeechBecomesSeedOnTracker) {
  Swarm swarm{2, small_file()};
  swarm.add_wired("seed", true, fast_config());
  auto& leech = swarm.add_wired("leech", false, fast_config());
  swarm.start_all();
  ASSERT_TRUE(swarm.run_until_complete(leech, 300.0));
  swarm.run_for(1.0);
  EXPECT_EQ(swarm.tracker.seed_count(swarm.meta.info_hash), 2u);
}

TEST(ClientSwarm, SecondLeechDownloadsFromFirst) {
  // Seed + two leeches: leeches must exchange pieces with each other, not
  // only with the seed (bi-directional data transfer, Section 3.2).
  Swarm swarm{3, small_file(4 * 1024 * 1024)};
  auto& seed = swarm.add_wired("seed", true, fast_config());
  // Throttle the seed so leech-to-leech exchange matters.
  seed->set_upload_limit(util::Rate::kBps(100));
  auto& l1 = swarm.add_wired("l1", false, fast_config());
  auto& l2 = swarm.add_wired("l2", false, fast_config());
  swarm.start_all();
  ASSERT_TRUE(swarm.run_until_complete(l1, 600.0));
  ASSERT_TRUE(swarm.run_until_complete(l2, 600.0));
  // Both leeches must have uploaded something: pure seed-feeding would leave
  // one of them at zero.
  EXPECT_GT(l1->stats().payload_uploaded, 0);
  EXPECT_GT(l2->stats().payload_uploaded, 0);
}

TEST(ClientSwarm, RarestFirstKeepsSeedEfficient) {
  // The point of rarest-first (Section 2.2): leeches fetch *distinct* pieces
  // from the bottleneck seed, so the bytes leaving the seed are mostly unique
  // pieces rather than duplicates.
  Swarm swarm{4, small_file(16 * 1024 * 1024)};
  auto& seed = swarm.add_wired("seed", true, fast_config());
  seed->set_upload_limit(util::Rate::kBps(200));
  Swarm::Member* leeches[3];
  for (int i = 0; i < 3; ++i) {
    leeches[i] = &swarm.add_wired("l" + std::to_string(i), false, fast_config());
  }
  swarm.start_all();
  swarm.run_for(60.0);
  Bitfield the_union{swarm.meta.piece_count()};
  for (auto* l : leeches) {
    const Bitfield& bf = (*l)->store().bitfield();
    for (int p = 0; p < bf.size(); ++p) {
      if (bf.test(p)) the_union.set(p);
    }
  }
  ASSERT_FALSE(the_union.all()) << "test must sample mid-download";
  const double distinct_bytes =
      static_cast<double>(the_union.count()) * static_cast<double>(swarm.meta.piece_length);
  const double seed_bytes = static_cast<double>(seed->stats().payload_uploaded);
  ASSERT_GT(seed_bytes, 0.0);
  // At least ~70% of the bytes the seed pushed were unique pieces.
  EXPECT_GT(distinct_bytes / seed_bytes, 0.7);
}

TEST(ClientSwarm, TitForTatRewardsUploader) {
  // Two leeches with complementary halves plus a choked-off seed: the leech
  // that uploads faster enjoys reciprocation. Here we verify the basic
  // reciprocity loop: both exchange and complete.
  Swarm swarm{5, small_file(2 * 1024 * 1024)};
  auto& l1 = swarm.add_wired("l1", false, fast_config());
  auto& l2 = swarm.add_wired("l2", false, fast_config());
  // Give each leech half of the pieces (complementary).
  const int n = swarm.meta.piece_count();
  for (int p = 0; p < n; ++p) {
    auto& store = const_cast<PieceStore&>((p % 2 == 0 ? l1 : l2)->store());
    store.mark_piece(p);
  }
  swarm.start_all();
  ASSERT_TRUE(swarm.run_until_complete(l1, 300.0));
  ASSERT_TRUE(swarm.run_until_complete(l2, 300.0));
  EXPECT_GT(l1->stats().payload_uploaded, 0);
  EXPECT_GT(l2->stats().payload_uploaded, 0);
}

TEST(ClientSwarm, UploadLimitIsRespected) {
  Swarm swarm{6, small_file(2 * 1024 * 1024)};
  auto& seed = swarm.add_wired("seed", true, fast_config());
  seed->set_upload_limit(util::Rate::kBps(50));
  auto& leech = swarm.add_wired("leech", false, fast_config());
  swarm.start_all();
  swarm.run_for(20.0);
  // At 50 KB/s at most ~1 MB + burst can move in 20 s, so the 2 MiB download
  // cannot be done; an unthrottled seed would finish it in a few seconds.
  EXPECT_LE(seed->stats().payload_uploaded, static_cast<std::int64_t>(50.0 * 1000 * 21) + 64 * 1024);
  EXPECT_GT(seed->stats().payload_uploaded, 0);
  EXPECT_FALSE(leech->complete());
  ASSERT_TRUE(swarm.run_until_complete(leech, 300.0));
}

TEST(ClientSwarm, SequentialSelectorDownloadsInOrder) {
  auto config = fast_config();
  config.selector = SelectorKind::kSequential;
  Swarm swarm{7, small_file()};
  swarm.add_wired("seed", true, fast_config());
  auto& leech = swarm.add_wired("leech", false, config);
  std::vector<int> completed;
  leech->on_piece_complete = [&](int piece) { completed.push_back(piece); };
  swarm.start_all();
  ASSERT_TRUE(swarm.run_until_complete(leech, 300.0));
  // With a single upstream peer the completion order must be sorted.
  for (std::size_t i = 1; i < completed.size(); ++i) {
    EXPECT_LT(completed[i - 1], completed[i]);
  }
  EXPECT_EQ(leech->store().contiguous_bytes(), swarm.meta.total_size);
}

TEST(ClientSwarm, SnubDetectionFlagsStalledPeerAndDeliveryClearsIt) {
  // A seed throttled to ~50 B/s takes minutes per block: the leech's requests
  // expire, periodic_maintenance snubs the peer and requeues the blocks, and
  // the continued stall accumulates stall-audit scores. Un-throttling the
  // seed delivers a block, which clears the snub.
  Swarm swarm{40, small_file()};
  auto& seed = swarm.add_wired("seed", true, fast_config());
  auto& leech = swarm.add_wired("leech", false, fast_config(6882));
  seed->set_upload_limit(util::Rate::kBps(0.05));
  swarm.start_all();

  // The first optimistic unchoke lands on a maintenance tick, so give the
  // leech a tick or two to get its pipeline out.
  swarm.run_for(25.0);
  PeerConnection* conn = leech->peer_by_id(seed->peer_id());
  ASSERT_NE(conn, nullptr);
  EXPECT_FALSE(conn->snubbed);
  EXPECT_GT(conn->outstanding.size(), 0u);

  // First requests expire after request_timeout (60 s); the next maintenance
  // pass marks the peer snubbed and requeues the blocks.
  swarm.run_for(75.0);
  conn = leech->peer_by_id(seed->peer_id());
  ASSERT_NE(conn, nullptr);
  EXPECT_TRUE(conn->snubbed);
  EXPECT_GT(leech->stats().blocks_requeued, 0u);

  // Six more consecutive snubbed maintenance ticks score a stall audit.
  swarm.run_for(80.0);
  EXPECT_GE(leech->stats().stall_audits, 1u);
  EXPECT_LT(leech->stats().peers_banned, 1u);  // audits alone never reach a ban here

  // Delivery resets the snub: the first block through clears the flag.
  seed->set_upload_limit(util::Rate::kBps(1000.0));
  ASSERT_TRUE(swarm.run_until_complete(leech, 120.0));
  conn = leech->peer_by_id(seed->peer_id());
  if (conn != nullptr) {
    EXPECT_FALSE(conn->snubbed);
  }
}

TEST(ClientSwarm, EndgameDuplicatesStragglersToOtherPeers) {
  // Two seeds, one nearly dead, and request timeouts pushed out of reach:
  // the blocks pipelined to the dead seed can only be rescued by end-game
  // duplication to the live seed.
  Swarm swarm{41, small_file(4 * 1024 * 1024)};
  auto& fast = swarm.add_wired("fast", true, fast_config());
  fast->set_upload_limit(util::Rate::kBps(200.0));
  auto& slow = swarm.add_wired("slow", true, fast_config(6882));
  slow->set_upload_limit(util::Rate::kBps(0.05));
  auto cfg = fast_config(6883);
  cfg.request_timeout = sim::minutes(60.0);
  auto& leech = swarm.add_wired("leech", false, cfg);
  swarm.start_all();

  ASSERT_TRUE(swarm.run_until_complete(leech, 180.0));
  // Every duplicate pinned at the dead seed was cancelled as the live copy
  // landed — nothing is left outstanding there.
  PeerConnection* conn = leech->peer_by_id(slow->peer_id());
  if (conn != nullptr) {
    EXPECT_TRUE(conn->outstanding.empty());
  }
}

TEST(ClientSwarm, WithoutEndgameStragglersStayPinned) {
  // The control for the test above: same dead seed, endgame disabled. The
  // blocks pipelined to it are never duplicated and the download cannot
  // finish inside the window.
  Swarm swarm{41, small_file(4 * 1024 * 1024)};
  auto& fast = swarm.add_wired("fast", true, fast_config());
  fast->set_upload_limit(util::Rate::kBps(200.0));
  auto& slow = swarm.add_wired("slow", true, fast_config(6882));
  slow->set_upload_limit(util::Rate::kBps(0.05));
  auto cfg = fast_config(6883);
  cfg.request_timeout = sim::minutes(60.0);
  cfg.endgame_block_threshold = 0;
  auto& leech = swarm.add_wired("leech", false, cfg);
  swarm.start_all();

  swarm.run_for(180.0);
  EXPECT_FALSE(leech->complete());
  PeerConnection* conn = leech->peer_by_id(slow->peer_id());
  ASSERT_NE(conn, nullptr);
  EXPECT_GT(conn->outstanding.size(), 0u);
}

TEST(ClientSwarm, AddressChangeReinitiatesTask) {
  Swarm swarm{8, small_file(8 * 1024 * 1024)};
  auto& seed = swarm.add_wired("seed", true, fast_config());
  seed->set_upload_limit(util::Rate::kBps(300));
  auto& leech = swarm.add_wired("leech", false, fast_config());
  swarm.start_all();
  swarm.run_for(20.0);
  const PeerId old_id = leech->peer_id();
  const std::int64_t before = leech->stats().payload_downloaded;
  EXPECT_GT(before, 0);
  leech.host->node->change_address();
  swarm.run_for(30.0);  // leech_reinit_delay is 5 s; give it time to resume
  EXPECT_NE(leech->peer_id(), old_id);  // default client regenerates its id
  EXPECT_EQ(leech->stats().task_reinitiations, 1u);
  EXPECT_GT(leech->stats().payload_downloaded, before);  // download resumed
}

TEST(ClientSwarm, RetainPeerIdKeepsIdentityAcrossHandoffs) {
  auto config = fast_config();
  config.retain_peer_id = true;
  Swarm swarm{9, small_file(8 * 1024 * 1024)};
  swarm.add_wired("seed", true, fast_config());
  auto& leech = swarm.add_wired("leech", false, config);
  swarm.start_all();
  swarm.run_for(10.0);
  const PeerId id = leech->peer_id();
  leech.host->node->change_address();
  swarm.run_for(30.0);
  EXPECT_EQ(leech->peer_id(), id);
}

TEST(ClientSwarm, RoleReversalReconnectsInstantly) {
  auto rr = fast_config();
  rr.role_reversal = true;
  rr.retain_peer_id = true;
  Swarm swarm{10, small_file(8 * 1024 * 1024)};
  auto& seed = swarm.add_wired("seed", true, fast_config());
  seed->set_upload_limit(util::Rate::kBps(300));
  auto& leech = swarm.add_wireless("mobile", false, rr);
  swarm.start_all();
  swarm.run_for(20.0);
  bool reinitiated = false;
  leech->on_reinitiated = [&] { reinitiated = true; };
  leech.host->node->change_address();
  EXPECT_TRUE(reinitiated);  // RR acts synchronously with the hand-off
  swarm.run_for(2.0);
  EXPECT_GT(leech->peer_count(), 0u);  // reconnected without waiting
}

TEST(ClientSwarm, SeedsDoNotConnectToEachOther) {
  Swarm swarm{11, small_file()};
  auto& s1 = swarm.add_wired("s1", true, fast_config());
  auto& s2 = swarm.add_wired("s2", true, fast_config(6882));
  swarm.start_all();
  swarm.run_for(60.0);
  EXPECT_EQ(s1->peer_count(), 0u);
  EXPECT_EQ(s2->peer_count(), 0u);
}

TEST(ClientSwarm, StopAnnouncesStopped) {
  Swarm swarm{12, small_file()};
  auto& seed = swarm.add_wired("seed", true, fast_config());
  swarm.start_all();
  swarm.run_for(5.0);
  EXPECT_EQ(swarm.tracker.swarm_size(swarm.meta.info_hash), 1u);
  seed->stop();
  swarm.run_for(5.0);
  EXPECT_EQ(swarm.tracker.swarm_size(swarm.meta.info_hash), 0u);
  EXPECT_EQ(seed->peer_count(), 0u);
}

TEST(ClientSwarm, OnCompleteFires) {
  Swarm swarm{13, small_file()};
  swarm.add_wired("seed", true, fast_config());
  auto& leech = swarm.add_wired("leech", false, fast_config());
  bool completed = false;
  leech->on_complete = [&] { completed = true; };
  swarm.start_all();
  ASSERT_TRUE(swarm.run_until_complete(leech, 300.0));
  EXPECT_TRUE(completed);
}

TEST(ClientSwarm, DownloadSurvivesSeedDeparture) {
  // The leech gets half the file, the seed leaves, a second seed joins late.
  Swarm swarm{14, small_file(4 * 1024 * 1024)};
  auto& seed = swarm.add_wired("seed", true, fast_config());
  seed->set_upload_limit(util::Rate::kBps(400));
  auto& leech = swarm.add_wired("leech", false, fast_config());
  swarm.start_all();
  swarm.run_for(5.0);
  seed->stop();
  swarm.run_for(10.0);
  EXPECT_FALSE(leech->complete());
  auto& late_seed = swarm.add_wired("late", true, fast_config(6883));
  late_seed.client->start();
  ASSERT_TRUE(swarm.run_until_complete(leech, 600.0));
}

TEST(ClientSwarm, WirelessLeechCompletes) {
  Swarm swarm{15, small_file()};
  swarm.add_wired("seed", true, fast_config());
  net::WirelessParams wless;
  wless.bit_error_rate = 1e-6;
  auto& leech = swarm.add_wireless("mobile", false, fast_config(), wless);
  swarm.start_all();
  ASSERT_TRUE(swarm.run_until_complete(leech, 600.0));
}

}  // namespace
}  // namespace wp2p::bt
