#include "bt/piece_store.hpp"

#include <gtest/gtest.h>

namespace wp2p::bt {
namespace {

struct PieceStoreTest : ::testing::Test {
  // 3 pieces of 256 KiB minus a short tail: 600 KiB total.
  Metainfo meta = Metainfo::create("f", 600 * 1024, 256 * 1024);
  PieceStore store{meta};
};

TEST_F(PieceStoreTest, Geometry) {
  EXPECT_EQ(store.piece_count(), 3);
  EXPECT_EQ(store.blocks_in_piece(0), 16);  // 256 KiB / 16 KiB
  EXPECT_EQ(store.blocks_in_piece(2), 6);   // 88 KiB tail -> 5 full + 1 short
  EXPECT_EQ(store.block_size(0, 0), 16 * 1024);
  EXPECT_EQ(store.block_size(2, 5), 88 * 1024 - 5 * 16 * 1024);
}

TEST_F(PieceStoreTest, MarkBlockAccumulates) {
  EXPECT_EQ(store.mark_block(0, 0), BlockResult::kAccepted);
  EXPECT_TRUE(store.has_block(0, 0));
  EXPECT_FALSE(store.has_block(0, 1));
  EXPECT_FALSE(store.has_piece(0));
  EXPECT_EQ(store.bytes_completed(), 16 * 1024);
}

TEST_F(PieceStoreTest, CompletingAllBlocksCompletesPiece) {
  for (int b = 0; b < 15; ++b) EXPECT_EQ(store.mark_block(0, b), BlockResult::kAccepted);
  EXPECT_EQ(store.mark_block(0, 15), BlockResult::kPieceComplete);
  EXPECT_TRUE(store.has_piece(0));
  EXPECT_TRUE(store.bitfield().test(0));
}

TEST_F(PieceStoreTest, DuplicateBlocksIgnored) {
  store.mark_block(0, 0);
  EXPECT_EQ(store.mark_block(0, 0), BlockResult::kDuplicate);
  EXPECT_EQ(store.bytes_completed(), 16 * 1024);
}

TEST_F(PieceStoreTest, DuplicateBlocksCountAsWastedBytes) {
  EXPECT_EQ(store.wasted_bytes(), 0);
  store.mark_block(0, 0);
  store.mark_block(0, 0);  // duplicate of an in-progress block
  EXPECT_EQ(store.wasted_bytes(), 16 * 1024);
  for (int b = 0; b < store.blocks_in_piece(2); ++b) store.mark_block(2, b);
  EXPECT_EQ(store.mark_block(2, 5), BlockResult::kDuplicate);  // finished piece
  EXPECT_EQ(store.wasted_bytes(), 16 * 1024 + store.block_size(2, 5));
  EXPECT_EQ(store.bytes_completed(), 16 * 1024 + meta.piece_size(2));
}

TEST_F(PieceStoreTest, CorruptBlockFailsVerificationAndResetsPiece) {
  for (int b = 0; b < 15; ++b) store.mark_block(0, b);
  EXPECT_EQ(store.mark_block(0, 15, /*corrupt=*/true), BlockResult::kPieceCorrupt);
  EXPECT_FALSE(store.has_piece(0));
  EXPECT_FALSE(store.has_block(0, 0));  // every block discarded
  EXPECT_EQ(store.bytes_completed(), 0);
  EXPECT_EQ(store.wasted_bytes(), 256 * 1024);
  EXPECT_EQ(store.corrupt_pieces_detected(), 1);
  EXPECT_EQ(store.last_corrupt_blocks(), (std::vector<int>{15}));
  // The piece is fully re-downloadable and verifies when clean.
  EXPECT_EQ(store.missing_blocks(0).size(), 16u);
  for (int b = 0; b < 15; ++b) EXPECT_EQ(store.mark_block(0, b), BlockResult::kAccepted);
  EXPECT_EQ(store.mark_block(0, 15), BlockResult::kPieceComplete);
  EXPECT_TRUE(store.has_piece(0));
  EXPECT_EQ(store.bytes_completed(), 256 * 1024);
}

TEST_F(PieceStoreTest, CorruptAttributionListsEveryDamagedBlock) {
  store.mark_block(0, 3, /*corrupt=*/true);
  store.mark_block(0, 7, /*corrupt=*/true);
  for (int b = 0; b < 16; ++b) store.mark_block(0, b);
  // The final clean blocks complete the piece; verification still fails.
  EXPECT_EQ(store.corrupt_pieces_detected(), 1);
  EXPECT_EQ(store.last_corrupt_blocks(), (std::vector<int>{3, 7}));
}

TEST_F(PieceStoreTest, MarkPieceCountsOnlyMissingBytes) {
  store.mark_block(1, 0);
  store.mark_piece(1);
  EXPECT_EQ(store.bytes_completed(), 256 * 1024);
  store.mark_piece(1);  // idempotent
  EXPECT_EQ(store.bytes_completed(), 256 * 1024);
}

TEST_F(PieceStoreTest, MarkAllMakesSeed) {
  store.mark_all();
  EXPECT_TRUE(store.complete());
  EXPECT_EQ(store.bytes_completed(), meta.total_size);
  EXPECT_DOUBLE_EQ(store.completed_fraction(), 1.0);
}

TEST_F(PieceStoreTest, ContiguousBytesTracksPrefix) {
  EXPECT_EQ(store.contiguous_bytes(), 0);
  store.mark_piece(1);  // a hole at piece 0 blocks the prefix
  EXPECT_EQ(store.contiguous_bytes(), 0);
  store.mark_piece(0);
  EXPECT_EQ(store.contiguous_bytes(), 512 * 1024);
  store.mark_piece(2);
  EXPECT_EQ(store.contiguous_bytes(), meta.total_size);
}

TEST_F(PieceStoreTest, ContiguousBytesIncludesInOrderBlocksOfNextPiece) {
  store.mark_piece(0);
  store.mark_block(1, 0);
  store.mark_block(1, 1);
  store.mark_block(1, 3);  // out of order: not counted
  EXPECT_EQ(store.contiguous_bytes(), 256 * 1024 + 2 * 16 * 1024);
}

TEST_F(PieceStoreTest, MissingBlocksList) {
  store.mark_block(2, 1);
  auto missing = store.missing_blocks(2);
  EXPECT_EQ(missing, (std::vector<int>{0, 2, 3, 4, 5}));
  store.mark_piece(2);
  EXPECT_TRUE(store.missing_blocks(2).empty());
}

TEST_F(PieceStoreTest, CompletedFractionMonotonic) {
  double last = 0.0;
  for (int p = 0; p < 3; ++p) {
    for (int b = 0; b < store.blocks_in_piece(p); ++b) {
      store.mark_block(p, b);
      EXPECT_GE(store.completed_fraction(), last);
      last = store.completed_fraction();
    }
  }
  EXPECT_DOUBLE_EQ(last, 1.0);
}

}  // namespace
}  // namespace wp2p::bt
