// bt::wire BEP 3 encoding: byte-level round trips and malformed-input
// rejection for every message type.
#include <gtest/gtest.h>

#include "bt/wire.hpp"
#include "sim/rng.hpp"

namespace wp2p {
namespace {

using bt::MsgType;
using bt::WireMessage;

void expect_round_trip(const WireMessage& msg, int bitfield_bits = -1) {
  const std::string bytes = bt::encode(msg);
  EXPECT_EQ(static_cast<std::int64_t>(bytes.size()), msg.wire_size())
      << bt::to_string(msg.type);
  const auto decoded = bt::decode(bytes, bitfield_bits);
  ASSERT_TRUE(decoded.has_value()) << bt::to_string(msg.type);
  EXPECT_EQ(decoded->type, msg.type);
  EXPECT_EQ(decoded->info_hash, msg.info_hash);
  EXPECT_EQ(decoded->peer_id, msg.peer_id);
  EXPECT_EQ(decoded->piece, msg.piece);
  EXPECT_EQ(decoded->offset, msg.offset);
  EXPECT_EQ(decoded->length, msg.length);
  EXPECT_EQ(decoded->bitfield, msg.bitfield);
}

TEST(Wire, HandshakeRoundTripsWithFullIdentity) {
  expect_round_trip(*WireMessage::handshake(0xdeadbeefcafef00dULL, 0x0123456789abcdefULL));
  // Extreme values survive the 20-byte field packing.
  expect_round_trip(*WireMessage::handshake(0, 0));
  expect_round_trip(*WireMessage::handshake(~0ULL, 1));
}

TEST(Wire, HandshakeWireFormat) {
  const std::string bytes = bt::encode(*WireMessage::handshake(7, 9));
  ASSERT_EQ(bytes.size(), 68u);
  EXPECT_EQ(bytes[0], 19);
  EXPECT_EQ(bytes.substr(1, 19), "BitTorrent protocol");
  for (int i = 20; i < 28; ++i) EXPECT_EQ(bytes[static_cast<std::size_t>(i)], 0) << i;
  EXPECT_EQ(bytes[47], 7);  // info-hash value in the last byte of its field
  EXPECT_EQ(bytes[67], 9);  // peer-id likewise
}

TEST(Wire, HandshakeCarriesListenPortBehindExtensionBit) {
  const std::string bytes = bt::encode(*WireMessage::handshake(7, 9, /*listen_port=*/6881));
  ASSERT_EQ(bytes.size(), 68u);
  EXPECT_NE(bytes[25], 0);  // extension bit set in reserved[5]
  const auto decoded = bt::decode(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->listen_port, 6881);
  EXPECT_EQ(decoded->peer_id, 9u);

  // Without a listen port the reserved bytes stay all-zero (plain BEP 3) and
  // decode to port 0.
  const std::string plain = bt::encode(*WireMessage::handshake(7, 9));
  for (int i = 20; i < 28; ++i) EXPECT_EQ(plain[static_cast<std::size_t>(i)], 0) << i;
  const auto plain_decoded = bt::decode(plain);
  ASSERT_TRUE(plain_decoded.has_value());
  EXPECT_EQ(plain_decoded->listen_port, 0);
}

TEST(Wire, PexRoundTripsAddedAndDropped) {
  std::vector<bt::PexPeer> added{
      {net::Endpoint{net::IpAddr{0x0a000001}, 6881}, 0x1122334455667788ULL},
      {net::Endpoint{net::IpAddr{0x0a000002}, 6882}, 1},
  };
  std::vector<net::Endpoint> dropped{
      net::Endpoint{net::IpAddr{0x0a000003}, 6883},
  };
  const auto msg = WireMessage::pex(added, dropped);
  const std::string bytes = bt::encode(*msg);
  EXPECT_EQ(static_cast<std::int64_t>(bytes.size()), msg->wire_size());
  const auto decoded = bt::decode(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, MsgType::kPex);
  EXPECT_EQ(decoded->pex_added, added);
  EXPECT_EQ(decoded->pex_dropped, dropped);

  // Empty deltas are legal (heartbeat-less: the client just skips sending).
  const auto empty = bt::decode(bt::encode(*WireMessage::pex({}, {})));
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->pex_added.empty());
  EXPECT_TRUE(empty->pex_dropped.empty());
}

TEST(Wire, PexDecodeRejectsMalformedBodies) {
  const std::string good = bt::encode(*WireMessage::pex(
      {{net::Endpoint{net::IpAddr{0x0a000001}, 6881}, 42}}, {}));
  // Truncated entry payload.
  EXPECT_FALSE(bt::decode(good.substr(0, good.size() - 1)));
  // Counts inflated past the actual body.
  std::string inflated = good;
  inflated[7] = 2;  // added count low byte (body: ext-id, u16 added, u16 dropped)
  EXPECT_FALSE(bt::decode(inflated));
  // Unknown extension id inside the extended envelope.
  std::string bad_ext = good;
  bad_ext[5] = 7;
  EXPECT_FALSE(bt::decode(bad_ext));
}

TEST(Wire, ControlMessagesRoundTrip) {
  for (MsgType type : {MsgType::kKeepAlive, MsgType::kChoke, MsgType::kUnchoke,
                       MsgType::kInterested, MsgType::kNotInterested}) {
    expect_round_trip(*WireMessage::simple(type));
  }
}

TEST(Wire, HaveRequestPieceCancelRoundTrip) {
  expect_round_trip(*WireMessage::have(42));
  expect_round_trip(*WireMessage::request(3, 16384, 16384));
  expect_round_trip(*WireMessage::cancel(3, 32768, 16384));
  expect_round_trip(*WireMessage::piece_msg(9, 49152, 16384));
  expect_round_trip(*WireMessage::piece_msg(0, 0, 0));  // empty payload
}

TEST(Wire, RandomBitfieldsRoundTrip) {
  sim::Rng rng{2024};
  for (int trial = 0; trial < 50; ++trial) {
    const int bits = static_cast<int>(rng.range(1, 400));
    bt::Bitfield bf{bits};
    for (int i = 0; i < bits; ++i) {
      if (rng.bernoulli(0.5)) bf.set(i);
    }
    expect_round_trip(*WireMessage::bitfield_msg(bf), bits);
  }
  // Without a bit-count hint the decoder assumes 8 bits per body byte, so
  // only byte-aligned sizes round trip hint-free.
  bt::Bitfield aligned{16};
  aligned.set(0);
  aligned.set(15);
  expect_round_trip(*WireMessage::bitfield_msg(aligned));
}

TEST(Wire, WireSizeMatchesEncodedLengthForAllTypes) {
  std::vector<std::shared_ptr<const WireMessage>> msgs{
      WireMessage::handshake(1, 2),
      WireMessage::simple(MsgType::kKeepAlive),
      WireMessage::simple(MsgType::kChoke),
      WireMessage::have(5),
      WireMessage::bitfield_msg(bt::Bitfield{13}),
      WireMessage::request(1, 0, 16384),
      WireMessage::cancel(1, 0, 16384),
      WireMessage::piece_msg(1, 0, 16384),
  };
  for (const auto& m : msgs) {
    EXPECT_EQ(static_cast<std::int64_t>(bt::encode(*m).size()), m->wire_size())
        << bt::to_string(m->type);
  }
}

TEST(Wire, DecodeRejectsMalformedInput) {
  EXPECT_FALSE(bt::decode(""));
  EXPECT_FALSE(bt::decode("\x00\x00\x00"));           // truncated length prefix
  EXPECT_FALSE(bt::decode(std::string{"\x00\x00\x00\x05", 4}));  // body missing
  // Length prefix longer than the body.
  std::string have = bt::encode(*WireMessage::have(1));
  EXPECT_FALSE(bt::decode(have.substr(0, have.size() - 1)));
  // Trailing garbage.
  EXPECT_FALSE(bt::decode(have + "x"));
  // Unknown message id.
  std::string unknown{"\x00\x00\x00\x01", 4};
  unknown.push_back(99);
  EXPECT_FALSE(bt::decode(unknown));
  // Handshake with corrupted magic.
  std::string hs = bt::encode(*WireMessage::handshake(1, 2));
  hs[5] = 'X';
  EXPECT_FALSE(bt::decode(hs));
  // Handshake truncated.
  EXPECT_FALSE(bt::decode(hs.substr(0, 60)));
  // Piece body shorter than its fixed header.
  std::string piece{"\x00\x00\x00\x05", 4};
  piece.push_back(7);
  piece += std::string{"\x00\x00\x00\x01", 4};
  EXPECT_FALSE(bt::decode(piece));
}

TEST(Wire, DecodeRejectsOversizedDeclaredBody) {
  // A length prefix declaring a body over kMaxFrameBody is hostile no matter
  // what follows: with the body absent (a would-be allocation bomb) and with
  // the full body present (id 5 = bitfield, which has no intrinsic size cap
  // of its own, so only the frame cap can reject it).
  const auto declared = static_cast<std::uint32_t>(bt::kMaxFrameBody) + 1;
  std::string frame;
  frame.push_back(static_cast<char>(declared >> 24));
  frame.push_back(static_cast<char>(declared >> 16));
  frame.push_back(static_cast<char>(declared >> 8));
  frame.push_back(static_cast<char>(declared));
  EXPECT_FALSE(bt::decode(frame));
  std::string with_body = frame;
  with_body.push_back(5);  // bitfield id
  with_body.append(static_cast<std::size_t>(declared) - 1, '\0');
  EXPECT_FALSE(bt::decode(with_body));
}

TEST(Wire, DecodeRejectsPexOverEntryCap) {
  std::vector<bt::PexPeer> added;
  for (std::size_t i = 0; i < bt::kMaxPexEntries + 1; ++i) {
    added.push_back({net::Endpoint{net::IpAddr{static_cast<std::uint32_t>(i + 1)},
                                   static_cast<std::uint16_t>(1024 + i % 60000)},
                     i + 1});
  }
  EXPECT_FALSE(bt::decode(bt::encode(*WireMessage::pex(added, {}))));
  // At the cap exactly the message is still legal.
  added.pop_back();
  EXPECT_TRUE(bt::decode(bt::encode(*WireMessage::pex(added, {}))));
}

TEST(Wire, MalformedReasonFlagsStructViolations) {
  const auto meta = bt::Metainfo::create("t", 1 << 20, 256 * 1024, "tr", 1);
  ASSERT_EQ(meta.piece_count(), 4);

  EXPECT_EQ(bt::malformed_reason(*WireMessage::have(0), meta), nullptr);
  EXPECT_NE(bt::malformed_reason(*WireMessage::have(4), meta), nullptr);
  EXPECT_NE(bt::malformed_reason(*WireMessage::have(-1), meta), nullptr);

  bt::Bitfield right{4};
  bt::Bitfield wrong{5};
  EXPECT_EQ(bt::malformed_reason(*WireMessage::bitfield_msg(right), meta), nullptr);
  EXPECT_NE(bt::malformed_reason(*WireMessage::bitfield_msg(wrong), meta), nullptr);

  EXPECT_EQ(bt::malformed_reason(*WireMessage::request(0, 0, 16384), meta), nullptr);
  EXPECT_NE(bt::malformed_reason(*WireMessage::request(0, 0, 0), meta), nullptr);
  EXPECT_NE(bt::malformed_reason(
                *WireMessage::request(0, 0,
                                      static_cast<int>(bt::kMaxRequestLength) + 1),
                meta),
            nullptr);
  EXPECT_NE(bt::malformed_reason(*WireMessage::request(0, 255 * 1024, 16384), meta),
            nullptr);
  EXPECT_NE(bt::malformed_reason(*WireMessage::request(7, 0, 16384), meta), nullptr);

  EXPECT_EQ(bt::malformed_reason(*WireMessage::piece_msg(0, 0, 16384), meta), nullptr);
  EXPECT_NE(bt::malformed_reason(*WireMessage::piece_msg(0, 0, 2 << 20), meta), nullptr);
  EXPECT_NE(bt::malformed_reason(*WireMessage::piece_msg(9, 0, 16384), meta), nullptr);
}

TEST(Wire, DecodeRejectsBadBitfields) {
  bt::Bitfield bf{10};
  bf.set(3);
  const std::string bytes = bt::encode(*WireMessage::bitfield_msg(bf));
  // Hint disagrees with the body size.
  EXPECT_FALSE(bt::decode(bytes, 100));
  // Spare bits beyond the hinted size must be zero.
  std::string tampered = bytes;
  tampered.back() = static_cast<char>(0xff);
  EXPECT_FALSE(bt::decode(tampered, 10));
}

}  // namespace
}  // namespace wp2p
