#include "bt/selector.hpp"

#include <gtest/gtest.h>

#include <map>

namespace wp2p::bt {
namespace {

struct SelectorTest : ::testing::Test {
  sim::Rng rng{11};
  std::vector<int> availability;

  SelectionContext ctx(const std::vector<int>& candidates, double fraction = 0.0) {
    return SelectionContext{candidates, availability, fraction, 0, rng};
  }
};

TEST_F(SelectorTest, RarestFirstPicksMinimumAvailability) {
  availability = {5, 1, 3, 2};
  RarestFirstSelector sel;
  std::vector<int> candidates{0, 1, 2, 3};
  EXPECT_EQ(sel.pick(ctx(candidates)), 1);
}

TEST_F(SelectorTest, RarestFirstRespectsCandidateSet) {
  availability = {0, 9, 3, 2};
  RarestFirstSelector sel;
  std::vector<int> candidates{1, 2};  // piece 0 is not offered
  EXPECT_EQ(sel.pick(ctx(candidates)), 2);
}

TEST_F(SelectorTest, RarestFirstBreaksTiesUniformly) {
  availability = {1, 1, 1, 1};
  RarestFirstSelector sel;
  std::vector<int> candidates{0, 1, 2, 3};
  std::map<int, int> histogram;
  for (int i = 0; i < 4000; ++i) ++histogram[sel.pick(ctx(candidates))];
  for (int p = 0; p < 4; ++p) {
    EXPECT_GT(histogram[p], 800) << "piece " << p;  // ~1000 expected each
  }
}

TEST_F(SelectorTest, SequentialPicksLowestIndex) {
  availability = {1, 1, 1, 1, 1};
  SequentialSelector sel;
  std::vector<int> candidates{4, 2, 3};
  EXPECT_EQ(sel.pick(ctx(candidates)), 2);
}

TEST_F(SelectorTest, RandomCoversAllCandidates) {
  availability = std::vector<int>(8, 1);
  RandomSelector sel;
  std::vector<int> candidates{1, 3, 5, 7};
  std::map<int, int> histogram;
  for (int i = 0; i < 4000; ++i) ++histogram[sel.pick(ctx(candidates))];
  EXPECT_EQ(histogram.size(), 4u);
  for (auto [piece, hits] : histogram) EXPECT_GT(hits, 800);
}

// Property sweep: every selector must return a member of the candidate set.
class SelectorContract : public ::testing::TestWithParam<int> {};

TEST_P(SelectorContract, AlwaysPicksFromCandidates) {
  sim::Rng rng{static_cast<std::uint64_t>(GetParam())};
  std::unique_ptr<PieceSelector> selectors[] = {
      std::make_unique<RarestFirstSelector>(),
      std::make_unique<SequentialSelector>(),
      std::make_unique<RandomSelector>(),
  };
  std::vector<int> availability(64);
  for (auto& a : availability) a = static_cast<int>(rng.below(10));
  for (int round = 0; round < 100; ++round) {
    std::vector<int> candidates;
    for (int p = 0; p < 64; ++p) {
      if (rng.bernoulli(0.3)) candidates.push_back(p);
    }
    if (candidates.empty()) continue;
    for (auto& sel : selectors) {
      SelectionContext ctx{candidates, availability, rng.uniform(), 0, rng};
      const int pick = sel->pick(ctx);
      EXPECT_NE(std::find(candidates.begin(), candidates.end(), pick), candidates.end())
          << sel->name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SelectorContract, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace wp2p::bt
