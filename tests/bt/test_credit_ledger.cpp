#include "bt/credit_ledger.hpp"

#include <gtest/gtest.h>

namespace wp2p::bt {
namespace {

TEST(CreditLedger, UnknownPeerHasZeroCredit) {
  CreditLedger ledger;
  EXPECT_DOUBLE_EQ(ledger.credit(42, sim::seconds(100.0)), 0.0);
}

TEST(CreditLedger, AccumulatesBytes) {
  CreditLedger ledger;
  ledger.add(1, 0, 1000);
  ledger.add(1, 0, 500);
  EXPECT_DOUBLE_EQ(ledger.credit(1, 0), 1500.0);
}

TEST(CreditLedger, DecaysWithHalfLife) {
  CreditLedger ledger{sim::minutes(10.0)};
  ledger.add(1, 0, 1000);
  EXPECT_NEAR(ledger.credit(1, sim::minutes(10.0)), 500.0, 1e-6);
  EXPECT_NEAR(ledger.credit(1, sim::minutes(20.0)), 250.0, 1e-6);
}

TEST(CreditLedger, AddAfterDecayCompounds) {
  CreditLedger ledger{sim::minutes(10.0)};
  ledger.add(1, 0, 1000);
  ledger.add(1, sim::minutes(10.0), 1000);  // 500 decayed + 1000 new
  EXPECT_NEAR(ledger.credit(1, sim::minutes(10.0)), 1500.0, 1e-6);
}

TEST(CreditLedger, PeersAreIndependent) {
  CreditLedger ledger;
  ledger.add(1, 0, 100);
  ledger.add(2, 0, 900);
  EXPECT_DOUBLE_EQ(ledger.credit(1, 0), 100.0);
  EXPECT_DOUBLE_EQ(ledger.credit(2, 0), 900.0);
  EXPECT_EQ(ledger.size(), 2u);
}

TEST(CreditLedger, NewPeerIdStartsFromScratch) {
  // The identity-loss effect of Section 3.4: a regenerated peer-id carries
  // none of the accumulated credit.
  CreditLedger ledger;
  ledger.add(0xAAAA, 0, 1 << 20);
  EXPECT_GT(ledger.credit(0xAAAA, sim::minutes(1.0)), 0.0);
  EXPECT_DOUBLE_EQ(ledger.credit(0xBBBB, sim::minutes(1.0)), 0.0);
}

TEST(CreditLedger, ClearForgetsEverything) {
  CreditLedger ledger;
  ledger.add(1, 0, 100);
  ledger.clear();
  EXPECT_DOUBLE_EQ(ledger.credit(1, 0), 0.0);
}

}  // namespace
}  // namespace wp2p::bt
