// Tests for background-aware seeding (the paper's Section 4.2 future work):
// unit tests of the decision rule and an end-to-end scenario where a mobile
// seed's uploads contend with a foreground non-P2P download.
#include <gtest/gtest.h>

#include "core/seed_guard.hpp"
#include "exp/swarm.hpp"
#include "tcp/connection.hpp"

namespace wp2p::core {
namespace {

struct SeedGuardUnit : ::testing::Test {
  exp::World world{5};
  bt::Tracker tracker{world.sim};
  bt::Metainfo meta = bt::Metainfo::create("f", 1 << 20, 256 * 1024);
  exp::World::Host& host = world.add_wired_host("h");
  bt::Client client{*host.node, *host.stack, tracker, meta, {}, true};
  SeedGuardConfig config;

  static util::Rate kb(double v) { return util::Rate::kBps(v); }
};

TEST_F(SeedGuardUnit, StartsAtHalfMax) {
  SeedUploadGuard guard{world.sim, client, [] { return util::Rate::zero(); }, config};
  EXPECT_DOUBLE_EQ(guard.current_limit().kilobytes_per_sec(), 100.0);
}

TEST_F(SeedGuardUnit, CreepsUpWhileForegroundHolds) {
  SeedUploadGuard guard{world.sim, client, [] { return util::Rate::zero(); }, config};
  guard.step(kb(100));  // establishes the baseline
  guard.step(kb(100));
  guard.step(kb(101));
  EXPECT_DOUBLE_EQ(guard.current_limit().kilobytes_per_sec(), 130.0);
  EXPECT_EQ(guard.backoffs(), 0u);
}

TEST_F(SeedGuardUnit, BacksOffWithGrowingAggressionWhenForegroundDegrades) {
  SeedUploadGuard guard{world.sim, client, [] { return util::Rate::zero(); }, config};
  guard.step(kb(100));  // baseline (limit -> 110)
  guard.step(kb(80));   // harmed: -beta*1 -> 100
  EXPECT_DOUBLE_EQ(guard.current_limit().kilobytes_per_sec(), 100.0);
  guard.step(kb(80));  // still harmed: -beta*2 -> 80
  EXPECT_DOUBLE_EQ(guard.current_limit().kilobytes_per_sec(), 80.0);
  EXPECT_EQ(guard.backoffs(), 2u);
}

TEST_F(SeedGuardUnit, RecoveryResumesLinearIncrease) {
  SeedUploadGuard guard{world.sim, client, [] { return util::Rate::zero(); }, config};
  guard.step(kb(100));
  guard.step(kb(50));   // back off
  guard.step(kb(100));  // foreground recovered: +alpha, history reset
  const double after_recovery = guard.current_limit().kilobytes_per_sec();
  guard.step(kb(60));  // harmed again: only -beta*1
  EXPECT_DOUBLE_EQ(guard.current_limit().kilobytes_per_sec(), after_recovery - 10.0);
}

TEST_F(SeedGuardUnit, RespectsBounds) {
  config.max_upload = kb(120);
  config.min_upload = kb(5);
  SeedUploadGuard guard{world.sim, client, [] { return util::Rate::zero(); }, config};
  guard.step(kb(100));
  for (int i = 0; i < 10; ++i) guard.step(kb(100));
  EXPECT_DOUBLE_EQ(guard.current_limit().kilobytes_per_sec(), 120.0);
  for (int i = 0; i < 10; ++i) guard.step(kb(1));
  EXPECT_DOUBLE_EQ(guard.current_limit().kilobytes_per_sec(), 5.0);
}

TEST_F(SeedGuardUnit, ExactToleranceBoundaryIsNotHarmed) {
  // The harm test is strict: rate must drop BELOW tolerance * best. Use a
  // tolerance of 0.5 so the boundary product is exact in floating point.
  config.tolerance = 0.5;
  SeedUploadGuard guard{world.sim, client, [] { return util::Rate::zero(); }, config};
  guard.step(kb(100));  // baseline
  guard.step(kb(50));   // exactly at the boundary: healthy
  EXPECT_EQ(guard.backoffs(), 0u);
  EXPECT_DOUBLE_EQ(guard.current_limit().kilobytes_per_sec(), 120.0);
  guard.step(kb(49));  // below it: harmed
  EXPECT_EQ(guard.backoffs(), 1u);
}

TEST_F(SeedGuardUnit, ZeroForegroundNeverCountsAsHarm) {
  // No foreground traffic at all (best stays 0): the guard creeps straight
  // up to the ceiling instead of oscillating on a phantom baseline.
  SeedUploadGuard guard{world.sim, client, [] { return util::Rate::zero(); }, config};
  for (int i = 0; i < 15; ++i) guard.step(util::Rate::zero());
  EXPECT_EQ(guard.backoffs(), 0u);
  EXPECT_DOUBLE_EQ(guard.current_limit().kilobytes_per_sec(),
                   config.max_upload.kilobytes_per_sec());
}

TEST_F(SeedGuardUnit, BestCeilingDecaysUnderSustainedHarm) {
  // A permanently lower foreground rate must eventually become the new
  // baseline: the remembered best decays 1% per harmed step, so backoffs
  // stop once tolerance * best falls below the observed rate.
  SeedUploadGuard guard{world.sim, client, [] { return util::Rate::zero(); }, config};
  guard.step(kb(100));  // best = 100; harm threshold starts at 90
  int steps_until_recovery = 0;
  for (int i = 0; i < 30; ++i) {
    const double before = guard.current_limit().kilobytes_per_sec();
    guard.step(kb(85));
    ++steps_until_recovery;
    if (guard.current_limit().kilobytes_per_sec() > before) break;  // increase resumed
  }
  EXPECT_LT(steps_until_recovery, 10);
  EXPECT_LT(guard.foreground_best(), kb(85).bytes_per_sec() / config.tolerance);
  const std::uint64_t backoffs = guard.backoffs();
  guard.step(kb(85));  // re-baselined: no further harm
  EXPECT_EQ(guard.backoffs(), backoffs);
}

TEST_F(SeedGuardUnit, HigherForegroundRebaselines) {
  SeedUploadGuard guard{world.sim, client, [] { return util::Rate::zero(); }, config};
  guard.step(kb(100));
  guard.step(kb(150));  // foreground demand grew: new best
  EXPECT_DOUBLE_EQ(guard.foreground_best(), kb(150).bytes_per_sec());
  guard.step(kb(140));  // fine against the new baseline (> 0.9 * 150)
  EXPECT_EQ(guard.backoffs(), 0u);
  guard.step(kb(130));  // below it: harmed
  EXPECT_EQ(guard.backoffs(), 1u);
}

TEST_F(SeedGuardUnit, StepReturnValueTracksCurrentLimit) {
  SeedUploadGuard guard{world.sim, client, [] { return util::Rate::zero(); }, config};
  const util::Rate r = guard.step(kb(100));
  EXPECT_DOUBLE_EQ(r.bytes_per_sec(), guard.current_limit().bytes_per_sec());
}

// End to end: a mobile seed serves a swarm while the same host runs a
// foreground TCP download; the guard should sacrifice upload rate to keep
// the foreground near its unimpeded rate.
TEST(SeedGuardScenario, ForegroundDownloadIsProtected) {
  auto run = [](bool guarded) {
    exp::World world{61};
    bt::Tracker tracker{world.sim};
    auto meta = bt::Metainfo::create("f", 512 * 1000 * 1000, 256 * 1024, "tr", 31);

    net::WirelessParams wless;
    wless.capacity = util::Rate::kBps(200.0);
    wless.contention_overhead = 1.0;
    auto& mobile = world.add_wireless_host("mobile", wless);
    bt::ClientConfig sc;
    sc.announce_interval = sim::seconds(30.0);
    sc.upload_limit = util::Rate::unlimited();
    sc.unchoke_slots = 5;
    bt::Client seed{*mobile.node, *mobile.stack, tracker, meta, sc, true};

    // Hungry remote leechers.
    std::vector<std::unique_ptr<bt::Client>> leechers;
    for (int i = 0; i < 4; ++i) {
      bt::ClientConfig lc;
      lc.announce_interval = sim::seconds(30.0);
      lc.pipeline_depth = 32;
      auto& host = world.add_wired_host("leech" + std::to_string(i));
      leechers.push_back(
          std::make_unique<bt::Client>(*host.node, *host.stack, tracker, meta, lc, false));
    }

    // Foreground non-P2P download: a raw TCP bulk flow to the mobile host.
    auto& server_host = world.add_wired_host("webserver");
    std::shared_ptr<tcp::Connection> web;
    server_host.stack->listen(80, [&](std::shared_ptr<tcp::Connection> c) { web = std::move(c); });
    auto browser = mobile.stack->connect(server_host.endpoint(80));
    sim::PeriodicTask feeder{world.sim, sim::milliseconds(100.0), [&] {
      if (web && web->established() && web->send_queue_bytes() < 64 * 1024) {
        web->send_message(nullptr, 16 * 1024);
      }
    }};
    feeder.start_after(sim::milliseconds(1.0));

    metrics::ThroughputMeter foreground{sim::seconds(10.0)};
    std::int64_t last_delivered = 0;
    sim::PeriodicTask probe_feed{world.sim, sim::seconds(1.0), [&] {
      const std::int64_t now_delivered = browser->stats().bytes_delivered;
      foreground.add(world.sim.now(), now_delivered - last_delivered);
      last_delivered = now_delivered;
    }};
    probe_feed.start();

    std::unique_ptr<SeedUploadGuard> guard;
    if (guarded) {
      guard = std::make_unique<SeedUploadGuard>(
          world.sim, seed, [&] { return foreground.rate(world.sim.now()); });
    }

    seed.start();
    for (auto& l : leechers) l->start();
    if (guard) guard->start();
    world.sim.run_until(sim::seconds(240.0));
    struct Result {
      double foreground_rate;
      std::int64_t uploaded;
    };
    return Result{static_cast<double>(browser->stats().bytes_delivered) / 240.0,
                  seed.stats().payload_uploaded};
  };

  auto unguarded = run(false);
  auto guarded = run(true);
  // The guard must clearly improve the foreground download...
  EXPECT_GT(guarded.foreground_rate, unguarded.foreground_rate * 1.3);
  // ...while still seeding a nontrivial amount.
  EXPECT_GT(guarded.uploaded, 0);
}

}  // namespace
}  // namespace wp2p::core
