// Unit tests of the LIHD decision rule (the paper's Figure 6 pseudo-code)
// via LihdController::step, plus live-controller wiring checks.
#include <gtest/gtest.h>

#include "core/lihd.hpp"
#include "exp/swarm.hpp"

namespace wp2p::core {
namespace {

// A controller needs a client; build a minimal idle one.
struct LihdTest : ::testing::Test {
  exp::World world{99};
  bt::Tracker tracker{world.sim};
  bt::Metainfo meta = bt::Metainfo::create("f", 1 << 20, 256 * 1024);
  exp::World::Host& host = world.add_wired_host("h");
  bt::Client client{*host.node, *host.stack, tracker, meta, {}, false};

  LihdConfig config;
  std::unique_ptr<LihdController> make() {
    return std::make_unique<LihdController>(world.sim, client, config);
  }

  static util::Rate kb(double v) { return util::Rate::kBps(v); }
};

TEST_F(LihdTest, StartsAtHalfOfUmax) {
  config.max_upload = kb(200);
  auto lihd = make();
  EXPECT_DOUBLE_EQ(lihd->current_limit().kilobytes_per_sec(), 100.0);
}

TEST_F(LihdTest, FirstSampleOnlySeedsHistory) {
  auto lihd = make();
  const double before = lihd->current_limit().kilobytes_per_sec();
  lihd->step(kb(50));  // Dprev == 0: no adjustment (paper: "If Dprev <> 0")
  EXPECT_DOUBLE_EQ(lihd->current_limit().kilobytes_per_sec(), before);
}

TEST_F(LihdTest, IncreasesLinearlyWhileDownloadsImprove) {
  config.alpha = kb(10);
  config.max_upload = kb(200);
  auto lihd = make();
  lihd->step(kb(10));
  lihd->step(kb(20));  // improved: +alpha
  EXPECT_DOUBLE_EQ(lihd->current_limit().kilobytes_per_sec(), 110.0);
  lihd->step(kb(30));  // improved again: +alpha (still linear)
  EXPECT_DOUBLE_EQ(lihd->current_limit().kilobytes_per_sec(), 120.0);
}

TEST_F(LihdTest, DecreasesWithGrowingAggressiveness) {
  config.beta = kb(10);
  config.max_upload = kb(200);
  config.min_upload = kb(1);
  auto lihd = make();
  lihd->step(kb(50));
  lihd->step(kb(40));  // worse: -beta*1
  EXPECT_DOUBLE_EQ(lihd->current_limit().kilobytes_per_sec(), 90.0);
  lihd->step(kb(40));  // not improving: -beta*2
  EXPECT_DOUBLE_EQ(lihd->current_limit().kilobytes_per_sec(), 70.0);
  lihd->step(kb(40));  // -beta*3
  EXPECT_DOUBLE_EQ(lihd->current_limit().kilobytes_per_sec(), 40.0);
}

TEST_F(LihdTest, ImprovementResetsDecreaseHistory) {
  config.alpha = kb(10);
  config.beta = kb(10);
  auto lihd = make();
  lihd->step(kb(50));
  lihd->step(kb(40));  // -10
  lihd->step(kb(45));  // improved: +10, history reset
  lihd->step(kb(44));  // worse: -beta*1 (not -beta*3)
  EXPECT_DOUBLE_EQ(lihd->current_limit().kilobytes_per_sec(), 90.0);
}

TEST_F(LihdTest, ClampsToBounds) {
  config.alpha = kb(500);
  config.beta = kb(500);
  config.max_upload = kb(200);
  config.min_upload = kb(5);
  auto lihd = make();
  lihd->step(kb(10));
  lihd->step(kb(20));  // +500 clamped to 200
  EXPECT_DOUBLE_EQ(lihd->current_limit().kilobytes_per_sec(), 200.0);
  lihd->step(kb(15));  // -500 clamped to 5
  EXPECT_DOUBLE_EQ(lihd->current_limit().kilobytes_per_sec(), 5.0);
}

// Paper-faithful edge case (Figure 6): the decrease branch fires whenever
// Dprev >= Dcur, INCLUDING Dprev == Dcur. A download pegged at a constant
// rate — e.g. saturating the link no matter what the upload limit does —
// therefore walks the limit down forever with growing aggressiveness; the
// min_upload clamp is the only guard. The trace stream documents each
// decision, so this behavior is pinned observably rather than inferred.
TEST_F(LihdTest, EqualRatesWalkLimitToMinUploadFloor) {
  config.alpha = kb(10);
  config.beta = kb(10);
  config.max_upload = kb(200);
  config.min_upload = kb(5);
  [[maybe_unused]] trace::Recorder& recorder = world.enable_tracing();
  auto lihd = make();

  lihd->step(kb(80));  // seed history
  // d_prev_ == d_cur on every subsequent step: "no improvement" forever.
  for (int i = 0; i < 10; ++i) lihd->step(kb(80));
  EXPECT_DOUBLE_EQ(lihd->current_limit().kilobytes_per_sec(), 5.0);
  lihd->step(kb(80));  // pinned at the floor, still decreasing in spirit
  EXPECT_DOUBLE_EQ(lihd->current_limit().kilobytes_per_sec(), 5.0);

  // The trace agrees: after the seed step, every decision is a decrease with
  // a monotonically growing dec_count, and the limit never dips below min.
#ifndef WP2P_TRACE_DISABLED
  int decreases = 0;
  double last_dec_count = 0.0;
  for (const trace::TraceEvent& ev : recorder.ring().events()) {
    if (ev.kind != trace::Kind::kLihdStep) continue;
    EXPECT_GE(ev.field("limit"), ev.field("min") - 1e-9);
    if (ev.aux == "decrease") {
      ++decreases;
      EXPECT_GT(ev.field("dec_count"), last_dec_count);
      last_dec_count = ev.field("dec_count");
    } else {
      EXPECT_EQ(ev.aux, "seed");  // only the history-seeding first step
    }
  }
  EXPECT_EQ(decreases, 11);
#endif
}

TEST_F(LihdTest, StartAppliesLimitToClient) {
  config.max_upload = kb(200);
  auto lihd = make();
  lihd->start();
  EXPECT_DOUBLE_EQ(client.upload_limit().kilobytes_per_sec(), 100.0);
  lihd->stop();
}

TEST_F(LihdTest, PeriodicUpdatesRunWhileStarted) {
  config.interval = sim::seconds(5.0);
  auto lihd = make();
  lihd->start();
  world.sim.run_until(sim::seconds(26.0));
  EXPECT_EQ(lihd->updates(), 5u);
  lihd->stop();
  world.sim.run_until(sim::seconds(60.0));
  EXPECT_EQ(lihd->updates(), 5u);
}

}  // namespace
}  // namespace wp2p::core
