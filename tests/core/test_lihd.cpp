// Unit tests of the LIHD decision rule (the paper's Figure 6 pseudo-code)
// via LihdController::step, plus live-controller wiring checks.
#include <gtest/gtest.h>

#include "core/lihd.hpp"
#include "exp/swarm.hpp"

namespace wp2p::core {
namespace {

// A controller needs a client; build a minimal idle one.
struct LihdTest : ::testing::Test {
  exp::World world{99};
  bt::Tracker tracker{world.sim};
  bt::Metainfo meta = bt::Metainfo::create("f", 1 << 20, 256 * 1024);
  exp::World::Host& host = world.add_wired_host("h");
  bt::Client client{*host.node, *host.stack, tracker, meta, {}, false};

  LihdConfig config;
  std::unique_ptr<LihdController> make() {
    return std::make_unique<LihdController>(world.sim, client, config);
  }

  static util::Rate kb(double v) { return util::Rate::kBps(v); }
};

TEST_F(LihdTest, StartsAtHalfOfUmax) {
  config.max_upload = kb(200);
  auto lihd = make();
  EXPECT_DOUBLE_EQ(lihd->current_limit().kilobytes_per_sec(), 100.0);
}

TEST_F(LihdTest, FirstSampleOnlySeedsHistory) {
  auto lihd = make();
  const double before = lihd->current_limit().kilobytes_per_sec();
  lihd->step(kb(50));  // Dprev == 0: no adjustment (paper: "If Dprev <> 0")
  EXPECT_DOUBLE_EQ(lihd->current_limit().kilobytes_per_sec(), before);
}

TEST_F(LihdTest, IncreasesLinearlyWhileDownloadsImprove) {
  config.alpha = kb(10);
  config.max_upload = kb(200);
  auto lihd = make();
  lihd->step(kb(10));
  lihd->step(kb(20));  // improved: +alpha
  EXPECT_DOUBLE_EQ(lihd->current_limit().kilobytes_per_sec(), 110.0);
  lihd->step(kb(30));  // improved again: +alpha (still linear)
  EXPECT_DOUBLE_EQ(lihd->current_limit().kilobytes_per_sec(), 120.0);
}

TEST_F(LihdTest, DecreasesWithGrowingAggressiveness) {
  config.beta = kb(10);
  config.max_upload = kb(200);
  config.min_upload = kb(1);
  auto lihd = make();
  lihd->step(kb(50));
  lihd->step(kb(40));  // worse: -beta*1
  EXPECT_DOUBLE_EQ(lihd->current_limit().kilobytes_per_sec(), 90.0);
  lihd->step(kb(40));  // not improving: -beta*2
  EXPECT_DOUBLE_EQ(lihd->current_limit().kilobytes_per_sec(), 70.0);
  lihd->step(kb(40));  // -beta*3
  EXPECT_DOUBLE_EQ(lihd->current_limit().kilobytes_per_sec(), 40.0);
}

TEST_F(LihdTest, ImprovementResetsDecreaseHistory) {
  config.alpha = kb(10);
  config.beta = kb(10);
  auto lihd = make();
  lihd->step(kb(50));
  lihd->step(kb(40));  // -10
  lihd->step(kb(45));  // improved: +10, history reset
  lihd->step(kb(44));  // worse: -beta*1 (not -beta*3)
  EXPECT_DOUBLE_EQ(lihd->current_limit().kilobytes_per_sec(), 90.0);
}

TEST_F(LihdTest, ClampsToBounds) {
  config.alpha = kb(500);
  config.beta = kb(500);
  config.max_upload = kb(200);
  config.min_upload = kb(5);
  auto lihd = make();
  lihd->step(kb(10));
  lihd->step(kb(20));  // +500 clamped to 200
  EXPECT_DOUBLE_EQ(lihd->current_limit().kilobytes_per_sec(), 200.0);
  lihd->step(kb(15));  // -500 clamped to 5
  EXPECT_DOUBLE_EQ(lihd->current_limit().kilobytes_per_sec(), 5.0);
}

TEST_F(LihdTest, StartAppliesLimitToClient) {
  config.max_upload = kb(200);
  auto lihd = make();
  lihd->start();
  EXPECT_DOUBLE_EQ(client.upload_limit().kilobytes_per_sec(), 100.0);
  lihd->stop();
}

TEST_F(LihdTest, PeriodicUpdatesRunWhileStarted) {
  config.interval = sim::seconds(5.0);
  auto lihd = make();
  lihd->start();
  world.sim.run_until(sim::seconds(26.0));
  EXPECT_EQ(lihd->updates(), 5u);
  lihd->stop();
  world.sim.run_until(sim::seconds(60.0));
  EXPECT_EQ(lihd->updates(), 5u);
}

}  // namespace
}  // namespace wp2p::core
