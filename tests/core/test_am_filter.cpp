#include "core/am_filter.hpp"

#include <gtest/gtest.h>

#include "exp/faults.hpp"
#include "exp/swarm.hpp"
#include "tcp/segment.hpp"
#include "trace/invariant_checker.hpp"

namespace wp2p::core {
namespace {

struct AmFilterTest : ::testing::Test {
  sim::Simulator sim{3};
  AmFilter filter{sim};
  net::Endpoint local{net::IpAddr{1}, 1000};
  net::Endpoint remote{net::IpAddr{2}, 6881};

  net::Packet tcp_packet(net::Endpoint src, net::Endpoint dst, std::int64_t payload,
                         std::int64_t ack, bool dup = false) {
    auto seg = std::make_shared<tcp::Segment>();
    seg->payload = payload;
    seg->ack = ack;
    seg->dup_hint = dup;
    net::Packet pkt;
    pkt.src = src;
    pkt.dst = dst;
    pkt.size = seg->wire_size();
    pkt.payload = std::move(seg);
    return pkt;
  }

  std::vector<net::Packet> run_egress(net::Packet pkt) {
    std::vector<net::Packet> out;
    filter.egress(std::move(pkt), out);
    return out;
  }

  void feed_ingress_data(std::int64_t bytes) {
    std::vector<net::Packet> out;
    filter.ingress(tcp_packet(remote, local, bytes, 0), out);
  }
};

TEST_F(AmFilterTest, NonTcpPacketsPassThrough) {
  net::Packet pkt;
  pkt.src = local;
  pkt.dst = remote;
  pkt.size = 100;
  auto out = run_egress(std::move(pkt));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].size, 100);
}

TEST_F(AmFilterTest, FlowStartsYoung) {
  EXPECT_TRUE(filter.flow_is_young(local, remote));
  EXPECT_EQ(filter.peer_cwnd_estimate(local, remote), 0);
}

TEST_F(AmFilterTest, IngressDataMaturesFlow) {
  for (int i = 0; i < 8; ++i) feed_ingress_data(1448);  // > 9 KB in window
  EXPECT_FALSE(filter.flow_is_young(local, remote));
  EXPECT_EQ(filter.peer_cwnd_estimate(local, remote), 8 * 1448);
}

TEST_F(AmFilterTest, EstimateDecaysAfterWindow) {
  for (int i = 0; i < 8; ++i) feed_ingress_data(1448);
  sim.run_until(sim::milliseconds(200.0));  // past the 100 ms window
  EXPECT_TRUE(filter.flow_is_young(local, remote));
}

TEST_F(AmFilterTest, YoungFlowDecouplesNewAckOnData) {
  auto out = run_egress(tcp_packet(local, remote, 1448, 5000));
  ASSERT_EQ(out.size(), 2u);
  const auto* ack = out[0].payload_as<tcp::Segment>();
  const auto* data = out[1].payload_as<tcp::Segment>();
  ASSERT_NE(ack, nullptr);
  ASSERT_NE(data, nullptr);
  EXPECT_TRUE(ack->pure_ack());
  EXPECT_EQ(ack->ack, 5000);
  EXPECT_EQ(out[0].size, tcp::kTcpHeaderBytes);
  EXPECT_EQ(data->payload, 1448);
  EXPECT_EQ(filter.stats().acks_decoupled, 1u);
}

TEST_F(AmFilterTest, RepeatedAckValueIsNotDecoupledAgain) {
  run_egress(tcp_packet(local, remote, 1448, 5000));
  auto out = run_egress(tcp_packet(local, remote, 1448, 5000));  // no new ack info
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(filter.stats().acks_decoupled, 1u);
}

TEST_F(AmFilterTest, MatureFlowDoesNotDecouple) {
  for (int i = 0; i < 8; ++i) feed_ingress_data(1448);
  auto out = run_egress(tcp_packet(local, remote, 1448, 5000));
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(filter.stats().acks_decoupled, 0u);
}

TEST_F(AmFilterTest, MatureFlowDropsEveryFourthDupack) {
  for (int i = 0; i < 8; ++i) feed_ingress_data(1448);  // mature
  // Advance the ACK point once, then emit duplicates of it.
  run_egress(tcp_packet(local, remote, 0, 7000));
  int forwarded = 0;
  for (int i = 0; i < 12; ++i) {
    forwarded += static_cast<int>(run_egress(tcp_packet(local, remote, 0, 7000, true)).size());
  }
  EXPECT_EQ(filter.stats().dupacks_seen, 12u);
  EXPECT_EQ(filter.stats().dupacks_dropped, 3u);  // every 4th of 12
  EXPECT_EQ(forwarded, 9);
}

TEST_F(AmFilterTest, YoungFlowForwardsAllDupacks) {
  run_egress(tcp_packet(local, remote, 0, 7000));
  for (int i = 0; i < 12; ++i) run_egress(tcp_packet(local, remote, 0, 7000, true));
  EXPECT_EQ(filter.stats().dupacks_dropped, 0u);
}

TEST_F(AmFilterTest, DisabledFeaturesPassEverything) {
  AmConfig config;
  config.decouple_acks = false;
  config.throttle_dupacks = false;
  AmFilter off{sim, config};
  std::vector<net::Packet> out;
  off.egress(tcp_packet(local, remote, 1448, 5000), out);
  EXPECT_EQ(out.size(), 1u);
  for (int i = 0; i < 20; ++i) {
    std::vector<net::Packet> o2;
    off.egress(tcp_packet(local, remote, 0, 5000, true), o2);
    EXPECT_EQ(o2.size(), 1u);
  }
}

TEST_F(AmFilterTest, FlowsAreIndependent) {
  net::Endpoint other{net::IpAddr{3}, 6881};
  for (int i = 0; i < 8; ++i) feed_ingress_data(1448);  // matures local<->remote
  EXPECT_FALSE(filter.flow_is_young(local, remote));
  EXPECT_TRUE(filter.flow_is_young(local, other));
  // The young flow still decouples.
  std::vector<net::Packet> out;
  filter.egress(tcp_packet(local, other, 1448, 100), out);
  EXPECT_EQ(out.size(), 2u);
}

// Whole-stack scenario: a mobile wP2P leecher downloads through the AM
// filter while an injected BER episode forces real losses. The duplicate-ACK
// throttle must stay within its budget (at most every 4th duplicate dropped)
// for the whole run — checked both from the filter's own counters and by the
// trace-level am-dupack-budget invariant.
TEST(AmFilterUnderFault, DupackBudgetHoldsAcrossBerEpisode) {
  trace::Recorder recorder{/*ring_capacity=*/4};
  trace::InvariantChecker checker;
  recorder.add_sink(&checker);

  auto meta = bt::Metainfo::create("am-fault", 2 * 1024 * 1024, 256 * 1024, "tr", 90);
  exp::Swarm swarm{90, meta};
  swarm.world.sim.set_tracer(&recorder);

  bt::ClientConfig config;
  config.announce_interval = sim::seconds(20.0);
  swarm.add_wired("seed", true, config);
  bt::ClientConfig mc = config;
  mc.listen_port = 6882;
  mc.retain_peer_id = true;
  mc.role_reversal = true;
  auto& mobile = swarm.add_wireless("mobile", false, mc);
  AmFilter filter{swarm.world.sim};
  mobile.host->node->add_egress_filter(&filter);
  mobile.host->node->add_ingress_filter(&filter);

  sim::FaultPlan plan;
  plan.actions =
      sim::FaultPlan::parse("fault ber at=10 dur=30 mag=1e-5 target=mobile\n").actions;
  auto injector = exp::bind_faults(swarm, plan);
  swarm.start_all();
  swarm.run_for(60.0);
  swarm.world.sim.set_tracer(nullptr);

  EXPECT_EQ(injector->stats().applied, 1u);
  EXPECT_GT(mobile->stats().payload_downloaded, 0);
  // The raised bit-error rate produces genuine losses, hence duplicate ACKs
  // on the mobile's egress path.
  EXPECT_GT(filter.stats().dupacks_seen, 0u);
  // Budget: at most every 4th duplicate of an ACK value may be dropped.
  EXPECT_LE(filter.stats().dupacks_dropped * 4, filter.stats().dupacks_seen + 3);
  for (const trace::Violation& v : checker.violations()) {
    ADD_FAILURE() << trace::to_string(v);
  }
}

TEST_F(AmFilterTest, HandshakeSegmentsPassUntouched) {
  auto seg = std::make_shared<tcp::Segment>();
  seg->syn = true;
  seg->ack = 0;
  net::Packet pkt;
  pkt.src = local;
  pkt.dst = remote;
  pkt.size = seg->wire_size();
  pkt.payload = std::move(seg);
  auto out = run_egress(std::move(pkt));
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(filter.stats().acks_decoupled, 0u);
}

}  // namespace
}  // namespace wp2p::core
