#include "core/ma_selector.hpp"

#include <gtest/gtest.h>

namespace wp2p::core {
namespace {

struct MaSelectorTest : ::testing::Test {
  sim::Rng rng{17};
  std::vector<int> availability;

  bt::SelectionContext ctx(const std::vector<int>& candidates, double fraction) {
    return bt::SelectionContext{candidates, availability, fraction, 0, rng};
  }
};

TEST_F(MaSelectorTest, LinearScheduleMatchesFraction) {
  MobilityAwareSelector sel;
  EXPECT_DOUBLE_EQ(sel.rarest_probability(0.0), 0.0);
  EXPECT_DOUBLE_EQ(sel.rarest_probability(0.5), 0.5);
  EXPECT_DOUBLE_EQ(sel.rarest_probability(1.0), 1.0);
  EXPECT_DOUBLE_EQ(sel.rarest_probability(2.0), 1.0);  // clamped
}

TEST_F(MaSelectorTest, QuadraticStaysSelfishLonger) {
  MaConfig config;
  config.schedule = PrSchedule::kQuadratic;
  MobilityAwareSelector sel{config};
  EXPECT_DOUBLE_EQ(sel.rarest_probability(0.5), 0.25);
  MobilityAwareSelector linear;
  EXPECT_LT(sel.rarest_probability(0.3), linear.rarest_probability(0.3));
}

TEST_F(MaSelectorTest, ConstantScheduleIgnoresProgress) {
  MaConfig config;
  config.schedule = PrSchedule::kConstant;
  config.constant_pr = 0.37;
  MobilityAwareSelector sel{config};
  EXPECT_DOUBLE_EQ(sel.rarest_probability(0.0), 0.37);
  EXPECT_DOUBLE_EQ(sel.rarest_probability(0.9), 0.37);
}

TEST_F(MaSelectorTest, InitialPrFloorApplies) {
  MaConfig config;
  config.initial_pr = 0.2;
  MobilityAwareSelector sel{config};
  EXPECT_DOUBLE_EQ(sel.rarest_probability(0.0), 0.2);
  EXPECT_DOUBLE_EQ(sel.rarest_probability(0.5), 0.5);
}

TEST_F(MaSelectorTest, AtZeroProgressPicksSequentially) {
  availability = {9, 9, 1, 9};  // piece 2 is rare, but selfish phase ignores it
  MobilityAwareSelector sel;
  std::vector<int> candidates{0, 1, 2, 3};
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(sel.pick(ctx(candidates, 0.0)), 0);
  }
  EXPECT_EQ(sel.rarest_picks(), 0u);
}

TEST_F(MaSelectorTest, AtFullProgressPicksRarest) {
  availability = {9, 9, 1, 9};
  MobilityAwareSelector sel;
  std::vector<int> candidates{0, 1, 2, 3};
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(sel.pick(ctx(candidates, 1.0)), 2);
  }
  EXPECT_EQ(sel.sequential_picks(), 0u);
}

TEST_F(MaSelectorTest, MixesAtIntermediateProgress) {
  availability = {9, 1};
  MobilityAwareSelector sel;
  std::vector<int> candidates{0, 1};
  int rarest = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    if (sel.pick(ctx(candidates, 0.5)) == 1) ++rarest;
  }
  EXPECT_NEAR(static_cast<double>(rarest) / trials, 0.5, 0.05);
}

TEST_F(MaSelectorTest, AlwaysPicksFromCandidates) {
  availability = std::vector<int>(32, 1);
  MobilityAwareSelector sel;
  std::vector<int> candidates{5, 9, 21};
  for (int i = 0; i < 200; ++i) {
    const int pick = sel.pick(ctx(candidates, rng.uniform()));
    EXPECT_TRUE(pick == 5 || pick == 9 || pick == 21);
  }
}

}  // namespace
}  // namespace wp2p::core
