#include "core/mobility_detector.hpp"

#include <gtest/gtest.h>

#include "exp/swarm.hpp"

namespace wp2p::core {
namespace {

struct MobilityDetectorTest : ::testing::Test {
  // Large file + throttled seed: the mobile stays a mid-download leech for
  // the whole test (a completed download legitimately has zero peers).
  bt::Metainfo meta = bt::Metainfo::create("f", 256 * 1024 * 1024, 256 * 1024, "tr", 22);
  exp::Swarm swarm{41, meta};
  exp::Swarm::Member* seed = nullptr;
  exp::Swarm::Member* mobile = nullptr;

  void SetUp() override {
    bt::ClientConfig fast;
    // Long announce intervals on BOTH sides: tracker-driven redials would
    // otherwise heal the swarm before the detector can confirm (which is
    // correct behaviour, but not what these tests probe).
    fast.announce_interval = sim::minutes(10.0);
    fast.upload_limit = util::Rate::kBps(100.0);
    seed = &swarm.add_wired("seed", true, fast);
    bt::ClientConfig mc = fast;
    mc.role_reversal = true;
    mc.retain_peer_id = true;
    // Periodic announces would self-heal a lost swarm within ~30 s; push them
    // out so the detector is the only recovery path in these tests.
    mc.announce_interval = sim::minutes(10.0);
    mobile = &swarm.add_wireless("mobile", false, mc);
    swarm.start_all();
  }
};

TEST_F(MobilityDetectorTest, StaysQuietWhilePeersAreAlive) {
  MobilityDetector detector{swarm.world.sim, *mobile->client};
  detector.start();
  swarm.run_for(60.0);
  EXPECT_EQ(detector.detections(), 0u);
  EXPECT_TRUE(detector.armed());  // it has seen live peers
}

TEST_F(MobilityDetectorTest, DoesNotFireBeforeEverHavingPeers) {
  // A detector on a client that never connected must not "recover".
  exp::Swarm empty{42, meta};
  bt::ClientConfig mc;
  mc.announce_interval = sim::seconds(30.0);
  auto& lonely = empty.add_wireless("lonely", false, mc);
  MobilityDetector detector{empty.world.sim, *lonely.client};
  lonely.client->start();
  detector.start();
  empty.run_for(120.0);
  EXPECT_EQ(detector.detections(), 0u);
  EXPECT_FALSE(detector.armed());
}

TEST_F(MobilityDetectorTest, DetectsSilentLossAndRecovers) {
  MobilityDetectorConfig config;
  config.sample_interval = sim::seconds(2.0);
  config.confirm_samples = 2;
  MobilityDetector detector{swarm.world.sim, *mobile->client, config};
  detector.start();
  swarm.run_for(20.0);
  ASSERT_GT(mobile->client->peer_count(), 0u);

  // Silent connection loss (no address-change event fires).
  mobile->host->stack->abort_all();
  ASSERT_EQ(mobile->client->peer_count(), 0u);
  swarm.run_for(10.0);
  EXPECT_EQ(detector.detections(), 1u);
  EXPECT_GT(mobile->client->peer_count(), 0u);  // role reversal reconnected
}

TEST_F(MobilityDetectorTest, ConfirmSamplesSuppressTransients) {
  MobilityDetectorConfig config;
  config.sample_interval = sim::seconds(2.0);
  config.confirm_samples = 5;  // needs 10 s of zero peers
  MobilityDetector detector{swarm.world.sim, *mobile->client, config};
  detector.start();
  swarm.run_for(20.0);
  // A brief outage that heals by itself (role reversal via address change).
  mobile->host->node->change_address();  // client RR reconnects immediately
  swarm.run_for(20.0);
  EXPECT_EQ(detector.detections(), 0u);
  EXPECT_GT(mobile->client->peer_count(), 0u);
}

// The detector's reason to exist (Section 5.1): an AP roam where the OS
// surfaces NO interface event. The address changes under the client, so its
// established connections blackhole and die one by one as TCP retries
// exhaust — peers drain to zero over several sample intervals rather than
// vanishing in one instant — and only then does detection fire, exactly once,
// with Role Reversal rebuilding the swarm from the stored peer endpoints.
TEST(MobilityDetectorRoamTest, SilentRoamDrainsPeersThenFiresExactlyOnce) {
  bt::Metainfo meta = bt::Metainfo::create("f", 256 * 1024 * 1024, 256 * 1024, "tr", 23);
  exp::Swarm swarm{43, meta};
  bt::ClientConfig fc;
  fc.announce_interval = sim::minutes(10.0);  // tracker must not heal the swarm
  fc.upload_limit = util::Rate::kBps(100.0);
  swarm.add_wired("seed", true, fc);
  bt::ClientConfig mc = fc;
  mc.role_reversal = true;
  mc.retain_peer_id = true;
  // A leech between block arrivals has no unacked outbound data, so a
  // blackholed connection sits silent until the next keep-alive probes it;
  // keep that probe (and the retry budget below) short so the connection
  // dies within the test window instead of the default ~100 s + minutes.
  mc.keepalive_interval = sim::seconds(5.0);
  // The transport-level reconnect policy would also heal a silent roam (the
  // re-dial leaves from the NEW address and succeeds); disable it so this
  // test isolates the detector -> role-reversal path.
  mc.reconnect = false;
  tcp::TcpParams fast_fail;
  fast_fail.init_rto = sim::milliseconds(300.0);
  fast_fail.max_rto = sim::milliseconds(500.0);
  fast_fail.max_data_retries = 3;
  auto& mobile = swarm.add_wireless("mobile", false, mc, {}, fast_fail);
  swarm.start_all();

  MobilityDetectorConfig config;
  config.sample_interval = sim::seconds(2.0);
  config.confirm_samples = 3;
  MobilityDetector detector{swarm.world.sim, *mobile.client, config};
  detector.start();
  swarm.run_for(20.0);
  ASSERT_GT(mobile.client->peer_count(), 0u);

  // Roam: rebind the address with the interface-event hooks suppressed.
  net::Node& node = *mobile.host->node;
  auto hooks = std::move(node.on_address_change);
  node.on_address_change.clear();
  node.change_address();
  node.on_address_change = std::move(hooks);
  ASSERT_GT(mobile.client->peer_count(), 0u);  // nothing aborted synchronously

  // Peers drain as each connection's retries exhaust.
  double drained_at = -1.0;
  for (int i = 0; i < 300 && drained_at < 0.0; ++i) {
    swarm.run_for(0.1);
    if (mobile.client->peer_count() == 0) {
      drained_at = sim::to_seconds(swarm.world.sim.now());
    }
  }
  ASSERT_GE(drained_at, 0.0) << "blackholed connections never timed out";
  // The confirm window (3 zero-peer samples) cannot have elapsed yet.
  EXPECT_EQ(detector.detections(), 0u);

  swarm.run_for(10.0);
  EXPECT_EQ(detector.detections(), 1u);
  EXPECT_GT(mobile.client->peer_count(), 0u);  // role reversal reconnected

  // Recovery holds: re-armed on live peers, but no spurious re-detection.
  swarm.run_for(30.0);
  EXPECT_EQ(detector.detections(), 1u);
  EXPECT_GT(mobile.client->peer_count(), 0u);
}

// Two silent hand-offs landing inside ONE detection window — cell0 -> cell1,
// then cell1 -> cell2 before the confirm samples can elapse — must produce
// exactly one detection: the zero-peer evidence the second roam adds is the
// same evidence the first roam planted, and the detector only re-arms once
// peers actually return. (A detection per roam would double-fire Role
// Reversal and re-dial the same endpoints twice.)
TEST(MobilityDetectorRoamTest, TwoHandoffsInOneWindowFireOneDetection) {
  bt::Metainfo meta = bt::Metainfo::create("f", 256 * 1024 * 1024, 256 * 1024, "tr", 24);
  exp::Swarm swarm{45, meta};
  bt::ClientConfig fc;
  fc.announce_interval = sim::minutes(10.0);
  fc.upload_limit = util::Rate::kBps(100.0);
  swarm.add_wired("seed", true, fc);
  bt::ClientConfig mc = fc;
  mc.role_reversal = true;
  mc.retain_peer_id = true;
  mc.keepalive_interval = sim::seconds(5.0);
  mc.reconnect = false;  // isolate the detector -> role-reversal path
  tcp::TcpParams fast_fail;
  fast_fail.init_rto = sim::milliseconds(300.0);
  fast_fail.max_rto = sim::milliseconds(500.0);
  fast_fail.max_data_retries = 3;
  swarm.world.enable_cells();
  for (int i = 0; i < 3; ++i) swarm.world.cells->add_cell();
  auto& mobile = swarm.add_cellular("mobile", false, mc, 0, fast_fail);
  swarm.start_all();

  MobilityDetectorConfig config;
  config.sample_interval = sim::seconds(2.0);
  config.confirm_samples = 3;
  MobilityDetector detector{swarm.world.sim, *mobile.client, config};
  detector.start();
  swarm.run_for(20.0);
  ASSERT_GT(mobile.client->peer_count(), 0u);

  // Both roams are silent (interface hooks suppressed, as in a driver that
  // surfaces no events) and land within one 6 s confirm window.
  net::Node& node = *mobile.host->node;
  auto hooks = std::move(node.on_address_change);
  node.on_address_change.clear();
  swarm.world.cells->handoff(node, 1);
  swarm.run_for(3.0);
  swarm.world.cells->handoff(node, 2);
  node.on_address_change = std::move(hooks);
  ASSERT_EQ(swarm.world.cells->cell_of(node), 2);

  // Blackholed connections drain as their retries exhaust...
  double drained_at = -1.0;
  for (int i = 0; i < 300 && drained_at < 0.0; ++i) {
    swarm.run_for(0.1);
    if (mobile.client->peer_count() == 0) {
      drained_at = sim::to_seconds(swarm.world.sim.now());
    }
  }
  ASSERT_GE(drained_at, 0.0) << "blackholed connections never timed out";

  // ...then exactly one detection rebuilds the swarm through cell 2.
  swarm.run_for(15.0);
  EXPECT_EQ(detector.detections(), 1u);
  EXPECT_GT(mobile.client->peer_count(), 0u);
  swarm.run_for(30.0);
  EXPECT_EQ(detector.detections(), 1u);  // re-armed; no spurious second fire
  EXPECT_GT(mobile.client->peer_count(), 0u);
}

TEST_F(MobilityDetectorTest, StopPreventsFurtherDetections) {
  MobilityDetectorConfig config;
  config.sample_interval = sim::seconds(2.0);
  MobilityDetector detector{swarm.world.sim, *mobile->client, config};
  detector.start();
  swarm.run_for(20.0);
  detector.stop();
  mobile->host->stack->abort_all();
  swarm.run_for(30.0);
  EXPECT_EQ(detector.detections(), 0u);
}

}  // namespace
}  // namespace wp2p::core
