// Integration tests of the assembled wP2P client: component wiring, identity
// retention + role reversal across hand-offs, LIHD limit dynamics, AM filter
// activity on live traffic, and mobility-aware fetch behaviour end-to-end.
#include <gtest/gtest.h>

#include "core/wp2p_client.hpp"
#include "exp/swarm.hpp"
#include "media/playability.hpp"

namespace wp2p::core {
namespace {

using exp::Swarm;

bt::Metainfo small_file(std::int64_t size = 4 * 1024 * 1024) {
  return bt::Metainfo::create("media.mpg", size, 256 * 1024, "tracker", 9);
}

bt::ClientConfig fast_config() {
  bt::ClientConfig c;
  c.announce_interval = sim::seconds(30.0);
  return c;
}

struct WP2PTest : ::testing::Test {
  bt::Metainfo meta = small_file();
  Swarm swarm{21, meta};

  std::unique_ptr<WP2PClient> make_mobile(WP2PConfig config = {},
                                          net::WirelessParams wless = {}) {
    config.base.announce_interval = sim::seconds(30.0);
    exp::World::Host& host = swarm.world.add_wireless_host("mobile", wless);
    return std::make_unique<WP2PClient>(*host.node, *host.stack, swarm.tracker, meta,
                                        config);
  }
};

TEST_F(WP2PTest, ComponentsAreWiredPerConfig) {
  auto mobile = make_mobile();
  EXPECT_NE(mobile->am(), nullptr);
  EXPECT_NE(mobile->lihd(), nullptr);
  EXPECT_NE(mobile->ma_selector(), nullptr);
  EXPECT_TRUE(mobile->client().config().retain_peer_id);
  EXPECT_TRUE(mobile->client().config().role_reversal);

  WP2PConfig off;
  off.age_based_manipulation = false;
  off.incentive_aware = false;
  off.mobility_aware = false;
  auto plain = make_mobile(off);
  EXPECT_EQ(plain->am(), nullptr);
  EXPECT_EQ(plain->lihd(), nullptr);
  EXPECT_EQ(plain->ma_selector(), nullptr);
  EXPECT_FALSE(plain->client().config().retain_peer_id);
}

TEST_F(WP2PTest, DownloadsToCompletion) {
  swarm.add_wired("seed", true, fast_config());
  auto mobile = make_mobile();
  swarm.start_all();
  mobile->start();
  const sim::SimTime deadline = sim::seconds(600.0);
  while (swarm.world.sim.now() < deadline && !mobile->client().complete()) {
    swarm.run_for(1.0);
  }
  EXPECT_TRUE(mobile->client().complete());
}

TEST_F(WP2PTest, IdentityRetainedAndRoleReversedOnHandoff) {
  auto& seed = swarm.add_wired("seed", true, fast_config());
  seed->set_upload_limit(util::Rate::kBps(200));
  auto mobile = make_mobile();
  swarm.start_all();
  mobile->start();
  swarm.run_for(20.0);
  const bt::PeerId id = mobile->client().peer_id();
  ASSERT_GT(mobile->client().peer_count(), 0u);

  mobile->client().node().change_address();
  EXPECT_EQ(mobile->client().peer_id(), id);  // IA: identity retained
  swarm.run_for(2.0);
  EXPECT_GT(mobile->client().peer_count(), 0u);  // RR: reconnected instantly
}

TEST_F(WP2PTest, AmFilterSeesTraffic) {
  swarm.add_wired("seed", true, fast_config());
  net::WirelessParams wless;
  wless.bit_error_rate = 2e-6;
  auto mobile = make_mobile({}, wless);
  swarm.start_all();
  mobile->start();
  swarm.run_for(30.0);
  EXPECT_GT(mobile->am()->stats().acks_decoupled, 0u);  // young-phase decoupling ran
}

TEST_F(WP2PTest, LihdStartsAtHalfMaxAndStaysBounded) {
  swarm.add_wired("seed", true, fast_config());
  auto mobile = make_mobile();
  swarm.start_all();
  mobile->start();
  const LihdConfig& lc = mobile->lihd()->config();
  EXPECT_DOUBLE_EQ(mobile->lihd()->current_limit().bytes_per_sec(),
                   (lc.max_upload * 0.5).bytes_per_sec());
  swarm.run_for(120.0);
  EXPECT_GT(mobile->lihd()->updates(), 10u);
  EXPECT_GE(mobile->lihd()->current_limit(), lc.min_upload);
  EXPECT_LE(mobile->lihd()->current_limit(), lc.max_upload);
  // The client's live upload limit is whatever LIHD last set.
  EXPECT_DOUBLE_EQ(mobile->client().upload_limit().bytes_per_sec(),
                   mobile->lihd()->current_limit().bytes_per_sec());
}

TEST_F(WP2PTest, MobilityAwareFetchKeepsPlayablePrefix) {
  // Compare playability trajectories: wP2P (MF) vs default (rarest-first),
  // each downloading alone from one seed.
  auto run = [&](bool use_wp2p) {
    Swarm s{use_wp2p ? 31u : 32u, meta};
    s.add_wired("seed", true, fast_config());
    media::PlayabilityAnalyzer analyzer;
    if (use_wp2p) {
      exp::World::Host& host = s.world.add_wireless_host("mobile");
      WP2PConfig config;
      config.base.announce_interval = sim::seconds(30.0);
      WP2PClient mobile{*host.node, *host.stack, s.tracker, meta, config};
      mobile.client().on_piece_complete = [&](int) { analyzer.sample(mobile.client().store()); };
      s.start_all();
      mobile.start();
      while (!mobile.client().complete() && s.world.sim.now() < sim::seconds(900.0)) {
        s.run_for(1.0);
      }
      EXPECT_TRUE(mobile.client().complete());
    } else {
      auto& leech = s.add_wireless("mobile", false, fast_config());
      leech->on_piece_complete = [&](int) { analyzer.sample(leech->store()); };
      s.start_all();
      while (!leech->complete() && s.world.sim.now() < sim::seconds(900.0)) {
        s.run_for(1.0);
      }
      EXPECT_TRUE(leech->complete());
    }
    return analyzer.playable_at(0.5);
  };
  const double wp2p_playable = run(true);
  const double default_playable = run(false);
  // The paper (Fig. 9a): ~30% playable at 50% downloaded for MF vs ~5% for
  // rarest-first.
  EXPECT_GT(wp2p_playable, 0.2);
  EXPECT_LT(default_playable, 0.2);
  EXPECT_GT(wp2p_playable, default_playable);
}

}  // namespace
}  // namespace wp2p::core
