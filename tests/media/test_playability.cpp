#include "media/playability.hpp"

#include <gtest/gtest.h>

namespace wp2p::media {
namespace {

struct PlayabilityTest : ::testing::Test {
  bt::Metainfo meta = bt::Metainfo::create("v.mpg", 1024 * 1024, 256 * 1024);
  bt::PieceStore store{meta};
  PlayabilityAnalyzer analyzer;
};

TEST_F(PlayabilityTest, EmptyStoreIsUnplayable) {
  EXPECT_DOUBLE_EQ(PlayabilityAnalyzer::playable_fraction(store), 0.0);
}

TEST_F(PlayabilityTest, OutOfOrderPiecesStayUnplayable) {
  store.mark_piece(2);
  store.mark_piece(3);
  EXPECT_DOUBLE_EQ(PlayabilityAnalyzer::playable_fraction(store), 0.0);
}

TEST_F(PlayabilityTest, PrefixBecomesPlayable) {
  store.mark_piece(0);
  EXPECT_DOUBLE_EQ(PlayabilityAnalyzer::playable_fraction(store), 0.25);
  store.mark_piece(1);
  EXPECT_DOUBLE_EQ(PlayabilityAnalyzer::playable_fraction(store), 0.5);
}

TEST_F(PlayabilityTest, HoleFillRestoresFullPrefix) {
  store.mark_piece(0);
  store.mark_piece(2);
  EXPECT_DOUBLE_EQ(PlayabilityAnalyzer::playable_fraction(store), 0.25);
  store.mark_piece(1);
  EXPECT_DOUBLE_EQ(PlayabilityAnalyzer::playable_fraction(store), 0.75);
}

TEST_F(PlayabilityTest, CompleteFileFullyPlayable) {
  store.mark_all();
  EXPECT_DOUBLE_EQ(PlayabilityAnalyzer::playable_fraction(store), 1.0);
}

TEST_F(PlayabilityTest, TrajectoryRecordsProgress) {
  store.mark_piece(1);
  analyzer.sample(store);
  store.mark_piece(0);
  analyzer.sample(store);
  ASSERT_EQ(analyzer.trajectory().size(), 2u);
  EXPECT_DOUBLE_EQ(analyzer.trajectory()[0].playable_fraction, 0.0);
  EXPECT_DOUBLE_EQ(analyzer.trajectory()[1].playable_fraction, 0.5);
}

TEST_F(PlayabilityTest, PlayableAtInterpolatesStepwise) {
  store.mark_piece(0);
  analyzer.sample(store);  // downloaded 0.25, playable 0.25
  store.mark_piece(2);
  analyzer.sample(store);  // downloaded 0.5, playable 0.25
  store.mark_piece(1);
  analyzer.sample(store);  // downloaded 0.75, playable 0.75
  EXPECT_DOUBLE_EQ(analyzer.playable_at(0.1), 0.0);   // before first sample
  EXPECT_DOUBLE_EQ(analyzer.playable_at(0.5), 0.25);
  EXPECT_DOUBLE_EQ(analyzer.playable_at(0.8), 0.75);
}

TEST_F(PlayabilityTest, ClearResetsTrajectory) {
  analyzer.sample(store);
  analyzer.clear();
  EXPECT_TRUE(analyzer.trajectory().empty());
}

}  // namespace
}  // namespace wp2p::media
