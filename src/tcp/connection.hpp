// A bi-directional TCP connection (socket-level API + protocol state machine).
//
// Each Connection owns one sender half and one receiver half of the same
// four-tuple. Congestion control is NewReno-style: slow start, congestion
// avoidance, fast retransmit/recovery on three duplicate ACKs, and RTO with
// exponential backoff. ACKs piggyback on reverse-direction data whenever the
// reverse sender can transmit within the delayed-ACK window; duplicate ACKs
// are always sent as pure ACKs and are never piggybacked (the behaviour whose
// wireless consequences Section 3.2 of the paper dissects).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "net/address.hpp"
#include "sim/simulator.hpp"
#include "tcp/params.hpp"
#include "tcp/segment.hpp"

namespace wp2p::net {
class Node;
}

namespace wp2p::tcp {

class Stack;

enum class ConnState { kClosed, kConnecting, kAccepting, kEstablished, kFinSent, kDead };

enum class CloseReason {
  kLocalClose,    // we sent a FIN and it completed
  kRemoteClose,   // peer's FIN arrived
  kTimeout,       // retransmissions exhausted
  kReset,         // RST received
  kAborted,       // local abort (address change / teardown)
};

const char* to_string(CloseReason reason);

struct ConnStats {
  std::int64_t bytes_sent = 0;         // first transmissions only
  std::int64_t bytes_retransmitted = 0;
  std::int64_t bytes_acked = 0;
  std::int64_t bytes_delivered = 0;    // in-order delivery to the app
  std::uint64_t segments_sent = 0;
  std::uint64_t pure_acks_sent = 0;
  std::uint64_t piggybacked_acks = 0;  // data segments that carried new ACK info
  std::uint64_t dupacks_sent = 0;
  std::uint64_t dupacks_received = 0;
  std::uint64_t fast_retransmits = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t corrupt_segments = 0;  // data segments that arrived damaged
};

class Connection : public std::enable_shared_from_this<Connection> {
 public:
  using MessageHandle = std::shared_ptr<const void>;

  // Construction is done by the Stack (active or passive open).
  Connection(Stack& stack, net::Endpoint local, net::Endpoint remote, TcpParams params);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  // --- Application API -------------------------------------------------------
  // Queue a framed message of `bytes` on the stream. The handle is delivered
  // verbatim to the peer's on_message when the last byte arrives in order.
  void send_message(MessageHandle handle, std::int64_t bytes);

  // Bytes queued or in flight (unacked). Apps use this for flow control.
  std::int64_t send_queue_bytes() const { return app_end_ - snd_una_; }

  // Graceful close: FIN after all queued data.
  void close();
  // Abortive local teardown: no packets, peer discovers via RST/timeout.
  void abort(CloseReason reason = CloseReason::kAborted);

  std::function<void()> on_connected;
  std::function<void(const MessageHandle&, std::int64_t bytes)> on_message;
  std::function<void(CloseReason)> on_closed;

  // True while the most recent on_message callback is delivering a message
  // assembled from at least one corrupted segment (see handle_segment). The
  // simulated analogue of a checksum failure surfacing at the application.
  bool last_message_corrupted() const { return last_message_corrupted_; }

  // --- Introspection ---------------------------------------------------------
  net::Endpoint local() const { return local_; }
  net::Endpoint remote() const { return remote_; }
  ConnState state() const { return state_; }
  bool established() const { return state_ == ConnState::kEstablished; }
  const ConnStats& stats() const { return stats_; }
  const TcpParams& params() const { return params_; }
  double cwnd_bytes() const { return cwnd_; }
  std::int64_t flight_size() const { return snd_nxt_ - snd_una_; }
  // Consecutive RTO expiries without forward progress. Nonzero means the
  // remote has stopped ACKing — the signature of a silently dead peer.
  int rto_backoff() const { return backoff_; }
  sim::SimTime smoothed_rtt() const { return srtt_; }

  // --- Driven by the Stack ---------------------------------------------------
  void start_connect();                       // active open: send SYN
  void start_accept(const Segment& syn);      // passive open: send SYN|ACK
  // Demultiplexed incoming segment. `corrupted` marks payload bytes damaged
  // in flight (net-layer fault window); the bytes still count for sequencing,
  // but any message overlapping them is flagged to the application.
  void handle_segment(const Segment& seg, bool corrupted = false);

 private:
  // Senders --------------------------------------------------------------------
  void try_send();
  void send_data_segment(std::int64_t seq, std::int64_t len, bool fresh);
  void send_pure_ack(bool dup);
  void send_syn();
  void send_synack();
  void emit(std::shared_ptr<Segment> seg);

  // ACK-side logic --------------------------------------------------------------
  void process_ack(const Segment& seg);
  void on_new_ack(std::int64_t ack, std::int64_t newly_acked);
  void on_dupack();
  void enter_fast_retransmit();

  // Receive-side logic ----------------------------------------------------------
  void process_data(const Segment& seg, bool corrupted);
  void note_corrupt_bytes(std::int64_t begin, std::int64_t end);
  void deliver_ready_messages();
  void output();       // post-segment transmission + ACK policy pass
  void ack_emitted();  // any outgoing segment carried the current rcv_nxt

  // Timers ------------------------------------------------------------------------
  void arm_rto();
  void cancel_rto();
  void on_rto();
  void update_rtt(sim::SimTime sample);
  sim::SimTime current_rto() const;

  void fail(CloseReason reason);
  void become_established();
  void trace_cwnd(const char* cause);  // kTcpCwnd trace point
  std::int64_t fin_seq() const { return app_end_; }
  bool fin_queued() const { return fin_pending_; }

  Stack& stack_;
  sim::Simulator& sim_;
  net::Endpoint local_;
  net::Endpoint remote_;
  TcpParams params_;
  ConnState state_ = ConnState::kClosed;
  ConnStats stats_;

  // --- Send direction ---
  std::shared_ptr<MessageLedger> ledger_;  // our outgoing message boundaries
  std::int64_t app_end_ = 0;               // total bytes queued by the app
  bool fin_pending_ = false;
  std::int64_t snd_una_ = 0;
  std::int64_t snd_nxt_ = 0;
  std::int64_t snd_max_ = 0;  // highest sequence ever sent (fresh-vs-retransmit)
  double cwnd_ = 0.0;
  double ssthresh_ = 0.0;
  int dupacks_ = 0;
  bool in_recovery_ = false;
  std::int64_t recover_ = 0;
  bool fin_sent_ = false;

  // RTT estimation (one outstanding sample; Karn's rule on retransmit).
  bool rtt_sample_pending_ = false;
  std::int64_t rtt_sample_end_ = 0;
  sim::SimTime rtt_sample_sent_at_ = 0;
  sim::SimTime srtt_ = 0;
  sim::SimTime rttvar_ = 0;
  bool rtt_seeded_ = false;

  // RTO state.
  sim::EventId rto_event_ = sim::kInvalidEventId;
  int backoff_ = 0;        // consecutive timeouts without progress
  int syn_retries_ = 0;

  // --- Receive direction ---
  std::int64_t rcv_nxt_ = 0;
  std::map<std::int64_t, std::int64_t> ooo_;  // out-of-order [start -> end)
  bool remote_fin_seen_ = false;
  std::int64_t remote_fin_seq_ = -1;
  std::shared_ptr<const MessageLedger> peer_ledger_;
  std::size_t next_message_ = 0;       // index into peer ledger
  std::int64_t delivered_offset_ = 0;  // stream offset delivered to the app
  // Stream intervals [begin, end) received from corrupted segments, merged
  // and pruned as messages are delivered. A retransmission of the same range
  // that arrives clean does NOT heal the interval: the first accepted copy
  // is the one the receiver kept.
  std::vector<std::pair<std::int64_t, std::int64_t>> corrupt_spans_;
  bool last_message_corrupted_ = false;
  bool ack_owed_ = false;
  int unacked_arrivals_ = 0;
  sim::EventId ack_event_ = sim::kInvalidEventId;
  sim::SimTime ack_deadline_ = 0;
};

}  // namespace wp2p::tcp
