#include "tcp/stack.hpp"

#include "util/assert.hpp"

namespace wp2p::tcp {

Stack::Stack(net::Node& node, TcpParams params) : node_{node}, params_{params} {
  node_.set_sink(this);
}

Stack::~Stack() {
  // Tear down quietly: no callbacks, no packets.
  for (auto& [key, conn] : connections_) {
    // Prevent Connection::fail from re-entering connection_dead on a map we
    // are destroying.
    conn->on_closed = nullptr;
  }
  auto doomed = std::move(connections_);
  connections_.clear();
  for (auto& [key, conn] : doomed) conn->abort(CloseReason::kAborted);
}

std::shared_ptr<Connection> Stack::connect(net::Endpoint remote) {
  WP2P_ASSERT(remote.valid());
  net::Endpoint local{node_.address(), next_port_++};
  auto conn = std::make_shared<Connection>(*this, local, remote, params_);
  connections_[ConnKey{local.port, remote}] = conn;
  conn->start_connect();
  return conn;
}

void Stack::listen(std::uint16_t port, AcceptHandler handler) {
  WP2P_ASSERT(port != 0);
  listeners_[port] = std::move(handler);
}

void Stack::stop_listening(std::uint16_t port) { listeners_.erase(port); }

void Stack::abort_all(CloseReason reason) {
  auto doomed = std::move(connections_);
  connections_.clear();
  for (auto& [key, conn] : doomed) conn->abort(reason);
}

void Stack::receive(const net::Packet& pkt) {
  const auto* seg = pkt.payload_as<Segment>();
  if (seg == nullptr) return;  // not TCP (e.g. a control-plane packet)
  if (pkt.dst.addr != node_.address()) return;  // raced an address change

  auto it = connections_.find(ConnKey{pkt.dst.port, pkt.src});
  if (it != connections_.end()) {
    // Keep-alive: a message handler may close the connection and erase this
    // map entry (dropping what could be the last reference) while
    // handle_segment is still on the stack.
    auto conn = it->second;
    conn->handle_segment(*seg, pkt.corrupted);
    return;
  }
  if (seg->syn && seg->ack < 0) {
    auto lit = listeners_.find(pkt.dst.port);
    if (lit != listeners_.end()) {
      auto conn = std::make_shared<Connection>(*this, pkt.dst, pkt.src, params_);
      connections_[ConnKey{pkt.dst.port, pkt.src}] = conn;
      // Let the application wire callbacks before the handshake proceeds.
      // The handler may reject the connection by aborting it.
      lit->second(conn);
      if (conn->state() == ConnState::kClosed) conn->start_accept(*seg);
      return;
    }
  }
  if (!seg->rst) send_rst(pkt);
}

void Stack::send_rst(const net::Packet& pkt) {
  ++rsts_sent_;
  auto rst = std::make_shared<Segment>();
  rst->rst = true;
  rst->ack = 0;
  net::Packet out;
  out.src = pkt.dst;
  out.dst = pkt.src;
  out.size = rst->wire_size();
  out.payload = std::move(rst);
  node_.send(std::move(out));
}

void Stack::send_segment(net::Endpoint src, net::Endpoint dst, std::shared_ptr<Segment> seg) {
  net::Packet pkt;
  pkt.src = src;
  pkt.dst = dst;
  pkt.size = seg->wire_size();
  pkt.payload = std::move(seg);
  node_.send(std::move(pkt));
}

void Stack::connection_dead(Connection& conn) {
  connections_.erase(ConnKey{conn.local().port, conn.remote()});
}

}  // namespace wp2p::tcp
