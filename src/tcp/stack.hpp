// Per-node TCP stack: demultiplexing, listeners, and connection lifecycle.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/filter.hpp"
#include "net/node.hpp"
#include "tcp/connection.hpp"
#include "tcp/params.hpp"

namespace wp2p::tcp {

class Stack final : public net::PacketSink {
 public:
  using AcceptHandler = std::function<void(std::shared_ptr<Connection>)>;

  explicit Stack(net::Node& node, TcpParams params = {});
  ~Stack() override;

  Stack(const Stack&) = delete;
  Stack& operator=(const Stack&) = delete;

  net::Node& node() { return node_; }
  sim::Simulator& sim() { return node_.sim(); }
  const TcpParams& params() const { return params_; }
  void set_params(const TcpParams& params) { params_ = params; }

  // Active open to `remote`. The connection is returned immediately in
  // kConnecting state; on_connected fires when the handshake completes.
  std::shared_ptr<Connection> connect(net::Endpoint remote);

  // Passive open: accept connections on `port`.
  void listen(std::uint16_t port, AcceptHandler handler);
  void stop_listening(std::uint16_t port);

  // Abort every connection (used on address change, per the paper's model of
  // task re-initiation after a hand-off).
  void abort_all(CloseReason reason = CloseReason::kAborted);

  // PacketSink.
  void receive(const net::Packet& pkt) override;

  // Internal: used by Connection.
  void send_segment(net::Endpoint src, net::Endpoint dst, std::shared_ptr<Segment> seg);
  void connection_dead(Connection& conn);

  std::size_t open_connections() const { return connections_.size(); }
  std::uint64_t rsts_sent() const { return rsts_sent_; }

  // If set, called whenever a new connection is accepted or fails — useful
  // hooks for instrumentation.
  std::function<void(Connection&, CloseReason)> on_connection_failed;

 private:
  struct ConnKey {
    std::uint16_t local_port;
    net::Endpoint remote;
    bool operator==(const ConnKey&) const = default;
  };
  struct ConnKeyHash {
    std::size_t operator()(const ConnKey& k) const noexcept {
      std::size_t h = std::hash<net::Endpoint>{}(k.remote);
      return h ^ (static_cast<std::size_t>(k.local_port) << 1);
    }
  };

  void send_rst(const net::Packet& pkt);

  net::Node& node_;
  TcpParams params_;
  std::unordered_map<ConnKey, std::shared_ptr<Connection>, ConnKeyHash> connections_;
  std::unordered_map<std::uint16_t, AcceptHandler> listeners_;
  std::uint16_t next_port_ = 40000;
  std::uint64_t rsts_sent_ = 0;
};

}  // namespace wp2p::tcp
