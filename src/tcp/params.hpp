// Tunable parameters of the TCP model.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace wp2p::tcp {

struct TcpParams {
  std::int64_t mss = 1448;                      // payload bytes per full segment
  std::int64_t init_cwnd_segments = 2;          // RFC 3390-era initial window
  std::int64_t init_ssthresh = 64 * 1024;      // bytes (classic BSD initial ssthresh)
  std::int64_t rwnd = 256 * 1024;               // static receive window, bytes
  sim::SimTime init_rto = sim::seconds(1.0);
  sim::SimTime min_rto = sim::milliseconds(200.0);
  sim::SimTime max_rto = sim::seconds(60.0);
  // How long a receiver holds an owed ACK hoping to piggyback it on reverse
  // data before emitting a pure ACK (delayed-ACK timer).
  sim::SimTime ack_delay = sim::milliseconds(10.0);
  int ack_every_segments = 2;  // owe an urgent ACK after this many unacked arrivals
  // Grace period before an urgent (every-2nd-segment) ACK goes out pure.
  // Models batch packet processing: a reverse data segment transmitted within
  // this window absorbs the ACK, which is why bidirectional P2P connections
  // piggyback almost all their ACKs (Section 3.2 of the paper).
  sim::SimTime quickack_delay = sim::milliseconds(4.0);
  // When reverse data is queued (a bi-directional bulk exchange), hold owed
  // ACKs this long hoping to piggyback before emitting a pure ACK. Real
  // stacks defer ACKs aggressively in this situation — which is precisely
  // what makes piggybacked ACK info fragile on a lossy wireless leg and what
  // wP2P's Age-based Manipulation compensates for. DUPACKs are never held.
  sim::SimTime piggyback_hold = sim::milliseconds(50.0);
  int dupack_threshold = 3;
  int max_data_retries = 8;  // consecutive RTOs before the connection fails
  int max_syn_retries = 5;

  // TEST ONLY. Deliberately removes the 1-MSS congestion-window floor (RTO
  // collapses to half an MSS, partial-ACK deflation may go negative) so the
  // fuzz harness can prove that the trace invariant checker catches a broken
  // protocol and that shrinking converges on a minimal failing schedule.
  // Never set this outside harness self-tests.
  bool unsafe_no_cwnd_floor = false;
};

}  // namespace wp2p::tcp
