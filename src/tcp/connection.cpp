#include "tcp/connection.hpp"

#include <algorithm>

#include "tcp/stack.hpp"
#include "trace/recorder.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"

namespace wp2p::tcp {

namespace {
constexpr const char* kLog = "tcp";

// [[maybe_unused]]: referenced only from WP2P_TRACE expansions, which a
// WP2P_TRACE_DISABLED build removes entirely.
[[maybe_unused]] std::string flow_key(net::Endpoint local, net::Endpoint remote) {
  return net::to_string(local) + ">" + net::to_string(remote);
}

[[maybe_unused]] trace::TraceEvent tcp_event(trace::Kind kind, Stack& stack,
                                             net::Endpoint local, net::Endpoint remote) {
  return trace::event(trace::Component::kTcp, kind)
      .at(stack.node().name())
      .on(flow_key(local, remote));
}
}

const char* to_string(CloseReason reason) {
  switch (reason) {
    case CloseReason::kLocalClose: return "local-close";
    case CloseReason::kRemoteClose: return "remote-close";
    case CloseReason::kTimeout: return "timeout";
    case CloseReason::kReset: return "reset";
    case CloseReason::kAborted: return "aborted";
  }
  return "?";
}

Connection::Connection(Stack& stack, net::Endpoint local, net::Endpoint remote,
                       TcpParams params)
    : stack_{stack},
      sim_{stack.sim()},
      local_{local},
      remote_{remote},
      params_{params},
      ledger_{std::make_shared<MessageLedger>()} {
  cwnd_ = static_cast<double>(params_.init_cwnd_segments * params_.mss);
  ssthresh_ = static_cast<double>(params_.init_ssthresh);
}

Connection::~Connection() {
  cancel_rto();
  if (ack_event_ != sim::kInvalidEventId) sim_.cancel(ack_event_);
}

// --- Application API ---------------------------------------------------------

void Connection::send_message(MessageHandle handle, std::int64_t bytes) {
  WP2P_ASSERT(bytes > 0);
  WP2P_ASSERT_MSG(!fin_pending_, "send after close");
  if (state_ == ConnState::kDead) return;
  app_end_ += bytes;
  ledger_->entries.push_back({app_end_, std::move(handle)});
  try_send();
}

void Connection::close() {
  if (state_ == ConnState::kDead) return;
  if (state_ == ConnState::kConnecting || state_ == ConnState::kAccepting) {
    abort(CloseReason::kLocalClose);
    return;
  }
  if (fin_pending_) return;
  fin_pending_ = true;
  state_ = ConnState::kFinSent;
  try_send();
}

void Connection::abort(CloseReason reason) {
  if (state_ == ConnState::kDead) return;
  fail(reason);
}

void Connection::fail(CloseReason reason) {
  auto self = shared_from_this();  // keep alive while the stack drops its ref
  cancel_rto();
  if (ack_event_ != sim::kInvalidEventId) {
    sim_.cancel(ack_event_);
    ack_event_ = sim::kInvalidEventId;
  }
  state_ = ConnState::kDead;
  stack_.connection_dead(*this);
  WP2P_TRACE(sim_, tcp_event(trace::Kind::kTcpClose, stack_, local_, remote_)
                       .why(to_string(reason)));
  WP2P_LOG(util::LogLevel::kDebug, sim::to_seconds(sim_.now()), kLog, "%s -> %s closed: %s",
           net::to_string(local_).c_str(), net::to_string(remote_).c_str(),
           to_string(reason));
  // Move the callback out first: the handler may detach/replace our callbacks
  // while it runs, which must not destroy the closure being executed.
  auto closed_cb = std::move(on_closed);
  if (closed_cb) closed_cb(reason);
}

// --- Handshake ---------------------------------------------------------------

void Connection::start_connect() {
  WP2P_ASSERT(state_ == ConnState::kClosed);
  state_ = ConnState::kConnecting;
  send_syn();
  arm_rto();
}

void Connection::start_accept(const Segment& syn) {
  WP2P_ASSERT(syn.syn);
  WP2P_ASSERT(state_ == ConnState::kClosed);
  state_ = ConnState::kAccepting;
  send_synack();
  arm_rto();
}

void Connection::send_syn() {
  auto seg = std::make_shared<Segment>();
  seg->syn = true;
  seg->ack = -1;
  emit(std::move(seg));
}

void Connection::send_synack() {
  auto seg = std::make_shared<Segment>();
  seg->syn = true;
  seg->ack = rcv_nxt_;  // acknowledges the SYN
  emit(std::move(seg));
}

void Connection::become_established() {
  state_ = fin_pending_ ? ConnState::kFinSent : ConnState::kEstablished;
  backoff_ = 0;
  cancel_rto();
  WP2P_TRACE(sim_, tcp_event(trace::Kind::kTcpState, stack_, local_, remote_)
                       .why(state_ == ConnState::kFinSent ? "fin-sent" : "established")
                       .with("cwnd", cwnd_)
                       .with("ssthresh", ssthresh_));
  if (on_connected) on_connected();
}

// --- Segment dispatch ----------------------------------------------------------

void Connection::handle_segment(const Segment& seg, bool corrupted) {
  if (state_ == ConnState::kDead) return;
  if (seg.rst) {
    fail(CloseReason::kReset);
    return;
  }

  switch (state_) {
    case ConnState::kConnecting:
      if (seg.syn && seg.ack >= 0) {
        become_established();
        send_pure_ack(false);
      }
      return;
    case ConnState::kAccepting:
      if (seg.syn) {
        send_synack();  // our SYN|ACK was lost
        return;
      }
      if (seg.ack >= 0) become_established();
      break;  // fall through to normal processing of this segment
    case ConnState::kEstablished:
    case ConnState::kFinSent:
      if (seg.syn) {
        // Peer retransmitted SYN|ACK: our final handshake ACK was lost.
        send_pure_ack(false);
        return;
      }
      break;
    case ConnState::kClosed:
    case ConnState::kDead:
      return;
  }

  if (seg.ack >= 0) process_ack(seg);
  if (state_ == ConnState::kDead) return;  // ack processing may complete a close
  if (seg.payload > 0 || seg.fin) process_data(seg, corrupted);
  if (state_ == ConnState::kDead) return;
  output();
}

// Single output pass after a segment is fully processed (mirrors tcp_output):
// data transmission happens with the freshest rcv_nxt, so owed ACKs piggyback
// whenever the window lets reverse data flow.
void Connection::output() {
  try_send();
  if (!ack_owed_) return;
  sim::SimTime delay = unacked_arrivals_ >= params_.ack_every_segments
                           ? params_.quickack_delay
                           : params_.ack_delay;
  // Reverse bulk data queued but window-blocked: hold the ACK hoping to ride
  // the next data segment. Capped so fast flows cannot stretch ACKs without
  // bound (the hold matters in the slow, lossy small-window regime).
  if (snd_nxt_ < app_end_ && unacked_arrivals_ < 4 * params_.ack_every_segments &&
      params_.piggyback_hold > delay) {
    delay = params_.piggyback_hold;
  }
  const sim::SimTime deadline = sim_.now() + delay;
  if (ack_event_ != sim::kInvalidEventId) {
    if (ack_deadline_ <= deadline) return;  // an earlier ACK is already armed
    sim_.cancel(ack_event_);
  }
  ack_deadline_ = deadline;
  ack_event_ = sim_.after(delay, [this] {
    ack_event_ = sim::kInvalidEventId;
    if (ack_owed_) send_pure_ack(false);
  });
}

// --- ACK processing --------------------------------------------------------------

void Connection::process_ack(const Segment& seg) {
  const std::int64_t ack = seg.ack;
  if (ack > snd_una_) {
    const std::int64_t newly = ack - snd_una_;
    const std::int64_t app_before = std::min(snd_una_, app_end_);
    snd_una_ = ack;
    stats_.bytes_acked += std::min(snd_una_, app_end_) - app_before;
    dupacks_ = 0;
    backoff_ = 0;  // forward progress resets the retry budget
    if (rtt_sample_pending_ && ack >= rtt_sample_end_) {
      update_rtt(sim_.now() - rtt_sample_sent_at_);
      rtt_sample_pending_ = false;
    }
    on_new_ack(ack, newly);
    if (state_ == ConnState::kDead) return;
    if (snd_una_ >= snd_nxt_) {
      cancel_rto();
    } else {
      arm_rto();
    }
    // A fully acknowledged FIN completes a graceful local close.
    if (fin_sent_ && ack >= fin_seq() + 1) {
      fail(CloseReason::kLocalClose);
      return;
    }
  } else if (ack == snd_una_ && seg.pure_ack() && snd_nxt_ > snd_una_) {
    ++stats_.dupacks_received;
    on_dupack();
  }
}

void Connection::on_new_ack(std::int64_t ack, std::int64_t newly) {
  const double mss = static_cast<double>(params_.mss);
  if (in_recovery_) {
    if (ack >= recover_) {
      cwnd_ = ssthresh_;
      in_recovery_ = false;
      trace_cwnd("exit-recovery");
    } else {
      // NewReno partial ACK: retransmit the next hole, deflate the window.
      const std::int64_t len =
          std::min<std::int64_t>(params_.mss, std::max<std::int64_t>(app_end_ - snd_una_, 0));
      if (len > 0 || (fin_pending_ && snd_una_ == app_end_)) {
        send_data_segment(snd_una_, len, /*fresh=*/false);
      }
      cwnd_ = std::max(cwnd_ - static_cast<double>(newly) + mss,
                       params_.unsafe_no_cwnd_floor ? 0.0 : mss);
      trace_cwnd("partial-ack");
    }
    return;
  }
  if (cwnd_ < ssthresh_) {
    cwnd_ += mss;  // slow start
    trace_cwnd("slow-start");
  } else {
    cwnd_ += mss * mss / cwnd_;  // congestion avoidance
    trace_cwnd("congestion-avoidance");
  }
}

// One kTcpCwnd event per window change; `cause` tells the invariant checker
// which rule applies (it keys specifically on "exit-recovery").
void Connection::trace_cwnd([[maybe_unused]] const char* cause) {
  WP2P_TRACE(sim_, tcp_event(trace::Kind::kTcpCwnd, stack_, local_, remote_)
                       .why(cause)
                       .with("cwnd", cwnd_)
                       .with("ssthresh", ssthresh_)
                       .with("mss", static_cast<double>(params_.mss))
                       .with("flight", static_cast<double>(flight_size())));
}

void Connection::on_dupack() {
  if (in_recovery_) {
    cwnd_ += static_cast<double>(params_.mss);
    return;  // the post-segment output pass transmits if the window opened
  }
  if (++dupacks_ == params_.dupack_threshold) enter_fast_retransmit();
}

void Connection::enter_fast_retransmit() {
  ++stats_.fast_retransmits;
  const double mss = static_cast<double>(params_.mss);
  const double flight = static_cast<double>(flight_size());
  [[maybe_unused]] const double cwnd_before = cwnd_;
  ssthresh_ = std::max(flight / 2.0, 2.0 * mss);
  recover_ = snd_nxt_;
  in_recovery_ = true;
  const std::int64_t len =
      std::min<std::int64_t>(params_.mss, std::max<std::int64_t>(app_end_ - snd_una_, 0));
  send_data_segment(snd_una_, len, /*fresh=*/false);
  cwnd_ = ssthresh_ + 3.0 * mss;
  WP2P_TRACE(sim_, tcp_event(trace::Kind::kTcpFastRetransmit, stack_, local_, remote_)
                       .with("cwnd_before", cwnd_before)
                       .with("cwnd", cwnd_)
                       .with("ssthresh", ssthresh_)
                       .with("flight", flight)
                       .with("mss", mss));
  arm_rto();
}

// --- Transmission ------------------------------------------------------------------

void Connection::try_send() {
  if (state_ != ConnState::kEstablished && state_ != ConnState::kFinSent) return;
  const std::int64_t seq_end = app_end_ + (fin_pending_ ? 1 : 0);
  const double window = std::min(cwnd_, static_cast<double>(params_.rwnd));
  while (snd_nxt_ < seq_end) {
    const std::int64_t flight = snd_nxt_ - snd_una_;
    if (static_cast<double>(flight) >= window) break;
    const std::int64_t len =
        std::min<std::int64_t>(params_.mss, app_end_ - snd_nxt_);
    const bool fresh = snd_nxt_ >= snd_max_;
    send_data_segment(snd_nxt_, len, fresh);
    snd_nxt_ += len + ((fin_pending_ && snd_nxt_ + len == app_end_) ? 1 : 0);
    snd_max_ = std::max(snd_max_, snd_nxt_);
    if (len == 0) break;  // the FIN-only segment is the last thing to send
  }
}

void Connection::send_data_segment(std::int64_t seq, std::int64_t len, bool fresh) {
  auto seg = std::make_shared<Segment>();
  seg->seq = seq;
  seg->payload = len;
  seg->ack = rcv_nxt_;
  seg->fin = fin_pending_ && (seq + len == app_end_);
  if (seg->fin) fin_sent_ = true;
  if (len > 0) seg->ledger = ledger_;
  if (fresh) {
    stats_.bytes_sent += len;
    if (!rtt_sample_pending_) {
      rtt_sample_pending_ = true;
      rtt_sample_end_ = seq + seg->logical_len();
      rtt_sample_sent_at_ = sim_.now();
    }
  } else {
    stats_.bytes_retransmitted += len;
    rtt_sample_pending_ = false;  // Karn's rule
  }
  if (ack_owed_) {
    ++stats_.piggybacked_acks;
    ack_emitted();
  }
  emit(std::move(seg));
  if (rto_event_ == sim::kInvalidEventId) arm_rto();
}

void Connection::send_pure_ack(bool dup) {
  auto seg = std::make_shared<Segment>();
  seg->seq = snd_nxt_;
  seg->payload = 0;
  seg->ack = rcv_nxt_;
  seg->dup_hint = dup;
  ++stats_.pure_acks_sent;
  if (dup) ++stats_.dupacks_sent;
  ack_emitted();
  emit(std::move(seg));
}

void Connection::emit(std::shared_ptr<Segment> seg) {
  ++stats_.segments_sent;
  stack_.send_segment(local_, remote_, std::move(seg));
}

// --- Receive side --------------------------------------------------------------------

void Connection::process_data(const Segment& seg, bool corrupted) {
  const std::int64_t start = seg.seq;
  const std::int64_t end = seg.seq + seg.logical_len();
  if (seg.ledger) peer_ledger_ = seg.ledger;
  if (corrupted && seg.payload > 0 && seg.seq + seg.payload > rcv_nxt_) {
    // The damaged bytes will (now or once the hole fills) be the copy the
    // receiver keeps, so remember the span. Overlap with data already held
    // clean over-reports corruption slightly; acceptable for a fault model.
    note_corrupt_bytes(std::max(start, rcv_nxt_), seg.seq + seg.payload);
    ++stats_.corrupt_segments;
  }
  if (seg.fin) {
    remote_fin_seen_ = true;
    remote_fin_seq_ = seg.seq + seg.payload;
  }

  if (end <= rcv_nxt_) {
    // Stale retransmission: re-ACK immediately so the peer resynchronizes.
    send_pure_ack(false);
    return;
  }
  if (start > rcv_nxt_) {
    // Hole: buffer and emit an immediate pure duplicate ACK. Spec-following
    // receivers never piggyback DUPACKs (Section 3.2 of the paper).
    auto it = ooo_.lower_bound(start);
    if (it != ooo_.begin()) {
      auto prev = std::prev(it);
      if (prev->second >= start) it = prev;
    }
    std::int64_t new_start = start;
    std::int64_t new_end = end;
    while (it != ooo_.end() && it->first <= new_end) {
      new_start = std::min(new_start, it->first);
      new_end = std::max(new_end, it->second);
      it = ooo_.erase(it);
    }
    ooo_[new_start] = new_end;
    send_pure_ack(true);
    return;
  }

  // In-order (possibly overlapping) data: advance and absorb buffered runs.
  rcv_nxt_ = std::max(rcv_nxt_, end);
  for (auto it = ooo_.begin(); it != ooo_.end() && it->first <= rcv_nxt_;) {
    rcv_nxt_ = std::max(rcv_nxt_, it->second);
    it = ooo_.erase(it);
  }
  deliver_ready_messages();
  if (state_ == ConnState::kDead) return;

  if (remote_fin_seen_ && rcv_nxt_ >= remote_fin_seq_ + 1) {
    send_pure_ack(false);  // acknowledge the FIN
    fail(CloseReason::kRemoteClose);
    return;
  }
  ack_owed_ = true;
  ++unacked_arrivals_;  // the post-segment output pass decides pure vs piggyback
}

void Connection::note_corrupt_bytes(std::int64_t begin, std::int64_t end) {
  if (begin >= end) return;
  // Merge into the sorted span list (a handful of entries at most: spans are
  // pruned as messages deliver).
  auto it = corrupt_spans_.begin();
  while (it != corrupt_spans_.end() && it->second < begin) ++it;
  if (it == corrupt_spans_.end() || it->first > end) {
    corrupt_spans_.insert(it, {begin, end});
    return;
  }
  it->first = std::min(it->first, begin);
  it->second = std::max(it->second, end);
  auto next = std::next(it);
  while (next != corrupt_spans_.end() && next->first <= it->second) {
    it->second = std::max(it->second, next->second);
    next = corrupt_spans_.erase(next);
  }
}

void Connection::deliver_ready_messages() {
  if (!peer_ledger_) return;
  auto self = shared_from_this();  // callbacks may close/abort us
  // Work on a copy: a handler may detach (null out) on_message while running,
  // and the executing closure must stay alive through its own invocation.
  auto handler = on_message;
  while (next_message_ < peer_ledger_->entries.size()) {
    const auto& entry = peer_ledger_->entries[next_message_];
    if (entry.end_offset > rcv_nxt_) break;
    const std::int64_t bytes = entry.end_offset - delivered_offset_;
    const std::int64_t begin = delivered_offset_;
    delivered_offset_ = entry.end_offset;
    stats_.bytes_delivered += bytes;
    ++next_message_;
    // Flag the message if any of its bytes came from a damaged segment, then
    // drop spans wholly behind the delivery frontier — they can never overlap
    // a future message.
    last_message_corrupted_ = false;
    for (const auto& [s, e] : corrupt_spans_) {
      if (s < entry.end_offset && e > begin) {
        last_message_corrupted_ = true;
        break;
      }
    }
    while (!corrupt_spans_.empty() && corrupt_spans_.front().second <= delivered_offset_) {
      corrupt_spans_.erase(corrupt_spans_.begin());
    }
    if (handler) handler(entry.handle, bytes);
    last_message_corrupted_ = false;
    if (state_ == ConnState::kDead) return;
  }
}

void Connection::ack_emitted() {
  ack_owed_ = false;
  unacked_arrivals_ = 0;
  if (ack_event_ != sim::kInvalidEventId) {
    sim_.cancel(ack_event_);
    ack_event_ = sim::kInvalidEventId;
  }
}

// --- Timers --------------------------------------------------------------------------

sim::SimTime Connection::current_rto() const {
  sim::SimTime base;
  if (!rtt_seeded_) {
    base = params_.init_rto;
  } else {
    base = srtt_ + std::max<sim::SimTime>(4 * rttvar_, sim::milliseconds(10.0));
  }
  base = std::clamp(base, params_.min_rto, params_.max_rto);
  // Exponential backoff for consecutive timeouts.
  for (int i = 0; i < backoff_ && base < params_.max_rto; ++i) base *= 2;
  return std::min(base, params_.max_rto);
}

void Connection::arm_rto() {
  cancel_rto();
  rto_event_ = sim_.after(current_rto(), [this] {
    rto_event_ = sim::kInvalidEventId;
    on_rto();
  });
}

void Connection::cancel_rto() {
  if (rto_event_ != sim::kInvalidEventId) {
    sim_.cancel(rto_event_);
    rto_event_ = sim::kInvalidEventId;
  }
}

void Connection::on_rto() {
  if (state_ == ConnState::kConnecting) {
    if (++syn_retries_ > params_.max_syn_retries) {
      fail(CloseReason::kTimeout);
      return;
    }
    ++backoff_;
    send_syn();
    arm_rto();
    return;
  }
  if (state_ == ConnState::kAccepting) {
    if (++syn_retries_ > params_.max_syn_retries) {
      fail(CloseReason::kTimeout);
      return;
    }
    ++backoff_;
    send_synack();
    arm_rto();
    return;
  }
  if (snd_una_ >= snd_nxt_) return;  // nothing outstanding

  if (++backoff_ > params_.max_data_retries) {
    fail(CloseReason::kTimeout);
    return;
  }
  ++stats_.timeouts;
  const double mss = static_cast<double>(params_.mss);
  [[maybe_unused]] const double cwnd_before = cwnd_;
  ssthresh_ = std::max(static_cast<double>(flight_size()) / 2.0, 2.0 * mss);
  cwnd_ = params_.unsafe_no_cwnd_floor ? mss * 0.5 : mss;
  if (params_.unsafe_no_cwnd_floor) trace_cwnd("rto-collapse");
  WP2P_TRACE(sim_, tcp_event(trace::Kind::kTcpRto, stack_, local_, remote_)
                       .with("cwnd_before", cwnd_before)
                       .with("cwnd", cwnd_)
                       .with("ssthresh", ssthresh_)
                       .with("backoff", static_cast<double>(backoff_))
                       .with("mss", mss));
  in_recovery_ = false;
  dupacks_ = 0;
  rtt_sample_pending_ = false;
  snd_nxt_ = snd_una_;  // go-back-N from the hole
  try_send();
  arm_rto();
}

void Connection::update_rtt(sim::SimTime sample) {
  if (!rtt_seeded_) {
    srtt_ = sample;
    rttvar_ = sample / 2;
    rtt_seeded_ = true;
    return;
  }
  const sim::SimTime err = sample > srtt_ ? sample - srtt_ : srtt_ - sample;
  rttvar_ = (3 * rttvar_ + err) / 4;
  srtt_ = (7 * srtt_ + sample) / 8;
}

}  // namespace wp2p::tcp
