// TCP segment payload carried inside net::Packet.
//
// Sequence numbers are 64-bit byte offsets into the application stream (no
// wraparound handling needed at simulation scale). The handshake (SYN/SYNACK)
// is carried by flags outside the data sequence space; a FIN occupies one
// logical sequence unit after the last data byte, as in real TCP.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/packet.hpp"

namespace wp2p::tcp {

inline constexpr std::int64_t kTcpHeaderBytes = 40;  // IP + TCP headers

// Append-only record of application message boundaries in a stream direction.
// The receiving endpoint reads boundaries for bytes it has verifiably received
// in order; this stands in for the framing bytes a real stream would carry.
struct MessageLedger {
  struct Entry {
    std::int64_t end_offset;  // stream offset one past the message's last byte
    std::shared_ptr<const void> handle;
  };
  std::vector<Entry> entries;
};

struct Segment final : net::PacketPayload {
  std::int64_t seq = 0;      // offset of first payload byte
  std::int64_t payload = 0;  // payload bytes (zero for pure ACKs / handshake)
  std::int64_t ack = -1;     // cumulative ACK: next expected byte; -1 = none
  bool syn = false;
  bool fin = false;  // occupies logical sequence [seq+payload, seq+payload+1)
  bool rst = false;
  // Diagnostic hint set by receivers when emitting a duplicate ACK. Protocol
  // logic never reads it (senders infer duplicates from ack numbers, and the
  // wP2P filter does its own tracking); tests and traces do.
  bool dup_hint = false;
  // Simulation metadata (not protocol data): message boundaries of the
  // sender's stream, readable by the receiver for in-order-delivered bytes.
  std::shared_ptr<const MessageLedger> ledger;

  bool pure_ack() const { return payload == 0 && !syn && !fin && !rst; }
  // Logical length in sequence space (FIN counts as one unit).
  std::int64_t logical_len() const { return payload + (fin ? 1 : 0); }
  std::int64_t wire_size() const { return kTcpHeaderBytes + payload; }
};

}  // namespace wp2p::tcp
