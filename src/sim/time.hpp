// Virtual time for the discrete-event simulator.
//
// SimTime is an integer count of microseconds since simulation start. Integer
// time keeps event ordering exact and runs reproducible across platforms;
// microsecond resolution comfortably resolves sub-millisecond wireless
// serialization times while allowing multi-hour simulated experiments.
#pragma once

#include <cstdint>
#include <limits>

namespace wp2p::sim {

using SimTime = std::int64_t;  // microseconds

inline constexpr SimTime kSimTimeMax = std::numeric_limits<SimTime>::max();

constexpr SimTime microseconds(std::int64_t us) { return us; }
constexpr SimTime milliseconds(double ms) { return static_cast<SimTime>(ms * 1e3); }
constexpr SimTime seconds(double s) { return static_cast<SimTime>(s * 1e6); }
constexpr SimTime minutes(double m) { return seconds(m * 60.0); }

constexpr double to_seconds(SimTime t) { return static_cast<double>(t) / 1e6; }
constexpr double to_milliseconds(SimTime t) { return static_cast<double>(t) / 1e3; }
constexpr double to_minutes(SimTime t) { return static_cast<double>(t) / 60e6; }

}  // namespace wp2p::sim
