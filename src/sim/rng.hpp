// Deterministic random number generation for experiments.
//
// xoshiro256** seeded through SplitMix64, per the generators' reference
// implementations. Every source of randomness in a simulation must flow from
// the Simulator's Rng (or a child stream forked from it) so that a run is a
// pure function of its seed.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace wp2p::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the 64-bit seed into xoshiro's 256-bit state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, 1).
  double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  // Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  // Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) {
    WP2P_ASSERT(n > 0);
    // Lemire's nearly-divisionless bounded sampling; the slight modulo bias of
    // the plain multiply-shift is irrelevant at simulation scales, so use it.
    return static_cast<std::uint64_t>((static_cast<__uint128_t>(next_u64()) * n) >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    WP2P_ASSERT(hi >= lo);
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  // Exponentially distributed with the given mean.
  double exponential(double mean) {
    WP2P_ASSERT(mean > 0.0);
    double u = uniform();
    // uniform() can return exactly 0; nudge to keep log() finite.
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  template <typename T>
  const T& pick(const std::vector<T>& v) {
    WP2P_ASSERT(!v.empty());
    return v[static_cast<std::size_t>(below(v.size()))];
  }

  // A statistically independent child stream (for per-component randomness).
  Rng fork() { return Rng{next_u64() ^ 0xd1b54a32d192ed03ULL}; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::uint64_t state_[4] = {};
};

}  // namespace wp2p::sim
