// Discrete-event simulation kernel.
//
// A Simulator owns the virtual clock, a pending-event priority queue, and the
// root random stream. Events are arbitrary callbacks; ties at equal timestamps
// execute in scheduling order (FIFO), which the protocol state machines rely
// on for determinism.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/rng.hpp"
#include "sim/time.hpp"
#include "util/assert.hpp"

namespace wp2p::trace {
class Recorder;
}

namespace wp2p::sim {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class Simulator {
 public:
  using Handler = std::function<void()>;

  explicit Simulator(std::uint64_t seed = 1) : rng_{seed} {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }
  Rng& rng() { return rng_; }

  // Structured-trace recorder for components simulated on this clock (see
  // trace/trace.hpp). Null (the default) means tracing is off and every
  // WP2P_TRACE point reduces to this one pointer load. Non-owning: the
  // installer (exp::World, bench::ScopedTrace, a test) keeps the recorder
  // alive and detaches it before destruction.
  trace::Recorder* tracer() const { return tracer_; }
  void set_tracer(trace::Recorder* tracer) { tracer_ = tracer; }

  // Schedule `handler` at absolute virtual time `t` (>= now).
  EventId at(SimTime t, Handler handler) {
    WP2P_ASSERT_MSG(t >= now_, "cannot schedule into the past");
    EventId id = ++next_id_;
    queue_.push(Entry{t, id, std::move(handler)});
    live_.insert(id);
    return id;
  }

  // Schedule `handler` after a relative delay (>= 0).
  EventId after(SimTime delay, Handler handler) {
    WP2P_ASSERT(delay >= 0);
    return at(now_ + delay, std::move(handler));
  }

  // Cancel a pending event. Cancelling an already-fired, already-cancelled,
  // or never-scheduled id is a harmless no-op, which lets owners cancel
  // defensively in dtors. Only live ids are tracked, so stale cancels cannot
  // accumulate state or skew has_pending().
  void cancel(EventId id) { live_.erase(id); }

  bool has_pending() const { return !live_.empty(); }

  // Execute the next event. Returns false if the queue is empty.
  bool step() {
    while (!queue_.empty()) {
      // priority_queue has no non-const top()+move; the handler is moved out
      // via const_cast, which is safe because the entry is popped immediately.
      Entry& top = const_cast<Entry&>(queue_.top());
      SimTime t = top.time;
      EventId id = top.id;
      Handler handler = std::move(top.handler);
      queue_.pop();
      if (live_.erase(id) == 0) continue;  // cancelled before it fired
      WP2P_ASSERT(t >= now_);
      now_ = t;
      ++processed_;
      handler();
      return true;
    }
    return false;
  }

  // Run events until the queue drains or the clock would pass `horizon`.
  // The clock is left at min(horizon, time of last event) — i.e. reaching the
  // horizon advances the clock to exactly the horizon.
  void run_until(SimTime horizon) {
    while (!queue_.empty()) {
      if (peek_time() > horizon) break;
      step();
    }
    if (now_ < horizon) now_ = horizon;
  }

  // Run to queue exhaustion (use only in tests/examples with finite traffic).
  void run() {
    while (step()) {
    }
  }

  std::uint64_t events_processed() const { return processed_; }

 private:
  struct Entry {
    SimTime time;
    EventId id;
    Handler handler;
    // Min-heap by (time, id): later entries compare lower priority.
    bool operator<(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return id > other.id;
    }
  };

  SimTime peek_time() {
    // Skip over cancelled heads so the horizon check sees the real next event.
    while (!queue_.empty()) {
      if (live_.contains(queue_.top().id)) return queue_.top().time;
      queue_.pop();
    }
    return kSimTimeMax;
  }

  SimTime now_ = 0;
  trace::Recorder* tracer_ = nullptr;
  EventId next_id_ = 0;
  std::uint64_t processed_ = 0;
  std::priority_queue<Entry> queue_;
  std::unordered_set<EventId> live_;  // scheduled, not yet fired or cancelled
  Rng rng_;
};

// A repeating task: fires `callback` every `interval` until stopped or its
// owner is destroyed. Used for choker rounds, tracker announces, rate meters,
// and mobility (IP-change) processes.
class PeriodicTask {
 public:
  using Callback = std::function<void()>;

  PeriodicTask(Simulator& sim, SimTime interval, Callback callback)
      : sim_{sim}, interval_{interval}, callback_{std::move(callback)} {
    WP2P_ASSERT(interval_ > 0);
  }

  ~PeriodicTask() { stop(); }

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void start() { start_after(interval_); }

  void start_after(SimTime first_delay) {
    stop();
    running_ = true;
    event_ = sim_.after(first_delay, [this] { fire(); });
  }

  void stop() {
    if (running_) {
      sim_.cancel(event_);
      running_ = false;
    }
  }

  bool running() const { return running_; }
  void set_interval(SimTime interval) {
    WP2P_ASSERT(interval > 0);
    interval_ = interval;
  }
  SimTime interval() const { return interval_; }

 private:
  void fire() {
    if (!running_) return;
    // Re-arm before the callback so the callback may stop() or re-interval.
    event_ = sim_.after(interval_, [this] { fire(); });
    callback_();
  }

  Simulator& sim_;
  SimTime interval_;
  Callback callback_;
  EventId event_ = kInvalidEventId;
  bool running_ = false;
};

}  // namespace wp2p::sim
