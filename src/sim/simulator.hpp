// Discrete-event simulation kernel.
//
// A Simulator owns the virtual clock, a pending-event queue, and the root
// random stream. Events are arbitrary callbacks; ties at equal timestamps
// execute in scheduling order (FIFO), which the protocol state machines rely
// on for determinism. The queue is a calendar queue by default (amortised
// O(1) at 10k–100k-peer scale); the old binary heap stays selectable for
// differential tests — both produce bit-identical event order.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <utility>

#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"
#include "util/assert.hpp"

namespace wp2p::trace {
class Recorder;
}

namespace wp2p::sim {

class Simulator {
 public:
  using Handler = Event::Handler;

  explicit Simulator(std::uint64_t seed = 1,
                     EventQueueKind queue_kind = EventQueueKind::kCalendar)
      : queue_kind_{queue_kind}, rng_{seed} {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }
  Rng& rng() { return rng_; }
  EventQueueKind queue_kind() const { return queue_kind_; }

  // Structured-trace recorder for components simulated on this clock (see
  // trace/trace.hpp). Null (the default) means tracing is off and every
  // WP2P_TRACE point reduces to this one pointer load. Non-owning: the
  // installer (exp::World, bench::ScopedTrace, a test) keeps the recorder
  // alive and detaches it before destruction.
  trace::Recorder* tracer() const { return tracer_; }
  void set_tracer(trace::Recorder* tracer) { tracer_ = tracer; }

  // Schedule `handler` at absolute virtual time `t` (>= now).
  EventId at(SimTime t, Handler handler) {
    WP2P_ASSERT_MSG(t >= now_, "cannot schedule into the past");
    EventId id = ++next_id_;
    push(Event{t, id, std::move(handler)});
    live_.insert(id);
    return id;
  }

  // Schedule `handler` after a relative delay (>= 0).
  EventId after(SimTime delay, Handler handler) {
    WP2P_ASSERT(delay >= 0);
    return at(now_ + delay, std::move(handler));
  }

  // Cancel a pending event. Cancelling an already-fired, already-cancelled,
  // or never-scheduled id is a harmless no-op, which lets owners cancel
  // defensively in dtors. Only live ids are tracked, so stale cancels cannot
  // accumulate state or skew has_pending(). The tombstoned entry — and the
  // closure state it captured — is swept eagerly once tombstones dominate the
  // queue, so reschedule-heavy workloads (RTO timers, announce backoff,
  // PeriodicTask churn) hold O(live) memory, not O(ever-scheduled).
  void cancel(EventId id) {
    if (live_.erase(id) == 0) return;
    const std::size_t stored = queue_entries();
    if (stored >= kCompactMinEntries && (stored - live_.size()) * 2 > stored) {
      compact();
    }
  }

  bool has_pending() const { return !live_.empty(); }

  // Execute the next event. Returns false if the queue is empty.
  bool step() {
    while (queue_entries() > 0) {
      Event e = pop_min();
      if (live_.erase(e.id) == 0) continue;  // cancelled before it fired
      WP2P_ASSERT(e.time >= now_);
      now_ = e.time;
      ++processed_;
      e.handler();
      return true;
    }
    return false;
  }

  // Run events until the queue drains or the clock would pass `horizon`.
  // The clock is left at min(horizon, time of last event) — i.e. reaching the
  // horizon advances the clock to exactly the horizon.
  void run_until(SimTime horizon) {
    while (queue_entries() > 0) {
      if (peek_time() > horizon) break;
      step();
    }
    if (now_ < horizon) now_ = horizon;
  }

  // Run to queue exhaustion (use only in tests/examples with finite traffic).
  void run() {
    while (step()) {
    }
  }

  std::uint64_t events_processed() const { return processed_; }

  // Entries physically stored in the queue, cancellation tombstones included.
  // Diagnostics / regression tests only; callers want has_pending().
  std::size_t queue_entries() const {
    return queue_kind_ == EventQueueKind::kCalendar ? calendar_.size() : heap_.size();
  }

 private:
  // Sweep tombstones once they are the majority of a non-trivial queue: the
  // O(stored) rebuild amortises to O(1) per cancel, and small queues are never
  // worth rebuilding.
  static constexpr std::size_t kCompactMinEntries = 64;

  void push(Event e) {
    if (queue_kind_ == EventQueueKind::kCalendar) {
      calendar_.push(std::move(e));
    } else {
      heap_.push(std::move(e));
    }
  }

  Event pop_min() {
    return queue_kind_ == EventQueueKind::kCalendar ? calendar_.pop_min() : heap_.pop_min();
  }

  EventKey min_key() {
    return queue_kind_ == EventQueueKind::kCalendar ? calendar_.min_key() : heap_.min_key();
  }

  void compact() {
    const auto keep = [this](EventId id) { return live_.contains(id); };
    if (queue_kind_ == EventQueueKind::kCalendar) {
      calendar_.compact(keep);
    } else {
      heap_.compact(keep);
    }
  }

  SimTime peek_time() {
    // Skip over cancelled heads so the horizon check sees the real next event.
    while (queue_entries() > 0) {
      const EventKey k = min_key();
      if (live_.contains(k.id)) return k.time;
      pop_min();
    }
    return kSimTimeMax;
  }

  SimTime now_ = 0;
  trace::Recorder* tracer_ = nullptr;
  EventQueueKind queue_kind_;
  EventId next_id_ = 0;
  std::uint64_t processed_ = 0;
  CalendarQueue calendar_;  // used when queue_kind_ == kCalendar
  BinaryHeapQueue heap_;    // used when queue_kind_ == kBinaryHeap
  std::unordered_set<EventId> live_;  // scheduled, not yet fired or cancelled
  Rng rng_;
};

// A repeating task: fires `callback` every `interval` until stopped or its
// owner is destroyed. Used for choker rounds, tracker announces, rate meters,
// and mobility (IP-change) processes.
class PeriodicTask {
 public:
  using Callback = std::function<void()>;

  PeriodicTask(Simulator& sim, SimTime interval, Callback callback)
      : sim_{sim}, interval_{interval}, callback_{std::move(callback)} {
    WP2P_ASSERT(interval_ > 0);
  }

  ~PeriodicTask() { stop(); }

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void start() { start_after(interval_); }

  void start_after(SimTime first_delay) {
    stop();
    running_ = true;
    event_ = sim_.after(first_delay, [this] { fire(); });
  }

  void stop() {
    if (running_) {
      sim_.cancel(event_);
      running_ = false;
    }
  }

  bool running() const { return running_; }
  void set_interval(SimTime interval) {
    WP2P_ASSERT(interval > 0);
    interval_ = interval;
  }
  SimTime interval() const { return interval_; }

 private:
  void fire() {
    if (!running_) return;
    // Re-arm before the callback so the callback may stop() or re-interval.
    event_ = sim_.after(interval_, [this] { fire(); });
    callback_();
  }

  Simulator& sim_;
  SimTime interval_;
  Callback callback_;
  EventId event_ = kInvalidEventId;
  bool running_ = false;
};

}  // namespace wp2p::sim
