// Simulated stable storage for resume snapshots — the fault model under
// bt::ResumeStore.
//
// Real mobile flash is where session persistence goes to die: the OS kills
// the app mid-write (torn records), an eager cache acks a write that never
// reaches the medium (stale snapshots), and a busy eMMC stalls a commit for
// seconds. StableStorage models exactly those three failure modes over a
// bounded append-only journal so the resume path above it can be driven
// through every degradation it claims to survive.
//
// Journal format. Each append produces a Record carrying a monotonically
// increasing sequence number and a checksum chained from its predecessor:
//
//   checksum(r) = fnv1a(payload, seed = prev_checksum)
//
// A torn write journals a truncated payload under the full-payload checksum,
// so verification fails on load; a stale drop acks the caller but never
// journals anything, so load() simply finds an older snapshot. load() walks
// the journal newest-to-oldest and returns the newest record whose chain
// checksum verifies, counting everything younger as discarded.
//
// At-rest integrity is modelled separately: rot_piece() marks a payload
// region (a verified piece) as silently rotted on the medium, and
// piece_intact() lets a trust-but-verify resume path discover the rot by
// re-checking sampled pieces.
//
// All latency and fault draws come from a stream forked off the simulator's
// Rng at construction, so a run remains a pure function of its seed and a
// simulation that never constructs a StableStorage draws nothing extra.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "trace/recorder.hpp"
#include "trace/trace.hpp"

namespace wp2p::sim {

struct StorageParams {
  SimTime write_latency = milliseconds(5.0);  // commit time per append
  double torn_write_prob = 0.0;   // journal a truncated record instead
  double stale_drop_prob = 0.0;   // ack the caller, never journal
  double stall_prob = 0.0;        // append pays an extra stall
  SimTime stall = seconds(2.0);   // the extra stall, when drawn
  int journal_capacity = 8;       // bounded journal; oldest records evicted
};

class StableStorage {
 public:
  struct Record {
    std::uint64_t seq = 0;
    std::string payload;
    std::uint64_t prev = 0;      // checksum of the predecessor record
    std::uint64_t checksum = 0;  // chained checksum of the FULL payload
    bool torn = false;           // payload truncated by a torn write
  };

  struct Stats {
    std::uint64_t writes = 0;
    std::uint64_t torn_writes = 0;
    std::uint64_t stale_drops = 0;
    std::uint64_t stalls = 0;
    std::uint64_t loads = 0;
    std::uint64_t records_discarded = 0;  // checksum-invalid records skipped
  };

  struct LoadResult {
    std::optional<Record> record;  // newest checksum-valid record, if any
    int discarded = 0;             // younger records rejected by the chain
  };

  StableStorage(Simulator& sim, StorageParams params, std::string label)
      : sim_{sim}, params_{params}, label_{std::move(label)}, rng_{sim.rng().fork()} {}

  StableStorage(const StableStorage&) = delete;
  StableStorage& operator=(const StableStorage&) = delete;

  // FNV-1a over `data`, chained from `seed` — the journal checksum.
  static std::uint64_t chain_checksum(std::uint64_t seed, const std::string& data) {
    std::uint64_t h = seed ^ 0xcbf29ce484222325ULL;
    for (unsigned char byte : data) {
      h ^= byte;
      h *= 0x100000001b3ULL;
    }
    return h;
  }

  // Commit `payload` asynchronously; `done(seq)` fires when the device acks.
  // The ack does NOT promise durability — a stale drop acks without
  // journaling and a torn write journals garbage, exactly like real storage
  // that lies. Returns the sequence number assigned to the write.
  std::uint64_t append(std::string payload, std::function<void(std::uint64_t)> done = {}) {
    const std::uint64_t seq = ++next_seq_;
    const bool torn = rng_.bernoulli(params_.torn_write_prob);
    const bool stale = !torn && rng_.bernoulli(params_.stale_drop_prob);
    const bool stalled = rng_.bernoulli(params_.stall_prob);
    SimTime latency = params_.write_latency;
    if (stalled) {
      latency += params_.stall;
      ++stats_.stalls;
    }
    sim_.after(latency, [this, seq, payload = std::move(payload), torn, stale,
                         done = std::move(done)]() mutable {
      commit(seq, std::move(payload), torn, stale);
      if (done) done(seq);
    });
    return seq;
  }

  // Walk the journal newest-to-oldest; the newest record whose chained
  // checksum verifies wins. Everything younger is discarded (and counted) —
  // the degrade-to-older-snapshot path the resume layer builds on.
  LoadResult load() {
    ++stats_.loads;
    LoadResult result;
    for (auto it = journal_.rbegin(); it != journal_.rend(); ++it) {
      if (chain_checksum(it->prev, it->payload) == it->checksum) {
        result.record = *it;
        break;
      }
      ++result.discarded;
    }
    stats_.records_discarded += static_cast<std::uint64_t>(result.discarded);
    WP2P_TRACE(sim_, trace::event(trace::Component::kStore, trace::Kind::kStoreLoad)
                         .at(label_)
                         .why(result.record ? "ok" : "empty")
                         .with("seq", result.record
                                          ? static_cast<double>(result.record->seq)
                                          : -1.0)
                         .with("discarded", static_cast<double>(result.discarded))
                         .with("journal", static_cast<double>(journal_.size())));
    return result;
  }

  // At-rest rot: piece `i`'s stored bytes silently decayed on the medium.
  void rot_piece(int piece) { rotted_.insert(piece); }
  bool piece_intact(int piece) const { return rotted_.count(piece) == 0; }
  std::size_t rotted_pieces() const { return rotted_.size(); }

  const Stats& stats() const { return stats_; }
  std::size_t journal_size() const { return journal_.size(); }
  std::uint64_t last_seq() const { return next_seq_; }
  const StorageParams& params() const { return params_; }

 private:
  void commit(std::uint64_t seq, std::string payload, bool torn, bool stale) {
    ++stats_.writes;
    const char* outcome = "ok";
    if (stale) {
      // The device acked but the write never reached the journal.
      ++stats_.stale_drops;
      outcome = "stale";
    } else {
      Record rec;
      rec.seq = seq;
      rec.prev = journal_.empty() ? 0 : journal_.back().checksum;
      rec.checksum = chain_checksum(rec.prev, payload);  // over the FULL payload
      rec.torn = torn;
      if (torn) {
        ++stats_.torn_writes;
        outcome = "torn";
        payload.resize(payload.size() / 2);  // the tail never made it
      }
      rec.payload = std::move(payload);
      journal_.push_back(std::move(rec));
      while (static_cast<int>(journal_.size()) > params_.journal_capacity) {
        journal_.pop_front();
      }
    }
    WP2P_TRACE(sim_, trace::event(trace::Component::kStore, trace::Kind::kStoreWrite)
                         .at(label_)
                         .why(outcome)
                         .with("seq", static_cast<double>(seq))
                         .with("journal", static_cast<double>(journal_.size())));
  }

  Simulator& sim_;
  StorageParams params_;
  std::string label_;
  Rng rng_;
  std::deque<Record> journal_;
  std::unordered_set<int> rotted_;
  std::uint64_t next_seq_ = 0;
  Stats stats_;
};

}  // namespace wp2p::sim
