// Pending-event queues for the simulator kernel.
//
// Two interchangeable implementations behind one contract: pop order is
// exactly ascending (time, id) — unique ids make the order total, so both
// queues replay any schedule/cancel sequence into the identical event stream
// and identical trace hashes.
//
//   BinaryHeapQueue  — the classic O(log n) heap; reference implementation
//                      and differential-testing oracle.
//   CalendarQueue    — Brown's calendar queue (CACM 1988): a hash of time
//                      buckets with amortised O(1) enqueue/dequeue, which is
//                      what keeps 10k–100k-peer swarms from spending their
//                      wall clock inside heap sift-downs.
//
// Both store cancellation tombstones (the Simulator filters by its live set)
// and support compact() so cancelled entries can be swept in bulk.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/time.hpp"
#include "util/assert.hpp"
#include "util/small_fn.hpp"

namespace wp2p::sim {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

// Which pending-event queue a Simulator uses. Calendar is the default at any
// scale; the binary heap remains selectable for differential tests and as a
// fallback while the calendar implementation earns trust.
enum class EventQueueKind { kCalendar, kBinaryHeap };

struct EventKey {
  SimTime time = 0;
  EventId id = kInvalidEventId;

  friend bool operator<(const EventKey& a, const EventKey& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.id < b.id;
  }
};

struct Event {
  // 56 bytes of inline closure storage covers every handler the protocol
  // stack schedules ([this, alive, endpoint, message]-sized captures) without
  // touching the heap.
  using Handler = util::SmallFn<56>;

  SimTime time = 0;
  EventId id = kInvalidEventId;
  Handler handler;

  EventKey key() const { return {time, id}; }
};

// --- Binary heap --------------------------------------------------------------

class BinaryHeapQueue {
 public:
  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

  void push(Event e) {
    entries_.push_back(std::move(e));
    std::push_heap(entries_.begin(), entries_.end(), Later{});
  }

  EventKey min_key() const {
    WP2P_ASSERT(!entries_.empty());
    return entries_.front().key();
  }

  Event pop_min() {
    WP2P_ASSERT(!entries_.empty());
    std::pop_heap(entries_.begin(), entries_.end(), Later{});
    Event e = std::move(entries_.back());
    entries_.pop_back();
    return e;
  }

  // Drop every entry for which keep() is false (cancel tombstones).
  template <typename Keep>
  void compact(const Keep& keep) {
    std::erase_if(entries_, [&](const Event& e) { return !keep(e.id); });
    std::make_heap(entries_.begin(), entries_.end(), Later{});
  }

 private:
  struct Later {  // min-heap: "a sorts after b"
    bool operator()(const Event& a, const Event& b) const { return b.key() < a.key(); }
  };

  std::vector<Event> entries_;
};

// --- Calendar queue -----------------------------------------------------------

class CalendarQueue {
 public:
  CalendarQueue() { reset_buckets(kMinBuckets, /*width=*/milliseconds(1.0)); }

  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }

  void push(Event e) {
    const EventKey k = e.key();
    insert_sorted(bucket_of(e.time), std::move(e));
    ++count_;
    if (count_ == 1 || k.time < cursor_top_ - width_) {
      // First entry, or an entry scheduled before the dequeue cursor's current
      // window: rewind the cursor so the next min-search cannot skip it.
      set_cursor(k.time);
    }
    if (count_ > (mask_ + 1) * 2) resize((mask_ + 1) * 2);
  }

  EventKey min_key() {
    locate_min();
    return buckets_[cursor_bucket_].front().key();
  }

  Event pop_min() {
    locate_min();
    std::vector<Event>& bucket = buckets_[cursor_bucket_];
    Event e = std::move(bucket.front());
    bucket.erase(bucket.begin());
    --count_;
    if (count_ >= kMinBuckets && count_ * 2 < mask_ + 1) resize((mask_ + 1) / 2);
    return e;
  }

  template <typename Keep>
  void compact(const Keep& keep) {
    for (std::vector<Event>& bucket : buckets_) {
      std::erase_if(bucket, [&](const Event& e) { return !keep(e.id); });
    }
    count_ = 0;
    for (const std::vector<Event>& bucket : buckets_) count_ += bucket.size();
    if (count_ == 0) return;
    // Entries are gone but the cursor may now sit past the new minimum (its
    // bucket's earlier entries were the survivors' predecessors). Rewind to
    // the global minimum to restore the cursor invariant.
    set_cursor(scan_min_time());
    if (count_ >= kMinBuckets && count_ * 2 < mask_ + 1) resize(bucket_count_for(count_));
  }

 private:
  static constexpr std::size_t kMinBuckets = 16;  // power of two
  static constexpr std::size_t kWidthSample = 64;

  std::size_t bucket_of(SimTime t) const {
    return static_cast<std::size_t>(t / width_) & mask_;
  }

  static std::size_t bucket_count_for(std::size_t count) {
    std::size_t n = kMinBuckets;
    while (n < count) n *= 2;
    return n;
  }

  void insert_sorted(std::size_t b, Event e) {
    std::vector<Event>& bucket = buckets_[b];
    auto pos = std::upper_bound(bucket.begin(), bucket.end(), e.key(),
                                [](const EventKey& k, const Event& other) {
                                  return k < other.key();
                                });
    bucket.insert(pos, std::move(e));
  }

  // Point the dequeue cursor at the year-window containing time `t`.
  void set_cursor(SimTime t) {
    cursor_bucket_ = bucket_of(t);
    cursor_top_ = (t / width_ + 1) * width_;
  }

  // Advance the cursor to the bucket holding the minimum entry. Invariant on
  // entry: no pending event precedes the cursor's current window (push()
  // rewinds when violated), so the first bucket whose front falls inside the
  // running window holds the global minimum — same-time ties always share a
  // bucket and are id-sorted within it.
  void locate_min() {
    WP2P_ASSERT_MSG(count_ > 0, "min of an empty calendar queue");
    std::size_t b = cursor_bucket_;
    SimTime top = cursor_top_;
    for (std::size_t i = 0; i <= mask_; ++i) {
      const std::vector<Event>& bucket = buckets_[b];
      if (!bucket.empty() && bucket.front().time < top) {
        cursor_bucket_ = b;
        cursor_top_ = top;
        return;
      }
      b = (b + 1) & mask_;
      top += width_;
    }
    // Sparse year: nothing within a full rotation. Jump straight to the
    // global minimum front (every bucket's front is its local minimum).
    set_cursor(scan_min_time());
    WP2P_ASSERT(!buckets_[cursor_bucket_].empty());
  }

  SimTime scan_min_time() const {
    EventKey best{kSimTimeMax, ~EventId{0}};
    for (const std::vector<Event>& bucket : buckets_) {
      if (!bucket.empty() && bucket.front().key() < best) best = bucket.front().key();
    }
    return best.time;
  }

  void reset_buckets(std::size_t nbuckets, SimTime width) {
    buckets_.clear();
    buckets_.resize(nbuckets);  // default-construct: Event is move-only
    mask_ = nbuckets - 1;
    width_ = std::max<SimTime>(width, 1);
    cursor_bucket_ = 0;
    cursor_top_ = width_;
  }

  // Rebuild with `nbuckets` buckets and a width fitted to the current event
  // spacing. Deterministic: depends only on queue contents.
  void resize(std::size_t nbuckets) {
    std::vector<Event> all;
    all.reserve(count_);
    for (std::vector<Event>& bucket : buckets_) {
      for (Event& e : bucket) all.push_back(std::move(e));
    }
    reset_buckets(nbuckets, fitted_width(all));
    for (Event& e : all) insert_sorted(bucket_of(e.time), std::move(e));
    if (count_ > 0) set_cursor(scan_min_time());
  }

  // Median inter-event gap over a strided sample — robust against one
  // far-future keep-alive stretching the mean and collapsing every near-term
  // event into a single bucket.
  SimTime fitted_width(const std::vector<Event>& all) const {
    if (all.size() < 2) return std::max<SimTime>(width_, 1);
    std::vector<SimTime> times;
    times.reserve(kWidthSample);
    const std::size_t stride = std::max<std::size_t>(1, all.size() / kWidthSample);
    for (std::size_t i = 0; i < all.size(); i += stride) times.push_back(all[i].time);
    std::sort(times.begin(), times.end());
    std::vector<SimTime> gaps;
    gaps.reserve(times.size());
    for (std::size_t i = 1; i < times.size(); ++i) {
      if (times[i] != times[i - 1]) gaps.push_back(times[i] - times[i - 1]);
    }
    if (gaps.empty()) return 1;  // all sampled events simultaneous
    std::nth_element(gaps.begin(), gaps.begin() + static_cast<std::ptrdiff_t>(gaps.size() / 2),
                     gaps.end());
    // Aim for ~3 events per bucket-year so sorted inserts stay tiny.
    return std::max<SimTime>(1, gaps[gaps.size() / 2] * 3);
  }

  std::vector<std::vector<Event>> buckets_;
  std::size_t mask_ = 0;       // bucket count - 1 (power of two)
  SimTime width_ = 1;          // virtual-time span of one bucket-year slot
  std::size_t count_ = 0;      // entries stored, tombstones included
  std::size_t cursor_bucket_ = 0;
  SimTime cursor_top_ = 1;     // exclusive upper bound of the cursor window
};

}  // namespace wp2p::sim
