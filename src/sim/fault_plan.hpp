// Declarative fault schedules — the adversarial-conditions counterpart of the
// paper's curated testbeds.
//
// A FaultPlan is pure data: a list of timed fault actions (link flaps,
// bit-error episodes, AP hand-off storms, tracker outages, packet
// duplication/reorder windows, peer crash/restart cycles) addressed to nodes
// by name. It knows nothing about the network — net::FaultInjector applies a
// plan to a live topology, and exp::ScenarioFuzzer generates random plans
// from a seed. Plans serialize to a line-oriented text form so a minimized
// failing schedule can be committed to the regression corpus and replayed
// verbatim (see TESTING.md for the schema).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace wp2p::sim {

enum class FaultKind : std::uint8_t {
  kLinkFlap,       // target disconnects for `duration`
  kBerEpisode,     // target's wireless BER raised to `magnitude` for `duration`
  kHandoff,        // one address change at `at` (duration ignored)
  kHandoffStorm,   // `magnitude` address changes spread over `duration`
  kTrackerOutage,  // one tracker drops announces for `duration`; target names
                   // it ("" or "tr0" = primary, "trK" = K-th tracker)
  kDuplicate,      // egress packets duplicated with prob `magnitude` for `duration`
  kReorder,        // adjacent egress packets swapped with prob `magnitude`
  kPeerCrash,      // target's P2P process stops at `at`, restarts after `duration`
  kCorrupt,        // target's egress payload bytes flipped with prob `magnitude`
  kTrackerBlackout,  // EVERY tracker tier drops announces for `duration`
  kCellOutage,       // access point "cellK" goes dark for `duration`
  kCellBer,          // cell "cellK"'s BER raised to `magnitude` for `duration`
  kRoamStorm,        // target station roams `magnitude` times over `duration`
  kSuspend,          // target's app suspends at `at`, resumes after `duration`
  kResume,           // target resumes at `at` (duration ignored)
};

inline const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkFlap: return "link-flap";
    case FaultKind::kBerEpisode: return "ber";
    case FaultKind::kHandoff: return "handoff";
    case FaultKind::kHandoffStorm: return "handoff-storm";
    case FaultKind::kTrackerOutage: return "tracker-outage";
    case FaultKind::kDuplicate: return "duplicate";
    case FaultKind::kReorder: return "reorder";
    case FaultKind::kPeerCrash: return "peer-crash";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kTrackerBlackout: return "tracker-blackout";
    case FaultKind::kCellOutage: return "cell-outage";
    case FaultKind::kCellBer: return "cell-ber";
    case FaultKind::kRoamStorm: return "roam-storm";
    case FaultKind::kSuspend: return "suspend";
    case FaultKind::kResume: return "resume";
  }
  return "?";
}

inline std::optional<FaultKind> fault_kind_from(std::string_view name) {
  for (FaultKind k :
       {FaultKind::kLinkFlap, FaultKind::kBerEpisode, FaultKind::kHandoff,
        FaultKind::kHandoffStorm, FaultKind::kTrackerOutage, FaultKind::kDuplicate,
        FaultKind::kReorder, FaultKind::kPeerCrash, FaultKind::kCorrupt,
        FaultKind::kTrackerBlackout, FaultKind::kCellOutage, FaultKind::kCellBer,
        FaultKind::kRoamStorm, FaultKind::kSuspend, FaultKind::kResume}) {
    if (name == to_string(k)) return k;
  }
  return std::nullopt;
}

struct FaultAction {
  FaultKind kind = FaultKind::kHandoff;
  SimTime at = 0;        // start of the episode
  SimTime duration = 0;  // episode length (0 for instantaneous faults)
  double magnitude = 0;  // BER / probability / hand-off count, per kind
  std::string target;    // node name; empty for swarm-global faults

  SimTime end() const { return at + duration; }
  bool operator==(const FaultAction&) const = default;

  // `fault <kind> at=<s> dur=<s> mag=<v> target=<name>`
  std::string serialize() const {
    char buf[160];
    std::snprintf(buf, sizeof buf, "fault %s at=%.6f dur=%.6f mag=%g target=%s",
                  to_string(kind), to_seconds(at), to_seconds(duration), magnitude,
                  target.c_str());
    return buf;
  }

  static std::optional<FaultAction> parse(std::string_view line);
};

struct FaultPlan {
  std::vector<FaultAction> actions;

  bool empty() const { return actions.empty(); }
  std::size_t size() const { return actions.size(); }

  // Last instant at which any action is still in force.
  SimTime horizon() const {
    SimTime h = 0;
    for (const FaultAction& a : actions) h = std::max(h, a.end());
    return h;
  }

  void sort_by_time() {
    std::stable_sort(actions.begin(), actions.end(),
                     [](const FaultAction& a, const FaultAction& b) { return a.at < b.at; });
  }

  // One action per line; blank lines and non-"fault" lines are ignored, so a
  // plan embeds directly in a scenario spec file.
  std::string serialize() const {
    std::string out;
    for (const FaultAction& a : actions) {
      out += a.serialize();
      out += '\n';
    }
    return out;
  }

  static FaultPlan parse(std::string_view text) {
    FaultPlan plan;
    while (!text.empty()) {
      const std::size_t eol = text.find('\n');
      const std::string_view line = text.substr(0, eol);
      if (auto action = FaultAction::parse(line)) plan.actions.push_back(std::move(*action));
      if (eol == std::string_view::npos) break;
      text.remove_prefix(eol + 1);
    }
    return plan;
  }

  // Seed-deterministic random schedule over the given targets. `wireless`
  // lists the targets that can take BER episodes; every entry of `wireless`
  // must also appear in `targets`. Action times land in [t_min, 0.8*horizon]
  // so every episode has room to end inside the run. `trackers` is the size
  // of the tier list: with more than one, outages pick a tracker ("tr1"...)
  // via the magnitude roll and total blackouts enter the kind mix. With
  // `cells` > 0 the cell-targeted kinds (outage / BER episode / roam storm)
  // enter the mix; `cellular` lists the stations roam storms may move (every
  // entry must also appear in `targets`). With `suspends` the app
  // suspend/resume kind enters the mix as one extra slot past the base kinds.
  // With cells == 0 and suspends off the draw stream is bit-identical to the
  // pre-cellular generator, so legacy seeds replay unchanged.
  static FaultPlan random(Rng& rng, const std::vector<std::string>& targets,
                          const std::vector<std::string>& wireless, double horizon_s,
                          int max_actions, double t_min_s = 5.0, int trackers = 1,
                          int cells = 0, const std::vector<std::string>& cellular = {},
                          bool suspends = false) {
    FaultPlan plan;
    if (targets.empty() || max_actions <= 0 || horizon_s <= t_min_s) return plan;
    const auto n = static_cast<int>(rng.range(1, max_actions));
    const int base_kinds = cells > 0 ? 13 : 10;
    const int kinds = base_kinds + (suspends ? 1 : 0);
    for (int i = 0; i < n; ++i) {
      FaultAction a;
      // Drawing the full tuple keeps the stream layout fixed per action, so
      // shrinking a plan never changes how an untouched action was generated.
      const auto kind_roll = rng.below(static_cast<std::size_t>(kinds));
      const double at_s = rng.uniform(t_min_s, horizon_s * 0.8);
      const double dur_s = rng.uniform(1.0, std::max(2.0, horizon_s * 0.25));
      const double mag_roll = rng.uniform();
      const std::string& target = targets[static_cast<std::size_t>(rng.below(targets.size()))];
      // Extra roll for the cell-targeted kinds (cell index / station pick);
      // drawn only in cellular mode to keep the legacy stream intact.
      const double cell_roll = cells > 0 ? rng.uniform() : 0.0;
      a.at = seconds(at_s);
      a.duration = seconds(dur_s);
      a.target = target;
      // The suspend slot sits past the base kinds, so the switch below sees
      // exactly the same kind_roll values it always has.
      if (suspends && kind_roll == static_cast<std::size_t>(base_kinds)) {
        a.kind = FaultKind::kSuspend;
        a.duration = seconds(std::min(dur_s, 45.0));  // naps the run can outlive
        plan.actions.push_back(std::move(a));
        continue;
      }
      switch (kind_roll) {
        case 0:
          a.kind = FaultKind::kLinkFlap;
          a.duration = seconds(std::min(dur_s, 20.0));  // flaps TCP can survive
          break;
        case 1:
          a.kind = FaultKind::kBerEpisode;
          a.magnitude = 1e-6 + mag_roll * 4e-5;
          if (wireless.empty()) {
            a.kind = FaultKind::kHandoff;  // no wireless host to degrade
            a.magnitude = 0;
          } else if (std::find(wireless.begin(), wireless.end(), a.target) ==
                     wireless.end()) {
            a.target = wireless[static_cast<std::size_t>(rng.below(wireless.size()))];
          }
          break;
        case 2:
          a.kind = FaultKind::kHandoff;
          a.duration = 0;
          break;
        case 3:
          a.kind = FaultKind::kHandoffStorm;
          a.magnitude = 2 + std::floor(mag_roll * 4.0);  // 2-5 hand-offs
          break;
        case 4:
          a.kind = FaultKind::kTrackerOutage;
          a.target.clear();
          if (trackers > 1) {
            // Reuse the magnitude roll (no extra draw): which tracker dies.
            const int idx = static_cast<int>(mag_roll * trackers);
            if (idx > 0) a.target = "tr" + std::to_string(idx);
          }
          break;
        case 5:
          a.kind = FaultKind::kDuplicate;
          a.magnitude = 0.05 + mag_roll * 0.25;
          break;
        case 6:
          a.kind = FaultKind::kReorder;
          a.magnitude = 0.05 + mag_roll * 0.25;
          break;
        case 7:
          a.kind = FaultKind::kCorrupt;
          a.magnitude = 0.05 + mag_roll * 0.25;
          break;
        case 8:
          a.kind = FaultKind::kTrackerBlackout;
          a.target.clear();
          break;
        case 9:
          a.kind = FaultKind::kPeerCrash;
          a.duration = seconds(std::min(dur_s, 30.0));
          break;
        case 10:
          a.kind = FaultKind::kCellOutage;
          a.target = "cell" + std::to_string(std::min(
                                  static_cast<int>(cell_roll * cells), cells - 1));
          a.duration = seconds(std::min(dur_s, 30.0));  // outages roams can outlive
          break;
        case 11:
          a.kind = FaultKind::kCellBer;
          a.target = "cell" + std::to_string(std::min(
                                  static_cast<int>(cell_roll * cells), cells - 1));
          a.magnitude = 1e-6 + mag_roll * 4e-5;
          break;
        default:
          a.kind = FaultKind::kRoamStorm;
          a.magnitude = 2 + std::floor(mag_roll * 4.0);  // 2-5 hand-offs
          if (cellular.empty()) {
            a.kind = FaultKind::kHandoff;  // no roaming-capable station
            a.duration = 0;
            a.magnitude = 0;
          } else {
            a.target = cellular[std::min(
                static_cast<std::size_t>(cell_roll * static_cast<double>(cellular.size())),
                cellular.size() - 1)];
          }
          break;
      }
      plan.actions.push_back(std::move(a));
    }
    plan.sort_by_time();
    return plan;
  }
};

inline std::optional<FaultAction> FaultAction::parse(std::string_view line) {
  // Tokenize on spaces; expects the leading "fault" tag.
  std::vector<std::string_view> tokens;
  while (!line.empty()) {
    const std::size_t sp = line.find(' ');
    if (sp != 0) tokens.push_back(line.substr(0, sp));
    if (sp == std::string_view::npos) break;
    line.remove_prefix(sp + 1);
  }
  if (tokens.size() < 2 || tokens[0] != "fault") return std::nullopt;
  const auto kind = fault_kind_from(tokens[1]);
  if (!kind) return std::nullopt;
  FaultAction action;
  action.kind = *kind;
  for (std::size_t i = 2; i < tokens.size(); ++i) {
    const std::string_view tok = tokens[i];
    const std::size_t eq = tok.find('=');
    if (eq == std::string_view::npos) return std::nullopt;
    const std::string_view key = tok.substr(0, eq);
    const std::string value{tok.substr(eq + 1)};
    if (key == "target") {
      action.target = value;
      continue;
    }
    char* end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0') return std::nullopt;
    if (key == "at") {
      // Round, don't truncate: serialize() prints whole microseconds as
      // %.6f, but strtod lands a hair below the decimal value, and
      // seconds()'s cast would drop a microsecond — breaking the
      // serialize/parse fixpoint the fuzzer round-trip tests rely on.
      action.at = static_cast<SimTime>(std::llround(v * 1e6));
    } else if (key == "dur") {
      action.duration = static_cast<SimTime>(std::llround(v * 1e6));
    } else if (key == "mag") {
      action.magnitude = v;
    } else {
      return std::nullopt;
    }
  }
  return action;
}

}  // namespace wp2p::sim
