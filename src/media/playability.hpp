// Media playability model (Sections 3.6 / 5.2.3).
//
// The paper's metric: a media file is playable up to the end of its in-order
// prefix — "many media formats allow for partial playback of content provided
// the partial information is in sequence". PlayabilityAnalyzer maps a piece
// store's state to the playable fraction, and can record the playable-vs-
// downloaded trajectory of a run (the quantity plotted in Figs. 4b,c / 9a,b).
#pragma once

#include <vector>

#include "bt/piece_store.hpp"

namespace wp2p::media {

class PlayabilityAnalyzer {
 public:
  struct Point {
    double downloaded_fraction;
    double playable_fraction;
  };

  // Playable fraction = in-order prefix bytes / total bytes.
  static double playable_fraction(const bt::PieceStore& store) {
    if (store.meta().total_size == 0) return 1.0;
    return static_cast<double>(store.contiguous_bytes()) /
           static_cast<double>(store.meta().total_size);
  }

  // Record a sample of the trajectory (call from on_piece_complete or on a
  // timer); samples are kept in download order.
  void sample(const bt::PieceStore& store) {
    trajectory_.push_back({store.completed_fraction(), playable_fraction(store)});
  }

  const std::vector<Point>& trajectory() const { return trajectory_; }

  // Playable fraction at the moment the download fraction first reached `x`
  // (linear scan; trajectories are small). Returns 0 before the first sample.
  double playable_at(double downloaded_fraction) const {
    double result = 0.0;
    for (const Point& p : trajectory_) {
      if (p.downloaded_fraction > downloaded_fraction) break;
      result = p.playable_fraction;
    }
    return result;
  }

  void clear() { trajectory_.clear(); }

 private:
  std::vector<Point> trajectory_;
};

}  // namespace wp2p::media
