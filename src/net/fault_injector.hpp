// Applies a sim::FaultPlan to a live network.
//
// The injector schedules every action of the plan on the network's simulator
// and realizes it through existing seams: Node::set_connected (link flaps,
// crash windows), Node::change_address (hand-offs), WirelessChannel's BER
// knob (bit-error episodes), and a PacketFilter installed on the target's
// egress (duplication / reordering) — the same hook the wP2P AM module uses.
// Faults above the network layer (tracker outages, P2P process crashes) are
// delegated to hooks so this layer stays independent of bt::; exp::bind_faults
// wires them to a Swarm.
//
// Every applied action emits a kFaultStart / kFaultEnd trace-event pair, so a
// --check-invariants run validates protocol behaviour *under* each fault and
// the checker's fault-bracket rule audits the injector itself.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "net/filter.hpp"
#include "net/network.hpp"
#include "sim/fault_plan.hpp"
#include "sim/simulator.hpp"

namespace wp2p::net {

class Cell;
class CellularTopology;
class WirelessChannel;

struct FaultInjectorStats {
  std::uint64_t applied = 0;    // actions whose start fired
  std::uint64_t skipped = 0;    // actions with an unresolvable/ineligible target
  std::uint64_t duplicated = 0;  // packets duplicated by chaos filters
  std::uint64_t reordered = 0;   // packet pairs swapped by chaos filters
  std::uint64_t corrupted = 0;   // packets marked corrupt by chaos filters
};

class FaultInjector {
 public:
  // The plan is scheduled immediately; the injector must outlive the
  // simulation run (pending actions hold `this`). Destruction cancels
  // anything still pending, so early teardown is safe.
  FaultInjector(Network& network, sim::FaultPlan plan);
  ~FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Application-layer fault hooks (optional). `tracker_outage(target, true)`
  // begins an outage and `(target, false)` ends it — `target` is the plan's
  // tracker name ("" or "tr0" = primary, "trK" = K-th tracker, "*" = every
  // tier at once, i.e. a total blackout); `peer_process(node, false)` crashes
  // the P2P process on `node`, `(node, true)` restarts it.
  std::function<void(const std::string& target, bool down)> on_tracker_outage;
  std::function<void(Node& node, bool up)> on_peer_process;
  // `peer_suspend(node, true)` suspends the P2P app on `node` (the process is
  // frozen, not crashed: the network stays up and nothing is torn down),
  // `(node, false)` resumes it. Unset, suspend/resume actions count skipped.
  std::function<void(Node& node, bool suspend)> on_peer_suspend;

  // Opt into cell-targeted faults (cell-outage, cell-ber, roam-storm).
  // Without a bound topology those kinds count as skipped.
  void bind_cells(CellularTopology* cells) { cells_ = cells; }

  const sim::FaultPlan& plan() const { return plan_; }
  const FaultInjectorStats& stats() const { return stats_; }
  // Faults currently in force (brackets opened but not yet closed).
  int active_faults() const { return active_; }

 private:
  // Egress filter realizing duplication and reordering windows for one node.
  // Windows nest by depth-counting, and the reorder stash is flushed directly
  // to the access link when the last window closes.
  class ChaosFilter final : public PacketFilter {
   public:
    ChaosFilter(FaultInjector& owner, Node& node)
        : owner_{owner}, node_{node}, rng_{node.sim().rng().fork()} {}

    void egress(Packet pkt, std::vector<Packet>& out) override;

    void adjust_duplicate(int delta, double probability);
    void adjust_reorder(int delta, double probability);
    void adjust_corrupt(int delta, double probability);
    void flush_stash();

   private:
    FaultInjector& owner_;
    Node& node_;
    sim::Rng rng_;
    int duplicate_depth_ = 0;
    int reorder_depth_ = 0;
    int corrupt_depth_ = 0;
    double duplicate_prob_ = 0;
    double reorder_prob_ = 0;
    double corrupt_prob_ = 0;
    bool has_stash_ = false;
    Packet stash_;
  };

  void schedule(const sim::FaultAction& action);
  void apply_start(const sim::FaultAction& action);
  void apply_end(const sim::FaultAction& action);
  void trace_fault(const sim::FaultAction& action, bool start);
  ChaosFilter& chaos_for(Node& node);
  WirelessChannel* wireless_of(Node& node);
  Cell* cell_target(const sim::FaultAction& action);

  Network& network_;
  sim::FaultPlan plan_;
  FaultInjectorStats stats_;
  int active_ = 0;
  std::vector<sim::EventId> pending_;
  // node -> saved BER while an episode is in force (episodes on one node
  // nest: the first start saves, the last end restores).
  struct BerOverride {
    Node* node;
    double saved_ber;
    int depth;
  };
  std::vector<BerOverride> ber_overrides_;
  // cell -> saved BER while a cell-ber episode is in force (same nesting
  // discipline as BerOverride).
  struct CellBerOverride {
    Cell* cell;
    double saved_ber;
    int depth;
  };
  std::vector<CellBerOverride> cell_ber_overrides_;
  CellularTopology* cells_ = nullptr;
  std::deque<ChaosFilter> chaos_;  // deque: filters stay pinned once installed
  std::vector<Node*> chaos_nodes_;
};

}  // namespace wp2p::net
