#include "net/wireless_channel.hpp"

#include <cmath>

#include "net/network.hpp"
#include "net/node.hpp"
#include "trace/recorder.hpp"

namespace wp2p::net {

namespace {
[[maybe_unused]] const char* dir_name(Direction dir) {
  return dir == Direction::kUp ? "up" : "down";
}
}  // namespace

WirelessChannel::WirelessChannel(sim::Simulator& sim, Node& node, Network& network,
                                 WirelessParams params)
    : AccessLink{sim, node, network},
      params_{params},
      up_queue_{params.up_queue_limit},
      down_queue_{params.down_queue_limit},
      rng_{sim.rng().fork()} {}

double WirelessChannel::packet_error_rate(std::int64_t size) const {
  if (params_.bit_error_rate <= 0.0) return 0.0;
  const double bits = static_cast<double>(size) * 8.0;
  return 1.0 - std::pow(1.0 - params_.bit_error_rate, bits);
}

void WirelessChannel::enqueue_up(Packet pkt) {
  if (!node_.connected()) return;
  if (up_queue_.full()) {
    WP2P_TRACE(sim_, trace::event(trace::Component::kChan, trace::Kind::kChanQueueDrop)
                         .at(node_.name())
                         .why("up")
                         .with("size", static_cast<double>(pkt.size))
                         .with("limit", static_cast<double>(params_.up_queue_limit)));
    note_queue_drop(Direction::kUp, pkt);
    return;
  }
  up_queue_.push(std::move(pkt));
  maybe_serve();
}

void WirelessChannel::enqueue_down(Packet pkt) {
  if (!node_.connected()) return;
  if (down_queue_.full()) {
    WP2P_TRACE(sim_, trace::event(trace::Component::kChan, trace::Kind::kChanQueueDrop)
                         .at(node_.name())
                         .why("down")
                         .with("size", static_cast<double>(pkt.size))
                         .with("limit", static_cast<double>(params_.down_queue_limit)));
    note_queue_drop(Direction::kDown, pkt);
    return;
  }
  down_queue_.push(std::move(pkt));
  maybe_serve();
}

void WirelessChannel::reset_queues() {
  up_queue_.clear();
  down_queue_.clear();
}

void WirelessChannel::maybe_serve() {
  if (busy_) return;
  // Round-robin between directions when both have backlog; this is the shared
  // half-duplex medium — uplink data (uploads + ACKs) and downlink data
  // (downloads) contend for the same airtime.
  Direction dir;
  if (up_queue_.empty() && down_queue_.empty()) return;
  if (up_queue_.empty()) {
    dir = Direction::kDown;
  } else if (down_queue_.empty()) {
    dir = Direction::kUp;
  } else {
    dir = last_served_ == Direction::kUp ? Direction::kDown : Direction::kUp;
  }
  last_served_ = dir;
  busy_ = true;
  const bool contended = !up_queue_.empty() && !down_queue_.empty();
  DropTailQueue& queue = dir == Direction::kUp ? up_queue_ : down_queue_;
  Packet pkt = queue.pop();
  sim_.after(frame_airtime(pkt.size, dir, contended),
             [this, dir, pkt = std::move(pkt)]() mutable {
    finish(dir, std::move(pkt), 0);
  });
}

sim::SimTime WirelessChannel::frame_airtime(std::int64_t size, Direction dir,
                                            bool contended) const {
  sim::SimTime airtime = sim::seconds(directional_capacity(params_, dir).seconds_for(size)) +
                         params_.per_packet_overhead;
  if (contended && params_.contention_overhead > 0.0) {
    airtime += static_cast<sim::SimTime>(static_cast<double>(airtime) *
                                         params_.contention_overhead);
  }
  return airtime;
}

void WirelessChannel::finish(Direction dir, Packet pkt, int attempt) {
  note_transmit(dir, pkt);  // airtime was spent whether or not the frame survives
  const bool corrupted = rng_.bernoulli(packet_error_rate(pkt.size));
  if (corrupted && node_.connected() && attempt < params_.mac_retries) {
    // MAC-layer ARQ: retry the frame immediately; the channel stays busy.
    // The retry contends for the medium exactly like the first transmission:
    // the frame in flight is this direction's head, so contention exists
    // whenever the opposite direction has backlog waiting.
    ++mac_retransmissions_;
    WP2P_TRACE(sim_, trace::event(trace::Component::kChan, trace::Kind::kChanArqRetry)
                         .at(node_.name())
                         .why(dir_name(dir))
                         .with("size", static_cast<double>(pkt.size))
                         .with("attempt", static_cast<double>(attempt + 1)));
    const bool contended =
        dir == Direction::kUp ? !down_queue_.empty() : !up_queue_.empty();
    sim_.after(frame_airtime(pkt.size, dir, contended),
               [this, dir, pkt = std::move(pkt), attempt]() mutable {
      finish(dir, std::move(pkt), attempt + 1);
    });
    return;
  }
  busy_ = false;
  const bool alive = node_.connected() && !corrupted;
  if (!alive) {
    if (corrupted) {
      WP2P_TRACE(sim_, trace::event(trace::Component::kChan, trace::Kind::kChanLoss)
                           .at(node_.name())
                           .why(dir_name(dir))
                           .with("size", static_cast<double>(pkt.size))
                           .with("attempts", static_cast<double>(attempt + 1)));
      if (dir == Direction::kUp) {
        ++stats_.up_error_drops;
      } else {
        ++stats_.down_error_drops;
      }
    }
    maybe_serve();
    return;
  }
  sim_.after(params_.prop_delay, [this, dir, pkt = std::move(pkt)]() mutable {
    if (dir == Direction::kUp) {
      network_.forward(std::move(pkt));
    } else {
      node_.deliver(std::move(pkt));
    }
  });
  maybe_serve();
}

}  // namespace wp2p::net
