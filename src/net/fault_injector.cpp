#include "net/fault_injector.hpp"

#include <algorithm>

#include "net/cell.hpp"
#include "net/wireless_channel.hpp"
#include "trace/recorder.hpp"

namespace wp2p::net {

FaultInjector::FaultInjector(Network& network, sim::FaultPlan plan)
    : network_{network}, plan_{std::move(plan)} {
  for (const sim::FaultAction& action : plan_.actions) schedule(action);
}

FaultInjector::~FaultInjector() {
  for (sim::EventId id : pending_) network_.sim().cancel(id);
}

void FaultInjector::schedule(const sim::FaultAction& action) {
  sim::Simulator& sim = network_.sim();
  const sim::SimTime start = std::max(action.at, sim.now());
  pending_.push_back(sim.at(start, [this, &action] { apply_start(action); }));
}

WirelessChannel* FaultInjector::wireless_of(Node& node) {
  return dynamic_cast<WirelessChannel*>(node.access());
}

Cell* FaultInjector::cell_target(const sim::FaultAction& action) {
  if (cells_ == nullptr) return nullptr;
  return cells_->find_cell(action.target);
}

void FaultInjector::trace_fault(const sim::FaultAction& action, bool start) {
  WP2P_TRACE(network_.sim(),
             trace::event(trace::Component::kFault,
                          start ? trace::Kind::kFaultStart : trace::Kind::kFaultEnd)
                 .at(action.target.empty() ? "swarm" : action.target)
                 .why(sim::to_string(action.kind))
                 .with("mag", action.magnitude)
                 .with("dur_s", sim::to_seconds(action.duration)));
}

FaultInjector::ChaosFilter& FaultInjector::chaos_for(Node& node) {
  for (std::size_t i = 0; i < chaos_nodes_.size(); ++i) {
    if (chaos_nodes_[i] == &node) return chaos_[i];
  }
  chaos_.emplace_back(*this, node);
  chaos_nodes_.push_back(&node);
  node.add_egress_filter(&chaos_.back());
  return chaos_.back();
}

void FaultInjector::apply_start(const sim::FaultAction& action) {
  sim::Simulator& sim = network_.sim();
  Node* target = action.target.empty() ? nullptr : network_.find_by_name(action.target);
  const bool needs_node = action.kind != sim::FaultKind::kTrackerOutage &&
                          action.kind != sim::FaultKind::kTrackerBlackout &&
                          action.kind != sim::FaultKind::kCellOutage &&
                          action.kind != sim::FaultKind::kCellBer;
  if (needs_node && target == nullptr) {
    ++stats_.skipped;
    return;
  }

  auto bracket_end = [this, &action](sim::SimTime delay) {
    pending_.push_back(
        network_.sim().after(delay, [this, &action] { apply_end(action); }));
  };

  switch (action.kind) {
    case sim::FaultKind::kLinkFlap:
      target->set_connected(false);
      bracket_end(action.duration);
      break;

    case sim::FaultKind::kBerEpisode: {
      WirelessChannel* channel = wireless_of(*target);
      if (channel == nullptr) {
        ++stats_.skipped;  // BER is meaningless on a wired link
        return;
      }
      auto it = std::find_if(ber_overrides_.begin(), ber_overrides_.end(),
                             [&](const BerOverride& o) { return o.node == target; });
      if (it == ber_overrides_.end()) {
        ber_overrides_.push_back(BerOverride{target, channel->params().bit_error_rate, 1});
      } else {
        ++it->depth;
      }
      channel->set_bit_error_rate(
          std::max(channel->params().bit_error_rate, action.magnitude));
      bracket_end(action.duration);
      break;
    }

    case sim::FaultKind::kHandoff:
      target->change_address();
      break;  // instantaneous: no end bracket

    case sim::FaultKind::kHandoffStorm: {
      const int count = std::max(1, static_cast<int>(action.magnitude));
      const sim::SimTime step = count > 1 ? action.duration / count : 0;
      for (int i = 1; i < count; ++i) {
        pending_.push_back(
            sim.after(step * i, [target] { target->change_address(); }));
      }
      target->change_address();
      bracket_end(action.duration);
      break;
    }

    case sim::FaultKind::kTrackerOutage:
      if (on_tracker_outage) on_tracker_outage(action.target, true);
      bracket_end(action.duration);
      break;

    case sim::FaultKind::kTrackerBlackout:
      if (on_tracker_outage) on_tracker_outage("*", true);
      bracket_end(action.duration);
      break;

    case sim::FaultKind::kDuplicate:
      chaos_for(*target).adjust_duplicate(+1, action.magnitude);
      bracket_end(action.duration);
      break;

    case sim::FaultKind::kReorder:
      chaos_for(*target).adjust_reorder(+1, action.magnitude);
      bracket_end(action.duration);
      break;

    case sim::FaultKind::kCorrupt:
      chaos_for(*target).adjust_corrupt(+1, action.magnitude);
      bracket_end(action.duration);
      break;

    case sim::FaultKind::kPeerCrash:
      // Link down first: a crashed process gets no farewell announce out.
      target->set_connected(false);
      if (on_peer_process) on_peer_process(*target, false);
      bracket_end(action.duration);
      break;

    case sim::FaultKind::kSuspend:
      // Unlike a crash the NETWORK stays up — only the app freezes, which is
      // what makes the remote-side silence-detection timers interesting.
      if (!on_peer_suspend) {
        ++stats_.skipped;
        return;
      }
      on_peer_suspend(*target, true);
      bracket_end(action.duration);
      break;

    case sim::FaultKind::kResume:
      if (!on_peer_suspend) {
        ++stats_.skipped;
        return;
      }
      on_peer_suspend(*target, false);
      break;  // instantaneous: bracket closed below, like kHandoff

    case sim::FaultKind::kCellOutage: {
      Cell* cell = cell_target(action);
      if (cell == nullptr) {
        ++stats_.skipped;  // no topology bound, or unknown cell name
        return;
      }
      cell->set_down(true);
      bracket_end(action.duration);
      break;
    }

    case sim::FaultKind::kCellBer: {
      Cell* cell = cell_target(action);
      if (cell == nullptr) {
        ++stats_.skipped;
        return;
      }
      auto it = std::find_if(cell_ber_overrides_.begin(), cell_ber_overrides_.end(),
                             [&](const CellBerOverride& o) { return o.cell == cell; });
      if (it == cell_ber_overrides_.end()) {
        cell_ber_overrides_.push_back(
            CellBerOverride{cell, cell->params().bit_error_rate, 1});
      } else {
        ++it->depth;
      }
      cell->set_bit_error_rate(
          std::max(cell->params().bit_error_rate, action.magnitude));
      bracket_end(action.duration);
      break;
    }

    case sim::FaultKind::kRoamStorm: {
      if (cells_ == nullptr || cells_->cell_of(*target) < 0) {
        ++stats_.skipped;  // not a cellular station
        return;
      }
      const int count = std::max(1, static_cast<int>(action.magnitude));
      const sim::SimTime step = count > 1 ? action.duration / count : 0;
      // Each firing re-reads the station's current cell: a concurrent
      // scripted roam or cell teardown just shifts where the storm goes next.
      auto roam = [this, target] {
        const int from = cells_->cell_of(*target);
        if (from < 0) return;
        cells_->handoff(
            *target, (static_cast<std::size_t>(from) + 1) % cells_->cell_count());
      };
      for (int i = 1; i < count; ++i) pending_.push_back(sim.after(step * i, roam));
      roam();
      bracket_end(action.duration);
      break;
    }
  }

  ++stats_.applied;
  ++active_;
  trace_fault(action, /*start=*/true);
  if (action.kind == sim::FaultKind::kHandoff ||
      action.kind == sim::FaultKind::kResume) {
    // Close the bracket in the same instant so start/end counts stay paired.
    --active_;
    trace_fault(action, /*start=*/false);
  }
}

void FaultInjector::apply_end(const sim::FaultAction& action) {
  Node* target = action.target.empty() ? nullptr : network_.find_by_name(action.target);

  switch (action.kind) {
    case sim::FaultKind::kLinkFlap:
      if (target != nullptr) target->set_connected(true);
      break;

    case sim::FaultKind::kBerEpisode: {
      auto it = std::find_if(ber_overrides_.begin(), ber_overrides_.end(),
                             [&](const BerOverride& o) { return o.node == target; });
      if (it != ber_overrides_.end() && --it->depth == 0) {
        if (WirelessChannel* channel = wireless_of(*target)) {
          channel->set_bit_error_rate(it->saved_ber);
        }
        ber_overrides_.erase(it);
      }
      break;
    }

    case sim::FaultKind::kTrackerOutage:
      if (on_tracker_outage) on_tracker_outage(action.target, false);
      break;

    case sim::FaultKind::kTrackerBlackout:
      if (on_tracker_outage) on_tracker_outage("*", false);
      break;

    case sim::FaultKind::kDuplicate:
      if (target != nullptr) chaos_for(*target).adjust_duplicate(-1, action.magnitude);
      break;

    case sim::FaultKind::kReorder:
      if (target != nullptr) chaos_for(*target).adjust_reorder(-1, action.magnitude);
      break;

    case sim::FaultKind::kCorrupt:
      if (target != nullptr) chaos_for(*target).adjust_corrupt(-1, action.magnitude);
      break;

    case sim::FaultKind::kPeerCrash:
      if (target != nullptr) {
        target->set_connected(true);
        if (on_peer_process) on_peer_process(*target, true);
      }
      break;

    case sim::FaultKind::kCellOutage:
      if (Cell* cell = cell_target(action)) cell->set_down(false);
      break;

    case sim::FaultKind::kCellBer: {
      Cell* cell = cell_target(action);
      auto it = std::find_if(cell_ber_overrides_.begin(), cell_ber_overrides_.end(),
                             [&](const CellBerOverride& o) { return o.cell == cell; });
      if (cell != nullptr && it != cell_ber_overrides_.end() && --it->depth == 0) {
        cell->set_bit_error_rate(it->saved_ber);
        cell_ber_overrides_.erase(it);
      }
      break;
    }

    case sim::FaultKind::kSuspend:
      if (target != nullptr && on_peer_suspend) on_peer_suspend(*target, false);
      break;

    case sim::FaultKind::kHandoff:
    case sim::FaultKind::kHandoffStorm:
    case sim::FaultKind::kRoamStorm:
    case sim::FaultKind::kResume:
      break;  // nothing to restore
  }

  --active_;
  trace_fault(action, /*start=*/false);
}

// --- ChaosFilter -------------------------------------------------------------

void FaultInjector::ChaosFilter::egress(Packet pkt, std::vector<Packet>& out) {
  if (reorder_depth_ > 0) {
    if (has_stash_) {
      // Emit the newcomer first, then the held packet: one adjacent swap.
      out.push_back(std::move(pkt));
      out.push_back(std::move(stash_));
      has_stash_ = false;
      ++owner_.stats_.reordered;
      return;
    }
    if (rng_.bernoulli(reorder_prob_)) {
      stash_ = std::move(pkt);
      has_stash_ = true;
      return;
    }
  }
  if (duplicate_depth_ > 0 && rng_.bernoulli(duplicate_prob_)) {
    out.push_back(pkt);  // payload is shared, the copy is cheap
    ++owner_.stats_.duplicated;
  }
  if (corrupt_depth_ > 0 && rng_.bernoulli(corrupt_prob_)) {
    // Mark, don't mutate: the payload is shared with the sender's
    // retransmission state, which must keep the pristine copy.
    pkt.corrupted = true;
    ++owner_.stats_.corrupted;
  }
  out.push_back(std::move(pkt));
}

void FaultInjector::ChaosFilter::adjust_duplicate(int delta, double probability) {
  duplicate_depth_ += delta;
  if (delta > 0) duplicate_prob_ = probability;
}

void FaultInjector::ChaosFilter::adjust_reorder(int delta, double probability) {
  reorder_depth_ += delta;
  if (delta > 0) reorder_prob_ = probability;
  if (reorder_depth_ <= 0) flush_stash();
}

void FaultInjector::ChaosFilter::adjust_corrupt(int delta, double probability) {
  corrupt_depth_ += delta;
  if (delta > 0) corrupt_prob_ = probability;
}

void FaultInjector::ChaosFilter::flush_stash() {
  if (!has_stash_) return;
  has_stash_ = false;
  // The window is over; hand the held packet straight to the access link
  // (re-running filters here could re-stash it forever).
  if (node_.access() != nullptr) node_.access()->enqueue_up(std::move(stash_));
}

}  // namespace wp2p::net
