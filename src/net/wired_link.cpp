#include "net/wired_link.hpp"

#include "net/network.hpp"
#include "net/node.hpp"

namespace wp2p::net {

WiredLink::WiredLink(sim::Simulator& sim, Node& node, Network& network, WiredParams params)
    : AccessLink{sim, node, network},
      params_{params},
      up_queue_{params.queue_limit},
      down_queue_{params.queue_limit} {}

void WiredLink::enqueue_up(Packet pkt) {
  if (!node_.connected()) return;
  if (up_queue_.full()) {
    note_queue_drop(Direction::kUp, pkt);
    return;
  }
  up_queue_.push(std::move(pkt));
  maybe_serve(Direction::kUp);
}

void WiredLink::enqueue_down(Packet pkt) {
  if (!node_.connected()) return;
  if (down_queue_.full()) {
    note_queue_drop(Direction::kDown, pkt);
    return;
  }
  down_queue_.push(std::move(pkt));
  maybe_serve(Direction::kDown);
}

void WiredLink::reset_queues() {
  up_queue_.clear();
  down_queue_.clear();
}

void WiredLink::maybe_serve(Direction dir) {
  bool& busy = dir == Direction::kUp ? up_busy_ : down_busy_;
  DropTailQueue& queue = dir == Direction::kUp ? up_queue_ : down_queue_;
  if (busy || queue.empty()) return;
  busy = true;
  Packet pkt = queue.pop();
  util::Rate capacity = dir == Direction::kUp ? params_.up_capacity : params_.down_capacity;
  sim::SimTime serialization = sim::seconds(capacity.seconds_for(pkt.size));
  sim_.after(serialization, [this, dir, pkt = std::move(pkt)]() mutable {
    finish(dir, std::move(pkt));
  });
}

void WiredLink::finish(Direction dir, Packet pkt) {
  bool& busy = dir == Direction::kUp ? up_busy_ : down_busy_;
  busy = false;
  note_transmit(dir, pkt);
  // Propagate, then hand over; the link is already free for the next packet.
  sim_.after(params_.prop_delay, [this, dir, pkt = std::move(pkt)]() mutable {
    if (dir == Direction::kUp) {
      network_.forward(std::move(pkt));
    } else {
      node_.deliver(std::move(pkt));
    }
  });
  maybe_serve(dir);
}

}  // namespace wp2p::net
