// Full-duplex wired access link with independent up/down capacities.
//
// Models residential broadband access (the paper's Comcast cable setup:
// 4 Mbps down / 384 Kbps up) as two independent serialize-then-propagate
// servers with DropTail queues.
#pragma once

#include "net/access_link.hpp"
#include "net/queue.hpp"
#include "util/units.hpp"

namespace wp2p::net {

struct WiredParams {
  util::Rate up_capacity = util::Rate::mbps(10.0);
  util::Rate down_capacity = util::Rate::mbps(10.0);
  sim::SimTime prop_delay = sim::milliseconds(1.0);
  std::size_t queue_limit = 100;  // packets, per direction
};

class WiredLink final : public AccessLink {
 public:
  WiredLink(sim::Simulator& sim, Node& node, Network& network, WiredParams params);

  void enqueue_up(Packet pkt) override;
  void enqueue_down(Packet pkt) override;
  void reset_queues() override;

  const WiredParams& params() const { return params_; }
  void set_params(const WiredParams& params) { params_ = params; }

 private:
  void maybe_serve(Direction dir);
  void finish(Direction dir, Packet pkt);

  WiredParams params_;
  DropTailQueue up_queue_;
  DropTailQueue down_queue_;
  bool up_busy_ = false;
  bool down_busy_ = false;
};

}  // namespace wp2p::net
