// Abstract access link: the last hop between a node and the Internet cloud.
//
// Every node reaches the rest of the network through exactly one access link;
// the link is the node's bandwidth bottleneck and, for wireless nodes, the
// locus of the paper's shared-channel and bit-error effects.
#pragma once

#include <cstdint>
#include <functional>

#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace wp2p::net {

class Node;
class Network;

enum class Direction { kUp, kDown };  // kUp: node -> cloud, kDown: cloud -> node

struct LinkStats {
  std::uint64_t up_packets = 0;    // packets fully transmitted upstream
  std::uint64_t down_packets = 0;  // packets fully transmitted downstream
  std::int64_t up_bytes = 0;
  std::int64_t down_bytes = 0;
  std::uint64_t up_queue_drops = 0;
  std::uint64_t down_queue_drops = 0;
  std::uint64_t up_error_drops = 0;  // BER losses (wireless only)
  std::uint64_t down_error_drops = 0;
};

class AccessLink {
 public:
  AccessLink(sim::Simulator& sim, Node& node, Network& network)
      : sim_{sim}, node_{node}, network_{network} {}
  virtual ~AccessLink() = default;

  AccessLink(const AccessLink&) = delete;
  AccessLink& operator=(const AccessLink&) = delete;

  // Node -> cloud. Called by the node after egress filters.
  virtual void enqueue_up(Packet pkt) = 0;
  // Cloud -> node. Called by the network.
  virtual void enqueue_down(Packet pkt) = 0;
  // Flush all queued packets (e.g. on disconnection).
  virtual void reset_queues() = 0;

  const LinkStats& stats() const { return stats_; }

  // Fired when a packet finishes transmission on the link (pre-loss-check for
  // wireless, i.e. counts airtime use). Used by Fig. 2(b,c) instrumentation.
  std::function<void(Direction, const Packet&)> on_transmit;
  // Fired on a queue (buffer) drop.
  std::function<void(Direction, const Packet&)> on_queue_drop;

 protected:
  void note_transmit(Direction dir, const Packet& pkt) {
    if (dir == Direction::kUp) {
      ++stats_.up_packets;
      stats_.up_bytes += pkt.size;
    } else {
      ++stats_.down_packets;
      stats_.down_bytes += pkt.size;
    }
    if (on_transmit) on_transmit(dir, pkt);
  }

  void note_queue_drop(Direction dir, const Packet& pkt) {
    if (dir == Direction::kUp) {
      ++stats_.up_queue_drops;
    } else {
      ++stats_.down_queue_drops;
    }
    if (on_queue_drop) on_queue_drop(dir, pkt);
  }

  sim::Simulator& sim_;
  Node& node_;
  Network& network_;
  LinkStats stats_;
};

}  // namespace wp2p::net
