#include "net/network.hpp"

#include "util/assert.hpp"

namespace wp2p::net {

Node& Network::add_node(std::string name) {
  IpAddr addr = allocate_address();
  nodes_.push_back(std::make_unique<Node>(*this, sim_, std::move(name), addr));
  Node& node = *nodes_.back();
  routes_[addr] = &node;
  return node;
}

Node* Network::find(IpAddr addr) {
  auto it = routes_.find(addr);
  return it == routes_.end() ? nullptr : it->second;
}

Node* Network::find_by_name(std::string_view name) {
  for (auto& node : nodes_) {
    if (node->name() == name) return node.get();
  }
  return nullptr;
}

void Network::rebind(Node& node, IpAddr old_addr, IpAddr new_addr) {
  auto it = routes_.find(old_addr);
  WP2P_ASSERT(it != routes_.end() && it->second == &node);
  routes_.erase(it);
  routes_[new_addr] = &node;
}

void Network::set_path_override(const Node& a, const Node& b, PathParams params) {
  path_overrides_[make_pair_key(&a, &b)] = params;
}

void Network::clear_path_override(const Node& a, const Node& b) {
  path_overrides_.erase(make_pair_key(&a, &b));
}

const PathParams& Network::path_between(IpAddr src, IpAddr dst) const {
  if (!path_overrides_.empty()) {
    auto sit = routes_.find(src);
    auto dit = routes_.find(dst);
    if (sit != routes_.end() && dit != routes_.end()) {
      auto oit = path_overrides_.find(make_pair_key(sit->second, dit->second));
      if (oit != path_overrides_.end()) return oit->second;
    }
  }
  return path_;
}

void Network::forward(Packet pkt) {
  const PathParams& path = path_between(pkt.src.addr, pkt.dst.addr);
  if (path.loss > 0.0 && rng_.bernoulli(path.loss)) {
    ++core_loss_drops_;
    return;
  }
  sim::SimTime delay = path.core_delay;
  if (path.jitter > 0) {
    delay += static_cast<sim::SimTime>(rng_.uniform() * static_cast<double>(path.jitter));
  }
  sim_.after(delay, [this, pkt = std::move(pkt)]() mutable {
    Node* dst = find(pkt.dst.addr);
    if (dst == nullptr || dst->access() == nullptr || !dst->connected()) {
      ++no_route_drops_;
      return;
    }
    ++forwarded_;
    dst->access()->enqueue_down(std::move(pkt));
  });
}

}  // namespace wp2p::net
