// Packet interception points on a node.
//
// This mirrors the Netfilter hook the paper's prototype uses: the wP2P
// Age-based Manipulation module registers an egress filter on the mobile node
// and may replace one packet with several (ACK decoupling) or with none
// (DUPACK throttling).
#pragma once

#include <vector>

#include "net/packet.hpp"

namespace wp2p::net {

class PacketFilter {
 public:
  virtual ~PacketFilter() = default;

  // Called for each packet leaving the node, before the access link.
  // Push the packets that should actually be transmitted onto `out`.
  virtual void egress(Packet pkt, std::vector<Packet>& out) { out.push_back(std::move(pkt)); }

  // Called for each packet arriving at the node, before the protocol stack.
  virtual void ingress(Packet pkt, std::vector<Packet>& out) { out.push_back(std::move(pkt)); }
};

// Terminal consumer of packets on a node (the transport stack).
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void receive(const Packet& pkt) = 0;
};

}  // namespace wp2p::net
