#include "net/node.hpp"

#include "net/network.hpp"

namespace wp2p::net {

Node::Node(Network& network, sim::Simulator& sim, std::string name, IpAddr addr)
    : network_{network}, sim_{sim}, name_{std::move(name)}, addr_{addr} {}

void Node::send(Packet pkt) {
  if (!connected_ || link_ == nullptr) return;
  ++sent_packets_;
  if (egress_filters_.empty()) {
    link_->enqueue_up(std::move(pkt));
    return;
  }
  std::vector<Packet> batch{std::move(pkt)};
  for (PacketFilter* filter : egress_filters_) {
    std::vector<Packet> next;
    for (Packet& p : batch) filter->egress(std::move(p), next);
    batch = std::move(next);
  }
  for (Packet& p : batch) link_->enqueue_up(std::move(p));
}

void Node::deliver(Packet pkt) {
  if (!connected_) return;
  ++delivered_packets_;
  if (ingress_filters_.empty()) {
    if (sink_ != nullptr) sink_->receive(pkt);
    return;
  }
  std::vector<Packet> batch{std::move(pkt)};
  for (PacketFilter* filter : ingress_filters_) {
    std::vector<Packet> next;
    for (Packet& p : batch) filter->ingress(std::move(p), next);
    batch = std::move(next);
  }
  if (sink_ != nullptr) {
    for (const Packet& p : batch) sink_->receive(p);
  }
}

void Node::change_address() {
  IpAddr old_addr = addr_;
  IpAddr new_addr = network_.allocate_address();
  addr_ = new_addr;
  ++address_changes_;
  network_.rebind(*this, old_addr, new_addr);
  // A hand-off flushes anything still queued on the air interface.
  if (link_ != nullptr) link_->reset_queues();
  for (auto& callback : on_address_change) callback(old_addr, new_addr);
}

void Node::set_connected(bool connected) {
  if (connected_ == connected) return;
  connected_ = connected;
  if (!connected && link_ != nullptr) link_->reset_queues();
  for (auto& callback : on_connectivity_change) callback(connected);
}

}  // namespace wp2p::net
