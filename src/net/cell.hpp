// Multi-cell wireless topology: N access points, roaming, downlink scheduling.
//
// The paper's mobile hosts live in ONE shared WLAN cell (net::WirelessChannel);
// every mobility effect expressible there is an address change over a single
// medium. This subsystem generalizes to many cells:
//
//  * Cell — one access point's shared half-duplex medium, serving every
//    attached station through a single channel server. The service algorithm
//    mirrors WirelessChannel exactly (direction round-robin, contention
//    surcharge, MAC ARQ, BER survival, AP DropTail buffer), so a one-cell
//    topology with one station reproduces the single-channel model event for
//    event — the golden fig2 trace is byte-identical modulo the extra
//    cell-component events.
//  * CellLink — a station's AccessLink. Detached during a hand-off (packets
//    sent mid-roam are lost, as on a real re-associating interface).
//  * DownlinkScheduler — pluggable AP queue discipline: global FIFO (the
//    single-cell behaviour), round-robin-per-station, and longest-queue-first
//    in the spirit of Neely, "Wireless Peer-to-Peer Scheduling in Mobile
//    Networks" (arXiv:1202.4451).
//  * CellularTopology — owns the cells; handoff() detaches the station,
//    acquires a fresh address (driving the client's existing
//    MobilityDetector / identity-retention / reconnect machinery unchanged)
//    and attaches to the destination cell.
//  * RoamingModel — scripted or seed-randomized commuter schedules of
//    hand-offs.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/access_link.hpp"
#include "net/queue.hpp"
#include "net/wireless_channel.hpp"
#include "util/units.hpp"

namespace wp2p::net {

class Cell;
class CellularTopology;

enum class SchedulerKind : std::uint8_t { kFifo, kRoundRobin, kLongestQueue };

const char* to_string(SchedulerKind kind);
std::optional<SchedulerKind> scheduler_kind_from(std::string_view name);

// One backlogged station as the downlink scheduler sees it.
struct StationView {
  std::size_t slot = 0;        // station index within the cell
  std::size_t queue_len = 0;   // AP downlink backlog for this station
  std::uint64_t head_seq = 0;  // cell-global arrival order of the queue head
};

// AP downlink queue discipline. pick() receives the backlogged stations in
// ascending slot order (never empty) and must return one of their slots.
// Implementations must be deterministic: same views -> same pick.
class DownlinkScheduler {
 public:
  virtual ~DownlinkScheduler() = default;
  virtual const char* name() const = 0;
  virtual std::size_t pick(const std::vector<StationView>& backlogged) = 0;
};

std::unique_ptr<DownlinkScheduler> make_scheduler(SchedulerKind kind);

// A station's access link into its current cell. Created on first attach and
// owned by the Node for its lifetime; hand-offs re-point it at another cell.
class CellLink final : public AccessLink {
 public:
  CellLink(sim::Simulator& sim, Node& node, Network& network);

  void enqueue_up(Packet pkt) override;
  void enqueue_down(Packet pkt) override;
  void reset_queues() override;

  Cell* cell() { return cell_; }
  const Cell* cell() const { return cell_; }

 private:
  friend class Cell;
  friend class CellularTopology;

  // Stats/hook forwarding for the serving cell (AccessLink members are
  // protected; the cell is the one spending this link's airtime).
  void note_tx(Direction dir, const Packet& pkt) { note_transmit(dir, pkt); }
  void note_drop(Direction dir, const Packet& pkt) { note_queue_drop(dir, pkt); }
  void note_error_drop(Direction dir) {
    if (dir == Direction::kUp) {
      ++stats_.up_error_drops;
    } else {
      ++stats_.down_error_drops;
    }
  }

  Cell* cell_ = nullptr;  // null while detached (mid-hand-off)
  std::size_t slot_ = 0;  // station index inside cell_, valid while attached
  // Per-station corruption draws. Forked ONCE at link creation — the same
  // stream position a WirelessChannel constructor would fork at, which is
  // what keeps a one-cell topology draw-identical to the single-channel model.
  sim::Rng rng_;
};

// One access point: a shared half-duplex medium over all attached stations.
class Cell {
 public:
  Cell(sim::Simulator& sim, Network& network, std::size_t id, WirelessParams params,
       std::unique_ptr<DownlinkScheduler> scheduler);

  Cell(const Cell&) = delete;
  Cell& operator=(const Cell&) = delete;

  std::size_t id() const { return id_; }
  // "cellK"; the name FaultPlan targets address.
  const std::string& name() const { return name_; }
  const WirelessParams& params() const { return params_; }
  const char* scheduler_name() const { return scheduler_->name(); }

  // Live parameter mutation, WirelessChannel semantics: the frame in service
  // keeps its already-scheduled airtime; queued frames see the new values
  // (pinned by the channel-mutation regression tests).
  void set_bit_error_rate(double ber) { params_.bit_error_rate = ber; }
  void set_capacity(util::Rate capacity) { params_.capacity = capacity; }
  // Per-direction asymmetry, same live-mutation semantics as set_capacity.
  void set_up_capacity(util::Rate capacity) { params_.up_capacity = capacity; }
  void set_down_capacity(util::Rate capacity) { params_.down_capacity = capacity; }

  // Cell outage: station/AP queues flush, new enqueues drop, the frame in
  // flight dies on completion, and service stays halted until recovery.
  void set_down(bool down);
  bool down() const { return down_; }

  // Probability that one transmission attempt of `size` bytes is corrupted.
  double packet_error_rate(std::int64_t size) const;

  std::size_t attached_stations() const;
  std::uint64_t mac_retransmissions() const { return mac_retransmissions_; }
  // Packets lost to an outage (flushed queues, refused enqueues, dead frames).
  std::uint64_t outage_drops() const { return outage_drops_; }
  // Frames that finished service or propagation for a station that had
  // already roamed away.
  std::uint64_t handoff_drops() const { return handoff_drops_; }

 private:
  friend class CellularTopology;
  friend class CellLink;

  struct Station {
    Node* node = nullptr;
    CellLink* link = nullptr;
    DropTailQueue up;             // station transmit buffer
    DropTailQueue down;           // this station's share of the AP buffer
    std::deque<std::uint64_t> down_seqs;  // arrival seq per queued down packet
    bool attached = false;
  };

  // Returns the station slot (slots are never erased; a station roaming back
  // reuses its old slot, keeping iteration order deterministic).
  std::size_t attach(Node& node, CellLink& link);
  void detach(std::size_t slot);
  void enqueue(std::size_t slot, Direction dir, Packet pkt);
  void clear_station(std::size_t slot);
  void maybe_serve();
  void finish(std::size_t slot, Direction dir, Packet pkt, int attempt);
  sim::SimTime frame_airtime(std::int64_t size, Direction dir, bool contended) const;
  bool backlog(Direction dir) const;
  std::size_t pick_up_slot();
  std::size_t pick_down_slot();

  sim::Simulator& sim_;
  Network& network_;
  std::size_t id_;
  std::string name_;
  WirelessParams params_;
  std::unique_ptr<DownlinkScheduler> scheduler_;
  std::deque<Station> stations_;  // deque: Station refs stay valid as cells grow
  bool busy_ = false;
  bool down_ = false;
  Direction last_served_ = Direction::kDown;  // next pick favours kUp first
  std::size_t up_cursor_ = 0;                 // round-robin uplink station pick
  std::uint64_t next_seq_ = 0;
  std::uint64_t mac_retransmissions_ = 0;
  std::uint64_t outage_drops_ = 0;
  std::uint64_t handoff_drops_ = 0;
};

class CellularTopology {
 public:
  CellularTopology(sim::Simulator& sim, Network& network)
      : sim_{sim}, network_{network} {}

  CellularTopology(const CellularTopology&) = delete;
  CellularTopology& operator=(const CellularTopology&) = delete;

  sim::Simulator& sim() { return sim_; }
  Network& network() { return network_; }

  Cell& add_cell(WirelessParams params = {}, SchedulerKind scheduler = SchedulerKind::kFifo);
  std::size_t cell_count() const { return cells_.size(); }
  Cell& cell(std::size_t id) { return cells_[id]; }
  const Cell& cell(std::size_t id) const { return cells_[id]; }
  // Resolve a FaultPlan target ("cellK"); null when unknown.
  Cell* find_cell(std::string_view name);

  // Associate `node` with cell `cell_id`. The first attach creates and
  // installs the node's CellLink (forking its corruption RNG right there).
  void attach(Node& node, std::size_t cell_id);

  // Hand-off: detach from the current cell, acquire a fresh address (firing
  // the node's on_address_change observers — the client's entire mobility
  // machinery), then attach to the destination cell. Packets queued in the
  // old cell are lost; packets sent between detach and attach vanish, as on
  // a real re-associating interface.
  void handoff(Node& node, std::size_t to_cell);

  // Cell the node is currently attached to, or -1 (not a cellular station,
  // or mid-hand-off).
  int cell_of(const Node& node) const;

  std::uint64_t handoffs() const { return handoffs_; }

 private:
  sim::Simulator& sim_;
  Network& network_;
  std::deque<Cell> cells_;  // deque: Cell refs stay valid as the topology grows
  std::uint64_t handoffs_ = 0;
};

// Moves stations between cells on a schedule: scripted steps (add) and/or a
// seed-randomized commuter pattern (commute). All steps are laid down before
// start(); execution is fully deterministic given the seed.
class RoamingModel {
 public:
  // Destination sentinel: "next cell cyclically from wherever the station is
  // when the step fires".
  static constexpr std::size_t kNextCell = static_cast<std::size_t>(-1);

  explicit RoamingModel(CellularTopology& cells) : cells_{cells} {}
  ~RoamingModel();

  RoamingModel(const RoamingModel&) = delete;
  RoamingModel& operator=(const RoamingModel&) = delete;

  // One scripted hand-off of `node` (by name) at `at_s` seconds.
  void add(double at_s, std::string node, std::size_t to_cell = kNextCell);

  // Commuter pattern: every listed node roams to the cyclically-next cell
  // roughly every `interval_s` seconds (+-30% jitter, randomized phase) until
  // `horizon_s`. Deterministic for a given seed.
  void commute(const std::vector<std::string>& nodes, double interval_s, double horizon_s,
               std::uint64_t seed);

  // Power/app-kill schedule. A suspend step freezes the app on `node` at
  // `at_s` and a matching resume step thaws it `duration_s` later; steps are
  // delivered through on_power (wired by the experiment to
  // Client::suspend/resume), so the model stays ignorant of bt::. Unset
  // on_power means power steps fire into the void (counted, not executed).
  void add_suspend(double at_s, std::string node, double duration_s);

  // Battery pattern: every listed node suspends for `duration_s` roughly
  // every `interval_s` seconds (same jitter/phase discipline as commute()).
  // Mirrors a commuter pocketing the phone between cells.
  void battery(const std::vector<std::string>& nodes, double interval_s, double duration_s,
               double horizon_s, std::uint64_t seed);

  // node name, suspend=true to freeze / false to thaw.
  std::function<void(const std::string& node, bool suspend)> on_power;

  // Schedule every step on the simulator. Call once, after all add/commute.
  void start();

  std::size_t scheduled() const { return steps_.size(); }
  std::uint64_t executed() const { return executed_; }

 private:
  enum class StepKind : std::uint8_t { kRoam, kSuspend, kResume };
  struct Step {
    sim::SimTime at = 0;
    std::string node;
    std::size_t to_cell = kNextCell;
    StepKind kind = StepKind::kRoam;
  };

  void fire(const Step& step);

  CellularTopology& cells_;
  std::vector<Step> steps_;
  std::vector<sim::EventId> pending_;
  bool started_ = false;
  std::uint64_t executed_ = 0;
};

}  // namespace wp2p::net
