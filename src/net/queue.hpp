// DropTail packet queue used by access links.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "net/packet.hpp"
#include "util/assert.hpp"

namespace wp2p::net {

class DropTailQueue {
 public:
  explicit DropTailQueue(std::size_t limit_packets) : limit_{limit_packets} {
    WP2P_ASSERT(limit_packets > 0);
  }

  // Returns false (and counts a drop) if the queue is full.
  bool push(Packet pkt) {
    if (queue_.size() >= limit_) {
      ++drops_;
      if (on_drop) on_drop(pkt);
      return false;
    }
    bytes_ += pkt.size;
    queue_.push_back(std::move(pkt));
    return true;
  }

  Packet pop() {
    WP2P_ASSERT(!queue_.empty());
    Packet pkt = std::move(queue_.front());
    queue_.pop_front();
    bytes_ -= pkt.size;
    return pkt;
  }

  void clear() {
    queue_.clear();
    bytes_ = 0;
  }

  bool empty() const { return queue_.empty(); }
  bool full() const { return queue_.size() >= limit_; }
  std::size_t size() const { return queue_.size(); }
  std::int64_t bytes() const { return bytes_; }
  std::size_t limit() const { return limit_; }
  std::uint64_t drops() const { return drops_; }

  // Invoked on every tail drop (used by experiments to mark drop events).
  std::function<void(const Packet&)> on_drop;

 private:
  std::size_t limit_;
  std::deque<Packet> queue_;
  std::int64_t bytes_ = 0;
  std::uint64_t drops_ = 0;
};

}  // namespace wp2p::net
