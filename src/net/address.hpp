// IPv4-style addressing for the simulated network.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace wp2p::net {

// An IPv4 address as a 32-bit value. Address 0 is "unassigned".
struct IpAddr {
  std::uint32_t value = 0;

  constexpr bool valid() const { return value != 0; }
  friend constexpr auto operator<=>(IpAddr a, IpAddr b) = default;
};

inline std::string to_string(IpAddr a) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (a.value >> 24) & 0xff,
                (a.value >> 16) & 0xff, (a.value >> 8) & 0xff, a.value & 0xff);
  return buf;
}

// A transport endpoint: address + port.
struct Endpoint {
  IpAddr addr;
  std::uint16_t port = 0;

  constexpr bool valid() const { return addr.valid() && port != 0; }
  friend constexpr auto operator<=>(Endpoint a, Endpoint b) = default;
};

inline std::string to_string(Endpoint e) {
  return to_string(e.addr) + ":" + std::to_string(e.port);
}

}  // namespace wp2p::net

template <>
struct std::hash<wp2p::net::IpAddr> {
  std::size_t operator()(wp2p::net::IpAddr a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value);
  }
};

template <>
struct std::hash<wp2p::net::Endpoint> {
  std::size_t operator()(wp2p::net::Endpoint e) const noexcept {
    return std::hash<std::uint64_t>{}((static_cast<std::uint64_t>(e.addr.value) << 16) |
                                      e.port);
  }
};
