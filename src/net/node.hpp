// A simulated host: one network interface, filter hooks, and a protocol sink.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/access_link.hpp"
#include "net/filter.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace wp2p::net {

class Network;

class Node {
 public:
  Node(Network& network, sim::Simulator& sim, std::string name, IpAddr addr);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  const std::string& name() const { return name_; }
  IpAddr address() const { return addr_; }
  sim::Simulator& sim() { return sim_; }
  Network& network() { return network_; }

  // Interface management -----------------------------------------------------
  void attach(std::unique_ptr<AccessLink> link) { link_ = std::move(link); }
  AccessLink* access() { return link_.get(); }
  const AccessLink* access() const { return link_.get(); }

  // Packet path ---------------------------------------------------------------
  void set_sink(PacketSink* sink) { sink_ = sink; }
  void add_egress_filter(PacketFilter* filter) { egress_filters_.push_back(filter); }
  void add_ingress_filter(PacketFilter* filter) { ingress_filters_.push_back(filter); }

  // Stack -> network. Applies egress filters then hands to the access link.
  void send(Packet pkt);
  // Access link -> stack. Applies ingress filters then hands to the sink.
  void deliver(Packet pkt);

  // Mobility -----------------------------------------------------------------
  // Acquire a fresh address from the network (a hand-off / DHCP renewal).
  // Existing routes to the old address are removed immediately; in-flight
  // packets addressed to the old address are dropped at delivery time.
  void change_address();

  bool connected() const { return connected_; }
  // A disconnected node transmits and receives nothing; its link queues flush.
  void set_connected(bool connected);

  // Observers fired after the address actually changed.
  std::vector<std::function<void(IpAddr old_addr, IpAddr new_addr)>> on_address_change;
  // Observers fired on connect/disconnect transitions.
  std::vector<std::function<void(bool connected)>> on_connectivity_change;

  // Counters ------------------------------------------------------------------
  std::uint64_t sent_packets() const { return sent_packets_; }
  std::uint64_t delivered_packets() const { return delivered_packets_; }
  std::uint64_t address_changes() const { return address_changes_; }

 private:
  friend class Network;

  Network& network_;
  sim::Simulator& sim_;
  std::string name_;
  IpAddr addr_;
  bool connected_ = true;
  std::unique_ptr<AccessLink> link_;
  PacketSink* sink_ = nullptr;
  std::vector<PacketFilter*> egress_filters_;
  std::vector<PacketFilter*> ingress_filters_;
  std::uint64_t sent_packets_ = 0;
  std::uint64_t delivered_packets_ = 0;
  std::uint64_t address_changes_ = 0;
};

}  // namespace wp2p::net
