// Simulated network packets.
//
// A Packet carries routing metadata plus an opaque, immutable payload. The
// payload is reference-counted so queues, retransmission logic, and filters
// can share it without copies; anything that wants to *modify* a payload
// (e.g. the wP2P packet filter rewriting a TCP segment) copies it first.
#pragma once

#include <cstdint>
#include <memory>

#include "net/address.hpp"

namespace wp2p::net {

// Base class for protocol payloads (TCP segments, control messages, ...).
struct PacketPayload {
  virtual ~PacketPayload() = default;
};

struct Packet {
  Endpoint src;
  Endpoint dst;
  std::int64_t size = 0;  // total on-wire size in bytes, headers included
  // Simulation metadata: a fault window damaged the payload bytes in flight.
  // The packet still routes normally — the transport decides what survives.
  bool corrupted = false;
  std::shared_ptr<const PacketPayload> payload;

  template <typename T>
  const T* payload_as() const {
    return dynamic_cast<const T*>(payload.get());
  }
};

}  // namespace wp2p::net
