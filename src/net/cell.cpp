#include "net/cell.hpp"

#include <algorithm>
#include <cmath>

#include "net/network.hpp"
#include "net/node.hpp"
#include "trace/recorder.hpp"
#include "util/assert.hpp"

namespace wp2p::net {

namespace {

[[maybe_unused]] const char* dir_name(Direction dir) {
  return dir == Direction::kUp ? "up" : "down";
}

// Global FIFO over the whole AP buffer — exactly the single-cell
// WirelessChannel behaviour (one DropTail queue shared by all stations).
class FifoScheduler final : public DownlinkScheduler {
 public:
  const char* name() const override { return "fifo"; }
  std::size_t pick(const std::vector<StationView>& backlogged) override {
    const StationView* best = &backlogged.front();
    for (const StationView& v : backlogged) {
      if (v.head_seq < best->head_seq) best = &v;
    }
    return best->slot;
  }
};

// One frame per backlogged station in turn: airtime-fair regardless of how
// deep any one station's backlog is.
class RoundRobinScheduler final : public DownlinkScheduler {
 public:
  const char* name() const override { return "rr"; }
  std::size_t pick(const std::vector<StationView>& backlogged) override {
    for (const StationView& v : backlogged) {
      if (static_cast<std::int64_t>(v.slot) > last_) {
        last_ = static_cast<std::int64_t>(v.slot);
        return v.slot;
      }
    }
    last_ = static_cast<std::int64_t>(backlogged.front().slot);
    return backlogged.front().slot;
  }

 private:
  std::int64_t last_ = -1;
};

// Longest-queue-first (Neely, arXiv:1202.4451): drain the deepest AP backlog
// to minimize worst-case queueing; ties break to the lowest slot.
class LongestQueueScheduler final : public DownlinkScheduler {
 public:
  const char* name() const override { return "lqf"; }
  std::size_t pick(const std::vector<StationView>& backlogged) override {
    const StationView* best = &backlogged.front();
    for (const StationView& v : backlogged) {
      if (v.queue_len > best->queue_len) best = &v;
    }
    return best->slot;
  }
};

}  // namespace

const char* to_string(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kFifo: return "fifo";
    case SchedulerKind::kRoundRobin: return "rr";
    case SchedulerKind::kLongestQueue: return "lqf";
  }
  return "?";
}

std::optional<SchedulerKind> scheduler_kind_from(std::string_view name) {
  for (SchedulerKind k :
       {SchedulerKind::kFifo, SchedulerKind::kRoundRobin, SchedulerKind::kLongestQueue}) {
    if (name == to_string(k)) return k;
  }
  return std::nullopt;
}

std::unique_ptr<DownlinkScheduler> make_scheduler(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kFifo: return std::make_unique<FifoScheduler>();
    case SchedulerKind::kRoundRobin: return std::make_unique<RoundRobinScheduler>();
    case SchedulerKind::kLongestQueue: return std::make_unique<LongestQueueScheduler>();
  }
  return std::make_unique<FifoScheduler>();
}

// --- CellLink ----------------------------------------------------------------

CellLink::CellLink(sim::Simulator& sim, Node& node, Network& network)
    : AccessLink{sim, node, network}, rng_{sim.rng().fork()} {}

void CellLink::enqueue_up(Packet pkt) {
  if (cell_ == nullptr) return;  // mid-hand-off: no AP association
  cell_->enqueue(slot_, Direction::kUp, std::move(pkt));
}

void CellLink::enqueue_down(Packet pkt) {
  if (cell_ == nullptr) return;
  cell_->enqueue(slot_, Direction::kDown, std::move(pkt));
}

void CellLink::reset_queues() {
  if (cell_ != nullptr) cell_->clear_station(slot_);
}

// --- Cell --------------------------------------------------------------------

Cell::Cell(sim::Simulator& sim, Network& network, std::size_t id, WirelessParams params,
           std::unique_ptr<DownlinkScheduler> scheduler)
    : sim_{sim},
      network_{network},
      id_{id},
      name_{"cell" + std::to_string(id)},
      params_{params},
      scheduler_{std::move(scheduler)} {}

double Cell::packet_error_rate(std::int64_t size) const {
  if (params_.bit_error_rate <= 0.0) return 0.0;
  const double bits = static_cast<double>(size) * 8.0;
  return 1.0 - std::pow(1.0 - params_.bit_error_rate, bits);
}

std::size_t Cell::attached_stations() const {
  std::size_t n = 0;
  for (const Station& st : stations_) n += st.attached ? 1 : 0;
  return n;
}

std::size_t Cell::attach(Node& node, CellLink& link) {
  for (std::size_t i = 0; i < stations_.size(); ++i) {
    if (stations_[i].node == &node) {
      stations_[i].link = &link;
      stations_[i].attached = true;
      return i;
    }
  }
  stations_.push_back(Station{&node, &link, DropTailQueue{params_.up_queue_limit},
                              DropTailQueue{params_.down_queue_limit},
                              {},
                              /*attached=*/true});
  return stations_.size() - 1;
}

void Cell::detach(std::size_t slot) {
  Station& st = stations_[slot];
  st.attached = false;
  // Queued frames are lost with the association; the frame in flight (if it
  // is this station's) dies at finish().
  clear_station(slot);
}

void Cell::clear_station(std::size_t slot) {
  Station& st = stations_[slot];
  st.up.clear();
  st.down.clear();
  st.down_seqs.clear();
}

void Cell::enqueue(std::size_t slot, Direction dir, Packet pkt) {
  Station& st = stations_[slot];
  if (!st.node->connected()) return;
  if (down_) {
    ++outage_drops_;
    return;
  }
  const bool up = dir == Direction::kUp;
  DropTailQueue& queue = up ? st.up : st.down;
  if (queue.full()) {
    WP2P_TRACE(sim_, trace::event(trace::Component::kChan, trace::Kind::kChanQueueDrop)
                         .at(st.node->name())
                         .why(up ? "up" : "down")
                         .with("size", static_cast<double>(pkt.size))
                         .with("limit", static_cast<double>(up ? params_.up_queue_limit
                                                               : params_.down_queue_limit)));
    st.link->note_drop(dir, pkt);
    return;
  }
  queue.push(std::move(pkt));
  if (!up) st.down_seqs.push_back(next_seq_++);
  maybe_serve();
}

bool Cell::backlog(Direction dir) const {
  for (const Station& st : stations_) {
    if (!(dir == Direction::kUp ? st.up : st.down).empty()) return true;
  }
  return false;
}

std::size_t Cell::pick_up_slot() {
  // Round-robin medium access among stations with uplink backlog: every
  // station's transmit buffer gets a fair shot at the shared channel.
  const std::size_t n = stations_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t slot = (up_cursor_ + i) % n;
    if (!stations_[slot].up.empty()) {
      up_cursor_ = (slot + 1) % n;
      return slot;
    }
  }
  WP2P_ASSERT(false);  // caller checked backlog(kUp)
  return 0;
}

std::size_t Cell::pick_down_slot() {
  std::vector<StationView> backlogged;
  for (std::size_t i = 0; i < stations_.size(); ++i) {
    const Station& st = stations_[i];
    if (st.down.empty()) continue;
    backlogged.push_back(StationView{i, st.down.size(), st.down_seqs.front()});
  }
  WP2P_ASSERT(!backlogged.empty());
  const std::size_t slot = scheduler_->pick(backlogged);
  WP2P_ASSERT(slot < stations_.size() && !stations_[slot].down.empty());
  return slot;
}

sim::SimTime Cell::frame_airtime(std::int64_t size, Direction dir, bool contended) const {
  sim::SimTime airtime = sim::seconds(directional_capacity(params_, dir).seconds_for(size)) +
                         params_.per_packet_overhead;
  if (contended && params_.contention_overhead > 0.0) {
    airtime += static_cast<sim::SimTime>(static_cast<double>(airtime) *
                                         params_.contention_overhead);
  }
  return airtime;
}

void Cell::maybe_serve() {
  if (busy_ || down_) return;
  // Direction round-robin first (the shared half-duplex medium: uplink data
  // and downlink data contend for the same airtime), then a station pick
  // within the chosen direction.
  const bool up_backlog = backlog(Direction::kUp);
  const bool down_backlog = backlog(Direction::kDown);
  if (!up_backlog && !down_backlog) return;
  Direction dir;
  if (!up_backlog) {
    dir = Direction::kDown;
  } else if (!down_backlog) {
    dir = Direction::kUp;
  } else {
    dir = last_served_ == Direction::kUp ? Direction::kDown : Direction::kUp;
  }
  last_served_ = dir;
  busy_ = true;
  const bool contended = up_backlog && down_backlog;
  const std::size_t slot =
      dir == Direction::kUp ? pick_up_slot() : pick_down_slot();
  Station& st = stations_[slot];
  DropTailQueue& queue = dir == Direction::kUp ? st.up : st.down;
  if (dir == Direction::kDown) {
    WP2P_TRACE(sim_, trace::event(trace::Component::kCell, trace::Kind::kCellServe)
                         .at(st.node->name())
                         .why(scheduler_->name())
                         .with("cell", static_cast<double>(id_))
                         .with("qlen", static_cast<double>(queue.size())));
    st.down_seqs.pop_front();
  }
  Packet pkt = queue.pop();
  sim_.after(frame_airtime(pkt.size, dir, contended),
             [this, slot, dir, pkt = std::move(pkt)]() mutable {
    finish(slot, dir, std::move(pkt), 0);
  });
}

void Cell::finish(std::size_t slot, Direction dir, Packet pkt, int attempt) {
  Station& st = stations_[slot];
  st.link->note_tx(dir, pkt);  // airtime was spent whether or not the frame survives
  const bool corrupted = st.link->rng_.bernoulli(packet_error_rate(pkt.size));
  // A frame only completes usefully if its station is still associated, the
  // cell is up, and the station's interface is on.
  const bool usable = st.attached && !down_ && st.node->connected();
  if (corrupted && usable && attempt < params_.mac_retries) {
    // MAC-layer ARQ: retry immediately; the channel stays busy. The retry
    // contends like a first transmission: the frame in flight is this
    // direction's head, so contention exists whenever the opposite direction
    // has backlog waiting anywhere in the cell.
    ++mac_retransmissions_;
    WP2P_TRACE(sim_, trace::event(trace::Component::kChan, trace::Kind::kChanArqRetry)
                         .at(st.node->name())
                         .why(dir_name(dir))
                         .with("size", static_cast<double>(pkt.size))
                         .with("attempt", static_cast<double>(attempt + 1)));
    const bool contended =
        backlog(dir == Direction::kUp ? Direction::kDown : Direction::kUp);
    sim_.after(frame_airtime(pkt.size, dir, contended),
               [this, slot, dir, pkt = std::move(pkt), attempt]() mutable {
      finish(slot, dir, std::move(pkt), attempt + 1);
    });
    return;
  }
  busy_ = false;
  const bool alive = usable && !corrupted;
  if (!alive) {
    if (corrupted) {
      WP2P_TRACE(sim_, trace::event(trace::Component::kChan, trace::Kind::kChanLoss)
                           .at(st.node->name())
                           .why(dir_name(dir))
                           .with("size", static_cast<double>(pkt.size))
                           .with("attempts", static_cast<double>(attempt + 1)));
      st.link->note_error_drop(dir);
    } else if (!st.attached) {
      ++handoff_drops_;
    } else if (down_) {
      ++outage_drops_;
    }
    maybe_serve();
    return;
  }
  sim_.after(params_.prop_delay, [this, slot, dir, pkt = std::move(pkt)]() mutable {
    if (dir == Direction::kUp) {
      network_.forward(std::move(pkt));
      return;
    }
    Station& station = stations_[slot];
    if (!station.attached || station.link->cell_ != this) {
      // The station roamed away during propagation; a detached cell must
      // never deliver (the cell-no-detached-delivery invariant).
      ++handoff_drops_;
      return;
    }
    WP2P_TRACE(sim_, trace::event(trace::Component::kCell, trace::Kind::kCellDeliver)
                         .at(station.node->name())
                         .with("cell", static_cast<double>(id_))
                         .with("size", static_cast<double>(pkt.size)));
    station.node->deliver(std::move(pkt));
  });
  maybe_serve();
}

void Cell::set_down(bool down) {
  if (down == down_) return;
  down_ = down;
  if (down) {
    // The AP is gone: everything buffered is lost. The frame in service (if
    // any) dies at finish(); service stays halted until recovery.
    for (std::size_t i = 0; i < stations_.size(); ++i) {
      outage_drops_ += stations_[i].up.size() + stations_[i].down.size();
      clear_station(i);
    }
  } else {
    maybe_serve();
  }
}

// --- CellularTopology --------------------------------------------------------

Cell& CellularTopology::add_cell(WirelessParams params, SchedulerKind scheduler) {
  cells_.emplace_back(sim_, network_, cells_.size(), params, make_scheduler(scheduler));
  return cells_.back();
}

Cell* CellularTopology::find_cell(std::string_view name) {
  for (Cell& c : cells_) {
    if (c.name() == name) return &c;
  }
  return nullptr;
}

void CellularTopology::attach(Node& node, std::size_t cell_id) {
  WP2P_ASSERT(cell_id < cells_.size());
  auto* link = dynamic_cast<CellLink*>(node.access());
  if (link == nullptr) {
    auto owned = std::make_unique<CellLink>(sim_, node, network_);
    link = owned.get();
    node.attach(std::move(owned));
  }
  Cell& cell = cells_[cell_id];
  link->slot_ = cell.attach(node, *link);
  link->cell_ = &cell;
  WP2P_TRACE(sim_, trace::event(trace::Component::kCell, trace::Kind::kCellAttach)
                       .at(node.name())
                       .with("cell", static_cast<double>(cell_id))
                       .with("stations", static_cast<double>(cell.attached_stations())));
}

void CellularTopology::handoff(Node& node, std::size_t to_cell) {
  WP2P_ASSERT(to_cell < cells_.size());
  auto* link = dynamic_cast<CellLink*>(node.access());
  WP2P_ASSERT(link != nullptr && link->cell_ != nullptr);
  Cell& from = *link->cell_;
  WP2P_TRACE(sim_, trace::event(trace::Component::kCell, trace::Kind::kCellRoam)
                       .at(node.name())
                       .with("from", static_cast<double>(from.id()))
                       .with("to", static_cast<double>(to_cell)));
  from.detach(link->slot_);
  link->cell_ = nullptr;
  WP2P_TRACE(sim_, trace::event(trace::Component::kCell, trace::Kind::kCellDetach)
                       .at(node.name())
                       .with("cell", static_cast<double>(from.id())));
  // New cell, new subnet: the address change drives the client's whole
  // hand-off machinery (identity retention, role reversal, reconnects,
  // MobilityDetector) exactly as a single-cell hand-off does. Anything the
  // observers send synchronously is lost — the interface is re-associating.
  node.change_address();
  attach(node, to_cell);
  ++handoffs_;
}

int CellularTopology::cell_of(const Node& node) const {
  const auto* link = dynamic_cast<const CellLink*>(node.access());
  if (link == nullptr || link->cell() == nullptr) return -1;
  return static_cast<int>(link->cell()->id());
}

// --- RoamingModel ------------------------------------------------------------

RoamingModel::~RoamingModel() {
  for (sim::EventId id : pending_) cells_.sim().cancel(id);
}

void RoamingModel::add(double at_s, std::string node, std::size_t to_cell) {
  WP2P_ASSERT(!started_);
  steps_.push_back(Step{sim::seconds(at_s), std::move(node), to_cell});
}

void RoamingModel::commute(const std::vector<std::string>& nodes, double interval_s,
                           double horizon_s, std::uint64_t seed) {
  WP2P_ASSERT(!started_ && interval_s > 0.0);
  sim::Rng rng{seed ^ 0x5851f42d4c957f2dULL};
  for (const std::string& name : nodes) {
    // Randomized phase so a fleet of commuters doesn't roam in lockstep.
    double t = rng.uniform(0.25, 1.0) * interval_s;
    while (t < horizon_s) {
      steps_.push_back(Step{sim::seconds(t), name, kNextCell});
      t += interval_s * rng.uniform(0.7, 1.3);
    }
  }
}

void RoamingModel::add_suspend(double at_s, std::string node, double duration_s) {
  WP2P_ASSERT(!started_ && duration_s > 0.0);
  steps_.push_back(Step{sim::seconds(at_s), node, kNextCell, StepKind::kSuspend});
  steps_.push_back(
      Step{sim::seconds(at_s + duration_s), std::move(node), kNextCell, StepKind::kResume});
}

void RoamingModel::battery(const std::vector<std::string>& nodes, double interval_s,
                           double duration_s, double horizon_s, std::uint64_t seed) {
  WP2P_ASSERT(!started_ && interval_s > 0.0 && duration_s > 0.0);
  // Distinct stream from commute() so a node can follow both patterns from
  // one seed without the schedules correlating.
  sim::Rng rng{seed ^ 0x9e3779b97f4a7c15ULL};
  for (const std::string& name : nodes) {
    double t = rng.uniform(0.25, 1.0) * interval_s;
    while (t < horizon_s) {
      steps_.push_back(Step{sim::seconds(t), name, kNextCell, StepKind::kSuspend});
      steps_.push_back(
          Step{sim::seconds(t + duration_s), name, kNextCell, StepKind::kResume});
      t += interval_s * rng.uniform(0.7, 1.3);
    }
  }
}

void RoamingModel::start() {
  WP2P_ASSERT(!started_);
  started_ = true;
  std::stable_sort(steps_.begin(), steps_.end(),
                   [](const Step& a, const Step& b) { return a.at < b.at; });
  sim::Simulator& sim = cells_.sim();
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    pending_.push_back(
        sim.at(std::max(steps_[i].at, sim.now()), [this, i] { fire(steps_[i]); }));
  }
}

void RoamingModel::fire(const Step& step) {
  if (step.kind != StepKind::kRoam) {
    // Power steps need no cell membership — a pocketed phone suspends the
    // app wherever (and however) it is attached.
    ++executed_;
    if (on_power) on_power(step.node, step.kind == StepKind::kSuspend);
    return;
  }
  Node* node = cells_.network().find_by_name(step.node);
  if (node == nullptr) return;
  const int from = cells_.cell_of(*node);
  if (from < 0) return;  // not a cellular station (or scripted against a smaller world)
  const std::size_t to = step.to_cell == kNextCell
                             ? (static_cast<std::size_t>(from) + 1) % cells_.cell_count()
                             : step.to_cell;
  if (to >= cells_.cell_count()) return;
  cells_.handoff(*node, to);
  ++executed_;
}

}  // namespace wp2p::net
