// Shared half-duplex wireless access channel (WLAN model).
//
// This is the repo's substitute for the paper's ns-2 wireless emulator. The
// behaviours the paper's results depend on are modelled explicitly:
//
//  * Shared medium: uplink and downlink packets serialize through ONE channel
//    server, so uploads and downloads self-contend (Figs. 3b, 8c). Service
//    alternates round-robin between the directions when both are backlogged.
//  * Random bit errors: each packet survives with (1-BER)^bits, so a 1500-byte
//    data packet carrying a piggybacked ACK is far more likely to die than a
//    40-byte pure ACK (Figs. 2a, 8a).
//  * AP buffer: a DropTail downlink queue whose overflows are the "buffer
//    drop" congestion events of Figs. 2(b,c).
#pragma once

#include "net/access_link.hpp"
#include "net/queue.hpp"
#include "util/units.hpp"

namespace wp2p::net {

struct WirelessParams {
  util::Rate capacity = util::Rate::mbps(24.0);  // effective 802.11g MAC throughput
  // Optional per-direction serialization rates (cellular-style asymmetry:
  // HSDPA-class downlink over a thin uplink). Zero — the default — means the
  // direction inherits the shared `capacity`, keeping the symmetric model's
  // arithmetic bit-identical. The medium stays ONE half-duplex server either
  // way: directions still contend for airtime, they just serialize at
  // different rates while holding it.
  util::Rate up_capacity = util::Rate::zero();
  util::Rate down_capacity = util::Rate::zero();
  double bit_error_rate = 0.0;
  sim::SimTime prop_delay = sim::microseconds(50);
  std::size_t up_queue_limit = 50;    // station transmit buffer
  std::size_t down_queue_limit = 50;  // AP buffer
  // Fixed per-packet channel-access overhead (MAC contention, preamble, ACK).
  sim::SimTime per_packet_overhead = sim::microseconds(100);
  // 802.11 MAC-layer ARQ: a corrupted frame is retransmitted up to this many
  // times, each attempt consuming airtime. Bit errors therefore mostly waste
  // capacity rather than surface as packet loss; only frames that fail every
  // attempt are dropped. Set to 0 for a raw (ns-2 style) error model where
  // every corruption is a loss visible to TCP.
  int mac_retries = 6;
  // CSMA/CA contention inefficiency: when BOTH directions are backlogged
  // (station and AP contend for the medium), each transmission pays this
  // fractional airtime surcharge for collisions and backoff. 0 = ideal
  // scheduler (default; keeps analytic timing exact for tests), ~0.5-1.0 =
  // realistic loaded-WLAN behaviour. This is what makes uploads on a shared
  // channel actively destroy download goodput (paper Figs. 3b, 8c).
  double contention_overhead = 0.0;
};

// Effective serialization rate of one direction: the per-direction override
// when set, else the shared capacity. Shared by WirelessChannel and Cell so
// both media price airtime identically.
inline util::Rate directional_capacity(const WirelessParams& params, Direction dir) {
  const util::Rate cap = dir == Direction::kUp ? params.up_capacity : params.down_capacity;
  return cap.is_zero() ? params.capacity : cap;
}

class WirelessChannel final : public AccessLink {
 public:
  WirelessChannel(sim::Simulator& sim, Node& node, Network& network, WirelessParams params);

  void enqueue_up(Packet pkt) override;
  void enqueue_down(Packet pkt) override;
  void reset_queues() override;

  const WirelessParams& params() const { return params_; }
  void set_bit_error_rate(double ber) { params_.bit_error_rate = ber; }
  void set_capacity(util::Rate capacity) { params_.capacity = capacity; }
  // Live asymmetry mutation, same semantics as set_capacity: the frame in
  // service keeps its scheduled airtime; later frames see the new rate.
  void set_up_capacity(util::Rate capacity) { params_.up_capacity = capacity; }
  void set_down_capacity(util::Rate capacity) { params_.down_capacity = capacity; }

  // Probability that a single transmission attempt of `size` bytes is
  // corrupted on the air.
  double packet_error_rate(std::int64_t size) const;

  std::uint64_t mac_retransmissions() const { return mac_retransmissions_; }

 private:
  void maybe_serve();
  void finish(Direction dir, Packet pkt, int attempt);
  // Airtime for one transmission attempt in `dir`, including per-packet
  // overhead and — when the medium is contended — the CSMA/CA surcharge.
  sim::SimTime frame_airtime(std::int64_t size, Direction dir, bool contended) const;

  WirelessParams params_;
  DropTailQueue up_queue_;
  DropTailQueue down_queue_;
  bool busy_ = false;
  Direction last_served_ = Direction::kDown;  // next pick favours kUp first
  std::uint64_t mac_retransmissions_ = 0;
  sim::Rng rng_;
};

}  // namespace wp2p::net
