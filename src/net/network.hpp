// The Internet cloud: address allocation, routing, and core-path impairments.
//
// Topology model (matches the paper's testbeds, Figs. 1 and 10): every node
// hangs off the cloud through its own access link; the cloud itself adds a
// fixed core delay plus optional jitter and random loss (a netem-style
// impairment stage) and routes by destination address.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

#include "net/node.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace wp2p::net {

struct PathParams {
  sim::SimTime core_delay = sim::milliseconds(20.0);  // one-way, access hop excluded
  sim::SimTime jitter = 0;                            // uniform extra delay in [0, jitter]
  double loss = 0.0;                                  // random core loss probability
};

class Network {
 public:
  explicit Network(sim::Simulator& sim) : sim_{sim}, rng_{sim.rng().fork()} {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  sim::Simulator& sim() { return sim_; }

  Node& add_node(std::string name);
  Node* find(IpAddr addr);
  // Name lookup survives address changes, which makes it the right key for
  // fault plans and scenario specs. Linear scan; not for the packet path.
  Node* find_by_name(std::string_view name);

  // Called by an access link once a packet has cleared the up direction.
  // Applies core-path impairments, then delivers to the destination's access
  // link. Routing is resolved at *delivery* time so packets racing an address
  // change are dropped exactly as in a real hand-off.
  void forward(Packet pkt);

  PathParams& path() { return path_; }
  const PathParams& path() const { return path_; }

  // Netem-style per-node-pair impairment override (symmetric). Overrides are
  // keyed by the nodes' CURRENT addresses at call time and survive address
  // changes (they are re-keyed on rebind).
  void set_path_override(const Node& a, const Node& b, PathParams params);
  void clear_path_override(const Node& a, const Node& b);
  // Effective parameters for a src->dst packet (override or global default).
  const PathParams& path_between(IpAddr src, IpAddr dst) const;

  IpAddr allocate_address() { return IpAddr{next_addr_++}; }

  std::uint64_t forwarded() const { return forwarded_; }
  std::uint64_t no_route_drops() const { return no_route_drops_; }
  std::uint64_t core_loss_drops() const { return core_loss_drops_; }

 private:
  friend class Node;
  void rebind(Node& node, IpAddr old_addr, IpAddr new_addr);

  struct PairKey {
    const Node* a;
    const Node* b;
    bool operator==(const PairKey&) const = default;
  };
  struct PairKeyHash {
    std::size_t operator()(const PairKey& k) const noexcept {
      return std::hash<const void*>{}(k.a) * 31 ^ std::hash<const void*>{}(k.b);
    }
  };
  static PairKey make_pair_key(const Node* a, const Node* b) {
    return a < b ? PairKey{a, b} : PairKey{b, a};
  }

  sim::Simulator& sim_;
  sim::Rng rng_;
  PathParams path_;
  std::unordered_map<PairKey, PathParams, PairKeyHash> path_overrides_;
  std::deque<std::unique_ptr<Node>> nodes_;
  std::unordered_map<IpAddr, Node*> routes_;
  // Start addresses at 10.0.0.1.
  std::uint32_t next_addr_ = (10u << 24) | 1u;
  std::uint64_t forwarded_ = 0;
  std::uint64_t no_route_drops_ = 0;
  std::uint64_t core_loss_drops_ = 0;
};

}  // namespace wp2p::net
