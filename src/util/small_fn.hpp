// Move-only callable wrapper with inline storage.
//
// std::function heap-allocates any closure larger than its small-buffer
// optimisation (16 bytes in libstdc++) — and the simulator schedules millions
// of closures that capture [this, alive, endpoint]-sized state. SmallFn keeps
// closures up to `Capacity` bytes inline in the event entry itself, falling
// back to the heap only for oversized captures, so the hot enqueue/dequeue
// path performs no allocation. Unlike std::function it requires only movable
// callables, which also lets handlers own move-only resources.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "util/assert.hpp"

namespace wp2p::util {

template <std::size_t Capacity>
class SmallFn {
 public:
  SmallFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= Capacity && alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      vt_ = vtable<Fn, /*Inline=*/true>();
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      vt_ = vtable<Fn, /*Inline=*/false>();
    }
  }

  SmallFn(SmallFn&& other) noexcept { move_from(other); }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  void operator()() {
    WP2P_ASSERT_MSG(vt_ != nullptr, "calling an empty SmallFn");
    vt_->invoke(storage_);
  }

  explicit operator bool() const { return vt_ != nullptr; }

 private:
  struct VTable {
    void (*invoke)(void* self);
    void (*relocate)(void* dst, void* src);  // move-construct dst, destroy src
    void (*destroy)(void* self);
  };

  template <typename Fn, bool Inline>
  static const VTable* vtable() {
    static constexpr VTable table{
        /*invoke=*/[](void* self) {
          if constexpr (Inline) {
            (*std::launder(reinterpret_cast<Fn*>(self)))();
          } else {
            (**std::launder(reinterpret_cast<Fn**>(self)))();
          }
        },
        /*relocate=*/[](void* dst, void* src) {
          if constexpr (Inline) {
            Fn* from = std::launder(reinterpret_cast<Fn*>(src));
            ::new (dst) Fn(std::move(*from));
            from->~Fn();
          } else {
            ::new (dst) Fn*(*std::launder(reinterpret_cast<Fn**>(src)));
          }
        },
        /*destroy=*/[](void* self) {
          if constexpr (Inline) {
            std::launder(reinterpret_cast<Fn*>(self))->~Fn();
          } else {
            delete *std::launder(reinterpret_cast<Fn**>(self));
          }
        },
    };
    return &table;
  }

  void move_from(SmallFn& other) noexcept {
    vt_ = other.vt_;
    if (vt_ != nullptr) {
      vt_->relocate(storage_, other.storage_);
      other.vt_ = nullptr;
    }
  }

  void reset() {
    if (vt_ != nullptr) {
      vt_->destroy(storage_);
      vt_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[Capacity];
  const VTable* vt_ = nullptr;
};

}  // namespace wp2p::util
