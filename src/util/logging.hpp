// Minimal leveled logger for simulation traces.
//
// Logging is off by default (benches run millions of events); tests and
// examples can raise the level per component. All output carries the virtual
// simulation time supplied by the caller, never the wall clock.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>

namespace wp2p::util {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

class Logger {
 public:
  static Logger& instance() {
    static Logger logger;
    return logger;
  }

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  bool enabled(LogLevel level) const { return level >= level_; }

  void log(LogLevel level, double sim_seconds, const char* component, const char* fmt, ...)
      __attribute__((format(printf, 5, 6))) {
    if (!enabled(level)) return;
    std::fprintf(stderr, "[%10.6f] %-5s %-8s ", sim_seconds, name(level), component);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fputc('\n', stderr);
  }

 private:
  static const char* name(LogLevel level) {
    switch (level) {
      case LogLevel::kTrace: return "TRACE";
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO";
      case LogLevel::kWarn: return "WARN";
      case LogLevel::kError: return "ERROR";
      default: return "?";
    }
  }
  LogLevel level_ = LogLevel::kOff;
};

}  // namespace wp2p::util

#define WP2P_LOG(level, sim_seconds, component, ...)                             \
  do {                                                                           \
    auto& logger_ = ::wp2p::util::Logger::instance();                            \
    if (logger_.enabled(level)) logger_.log(level, sim_seconds, component, __VA_ARGS__); \
  } while (false)
