// Lightweight assertion macros used across the wP2P codebase.
//
// WP2P_ASSERT is active in all build types: simulation correctness bugs must
// fail loudly in RelWithDebInfo benches, not silently corrupt results.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace wp2p::util {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "wp2p assertion failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace wp2p::util

#define WP2P_ASSERT(expr)                                                  \
  do {                                                                     \
    if (!(expr)) ::wp2p::util::assert_fail(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define WP2P_ASSERT_MSG(expr, msg)                                            \
  do {                                                                        \
    if (!(expr)) ::wp2p::util::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
