// Token bucket used for application-level upload rate limiting.
#pragma once

#include <algorithm>
#include <cstdint>

#include "sim/time.hpp"
#include "util/units.hpp"

namespace wp2p::util {

class TokenBucket {
 public:
  TokenBucket(Rate rate, std::int64_t burst_bytes)
      : rate_{rate}, burst_{burst_bytes}, tokens_{static_cast<double>(burst_bytes)} {}

  void set_rate(Rate rate, sim::SimTime now) {
    refill(now);
    rate_ = rate;
  }
  Rate rate() const { return rate_; }

  // Try to consume `bytes`; returns true on success.
  bool try_consume(sim::SimTime now, std::int64_t bytes) {
    refill(now);
    if (rate_.is_unlimited()) return true;
    if (tokens_ < static_cast<double>(bytes)) return false;
    tokens_ -= static_cast<double>(bytes);
    return true;
  }

  // Time until `bytes` tokens will be available (0 if available now).
  sim::SimTime time_until(sim::SimTime now, std::int64_t bytes) {
    refill(now);
    if (rate_.is_unlimited()) return 0;
    const double deficit = static_cast<double>(bytes) - tokens_;
    if (deficit <= 0.0) return 0;
    if (rate_.is_zero()) return sim::kSimTimeMax / 2;
    return static_cast<sim::SimTime>(deficit / rate_.bytes_per_sec() * 1e6) + 1;
  }

  double tokens(sim::SimTime now) {
    refill(now);
    return tokens_;
  }

 private:
  void refill(sim::SimTime now) {
    if (now <= last_) return;
    const double dt = sim::to_seconds(now - last_);
    last_ = now;
    if (rate_.is_unlimited()) {
      tokens_ = static_cast<double>(burst_);
      return;
    }
    tokens_ = std::min(static_cast<double>(burst_), tokens_ + dt * rate_.bytes_per_sec());
  }

  Rate rate_;
  std::int64_t burst_;
  double tokens_;
  sim::SimTime last_ = 0;
};

}  // namespace wp2p::util
