// Strong-ish unit helpers: byte sizes and transfer rates.
//
// The paper mixes KBps (kilobytes/sec, its throughput unit), Mbps (link
// capacities) and bytes; conversion bugs between them are a classic source of
// silently-wrong reproduction numbers, so all rates in this codebase are
// carried as `Rate` (bytes per second) and constructed through named factories.
#pragma once

#include <cstdint>
#include <string>

namespace wp2p::util {

inline constexpr std::int64_t kKiB = 1024;
inline constexpr std::int64_t kMiB = 1024 * 1024;

// The paper uses decimal KB for throughput axes (KBps).
inline constexpr std::int64_t kKB = 1000;
inline constexpr std::int64_t kMB = 1000 * 1000;

// A transfer rate in bytes per second. Double-valued: rates are measured and
// averaged, never counted exactly.
class Rate {
 public:
  constexpr Rate() = default;

  static constexpr Rate bytes_per_sec(double v) { return Rate{v}; }
  static constexpr Rate kbps(double kilobits) { return Rate{kilobits * 1000.0 / 8.0}; }
  static constexpr Rate mbps(double megabits) { return Rate{megabits * 1e6 / 8.0}; }
  static constexpr Rate kBps(double kilobytes) { return Rate{kilobytes * 1000.0}; }
  static constexpr Rate unlimited() { return Rate{1e18}; }
  static constexpr Rate zero() { return Rate{0.0}; }

  constexpr double bps() const { return value_ * 8.0; }
  constexpr double bytes_per_sec() const { return value_; }
  constexpr double kilobytes_per_sec() const { return value_ / 1000.0; }
  constexpr bool is_unlimited() const { return value_ >= 1e17; }
  constexpr bool is_zero() const { return value_ <= 0.0; }

  // Time (seconds) to serialize `bytes` at this rate.
  constexpr double seconds_for(std::int64_t bytes) const {
    return value_ > 0.0 ? static_cast<double>(bytes) / value_ : 1e18;
  }

  friend constexpr Rate operator+(Rate a, Rate b) { return Rate{a.value_ + b.value_}; }
  friend constexpr Rate operator-(Rate a, Rate b) { return Rate{a.value_ - b.value_}; }
  friend constexpr Rate operator*(Rate a, double s) { return Rate{a.value_ * s}; }
  friend constexpr Rate operator*(double s, Rate a) { return Rate{a.value_ * s}; }
  friend constexpr Rate operator/(Rate a, double s) { return Rate{a.value_ / s}; }
  friend constexpr auto operator<=>(Rate a, Rate b) = default;

 private:
  constexpr explicit Rate(double v) : value_{v} {}
  double value_ = 0.0;  // bytes per second
};

std::string format_bytes(std::int64_t bytes);
std::string format_rate(Rate r);

}  // namespace wp2p::util
