#include "util/units.hpp"

#include <cstdio>

namespace wp2p::util {

std::string format_bytes(std::int64_t bytes) {
  char buf[64];
  if (bytes >= kMiB) {
    std::snprintf(buf, sizeof buf, "%.2f MiB", static_cast<double>(bytes) / kMiB);
  } else if (bytes >= kKiB) {
    std::snprintf(buf, sizeof buf, "%.2f KiB", static_cast<double>(bytes) / kKiB);
  } else {
    std::snprintf(buf, sizeof buf, "%lld B", static_cast<long long>(bytes));
  }
  return buf;
}

std::string format_rate(Rate r) {
  char buf[64];
  if (r.is_unlimited()) return "unlimited";
  std::snprintf(buf, sizeof buf, "%.1f KBps", r.kilobytes_per_sec());
  return buf;
}

}  // namespace wp2p::util
