// Sliding-window accumulators used for rate measurement and LIHD decisions.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>

#include "util/assert.hpp"

namespace wp2p::util {

// Sum of (time, amount) samples within a trailing window. Time is any
// monotonically non-decreasing int64 (the codebase uses microseconds).
class WindowedSum {
 public:
  explicit WindowedSum(std::int64_t window) : window_{window} { WP2P_ASSERT(window > 0); }

  void add(std::int64_t now, double amount) {
    WP2P_ASSERT_MSG(samples_.empty() || now >= samples_.back().time,
                    "WindowedSum requires non-decreasing time");
    if (!has_origin_) {
      origin_ = now;
      has_origin_ = true;
    }
    samples_.push_back({now, amount});
    sum_ += amount;
    evict(now);
  }

  // Sum of samples in (now - window, now].
  double sum(std::int64_t now) {
    evict(now);
    return sum_;
  }

  // Average rate in amount per time unit. While less than a full window of
  // history exists, divide by the span observed since the first sample
  // (clamped to >= 1 time unit) rather than the whole window — otherwise
  // warm-up rates are understated by window/elapsed.
  double rate(std::int64_t now) {
    const double s = sum(now);
    if (!has_origin_) return 0.0;
    const std::int64_t span = std::clamp(now - origin_, std::int64_t{1}, window_);
    return s / static_cast<double>(span);
  }

  std::int64_t window() const { return window_; }
  void clear() {
    samples_.clear();
    sum_ = 0.0;
    has_origin_ = false;  // measurement restarts (e.g. after a hand-off)
  }

 private:
  struct Sample {
    std::int64_t time;
    double amount;
  };

  void evict(std::int64_t now) {
    while (!samples_.empty() && samples_.front().time <= now - window_) {
      sum_ -= samples_.front().amount;
      samples_.pop_front();
    }
    if (samples_.empty()) sum_ = 0.0;  // fight fp drift on long runs
  }

  std::int64_t window_;
  std::deque<Sample> samples_;
  double sum_ = 0.0;
  std::int64_t origin_ = 0;  // time of the first sample since construction/clear
  bool has_origin_ = false;
};

// Exponentially-weighted moving average with explicit gain.
class Ewma {
 public:
  explicit Ewma(double gain) : gain_{gain} {
    WP2P_ASSERT(gain > 0.0 && gain <= 1.0);
  }

  void add(double sample) {
    if (!seeded_) {
      value_ = sample;
      seeded_ = true;
    } else {
      value_ += gain_ * (sample - value_);
    }
  }

  double value() const { return value_; }
  bool seeded() const { return seeded_; }
  void reset() {
    seeded_ = false;
    value_ = 0.0;
  }

 private:
  double gain_;
  double value_ = 0.0;
  bool seeded_ = false;
};

}  // namespace wp2p::util
