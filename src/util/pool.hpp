// Free-list pool allocator for high-churn fixed-size allocations.
//
// The simulator allocates and frees millions of short-lived objects per run —
// wire messages above all — and at 10k+ peers general-purpose malloc becomes a
// measurable fraction of the hot path. PoolAllocator<T> recycles single-object
// blocks through a per-type free list: std::allocate_shared<T>(PoolAllocator&)
// places the control block and the T in one pooled allocation, so steady-state
// message traffic performs no heap calls at all.
//
// The pool is thread_local (the simulator is single-threaded; tests that spin
// up independent worlds on other threads each get their own list) and capped,
// so a traffic burst can't pin an unbounded high-water mark of memory.
#pragma once

#include <cstddef>
#include <new>

namespace wp2p::util {

template <typename T>
class PoolAllocator {
  struct FreeNode {
    FreeNode* next;
  };
  static constexpr std::size_t kBlockSize =
      sizeof(T) > sizeof(FreeNode) ? sizeof(T) : sizeof(FreeNode);
  static constexpr std::size_t kMaxFree = 4096;  // cap on cached blocks
  static_assert(alignof(T) <= alignof(std::max_align_t),
                "over-aligned types need a dedicated pool");

  struct FreeList {
    FreeNode* head = nullptr;
    std::size_t count = 0;
    ~FreeList() {
      while (head != nullptr) {
        FreeNode* next = head->next;
        ::operator delete(head);
        head = next;
      }
    }
  };

  static FreeList& list() {
    thread_local FreeList fl;
    return fl;
  }

 public:
  using value_type = T;

  PoolAllocator() = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) noexcept {}  // NOLINT(google-explicit-constructor)

  T* allocate(std::size_t n) {
    FreeList& fl = list();
    if (n == 1 && fl.head != nullptr) {
      FreeNode* node = fl.head;
      fl.head = node->next;
      --fl.count;
      node->~FreeNode();
      return static_cast<T*>(static_cast<void*>(node));
    }
    return static_cast<T*>(::operator new(n == 1 ? kBlockSize : n * sizeof(T)));
  }

  void deallocate(T* p, std::size_t n) noexcept {
    FreeList& fl = list();
    if (n == 1 && fl.count < kMaxFree) {
      auto* node = ::new (static_cast<void*>(p)) FreeNode{fl.head};
      fl.head = node;
      ++fl.count;
      return;
    }
    ::operator delete(p);
  }

  template <typename U>
  bool operator==(const PoolAllocator<U>&) const noexcept {
    return true;  // stateless: any instance can free any other's blocks
  }
};

}  // namespace wp2p::util
