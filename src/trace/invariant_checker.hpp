// Trace-driven protocol invariant checking.
//
// The checker replays a trace stream (online as a Sink, or offline via
// replay) and asserts the mechanistic claims of paper Sections 3-5 that the
// instrumentation makes observable:
//
//   tcp-loss-response   After a fast retransmit (a mature-connection loss
//                       event), the congestion window exiting recovery is at
//                       most max(flight/2, 2 MSS) for the flight outstanding
//                       when the loss fired — the NewReno ssthresh bound.
//                       (Section 3.2: the halving the DUPACK throttle exists
//                       to make real on the wireless leg. Flight, not the
//                       pre-loss cwnd, is the base: after an earlier window
//                       cut, packets from the old window may still be in the
//                       air, so flight can legitimately exceed cwnd.)
//   tcp-cwnd-floor      cwnd never falls below 1 MSS.
//   am-decouple-young   AM ACK decoupling only fires while the estimated
//                       peer cwnd is below gamma (Section 4.1/5.1).
//   am-dupack-budget    At most 1 in `modulus` outgoing DUPACKs is dropped
//                       per flow (Section 4.1's one-quarter rule).
//   lihd-bounds         The LIHD upload limit stays within [min, max]
//                       (Section 4.2, Figure 6).
//   mob-single-detect   Live-peer mobility detections for a node are at
//                       least confirm_samples * sample_interval apart (the
//                       detector re-arms only after peers return).
//   fault-bracket       Injected-fault episodes (net::FaultInjector) are
//                       well-bracketed: every kFaultEnd closes a matching
//                       kFaultStart for the same fault kind and target. This
//                       audits the fault layer itself, so fuzzer verdicts can
//                       trust that an episode's protocol events really fell
//                       inside the window the plan prescribed.
//   announce-backoff    A client's announce-retry base delays are monotone
//                       nondecreasing and never exceed the cap until a
//                       successful announce resets the chain, and each
//                       jittered delay stays within jitter * base of its
//                       base (the recovery layer's capped exponential
//                       backoff contract).
//   corrupt-reset       Every corrupt-piece detection is followed by a reset
//                       of that piece before the same piece can be detected
//                       corrupt again, and no reset fires without a pending
//                       detection (data-integrity bookkeeping is lossless).
//   banned-request      After a client bans a peer, it never sends that peer
//                       another block request.
//   peer-ban            A peer's corruption strike count never exceeds the
//                       ban threshold — crossing it must trigger the ban.
//                       (Catches runs with banning disabled: strikes keep
//                       accumulating past the threshold.)
//   pex-no-self         A PEX gossip entry never advertises the sender's own
//                       listen endpoint back at the swarm (the recipient
//                       already has the sender; self-adverts would loop).
//   pex-no-banned       A PEX gossip entry never advertises a peer the sender
//                       has banned — gossip must not launder a corrupter's
//                       address back into circulation.
//   pex-rate-limit      Consecutive PEX messages from one client to one
//                       recipient endpoint are at least the advertised
//                       interval apart (the gossip rate limiter holds even
//                       across the sender's crash/restart).
//   failover-tier-order A tracker failover step moves the announce cursor to
//                       the next slot of the tier list (wrapping to the
//                       primary), never skipping ahead or stepping down a
//                       tier; a failback always lands on the primary.
//   bootstrap-only-when-dark
//                       The bootstrap cache is only dialed while every
//                       tracker tier is dark: the client's consecutive
//                       announce-failure streak at the dial must be at least
//                       the size of its tier list.
//   cell-single-attach  A station is associated with at most one cell at any
//                       instant: every attach finds the station detached, and
//                       every detach names the cell the station was actually
//                       in (a hand-off therefore enters exactly one cell).
//   cell-no-detached-delivery
//                       A cell only delivers downlink frames to stations
//                       currently attached to it — nothing arrives through a
//                       cell the station has roamed away from.
//   cell-serve-backlogged
//                       The downlink scheduler only picks stations with
//                       backlog (the traced queue length at the pick is >= 1)
//                       that are attached to the serving cell.
//   enforce-flood-cap   A peer's flood/churn evidence count never exceeds the
//                       limit the detection event itself advertises: with
//                       enforcement on, the strike-and-ban path must cut the
//                       offender off before the count runs away. (Catches
//                       runs with unsafe_no_enforcement: counts keep
//                       climbing past the limit.)
//   enforce-malformed   Same cap for struct-malformed frame counts.
//   enforce-liar        Same cap for liar, stall-audit, and PEX-spam
//                       evidence counts.
//   enforce-mobile-grace
//                       An enforcement strike for the mobility-shaped
//                       offenses (stall, liar) never lands on a peer whose
//                       mobility grace window is active at the strike: the
//                       grace guard exists precisely so hand-off stalls are
//                       not punished.
//   no-serve-while-suspended
//                       Between a suspend (kBtSuspend "begin") and the
//                       matching resume, a client answers nothing: no
//                       announces, requests, PEX, reconnect dials, bootstrap
//                       dials, choke decisions, or piece completions may be
//                       traced for the suspended node.
//   resume-bitfield-subset
//                       A restored bitfield is a subset of the snapshot it
//                       came from: restored == snapshot - dropped, and a
//                       resume never claims more pieces than the snapshot
//                       recorded (torn or rotted state degrades, never
//                       inflates).
//   snapshot-checksum-valid
//                       A restore consumes exactly the snapshot the journal
//                       walk validated: the kBtResume "restored" seq matches
//                       the preceding kStoreLoad's winning seq, and a load
//                       that found no valid record ("empty") is only ever
//                       followed by a cold restart, never a restore.
//   identity-retained-across-resume
//                       The peer-id traced at a suspend reappears unchanged
//                       at the matching resume or snapshot restore (a cold
//                       restart legitimately mints a fresh identity and
//                       clears the expectation).
//
// kScenario markers reset per-flow state, so one JSONL file may hold many
// independently checked scenarios.
//
// Rules are indexed by trace kind: check() consults a per-Kind table and
// invokes only the rules registered for that kind, so per-event dispatch cost
// is O(rules interested in that kind), independent of how many rules exist.
// On a 10k-peer run the trace is dominated by kinds with no rule at all
// (choke/unchoke, channel events), which now cost one table lookup each.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "trace/recorder.hpp"

namespace wp2p::trace {

struct Violation {
  sim::SimTime time = 0;
  std::string rule;
  std::string detail;
};

std::string to_string(const Violation& v);

class InvariantChecker final : public Sink {
 public:
  InvariantChecker();

  InvariantChecker(const InvariantChecker&) = delete;
  InvariantChecker& operator=(const InvariantChecker&) = delete;

  void on_event(const TraceEvent& ev) override { check(ev); }

  void check(const TraceEvent& ev);
  template <typename Events>
  void replay(const Events& events) {
    for (const TraceEvent& ev : events) check(ev);
  }

  const std::vector<Violation>& violations() const { return violations_; }
  std::uint64_t events_checked() const { return checked_; }
  // Events that at least one rule actually examined (a smoke signal that the
  // instrumentation is alive; an all-quiet trace checks vacuously).
  std::uint64_t events_matched() const { return matched_; }

  // Register an extra rule for the given kinds. Used by tests to prove the
  // kind-indexed dispatch: rules on other kinds must never run.
  void register_rule(std::initializer_list<Kind> kinds,
                     std::function<void(const TraceEvent&)> fn,
                     bool counts_match = true);

  std::size_t rule_count() const { return rules_.size(); }
  // Total rule invocations across all checked events (dispatch-cost probe).
  std::uint64_t rule_dispatches() const { return dispatches_; }

 private:
  struct FlowState {
    double last_cwnd = -1.0;     // most recent tcp.cwnd value
    double cwnd_at_loss = -1.0;  // cwnd when the last fast retransmit fired
    double exit_bound = -1.0;    // max(flight/2, 2 MSS) at that loss
    bool loss_pending = false;   // awaiting the exit-recovery sample
  };
  struct DetectState {
    sim::SimTime last_detect = -1;
  };
  struct FaultState {
    int open = 0;
  };
  struct BackoffState {
    double last_base = -1.0;  // previous retry base; reset by a good announce
  };
  struct RecoveryState {
    BackoffState backoff;
    std::unordered_map<int, bool> corrupt_pending;  // piece -> awaiting reset
    std::unordered_set<std::uint64_t> banned;       // peer_ids banned so far
    int announce_streak = 0;  // consecutive failed announces (any tracker)
  };
  struct PexState {
    sim::SimTime last_send = -1;
  };
  struct CellState {
    int attached = -1;  // cell id the station is in; -1 = detached
  };
  struct GraceWindow {
    sim::SimTime granted_at = -1;
    double until_s = -1.0;  // absolute expiry, as traced by kBtGrace
  };
  struct EnforceState {
    std::unordered_map<std::uint64_t, GraceWindow> grace;  // peer_id -> window
  };
  struct LifecycleState {
    bool suspended = false;         // inside a suspend bracket
    double suspend_peer_id = -1.0;  // peer_id traced at the suspend begin
    double last_load_seq = -2.0;    // winning seq of the last journal load
                                    // (-1 = load found nothing, -2 = no load)
  };

  using MemberRule = void (InvariantChecker::*)(const TraceEvent&);
  struct Rule {
    MemberRule member = nullptr;                     // built-in rules
    std::function<void(const TraceEvent&)> external;  // test-registered rules
    bool counts_match = true;
  };

  void violate(const TraceEvent& ev, std::string rule, std::string detail);
  void reset_scenario();
  void add_rule(std::initializer_list<Kind> kinds, MemberRule member, bool counts_match);
  void index_rule(std::initializer_list<Kind> kinds, std::size_t rule_idx);

  // One member per documented rule group; bodies carry the rule logic.
  void rule_tcp_cwnd(const TraceEvent& ev);
  void rule_tcp_fast_retransmit(const TraceEvent& ev);
  void rule_tcp_rto(const TraceEvent& ev);
  void rule_am_decouple(const TraceEvent& ev);
  void rule_am_dupack(const TraceEvent& ev);
  void rule_lihd(const TraceEvent& ev);
  void rule_mob_detect(const TraceEvent& ev);
  void rule_announce(const TraceEvent& ev);
  void rule_announce_retry(const TraceEvent& ev);
  void rule_piece_corrupt(const TraceEvent& ev);
  void rule_piece_reset(const TraceEvent& ev);
  void rule_peer_strike(const TraceEvent& ev);
  void rule_peer_ban(const TraceEvent& ev);
  void rule_request(const TraceEvent& ev);
  void rule_pex_send(const TraceEvent& ev);
  void rule_pex_entry(const TraceEvent& ev);
  void rule_failover(const TraceEvent& ev);
  void rule_bootstrap(const TraceEvent& ev);
  void rule_fault_start(const TraceEvent& ev);
  void rule_fault_end(const TraceEvent& ev);
  void rule_cell_attach(const TraceEvent& ev);
  void rule_cell_detach(const TraceEvent& ev);
  void rule_cell_serve(const TraceEvent& ev);
  void rule_cell_deliver(const TraceEvent& ev);
  void rule_enforce_detect(const TraceEvent& ev);
  void rule_enforce_grace(const TraceEvent& ev);
  void rule_suspend(const TraceEvent& ev);
  void rule_resume(const TraceEvent& ev);
  void rule_store_load(const TraceEvent& ev);
  void rule_suspended_silence(const TraceEvent& ev);

  std::unordered_map<std::string, FlowState> flows_;
  std::unordered_map<std::string, DetectState> detectors_;
  std::unordered_map<std::string, FaultState> faults_;
  std::unordered_map<std::string, RecoveryState> recovery_;
  std::unordered_map<std::string, PexState> pex_;  // node|recipient endpoint
  std::unordered_map<std::string, CellState> cells_;  // station -> attachment
  std::unordered_map<std::string, EnforceState> enforce_;  // node -> grace map
  std::unordered_map<std::string, LifecycleState> lifecycle_;  // node -> state
  std::vector<Rule> rules_;
  std::array<std::vector<std::uint16_t>, kNumKinds> index_;  // kind -> rule ids
  std::vector<Violation> violations_;
  std::uint64_t checked_ = 0;
  std::uint64_t matched_ = 0;
  std::uint64_t dispatches_ = 0;
};

}  // namespace wp2p::trace
