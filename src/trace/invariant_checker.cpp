#include "trace/invariant_checker.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace wp2p::trace {

namespace {

constexpr double kEps = 1e-6;

std::string flow_id(const TraceEvent& ev) { return ev.node + "|" + ev.key; }

std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

}  // namespace

std::string to_string(const Violation& v) {
  char head[48];
  std::snprintf(head, sizeof head, "[t=%.6fs] ", sim::to_seconds(v.time));
  return head + v.rule + ": " + v.detail;
}

InvariantChecker::InvariantChecker() {
  add_rule({Kind::kTcpCwnd}, &InvariantChecker::rule_tcp_cwnd, true);
  add_rule({Kind::kTcpFastRetransmit}, &InvariantChecker::rule_tcp_fast_retransmit, true);
  // A timeout abandons fast recovery; the exit-recovery sample never comes,
  // and the cwnd-floor rule covers the collapse to 1 MSS. Bookkeeping only —
  // it does not count as a matched event.
  add_rule({Kind::kTcpRto}, &InvariantChecker::rule_tcp_rto, false);
  add_rule({Kind::kAmDecouple}, &InvariantChecker::rule_am_decouple, true);
  add_rule({Kind::kAmDupackDrop, Kind::kAmDupackPass}, &InvariantChecker::rule_am_dupack,
           true);
  add_rule({Kind::kLihdStep}, &InvariantChecker::rule_lihd, true);
  add_rule({Kind::kMobDetect}, &InvariantChecker::rule_mob_detect, true);
  add_rule({Kind::kBtAnnounce}, &InvariantChecker::rule_announce, true);
  add_rule({Kind::kBtAnnounceRetry}, &InvariantChecker::rule_announce_retry, true);
  add_rule({Kind::kBtPieceCorrupt}, &InvariantChecker::rule_piece_corrupt, true);
  add_rule({Kind::kBtPieceReset}, &InvariantChecker::rule_piece_reset, true);
  add_rule({Kind::kBtPeerStrike}, &InvariantChecker::rule_peer_strike, true);
  add_rule({Kind::kBtPeerBan}, &InvariantChecker::rule_peer_ban, true);
  add_rule({Kind::kBtRequest}, &InvariantChecker::rule_request, true);
  add_rule({Kind::kBtPexSend}, &InvariantChecker::rule_pex_send, true);
  add_rule({Kind::kBtPexEntry}, &InvariantChecker::rule_pex_entry, true);
  add_rule({Kind::kBtTrackerFailover}, &InvariantChecker::rule_failover, true);
  add_rule({Kind::kBtBootstrap}, &InvariantChecker::rule_bootstrap, true);
  add_rule({Kind::kFaultStart}, &InvariantChecker::rule_fault_start, true);
  add_rule({Kind::kFaultEnd}, &InvariantChecker::rule_fault_end, true);
  add_rule({Kind::kCellAttach}, &InvariantChecker::rule_cell_attach, true);
  add_rule({Kind::kCellDetach}, &InvariantChecker::rule_cell_detach, true);
  add_rule({Kind::kCellServe}, &InvariantChecker::rule_cell_serve, true);
  add_rule({Kind::kCellDeliver}, &InvariantChecker::rule_cell_deliver, true);
  add_rule({Kind::kBtFloodDetect, Kind::kBtMalformed, Kind::kBtLiarDetect,
            Kind::kBtStallAudit, Kind::kBtPexSpam},
           &InvariantChecker::rule_enforce_detect, true);
  add_rule({Kind::kBtGrace, Kind::kBtPeerStrike}, &InvariantChecker::rule_enforce_grace,
           true);
  add_rule({Kind::kBtSuspend}, &InvariantChecker::rule_suspend, true);
  add_rule({Kind::kBtResume}, &InvariantChecker::rule_resume, true);
  // Bookkeeping for snapshot-checksum-valid: remembers which journal record
  // the load validated so the restore can be matched against it.
  add_rule({Kind::kStoreLoad}, &InvariantChecker::rule_store_load, false);
  add_rule({Kind::kBtAnnounce, Kind::kBtAnnounceRetry, Kind::kBtRequest, Kind::kBtPexSend,
            Kind::kBtReconnect, Kind::kBtBootstrap, Kind::kBtPieceComplete, Kind::kBtChoke,
            Kind::kBtUnchoke},
           &InvariantChecker::rule_suspended_silence, false);
}

void InvariantChecker::add_rule(std::initializer_list<Kind> kinds, MemberRule member,
                                bool counts_match) {
  Rule rule;
  rule.member = member;
  rule.counts_match = counts_match;
  rules_.push_back(std::move(rule));
  index_rule(kinds, rules_.size() - 1);
}

void InvariantChecker::register_rule(std::initializer_list<Kind> kinds,
                                     std::function<void(const TraceEvent&)> fn,
                                     bool counts_match) {
  Rule rule;
  rule.external = std::move(fn);
  rule.counts_match = counts_match;
  rules_.push_back(std::move(rule));
  index_rule(kinds, rules_.size() - 1);
}

void InvariantChecker::index_rule(std::initializer_list<Kind> kinds, std::size_t rule_idx) {
  for (Kind kind : kinds) {
    index_[static_cast<std::size_t>(kind)].push_back(static_cast<std::uint16_t>(rule_idx));
  }
}

void InvariantChecker::violate(const TraceEvent& ev, std::string rule, std::string detail) {
  violations_.push_back(Violation{ev.time, std::move(rule), std::move(detail)});
}

void InvariantChecker::reset_scenario() {
  flows_.clear();
  detectors_.clear();
  faults_.clear();
  recovery_.clear();
  pex_.clear();
  cells_.clear();
  enforce_.clear();
  lifecycle_.clear();
}

void InvariantChecker::check(const TraceEvent& ev) {
  ++checked_;
  if (ev.kind == Kind::kScenario) {
    reset_scenario();
    return;
  }
  bool counted = false;
  for (std::uint16_t rule_idx : index_[static_cast<std::size_t>(ev.kind)]) {
    const Rule& rule = rules_[rule_idx];
    ++dispatches_;
    counted |= rule.counts_match;
    if (rule.member != nullptr) {
      (this->*rule.member)(ev);
    } else {
      rule.external(ev);
    }
  }
  if (counted) ++matched_;
}

void InvariantChecker::rule_tcp_cwnd(const TraceEvent& ev) {
  FlowState& flow = flows_[flow_id(ev)];
  const double cwnd = ev.field("cwnd");
  const double mss = ev.field("mss");
  if (mss > 0.0 && cwnd < mss - kEps) {
    violate(ev, "tcp-cwnd-floor",
            ev.key + " cwnd " + num(cwnd) + " below 1 MSS (" + num(mss) + ")");
  }
  if (flow.loss_pending && ev.aux == "exit-recovery") {
    if (cwnd > flow.exit_bound + kEps) {
      violate(ev, "tcp-loss-response",
              ev.key + " exits recovery at cwnd " + num(cwnd) + " > ssthresh bound " +
                  num(flow.exit_bound) + " (pre-loss cwnd " + num(flow.cwnd_at_loss) + ")");
    }
    flow.loss_pending = false;
  }
  flow.last_cwnd = cwnd;
}

void InvariantChecker::rule_tcp_fast_retransmit(const TraceEvent& ev) {
  FlowState& flow = flows_[flow_id(ev)];
  flow.cwnd_at_loss = ev.field("cwnd_before", flow.last_cwnd);
  const double mss = ev.field("mss");
  const double flight = ev.field("flight", flow.cwnd_at_loss);
  flow.exit_bound = std::max(flight / 2.0, 2.0 * mss);
  flow.loss_pending = flow.exit_bound > 0.0;
}

void InvariantChecker::rule_tcp_rto(const TraceEvent& ev) {
  flows_[flow_id(ev)].loss_pending = false;
}

void InvariantChecker::rule_am_decouple(const TraceEvent& ev) {
  const double estimate = ev.field("estimate");
  const double gamma = ev.field("gamma");
  if (gamma > 0.0 && estimate >= gamma) {
    violate(ev, "am-decouple-young",
            ev.key + " decoupled an ACK at estimate " + num(estimate) + " >= gamma " +
                num(gamma));
  }
}

void InvariantChecker::rule_am_dupack(const TraceEvent& ev) {
  const double seen = ev.field("seen");
  const double dropped = ev.field("dropped");
  const double modulus = ev.field("modulus");
  if (modulus > 0.0 && dropped * modulus > seen + kEps) {
    violate(ev, "am-dupack-budget",
            ev.key + " dropped " + num(dropped) + " of " + num(seen) +
                " DUPACKs, over the 1-in-" + num(modulus) + " budget");
  }
}

void InvariantChecker::rule_lihd(const TraceEvent& ev) {
  const double limit = ev.field("limit");
  const double lo = ev.field("min");
  const double hi = ev.field("max");
  if (limit < lo - kEps || limit > hi + kEps) {
    violate(ev, "lihd-bounds",
            ev.node + " upload limit " + num(limit) + " outside [" + num(lo) + ", " +
                num(hi) + "]");
  }
}

void InvariantChecker::rule_mob_detect(const TraceEvent& ev) {
  DetectState& det = detectors_[ev.node];
  const double confirm = ev.field("confirm_samples");
  const double interval_us = ev.field("interval_us");
  const auto min_gap = static_cast<sim::SimTime>(confirm * interval_us);
  if (det.last_detect >= 0 && min_gap > 0 && ev.time - det.last_detect < min_gap) {
    violate(ev, "mob-single-detect",
            ev.node + " re-detected mobility after " +
                num(sim::to_seconds(ev.time - det.last_detect)) +
                " s, inside the confirm window of " + num(sim::to_seconds(min_gap)) + " s");
  }
  det.last_detect = ev.time;
}

void InvariantChecker::rule_announce(const TraceEvent& ev) {
  // A successful announce resets the retry chain; the next retry may
  // legitimately start from the initial base again. The failure streak
  // mirrors the client's own darkness counter for the bootstrap rule.
  RecoveryState& rec = recovery_[ev.node];
  if (ev.field("ok") > 0.5) {
    rec.backoff = BackoffState{};
    rec.announce_streak = 0;
  } else {
    ++rec.announce_streak;
  }
}

void InvariantChecker::rule_announce_retry(const TraceEvent& ev) {
  BackoffState& backoff = recovery_[ev.node].backoff;
  const double base = ev.field("base_s");
  const double delay = ev.field("delay_s");
  const double cap = ev.field("cap_s");
  const double jitter = ev.field("jitter");
  if (backoff.last_base >= 0.0 && base < backoff.last_base - kEps) {
    violate(ev, "announce-backoff",
            ev.node + " retry base " + num(base) + " s shrank from " +
                num(backoff.last_base) + " s without a successful announce");
  }
  if (cap > 0.0 && base > cap + kEps) {
    violate(ev, "announce-backoff",
            ev.node + " retry base " + num(base) + " s exceeds cap " + num(cap) + " s");
  }
  if (std::abs(delay - base) > jitter * base + kEps) {
    violate(ev, "announce-backoff",
            ev.node + " retry delay " + num(delay) + " s outside jitter band " +
                num(jitter) + " of base " + num(base) + " s");
  }
  backoff.last_base = base;
}

void InvariantChecker::rule_piece_corrupt(const TraceEvent& ev) {
  RecoveryState& rec = recovery_[ev.node];
  const int piece = static_cast<int>(ev.field("piece", -1.0));
  if (rec.corrupt_pending[piece]) {
    violate(ev, "corrupt-reset",
            ev.node + " re-detected corrupt piece " + num(piece) +
                " before the previous detection was reset");
  }
  rec.corrupt_pending[piece] = true;
}

void InvariantChecker::rule_piece_reset(const TraceEvent& ev) {
  RecoveryState& rec = recovery_[ev.node];
  const int piece = static_cast<int>(ev.field("piece", -1.0));
  auto it = rec.corrupt_pending.find(piece);
  if (it == rec.corrupt_pending.end() || !it->second) {
    violate(ev, "corrupt-reset",
            ev.node + " reset piece " + num(piece) + " without a pending detection");
    return;
  }
  it->second = false;
}

void InvariantChecker::rule_peer_strike(const TraceEvent& ev) {
  const double strikes = ev.field("strikes");
  const double threshold = ev.field("threshold");
  if (threshold > 0.0 && strikes > threshold + kEps) {
    violate(ev, "peer-ban",
            ev.node + " struck peer " + num(ev.field("peer_id")) + " " + num(strikes) +
                " times, past the ban threshold of " + num(threshold));
  }
}

void InvariantChecker::rule_peer_ban(const TraceEvent& ev) {
  recovery_[ev.node].banned.insert(static_cast<std::uint64_t>(ev.field("peer_id")));
}

void InvariantChecker::rule_request(const TraceEvent& ev) {
  const auto peer = static_cast<std::uint64_t>(ev.field("peer_id"));
  const RecoveryState& rec = recovery_[ev.node];
  if (rec.banned.count(peer) > 0) {
    violate(ev, "banned-request",
            ev.node + " requested a block from banned peer " + num(ev.field("peer_id")));
  }
}

void InvariantChecker::rule_pex_send(const TraceEvent& ev) {
  PexState& pex = pex_[flow_id(ev)];
  const double interval_s = ev.field("interval_s");
  const auto min_gap = sim::seconds(std::max(0.0, interval_s - kEps));
  if (pex.last_send >= 0 && min_gap > 0 && ev.time - pex.last_send < min_gap) {
    violate(ev, "pex-rate-limit",
            ev.node + " gossiped to " + ev.key + " after " +
                num(sim::to_seconds(ev.time - pex.last_send)) +
                " s, inside the advertised interval of " + num(interval_s) + " s");
  }
  pex.last_send = ev.time;
}

void InvariantChecker::rule_pex_entry(const TraceEvent& ev) {
  const double ep = ev.field("ep");
  const double self_ep = ev.field("self_ep");
  if (std::abs(ep - self_ep) < 0.5) {  // packed endpoints are exact integers
    violate(ev, "pex-no-self", ev.node + " advertised its own listen endpoint to " + ev.key);
  }
  const auto peer = static_cast<std::uint64_t>(ev.field("peer_id"));
  if (recovery_[ev.node].banned.count(peer) > 0) {
    violate(ev, "pex-no-banned",
            ev.node + " advertised banned peer " + num(ev.field("peer_id")) + " to " +
                ev.key);
  }
}

void InvariantChecker::rule_failover(const TraceEvent& ev) {
  const auto from = static_cast<int>(ev.field("from", -1.0));
  const auto to = static_cast<int>(ev.field("to", -1.0));
  const auto trackers = static_cast<int>(ev.field("trackers"));
  if (ev.aux == "failover") {
    if (trackers > 0 && to != (from + 1) % trackers) {
      violate(ev, "failover-tier-order",
              ev.node + " failed over from slot " + num(from) + " to slot " + num(to) +
                  ", skipping the tier-list order (size " + num(trackers) + ")");
    } else if (to != 0 && ev.field("to_tier") < ev.field("from_tier") - kEps) {
      violate(ev, "failover-tier-order",
              ev.node + " failed over from tier " + num(ev.field("from_tier")) +
                  " down to tier " + num(ev.field("to_tier")) +
                  " without wrapping to the primary");
    }
  } else if (ev.aux == "failback" && to != 0) {
    violate(ev, "failover-tier-order",
            ev.node + " failed back to slot " + num(to) + " instead of the primary");
  }
}

void InvariantChecker::rule_bootstrap(const TraceEvent& ev) {
  const auto trackers = static_cast<int>(ev.field("trackers"));
  const int streak = recovery_[ev.node].announce_streak;
  if (streak < trackers) {
    violate(ev, "bootstrap-only-when-dark",
            ev.node + " dialed the bootstrap cache after only " + num(streak) +
                " consecutive announce failures across " + num(trackers) +
                " tracker tiers");
  }
}

void InvariantChecker::rule_fault_start(const TraceEvent& ev) {
  // One bracket per (target, fault kind); aux carries the kind name.
  ++faults_[ev.node + "|" + ev.aux].open;
}

void InvariantChecker::rule_fault_end(const TraceEvent& ev) {
  FaultState& fault = faults_[ev.node + "|" + ev.aux];
  if (fault.open <= 0) {
    violate(ev, "fault-bracket",
            ev.aux + " on " + ev.node + " ended without a matching start");
    return;
  }
  --fault.open;
}

void InvariantChecker::rule_cell_attach(const TraceEvent& ev) {
  CellState& st = cells_[ev.node];
  const int cell = static_cast<int>(ev.field("cell", -1.0));
  if (st.attached >= 0) {
    violate(ev, "cell-single-attach",
            ev.node + " attached to cell " + num(cell) + " while still attached to cell " +
                num(st.attached));
  }
  st.attached = cell;
}

void InvariantChecker::rule_cell_detach(const TraceEvent& ev) {
  CellState& st = cells_[ev.node];
  const int cell = static_cast<int>(ev.field("cell", -1.0));
  if (st.attached < 0) {
    violate(ev, "cell-single-attach",
            ev.node + " detached from cell " + num(cell) + " while not attached anywhere");
  } else if (st.attached != cell) {
    violate(ev, "cell-single-attach",
            ev.node + " detached from cell " + num(cell) + " but was attached to cell " +
                num(st.attached));
  }
  st.attached = -1;
}

void InvariantChecker::rule_cell_serve(const TraceEvent& ev) {
  const int cell = static_cast<int>(ev.field("cell", -1.0));
  if (ev.field("qlen") < 1.0 - kEps) {
    violate(ev, "cell-serve-backlogged",
            "cell " + num(cell) + " scheduler (" + ev.aux + ") picked " + ev.node +
                " with no downlink backlog");
  }
  const CellState& st = cells_[ev.node];
  if (st.attached != cell) {
    violate(ev, "cell-serve-backlogged",
            "cell " + num(cell) + " served " + ev.node + " which is attached to cell " +
                num(st.attached));
  }
}

void InvariantChecker::rule_cell_deliver(const TraceEvent& ev) {
  const int cell = static_cast<int>(ev.field("cell", -1.0));
  const CellState& st = cells_[ev.node];
  if (st.attached != cell) {
    violate(ev, "cell-no-detached-delivery",
            "cell " + num(cell) + " delivered to " + ev.node + " which is attached to cell " +
                num(st.attached));
  }
}

void InvariantChecker::rule_enforce_detect(const TraceEvent& ev) {
  // Every enforcement detection event carries the evidence count and the
  // limit an enforced run can never exceed (the ban ends the evidence stream
  // within a couple of threshold-steps). A count past the limit means the
  // strike-and-ban path is not acting on detections — the signature of
  // unsafe_no_enforcement.
  const double count = ev.field("count");
  const double limit = ev.field("limit");
  if (limit <= 0.0 || count <= limit + kEps) return;
  const char* rule = ev.kind == Kind::kBtFloodDetect  ? "enforce-flood-cap"
                     : ev.kind == Kind::kBtMalformed ? "enforce-malformed"
                                                     : "enforce-liar";
  violate(ev, rule,
          ev.node + " " + ev.aux + " evidence against peer " + num(ev.field("peer_id")) +
              " reached " + num(count) + ", past the enforcement limit of " + num(limit));
}

void InvariantChecker::rule_enforce_grace(const TraceEvent& ev) {
  EnforceState& st = enforce_[ev.node];
  const auto peer = static_cast<std::uint64_t>(ev.field("peer_id"));
  if (ev.kind == Kind::kBtGrace) {
    GraceWindow& window = st.grace[peer];
    window.granted_at = ev.time;
    window.until_s = ev.field("until_s");
    return;
  }
  // A strike for the mobility-shaped offenses must not land inside a grace
  // window granted strictly earlier (same-tick grant + deferred strike is a
  // benign race: the client checked the grace before the grant existed).
  if (ev.aux != "enforce-stall" && ev.aux != "enforce-liar") return;
  auto it = st.grace.find(peer);
  if (it == st.grace.end()) return;
  const GraceWindow& window = it->second;
  if (window.granted_at < ev.time && sim::to_seconds(ev.time) < window.until_s - kEps) {
    violate(ev, "enforce-mobile-grace",
            ev.node + " struck peer " + num(ev.field("peer_id")) + " for " + ev.aux +
                " inside its mobility grace window (until " + num(window.until_s) + " s)");
  }
}

void InvariantChecker::rule_suspend(const TraceEvent& ev) {
  LifecycleState& st = lifecycle_[ev.node];
  if (ev.aux == "begin") {
    st.suspended = true;
    st.suspend_peer_id = ev.field("peer_id", -1.0);
  }
  // aux == "suspended" (the snapshot ack) changes nothing: the bracket opened
  // at "begin" and the node was already required to be silent.
}

void InvariantChecker::rule_resume(const TraceEvent& ev) {
  LifecycleState& st = lifecycle_[ev.node];
  if (ev.aux == "begin") return;  // still inside the bracket until resumed
  if (ev.aux == "cold") {
    // A cold restart legitimately mints a fresh identity; drop expectations.
    st.suspended = false;
    st.suspend_peer_id = -1.0;
    return;
  }
  if (ev.aux == "restored") {
    const double snapshot = ev.field("snapshot");
    const double restored = ev.field("restored");
    const double dropped = ev.field("dropped");
    if (restored > snapshot + kEps || std::abs(restored - (snapshot - dropped)) > kEps) {
      violate(ev, "resume-bitfield-subset",
              ev.node + " restored " + num(restored) + " pieces from a snapshot of " +
                  num(snapshot) + " with " + num(dropped) + " dropped");
    }
    const double seq = ev.field("seq", -1.0);
    if (st.last_load_seq > -1.5 && st.last_load_seq < -0.5) {
      violate(ev, "snapshot-checksum-valid",
              ev.node + " restored a snapshot although the journal load found no "
                        "checksum-valid record");
    } else if (st.last_load_seq > -1.5 && std::abs(seq - st.last_load_seq) > kEps) {
      violate(ev, "snapshot-checksum-valid",
              ev.node + " restored journal record seq " + num(seq) +
                  " but the journal walk validated seq " + num(st.last_load_seq));
    }
  }
  // "resumed" and "restored" both close the bracket and must carry the
  // suspended identity forward.
  const double peer = ev.field("peer_id", -1.0);
  if (st.suspended && st.suspend_peer_id >= 0.0 &&
      std::abs(peer - st.suspend_peer_id) > kEps) {
    violate(ev, "identity-retained-across-resume",
            ev.node + " resumed as peer " + num(peer) + " but suspended as peer " +
                num(st.suspend_peer_id));
  }
  st.suspended = false;
}

void InvariantChecker::rule_store_load(const TraceEvent& ev) {
  lifecycle_[ev.node].last_load_seq = ev.field("seq", -1.0);
}

void InvariantChecker::rule_suspended_silence(const TraceEvent& ev) {
  const auto it = lifecycle_.find(ev.node);
  if (it == lifecycle_.end() || !it->second.suspended) return;
  violate(ev, "no-serve-while-suspended",
          ev.node + " emitted " + to_string(ev.kind) + " while suspended");
}

}  // namespace wp2p::trace
