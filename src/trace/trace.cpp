#include "trace/trace.hpp"

namespace wp2p::trace {

namespace {

struct ComponentName {
  Component component;
  const char* name;
};
constexpr ComponentName kComponents[] = {
    {Component::kSim, "sim"}, {Component::kTcp, "tcp"},  {Component::kAm, "am"},
    {Component::kLihd, "lihd"}, {Component::kBt, "bt"},  {Component::kMob, "mob"},
    {Component::kChan, "chan"}, {Component::kFault, "fault"},
    {Component::kCell, "cell"}, {Component::kStore, "store"},
};

struct KindName {
  Kind kind;
  const char* name;
};
constexpr KindName kKinds[] = {
    {Kind::kScenario, "scenario"},
    {Kind::kTcpState, "tcp.state"},
    {Kind::kTcpCwnd, "tcp.cwnd"},
    {Kind::kTcpFastRetransmit, "tcp.fast_retx"},
    {Kind::kTcpRto, "tcp.rto"},
    {Kind::kTcpClose, "tcp.close"},
    {Kind::kAmClassify, "am.classify"},
    {Kind::kAmDecouple, "am.decouple"},
    {Kind::kAmDupackDrop, "am.dupack_drop"},
    {Kind::kAmDupackPass, "am.dupack_pass"},
    {Kind::kLihdStep, "lihd.step"},
    {Kind::kBtChoke, "bt.choke"},
    {Kind::kBtUnchoke, "bt.unchoke"},
    {Kind::kBtPieceComplete, "bt.piece"},
    {Kind::kBtHandoff, "bt.handoff"},
    {Kind::kBtRecover, "bt.recover"},
    {Kind::kBtAnnounce, "bt.announce"},
    {Kind::kBtAnnounceRetry, "bt.announce_retry"},
    {Kind::kBtRequest, "bt.request"},
    {Kind::kBtPieceCorrupt, "bt.piece_corrupt"},
    {Kind::kBtPieceReset, "bt.piece_reset"},
    {Kind::kBtPeerStrike, "bt.strike"},
    {Kind::kBtPeerBan, "bt.ban"},
    {Kind::kBtReconnect, "bt.reconnect"},
    {Kind::kBtTrackerFailover, "bt.tracker_failover"},
    {Kind::kBtPexSend, "bt.pex_send"},
    {Kind::kBtPexEntry, "bt.pex_entry"},
    {Kind::kBtPexRecv, "bt.pex_recv"},
    {Kind::kBtBootstrap, "bt.bootstrap"},
    {Kind::kMobDetect, "mob.detect"},
    {Kind::kChanLoss, "chan.loss"},
    {Kind::kChanArqRetry, "chan.arq"},
    {Kind::kChanQueueDrop, "chan.queue_drop"},
    {Kind::kFaultStart, "fault.start"},
    {Kind::kFaultEnd, "fault.end"},
    {Kind::kFaultSkipped, "fault.skipped"},
    {Kind::kCellAttach, "cell.attach"},
    {Kind::kCellDetach, "cell.detach"},
    {Kind::kCellRoam, "cell.roam"},
    {Kind::kCellServe, "cell.serve"},
    {Kind::kCellDeliver, "cell.deliver"},
    {Kind::kBtMatrixSample, "bt.matrix"},
    {Kind::kBtFloodDetect, "bt.flood"},
    {Kind::kBtMalformed, "bt.malformed"},
    {Kind::kBtLiarDetect, "bt.liar"},
    {Kind::kBtPexSpam, "bt.pex_spam"},
    {Kind::kBtStallAudit, "bt.stall_audit"},
    {Kind::kBtGrace, "bt.mobile_grace"},
    {Kind::kBtSuspend, "bt.suspend"},
    {Kind::kBtResume, "bt.resume"},
    {Kind::kBtResumeVerify, "bt.resume_verify"},
    {Kind::kStoreWrite, "store.write"},
    {Kind::kStoreLoad, "store.load"},
};

}  // namespace

const char* to_string(Component c) {
  for (const auto& entry : kComponents) {
    if (entry.component == c) return entry.name;
  }
  return "?";
}

const char* to_string(Kind k) {
  for (const auto& entry : kKinds) {
    if (entry.kind == k) return entry.name;
  }
  return "?";
}

std::optional<Component> component_from(std::string_view name) {
  for (const auto& entry : kComponents) {
    if (name == entry.name) return entry.component;
  }
  return std::nullopt;
}

std::optional<Kind> kind_from(std::string_view name) {
  for (const auto& entry : kKinds) {
    if (name == entry.name) return entry.kind;
  }
  return std::nullopt;
}

}  // namespace wp2p::trace
