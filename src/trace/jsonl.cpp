#include "trace/jsonl.hpp"

#include <cctype>
#include <cstdlib>
#include <cstring>

namespace wp2p::trace {

namespace {

void append_escaped(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_number(std::string& out, double v) {
  char buf[32];
  // %.17g round-trips every double; trim the common integer case for size.
  if (v == static_cast<double>(static_cast<long long>(v)) && std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  out += buf;
}

// Minimal cursor-based parser for the flat object shape we write. It is not
// a general JSON parser, but it accepts members in any order and tolerates
// whitespace.
struct Cursor {
  std::string_view text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) ++pos;
  }
  bool eat(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  bool peek(char c) {
    skip_ws();
    return pos < text.size() && text[pos] == c;
  }

  bool parse_string(std::string& out) {
    skip_ws();
    if (pos >= text.size() || text[pos] != '"') return false;
    ++pos;
    out.clear();
    while (pos < text.size()) {
      char c = text[pos++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos >= text.size()) return false;
        char esc = text[pos++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'u': {
            if (pos + 4 > text.size()) return false;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text[pos++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return false;
            }
            // Trace strings are ASCII; anything else round-trips as '?'.
            out.push_back(code < 0x80 ? static_cast<char>(code) : '?');
            break;
          }
          default: return false;
        }
      } else {
        out.push_back(c);
      }
    }
    return false;  // unterminated
  }

  bool parse_number(double& out) {
    skip_ws();
    const char* start = text.data() + pos;
    char* end = nullptr;
    out = std::strtod(start, &end);
    if (end == start) return false;
    pos += static_cast<std::size_t>(end - start);
    return true;
  }
};

}  // namespace

std::string to_jsonl(const TraceEvent& ev) {
  std::string out;
  out.reserve(96);
  out += "{\"t\":";
  append_number(out, static_cast<double>(ev.time));
  out += ",\"c\":";
  append_escaped(out, to_string(ev.component));
  out += ",\"k\":";
  append_escaped(out, to_string(ev.kind));
  out += ",\"n\":";
  append_escaped(out, ev.node);
  if (!ev.key.empty()) {
    out += ",\"key\":";
    append_escaped(out, ev.key);
  }
  if (!ev.aux.empty()) {
    out += ",\"why\":";
    append_escaped(out, ev.aux);
  }
  if (ev.nfields > 0) {
    out += ",\"f\":{";
    for (int i = 0; i < ev.nfields; ++i) {
      if (i > 0) out.push_back(',');
      const auto& f = ev.fields[static_cast<std::size_t>(i)];
      append_escaped(out, f.key);
      out.push_back(':');
      append_number(out, f.value);
    }
    out.push_back('}');
  }
  out.push_back('}');
  return out;
}

std::optional<TraceEvent> from_jsonl(std::string_view line) {
  Cursor cur{line};
  if (!cur.eat('{')) return std::nullopt;
  TraceEvent ev;
  bool have_component = false;
  bool have_kind = false;
  if (!cur.peek('}')) {
    do {
      std::string member;
      if (!cur.parse_string(member) || !cur.eat(':')) return std::nullopt;
      if (member == "t") {
        double t = 0.0;
        if (!cur.parse_number(t)) return std::nullopt;
        ev.time = static_cast<sim::SimTime>(t);
      } else if (member == "c") {
        std::string name;
        if (!cur.parse_string(name)) return std::nullopt;
        auto c = component_from(name);
        if (!c) return std::nullopt;
        ev.component = *c;
        have_component = true;
      } else if (member == "k") {
        std::string name;
        if (!cur.parse_string(name)) return std::nullopt;
        auto k = kind_from(name);
        if (!k) return std::nullopt;
        ev.kind = *k;
        have_kind = true;
      } else if (member == "n") {
        if (!cur.parse_string(ev.node)) return std::nullopt;
      } else if (member == "key") {
        if (!cur.parse_string(ev.key)) return std::nullopt;
      } else if (member == "why") {
        if (!cur.parse_string(ev.aux)) return std::nullopt;
      } else if (member == "f") {
        if (!cur.eat('{')) return std::nullopt;
        if (!cur.peek('}')) {
          do {
            std::string key;
            double value = 0.0;
            if (!cur.parse_string(key) || !cur.eat(':') || !cur.parse_number(value)) {
              return std::nullopt;
            }
            if (ev.nfields < TraceEvent::kMaxFields) {
              ev.fields[static_cast<std::size_t>(ev.nfields)] =
                  TraceEvent::Field{std::move(key), value};
              ++ev.nfields;
            }
          } while (cur.eat(','));
        }
        if (!cur.eat('}')) return std::nullopt;
      } else {
        return std::nullopt;  // unknown member: not one of ours
      }
    } while (cur.eat(','));
  }
  if (!cur.eat('}')) return std::nullopt;
  if (!have_component || !have_kind) return std::nullopt;
  return ev;
}

std::optional<JsonlFile> read_jsonl(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return std::nullopt;
  JsonlFile result;
  std::string line;
  int c;
  while ((c = std::fgetc(file)) != EOF) {
    if (c != '\n') {
      line.push_back(static_cast<char>(c));
      continue;
    }
    if (!line.empty()) {
      if (auto ev = from_jsonl(line)) {
        result.events.push_back(std::move(*ev));
      } else {
        ++result.malformed;
      }
    }
    line.clear();
  }
  if (!line.empty()) {
    if (auto ev = from_jsonl(line)) {
      result.events.push_back(std::move(*ev));
    } else {
      ++result.malformed;
    }
  }
  std::fclose(file);
  return result;
}

JsonlWriter::JsonlWriter(const std::string& path)
    : path_{path}, file_{std::fopen(path.c_str(), "wb")} {}

JsonlWriter::~JsonlWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void JsonlWriter::on_event(const TraceEvent& ev) {
  if (file_ == nullptr) return;
  const std::string line = to_jsonl(ev);
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  ++lines_;
}

void JsonlWriter::flush() {
  if (file_ != nullptr) std::fflush(file_);
}

}  // namespace wp2p::trace
