// Trace recorder and in-memory sink.
//
// A Recorder fans each emitted event out to its sinks. It always owns a
// bounded ring buffer (so the most recent history is inspectable with zero
// setup); file sinks and checkers are attached non-owning. Instrumentation
// sites include this header (not trace.hpp) so the WP2P_TRACE macro can call
// Recorder::emit.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "trace/trace.hpp"

namespace wp2p::trace {

class Sink {
 public:
  virtual ~Sink() = default;
  virtual void on_event(const TraceEvent& ev) = 0;
};

// Keeps the most recent `capacity` events; older ones are evicted FIFO.
class RingBufferSink final : public Sink {
 public:
  explicit RingBufferSink(std::size_t capacity) : capacity_{capacity} {}

  void on_event(const TraceEvent& ev) override {
    if (events_.size() >= capacity_) {
      events_.pop_front();
      ++evicted_;
    }
    events_.push_back(ev);
  }

  const std::deque<TraceEvent>& events() const { return events_; }
  std::uint64_t evicted() const { return evicted_; }
  std::size_t capacity() const { return capacity_; }
  void clear() {
    events_.clear();
    evicted_ = 0;
  }

 private:
  std::size_t capacity_;
  std::deque<TraceEvent> events_;
  std::uint64_t evicted_ = 0;
};

class Recorder {
 public:
  explicit Recorder(std::size_t ring_capacity = 16384) : ring_{ring_capacity} {}

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  // Attach an extra sink (JSONL writer, invariant checker, ...). Non-owning;
  // the sink must outlive the recorder or be detached first.
  void add_sink(Sink* sink) { sinks_.push_back(sink); }
  void remove_sink(Sink* sink) { std::erase(sinks_, sink); }

  void emit(TraceEvent ev) {
    ++emitted_;
    for (Sink* sink : sinks_) sink->on_event(ev);
    ring_.on_event(ev);  // last, so sinks observe pre-eviction order too
  }

  RingBufferSink& ring() { return ring_; }
  const RingBufferSink& ring() const { return ring_; }
  std::uint64_t emitted() const { return emitted_; }

 private:
  RingBufferSink ring_;
  std::vector<Sink*> sinks_;
  std::uint64_t emitted_ = 0;
};

}  // namespace wp2p::trace
