// Structured event tracing — the observability substrate under every protocol
// claim in the paper's figures.
//
// Components emit typed TraceEvents through the WP2P_TRACE macro at cheap
// inline trace points. When no Recorder is installed on the Simulator the
// macro costs one pointer load and a branch — none of its arguments are
// evaluated. Building with -DWP2P_TRACE_DISABLED removes the trace points
// entirely, so the hot path can be proven to pay nothing.
//
// An event carries:
//   time       virtual timestamp (stamped by the macro)
//   component  which subsystem emitted it (tcp, am, lihd, bt, mob, chan)
//   kind       the typed event within that subsystem
//   node       emitting host (or scenario label for kScenario markers)
//   key        sub-entity within the host: a TCP flow, a remote peer, ...
//   aux        short free-form detail ("slow-start", "timeout", "young")
//   fields     up to kMaxFields named numeric values
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "sim/time.hpp"

namespace wp2p::trace {

enum class Component : std::uint8_t {
  kSim, kTcp, kAm, kLihd, kBt, kMob, kChan, kFault, kCell, kStore
};

enum class Kind : std::uint8_t {
  kScenario,  // sim: start of a traced scenario; node carries the label

  kTcpState,           // connection state transition; aux = new state
  kTcpCwnd,            // cwnd/ssthresh update; aux = cause
  kTcpFastRetransmit,  // 3-DUPACK loss event (window halving)
  kTcpRto,             // retransmission timeout
  kTcpClose,           // connection closed; aux = reason

  kAmClassify,    // flow young/mature classification flip; aux = class
  kAmDecouple,    // extra pure ACK injected ahead of a young flow's data
  kAmDupackDrop,  // mature-flow DUPACK suppressed
  kAmDupackPass,  // mature-flow DUPACK let through

  kLihdStep,  // one LIHD decision; aux = increase/decrease/hold/seed

  kBtChoke,          // peer choked
  kBtUnchoke,        // peer unchoked
  kBtPieceComplete,  // piece verified and stored
  kBtHandoff,        // address-change hand-off handled; aux = strategy
  kBtRecover,        // recovery after silently lost connectivity

  kBtAnnounce,       // announce outcome arrived; ok field = 1/0
  kBtAnnounceRetry,  // retry scheduled after a failed announce; backoff fields
  kBtRequest,        // block request sent; peer_id identifies the target
  kBtPieceCorrupt,   // completed piece failed verification
  kBtPieceReset,     // corrupt piece discarded, re-enters the selector
  kBtPeerStrike,     // corruption strike recorded against a peer
  kBtPeerBan,        // peer banned after exceeding the strike threshold
  kBtReconnect,      // reconnect dial scheduled after a TCP timeout

  kBtTrackerFailover,  // announce cursor moved; aux = failover/promote/failback
  kBtPexSend,          // PEX delta sent to a peer; key = recipient endpoint
  kBtPexEntry,         // one gossiped added-entry; ep/self_ep packed addr*2^16+port
  kBtPexRecv,          // PEX delta accepted from a peer
  kBtBootstrap,        // cache re-dial while every tracker tier is dark

  kMobDetect,  // live-peer mobility detection fired

  kChanLoss,      // frame dropped after exhausting MAC retries
  kChanArqRetry,  // MAC-layer ARQ retransmission
  kChanQueueDrop,  // access-link queue overflow

  kFaultStart,  // injected fault episode begins; aux = fault kind, node = target
  kFaultEnd,    // injected fault episode ends (same aux/node as its start)
  kFaultSkipped,  // fault addressed a node the binder has no client for

  kCellAttach,   // station associated with a cell; cell/stations fields
  kCellDetach,   // station left a cell (hand-off or teardown); cell field
  kCellRoam,     // hand-off initiated; from/to cell ids
  kCellServe,    // downlink scheduler picked a station; aux = policy, qlen field
  kCellDeliver,  // downlink frame delivered through a cell to its station

  kBtMatrixSample,  // periodic transfer-matrix snapshot (clustering probe)

  kBtFloodDetect,  // request-quota overflow detected; count/limit fields
  kBtMalformed,    // malformed wire frame rejected; count/limit fields
  kBtLiarDetect,   // bitfield/have liar evidence recorded; count/limit fields
  kBtPexSpam,      // PEX endpoint-sanity budget exceeded; count/limit fields
  kBtStallAudit,   // stall auditor scored a persistent stall; count/limit fields
  kBtGrace,        // mobility grace window granted; aux = cause, until_s field

  kBtSuspend,       // lifecycle entered suspend; aux = begin/suspended
  kBtResume,        // lifecycle resume; aux = begin/resumed/restored/cold
  kBtResumeVerify,  // trust-but-verify sampled-piece check; ok field = 1/0
  kStoreWrite,      // stable-storage append completed; aux = ok/torn/stale
  kStoreLoad,       // stable-storage load walked the journal; discarded field
};

// Number of Kind values; sized for per-kind lookup tables (keep in sync with
// the last enumerator above).
inline constexpr std::size_t kNumKinds = static_cast<std::size_t>(Kind::kStoreLoad) + 1;

const char* to_string(Component c);
const char* to_string(Kind k);
std::optional<Component> component_from(std::string_view name);
std::optional<Kind> kind_from(std::string_view name);

struct TraceEvent {
  static constexpr int kMaxFields = 6;
  struct Field {
    std::string key;
    double value = 0.0;
  };

  sim::SimTime time = 0;
  Component component = Component::kSim;
  Kind kind = Kind::kScenario;
  std::string node;
  std::string key;
  std::string aux;
  std::array<Field, kMaxFields> fields{};
  int nfields = 0;

  // Fluent builders, rvalue-qualified so `event(...).at(...).with(...)`
  // chains allocate one object.
  TraceEvent&& at(std::string n) && {
    node = std::move(n);
    return std::move(*this);
  }
  TraceEvent&& on(std::string k) && {
    key = std::move(k);
    return std::move(*this);
  }
  TraceEvent&& why(std::string a) && {
    aux = std::move(a);
    return std::move(*this);
  }
  TraceEvent&& with(std::string name, double value) && {
    if (nfields < kMaxFields) {
      fields[static_cast<std::size_t>(nfields)] = Field{std::move(name), value};
      ++nfields;
    }
    return std::move(*this);
  }

  bool has_field(std::string_view name) const {
    for (int i = 0; i < nfields; ++i) {
      if (fields[static_cast<std::size_t>(i)].key == name) return true;
    }
    return false;
  }
  double field(std::string_view name, double fallback = 0.0) const {
    for (int i = 0; i < nfields; ++i) {
      if (fields[static_cast<std::size_t>(i)].key == name) {
        return fields[static_cast<std::size_t>(i)].value;
      }
    }
    return fallback;
  }
};

inline TraceEvent event(Component component, Kind kind) {
  TraceEvent ev;
  ev.component = component;
  ev.kind = kind;
  return ev;
}

}  // namespace wp2p::trace

// The trace point. `sim_expr` is any expression yielding a sim::Simulator&;
// `builder` is a trace::TraceEvent expression (normally a trace::event(...)
// chain). The builder is evaluated ONLY when a recorder is installed, and the
// whole statement compiles away under WP2P_TRACE_DISABLED.
#ifdef WP2P_TRACE_DISABLED
#define WP2P_TRACE(sim_expr, builder) ((void)0)
#else
#define WP2P_TRACE(sim_expr, builder)                                 \
  do {                                                                \
    if (::wp2p::trace::Recorder* wp2p_trace_rec = (sim_expr).tracer()) { \
      ::wp2p::trace::TraceEvent wp2p_trace_ev = (builder);            \
      wp2p_trace_ev.time = (sim_expr).now();                          \
      wp2p_trace_rec->emit(std::move(wp2p_trace_ev));                 \
    }                                                                 \
  } while (0)
#endif
