// JSONL serialization of trace streams.
//
// One event per line:
//   {"t":1234567,"c":"tcp","k":"tcp.cwnd","n":"mobile",
//    "key":"1.0.0.1:49152>1.0.0.2:9000","why":"slow-start",
//    "f":{"cwnd":14480,"ssthresh":65536}}
//
// "key", "why", and "f" are omitted when empty. The parser accepts the
// members in any order, so files survive hand editing and external tooling.
#pragma once

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "trace/recorder.hpp"

namespace wp2p::trace {

std::string to_jsonl(const TraceEvent& ev);

// Parse one JSONL line back into an event; nullopt on malformed input or an
// unknown component/kind name.
std::optional<TraceEvent> from_jsonl(std::string_view line);

// Load every parseable line from a JSONL trace file (skips blank lines;
// malformed lines are counted, not fatal).
struct JsonlFile {
  std::vector<TraceEvent> events;
  std::size_t malformed = 0;
};
std::optional<JsonlFile> read_jsonl(const std::string& path);

// Sink that appends one JSONL line per event to a file.
class JsonlWriter final : public Sink {
 public:
  // Opens (truncates) `path`; ok() reports whether the open succeeded.
  explicit JsonlWriter(const std::string& path);
  ~JsonlWriter() override;

  JsonlWriter(const JsonlWriter&) = delete;
  JsonlWriter& operator=(const JsonlWriter&) = delete;

  void on_event(const TraceEvent& ev) override;
  void flush();
  bool ok() const { return file_ != nullptr; }
  std::uint64_t lines_written() const { return lines_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  std::uint64_t lines_ = 0;
};

}  // namespace wp2p::trace
