// Property-based scenario fuzzing with shrinking.
//
// A Scenario is a fully explicit experiment: swarm composition, file shape,
// run length, and a sim::FaultPlan — everything needed to reproduce a run
// bit-for-bit from one seed. ScenarioFuzzer
//
//   generate(seed)  derives a random scenario from a seed (deterministic),
//   run(scenario)   executes it with a trace recorder + InvariantChecker
//                   attached and returns a verdict: protocol-invariant
//                   violations, end-to-end property failures, and a hash of
//                   the full event stream (the determinism fingerprint),
//   shrink(s)       given a failing scenario, greedily minimizes it — drop
//                   fault actions (ddmin-style chunks), remove peers, shorten
//                   the schedule — while it keeps failing, yielding the
//                   minimal repro that goes into tests/integration/corpus/,
//   sweep(...)      fans N seeds out over an exp::ParallelRunner; verdicts
//                   are independent of --jobs because every run owns its
//                   Simulator, Network, and RNG tree.
//
// The verdict deliberately does NOT require download completion: under
// adversarial fault schedules a slow swarm is legitimate. What must survive
// ANY schedule: the paper's protocol invariants (Sections 3-5, enforced by
// trace::InvariantChecker), byte conservation, and piece-store consistency.
#pragma once

#include <cstdint>
#include <cstdio>
#include <iterator>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "bt/metainfo.hpp"
#include "bt/resume_store.hpp"
#include "core/am_filter.hpp"
#include "exp/clustering.hpp"
#include "exp/faults.hpp"
#include "exp/parallel_runner.hpp"
#include "exp/swarm.hpp"
#include "sim/fault_plan.hpp"
#include "sim/stable_storage.hpp"
#include "trace/invariant_checker.hpp"
#include "trace/jsonl.hpp"
#include "trace/recorder.hpp"

namespace wp2p::exp {

struct FuzzLimits {
  int min_peers = 3;  // including the initial seed
  int max_peers = 6;
  double min_duration_s = 90.0;
  double max_duration_s = 240.0;
  std::int64_t min_file = 1 << 20;
  std::int64_t max_file = 3 << 20;
  std::int64_t piece_size = 256 * 1024;
  int max_faults = 6;
  // Cellular slice: maximum multi-cell topology size generated scenarios may
  // request. 0 (the default) disables the slice entirely — generation draws
  // nothing extra from the RNG, so legacy seeds reproduce byte-identically.
  int max_cells = 0;
  // Bandwidth-class slice: number of heterogeneous-bandwidth tiers wired
  // leeches may be assigned to (exp::three_tier_classes shapes, cycled).
  // Same gating discipline as max_cells: 0 (default) draws nothing extra.
  int max_classes = 0;
  // Adversary slice: maximum scripted misbehaving peers (bt::AdversaryPeer)
  // a generated scenario may add. Same gating discipline as max_cells:
  // 0 (default) draws nothing extra, so legacy seeds reproduce byte-identically.
  int max_adversaries = 0;
  // Suspend/resume slice: allow app-suspend fault actions in generated plans
  // and wire every honest peer to a journaled ResumeStore over fault-injected
  // StableStorage. Same gating discipline as max_cells: 0 (default) draws
  // nothing extra, so legacy seeds reproduce byte-identically.
  int max_suspends = 0;
};

// Storage fault profiles the fuzzer (and the resume bench) draw from. The
// names appear in serialized scenarios as `store=<profile>`.
inline constexpr const char* kStorageProfiles[] = {"clean", "torn", "stall", "stale"};

inline bool valid_storage_profile(std::string_view profile) {
  for (const char* name : kStorageProfiles) {
    if (profile == name) return true;
  }
  return false;
}

inline sim::StorageParams storage_profile_params(std::string_view profile) {
  sim::StorageParams params;
  if (profile == "torn") {
    params.torn_write_prob = 0.3;
  } else if (profile == "stall") {
    params.stall_prob = 0.5;
  } else if (profile == "stale") {
    params.stale_drop_prob = 0.3;
  }
  return params;
}

struct ScenarioPeer {
  std::string name;
  bool wireless = false;
  bool is_seed = false;
  bool wp2p = false;  // identity retention + role reversal (+ AM when wireless)
  double preload = 0.0;
  // Starting cell of a cellular station (-1 = not cellular; the peer gets a
  // plain WirelessChannel/WiredLink). Only meaningful when the scenario has
  // cells > 0; cellular peers are also wireless.
  int cell = -1;
  // Bandwidth class of a wired leech (-1 = unclassed: default link, no upload
  // limit). Indexes into exp::three_tier_classes() cyclically.
  int bw_class = -1;
  // Non-empty: this peer is a scripted bt::AdversaryPeer of the named kind
  // ("slowloris", "liar", ...; see bt::adversary_kind_from) instead of an
  // honest client. Adversaries ignore the role/wp2p/preload fields.
  std::string adversary;

  bool operator==(const ScenarioPeer&) const = default;
};

struct Scenario {
  std::uint64_t seed = 1;
  double duration_s = 180.0;
  std::int64_t file_size = 2 << 20;
  std::int64_t piece_size = 256 * 1024;
  // Discovery-resilience shape: total tracker tier-list size (1 = primary
  // only), how many peers each tracker returns per announce, and the client
  // discovery features in force for every peer.
  int trackers = 1;
  int tracker_peers = 50;
  bool pex = true;
  bool bootstrap = true;
  bool failover = true;
  // Multi-cell topology: number of access points (0 = no cellular layer) and
  // the downlink discipline every cell runs.
  int cells = 0;
  net::SchedulerKind cell_sched = net::SchedulerKind::kFifo;
  // Suspend/resume lifecycle: when set, every honest peer writes journaled
  // resume snapshots through a per-peer StableStorage whose fault profile is
  // named by storage_profile ("clean"/"torn"/"stall"/"stale").
  bool suspend_lifecycle = false;
  std::string storage_profile;
  std::vector<ScenarioPeer> peers;
  sim::FaultPlan faults;
  // Harness self-test switch: propagated to every peer's TcpParams so a
  // deliberately broken cwnd floor is visible to the invariant checker.
  bool unsafe_no_cwnd_floor = false;
  // Harness self-test switch: disables corruption banning on every peer so
  // the peer-ban invariant rule has something to catch under corrupt faults.
  bool unsafe_no_ban = false;
  // Harness self-test switch: disables the protocol-enforcement actions on
  // every peer (detections still count and trace) so the enforce-* invariant
  // rules have something to catch under adversary peers.
  bool unsafe_no_enforcement = false;

  std::string serialize() const {
    char head[256];
    std::snprintf(head, sizeof head,
                  "scenario seed=%llu duration=%.6f file=%lld piece=%lld unsafe=%d noban=%d "
                  "trackers=%d trpeers=%d pex=%d boot=%d failover=%d",
                  static_cast<unsigned long long>(seed), duration_s,
                  static_cast<long long>(file_size), static_cast<long long>(piece_size),
                  unsafe_no_cwnd_floor ? 1 : 0, unsafe_no_ban ? 1 : 0, trackers,
                  tracker_peers, pex ? 1 : 0, bootstrap ? 1 : 0, failover ? 1 : 0);
    std::string out = head;
    // Appended only when set, so legacy scenarios round-trip unchanged.
    if (unsafe_no_enforcement) out += " noenf=1";
    if (cells > 0) {
      // Appended only when present, so legacy scenarios round-trip unchanged.
      char cell_buf[48];
      std::snprintf(cell_buf, sizeof cell_buf, " cells=%d sched=%s", cells,
                    net::to_string(cell_sched));
      out += cell_buf;
    }
    // Same append-only-when-set discipline for the resume subsystem keys.
    if (suspend_lifecycle) out += " susp=1";
    if (!storage_profile.empty()) {
      out += " store=";
      out += storage_profile;
    }
    out += '\n';
    for (const ScenarioPeer& p : peers) {
      char line[160];
      std::snprintf(line, sizeof line, "peer name=%s link=%s role=%s wp2p=%d preload=%g",
                    p.name.c_str(), p.wireless ? "wireless" : "wired",
                    p.is_seed ? "seed" : "leech", p.wp2p ? 1 : 0, p.preload);
      out += line;
      if (p.cell >= 0) {
        char cell_buf[24];
        std::snprintf(cell_buf, sizeof cell_buf, " cell=%d", p.cell);
        out += cell_buf;
      }
      if (p.bw_class >= 0) {
        char class_buf[24];
        std::snprintf(class_buf, sizeof class_buf, " class=%d", p.bw_class);
        out += class_buf;
      }
      if (!p.adversary.empty()) {
        out += " adv=";
        out += p.adversary;
      }
      out += '\n';
    }
    out += faults.serialize();
    return out;
  }

  // Parses the serialize() format. Lines starting with '#' and blank lines
  // are comments; returns nullopt if no scenario header is present or any
  // non-comment line is malformed.
  static std::optional<Scenario> parse(std::string_view text);
};

struct FuzzVerdict {
  bool passed = false;
  std::vector<trace::Violation> violations;
  std::vector<std::string> property_failures;
  std::uint64_t events = 0;
  std::uint64_t trace_hash = 0;  // FNV-1a over the serialized event stream
  std::uint64_t faults_applied = 0;
  std::int64_t bytes_downloaded = 0;
  int completed_leeches = 0;
  // Recovery-layer aggregates (corruption defense).
  std::int64_t wasted_bytes = 0;
  std::uint64_t corrupt_pieces = 0;
  std::uint64_t peers_banned = 0;
  // Enforcement aggregates (all 0 on clean scenarios without adversaries).
  std::uint64_t malformed_msgs = 0;   // struct-malformed frames dropped
  std::uint64_t enforce_strikes = 0;  // strikes issued by the enforcement layer
  std::uint64_t grace_grants = 0;     // mobility grace windows granted
  // Cellular aggregates (all 0 when the scenario has no cells).
  std::uint64_t roams = 0;               // hand-offs the topology executed
  std::uint64_t cell_outage_drops = 0;   // packets lost to cell outages
  std::uint64_t cell_handoff_drops = 0;  // frames that died mid-hand-off
  // Resume-subsystem aggregates (all 0 when the scenario has no lifecycle).
  std::uint64_t suspends = 0;             // app-suspend brackets entered
  std::uint64_t resumes = 0;              // suspend brackets closed by a resume
  std::uint64_t snapshots_written = 0;    // resume snapshots acked by storage
  std::uint64_t torn_writes = 0;          // journal records truncated mid-write
  std::uint64_t stale_drops = 0;          // acked writes that never journaled
  std::uint64_t snapshots_discarded = 0;  // checksum-invalid records skipped on load
  std::uint64_t cold_restarts = 0;        // restores that degraded to a cold start
  // Survivability: when each leech finished (seconds, in peer order; only
  // leeches that completed inside the run appear). -1 means no leech finished.
  std::vector<double> leech_completion_s;
  double mean_leech_completion_s = -1.0;
  double last_leech_completion_s = -1.0;

  std::string summary() const {
    char buf[224];
    std::snprintf(buf, sizeof buf,
                  "%s: %zu invariant violations, %zu property failures, %llu events, "
                  "%llu faults, %d leeches complete, hash=%016llx",
                  passed ? "PASS" : "FAIL", violations.size(), property_failures.size(),
                  static_cast<unsigned long long>(events),
                  static_cast<unsigned long long>(faults_applied), completed_leeches,
                  static_cast<unsigned long long>(trace_hash));
    return buf;
  }
};

namespace detail {

// Trace sink computing the determinism fingerprint: FNV-1a over every
// serialized event line. Any divergence in event content or order between
// two runs of the same scenario changes the hash.
class HashSink final : public trace::Sink {
 public:
  void on_event(const trace::TraceEvent& ev) override {
    for (char c : trace::to_jsonl(ev)) {
      hash_ ^= static_cast<unsigned char>(c);
      hash_ *= 0x100000001b3ULL;
    }
    ++events_;
  }
  std::uint64_t hash() const { return hash_; }
  std::uint64_t events() const { return events_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
  std::uint64_t events_ = 0;
};

inline bool parse_kv(std::string_view tok, std::string_view key, std::string& out) {
  if (tok.size() <= key.size() + 1 || tok.substr(0, key.size()) != key ||
      tok[key.size()] != '=') {
    return false;
  }
  out = std::string{tok.substr(key.size() + 1)};
  return true;
}

}  // namespace detail

class ScenarioFuzzer {
 public:
  explicit ScenarioFuzzer(FuzzLimits limits = {}) : limits_{limits} {}

  const FuzzLimits& limits() const { return limits_; }

  // Deterministic scenario derivation: the same seed always yields the same
  // swarm and fault schedule, independent of call order or thread.
  Scenario generate(std::uint64_t seed) const {
    sim::Rng rng{seed ^ 0x9e3779b97f4a7c15ULL};
    Scenario s;
    s.seed = seed;
    s.duration_s = rng.uniform(limits_.min_duration_s, limits_.max_duration_s);
    s.piece_size = limits_.piece_size;
    s.file_size = rng.range(limits_.min_file, limits_.max_file) / s.piece_size * s.piece_size;
    if (s.file_size < s.piece_size) s.file_size = s.piece_size;

    const auto n = static_cast<int>(rng.range(limits_.min_peers, limits_.max_peers));
    std::vector<std::string> names, wireless;
    for (int i = 0; i < n; ++i) {
      ScenarioPeer p;
      p.name = "p" + std::to_string(i);
      if (i == 0) {
        // p0 anchors the swarm: a wired seed, so every scenario starts with
        // at least one stable full copy.
        p.is_seed = true;
      } else {
        p.wireless = rng.bernoulli(0.5);
        p.wp2p = p.wireless && rng.bernoulli(0.5);
        p.preload = rng.bernoulli(0.3) ? rng.uniform(0.1, 0.5) : 0.0;
      }
      names.push_back(p.name);
      if (p.wireless) wireless.push_back(p.name);
      s.peers.push_back(std::move(p));
    }
    // Some scenarios get backup tracker tiers, so the fault generator can
    // target individual tiers and mix total blackouts into the schedule.
    if (rng.bernoulli(0.3)) s.trackers = 2 + static_cast<int>(rng.below(2));
    // Cellular slice: gate EVERY extra draw on max_cells so legacy limits
    // reproduce the pre-cellular stream byte-identically.
    std::vector<std::string> cellular;
    if (limits_.max_cells > 1 && rng.bernoulli(0.5)) {
      s.cells = 2 + static_cast<int>(
                        rng.below(static_cast<std::size_t>(limits_.max_cells - 1)));
      s.cell_sched = static_cast<net::SchedulerKind>(rng.below(3));
      for (ScenarioPeer& p : s.peers) {
        // Wireless leeches become roaming-capable stations; the wired seed
        // stays put so every scenario keeps a stable full copy.
        if (!p.wireless || p.is_seed || !rng.bernoulli(0.7)) continue;
        p.cell = static_cast<int>(rng.below(static_cast<std::size_t>(s.cells)));
        cellular.push_back(p.name);
        // BER episodes act on WirelessChannel only; cellular stations take
        // cell-ber faults instead.
        std::erase(wireless, p.name);
      }
    }
    // Bandwidth-class slice: wired leeches get heterogeneous tiers. Gated on
    // max_classes exactly like the cellular slice, so legacy limits draw
    // nothing extra and reproduce byte-identically.
    if (limits_.max_classes > 1 && rng.bernoulli(0.5)) {
      for (ScenarioPeer& p : s.peers) {
        if (p.is_seed || p.wireless) continue;
        p.bw_class = static_cast<int>(
            rng.below(static_cast<std::size_t>(limits_.max_classes)));
      }
    }
    // Adversary slice: scripted misbehaving peers joining the honest swarm.
    // Gated on max_adversaries exactly like the slices above — legacy limits
    // draw nothing extra. Adversaries never enter the fault plan's target
    // list: faults act on the honest swarm, adversaries attack it themselves.
    if (limits_.max_adversaries > 0 && rng.bernoulli(0.5)) {
      const int count = 1 + static_cast<int>(rng.below(
                                static_cast<std::size_t>(limits_.max_adversaries)));
      constexpr std::size_t kKinds = std::size(bt::kAllAdversaryKinds);
      for (int a = 0; a < count; ++a) {
        ScenarioPeer p;
        p.name = "adv" + std::to_string(a);
        p.adversary = bt::to_string(bt::kAllAdversaryKinds[rng.below(kKinds)]);
        s.peers.push_back(std::move(p));
      }
    }
    // Suspend/resume slice: the lifecycle is armed together with its fault
    // vocabulary. Gated on max_suspends exactly like the slices above — legacy
    // limits draw nothing extra and reproduce byte-identically.
    bool suspends = false;
    if (limits_.max_suspends > 0 && rng.bernoulli(0.5)) {
      suspends = true;
      s.suspend_lifecycle = true;
      s.storage_profile = kStorageProfiles[rng.below(std::size(kStorageProfiles))];
    }
    s.faults = sim::FaultPlan::random(rng, names, wireless, s.duration_s, limits_.max_faults,
                                      /*t_min_s=*/5.0, s.trackers, s.cells, cellular,
                                      suspends);
    return s;
  }

  // `queue_kind` selects the simulator's event-queue implementation; verdicts
  // and trace hashes must not depend on it (the queue-equivalence property
  // test runs every scenario under both kinds and compares).
  FuzzVerdict run(const Scenario& scenario,
                  sim::EventQueueKind queue_kind = sim::EventQueueKind::kCalendar) const {
    // Sinks are declared before the swarm: teardown of clients/connections
    // can still emit trace events, so the recorder must outlive the world.
    trace::Recorder recorder{/*ring_capacity=*/4};
    trace::InvariantChecker checker;
    detail::HashSink hasher;
    recorder.add_sink(&checker);
    recorder.add_sink(&hasher);

    auto meta = bt::Metainfo::create("fuzz", scenario.file_size, scenario.piece_size, "tr",
                                     scenario.seed ^ 0xa076bd5f3017c1d3ULL);
    bt::TrackerConfig tracker_config;
    tracker_config.max_peers_returned = scenario.tracker_peers;
    Swarm swarm{scenario.seed, meta, tracker_config, queue_kind};
    for (int t = 1; t < scenario.trackers; ++t) {
      swarm.add_backup_tracker(/*tier=*/t, tracker_config);
    }
    if (scenario.cells > 0) {
      net::CellularTopology& cells = swarm.world.enable_cells();
      for (int c = 0; c < scenario.cells; ++c) {
        cells.add_cell(net::WirelessParams{}, scenario.cell_sched);
      }
    }
    swarm.world.sim.set_tracer(&recorder);
    recorder.emit(trace::event(trace::Component::kSim, trace::Kind::kScenario)
                      .on("fuzz/seed=" + std::to_string(scenario.seed)));

    tcp::TcpParams tcp_params;
    tcp_params.unsafe_no_cwnd_floor = scenario.unsafe_no_cwnd_floor;
    std::vector<std::unique_ptr<core::AmFilter>> am_filters;
    // Honest peers in swarm.members order (adversary entries create a
    // bt::AdversaryPeer instead of a member, so the two lists diverge).
    std::vector<const ScenarioPeer*> honest;
    for (const ScenarioPeer& p : scenario.peers) {
      if (!p.adversary.empty()) {
        const auto kind = bt::adversary_kind_from(p.adversary);
        if (kind) swarm.add_adversary(p.name, *kind);
        continue;
      }
      honest.push_back(&p);
      bt::ClientConfig config;
      config.announce_interval = sim::seconds(20.0);
      config.unsafe_no_peer_ban = scenario.unsafe_no_ban;
      config.unsafe_no_enforcement = scenario.unsafe_no_enforcement;
      config.pex = scenario.pex;
      config.bootstrap_cache = scenario.bootstrap;
      config.tracker_failover = scenario.failover;
      config.listen_port = static_cast<std::uint16_t>(6881 + swarm.members.size());
      if (p.wp2p) {
        config.retain_peer_id = true;
        config.role_reversal = true;
      }
      const bool cellular = scenario.cells > 0 && p.cell >= 0;
      const std::size_t start_cell =
          cellular ? std::min(static_cast<std::size_t>(p.cell),
                              static_cast<std::size_t>(scenario.cells - 1))
                   : 0;
      // Bandwidth class: shape the wired leech's link and upload limit from
      // the canonical tiers (cycled when the scenario names a higher class).
      net::WiredParams wired_params;
      if (!p.wireless && !p.is_seed && p.bw_class >= 0) {
        static const std::vector<BandwidthClass> kClasses = three_tier_classes();
        const BandwidthClass& cls =
            kClasses[static_cast<std::size_t>(p.bw_class) % kClasses.size()];
        wired_params = cls.link;
        config.upload_limit = cls.upload_limit;
      }
      Swarm::Member& member =
          cellular    ? swarm.add_cellular(p.name, p.is_seed, config, start_cell, tcp_params)
          : p.wireless ? swarm.add_wireless(p.name, p.is_seed, config, {}, tcp_params)
                       : swarm.add_wired(p.name, p.is_seed, config, wired_params, tcp_params);
      if (p.wp2p && p.wireless) {
        // The AM packet filter below the stack, as core::WP2PClient installs it.
        am_filters.push_back(std::make_unique<core::AmFilter>(swarm.world.sim));
        member.host->node->add_egress_filter(am_filters.back().get());
        member.host->node->add_ingress_filter(am_filters.back().get());
      }
      if (!p.is_seed && p.preload > 0.0) member.client->preload(p.preload);
    }

    // Resume subsystem: one journaled store per honest peer, over storage
    // carrying the scenario's fault profile. Deques keep references pinned;
    // clients hold raw ResumeStore pointers for their whole lifetime.
    std::deque<sim::StableStorage> storages;
    std::deque<bt::ResumeStore> resume_stores;
    if (scenario.suspend_lifecycle) {
      const sim::StorageParams storage_params =
          storage_profile_params(scenario.storage_profile);
      for (std::size_t i = 0; i < swarm.members.size(); ++i) {
        storages.emplace_back(swarm.world.sim, storage_params, honest[i]->name);
        resume_stores.emplace_back(storages.back(), meta.info_hash);
        swarm.members[i].client->attach_resume(resume_stores.back());
      }
    }

    FuzzVerdict verdict;
    for (std::size_t i = 0; i < swarm.members.size(); ++i) {
      if (honest[i]->is_seed) continue;
      bt::Client& client = *swarm.members[i].client;
      client.on_complete = [&verdict, &sim = swarm.world.sim] {
        verdict.leech_completion_s.push_back(sim::to_seconds(sim.now()));
      };
    }

    auto injector = bind_faults(swarm, scenario.faults);
    swarm.start_all();
    swarm.run_for(scenario.duration_s);

    verdict.faults_applied = injector->stats().applied;
    if (swarm.world.cells) {
      verdict.roams = swarm.world.cells->handoffs();
      for (std::size_t c = 0; c < swarm.world.cells->cell_count(); ++c) {
        verdict.cell_outage_drops += swarm.world.cells->cell(c).outage_drops();
        verdict.cell_handoff_drops += swarm.world.cells->cell(c).handoff_drops();
      }
    }

    // End-to-end properties that must hold under ANY fault schedule.
    std::int64_t uploaded = 0, downloaded = 0;
    for (std::size_t i = 0; i < swarm.members.size(); ++i) {
      const bt::Client& client = *swarm.members[i].client;
      uploaded += client.stats().payload_uploaded;
      downloaded += client.stats().payload_downloaded;
      verdict.bytes_downloaded += client.stats().payload_downloaded;
      verdict.wasted_bytes += client.store().wasted_bytes();
      verdict.corrupt_pieces += client.stats().corrupt_pieces;
      verdict.peers_banned += client.stats().peers_banned;
      verdict.malformed_msgs += client.stats().malformed_msgs;
      verdict.enforce_strikes += client.stats().enforce_strikes;
      verdict.grace_grants += client.stats().grace_grants;
      verdict.suspends += client.stats().suspends;
      verdict.resumes += client.stats().resumes;
      verdict.snapshots_written += client.stats().snapshots_written;
      verdict.cold_restarts += client.stats().cold_restarts;
      if (client.store().bytes_completed() > meta.total_size) {
        verdict.property_failures.push_back(honest[i]->name +
                                            ": store exceeds file size");
      }
      if (client.complete() != client.store().bitfield().all()) {
        verdict.property_failures.push_back(honest[i]->name +
                                            ": completion flag disagrees with bitfield");
      }
      if (!honest[i]->is_seed && client.complete()) ++verdict.completed_leeches;
    }
    // Adversaries move real payload through the same conservation ledger:
    // a garbage peer still serves honest requests, a flooder extracts blocks.
    for (const auto& adversary : swarm.adversaries) {
      uploaded += adversary.peer->stats().uploaded_payload;
      downloaded += adversary.peer->stats().downloaded_payload;
    }
    if (downloaded > uploaded) {
      verdict.property_failures.push_back(
          "conservation: downloaded " + std::to_string(downloaded) + " > uploaded " +
          std::to_string(uploaded));
    }
    for (const sim::StableStorage& storage : storages) {
      verdict.torn_writes += storage.stats().torn_writes;
      verdict.stale_drops += storage.stats().stale_drops;
      verdict.snapshots_discarded += storage.stats().records_discarded;
    }
    if (!verdict.leech_completion_s.empty()) {
      double sum = 0.0;
      for (double t : verdict.leech_completion_s) {
        sum += t;
        verdict.last_leech_completion_s = std::max(verdict.last_leech_completion_s, t);
      }
      verdict.mean_leech_completion_s =
          sum / static_cast<double>(verdict.leech_completion_s.size());
    }

    // Detach before the swarm (and its emitting components) is destroyed.
    swarm.world.sim.set_tracer(nullptr);
    verdict.violations = checker.violations();
    verdict.events = hasher.events();
    verdict.trace_hash = hasher.hash();
    verdict.passed = verdict.violations.empty() && verdict.property_failures.empty();
    return verdict;
  }

  // Greedy minimization of a failing scenario. Tries, in order: removing
  // chunks of fault actions (ddmin-style, halving chunk sizes), removing
  // peers (faults targeting a removed peer go with it), halving the run
  // length, and halving the file. A candidate is kept only if it still
  // fails. `budget` caps the number of candidate runs.
  Scenario shrink(const Scenario& failing, int budget = 150) const {
    Scenario best = failing;
    auto still_fails = [&](const Scenario& candidate) {
      if (budget <= 0) return false;
      --budget;
      return !run(candidate).passed;
    };

    // 1. Fault-plan reduction.
    bool progress = true;
    while (progress && !best.faults.actions.empty() && budget > 0) {
      progress = false;
      for (std::size_t chunk = best.faults.actions.size(); chunk >= 1; chunk /= 2) {
        for (std::size_t start = 0; start < best.faults.actions.size() && budget > 0;) {
          Scenario candidate = best;
          const auto first = candidate.faults.actions.begin() +
                             static_cast<std::ptrdiff_t>(start);
          const auto last = candidate.faults.actions.begin() +
                            static_cast<std::ptrdiff_t>(
                                std::min(start + chunk, candidate.faults.actions.size()));
          candidate.faults.actions.erase(first, last);
          if (still_fails(candidate)) {
            best = std::move(candidate);
            progress = true;  // same offset now names the next chunk
          } else {
            start += chunk;
          }
        }
        if (chunk == 1) break;
      }
    }

    // 2. Peer reduction (keep at least one seed and one other peer).
    for (std::size_t i = best.peers.size(); i-- > 0 && budget > 0;) {
      if (best.peers.size() <= 2) break;
      if (best.peers[i].is_seed && seed_count(best) == 1) continue;
      Scenario candidate = best;
      const std::string name = candidate.peers[i].name;
      candidate.peers.erase(candidate.peers.begin() + static_cast<std::ptrdiff_t>(i));
      std::erase_if(candidate.faults.actions,
                    [&](const sim::FaultAction& a) { return a.target == name; });
      if (still_fails(candidate)) best = std::move(candidate);
    }

    // 3. Schedule shortening: run only slightly past the last fault, then halve.
    const double fault_end_s = sim::to_seconds(best.faults.horizon()) + 30.0;
    for (double d : {fault_end_s, best.duration_s / 2.0, best.duration_s / 4.0}) {
      if (budget <= 0 || d >= best.duration_s || d < 10.0) continue;
      Scenario candidate = best;
      candidate.duration_s = d;
      if (still_fails(candidate)) best = std::move(candidate);
    }

    // 4. File-size halving.
    while (budget > 0 && best.file_size / 2 >= best.piece_size) {
      Scenario candidate = best;
      candidate.file_size = best.file_size / 2 / best.piece_size * best.piece_size;
      if (!still_fails(candidate)) break;
      best = std::move(candidate);
    }
    return best;
  }

  struct SweepResult {
    std::uint64_t seed = 0;
    bool passed = true;
    std::size_t violations = 0;
    std::size_t property_failures = 0;
    std::uint64_t trace_hash = 0;
    std::string first_failure;
  };

  // Run `count` seeds starting at `base_seed` on the given pool. Results are
  // in seed order regardless of the pool's thread count.
  std::vector<SweepResult> sweep(std::uint64_t base_seed, int count,
                                 ParallelRunner& runner) const {
    return runner.map<SweepResult>(count, [&](int i) {
      const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(i);
      const FuzzVerdict verdict = run(generate(seed));
      SweepResult r;
      r.seed = seed;
      r.passed = verdict.passed;
      r.violations = verdict.violations.size();
      r.property_failures = verdict.property_failures.size();
      r.trace_hash = verdict.trace_hash;
      if (!verdict.violations.empty()) {
        r.first_failure = trace::to_string(verdict.violations.front());
      } else if (!verdict.property_failures.empty()) {
        r.first_failure = verdict.property_failures.front();
      }
      return r;
    });
  }

 private:
  static std::size_t seed_count(const Scenario& s) {
    std::size_t n = 0;
    for (const ScenarioPeer& p : s.peers) n += p.is_seed ? 1 : 0;
    return n;
  }

  FuzzLimits limits_;
};

inline std::optional<Scenario> Scenario::parse(std::string_view text) {
  Scenario s;
  bool saw_header = false;
  while (!text.empty()) {
    const std::size_t eol = text.find('\n');
    std::string_view line = text.substr(0, eol);
    if (eol == std::string_view::npos) {
      text = {};
    } else {
      text.remove_prefix(eol + 1);
    }
    if (line.empty() || line[0] == '#') continue;

    std::vector<std::string_view> tokens;
    std::string_view rest = line;
    while (!rest.empty()) {
      const std::size_t sp = rest.find(' ');
      if (sp != 0) tokens.push_back(rest.substr(0, sp));
      if (sp == std::string_view::npos) break;
      rest.remove_prefix(sp + 1);
    }
    if (tokens.empty()) continue;

    std::string value;
    if (tokens[0] == "scenario") {
      saw_header = true;
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        if (detail::parse_kv(tokens[i], "seed", value)) {
          s.seed = std::strtoull(value.c_str(), nullptr, 10);
        } else if (detail::parse_kv(tokens[i], "duration", value)) {
          s.duration_s = std::strtod(value.c_str(), nullptr);
        } else if (detail::parse_kv(tokens[i], "file", value)) {
          s.file_size = std::strtoll(value.c_str(), nullptr, 10);
        } else if (detail::parse_kv(tokens[i], "piece", value)) {
          s.piece_size = std::strtoll(value.c_str(), nullptr, 10);
        } else if (detail::parse_kv(tokens[i], "unsafe", value)) {
          s.unsafe_no_cwnd_floor = value == "1";
        } else if (detail::parse_kv(tokens[i], "noban", value)) {
          s.unsafe_no_ban = value == "1";
        } else if (detail::parse_kv(tokens[i], "noenf", value)) {
          s.unsafe_no_enforcement = value == "1";
        } else if (detail::parse_kv(tokens[i], "trackers", value)) {
          s.trackers = std::atoi(value.c_str());
        } else if (detail::parse_kv(tokens[i], "trpeers", value)) {
          s.tracker_peers = std::atoi(value.c_str());
        } else if (detail::parse_kv(tokens[i], "pex", value)) {
          s.pex = value == "1";
        } else if (detail::parse_kv(tokens[i], "boot", value)) {
          s.bootstrap = value == "1";
        } else if (detail::parse_kv(tokens[i], "failover", value)) {
          s.failover = value == "1";
        } else if (detail::parse_kv(tokens[i], "cells", value)) {
          s.cells = std::atoi(value.c_str());
        } else if (detail::parse_kv(tokens[i], "sched", value)) {
          const auto kind = net::scheduler_kind_from(value);
          if (!kind) return std::nullopt;
          s.cell_sched = *kind;
        } else if (detail::parse_kv(tokens[i], "susp", value)) {
          s.suspend_lifecycle = value == "1";
        } else if (detail::parse_kv(tokens[i], "store", value)) {
          if (!valid_storage_profile(value)) return std::nullopt;
          s.storage_profile = value;
        } else {
          return std::nullopt;
        }
      }
    } else if (tokens[0] == "peer") {
      ScenarioPeer p;
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        if (detail::parse_kv(tokens[i], "name", value)) {
          p.name = value;
        } else if (detail::parse_kv(tokens[i], "link", value)) {
          p.wireless = value == "wireless";
        } else if (detail::parse_kv(tokens[i], "role", value)) {
          p.is_seed = value == "seed";
        } else if (detail::parse_kv(tokens[i], "wp2p", value)) {
          p.wp2p = value == "1";
        } else if (detail::parse_kv(tokens[i], "preload", value)) {
          p.preload = std::strtod(value.c_str(), nullptr);
        } else if (detail::parse_kv(tokens[i], "cell", value)) {
          p.cell = std::atoi(value.c_str());
        } else if (detail::parse_kv(tokens[i], "class", value)) {
          p.bw_class = std::atoi(value.c_str());
        } else if (detail::parse_kv(tokens[i], "adv", value)) {
          if (!bt::adversary_kind_from(value)) return std::nullopt;
          p.adversary = value;
        } else {
          return std::nullopt;
        }
      }
      if (p.name.empty()) return std::nullopt;
      s.peers.push_back(std::move(p));
    } else if (tokens[0] == "fault") {
      auto action = sim::FaultAction::parse(line);
      if (!action) return std::nullopt;
      s.faults.actions.push_back(std::move(*action));
    } else {
      return std::nullopt;
    }
  }
  if (!saw_header || s.peers.empty()) return std::nullopt;
  return s;
}

}  // namespace wp2p::exp
