// Wires a net::FaultInjector into a Swarm's application layer.
//
// The injector itself only knows the network; the hooks bound here realize
// the swarm-level faults: tracker outages flip the tracker's reachability,
// and peer-crash windows stop/restart the bt::Client living on the target
// node (its piece store survives, as a real client's disk would — the crash
// kills the process, not the download state).
#pragma once

#include <memory>

#include "exp/swarm.hpp"
#include "net/fault_injector.hpp"
#include "sim/fault_plan.hpp"

namespace wp2p::exp {

inline std::unique_ptr<net::FaultInjector> bind_faults(Swarm& swarm, sim::FaultPlan plan) {
  auto injector = std::make_unique<net::FaultInjector>(swarm.world.net, std::move(plan));
  injector->on_tracker_outage = [tracker = &swarm.tracker](bool down) {
    tracker->set_reachable(!down);
  };
  injector->on_peer_process = [members = &swarm.members](net::Node& node, bool up) {
    for (auto& member : *members) {
      if (member.host->node != &node) continue;
      if (up && !member.client->running()) {
        member.client->start();
      } else if (!up && member.client->running()) {
        member.client->stop();
      }
      return;
    }
  };
  return injector;
}

}  // namespace wp2p::exp
