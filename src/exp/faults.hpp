// Wires a net::FaultInjector into a Swarm's application layer.
//
// The injector itself only knows the network; the hooks bound here realize
// the swarm-level faults: tracker outages flip the named tracker tier's
// reachability (or every tier at once for a blackout), and peer-crash windows
// stop/restart the bt::Client living on the target node (its piece store
// survives, as a real client's disk would — the crash kills the process, not
// the download state).
#pragma once

#include <memory>
#include <unordered_map>

#include "exp/swarm.hpp"
#include "net/fault_injector.hpp"
#include "sim/fault_plan.hpp"
#include "trace/recorder.hpp"

namespace wp2p::exp {

inline std::unique_ptr<net::FaultInjector> bind_faults(Swarm& swarm, sim::FaultPlan plan) {
  auto injector = std::make_unique<net::FaultInjector>(swarm.world.net, std::move(plan));
  // Cell-targeted faults resolve against the world's topology when one exists.
  injector->bind_cells(swarm.world.cells.get());
  injector->on_tracker_outage = [swarm_ptr = &swarm](const std::string& target, bool down) {
    swarm_ptr->set_tracker_reachable(target, !down);
  };
  // Resolve node -> member once up front: plans can carry hundreds of
  // crash/restart events and the membership is fixed by the time faults bind.
  auto by_node = std::make_shared<std::unordered_map<const net::Node*, Swarm::Member*>>();
  for (auto& member : swarm.members) (*by_node)[member.host->node] = &member;
  injector->on_peer_process = [by_node, sim = &swarm.world.sim](net::Node& node, bool up) {
    const auto it = by_node->find(&node);
    if (it == by_node->end()) {
      // A process fault aimed at a node that runs no client (e.g. a plan
      // replayed against a smaller swarm) would otherwise vanish silently.
      WP2P_TRACE(*sim, trace::event(trace::Component::kFault, trace::Kind::kFaultSkipped)
                           .at(node.name())
                           .why("no-client")
                           .with("up", up ? 1 : 0));
      return;
    }
    Swarm::Member& member = *it->second;
    if (up && !member.client->running()) {
      member.client->start();
    } else if (!up && member.client->running()) {
      member.client->stop();
    }
  };
  injector->on_peer_suspend = [by_node, sim = &swarm.world.sim](net::Node& node,
                                                                bool suspend) {
    const auto it = by_node->find(&node);
    if (it == by_node->end()) {
      WP2P_TRACE(*sim, trace::event(trace::Component::kFault, trace::Kind::kFaultSkipped)
                           .at(node.name())
                           .why("no-client")
                           .with("up", suspend ? 0 : 1));
      return;
    }
    Swarm::Member& member = *it->second;
    if (suspend) {
      member.client->suspend();
    } else {
      member.client->resume();
    }
  };
  return injector;
}

}  // namespace wp2p::exp
