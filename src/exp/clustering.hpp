// Heterogeneous-bandwidth swarm scaffolding and the clustering probe.
//
// BandwidthClass describes one tier of a heterogeneous swarm (Legout et al.,
// arXiv:cs/0703107): an access-link shape plus a client upload limit. The
// canonical three_tier_classes() swarm is the repo's reproduction testbed for
// the clustering result.
//
// ClusteringProbe wires a metrics::TransferMatrix to live bt::Clients through
// the client's per-pair accounting hooks (on_payload_sent/received,
// on_unchoke_change). Rows are IDENTITIES: the probe binds every peer-id a
// tracked client has ever used to the same row, so bytes keep accruing to one
// row across reconnects, duplicate-handshake replacement, and hand-offs —
// including naive clients that regenerate their peer-id on re-initiation
// (resolve() refreshes the bindings whenever an unknown id appears).
//
// The probe must outlive the swarm it tracks, or finish() must be called
// before the swarm is torn down: hooks hold a pointer to the probe.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "bt/client.hpp"
#include "metrics/transfer_matrix.hpp"
#include "net/wired_link.hpp"
#include "trace/recorder.hpp"
#include "util/units.hpp"

namespace wp2p::exp {

// One bandwidth tier: the access link its members sit behind and the upload
// limit their clients enforce. The limit, not the link, is the tier's
// tit-for-tat signature (what other peers can measure and reciprocate); the
// link just has to not mask it.
struct BandwidthClass {
  std::string label;
  net::WiredParams link;
  util::Rate upload_limit = util::Rate::unlimited();
};

// The canonical 3-tier swarm of the clustering experiments: cable-modem-ish
// slow peers, ADSL2-ish mid peers, and fiber-ish fast peers. Up capacities
// sit at twice the upload limit so the limit (the incentive signal) binds,
// not the queue.
inline std::vector<BandwidthClass> three_tier_classes() {
  std::vector<BandwidthClass> classes(3);
  classes[0].label = "slow";
  classes[0].upload_limit = util::Rate::kBps(30.0);
  classes[0].link.up_capacity = util::Rate::kBps(60.0);
  classes[0].link.down_capacity = util::Rate::mbps(10.0);
  classes[1].label = "mid";
  classes[1].upload_limit = util::Rate::kBps(100.0);
  classes[1].link.up_capacity = util::Rate::kBps(200.0);
  classes[1].link.down_capacity = util::Rate::mbps(10.0);
  classes[2].label = "fast";
  classes[2].upload_limit = util::Rate::kBps(400.0);
  classes[2].link.up_capacity = util::Rate::kBps(800.0);
  classes[2].link.down_capacity = util::Rate::mbps(10.0);
  return classes;
}

class ClusteringProbe {
 public:
  explicit ClusteringProbe(sim::Simulator& sim) : sim_{&sim} {}

  // Register `client` as one identity row and install its accounting hooks.
  // Returns the row index. Call after the swarm member is added, before
  // start_all().
  int track(bt::Client& client, const std::string& label, int bw_class, bool is_seed) {
    const int row = matrix_.add_identity(label, bw_class, is_seed);
    matrix_.bind(client.peer_id(), row);
    tracked_.push_back(Tracked{&client, row});
    client.on_payload_sent = [this, row](bt::PeerId to, std::int64_t bytes) {
      const int dst = resolve(to);
      if (dst >= 0) matrix_.record_upload(row, dst, bytes);
    };
    client.on_payload_received = [this, row](bt::PeerId from, std::int64_t bytes) {
      const int src = resolve(from);
      if (src >= 0) matrix_.record_download(row, src, bytes);
    };
    client.on_unchoke_change = [this, row](bt::PeerId to, bool unchoked) {
      const int dst = resolve(to);
      if (dst >= 0) matrix_.set_unchoked(row, dst, unchoked, sim_->now());
    };
    return row;
  }

  // Periodically emit a kBtMatrixSample trace event with matrix aggregates
  // (bytes moved, the live overall clustering coefficient). No-op unless a
  // recorder is installed on the simulator.
  void enable_sampling(sim::SimTime interval) {
    sampler_ = std::make_unique<sim::PeriodicTask>(*sim_, interval, [this] {
      std::int64_t uploaded = 0;
      for (std::size_t r = 0; r < matrix_.rows(); ++r) {
        uploaded += matrix_.total_uploaded(static_cast<int>(r));
      }
      WP2P_TRACE(*sim_, trace::event(trace::Component::kBt, trace::Kind::kBtMatrixSample)
                            .at("probe")
                            .with("rows", static_cast<double>(matrix_.rows()))
                            .with("uploaded", static_cast<double>(uploaded))
                            .with("coeff", matrix_.overall_coefficient()));
    });
    sampler_->start();
  }

  // Freeze one tracked client's outgoing accounting and close its open
  // unchoke intervals — call at its completion: affinity is a leech-phase
  // quantity, and a completed peer's seeding behaviour would dilute it.
  // Incoming edges (other rows' behaviour toward this identity) keep accruing.
  void freeze(const bt::Client& client) {
    for (const Tracked& t : tracked_) {
      if (t.client != &client) continue;
      t.client->on_payload_sent = nullptr;
      t.client->on_unchoke_change = nullptr;
      matrix_.finish_row(t.row, sim_->now());
    }
  }

  // Uninstall every hook and close all open intervals: the matrix freezes at
  // the measured-phase boundary even if the simulation keeps running. Also
  // makes the probe safe to destroy before the swarm.
  void detach() {
    for (const Tracked& t : tracked_) {
      t.client->on_payload_sent = nullptr;
      t.client->on_payload_received = nullptr;
      t.client->on_unchoke_change = nullptr;
    }
    finish();
  }

  // Close open unchoke intervals at the current sim time. Call once, when the
  // measured phase ends.
  void finish() { matrix_.finish(sim_->now()); }

  metrics::TransferMatrix& matrix() { return matrix_; }
  const metrics::TransferMatrix& matrix() const { return matrix_; }

 private:
  struct Tracked {
    bt::Client* client = nullptr;
    int row = -1;
  };

  // Map a wire peer-id to its identity row. On a miss, refresh the bindings
  // from every tracked client's current peer_id() — a naive client that just
  // re-initiated shows up here with a fresh id — and retry. Old bindings are
  // kept so bytes already in flight under the previous id still resolve.
  int resolve(bt::PeerId id) {
    int row = matrix_.row_of(id);
    if (row >= 0) return row;
    for (const Tracked& t : tracked_) matrix_.bind(t.client->peer_id(), t.row);
    return matrix_.row_of(id);
  }

  sim::Simulator* sim_;
  metrics::TransferMatrix matrix_;
  std::vector<Tracked> tracked_;
  std::unique_ptr<sim::PeriodicTask> sampler_;
};

}  // namespace wp2p::exp
