// Flyweight background peers: swarm population without per-peer cost.
//
// A full bt::Client carries eight periodic tasks, a piece store with per-block
// state, a credit ledger, rate meters, and its own host/stack/access link.
// That is the right fidelity for the peers under measurement, but populating a
// 50k-peer swarm with full clients is ~50k timers and ~50k network nodes — the
// simulator spends its time on bookkeeping for peers whose traffic never
// crosses the measured cut.
//
// FlyweightSwarm provides the *observable* behavior of those background peers
// at a fraction of the state:
//
//   preserved — tracker registration/refresh (so foreground announces see a
//     realistically sized swarm), accepting connections, the full wire
//     handshake, bitfield/have exchange, interest signalling, a tit-for-tat
//     choker (unchoke slots favor sessions that recently uploaded to us),
//     serving requests block-by-block, rarest-first piece selection when
//     downloading from foreground peers, and gradual piece acquisition with
//     have-broadcasts (leeches become seeds over time).
//
//   dropped — background↔background data transfer (replaced by a progress
//     model that grants pieces over time, rarest-biased against the swarm
//     availability histogram), per-peer hosts (peers share aggregator nodes
//     and their access links, one listen port each), per-connection request
//     pipelines beyond a fixed window, credit/PEX/bootstrap machinery, and
//     per-peer timers (one shared announce wheel + progress tick + choke
//     round for the whole population).
//
// Seeds share a single full Bitfield (the flyweight proper); a leech owns its
// bitfield only until completion, then swaps to the shared copy.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "bt/bitfield.hpp"
#include "bt/metainfo.hpp"
#include "bt/piece_store.hpp"
#include "bt/tracker.hpp"
#include "bt/wire.hpp"
#include "exp/world.hpp"

namespace wp2p::exp {

struct FlyweightConfig {
  int unchoke_slots = 4;              // tit-for-tat slots per background peer
  int request_window = 8;             // outstanding block requests per session
  double seed_fraction = 0.2;         // initial seeds among background peers
  sim::SimTime announce_interval = sim::seconds(120.0);
  sim::SimTime choke_interval = sim::seconds(10.0);
  sim::SimTime progress_interval = sim::seconds(5.0);
  // Probability that one leech gains one (rarest-biased) piece per progress
  // tick — the stand-in for the background↔background transfer we don't model.
  double progress_per_tick = 0.25;
  std::uint16_t base_port = 20000;    // listen ports count up from here per host
};

class FlyweightSwarm {
 public:
  struct Stats {
    std::uint64_t sessions_accepted = 0;
    std::uint64_t sessions_closed = 0;
    std::uint64_t blocks_served = 0;     // piece blocks uploaded to foreground
    std::uint64_t blocks_fetched = 0;    // piece blocks downloaded from foreground
    std::uint64_t pieces_granted = 0;    // progress-model grants
    std::uint64_t have_broadcasts = 0;
  };

  FlyweightSwarm(World& world, bt::Tracker& tracker, const bt::Metainfo& meta,
                 FlyweightConfig config = {})
      : world_{world},
        tracker_{tracker},
        meta_{meta},
        config_{config},
        rng_{world.sim.rng().fork()},
        full_{meta.piece_count()},
        availability_(static_cast<std::size_t>(meta.piece_count()), 0) {
    full_.set_all();
  }

  FlyweightSwarm(const FlyweightSwarm&) = delete;
  FlyweightSwarm& operator=(const FlyweightSwarm&) = delete;

  // Aggregator hosts: every flyweight peer lives on one of these shared nodes
  // (unique listen port per peer). Add at least one before add_peers().
  void add_host(World::Host& host) { hosts_.push_back(&host); }

  // Create `count` background peers round-robin across the aggregator hosts.
  // A config_.seed_fraction slice starts as seeds, the rest as empty leeches.
  void add_peers(int count) {
    WP2P_ASSERT_MSG(!hosts_.empty(), "add_host() before add_peers()");
    for (int i = 0; i < count; ++i) {
      World::Host& host = *hosts_[peers_.size() % hosts_.size()];
      peers_.emplace_back();
      Peer& peer = peers_.back();
      peer.id = rng_.next_u64() | 1;
      peer.host = &host;
      peer.port = static_cast<std::uint16_t>(config_.base_port +
                                             peers_.size() / hosts_.size());
      if (rng_.uniform() < config_.seed_fraction) {
        peer.have = &full_;
      } else {
        peer.own = std::make_unique<bt::Bitfield>(meta_.piece_count());
        peer.have = peer.own.get();
      }
      for (int p = 0; p < meta_.piece_count(); ++p) {
        if (peer.have->test(p)) ++availability_[static_cast<std::size_t>(p)];
      }
    }
  }

  // Register everyone with the tracker, open listeners, start the shared
  // wheels. Announces use a null callback: background peers never dial out, so
  // the tracker skips peer selection for them — registration is O(1) per peer.
  void start() {
    for (Peer& peer : peers_) {
      listen(peer);
      announce(peer, bt::AnnounceEvent::kStarted);
    }
    announce_task_ = std::make_unique<sim::PeriodicTask>(
        world_.sim, wheel_period(), [this] { announce_cohort(); });
    choke_task_ = std::make_unique<sim::PeriodicTask>(
        world_.sim, config_.choke_interval, [this] { run_choke_round(); });
    progress_task_ = std::make_unique<sim::PeriodicTask>(
        world_.sim, config_.progress_interval, [this] { progress_tick(); });
    announce_task_->start();
    choke_task_->start();
    progress_task_->start();
  }

  std::size_t peer_count() const { return peers_.size(); }
  std::size_t seed_count() const {
    std::size_t n = 0;
    for (const Peer& peer : peers_) n += peer.have->all() ? 1 : 0;
    return n;
  }
  std::size_t open_sessions() const {
    return static_cast<std::size_t>(stats_.sessions_accepted - stats_.sessions_closed);
  }
  const Stats& stats() const { return stats_; }

 private:
  struct Peer;

  struct Session {
    Peer* peer = nullptr;
    std::shared_ptr<tcp::Connection> conn;
    bt::Bitfield remote;
    bool handshake_sent = false;
    bool handshake_received = false;
    bool am_choking = true;
    bool am_interested = false;
    bool peer_choking = true;
    bool peer_interested = false;
    int inflight = 0;                  // outstanding block requests
    int fetch_piece = -1;              // piece currently being fetched
    int fetch_next_block = 0;
    int fetch_blocks_done = 0;
    std::int64_t uploaded_to_us = 0;   // tit-for-tat signal, reset each round

    bool established() const { return handshake_sent && handshake_received; }
  };

  struct Peer {
    bt::PeerId id = 0;
    World::Host* host = nullptr;
    std::uint16_t port = 0;
    const bt::Bitfield* have = nullptr;      // shared full_ once complete
    std::unique_ptr<bt::Bitfield> own;       // leech-only storage
    std::vector<std::unique_ptr<Session>> sessions;
    bool announced_complete = false;
  };

  sim::SimTime wheel_period() const {
    return std::max<sim::SimTime>(1, config_.announce_interval / kAnnounceCohorts);
  }

  void listen(Peer& peer) {
    peer.host->stack->listen(peer.port, [this, &peer](std::shared_ptr<tcp::Connection> conn) {
      accept(peer, std::move(conn));
    });
  }

  void announce(Peer& peer, bt::AnnounceEvent event) {
    tracker_.announce(bt::AnnounceRequest{meta_.info_hash,
                                          {peer.host->node->address(), peer.port},
                                          peer.id,
                                          peer.have->all(),
                                          event},
                      nullptr);
  }

  void announce_cohort() {
    if (peers_.empty()) return;
    // One cohort per wheel tick: every peer refreshes once per
    // announce_interval without a swarm-wide announce burst.
    const std::size_t begin = announce_cursor_ % peers_.size();
    const std::size_t count = (peers_.size() + kAnnounceCohorts - 1) / kAnnounceCohorts;
    for (std::size_t i = 0; i < count && i < peers_.size(); ++i) {
      Peer& peer = peers_[(begin + i) % peers_.size()];
      const bool complete = peer.have->all();
      announce(peer, complete && !peer.announced_complete ? bt::AnnounceEvent::kCompleted
                                                          : bt::AnnounceEvent::kInterval);
      if (complete) peer.announced_complete = true;
    }
    announce_cursor_ = (begin + count) % peers_.size();
  }

  void accept(Peer& peer, std::shared_ptr<tcp::Connection> conn) {
    ++stats_.sessions_accepted;
    peer.sessions.push_back(std::make_unique<Session>());
    Session* s = peer.sessions.back().get();
    s->peer = &peer;
    s->conn = std::move(conn);
    s->remote = bt::Bitfield{meta_.piece_count()};
    s->conn->on_message = [this, s](const tcp::Connection::MessageHandle& handle,
                                    std::int64_t) {
      on_message(*s, *std::static_pointer_cast<const bt::WireMessage>(handle));
    };
    s->conn->on_closed = [this, s](tcp::CloseReason) { close_session(*s); };
  }

  void close_session(Session& s) {
    ++stats_.sessions_closed;
    s.conn->on_message = nullptr;
    s.conn->on_closed = nullptr;
    auto& sessions = s.peer->sessions;
    for (auto it = sessions.begin(); it != sessions.end(); ++it) {
      if (it->get() == &s) {
        sessions.erase(it);
        break;
      }
    }
  }

  void send(Session& s, std::shared_ptr<const bt::WireMessage> msg) {
    const std::int64_t size = msg->wire_size();
    s.conn->send_message(std::move(msg), size);
  }

  void on_message(Session& s, const bt::WireMessage& msg) {
    if (msg.type == bt::MsgType::kHandshake) {
      if (msg.info_hash != meta_.info_hash) {
        s.conn->abort();
        return;
      }
      s.handshake_received = true;
      if (!s.handshake_sent) {
        send(s, bt::WireMessage::handshake(meta_.info_hash, s.peer->id, s.peer->port));
        send(s, bt::WireMessage::bitfield_msg(*s.peer->have));
        s.handshake_sent = true;
      }
      return;
    }
    if (!s.established()) return;
    switch (msg.type) {
      case bt::MsgType::kBitfield:
        if (msg.bitfield.size() == s.remote.size()) s.remote = msg.bitfield;
        update_interest(s);
        break;
      case bt::MsgType::kHave:
        if (msg.piece >= 0 && msg.piece < meta_.piece_count()) {
          s.remote.set(msg.piece);
          update_interest(s);
        }
        break;
      case bt::MsgType::kInterested: s.peer_interested = true; break;
      case bt::MsgType::kNotInterested: s.peer_interested = false; break;
      case bt::MsgType::kChoke:
        s.peer_choking = true;
        s.inflight = 0;
        s.fetch_piece = -1;
        break;
      case bt::MsgType::kUnchoke:
        s.peer_choking = false;
        fill_requests(s);
        break;
      case bt::MsgType::kRequest: serve_request(s, msg); break;
      case bt::MsgType::kPiece: on_block(s, msg); break;
      case bt::MsgType::kCancel:  // we serve synchronously; nothing is queued
      case bt::MsgType::kKeepAlive:
      case bt::MsgType::kPex:
      case bt::MsgType::kHandshake: break;
    }
  }

  void update_interest(Session& s) {
    const bool want = !s.peer->have->all() &&
                      bt::Bitfield::has_missing_piece(s.remote, *s.peer->have);
    if (want == s.am_interested) return;
    s.am_interested = want;
    send(s, bt::WireMessage::simple(want ? bt::MsgType::kInterested
                                         : bt::MsgType::kNotInterested));
    if (want && !s.peer_choking) fill_requests(s);
  }

  void serve_request(Session& s, const bt::WireMessage& msg) {
    if (s.am_choking) return;  // request raced our choke: drop, like bt::Client
    if (msg.piece < 0 || msg.piece >= meta_.piece_count()) return;
    if (!s.peer->have->test(msg.piece)) return;
    send(s, bt::WireMessage::piece_msg(msg.piece, msg.offset, msg.length));
    ++stats_.blocks_served;
  }

  int blocks_in_piece(int piece) const {
    return static_cast<int>((meta_.piece_size(piece) + bt::kBlockSize - 1) /
                            bt::kBlockSize);
  }

  // Rarest-first over the remote's pieces we lack, by the background
  // availability histogram. Scans word-wise; ties keep the lowest index.
  int pick_piece(const Session& s) const {
    const bt::Bitfield& have = *s.peer->have;
    int best = -1;
    std::uint32_t best_avail = 0;
    for (int w = 0; w < s.remote.word_count(); ++w) {
      std::uint64_t cand = s.remote.word(w) & ~have.word(w);
      while (cand != 0) {
        const int p = w * 64 + std::countr_zero(cand);
        cand &= cand - 1;
        const auto avail = availability_[static_cast<std::size_t>(p)];
        if (best < 0 || avail < best_avail) {
          best = p;
          best_avail = avail;
        }
      }
    }
    return best;
  }

  void fill_requests(Session& s) {
    if (!s.am_interested || s.peer_choking) return;
    while (s.inflight < config_.request_window) {
      if (s.fetch_piece < 0) {
        s.fetch_piece = pick_piece(s);
        if (s.fetch_piece < 0) return;
        s.fetch_next_block = 0;
        s.fetch_blocks_done = 0;
      }
      if (s.fetch_next_block >= blocks_in_piece(s.fetch_piece)) return;  // drain inflight
      const std::int64_t offset =
          static_cast<std::int64_t>(s.fetch_next_block) * bt::kBlockSize;
      const std::int64_t remain = meta_.piece_size(s.fetch_piece) - offset;
      send(s, bt::WireMessage::request(s.fetch_piece, offset,
                                       std::min<std::int64_t>(remain, bt::kBlockSize)));
      ++s.fetch_next_block;
      ++s.inflight;
    }
  }

  void on_block(Session& s, const bt::WireMessage& msg) {
    ++stats_.blocks_fetched;
    s.uploaded_to_us += msg.length;
    if (s.inflight > 0) --s.inflight;
    if (msg.piece == s.fetch_piece) {
      if (++s.fetch_blocks_done >= blocks_in_piece(s.fetch_piece)) {
        grant_piece(*s.peer, s.fetch_piece);
        s.fetch_piece = -1;
      }
    }
    fill_requests(s);
  }

  // A leech gained a piece — from a foreground transfer or the progress
  // model. Updates availability, broadcasts have, handles completion.
  void grant_piece(Peer& peer, int piece) {
    if (peer.own == nullptr || peer.own->test(piece)) return;
    peer.own->set(piece);
    ++availability_[static_cast<std::size_t>(piece)];
    for (auto& session : peer.sessions) {
      if (!session->established()) continue;
      send(*session, bt::WireMessage::have(piece));
      ++stats_.have_broadcasts;
    }
    if (peer.own->all()) {
      // Complete: swap to the shared full bitfield (the flyweight proper) and
      // free the private copy. Interest in every session dies with it.
      peer.have = &full_;
      peer.own.reset();
      for (auto& session : peer.sessions) update_interest(*session);
    }
  }

  // Tit-for-tat-lite: per peer, unchoke up to unchoke_slots interested
  // sessions, preferring those that uploaded to us since the last round.
  void run_choke_round() {
    std::vector<Session*> interested;
    for (Peer& peer : peers_) {
      interested.clear();
      for (auto& session : peer.sessions) {
        if (session->established() && session->peer_interested) {
          interested.push_back(session.get());
        }
      }
      std::stable_sort(interested.begin(), interested.end(), [](Session* a, Session* b) {
        return a->uploaded_to_us > b->uploaded_to_us;
      });
      const auto slots = static_cast<std::size_t>(config_.unchoke_slots);
      for (std::size_t i = 0; i < interested.size(); ++i) {
        set_choke(*interested[i], i >= slots);
      }
      for (auto& session : peer.sessions) {
        session->uploaded_to_us = 0;
        if (session->established() && !session->peer_interested) {
          set_choke(*session, true);
        }
      }
    }
  }

  void set_choke(Session& s, bool choke) {
    if (s.am_choking == choke) return;
    s.am_choking = choke;
    send(s, bt::WireMessage::simple(choke ? bt::MsgType::kChoke : bt::MsgType::kUnchoke));
  }

  // The background↔background transfer stand-in: each tick, every incomplete
  // peer gains one piece with probability progress_per_tick, biased to rare
  // pieces (sample two, keep the rarer — a cheap rarest-first approximation).
  void progress_tick() {
    const int pieces = meta_.piece_count();
    if (pieces == 0) return;
    for (Peer& peer : peers_) {
      if (peer.own == nullptr) continue;  // already complete
      if (rng_.uniform() >= config_.progress_per_tick) continue;
      const int a = missing_piece_near(peer, static_cast<int>(rng_.below(
                                                static_cast<std::uint64_t>(pieces))));
      const int b = missing_piece_near(peer, static_cast<int>(rng_.below(
                                                static_cast<std::uint64_t>(pieces))));
      int grant = a;
      if (a < 0 || (b >= 0 && availability_[static_cast<std::size_t>(b)] <
                                  availability_[static_cast<std::size_t>(a)])) {
        grant = b;
      }
      if (grant >= 0) {
        grant_piece(peer, grant);
        ++stats_.pieces_granted;
      }
    }
  }

  // First piece >= start (wrapping) the peer lacks, or -1 when complete.
  int missing_piece_near(const Peer& peer, int start) const {
    const bt::Bitfield& have = *peer.have;
    const int pieces = meta_.piece_count();
    for (int step = 0; step < pieces; ++step) {
      const int p = (start + step) % pieces;
      if (!have.test(p)) return p;
    }
    return -1;
  }

  static constexpr std::size_t kAnnounceCohorts = 16;

  World& world_;
  bt::Tracker& tracker_;
  const bt::Metainfo& meta_;
  FlyweightConfig config_;
  sim::Rng rng_;
  bt::Bitfield full_;                       // shared by every complete peer
  std::vector<std::uint32_t> availability_; // background copies per piece
  std::vector<World::Host*> hosts_;
  std::deque<Peer> peers_;                  // deque: Peer& stays valid as peers grow
  std::size_t announce_cursor_ = 0;
  std::unique_ptr<sim::PeriodicTask> announce_task_;
  std::unique_ptr<sim::PeriodicTask> choke_task_;
  std::unique_ptr<sim::PeriodicTask> progress_task_;
  Stats stats_;
};

}  // namespace wp2p::exp
