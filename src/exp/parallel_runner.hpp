// Worker-pool executor for multi-seed experiment runs.
//
// Every paper figure is an average over N seeded runs, and each run is a
// share-nothing deterministic simulation (its own Simulator, Network, and
// root RNG). That makes the batch embarrassingly parallel: the pool needs no
// synchronization beyond the task queues themselves.
//
// Tasks are distributed round-robin across per-worker deques; an idle worker
// pops from the front of its own deque and steals from the back of a victim's
// (classic work stealing), so one straggler seed cannot serialize the tail of
// a batch. Results land in index-addressed slots, which makes aggregation
// order — and therefore every bench table — independent of thread
// interleaving: `--jobs 1` and `--jobs 8` print byte-identical output.
#pragma once

#include <algorithm>
#include <chrono>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/assert.hpp"

namespace wp2p::exp {

// Cumulative wall-clock accounting across all batches run on one pool.
// task_seconds sums the wall time of the individual tasks, so
// task_seconds / wall_seconds is the observed parallel speedup.
struct RunnerReport {
  int tasks = 0;
  int batches = 0;
  double task_seconds = 0.0;
  double wall_seconds = 0.0;
  double speedup() const { return wall_seconds > 0.0 ? task_seconds / wall_seconds : 1.0; }
};

class ParallelRunner {
 public:
  // jobs <= 0 selects one worker per hardware thread.
  explicit ParallelRunner(int jobs = 0) { set_jobs(jobs); }

  static int hardware_jobs() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }

  void set_jobs(int jobs) { jobs_ = jobs > 0 ? jobs : hardware_jobs(); }
  int jobs() const { return jobs_; }
  const RunnerReport& report() const { return report_; }

  // Run fn(i) for every i in [0, count). Blocks until the batch completes;
  // the first exception thrown by a task is rethrown here. Not reentrant —
  // call from one thread, and do not nest batches inside tasks.
  void for_each_index(int count, const std::function<void(int)>& fn) {
    if (count <= 0) return;
    using Clock = std::chrono::steady_clock;
    const auto batch_start = Clock::now();
    const int workers = std::min(jobs_, count);
    std::vector<double> task_seconds(static_cast<std::size_t>(workers), 0.0);

    auto timed_run = [&](int worker, int index) {
      const auto start = Clock::now();
      fn(index);
      task_seconds[static_cast<std::size_t>(worker)] +=
          std::chrono::duration<double>(Clock::now() - start).count();
    };

    if (workers == 1) {
      for (int i = 0; i < count; ++i) timed_run(0, i);
    } else {
      std::deque<WorkerQueue> queues(static_cast<std::size_t>(workers));
      for (int i = 0; i < count; ++i) {
        queues[static_cast<std::size_t>(i % workers)].tasks.push_back(i);
      }
      std::mutex error_mutex;
      std::exception_ptr first_error;
      auto worker_main = [&](int self) {
        try {
          for (;;) {
            int index = take_own(queues[static_cast<std::size_t>(self)]);
            for (int off = 1; off < workers && index < 0; ++off) {
              index = steal(queues[static_cast<std::size_t>((self + off) % workers)]);
            }
            // Tasks never enqueue tasks, so empty queues everywhere means done.
            if (index < 0) return;
            timed_run(self, index);
          }
        } catch (...) {
          std::lock_guard lock{error_mutex};
          if (!first_error) first_error = std::current_exception();
        }
      };
      std::vector<std::thread> threads;
      threads.reserve(static_cast<std::size_t>(workers));
      for (int w = 0; w < workers; ++w) threads.emplace_back(worker_main, w);
      for (auto& t : threads) t.join();
      if (first_error) std::rethrow_exception(first_error);
    }

    report_.tasks += count;
    report_.batches += 1;
    for (double s : task_seconds) report_.task_seconds += s;
    report_.wall_seconds += std::chrono::duration<double>(Clock::now() - batch_start).count();
  }

  // As for_each_index, but collect fn's results in index order. T must be
  // default-constructible; slots are written exactly once, each by the worker
  // that ran the index, so no synchronization on the result vector is needed.
  template <typename T>
  std::vector<T> map(int count, const std::function<T(int)>& fn) {
    std::vector<T> results(static_cast<std::size_t>(std::max(count, 0)));
    for_each_index(count, [&](int i) { results[static_cast<std::size_t>(i)] = fn(i); });
    return results;
  }

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<int> tasks;
  };

  static int take_own(WorkerQueue& queue) {
    std::lock_guard lock{queue.mutex};
    if (queue.tasks.empty()) return -1;
    const int index = queue.tasks.front();
    queue.tasks.pop_front();
    return index;
  }

  static int steal(WorkerQueue& victim) {
    std::lock_guard lock{victim.mutex};
    if (victim.tasks.empty()) return -1;
    const int index = victim.tasks.back();
    victim.tasks.pop_back();
    return index;
  }

  int jobs_ = 1;
  RunnerReport report_;
};

}  // namespace wp2p::exp
