// Scenario scaffolding shared by tests, examples, and benches.
//
// A World is a simulator plus a network plus hosts (node + TCP stack). It
// exists so every experiment builds its testbed the same way the paper built
// Figs. 1 and 10: N hosts hanging off the Internet cloud, each behind a wired
// or wireless access link.
#pragma once

#include <deque>
#include <memory>
#include <string>

#include "net/cell.hpp"
#include "net/network.hpp"
#include "net/wired_link.hpp"
#include "net/wireless_channel.hpp"
#include "sim/simulator.hpp"
#include "tcp/stack.hpp"
#include "trace/recorder.hpp"

namespace wp2p::exp {

class World {
 public:
  struct Host {
    net::Node* node = nullptr;
    std::unique_ptr<tcp::Stack> stack;

    net::Endpoint endpoint(std::uint16_t port) const { return {node->address(), port}; }
    net::WirelessChannel* wireless() {
      return dynamic_cast<net::WirelessChannel*>(node->access());
    }
    net::WiredLink* wired() { return dynamic_cast<net::WiredLink*>(node->access()); }
    net::CellLink* cell_link() { return dynamic_cast<net::CellLink*>(node->access()); }
  };

  explicit World(std::uint64_t seed = 1,
                 sim::EventQueueKind queue_kind = sim::EventQueueKind::kCalendar)
      : sim{seed, queue_kind}, net{sim} {}

  Host& add_wired_host(std::string name, net::WiredParams params = {},
                       tcp::TcpParams tcp_params = {}) {
    net::Node& node = net.add_node(std::move(name));
    node.attach(std::make_unique<net::WiredLink>(sim, node, net, params));
    hosts.push_back(Host{&node, std::make_unique<tcp::Stack>(node, tcp_params)});
    return hosts.back();
  }

  Host& add_wireless_host(std::string name, net::WirelessParams params = {},
                          tcp::TcpParams tcp_params = {}) {
    net::Node& node = net.add_node(std::move(name));
    node.attach(std::make_unique<net::WirelessChannel>(sim, node, net, params));
    hosts.push_back(Host{&node, std::make_unique<tcp::Stack>(node, tcp_params)});
    return hosts.back();
  }

  // Create the multi-cell topology (once); cells are then added via
  // cells->add_cell(...) and stations via add_cellular_host.
  net::CellularTopology& enable_cells() {
    if (!cells) cells = std::make_unique<net::CellularTopology>(sim, net);
    return *cells;
  }

  // A mobile host whose access link is a CellLink into `cell_id`. Requires
  // enable_cells() and at least cell_id+1 cells added first.
  Host& add_cellular_host(std::string name, std::size_t cell_id = 0,
                          tcp::TcpParams tcp_params = {}) {
    net::Node& node = net.add_node(std::move(name));
    cells->attach(node, cell_id);
    hosts.push_back(Host{&node, std::make_unique<tcp::Stack>(node, tcp_params)});
    return hosts.back();
  }

  // Attach a World-owned trace recorder (created on first call) to the
  // simulator, so tests can turn on tracing without managing lifetime.
  // External recorders (e.g. a bench's shared session) can still be installed
  // directly via sim.set_tracer(); that takes precedence until replaced.
  trace::Recorder& enable_tracing(std::size_t ring_capacity = 4096) {
    if (!tracer) tracer = std::make_unique<trace::Recorder>(ring_capacity);
    sim.set_tracer(tracer.get());
    return *tracer;
  }

  sim::Simulator sim;
  net::Network net;
  // Multi-cell topology; null until enable_cells().
  std::unique_ptr<net::CellularTopology> cells;
  std::deque<Host> hosts;
  std::unique_ptr<trace::Recorder> tracer;  // null until enable_tracing()
};

}  // namespace wp2p::exp
