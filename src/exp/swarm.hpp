// Swarm scenario builder: a tracker plus N BitTorrent clients on hosts.
//
// This is the shared scaffolding for the paper's testbeds: Fig. 1 (six local
// peers) and Fig. 10 (wP2P client + default client behind wireless emulators
// plus fixed BitTorrent peers).
#pragma once

#include <cstdlib>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "bt/adversary.hpp"
#include "bt/client.hpp"
#include "bt/tracker.hpp"
#include "exp/clustering.hpp"
#include "exp/world.hpp"

namespace wp2p::exp {

class Swarm {
 public:
  struct Member {
    World::Host* host = nullptr;
    std::unique_ptr<bt::Client> client;

    bt::Client* operator->() const { return client.get(); }
  };

  Swarm(std::uint64_t seed, bt::Metainfo meta, bt::TrackerConfig tracker_config = {},
        sim::EventQueueKind queue_kind = sim::EventQueueKind::kCalendar)
      : world{seed, queue_kind}, meta{std::move(meta)}, tracker{world.sim, tracker_config} {}

  Member& add_wired(const std::string& name, bool is_seed, bt::ClientConfig config = {},
                    net::WiredParams link = {}, tcp::TcpParams tcp_params = {}) {
    World::Host& host = world.add_wired_host(name, link, tcp_params);
    return add_member(host, is_seed, config);
  }

  Member& add_wireless(const std::string& name, bool is_seed, bt::ClientConfig config = {},
                       net::WirelessParams link = {}, tcp::TcpParams tcp_params = {}) {
    World::Host& host = world.add_wireless_host(name, link, tcp_params);
    return add_member(host, is_seed, config);
  }

  // A wired member of bandwidth class `cls`: the access link takes the
  // class's shape (asymmetric up/down capacities) and the client enforces the
  // class's upload limit — the tier signature tit-for-tat clusters on.
  Member& add_classed(const std::string& name, bool is_seed, const BandwidthClass& cls,
                      bt::ClientConfig config = {}, tcp::TcpParams tcp_params = {}) {
    config.upload_limit = cls.upload_limit;
    return add_wired(name, is_seed, config, cls.link, tcp_params);
  }

  // A mobile member attached to cell `cell_id` of the world's multi-cell
  // topology (world.enable_cells() + add_cell calls must come first).
  Member& add_cellular(const std::string& name, bool is_seed, bt::ClientConfig config = {},
                       std::size_t cell_id = 0, tcp::TcpParams tcp_params = {}) {
    World::Host& host = world.add_cellular_host(name, cell_id, tcp_params);
    return add_member(host, is_seed, config);
  }

  // A scripted misbehaving peer (see bt/adversary.hpp) on its own wired host.
  // It announces to the same tracker and speaks the real wire protocol, so
  // honest members discover and connect to it like any other peer. Started by
  // start_all() after the honest members.
  struct AdversaryMember {
    World::Host* host = nullptr;
    std::unique_ptr<bt::AdversaryPeer> peer;

    bt::AdversaryPeer* operator->() const { return peer.get(); }
  };

  AdversaryMember& add_adversary(const std::string& name, bt::AdversaryKind kind,
                                 bt::AdversaryConfig config = {},
                                 net::WiredParams link = {},
                                 tcp::TcpParams tcp_params = {}) {
    config.kind = kind;
    World::Host& host = world.add_wired_host(name, link, tcp_params);
    adversaries.push_back(AdversaryMember{
        &host, std::make_unique<bt::AdversaryPeer>(*host.node, *host.stack, tracker,
                                                   meta, config)});
    return adversaries.back();
  }

  // Add a backup tracker at the given failover tier (BEP 12 style: clients
  // exhaust tier 0 before moving to tier 1, and so on). Registers the new
  // tracker with every existing member and every member added later; call
  // before start_all() — bt::Client rejects tier changes while running.
  bt::Tracker& add_backup_tracker(int tier = 1, bt::TrackerConfig config = {}) {
    backup_trackers.emplace_back(world.sim, config);
    backup_tiers.push_back(tier);
    for (auto& member : members) member.client->add_tracker(backup_trackers.back(), tier);
    return backup_trackers.back();
  }

  // Flip reachability of the tracker named by a FaultPlan target: "" or "tr0"
  // is the primary, "trK" the K-th backup (1-based over the add order), "*"
  // every tracker at once (total blackout). Unknown names are ignored.
  void set_tracker_reachable(const std::string& target, bool reachable) {
    if (target == "*") {
      tracker.set_reachable(reachable);
      for (auto& backup : backup_trackers) backup.set_reachable(reachable);
      return;
    }
    if (target.empty() || target == "tr0") {
      tracker.set_reachable(reachable);
      return;
    }
    if (target.size() > 2 && target.compare(0, 2, "tr") == 0) {
      const std::size_t idx = static_cast<std::size_t>(std::atoi(target.c_str() + 2));
      if (idx >= 1 && idx <= backup_trackers.size()) {
        backup_trackers[idx - 1].set_reachable(reachable);
      }
    }
  }

  void start_all() {
    for (auto& member : members) member.client->start();
    for (auto& adversary : adversaries) adversary.peer->start();
  }

  void run_for(double seconds) {
    world.sim.run_until(world.sim.now() + sim::seconds(seconds));
  }

  // Run until `member`'s download completes or the deadline passes; returns
  // completion status.
  bool run_until_complete(const Member& member, double deadline_seconds) {
    const sim::SimTime deadline = world.sim.now() + sim::seconds(deadline_seconds);
    while (world.sim.now() < deadline && !member.client->complete()) {
      world.sim.run_until(std::min(deadline, world.sim.now() + sim::seconds(1.0)));
    }
    return member.client->complete();
  }

  World world;
  bt::Metainfo meta;
  bt::Tracker tracker;
  std::deque<bt::Tracker> backup_trackers;  // deque: Tracker& stays valid as tiers grow
  std::vector<int> backup_tiers;            // tier of each backup, in add order
  std::deque<Member> members;  // deque: Member& stays valid as members grow
  std::deque<AdversaryMember> adversaries;

 private:
  Member& add_member(World::Host& host, bool is_seed, bt::ClientConfig config) {
    members.push_back(Member{
        &host, std::make_unique<bt::Client>(*host.node, *host.stack, tracker, meta,
                                            config, is_seed)});
    for (std::size_t i = 0; i < backup_trackers.size(); ++i) {
      members.back().client->add_tracker(backup_trackers[i], backup_tiers[i]);
    }
    return members.back();
  }
};

}  // namespace wp2p::exp
