// Swarm scenario builder: a tracker plus N BitTorrent clients on hosts.
//
// This is the shared scaffolding for the paper's testbeds: Fig. 1 (six local
// peers) and Fig. 10 (wP2P client + default client behind wireless emulators
// plus fixed BitTorrent peers).
#pragma once

#include <deque>
#include <memory>
#include <string>

#include "bt/client.hpp"
#include "bt/tracker.hpp"
#include "exp/world.hpp"

namespace wp2p::exp {

class Swarm {
 public:
  struct Member {
    World::Host* host = nullptr;
    std::unique_ptr<bt::Client> client;

    bt::Client* operator->() const { return client.get(); }
  };

  Swarm(std::uint64_t seed, bt::Metainfo meta, bt::TrackerConfig tracker_config = {})
      : world{seed}, meta{std::move(meta)}, tracker{world.sim, tracker_config} {}

  Member& add_wired(const std::string& name, bool is_seed, bt::ClientConfig config = {},
                    net::WiredParams link = {}, tcp::TcpParams tcp_params = {}) {
    World::Host& host = world.add_wired_host(name, link, tcp_params);
    return add_member(host, is_seed, config);
  }

  Member& add_wireless(const std::string& name, bool is_seed, bt::ClientConfig config = {},
                       net::WirelessParams link = {}, tcp::TcpParams tcp_params = {}) {
    World::Host& host = world.add_wireless_host(name, link, tcp_params);
    return add_member(host, is_seed, config);
  }

  void start_all() {
    for (auto& member : members) member.client->start();
  }

  void run_for(double seconds) {
    world.sim.run_until(world.sim.now() + sim::seconds(seconds));
  }

  // Run until `member`'s download completes or the deadline passes; returns
  // completion status.
  bool run_until_complete(const Member& member, double deadline_seconds) {
    const sim::SimTime deadline = world.sim.now() + sim::seconds(deadline_seconds);
    while (world.sim.now() < deadline && !member.client->complete()) {
      world.sim.run_until(std::min(deadline, world.sim.now() + sim::seconds(1.0)));
    }
    return member.client->complete();
  }

  World world;
  bt::Metainfo meta;
  bt::Tracker tracker;
  std::deque<Member> members;  // deque: Member& stays valid as members grow

 private:
  Member& add_member(World::Host& host, bool is_seed, bt::ClientConfig config) {
    members.push_back(Member{
        &host, std::make_unique<bt::Client>(*host.node, *host.stack, tracker, meta,
                                            config, is_seed)});
    return members.back();
  }
};

}  // namespace wp2p::exp
