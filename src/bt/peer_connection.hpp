// Per-peer session state at a BitTorrent client.
//
// A PeerConnection owns the TCP connection to one remote peer plus the wire
// protocol state for it: handshake progress, choke/interest flags in both
// directions, the remote bitfield, our outstanding block requests, their
// pending upload requests, and rate meters. Protocol *decisions* live in
// Client; this class holds state and message plumbing.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "bt/bitfield.hpp"
#include "bt/metainfo.hpp"
#include "bt/wire.hpp"
#include "metrics/meters.hpp"
#include "tcp/connection.hpp"

namespace wp2p::bt {

class PeerConnection {
 public:
  struct Outstanding {
    int piece = -1;
    int block = -1;
    sim::SimTime requested_at = 0;
  };
  struct PendingUpload {
    int piece = -1;
    std::int64_t offset = 0;
    std::int64_t length = 0;
  };

  PeerConnection(sim::Simulator& sim, std::shared_ptr<tcp::Connection> conn,
                 bool initiator, int piece_count, sim::SimTime rate_window)
      : peer_bitfield{piece_count},
        last_received_at{sim.now()},
        last_sent_at{sim.now()},
        down_meter{rate_window},
        up_meter{rate_window},
        sim_{&sim},
        conn_{std::move(conn)},
        initiator_{initiator} {}

  ~PeerConnection() { detach(); }

  PeerConnection(const PeerConnection&) = delete;
  PeerConnection& operator=(const PeerConnection&) = delete;

  tcp::Connection& tcp() { return *conn_; }
  const std::shared_ptr<tcp::Connection>& tcp_ptr() const { return conn_; }
  bool initiator() const { return initiator_; }
  net::Endpoint remote_endpoint() const { return conn_->remote(); }

  bool app_established() const { return handshake_sent && handshake_received; }

  void send(std::shared_ptr<const WireMessage> msg) {
    const std::int64_t size = msg->wire_size();
    last_sent_at = sim_->now();
    conn_->send_message(std::move(msg), size);
  }

  // Stop delivering TCP events to a (possibly dead) owner.
  void detach() {
    if (conn_) {
      conn_->on_connected = nullptr;
      conn_->on_message = nullptr;
      conn_->on_closed = nullptr;
    }
  }

  // --- Wire protocol state ----------------------------------------------------
  // Admission order at the owning Client (matches peers_ insertion order).
  // The incremental interested/unchoked sets sort snapshots by this to
  // reproduce exact peers_-iteration order — and therefore exact message
  // order and trace hashes — without rescanning peers_.
  std::uint64_t seq = 0;
  // True while this peer is counted in the Client's pending-upload tally.
  bool upload_pending_counted = false;
  bool handshake_sent = false;
  bool handshake_received = false;
  PeerId remote_id = 0;
  Bitfield peer_bitfield;
  bool bitfield_counted = false;  // availability bookkeeping guard

  bool am_choking = true;      // we choke them
  bool am_interested = false;  // we want their pieces
  bool peer_choking = true;    // they choke us
  bool peer_interested = false;

  std::vector<Outstanding> outstanding;      // our requests to them
  std::deque<PendingUpload> upload_queue;    // their requests awaiting service

  // Small control frames (choke/unchoke/have/bitfield/interest) that arrived
  // while the app was suspended. The OS keeps the socket alive and buffers
  // what fits, so state transitions the remote sent during the nap are not
  // lost — Client::resume() drains this before anything else runs. Bounded
  // (the socket-buffer analogy); bulk frames are never deferred.
  std::deque<WireMessage> frozen_inbox;

  std::int64_t downloaded_payload = 0;  // piece bytes received from this peer
  std::int64_t uploaded_payload = 0;    // piece bytes sent to this peer
  sim::SimTime last_unchoked_at = -1;   // for the seed's rotation policy
  sim::SimTime last_received_at = 0;    // any message (idle-timeout tracking)
  sim::SimTime last_sent_at = 0;        // any message (keep-alive scheduling)
  sim::SimTime first_request_at = -1;   // oldest unanswered request (snub)
  bool snubbed = false;
  metrics::ThroughputMeter down_meter;
  metrics::ThroughputMeter up_meter;

  // PEX delta baseline: the endpoints (and their identities) this peer has
  // already been told about. Client::send_pex_round diffs the live set
  // against this to build added/dropped lists.
  std::map<net::Endpoint, PeerId> pex_sent;

  // --- Enforcement evidence (Client::enforce_* reads and scores these) --------
  int flood_count = 0;           // excess choked requests + over-backlog drops
  int choked_requests_since_flip = 0;  // in-flight allowance after each choke
  int malformed_count = 0;       // struct-malformed frames from this peer
  int liar_count = 0;            // zero-payload or repeat-piece timeout evidence
  int stall_ticks = 0;           // consecutive snubbed maintenance ticks
  int stall_count = 0;           // stall audits scored (cumulative)
  int churn_flips = 0;           // unchokes beyond the per-window cap (cumulative)
  int churn_window_flips = 0;    // unchokes inside the current churn window
  sim::SimTime churn_window_start = -1;
  int pex_spam_count = 0;        // structurally invalid gossiped endpoints
  std::map<net::Endpoint, PeerId> pex_learned;  // unique endpoints gossiped by them
  // Consecutive maintenance passes each piece timed out with no block of it
  // delivered in between (handle_piece erases the entry on delivery).
  std::map<int, int> piece_timeouts;
  // Enforcement strikes already charged per category, so each threshold
  // crossing costs exactly one strike (count / threshold beats the charged
  // tally by one → strike).
  int flood_strikes = 0;
  int malformed_strikes = 0;
  int liar_strikes = 0;
  int stall_strikes = 0;
  int churn_strikes = 0;
  int pex_spam_strikes = 0;

 private:
  sim::Simulator* sim_;
  std::shared_ptr<tcp::Connection> conn_;
  bool initiator_;
};

}  // namespace wp2p::bt
