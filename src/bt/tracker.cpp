#include "bt/tracker.hpp"

#include <algorithm>

namespace wp2p::bt {

void Tracker::announce(const AnnounceRequest& request, AnnounceCallback callback) {
  if (!reachable_) {
    // The announce is lost server-side, but the announcer still learns of the
    // failure: its request times out after failure_latency.
    ++stats_.dropped_announces;
    if (callback) {
      sim_.after(config_.failure_latency,
                 [cb = std::move(callback)] { cb(AnnounceResult{false, {}}); });
    }
    return;
  }
  ++stats_.announces;
  Swarm& swarm = swarms_[request.info_hash];
  expire(swarm);

  if (request.event == AnnounceEvent::kStopped) {
    swarm.entries.erase(request.peer_id);
    if (callback) {
      sim_.after(config_.rpc_latency,
                 [cb = std::move(callback)] { cb(AnnounceResult{true, {}}); });
    }
    return;
  }

  Entry& entry = swarm.entries[request.peer_id];
  entry.info = TrackerPeerInfo{request.endpoint, request.peer_id, request.seed};
  if (request.event == AnnounceEvent::kCompleted) entry.info.seed = true;
  entry.refreshed = sim_.now();

  if (callback) {
    auto peers = select_peers(swarm, request.peer_id);
    sim_.after(config_.rpc_latency,
               [cb = std::move(callback), peers = std::move(peers)]() mutable {
                 cb(AnnounceResult{true, std::move(peers)});
               });
  }
}

void Tracker::expire(Swarm& swarm) {
  const sim::SimTime now = sim_.now();
  // Small swarms sweep eagerly on every announce — the legacy behavior, kept
  // exact so pinned traces don't move. Large swarms amortize: a full O(N)
  // sweep per announce makes one announce interval cost O(N^2) swarm-wide,
  // so they sweep at most every ttl/8 and readers skip stale entries lazily
  // in the meantime (select_peers and the inspection helpers filter by TTL).
  if (swarm.entries.size() >= kAmortizedSweepThreshold && swarm.last_sweep >= 0 &&
      now - swarm.last_sweep < config_.peer_ttl / 8) {
    return;
  }
  swarm.last_sweep = now;
  const sim::SimTime cutoff = now - config_.peer_ttl;
  for (auto it = swarm.entries.begin(); it != swarm.entries.end();) {
    if (it->second.refreshed < cutoff) {
      it = swarm.entries.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<TrackerPeerInfo> Tracker::select_peers(const Swarm& swarm, PeerId requester) {
  // refreshed >= cutoff is a no-op right after an eager sweep (the sweep just
  // erased everything below it), so small swarms see the exact legacy list.
  const sim::SimTime cutoff = sim_.now() - config_.peer_ttl;
  std::vector<TrackerPeerInfo> all;
  all.reserve(swarm.entries.size());
  for (const auto& [id, entry] : swarm.entries) {
    if (id != requester && entry.refreshed >= cutoff) all.push_back(entry.info);
  }
  const auto k = static_cast<std::size_t>(config_.max_peers_returned);
  if (all.size() > k) {
    // Partial Fisher-Yates: k draws pick a uniform k-sample, versus the full
    // shuffle's N-1 draws. At 50k peers an announce now costs O(N) copy +
    // O(k) draws instead of O(N) rng work.
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t j = i + static_cast<std::size_t>(rng_.below(all.size() - i));
      std::swap(all[i], all[j]);
    }
    all.resize(k);
  }
  return all;
}

std::size_t Tracker::swarm_size(InfoHash hash) const {
  auto it = swarms_.find(hash);
  if (it == swarms_.end()) return 0;
  const sim::SimTime cutoff = sim_.now() - config_.peer_ttl;
  return static_cast<std::size_t>(
      std::count_if(it->second.entries.begin(), it->second.entries.end(),
                    [&](const auto& kv) { return kv.second.refreshed >= cutoff; }));
}

std::size_t Tracker::seed_count(InfoHash hash) const {
  auto it = swarms_.find(hash);
  if (it == swarms_.end()) return 0;
  const sim::SimTime cutoff = sim_.now() - config_.peer_ttl;
  std::size_t n = 0;
  for (const auto& [id, entry] : it->second.entries) {
    n += (entry.info.seed && entry.refreshed >= cutoff) ? 1 : 0;
  }
  return n;
}

}  // namespace wp2p::bt
