#include "bt/tracker.hpp"

namespace wp2p::bt {

void Tracker::announce(const AnnounceRequest& request, AnnounceCallback callback) {
  if (!reachable_) {
    // The announce is lost server-side, but the announcer still learns of the
    // failure: its request times out after failure_latency.
    ++stats_.dropped_announces;
    if (callback) {
      sim_.after(config_.failure_latency,
                 [cb = std::move(callback)] { cb(AnnounceResult{false, {}}); });
    }
    return;
  }
  ++stats_.announces;
  Swarm& swarm = swarms_[request.info_hash];
  expire(swarm);

  if (request.event == AnnounceEvent::kStopped) {
    swarm.erase(request.peer_id);
    if (callback) {
      sim_.after(config_.rpc_latency,
                 [cb = std::move(callback)] { cb(AnnounceResult{true, {}}); });
    }
    return;
  }

  Entry& entry = swarm[request.peer_id];
  entry.info = TrackerPeerInfo{request.endpoint, request.peer_id, request.seed};
  if (request.event == AnnounceEvent::kCompleted) entry.info.seed = true;
  entry.refreshed = sim_.now();

  if (callback) {
    auto peers = select_peers(swarm, request.peer_id);
    sim_.after(config_.rpc_latency,
               [cb = std::move(callback), peers = std::move(peers)]() mutable {
                 cb(AnnounceResult{true, std::move(peers)});
               });
  }
}

void Tracker::expire(Swarm& swarm) {
  const sim::SimTime cutoff = sim_.now() - config_.peer_ttl;
  for (auto it = swarm.begin(); it != swarm.end();) {
    if (it->second.refreshed < cutoff) {
      it = swarm.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<TrackerPeerInfo> Tracker::select_peers(const Swarm& swarm, PeerId requester) {
  std::vector<TrackerPeerInfo> all;
  all.reserve(swarm.size());
  for (const auto& [id, entry] : swarm) {
    if (id != requester) all.push_back(entry.info);
  }
  if (static_cast<int>(all.size()) > config_.max_peers_returned) {
    rng_.shuffle(all);
    all.resize(static_cast<std::size_t>(config_.max_peers_returned));
  }
  return all;
}

std::size_t Tracker::swarm_size(InfoHash hash) const {
  auto it = swarms_.find(hash);
  return it == swarms_.end() ? 0 : it->second.size();
}

std::size_t Tracker::seed_count(InfoHash hash) const {
  auto it = swarms_.find(hash);
  if (it == swarms_.end()) return 0;
  std::size_t n = 0;
  for (const auto& [id, entry] : it->second) n += entry.info.seed ? 1 : 0;
  return n;
}

}  // namespace wp2p::bt
