#include "bt/adversary.hpp"

#include <algorithm>
#include <string>

#include "bt/piece_store.hpp"

namespace wp2p::bt {

const char* to_string(AdversaryKind kind) {
  switch (kind) {
    case AdversaryKind::kSlowloris: return "slowloris";
    case AdversaryKind::kLiar: return "liar";
    case AdversaryKind::kFlooder: return "flooder";
    case AdversaryKind::kGarbage: return "garbage";
    case AdversaryKind::kChurner: return "churner";
    case AdversaryKind::kWithholder: return "withholder";
    case AdversaryKind::kPexSpammer: return "pexspam";
  }
  return "unknown";
}

std::optional<AdversaryKind> adversary_kind_from(std::string_view name) {
  for (AdversaryKind kind : kAllAdversaryKinds) {
    if (name == to_string(kind)) return kind;
  }
  return std::nullopt;
}

AdversaryPeer::AdversaryPeer(net::Node& node, tcp::Stack& stack, Tracker& tracker,
                             const Metainfo& meta, AdversaryConfig config)
    : node_{node},
      stack_{stack},
      tracker_{tracker},
      meta_{meta},
      config_{config},
      sim_{node.sim()},
      rng_{node.sim().rng().fork()},
      full_{meta.piece_count()},
      empty_{meta.piece_count()},
      announce_task_{sim_, config.announce_interval,
                     [this] { do_announce(AnnounceEvent::kInterval); }},
      tick_task_{sim_, config.tick_interval, [this] { tick(); }} {
  peer_id_ = rng_.next_u64() | 1;
  full_.set_all();
  alive_ = std::make_shared<bool>(true);
}

AdversaryPeer::~AdversaryPeer() {
  *alive_ = false;
  for (auto& s : sessions_) {
    s->conn->on_connected = nullptr;
    s->conn->on_message = nullptr;
    s->conn->on_closed = nullptr;
  }
}

bool AdversaryPeer::advertises_full() const {
  switch (config_.kind) {
    case AdversaryKind::kSlowloris:
    case AdversaryKind::kLiar:
    case AdversaryKind::kChurner:
    case AdversaryKind::kWithholder:
    case AdversaryKind::kGarbage:
      return true;
    case AdversaryKind::kFlooder:
    case AdversaryKind::kPexSpammer:
      return false;
  }
  return false;
}

// A full-bitfield adversary announces as a seed so leeches seek it out; the
// leech kinds announce incomplete so seeds dial them.
bool AdversaryPeer::announces_as_seed() const { return advertises_full(); }

const Bitfield& AdversaryPeer::advertised_bitfield() const {
  return advertises_full() ? full_ : empty_;
}

bool AdversaryPeer::withheld(int piece) const {
  if (config_.kind != AdversaryKind::kWithholder) return false;
  const int cut = static_cast<int>(config_.withhold_fraction *
                                   static_cast<double>(meta_.piece_count()));
  return piece < cut;
}

void AdversaryPeer::start() {
  if (running_) return;
  running_ = true;
  stack_.listen(config_.listen_port, [this, alive = alive_](auto conn) {
    if (*alive && running_) adopt(std::move(conn), /*initiator=*/false);
  });
  announce_task_.start();
  tick_task_.start();
  do_announce(AnnounceEvent::kStarted);
}

void AdversaryPeer::stop() {
  if (!running_) return;
  running_ = false;
  announce_task_.stop();
  tick_task_.stop();
  stack_.stop_listening(config_.listen_port);
  auto doomed = std::move(sessions_);
  sessions_.clear();
  for (auto& s : doomed) {
    s->conn->on_connected = nullptr;
    s->conn->on_message = nullptr;
    s->conn->on_closed = nullptr;
    s->conn->abort();
    ++stats_.sessions_closed;
  }
}

void AdversaryPeer::do_announce(AnnounceEvent event) {
  if (!running_ || !node_.connected()) return;
  AnnounceRequest req{meta_.info_hash,
                      {node_.address(), config_.listen_port},
                      peer_id_,
                      announces_as_seed(),
                      event};
  tracker_.announce(req, [this, alive = alive_](AnnounceResult result) {
    if (!*alive || !running_ || !result.ok) return;
    const net::Endpoint self{node_.address(), config_.listen_port};
    int dialed = 0;
    for (const TrackerPeerInfo& info : result.peers) {
      if (dialed >= config_.max_dials) break;
      if (info.endpoint == self || info.peer_id == peer_id_) continue;
      if (announces_as_seed() && info.seed) continue;  // seeds won't trade with us
      bool connected = false;
      for (const auto& s : sessions_) {
        if (s->conn->remote() == info.endpoint) {
          connected = true;
          break;
        }
      }
      if (connected) continue;
      dial(info.endpoint);
      ++dialed;
    }
  });
}

void AdversaryPeer::dial(net::Endpoint remote) {
  if (!node_.connected()) return;
  adopt(stack_.connect(remote), /*initiator=*/true);
}

void AdversaryPeer::adopt(std::shared_ptr<tcp::Connection> conn, bool initiator) {
  ++stats_.sessions_opened;
  sessions_.push_back(std::make_unique<Session>());
  Session* s = sessions_.back().get();
  s->conn = std::move(conn);
  s->initiator = initiator;
  if (initiator) {
    s->conn->on_connected = [this, s] { send_handshake(*s); };
  }
  s->conn->on_message = [this, s](const tcp::Connection::MessageHandle& handle,
                                  std::int64_t) {
    auto msg = std::static_pointer_cast<const WireMessage>(handle);
    if (msg) on_message(*s, *msg);
  };
  s->conn->on_closed = [this, s](tcp::CloseReason) { close_session(*s); };
}

void AdversaryPeer::close_session(Session& s) {
  ++stats_.sessions_closed;
  s.conn->on_connected = nullptr;
  s.conn->on_message = nullptr;
  s.conn->on_closed = nullptr;
  for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
    if (it->get() == &s) {
      sessions_.erase(it);
      break;
    }
  }
}

void AdversaryPeer::send(Session& s, std::shared_ptr<const WireMessage> msg) {
  const std::int64_t size = msg->wire_size();
  s.conn->send_message(std::move(msg), size);
}

void AdversaryPeer::send_handshake(Session& s) {
  send(s, WireMessage::handshake(meta_.info_hash, peer_id_, config_.listen_port));
  send(s, WireMessage::bitfield_msg(advertised_bitfield()));
  s.handshake_sent = true;
  // The leech kinds declare interest up front: a flooder needs unchokes to
  // probe the backlog cap, and interest keeps the victim from reaping us.
  if (!advertises_full()) {
    send(s, WireMessage::simple(MsgType::kInterested));
    s.am_interested = true;
  }
}

void AdversaryPeer::on_message(Session& s, const WireMessage& msg) {
  if (msg.type == MsgType::kHandshake) {
    if (msg.info_hash != meta_.info_hash) {
      s.conn->abort();
      return;
    }
    s.handshake_received = true;
    if (!s.handshake_sent) send_handshake(s);
    return;
  }
  if (!s.established()) return;
  switch (msg.type) {
    case MsgType::kInterested:
      s.peer_interested = true;
      // Every misbehaving server unchokes instantly: maximum victims in the
      // trap. The churner's flips start from this unchoked state too.
      if (advertises_full() && s.am_choking) {
        s.am_choking = false;
        send(s, WireMessage::simple(MsgType::kUnchoke));
      }
      break;
    case MsgType::kNotInterested: s.peer_interested = false; break;
    case MsgType::kChoke: s.peer_choking = true; break;
    case MsgType::kUnchoke:
      s.peer_choking = false;
      if (config_.kind == AdversaryKind::kFlooder) flood_session(s);
      break;
    case MsgType::kRequest: handle_request(s, msg); break;
    case MsgType::kPiece:
      stats_.downloaded_payload += msg.length;
      break;
    case MsgType::kBitfield:
    case MsgType::kHave:
    case MsgType::kCancel:  // nothing is queued; slowloris jobs stay scheduled
    case MsgType::kKeepAlive:
    case MsgType::kPex:
    case MsgType::kHandshake: break;
  }
}

void AdversaryPeer::handle_request(Session& s, const WireMessage& msg) {
  ++stats_.requests_received;
  if (msg.piece < 0 || msg.piece >= meta_.piece_count()) return;
  switch (config_.kind) {
    case AdversaryKind::kLiar:
      ++stats_.requests_withheld;  // advertised, never served
      return;
    case AdversaryKind::kWithholder:
      if (withheld(msg.piece)) {
        ++stats_.requests_withheld;
        return;
      }
      break;
    case AdversaryKind::kSlowloris: {
      // Serve, but one block per slow_delay: the backlog timestamp pushes
      // every further request past the victim's patience.
      Session* sp = &s;
      sp->serve_backlog_until =
          std::max(sp->serve_backlog_until, sim_.now()) + config_.slow_delay;
      const sim::SimTime at = sp->serve_backlog_until - sim_.now();
      const int piece = msg.piece;
      const std::int64_t offset = msg.offset, length = msg.length;
      sim_.after(at, [this, alive = alive_, sp, piece, offset, length] {
        if (!*alive || !running_) return;
        for (const auto& live : sessions_) {
          if (live.get() != sp) continue;
          if (!sp->established() || sp->am_choking) return;
          send(*sp, WireMessage::piece_msg(piece, offset, length));
          stats_.uploaded_payload += length;
          return;
        }
      });
      ++stats_.requests_withheld;  // not served now (maybe much later)
      return;
    }
    case AdversaryKind::kFlooder:
    case AdversaryKind::kPexSpammer:
      return;  // leech kinds advertised nothing; a request here is a bug
    case AdversaryKind::kGarbage:
    case AdversaryKind::kChurner:
      break;  // serve honestly; the attack runs on the tick
  }
  if (s.am_choking) return;
  send(s, WireMessage::piece_msg(msg.piece, msg.offset, msg.length));
  stats_.uploaded_payload += msg.length;
}

void AdversaryPeer::tick() {
  if (!running_) return;
  ++ticks_;
  // Snapshot: flood/garbage sends can abort sessions mid-iteration.
  std::vector<Session*> live;
  live.reserve(sessions_.size());
  for (const auto& s : sessions_) {
    if (s->established()) live.push_back(s.get());
  }
  for (Session* s : live) {
    // Re-validate: an earlier send this tick may have closed it.
    if (std::none_of(sessions_.begin(), sessions_.end(),
                     [s](const auto& p) { return p.get() == s; })) {
      continue;
    }
    switch (config_.kind) {
      case AdversaryKind::kFlooder:
        flood_session(*s);
        break;
      case AdversaryKind::kGarbage:
        send_garbage(*s);
        break;
      case AdversaryKind::kChurner:
        if (s->peer_interested) {
          s->am_choking = !s->am_choking;
          send(*s, WireMessage::simple(s->am_choking ? MsgType::kChoke
                                                     : MsgType::kUnchoke));
          ++stats_.churn_flips;
        }
        break;
      case AdversaryKind::kPexSpammer:
        if (config_.pex_spam_every_ticks > 0 &&
            ticks_ % config_.pex_spam_every_ticks == 0) {
          send_pex_spam(*s);
        }
        break;
      case AdversaryKind::kSlowloris:
      case AdversaryKind::kLiar:
      case AdversaryKind::kWithholder:
        break;  // passive kinds: the damage is what they DON'T send
    }
  }
}

void AdversaryPeer::flood_session(Session& s) {
  // Valid-looking requests (they must pass the malformation gate) far beyond
  // any honest pipeline, sent choked or not.
  const int pieces = meta_.piece_count();
  if (pieces == 0) return;
  for (int i = 0; i < config_.flood_burst; ++i) {
    const int piece = static_cast<int>(rng_.below(static_cast<std::uint64_t>(pieces)));
    const std::int64_t length = std::min<std::int64_t>(kBlockSize, meta_.piece_size(piece));
    send(s, WireMessage::request(piece, 0, length));
    ++stats_.requests_sent;
  }
}

void AdversaryPeer::send_garbage(Session& s) {
  // Rotate through the malformation variants bt::malformed_reason rejects.
  // Payload-free frames only: the point is hostile *structure*, not bulk.
  for (int i = 0; i < config_.garbage_per_tick; ++i) {
    const int pieces = meta_.piece_count();
    std::shared_ptr<const WireMessage> msg;
    switch (s.garbage_cursor++ % 5) {
      case 0: msg = WireMessage::request(-1, 0, kBlockSize); break;
      case 1: msg = WireMessage::request(0, 0, kMaxRequestLength + 1); break;
      case 2: msg = WireMessage::have(pieces + 7); break;
      case 3:
        msg = WireMessage::cancel(pieces > 0 ? pieces - 1 : 0,
                                  meta_.piece_size(std::max(0, pieces - 1)), kBlockSize);
        break;
      default: msg = WireMessage::bitfield_msg(Bitfield{pieces + 8}); break;
    }
    send(s, std::move(msg));
    ++stats_.garbage_sent;
  }
}

void AdversaryPeer::send_pex_spam(Session& s) {
  // Structurally bogus gossip: zero endpoints and anonymous identities, the
  // shapes no honest client ever emits.
  std::vector<PexPeer> added;
  added.reserve(static_cast<std::size_t>(config_.pex_spam_entries));
  for (int i = 0; i < config_.pex_spam_entries; ++i) {
    PexPeer entry;
    if (i % 2 == 0) {
      entry.endpoint = net::Endpoint{};  // invalid address/port
      entry.peer_id = rng_.next_u64() | 1;
    } else {
      entry.endpoint = net::Endpoint{node_.address(), 0};  // port 0: invalid
      entry.peer_id = 0;                                   // anonymous
    }
    added.push_back(entry);
  }
  stats_.pex_bogus_sent += static_cast<std::uint64_t>(added.size());
  send(s, WireMessage::pex(std::move(added), {}));
}

}  // namespace wp2p::bt
