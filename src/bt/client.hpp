// The BitTorrent client (the paper's "default CTorrent + rarest-first").
//
// One Client participates in one swarm from one node. It implements the full
// protocol surface the paper's experiments exercise: tracker announces, peer
// dialing and accepting, handshake/bitfield exchange, tit-for-tat choking
// with an optimistic unchoke, per-peer-id contribution credit, rarest-first
// (or pluggable) piece selection, a block request pipeline with timeouts,
// upload rate limiting, seeding, and task re-initiation after hand-offs.
//
// The wP2P enhancements (src/core/) compose on top: they replace the
// selector, flip the retain_peer_id / role_reversal switches, adjust the
// upload limit at runtime (LIHD), and install a packet filter below the node.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bt/bootstrap_cache.hpp"
#include "bt/client_config.hpp"
#include "bt/credit_ledger.hpp"
#include "bt/metainfo.hpp"
#include "bt/peer_connection.hpp"
#include "bt/piece_store.hpp"
#include "bt/resume_store.hpp"
#include "bt/selector.hpp"
#include "bt/tracker.hpp"
#include "bt/tracker_list.hpp"
#include "net/node.hpp"
#include "tcp/stack.hpp"
#include "util/token_bucket.hpp"

namespace wp2p::bt {

struct ClientStats {
  std::int64_t payload_downloaded = 0;  // piece bytes received
  std::int64_t payload_uploaded = 0;    // piece bytes sent
  std::uint64_t pieces_completed = 0;
  std::uint64_t task_reinitiations = 0;
  std::uint64_t peers_connected_total = 0;
  std::uint64_t blocks_requeued = 0;  // request timeouts

  // Recovery layer (announce retry / integrity / reconnect).
  std::uint64_t announce_failures = 0;   // announces that came back ok=false
  std::uint64_t announce_retries = 0;    // backoff retries actually dialed
  std::uint64_t corrupt_pieces = 0;      // completed pieces that failed verify
  std::uint64_t peer_strikes = 0;        // corruption strikes handed out
  std::uint64_t peers_banned = 0;
  std::uint64_t reconnect_attempts = 0;  // backoff re-dials after TCP timeouts

  // Discovery resilience (multi-tracker failover / PEX / bootstrap cache).
  std::uint64_t tracker_failovers = 0;   // announce cursor advanced one slot
  std::uint64_t tracker_failbacks = 0;   // probe returned announces to primary
  std::uint64_t pex_sent = 0;            // PEX delta messages sent
  std::uint64_t pex_received = 0;        // PEX messages accepted
  std::uint64_t pex_discarded = 0;       // PEX from banned senders dropped whole
  std::uint64_t pex_peers_learned = 0;   // fresh endpoints learned via gossip
  std::uint64_t pex_banned_skipped = 0;  // gossiped entries with a banned id
  std::uint64_t bootstrap_dials = 0;     // cache re-dials while trackers dark

  // Protocol enforcement (adversarial-peer defenses).
  std::uint64_t malformed_msgs = 0;      // struct-malformed frames rejected
  std::uint64_t flood_dropped = 0;       // requests dropped (excess choked / backlog)
  std::uint64_t liar_detections = 0;     // zero-payload / repeat-piece timeouts
  std::uint64_t stall_audits = 0;        // persistent-stall audit scores
  std::uint64_t churn_detections = 0;    // unchoke flips beyond the window cap
  std::uint64_t pex_spam_entries = 0;    // structurally invalid gossip entries
  std::uint64_t pex_budget_dropped = 0;  // over-budget gossiped endpoints filtered
  std::uint64_t enforce_strikes = 0;     // strikes charged by the enforcement layer
  std::uint64_t grace_grants = 0;        // mobility grace windows granted

  // Session persistence (suspend/resume lifecycle + ResumeStore).
  std::uint64_t suspends = 0;            // lifecycle entered suspend
  std::uint64_t resumes = 0;             // lifecycle resumed from suspend
  std::uint64_t cold_restarts = 0;       // restore attempted, no usable snapshot
  std::uint64_t snapshots_written = 0;   // storage acks (not a durability promise)
  std::uint64_t resume_restored_pieces = 0;  // pieces accepted from a snapshot
  std::uint64_t resume_dropped_pieces = 0;   // trust-but-verify rot drops
};

class Client {
 public:
  Client(net::Node& node, tcp::Stack& stack, Tracker& tracker, const Metainfo& meta,
         ClientConfig config, bool start_as_seed = false);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // --- Lifecycle -------------------------------------------------------------
  // Beyond start/stop, a mobile host's app is routinely suspended (backgrounded,
  // battery-killed) and later resumed. While suspended the client answers
  // NOTHING — tasks halted, listener down, incoming wire messages dropped — so
  // remote peers see exactly the silence their snub/idle/reconnect machinery
  // is built for. suspend() journals a final snapshot through the attached
  // ResumeStore; a fresh incarnation's start() restores from the newest
  // checksum-valid one (trust-but-verify) instead of cold-starting.
  enum class Lifecycle : std::uint8_t {
    kStopped,
    kRunning,
    kSuspending,  // halted, final snapshot write in flight
    kSuspended,
    kResuming,
  };
  void start();
  void stop();
  void suspend();
  void resume();
  bool running() const { return running_; }
  Lifecycle lifecycle() const { return lifecycle_; }

  // Attach the persistence layer. Call before start(); the client then
  // checkpoints periodically (resume_checkpoint_interval), writes a final
  // snapshot on suspend, and restores on its first start(). Non-owning.
  void attach_resume(ResumeStore& store) { resume_store_ = &store; }
  ResumeStore* resume_store() { return resume_store_; }
  // Visible for tests: the snapshot the client would journal right now.
  ResumeSnapshot make_snapshot() const;

  // Pre-populate the store with a random `fraction` of pieces (a peer that
  // joined the swarm earlier). Call before start().
  void preload(double fraction);
  // Pre-populate specific pieces (e.g. complementary halves). Call before
  // start().
  void preload_pieces(const std::vector<int>& pieces);

  // Register a backup tracker (BEP 12 tier semantics: the primary passed to
  // the constructor is tier 0; backups join at `tier`, ordered within it by
  // registration). Call before start().
  void add_tracker(Tracker& tracker, int tier = 1);

  // --- Introspection ----------------------------------------------------------
  const PieceStore& store() const { return store_; }
  const Metainfo& meta() const { return meta_; }
  const ClientStats& stats() const { return stats_; }
  const ClientConfig& config() const { return config_; }
  PeerId peer_id() const { return peer_id_; }
  bool complete() const { return store_.complete(); }
  std::size_t peer_count() const { return peers_.size(); }
  net::Node& node() { return node_; }
  sim::SimTime last_disconnect() const { return last_disconnect_; }

  util::Rate download_rate();  // over the config rate window
  util::Rate upload_rate();

  // --- Extension points (used by wP2P, src/core/) -----------------------------
  void set_selector(std::unique_ptr<PieceSelector> selector);
  PieceSelector& selector() { return *selector_; }
  void set_upload_limit(util::Rate limit);
  util::Rate upload_limit() const;

  std::function<void()> on_complete;
  std::function<void(int piece)> on_piece_complete;
  // Fired after a hand-off has been handled (post role-reversal/reinit).
  std::function<void()> on_reinitiated;

  // Per-pair accounting hooks (metrics::TransferMatrix). These fire at the
  // moment bytes move or the choke state flips, keyed by the remote IDENTITY
  // (peer-id) rather than the connection — so bytes sent on a connection that
  // later loses the duplicate-handshake tie-break, or across a reconnect,
  // keep accruing to the same identity row instead of vanishing with the
  // PeerConnection's counters. on_unchoke_change also fires a closing edge
  // (unchoked=false) when a still-unchoked connection drops, so unchoke
  // intervals never leak past the connection's death.
  std::function<void(PeerId peer, std::int64_t bytes)> on_payload_sent;
  std::function<void(PeerId peer, std::int64_t bytes)> on_payload_received;
  std::function<void(PeerId peer, bool unchoked)> on_unchoke_change;

  // Rebuild the task after a silently-lost network (used by the wP2P
  // live-peer mobility detector, which cannot observe the address change
  // directly): re-announce and, under role reversal, reconnect to every
  // remembered listen endpoint.
  void recover_from_disconnection();

  // Visible for tests: current block-request state of a piece in progress.
  bool piece_active(int piece) const { return active_.count(piece) > 0; }
  // Total block requests currently outstanding across all peers.
  std::size_t outstanding_requests() const {
    std::size_t n = 0;
    for (const auto& peer : peers_) n += peer->outstanding.size();
    return n;
  }
  // Visible for tests: discovery-resilience internals.
  std::size_t tracker_count() const { return trackers_.size(); }
  std::size_t tracker_cursor() const { return trackers_.cursor(); }
  const BootstrapCache& bootstrap_cache() const { return bootstrap_; }
  PeerConnection* peer_by_id(PeerId id) {
    for (const auto& peer : peers_) {
      if (peer->remote_id == id) return peer.get();
    }
    return nullptr;
  }
  // Visible for tests: recompute the incremental interested/unchoked sets and
  // the pending-upload tally from a full peers_ scan and compare against the
  // maintained values. The choker property test asserts this after randomized
  // rate churn, choke/unchoke storms, and peer bans.
  bool incremental_sets_consistent() const {
    std::size_t interested = 0, unchoked = 0, pending = 0;
    for (const auto& peer : peers_) {
      const bool in_interested =
          std::find(interested_peers_.begin(), interested_peers_.end(), peer.get()) !=
          interested_peers_.end();
      const bool in_unchoked =
          std::find(unchoked_peers_.begin(), unchoked_peers_.end(), peer.get()) !=
          unchoked_peers_.end();
      if (peer->peer_interested != in_interested) return false;
      if (!peer->am_choking != in_unchoked) return false;
      if (!peer->upload_queue.empty() != peer->upload_pending_counted) return false;
      if (peer->peer_interested) ++interested;
      if (!peer->am_choking) ++unchoked;
      if (!peer->upload_queue.empty()) ++pending;
    }
    return interested == interested_peers_.size() && unchoked == unchoked_peers_.size() &&
           pending == pending_upload_peers_;
  }
  // Visible for tests: feed a wire message through the dispatch path as if
  // `peer` had delivered it (deterministic stand-in for in-flight races the
  // async stack cannot stage, e.g. gossip arriving from a just-banned peer).
  void inject_peer_message(PeerConnection& peer, const WireMessage& msg) {
    on_peer_message(peer, msg);
  }
  // Visible for tests: whether `id` currently holds a mobility grace window
  // (its stall/liar evidence is suppressed).
  bool mobility_grace_active(PeerId id) const { return in_mobility_grace(id); }

 private:
  struct BlockRef {
    int piece;
    int block;
  };
  enum class BlockState : std::uint8_t { kUnrequested = 0, kRequested = 1, kReceived = 2 };

  // Lifecycle / tracker.
  void initiate_task(AnnounceEvent event);
  void do_announce(AnnounceEvent event);
  void on_announce_result(AnnounceResult result, std::size_t slot);
  void schedule_announce_retry();
  void reset_announce_backoff();
  void handle_announce(std::vector<TrackerPeerInfo> peers);

  // Discovery resilience.
  void start_probe();
  void stop_probe();
  void probe_primary();
  void send_pex_round();
  void handle_pex(PeerConnection& peer, const WireMessage& msg);
  void maybe_bootstrap();
  void record_good_peer(PeerConnection& peer);
  void connect_to(net::Endpoint remote);
  bool connected_to(net::Endpoint remote) const;
  void accept_connection(std::shared_ptr<tcp::Connection> conn);
  void setup_peer(const std::shared_ptr<PeerConnection>& peer);
  void drop_peer(PeerConnection* peer);

  // Message handling.
  void on_peer_message(PeerConnection& peer, const WireMessage& msg);
  void handle_handshake(PeerConnection& peer, const WireMessage& msg);
  void handle_bitfield(PeerConnection& peer, const WireMessage& msg);
  void handle_have(PeerConnection& peer, const WireMessage& msg);
  void handle_request(PeerConnection& peer, const WireMessage& msg);
  void handle_piece(PeerConnection& peer, const WireMessage& msg);
  void handle_cancel(PeerConnection& peer, const WireMessage& msg);

  // Download side.
  void evaluate_interest(PeerConnection& peer);
  void fill_requests(PeerConnection& peer);
  std::optional<BlockRef> next_block_for(PeerConnection& peer);
  void return_outstanding(PeerConnection& peer);
  void on_piece_completed(int piece);
  void on_download_finished();
  void periodic_maintenance();  // request timeouts, snubs, keep-alives, idle
  std::optional<BlockRef> endgame_block_for(PeerConnection& peer);
  void cancel_duplicates(PeerConnection& source, int piece, int block);
  BlockState& block_state(int piece, int block);
  // Choking.
  void run_choke_round();
  void rotate_optimistic();
  void set_choke(PeerConnection& peer, bool choke);
  double unchoke_score(PeerConnection& peer);

  // Upload side.
  void pump_uploads();
  // Keep pending_upload_peers_ in sync after any upload_queue mutation.
  void update_pending_upload(PeerConnection& peer);

  // Incremental peer-set maintenance (choker rounds are O(interested), not
  // O(peers)). Snapshots are sorted by admission seq, which equals peers_
  // order, so message emission order is byte-identical to a full scan.
  void set_peer_interested(PeerConnection& peer, bool interested);
  std::vector<PeerConnection*> snapshot_by_seq(const std::vector<PeerConnection*>& set) const;

  // Integrity / banning. A strike from the enforcement layer carries a cause
  // string (traced as the strike event's aux); corruption strikes pass none.
  void record_contributor(PeerConnection& peer, int piece, int block);
  void handle_corrupt_piece(int piece);
  void strike_peer(PeerId id, int piece, const char* cause = nullptr);
  bool is_banned(PeerId id) const { return banned_.count(id) > 0; }

  // Protocol enforcement. Each offense category accumulates per-peer evidence
  // on the PeerConnection; record_offense bumps the category counter and, at
  // every threshold crossing, traces a detection event and (unless
  // unsafe_no_enforcement) charges one strike via strike_peer.
  enum class Offense { kFlood, kMalformed, kLiar, kStall, kChurn, kPexSpam };
  void record_offense(PeerConnection& peer, Offense offense);
  void note_unchoke_churn(PeerConnection& peer);
  bool in_mobility_grace(PeerId id) const;
  void grant_mobility_grace(PeerId id, const char* cause);

  // Reconnect policy.
  void consider_reconnect(net::Endpoint remote, tcp::CloseReason reason);
  void clear_reconnect(net::Endpoint remote);
  void cancel_reconnects();

  // Mobility.
  void handle_address_change();
  void reinitiate();

  // Session persistence.
  void start_tasks();  // periodic machinery shared by start() and resume()
  void halt_tasks();   // inverse, shared by stop() and suspend()
  void write_checkpoint();
  void restore_from_snapshot();

  net::Node& node_;
  tcp::Stack& stack_;
  TrackerList trackers_;
  Metainfo meta_;
  PieceStore store_;
  ClientConfig config_;
  std::unique_ptr<PieceSelector> selector_;
  sim::Simulator& sim_;
  sim::Rng rng_;

  PeerId peer_id_ = 0;
  bool running_ = false;
  bool completed_notified_ = false;
  bool node_hooks_installed_ = false;
  Lifecycle lifecycle_ = Lifecycle::kStopped;
  ResumeStore* resume_store_ = nullptr;
  bool resume_attempted_ = false;  // restore runs once, on the first start()

  std::vector<std::shared_ptr<PeerConnection>> peers_;
  std::uint64_t next_peer_seq_ = 0;  // admission counter backing PeerConnection::seq
  // Incrementally maintained membership sets (unordered; sort by seq at use).
  std::vector<PeerConnection*> interested_peers_;  // peer_interested == true
  std::vector<PeerConnection*> unchoked_peers_;    // am_choking == false
  std::size_t pending_upload_peers_ = 0;  // peers with a non-empty upload_queue
  std::vector<int> availability_;                       // remote copies per piece
  std::map<int, std::vector<BlockState>> active_;       // pieces in progress
  Bitfield active_pieces_;  // mirror of active_ keys for word-wise candidate scans
  // Which peer supplied each block of a piece in progress — the attribution
  // map consulted when a completed piece fails verification (smart ban).
  std::map<int, std::vector<PeerId>> contributors_;
  std::unordered_map<PeerId, int> strikes_;
  std::unordered_set<PeerId> banned_;
  // Mobility grace windows: identity -> expiry. Granted on evidence a peer
  // moved (connection died by TCP timeout, or its id re-handshook from a new
  // address); while active, stall/liar evidence against that id is held.
  std::unordered_map<PeerId, sim::SimTime> grace_until_;
  std::unordered_map<PeerId, net::Endpoint> known_listen_endpoints_;
  CreditLedger credit_;
  util::TokenBucket upload_bucket_;
  std::size_t upload_cursor_ = 0;  // round-robin fairness across peers
  PeerConnection* optimistic_peer_ = nullptr;

  sim::PeriodicTask choke_task_;
  sim::PeriodicTask optimistic_task_;
  sim::PeriodicTask announce_task_;
  sim::PeriodicTask timeout_task_;
  sim::PeriodicTask upload_pump_task_;
  sim::PeriodicTask pex_task_;
  sim::PeriodicTask probe_task_;
  sim::PeriodicTask checkpoint_task_;
  bool probe_active_ = false;
  sim::EventId reinit_event_ = sim::kInvalidEventId;

  // Announce retry chain: one pending retry at a time, base delay doubling
  // from announce_retry_initial up to announce_retry_cap; any successful
  // announce resets it.
  sim::EventId announce_retry_event_ = sim::kInvalidEventId;
  sim::SimTime announce_retry_base_ = 0;
  int announce_retry_attempt_ = 0;

  // Per-endpoint reconnect state for peers lost to TCP timeouts.
  struct ReconnectState {
    sim::SimTime backoff = 0;
    int attempts = 0;
    sim::EventId event = sim::kInvalidEventId;
  };
  std::map<net::Endpoint, ReconnectState> reconnects_;

  // Discovery resilience. The fail streak counts consecutive failed announces
  // (any tracker); one full failed cycle through the tier list means
  // discovery is dark and the bootstrap cache may act. Both the streak and
  // the cache are member data on purpose — like the piece store they survive
  // stop()/start(), i.e. crash/restart.
  int announce_fail_streak_ = 0;
  BootstrapCache bootstrap_;
  sim::SimTime last_bootstrap_at_ = -1;
  // Last PEX send per recipient listen endpoint; enforces the rate limit
  // across reconnects and crash/restart (the per-connection delta state on
  // PeerConnection dies with the connection, this map does not).
  std::map<net::Endpoint, sim::SimTime> pex_last_sent_;

  ClientStats stats_;
  metrics::ThroughputMeter down_rate_;
  metrics::ThroughputMeter up_rate_;
  sim::SimTime last_disconnect_ = 0;
  // Liveness flag shared into deferred callbacks (tracker RPCs, node hooks)
  // so they become no-ops once the client is destroyed.
  std::shared_ptr<bool> alive_;
};

}  // namespace wp2p::bt
