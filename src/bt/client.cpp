#include "bt/client.hpp"

#include <algorithm>
#include <bit>

#include "trace/recorder.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"

namespace wp2p::bt {

namespace {
constexpr const char* kLog = "bt";

[[maybe_unused]] trace::TraceEvent bt_event(trace::Kind kind, net::Node& node) {
  return trace::event(trace::Component::kBt, kind).at(node.name());
}

// Endpoints packed into a trace field: addr * 2^16 + port fits a double
// exactly (48 bits < 2^53), so the invariant checker can compare them.
[[maybe_unused]] double pack_endpoint(net::Endpoint ep) {
  return static_cast<double>(ep.addr.value) * 65536.0 + static_cast<double>(ep.port);
}

std::unique_ptr<PieceSelector> make_selector(SelectorKind kind) {
  switch (kind) {
    case SelectorKind::kRarestFirst: return std::make_unique<RarestFirstSelector>();
    case SelectorKind::kSequential: return std::make_unique<SequentialSelector>();
    case SelectorKind::kRandom: return std::make_unique<RandomSelector>();
  }
  return std::make_unique<RarestFirstSelector>();
}
}  // namespace

Client::Client(net::Node& node, tcp::Stack& stack, Tracker& tracker, const Metainfo& meta,
               ClientConfig config, bool start_as_seed)
    : node_{node},
      stack_{stack},
      trackers_{tracker},
      meta_{meta},
      store_{meta_},
      config_{config},
      selector_{make_selector(config.selector)},
      sim_{node.sim()},
      rng_{node.sim().rng().fork()},
      availability_(static_cast<std::size_t>(meta_.piece_count()), 0),
      active_pieces_{meta_.piece_count()},
      credit_{config.credit_half_life},
      upload_bucket_{config.upload_limit, /*burst=*/64 * 1024},
      choke_task_{sim_, config.choke_interval, [this] { run_choke_round(); }},
      optimistic_task_{sim_, config.optimistic_interval, [this] { rotate_optimistic(); }},
      announce_task_{sim_, config.announce_interval,
                     [this] { initiate_task(AnnounceEvent::kInterval); }},
      timeout_task_{sim_, sim::seconds(10.0), [this] { periodic_maintenance(); }},
      upload_pump_task_{sim_, config.upload_pump_interval, [this] { pump_uploads(); }},
      pex_task_{sim_, config.pex_interval, [this] { send_pex_round(); }},
      probe_task_{sim_, config.tracker_probe_interval, [this] { probe_primary(); }},
      checkpoint_task_{sim_, std::max<sim::SimTime>(1, config.resume_checkpoint_interval),
                       [this] { write_checkpoint(); }},
      bootstrap_{static_cast<std::size_t>(std::max(0, config.bootstrap_cache_size))},
      down_rate_{config.rate_window},
      up_rate_{config.rate_window} {
  peer_id_ = rng_.next_u64() | 1;  // nonzero
  if (start_as_seed) store_.mark_all();
  alive_ = std::make_shared<bool>(true);
}

Client::~Client() {
  *alive_ = false;
  if (reinit_event_ != sim::kInvalidEventId) sim_.cancel(reinit_event_);
  if (announce_retry_event_ != sim::kInvalidEventId) sim_.cancel(announce_retry_event_);
  for (auto& [endpoint, state] : reconnects_) {
    if (state.event != sim::kInvalidEventId) sim_.cancel(state.event);
  }
  for (auto& peer : peers_) peer->detach();
}

util::Rate Client::download_rate() { return down_rate_.rate(sim_.now()); }
util::Rate Client::upload_rate() { return up_rate_.rate(sim_.now()); }

void Client::set_selector(std::unique_ptr<PieceSelector> selector) {
  WP2P_ASSERT(selector != nullptr);
  selector_ = std::move(selector);
}

void Client::set_upload_limit(util::Rate limit) {
  config_.upload_limit = limit;
  upload_bucket_.set_rate(limit, sim_.now());
}

util::Rate Client::upload_limit() const { return config_.upload_limit; }

// --- Lifecycle -----------------------------------------------------------------

void Client::preload(double fraction) {
  WP2P_ASSERT(!running_);
  for (int p = 0; p < meta_.piece_count(); ++p) {
    if (rng_.bernoulli(fraction)) store_.mark_piece(p);
  }
}

void Client::preload_pieces(const std::vector<int>& pieces) {
  WP2P_ASSERT(!running_);
  for (int p : pieces) store_.mark_piece(p);
}

void Client::add_tracker(Tracker& tracker, int tier) {
  WP2P_ASSERT(!running_);
  trackers_.add(tracker, tier);
}

void Client::start() {
  WP2P_ASSERT(!running_);
  // A restart fault landing on a suspended app is a wake-up, not a cold boot:
  // the process never died, so the suspend path's counterpart must run (and
  // emit its lifecycle events) or the suspend bracket would dangle.
  if (lifecycle_ == Lifecycle::kSuspended || lifecycle_ == Lifecycle::kSuspending) {
    resume();
    return;
  }
  running_ = true;
  lifecycle_ = Lifecycle::kRunning;
  last_disconnect_ = sim_.now();
  // A fresh incarnation restores from the resume journal before anything else
  // observes its state; the same object restarting (crash/restart keeps member
  // data alive) never re-applies a snapshot over live state.
  if (resume_store_ != nullptr && !resume_attempted_) {
    resume_attempted_ = true;
    restore_from_snapshot();
  }
  stack_.listen(config_.listen_port, [this, alive = alive_](auto conn) {
    if (*alive) accept_connection(std::move(conn));
  });
  // Register node hooks once; a stop()/start() cycle (fault-injected crash
  // and restart) must not stack duplicate handlers.
  if (!node_hooks_installed_) {
    node_hooks_installed_ = true;
    node_.on_address_change.push_back([this, alive = alive_](net::IpAddr, net::IpAddr) {
      if (*alive) handle_address_change();
    });
    node_.on_connectivity_change.push_back([this, alive = alive_](bool connected) {
      if (*alive && !connected) last_disconnect_ = sim_.now();
    });
  }
  start_tasks();
  initiate_task(AnnounceEvent::kStarted);
}

void Client::start_tasks() {
  choke_task_.start();
  optimistic_task_.start();
  // Random announce phase: real clients join at arbitrary times, so their
  // tracker polls are not synchronized (and neither are re-discovery delays).
  announce_task_.start_after(static_cast<sim::SimTime>(
      rng_.uniform(0.25, 1.0) * static_cast<double>(config_.announce_interval)));
  timeout_task_.start();
  upload_pump_task_.start();
  if (config_.pex) {
    // Desynchronized PEX phase derived from the peer-id rather than a fresh
    // RNG draw, so enabling PEX does not shift the client's random stream.
    const double frac = static_cast<double>((peer_id_ >> 16) & 0xffff) / 65535.0;
    pex_task_.start_after(static_cast<sim::SimTime>(
        (0.25 + 0.75 * frac) * static_cast<double>(config_.pex_interval)));
  }
  if (resume_store_ != nullptr && config_.resume_checkpoint_interval > 0) {
    checkpoint_task_.start();
  }
}

void Client::halt_tasks() {
  choke_task_.stop();
  optimistic_task_.stop();
  announce_task_.stop();
  timeout_task_.stop();
  upload_pump_task_.stop();
  pex_task_.stop();
  checkpoint_task_.stop();
  stop_probe();
  // Cancel the pending retry but keep the chain's base/attempt: a crash during
  // an outage must not shrink the backoff on restart (the outage is still on,
  // and the announce-backoff invariant holds across the process boundary just
  // like the piece store does).
  if (announce_retry_event_ != sim::kInvalidEventId) {
    sim_.cancel(announce_retry_event_);
    announce_retry_event_ = sim::kInvalidEventId;
  }
  // A pending hand-off reinitiation must die with the incarnation: left
  // armed, it fires into the NEXT incarnation after a quick restart and
  // re-announces (regenerating the peer-id) for a hand-off that happened to a
  // process that no longer exists.
  if (reinit_event_ != sim::kInvalidEventId) {
    sim_.cancel(reinit_event_);
    reinit_event_ = sim::kInvalidEventId;
  }
  cancel_reconnects();
  stack_.stop_listening(config_.listen_port);
}

void Client::stop() {
  if (!running_) return;
  running_ = false;
  lifecycle_ = Lifecycle::kStopped;
  halt_tasks();
  if (node_.connected()) {
    trackers_.current().announce(AnnounceRequest{meta_.info_hash,
                                                 {node_.address(), config_.listen_port},
                                                 peer_id_,
                                                 store_.complete(),
                                                 AnnounceEvent::kStopped},
                                 nullptr);
  }
  // Tear peers down in a fresh event: stop() may be called from inside a
  // peer-connection callback.
  sim_.after(0, [this, alive = alive_] {
    if (!*alive || running_) return;
    auto doomed = peers_;  // abort mutates peers_ via on_closed
    for (auto& peer : doomed) peer->tcp().abort();
    peers_.clear();
  });
}

// --- Suspend / resume ---------------------------------------------------------------

void Client::suspend() {
  if (!running_) return;
  ++stats_.suspends;
  WP2P_TRACE(sim_, bt_event(trace::Kind::kBtSuspend, node_)
                       .why("begin")
                       .with("peer_id", static_cast<double>(peer_id_ & 0xffffffffu))
                       .with("pieces", static_cast<double>(store_.bitfield().count())));
  running_ = false;
  lifecycle_ = Lifecycle::kSuspending;
  halt_tasks();
  // Unlike stop(): no kStopped announce and no peer teardown. A suspended app
  // just goes silent — the tracker keeps listing it, remote peers keep their
  // connections until their own snub/idle/reconnect machinery gives up, which
  // is exactly the composition the remote-side timers are built for.
  if (resume_store_ != nullptr) {
    const std::uint64_t seq =
        resume_store_->save(make_snapshot(), [this, alive = alive_](std::uint64_t s) {
          if (!*alive) return;
          ++stats_.snapshots_written;
          // A resume (or kill) may have raced the device ack; only a client
          // still draining its suspend transition completes it.
          if (lifecycle_ != Lifecycle::kSuspending) return;
          lifecycle_ = Lifecycle::kSuspended;
          WP2P_TRACE(sim_, bt_event(trace::Kind::kBtSuspend, node_)
                               .why("suspended")
                               .with("peer_id", static_cast<double>(peer_id_ & 0xffffffffu))
                               .with("seq", static_cast<double>(s)));
        });
    (void)seq;
  } else {
    lifecycle_ = Lifecycle::kSuspended;
    WP2P_TRACE(sim_, bt_event(trace::Kind::kBtSuspend, node_)
                         .why("suspended")
                         .with("peer_id", static_cast<double>(peer_id_ & 0xffffffffu))
                         .with("seq", -1.0));
  }
}

void Client::resume() {
  if (running_) return;
  if (lifecycle_ != Lifecycle::kSuspended && lifecycle_ != Lifecycle::kSuspending) {
    return;  // resume only pairs with suspend; a stopped client needs start()
  }
  ++stats_.resumes;
  WP2P_TRACE(sim_, bt_event(trace::Kind::kBtResume, node_)
                       .why("begin")
                       .with("peer_id", static_cast<double>(peer_id_ & 0xffffffffu)));
  running_ = true;
  lifecycle_ = Lifecycle::kResuming;
  last_disconnect_ = sim_.now();
  stack_.listen(config_.listen_port, [this, alive = alive_](auto conn) {
    if (*alive) accept_connection(std::move(conn));
  });
  start_tasks();
  lifecycle_ = Lifecycle::kRunning;
  WP2P_TRACE(sim_, bt_event(trace::Kind::kBtResume, node_)
                       .why("resumed")
                       .with("peer_id", static_cast<double>(peer_id_ & 0xffffffffu))
                       .with("pieces", static_cast<double>(store_.bitfield().count())));
  // Drain the control frames the OS buffered during the nap (after the
  // resumed event: any traffic they trigger belongs outside the suspend
  // bracket). Re-look the peer up by admission seq before every frame —
  // handling one (e.g. a churn offense crossing the ban threshold) may
  // disconnect and destroy the connection mid-drain.
  std::vector<std::uint64_t> frozen;
  for (const auto& peer : peers_) {
    if (!peer->frozen_inbox.empty()) frozen.push_back(peer->seq);
  }
  for (const std::uint64_t seq : frozen) {
    for (;;) {
      const auto it = std::find_if(peers_.begin(), peers_.end(),
                                   [seq](const auto& p) { return p->seq == seq; });
      if (it == peers_.end() || (*it)->frozen_inbox.empty()) break;
      const WireMessage msg = std::move((*it)->frozen_inbox.front());
      (*it)->frozen_inbox.pop_front();
      on_peer_message(**it, msg);
    }
  }
  initiate_task(AnnounceEvent::kStarted);
}

ResumeSnapshot Client::make_snapshot() const {
  ResumeSnapshot snap;
  snap.info_hash = meta_.info_hash;
  snap.peer_id = peer_id_;
  snap.taken_at = sim_.now();
  snap.piece_count = meta_.piece_count();
  for (int p = 0; p < meta_.piece_count(); ++p) {
    if (store_.has_piece(p)) snap.have.push_back(p);
  }
  snap.partials = store_.export_partials();
  snap.credit = credit_.exported();
  for (const auto& [peer, count] : strikes_) snap.strikes.emplace_back(peer, count);
  std::sort(snap.strikes.begin(), snap.strikes.end());
  snap.banned.assign(banned_.begin(), banned_.end());
  std::sort(snap.banned.begin(), snap.banned.end());
  snap.bootstrap = bootstrap_.entries();
  return snap;
}

void Client::write_checkpoint() {
  if (resume_store_ == nullptr || !running_) return;
  resume_store_->save(make_snapshot(), [this, alive = alive_](std::uint64_t) {
    if (*alive) ++stats_.snapshots_written;
  });
}

void Client::restore_from_snapshot() {
  auto loaded = resume_store_->load();
  if (!loaded || loaded->snapshot.piece_count != meta_.piece_count()) {
    // Journal empty, every record torn/corrupt, or a snapshot of some other
    // content shape: degrade to a cold restart.
    ++stats_.cold_restarts;
    WP2P_TRACE(sim_, bt_event(trace::Kind::kBtResume, node_)
                         .why("cold")
                         .with("peer_id", static_cast<double>(peer_id_ & 0xffffffffu))
                         .with("discarded",
                               loaded ? static_cast<double>(loaded->discarded) : 0.0));
    return;
  }
  const ResumeSnapshot& snap = loaded->snapshot;
  // Identity retention: the snapshot's peer-id (and the credit standing fixed
  // peers hold against it) is the most valuable thing the snapshot carries.
  peer_id_ = snap.peer_id;
  for (const CreditLedger::Exported& c : snap.credit) credit_.restore(c);
  for (const auto& [peer, count] : snap.strikes) strikes_[peer] = count;
  for (PeerId id : snap.banned) banned_.insert(id);
  for (const BootstrapCache::Entry& e : snap.bootstrap) bootstrap_.restore(e);
  // Entries that went stale across the suspend (an old cell's addresses) are
  // dropped before anything can dial them.
  bootstrap_.prune(sim_.now(), config_.bootstrap_entry_ttl);
  for (const PieceStore::PartialState& p : snap.partials) store_.restore_partial(p);
  // Trust-but-verify: sample restored pieces against the medium before
  // claiming them. Any rot escalates to a full scan of the snapshot bitfield,
  // so a decayed store degrades to a partial restore, never a false HAVE.
  sim::StableStorage& medium = resume_store_->storage();
  bool rot_found = false;
  if (config_.resume_verify_samples > 0 && !snap.have.empty()) {
    const int samples =
        std::min<int>(config_.resume_verify_samples, static_cast<int>(snap.have.size()));
    for (int i = 0; i < samples; ++i) {
      const int piece =
          snap.have[static_cast<std::size_t>(rng_.below(snap.have.size()))];
      const bool ok = medium.piece_intact(piece);
      if (!ok) rot_found = true;
      WP2P_TRACE(sim_, bt_event(trace::Kind::kBtResumeVerify, node_)
                           .why("sample")
                           .with("piece", static_cast<double>(piece))
                           .with("ok", ok ? 1.0 : 0.0));
    }
  }
  std::uint64_t restored = 0, dropped = 0;
  for (int piece : snap.have) {
    if (rot_found && !medium.piece_intact(piece)) {
      ++dropped;  // never entered the bitfield; the selector re-fetches it
      continue;
    }
    store_.mark_piece(piece);
    ++restored;
  }
  if (rot_found) {
    WP2P_TRACE(sim_, bt_event(trace::Kind::kBtResumeVerify, node_)
                         .why("full-scan")
                         .with("dropped", static_cast<double>(dropped))
                         .with("kept", static_cast<double>(restored)));
  }
  stats_.resume_restored_pieces += restored;
  stats_.resume_dropped_pieces += dropped;
  WP2P_TRACE(sim_, bt_event(trace::Kind::kBtResume, node_)
                       .why("restored")
                       .with("peer_id", static_cast<double>(peer_id_ & 0xffffffffu))
                       .with("snapshot", static_cast<double>(snap.have.size()))
                       .with("restored", static_cast<double>(restored))
                       .with("dropped", static_cast<double>(dropped))
                       .with("seq", static_cast<double>(loaded->seq))
                       .with("discarded", static_cast<double>(loaded->discarded)));
}

void Client::initiate_task(AnnounceEvent event) { do_announce(event); }

void Client::do_announce(AnnounceEvent event) {
  if (!running_ || !node_.connected()) return;
  AnnounceRequest req{meta_.info_hash,
                      {node_.address(), config_.listen_port},
                      peer_id_,
                      store_.complete(),
                      event};
  // The slot travels into the async result so a response races correctly
  // against failovers that happen while the RPC is in flight.
  const std::size_t slot = trackers_.cursor();
  trackers_.current().announce(req, [this, alive = alive_, slot](AnnounceResult result) {
    if (*alive && running_) on_announce_result(std::move(result), slot);
  });
}

void Client::on_announce_result(AnnounceResult result, std::size_t slot) {
  WP2P_TRACE(sim_, bt_event(trace::Kind::kBtAnnounce, node_)
                       .with("ok", result.ok ? 1.0 : 0.0)
                       .with("peers", static_cast<double>(result.peers.size()))
                       .with("tracker", static_cast<double>(slot)));
  if (result.ok) {
    announce_fail_streak_ = 0;
    reset_announce_backoff();
    if (slot != 0 && slot == trackers_.cursor()) {
      // First responsive backup: promote it to the head of its tier so later
      // failover cycles try it sooner, and start probing the primary.
      const std::size_t from = slot;
      trackers_.promote_current();
      if (trackers_.cursor() != from) {
        WP2P_TRACE(sim_, bt_event(trace::Kind::kBtTrackerFailover, node_)
                             .why("promote")
                             .with("from", static_cast<double>(from))
                             .with("to", static_cast<double>(trackers_.cursor()))
                             .with("trackers", static_cast<double>(trackers_.size())));
      }
      start_probe();
    }
    handle_announce(std::move(result.peers));
    return;
  }
  ++stats_.announce_failures;
  ++announce_fail_streak_;
  if (config_.tracker_failover && trackers_.size() > 1 && slot == trackers_.cursor()) {
    const std::size_t from = trackers_.cursor();
    const int from_tier = trackers_.tier_of(from);
    const std::size_t to = trackers_.advance();
    ++stats_.tracker_failovers;
    WP2P_TRACE(sim_, bt_event(trace::Kind::kBtTrackerFailover, node_)
                         .why("failover")
                         .with("from", static_cast<double>(from))
                         .with("to", static_cast<double>(to))
                         .with("trackers", static_cast<double>(trackers_.size()))
                         .with("from_tier", static_cast<double>(from_tier))
                         .with("to_tier", static_cast<double>(trackers_.tier_of(to))));
  }
  maybe_bootstrap();
  if (config_.announce_retry) schedule_announce_retry();
}

void Client::schedule_announce_retry() {
  if (announce_retry_event_ != sim::kInvalidEventId) return;  // one pending retry
  announce_retry_base_ =
      announce_retry_attempt_ == 0
          ? std::min(config_.announce_retry_initial, config_.announce_retry_cap)
          : std::min(announce_retry_base_ * 2, config_.announce_retry_cap);
  ++announce_retry_attempt_;
  // Deterministic jitter from the client's own RNG stream: spreads retries of
  // peers that failed in the same outage without breaking reproducibility.
  const double factor = 1.0 + config_.announce_retry_jitter * (rng_.uniform() * 2.0 - 1.0);
  const auto delay = std::max<sim::SimTime>(
      1, static_cast<sim::SimTime>(static_cast<double>(announce_retry_base_) * factor));
  WP2P_TRACE(sim_, bt_event(trace::Kind::kBtAnnounceRetry, node_)
                       .with("attempt", static_cast<double>(announce_retry_attempt_))
                       .with("base_s", sim::to_seconds(announce_retry_base_))
                       .with("delay_s", sim::to_seconds(delay))
                       .with("cap_s", sim::to_seconds(config_.announce_retry_cap))
                       .with("jitter", config_.announce_retry_jitter));
  announce_retry_event_ = sim_.after(delay, [this, alive = alive_] {
    if (!*alive) return;
    announce_retry_event_ = sim::kInvalidEventId;
    if (!running_) return;
    ++stats_.announce_retries;
    // kStarted: a tracker that lost our announce may not know us at all.
    do_announce(AnnounceEvent::kStarted);
  });
}

void Client::reset_announce_backoff() {
  if (announce_retry_event_ != sim::kInvalidEventId) {
    sim_.cancel(announce_retry_event_);
    announce_retry_event_ = sim::kInvalidEventId;
  }
  announce_retry_base_ = 0;
  announce_retry_attempt_ = 0;
}

void Client::handle_announce(std::vector<TrackerPeerInfo> peers) {
  const net::Endpoint self{node_.address(), config_.listen_port};
  for (const TrackerPeerInfo& info : peers) {
    if (is_banned(info.peer_id)) continue;  // never re-learn a banned peer
    known_listen_endpoints_[info.peer_id] = info.endpoint;
    if (static_cast<int>(peers_.size()) >= config_.max_peers) break;
    if (info.endpoint == self || info.peer_id == peer_id_) continue;
    if (connected_to(info.endpoint)) continue;
    // Two seeds have nothing to exchange.
    if (store_.complete() && info.seed) continue;
    connect_to(info.endpoint);
  }
}

// --- Discovery resilience -----------------------------------------------------------

void Client::start_probe() {
  if (probe_active_ || !config_.tracker_failover) return;
  probe_active_ = true;
  probe_task_.start();
}

void Client::stop_probe() {
  if (!probe_active_) return;
  probe_active_ = false;
  probe_task_.stop();
}

void Client::probe_primary() {
  if (!running_ || !node_.connected()) return;
  if (trackers_.cursor() == 0) {
    stop_probe();
    return;
  }
  AnnounceRequest req{meta_.info_hash,
                      {node_.address(), config_.listen_port},
                      peer_id_,
                      store_.complete(),
                      AnnounceEvent::kStarted};
  trackers_.primary().announce(req, [this, alive = alive_](AnnounceResult result) {
    if (!*alive || !running_ || !result.ok) return;  // still dark: keep probing
    if (trackers_.cursor() == 0) return;             // already home
    const std::size_t from = trackers_.cursor();
    trackers_.failback();
    ++stats_.tracker_failbacks;
    announce_fail_streak_ = 0;
    reset_announce_backoff();
    WP2P_TRACE(sim_, bt_event(trace::Kind::kBtAnnounce, node_)
                         .with("ok", 1.0)
                         .with("peers", static_cast<double>(result.peers.size()))
                         .with("tracker", 0.0));
    WP2P_TRACE(sim_, bt_event(trace::Kind::kBtTrackerFailover, node_)
                         .why("failback")
                         .with("from", static_cast<double>(from))
                         .with("to", 0.0)
                         .with("trackers", static_cast<double>(trackers_.size())));
    stop_probe();
    handle_announce(std::move(result.peers));  // the probe was a real announce
  });
}

void Client::send_pex_round() {
  if (!config_.pex || !running_ || !node_.connected()) return;
  const net::Endpoint self{node_.address(), config_.listen_port};
  // The live advert set: listen endpoints of established, unbanned peers.
  std::map<net::Endpoint, PeerId> current;
  for (const auto& peer : peers_) {
    if (!peer->app_established() || peer->remote_id == 0) continue;
    if (is_banned(peer->remote_id)) continue;
    auto it = known_listen_endpoints_.find(peer->remote_id);
    if (it == known_listen_endpoints_.end()) continue;
    if (it->second == self) continue;
    current[it->second] = peer->remote_id;
  }
  for (const auto& peer : peers_) {
    if (!peer->app_established() || is_banned(peer->remote_id)) continue;
    // Rate limit per recipient endpoint: survives reconnects and restarts
    // (the delta baseline on the connection does not).
    net::Endpoint to = peer->remote_endpoint();
    if (auto it = known_listen_endpoints_.find(peer->remote_id);
        it != known_listen_endpoints_.end()) {
      to = it->second;
    }
    if (auto it = pex_last_sent_.find(to);
        it != pex_last_sent_.end() && sim_.now() - it->second < config_.pex_interval) {
      continue;
    }
    std::vector<PexPeer> added;
    for (const auto& [endpoint, id] : current) {
      if (endpoint == to || id == peer->remote_id) continue;  // not itself
      auto it = peer->pex_sent.find(endpoint);
      if (it != peer->pex_sent.end() && it->second == id) continue;  // known
      added.push_back({endpoint, id});
    }
    std::vector<net::Endpoint> dropped;
    for (const auto& [endpoint, id] : peer->pex_sent) {
      if (current.count(endpoint) == 0) dropped.push_back(endpoint);
    }
    if (added.empty() && dropped.empty()) continue;
    for (const net::Endpoint& endpoint : dropped) peer->pex_sent.erase(endpoint);
    for (const PexPeer& entry : added) peer->pex_sent[entry.endpoint] = entry.peer_id;
    pex_last_sent_[to] = sim_.now();
    ++stats_.pex_sent;
    WP2P_TRACE(sim_, bt_event(trace::Kind::kBtPexSend, node_)
                         .on(net::to_string(to))
                         .with("peer_id", static_cast<double>(peer->remote_id & 0xffffffffu))
                         .with("added", static_cast<double>(added.size()))
                         .with("dropped", static_cast<double>(dropped.size()))
                         .with("interval_s", sim::to_seconds(config_.pex_interval)));
    for ([[maybe_unused]] const PexPeer& entry : added) {
      WP2P_TRACE(sim_, bt_event(trace::Kind::kBtPexEntry, node_)
                           .on(net::to_string(to))
                           .with("ep", pack_endpoint(entry.endpoint))
                           .with("peer_id", static_cast<double>(entry.peer_id & 0xffffffffu))
                           .with("self_ep", pack_endpoint(self)));
    }
    peer->send(WireMessage::pex(std::move(added), std::move(dropped)));
  }
}

void Client::handle_pex(PeerConnection& peer, const WireMessage& msg) {
  if (!config_.pex) return;
  if (is_banned(peer.remote_id)) {
    // Defense in depth: a ban aborts the connection, but gossip already in
    // flight (or racing the ban decision) must still be discarded whole.
    ++stats_.pex_discarded;
    return;
  }
  ++stats_.pex_received;
  WP2P_TRACE(sim_, bt_event(trace::Kind::kBtPexRecv, node_)
                       .with("peer_id", static_cast<double>(peer.remote_id & 0xffffffffu))
                       .with("added", static_cast<double>(msg.pex_added.size()))
                       .with("dropped", static_cast<double>(msg.pex_dropped.size())));
  const net::Endpoint self{node_.address(), config_.listen_port};
  for (const PexPeer& entry : msg.pex_added) {
    if (!entry.endpoint.valid() || entry.peer_id == 0) {
      // Structurally bogus gossip (zero address/port or anonymous identity):
      // no honest client emits these, so each one is spam evidence.
      ++stats_.pex_spam_entries;
      record_offense(peer, Offense::kPexSpam);
      continue;
    }
    if (entry.endpoint == self || entry.peer_id == peer_id_) continue;
    if (is_banned(entry.peer_id)) {
      ++stats_.pex_banned_skipped;  // never learn (or dial) a banned identity
      continue;
    }
    // Endpoint sanity budget: one sender gets to introduce at most
    // pex_endpoint_budget unique endpoints; anything beyond is filtered
    // before it can poison the known-endpoint table or trigger dials.
    if (config_.pex_endpoint_budget > 0 &&
        peer.pex_learned.count(entry.endpoint) == 0) {
      if (static_cast<int>(peer.pex_learned.size()) >= config_.pex_endpoint_budget) {
        ++stats_.pex_budget_dropped;
        if (!config_.unsafe_no_enforcement) continue;
      } else {
        peer.pex_learned.emplace(entry.endpoint, entry.peer_id);
      }
    }
    auto it = known_listen_endpoints_.find(entry.peer_id);
    const bool fresh = it == known_listen_endpoints_.end() || it->second != entry.endpoint;
    known_listen_endpoints_[entry.peer_id] = entry.endpoint;
    if (fresh) ++stats_.pex_peers_learned;
    if (static_cast<int>(peers_.size()) >= config_.max_peers) continue;
    if (connected_to(entry.endpoint)) continue;
    connect_to(entry.endpoint);
  }
  // Dropped entries are advisory (the sender lost them); we keep our own
  // connections and knowledge — real PEX treats them the same way.
}

void Client::maybe_bootstrap() {
  if (!config_.bootstrap_cache || !running_ || !node_.connected()) return;
  // Dark means one full failed cycle through every tracker tier.
  if (announce_fail_streak_ < static_cast<int>(trackers_.size())) return;
  if (last_bootstrap_at_ >= 0 &&
      sim_.now() - last_bootstrap_at_ < config_.bootstrap_min_interval) {
    return;
  }
  last_bootstrap_at_ = sim_.now();
  // Age out entries whose proof of life predates the TTL — after a long
  // suspend these are a stale cell's addresses, not live peers. Existing
  // scenarios run far shorter than the default TTL, so this only bites when
  // real time has actually passed.
  bootstrap_.prune(sim_.now(), config_.bootstrap_entry_ttl);
  const net::Endpoint self{node_.address(), config_.listen_port};
  int dialed = 0;
  const auto& entries = bootstrap_.entries();
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {  // newest first
    if (static_cast<int>(peers_.size()) >= config_.max_peers) break;
    if (is_banned(it->peer_id) || it->peer_id == peer_id_) continue;
    if (it->endpoint == self || connected_to(it->endpoint)) continue;
    connect_to(it->endpoint);
    ++dialed;
  }
  stats_.bootstrap_dials += static_cast<std::uint64_t>(dialed);
  WP2P_TRACE(sim_, bt_event(trace::Kind::kBtBootstrap, node_)
                       .with("failures", static_cast<double>(announce_fail_streak_))
                       .with("trackers", static_cast<double>(trackers_.size()))
                       .with("dialed", static_cast<double>(dialed))
                       .with("cached", static_cast<double>(bootstrap_.size())));
  WP2P_LOG(util::LogLevel::kInfo, sim::to_seconds(sim_.now()), kLog,
           "%s trackers dark (%d failures), bootstrap cache dialed %d of %zu",
           node_.name().c_str(), announce_fail_streak_, dialed, bootstrap_.size());
}

void Client::record_good_peer(PeerConnection& peer) {
  if (!config_.bootstrap_cache || peer.remote_id == 0) return;
  auto it = known_listen_endpoints_.find(peer.remote_id);
  if (it == known_listen_endpoints_.end()) return;
  bootstrap_.touch(it->second, peer.remote_id, sim_.now());
}

bool Client::connected_to(net::Endpoint remote) const {
  for (const auto& peer : peers_) {
    if (peer->remote_endpoint() == remote) return true;
  }
  return false;
}

void Client::connect_to(net::Endpoint remote) {
  if (!node_.connected()) return;
  auto conn = stack_.connect(remote);
  auto peer = std::make_shared<PeerConnection>(sim_, std::move(conn), /*initiator=*/true,
                                               meta_.piece_count(), config_.rate_window);
  setup_peer(peer);
}

void Client::accept_connection(std::shared_ptr<tcp::Connection> conn) {
  if (!running_ ||
      static_cast<int>(peers_.size()) >= config_.max_peers + config_.max_peers / 4) {
    conn->abort();
    return;
  }
  auto peer = std::make_shared<PeerConnection>(sim_, std::move(conn), /*initiator=*/false,
                                               meta_.piece_count(), config_.rate_window);
  setup_peer(peer);
}

void Client::setup_peer(const std::shared_ptr<PeerConnection>& peer) {
  peer->seq = ++next_peer_seq_;
  peers_.push_back(peer);
  ++stats_.peers_connected_total;
  PeerConnection* p = peer.get();
  tcp::Connection& conn = peer->tcp();
  if (peer->initiator()) {
    conn.on_connected = [this, p] {
      // We initiated: open with handshake + bitfield. The responder replies
      // only after validating our info hash (handle_handshake).
      p->send(WireMessage::handshake(meta_.info_hash, peer_id_, config_.listen_port));
      p->send(WireMessage::bitfield_msg(store_.bitfield()));
      p->handshake_sent = true;
    };
  }
  conn.on_message = [this, p](const tcp::Connection::MessageHandle& handle, std::int64_t) {
    auto msg = std::static_pointer_cast<const WireMessage>(handle);
    if (msg) on_peer_message(*p, *msg);
  };
  conn.on_closed = [this, p](tcp::CloseReason reason) {
    // Snapshot what the reconnect decision needs before drop_peer frees p.
    net::Endpoint listen{};
    if (p->initiator()) {
      listen = p->remote_endpoint();  // dialed: remote IS its listen endpoint
    } else if (auto it = known_listen_endpoints_.find(p->remote_id);
               p->remote_id != 0 && it != known_listen_endpoints_.end()) {
      listen = it->second;
    }
    const bool was_established = p->app_established();
    const PeerId remote_id = p->remote_id;
    drop_peer(p);
    // Only a TIMEOUT earns a reconnect: silent death is the signature of an
    // outage/crash/hand-off. A close or reset means the peer is alive and
    // chose to drop us (seed-to-seed, duplicate connection, ban) — re-dialing
    // would loop: each dial handshakes, gets aborted, and repeats.
    if (reason == tcp::CloseReason::kTimeout) {
      // Same signature for the enforcement layer: a silently-dead established
      // peer probably moved, so its identity gets a mobility grace window.
      if (was_established) grant_mobility_grace(remote_id, "timeout");
      if (listen.valid() && (was_established || reconnects_.count(listen) > 0)) {
        consider_reconnect(listen, reason);
      }
    }
  };
}

void Client::drop_peer(PeerConnection* peer) {
  auto it = std::find_if(peers_.begin(), peers_.end(),
                         [peer](const auto& sp) { return sp.get() == peer; });
  if (it == peers_.end()) return;
  if (peer->bitfield_counted) {
    for (int i = 0; i < peer->peer_bitfield.size(); ++i) {
      if (peer->peer_bitfield.test(i)) --availability_[static_cast<std::size_t>(i)];
    }
  }
  return_outstanding(*peer);
  if (optimistic_peer_ == peer) optimistic_peer_ = nullptr;
  if (peer->upload_pending_counted) {
    peer->upload_pending_counted = false;
    --pending_upload_peers_;
  }
  std::erase(interested_peers_, peer);
  // A dropped connection that was still unchoked closes its unchoke interval
  // here — drop_peer never goes through set_choke, so without this edge the
  // pair would look unchoked forever (replaced duplicates, hand-offs, bans).
  if (std::erase(unchoked_peers_, peer) > 0 && on_unchoke_change) {
    on_unchoke_change(peer->remote_id, false);
  }
  peer->detach();
  peers_.erase(it);
}

void Client::set_peer_interested(PeerConnection& peer, bool interested) {
  if (peer.peer_interested == interested) return;
  peer.peer_interested = interested;
  if (interested) {
    interested_peers_.push_back(&peer);
  } else {
    std::erase(interested_peers_, &peer);
  }
}

void Client::update_pending_upload(PeerConnection& peer) {
  const bool pending = !peer.upload_queue.empty();
  if (pending == peer.upload_pending_counted) return;
  peer.upload_pending_counted = pending;
  if (pending) {
    ++pending_upload_peers_;
  } else {
    --pending_upload_peers_;
  }
}

std::vector<PeerConnection*> Client::snapshot_by_seq(
    const std::vector<PeerConnection*>& set) const {
  std::vector<PeerConnection*> snapshot = set;
  std::sort(snapshot.begin(), snapshot.end(),
            [](const PeerConnection* a, const PeerConnection* b) { return a->seq < b->seq; });
  return snapshot;
}

// --- Message handling -------------------------------------------------------------

void Client::on_peer_message(PeerConnection& peer, const WireMessage& msg) {
  // A suspended app answers nothing: the remote side experiences pure silence
  // and its snub / idle-timeout / reconnect machinery takes over. But the OS
  // keeps the socket alive, so small state-bearing control frames sit in the
  // receive buffer and are processed on wake — dropping them would
  // permanently desynchronize choke/interest state with a remote whose own
  // copy never changes again (transitions are only ever sent once). Bulk
  // frames (pieces, requests, gossip) fall on the floor as a full receive
  // window would force anyway. last_received_at stays put either way, so
  // resume sees honest idle times.
  if (lifecycle_ == Lifecycle::kSuspending || lifecycle_ == Lifecycle::kSuspended) {
    constexpr std::size_t kFrozenInboxCap = 64;
    switch (msg.type) {
      case MsgType::kChoke:
      case MsgType::kUnchoke:
      case MsgType::kInterested:
      case MsgType::kNotInterested:
      case MsgType::kHave:
      case MsgType::kBitfield:
        if (peer.frozen_inbox.size() < kFrozenInboxCap) peer.frozen_inbox.push_back(msg);
        break;
      default:
        break;
    }
    return;
  }
  peer.last_received_at = sim_.now();
  if (msg.type == MsgType::kHandshake) {
    handle_handshake(peer, msg);
    return;
  }
  // Struct-malformed frames (bad indexes, impossible lengths, oversized PEX)
  // never reach a handler: the handlers index piece state by the frame's own
  // claims, so a hostile frame is dropped outright. unsafe_no_enforcement
  // only disables the strike, not the drop.
  if (const char* reason = malformed_reason(msg, meta_)) {
    ++stats_.malformed_msgs;
    WP2P_LOG(util::LogLevel::kDebug, sim::to_seconds(sim_.now()), kLog,
             "%s dropped malformed frame from %llx: %s", node_.name().c_str(),
             static_cast<unsigned long long>(peer.remote_id), reason);
    record_offense(peer, Offense::kMalformed);
    return;
  }
  if (!peer.app_established()) return;  // protocol violation: ignore pre-handshake
  switch (msg.type) {
    case MsgType::kBitfield: handle_bitfield(peer, msg); break;
    case MsgType::kHave: handle_have(peer, msg); break;
    case MsgType::kChoke:
      peer.peer_choking = true;
      return_outstanding(peer);
      break;
    case MsgType::kUnchoke:
      peer.peer_choking = false;
      note_unchoke_churn(peer);
      fill_requests(peer);
      break;
    case MsgType::kInterested: set_peer_interested(peer, true); break;
    case MsgType::kNotInterested: set_peer_interested(peer, false); break;
    case MsgType::kRequest: handle_request(peer, msg); break;
    case MsgType::kPiece: handle_piece(peer, msg); break;
    case MsgType::kCancel: handle_cancel(peer, msg); break;
    case MsgType::kPex: handle_pex(peer, msg); break;
    case MsgType::kHandshake:
    case MsgType::kKeepAlive: break;
  }
}

void Client::handle_handshake(PeerConnection& peer, const WireMessage& msg) {
  if (msg.info_hash != meta_.info_hash) {
    peer.tcp().abort();  // wrong swarm; triggers drop via on_closed
    return;
  }
  if (is_banned(msg.peer_id)) {
    peer.tcp().abort();  // a banned peer gets no second handshake
    return;
  }
  // Duplicate-connection handling: same peer-id from the same ADDRESS means
  // both sides dialled each other (ports differ: one side is ephemeral) —
  // keep the established connection and drop the newcomer. Same peer-id from
  // a NEW address means the peer moved (hand-off + role reversal): the stale
  // connection is blackholed, so it yields to the newcomer.
  std::vector<PeerConnection*> stale;
  bool moved = false;
  for (auto& other : peers_) {
    if (other.get() == &peer || other->remote_id != msg.peer_id ||
        !other->app_established()) {
      continue;
    }
    if (other->remote_endpoint().addr != peer.remote_endpoint().addr) {
      moved = true;  // identity retained across an address change: hand-off
    }
    if (other->remote_endpoint().addr == peer.remote_endpoint().addr) {
      // Same peer-id, same address. Two ways to get here: a simultaneous
      // open (both sides dialled, e.g. a PEX round introduced them to each
      // other both ways), or the peer died silently and reconnected (our
      // old conn is a zombie stuck in retransmission — it yields to the
      // newcomer). In the simultaneous case "newcomer loses" deadlocks:
      // each side keeps its inbound and aborts its outbound, and my
      // outbound IS your inbound — both connections die. Break the tie on
      // something both ends compute identically: the connection dialled by
      // the lower peer-id survives.
      if (other->tcp().rto_backoff() == 0) {
        const bool keep_newcomer =
            peer.initiator() ? peer_id_ < msg.peer_id : msg.peer_id < peer_id_;
        if (!keep_newcomer) {
          peer.tcp().abort();
          return;
        }
      }
    }
    stale.push_back(other.get());
  }
  for (PeerConnection* old : stale) old->tcp().abort();
  // The re-handshake from a new address IS the hand-off signature: the old
  // connection will stall out its in-flight requests through no fault of the
  // peer's, so its stall/liar evidence is held for the grace window.
  if (moved) grant_mobility_grace(msg.peer_id, "moved");
  peer.remote_id = msg.peer_id;
  peer.handshake_received = true;
  if (!peer.handshake_sent) {
    // We are the responder: reply with our handshake + bitfield.
    peer.send(WireMessage::handshake(meta_.info_hash, peer_id_, config_.listen_port));
    peer.send(WireMessage::bitfield_msg(store_.bitfield()));
    peer.handshake_sent = true;
  }
  if (msg.listen_port != 0) {
    // The handshake conveys the sender's listen port (reserved bytes): even a
    // responder learns the dialer's listen endpoint, so a moved host's new
    // address enters PEX and the bootstrap cache as soon as it dials anyone.
    known_listen_endpoints_[peer.remote_id] =
        net::Endpoint{peer.remote_endpoint().addr, msg.listen_port};
  }
  if (peer.initiator()) {
    // For dialed peers the remote endpoint is their listen endpoint.
    known_listen_endpoints_[peer.remote_id] = peer.remote_endpoint();
  }
  record_good_peer(peer);
  // The peer is demonstrably back: forget any reconnect backoff against it.
  clear_reconnect(peer.remote_endpoint());
}

void Client::handle_bitfield(PeerConnection& peer, const WireMessage& msg) {
  if (msg.bitfield.size() != meta_.piece_count()) {
    peer.tcp().abort();
    return;
  }
  if (peer.bitfield_counted) {
    for (int i = 0; i < peer.peer_bitfield.size(); ++i) {
      if (peer.peer_bitfield.test(i)) --availability_[static_cast<std::size_t>(i)];
    }
  }
  peer.peer_bitfield = msg.bitfield;
  peer.bitfield_counted = true;
  for (int i = 0; i < peer.peer_bitfield.size(); ++i) {
    if (peer.peer_bitfield.test(i)) ++availability_[static_cast<std::size_t>(i)];
  }
  if (store_.complete() && peer.peer_bitfield.all()) {
    // Seed-to-seed connection: nothing to trade.
    peer.tcp().abort();
    return;
  }
  evaluate_interest(peer);
}

void Client::handle_have(PeerConnection& peer, const WireMessage& msg) {
  if (msg.piece < 0 || msg.piece >= meta_.piece_count()) return;
  if (!peer.peer_bitfield.test(msg.piece)) {
    peer.peer_bitfield.set(msg.piece);
    if (peer.bitfield_counted) {
      ++availability_[static_cast<std::size_t>(msg.piece)];
    } else {
      peer.bitfield_counted = true;
      // First availability info from this peer arrived as a HAVE.
      for (int i = 0; i < peer.peer_bitfield.size(); ++i) {
        if (peer.peer_bitfield.test(i)) ++availability_[static_cast<std::size_t>(i)];
      }
    }
  }
  if (!peer.am_interested) evaluate_interest(peer);
}

void Client::handle_request(PeerConnection& peer, const WireMessage& msg) {
  if (peer.am_choking) {
    // Stale request across a choke: per spec, drop. A few in-flight requests
    // legitimately race each choke flip (the remote's pipeline drains within
    // an RTT), so only requests beyond that allowance count as flood
    // evidence — a flooder keeps blasting long after the flip.
    const int allowance = std::max(16, 2 * config_.pipeline_depth);
    if (++peer.choked_requests_since_flip > allowance) {
      ++stats_.flood_dropped;
      record_offense(peer, Offense::kFlood);
    }
    return;
  }
  if (msg.piece < 0 || msg.piece >= meta_.piece_count()) return;
  const int block = static_cast<int>(msg.offset / kBlockSize);
  if (!store_.has_block(msg.piece, block)) return;  // we don't hold it
  // Backlog cap: no honest peer pipelines anywhere near this many requests,
  // so the overflow is dropped (flood evidence) instead of queued — an
  // unbounded upload_queue is exactly the resource a flooder is after.
  if (config_.max_request_backlog > 0 &&
      static_cast<int>(peer.upload_queue.size()) >= config_.max_request_backlog) {
    ++stats_.flood_dropped;
    record_offense(peer, Offense::kFlood);
    if (!config_.unsafe_no_enforcement) return;  // cap enforced: drop the overflow
  }
  peer.upload_queue.push_back({msg.piece, msg.offset, msg.length});
  update_pending_upload(peer);
  pump_uploads();
}

void Client::handle_cancel(PeerConnection& peer, const WireMessage& msg) {
  auto& q = peer.upload_queue;
  q.erase(std::remove_if(q.begin(), q.end(),
                         [&](const PeerConnection::PendingUpload& u) {
                           return u.piece == msg.piece && u.offset == msg.offset;
                         }),
          q.end());
  update_pending_upload(peer);
}

void Client::handle_piece(PeerConnection& peer, const WireMessage& msg) {
  const int block = static_cast<int>(msg.offset / kBlockSize);
  // Clear the matching outstanding entry (may be absent after a timeout).
  auto& out = peer.outstanding;
  out.erase(std::remove_if(out.begin(), out.end(),
                           [&](const PeerConnection::Outstanding& o) {
                             return o.piece == msg.piece && o.block == block;
                           }),
            out.end());

  peer.downloaded_payload += msg.length;
  peer.down_meter.add(sim_.now(), msg.length);
  down_rate_.add(sim_.now(), msg.length);
  stats_.payload_downloaded += msg.length;
  credit_.add(peer.remote_id, sim_.now(), msg.length);
  if (on_payload_received) on_payload_received(peer.remote_id, msg.length);
  peer.snubbed = false;  // it delivered: reciprocation resumes
  peer.piece_timeouts.erase(msg.piece);  // delivery clears the piece's liar streak

  if (msg.piece < 0 || msg.piece >= meta_.piece_count()) return;
  const bool corrupt = peer.tcp().last_message_corrupted();
  const BlockResult result = store_.mark_block(msg.piece, block, corrupt);
  if (result == BlockResult::kDuplicate) {
    fill_requests(peer);
    return;  // duplicate (e.g. timed out, then both peers delivered)
  }
  if (auto it = active_.find(msg.piece); it != active_.end()) {
    it->second[static_cast<std::size_t>(block)] = BlockState::kReceived;
  }
  record_contributor(peer, msg.piece, block);
  record_good_peer(peer);  // delivering payload refreshes the bootstrap cache
  cancel_duplicates(peer, msg.piece, block);  // end-game duplicate requests
  if (result == BlockResult::kPieceComplete) {
    on_piece_completed(msg.piece);
  } else if (result == BlockResult::kPieceCorrupt) {
    handle_corrupt_piece(msg.piece);
  }
  fill_requests(peer);
}

void Client::cancel_duplicates(PeerConnection& source, int piece, int block) {
  for (auto& other : peers_) {
    if (other.get() == &source) continue;
    auto& out = other->outstanding;
    const auto before = out.size();
    out.erase(std::remove_if(out.begin(), out.end(),
                             [&](const PeerConnection::Outstanding& o) {
                               return o.piece == piece && o.block == block;
                             }),
              out.end());
    if (out.size() != before && other->app_established()) {
      other->send(WireMessage::cancel(piece,
                                      static_cast<std::int64_t>(block) * kBlockSize,
                                      store_.block_size(piece, block)));
    }
  }
}

// --- Download side ------------------------------------------------------------------

void Client::evaluate_interest(PeerConnection& peer) {
  if (!peer.app_established()) return;
  const bool want =
      !store_.complete() && Bitfield::has_missing_piece(peer.peer_bitfield, store_.bitfield());
  if (want != peer.am_interested) {
    peer.am_interested = want;
    peer.send(WireMessage::simple(want ? MsgType::kInterested : MsgType::kNotInterested));
  }
  if (want && !peer.peer_choking) fill_requests(peer);
}

Client::BlockState& Client::block_state(int piece, int block) {
  auto [it, inserted] = active_.try_emplace(
      piece, static_cast<std::size_t>(store_.blocks_in_piece(piece)), BlockState::kUnrequested);
  if (inserted) active_pieces_.set(piece);
  return it->second[static_cast<std::size_t>(block)];
}

std::optional<Client::BlockRef> Client::next_block_for(PeerConnection& peer) {
  if (store_.complete() || peer.peer_choking || !peer.am_interested) return std::nullopt;
  // 1) Strict priority: finish pieces already in progress.
  for (auto& [piece, blocks] : active_) {
    if (!peer.peer_bitfield.test(piece)) continue;
    for (int b = 0; b < static_cast<int>(blocks.size()); ++b) {
      if (blocks[static_cast<std::size_t>(b)] == BlockState::kUnrequested) {
        return BlockRef{piece, b};
      }
    }
  }
  // 2) Start a new piece chosen by the selection policy. Candidates are
  // peer & ~have & ~active, collected a word at a time: per-candidate cost no
  // longer pays a map lookup per piece of the torrent.
  std::vector<int> candidates;
  const Bitfield& have = store_.bitfield();
  for (int w = 0; w < peer.peer_bitfield.word_count(); ++w) {
    std::uint64_t cand =
        peer.peer_bitfield.word(w) & ~have.word(w) & ~active_pieces_.word(w);
    while (cand != 0) {
      candidates.push_back(w * 64 + std::countr_zero(cand));
      cand &= cand - 1;
    }
  }
  if (candidates.empty()) return endgame_block_for(peer);
  SelectionContext ctx{candidates, availability_, store_.completed_fraction(),
                       sim_.now() - last_disconnect_, rng_};
  const int piece = selector_->pick(ctx);
  if (piece < 0) return std::nullopt;
  block_state(piece, 0);  // activate
  return BlockRef{piece, 0};
}

// End-game mode: every needed block is requested somewhere, only stragglers
// remain — duplicate them to this peer too (duplicates are cancelled as the
// first copy of each block lands).
std::optional<Client::BlockRef> Client::endgame_block_for(PeerConnection& peer) {
  if (config_.endgame_block_threshold <= 0) return std::nullopt;
  int requested = 0;
  for (const auto& [piece, blocks] : active_) {
    for (BlockState s : blocks) {
      if (s == BlockState::kUnrequested) return std::nullopt;  // normal work remains
      if (s == BlockState::kRequested) ++requested;
    }
  }
  if (requested == 0 || requested > config_.endgame_block_threshold) return std::nullopt;
  for (const auto& [piece, blocks] : active_) {
    if (!peer.peer_bitfield.test(piece)) continue;
    for (int b = 0; b < static_cast<int>(blocks.size()); ++b) {
      if (blocks[static_cast<std::size_t>(b)] != BlockState::kRequested) continue;
      const bool already_mine =
          std::any_of(peer.outstanding.begin(), peer.outstanding.end(),
                      [&](const PeerConnection::Outstanding& o) {
                        return o.piece == piece && o.block == b;
                      });
      if (!already_mine) return BlockRef{piece, b};
    }
  }
  return std::nullopt;
}

void Client::fill_requests(PeerConnection& peer) {
  if (!peer.app_established()) return;
  if (is_banned(peer.remote_id)) return;  // banned peers get no requests, ever
  while (static_cast<int>(peer.outstanding.size()) < config_.pipeline_depth) {
    auto next = next_block_for(peer);
    if (!next) break;
    block_state(next->piece, next->block) = BlockState::kRequested;
    peer.outstanding.push_back({next->piece, next->block, sim_.now()});
    WP2P_TRACE(sim_, bt_event(trace::Kind::kBtRequest, node_)
                         .with("peer_id", static_cast<double>(peer.remote_id & 0xffffffffu))
                         .with("piece", static_cast<double>(next->piece))
                         .with("block", static_cast<double>(next->block)));
    peer.send(WireMessage::request(next->piece,
                                   static_cast<std::int64_t>(next->block) * kBlockSize,
                                   store_.block_size(next->piece, next->block)));
  }
}

void Client::return_outstanding(PeerConnection& peer) {
  for (const auto& o : peer.outstanding) {
    auto it = active_.find(o.piece);
    if (it == active_.end()) continue;  // piece completed meanwhile
    auto& state = it->second[static_cast<std::size_t>(o.block)];
    if (state == BlockState::kRequested) state = BlockState::kUnrequested;
  }
  peer.outstanding.clear();
}

void Client::periodic_maintenance() {
  const sim::SimTime now = sim_.now();
  const sim::SimTime cutoff = now - config_.request_timeout;
  bool requeued = false;
  std::vector<PeerConnection*> idle_victims;
  for (auto& peer : peers_) {
    // Request timeouts: blocks promised long ago go back to the pool. A peer
    // that let a request expire is snubbed until it delivers again.
    auto& out = peer->outstanding;
    std::vector<int> timed_out;  // pieces with >= 1 expired request this pass
    for (auto it = out.begin(); it != out.end();) {
      if (it->requested_at >= cutoff) {
        ++it;
        continue;
      }
      if (auto ait = active_.find(it->piece); ait != active_.end()) {
        auto& state = ait->second[static_cast<std::size_t>(it->block)];
        if (state == BlockState::kRequested) state = BlockState::kUnrequested;
      }
      ++stats_.blocks_requeued;
      if (config_.snub_timeout > 0) peer->snubbed = true;
      if (std::find(timed_out.begin(), timed_out.end(), it->piece) == timed_out.end()) {
        timed_out.push_back(it->piece);
      }
      requeued = true;
      it = out.erase(it);
    }
    // Liar evidence, scored per PIECE per pass (a deep pipeline expiring in
    // one pass is one data point per piece, not thirty): a timeout against a
    // peer that has never delivered a byte (it advertised pieces it will not
    // serve), or a piece that has now timed out liar_repeat_passes times with
    // no block of it delivered in between (a withholder serving everything
    // else — handle_piece clears the streak on delivery, so an honest peer
    // that is merely overloaded never accumulates one). Hand-off stalls look
    // identical from here — the mobility grace keeps them out of the count.
    if (config_.liar_strike_threshold > 0 && !timed_out.empty() &&
        !in_mobility_grace(peer->remote_id)) {
      const bool zero_payload = peer->downloaded_payload == 0;
      for (int piece : timed_out) {
        const int repeats = ++peer->piece_timeouts[piece];
        if (zero_payload || repeats >= config_.liar_repeat_passes) {
          ++stats_.liar_detections;
          record_offense(*peer, Offense::kLiar);
        }
      }
    }
    if (!peer->app_established()) {
      // Handshake never completed (dead dial): let the idle timeout reap it.
      if (now - peer->last_received_at > config_.idle_timeout) {
        idle_victims.push_back(peer.get());
      }
      continue;
    }
    // Keep-alives preserve healthy idle connections...
    if (config_.keepalive_interval > 0 &&
        now - peer->last_sent_at > config_.keepalive_interval) {
      peer->send(WireMessage::simple(MsgType::kKeepAlive));
    }
    // ...and the idle timeout reaps connections whose remote end is gone
    // (e.g. blackholed by a hand-off) before they leak slots forever.
    if (config_.idle_timeout > 0 && now - peer->last_received_at > config_.idle_timeout) {
      idle_victims.push_back(peer.get());
    }
    // Stall auditor: a peer continuously snubbed (it unchoked us, took our
    // requests, delivered nothing) for stall_audit_ticks consecutive ticks is
    // a slowloris suspect. Delivery clears snubbed, so an LIHD-throttled
    // uploader resets the streak; a graced (moved) peer is never scored.
    if (config_.stall_audit_ticks > 0) {
      if (peer->snubbed && !in_mobility_grace(peer->remote_id)) {
        if (++peer->stall_ticks >= config_.stall_audit_ticks) {
          peer->stall_ticks = 0;
          ++stats_.stall_audits;
          record_offense(*peer, Offense::kStall);
        }
      } else {
        peer->stall_ticks = 0;
      }
    }
  }
  for (PeerConnection* victim : idle_victims) victim->tcp().abort();
  if (requeued) {
    for (auto& peer : peers_) fill_requests(*peer);
  }
}

void Client::on_piece_completed(int piece) {
  active_.erase(piece);
  active_pieces_.reset(piece);
  contributors_.erase(piece);
  ++stats_.pieces_completed;
  WP2P_TRACE(sim_, bt_event(trace::Kind::kBtPieceComplete, node_)
                       .with("piece", static_cast<double>(piece))
                       .with("have", static_cast<double>(store_.bitfield().count()))
                       .with("total", static_cast<double>(meta_.piece_count())));
  WP2P_LOG(util::LogLevel::kDebug, sim::to_seconds(sim_.now()), kLog,
           "%s completed piece %d (%d/%d)", node_.name().c_str(), piece,
           store_.bitfield().count(), meta_.piece_count());
  for (auto& peer : peers_) {
    if (peer->app_established()) peer->send(WireMessage::have(piece));
  }
  if (on_piece_complete) on_piece_complete(piece);
  if (store_.complete()) {
    on_download_finished();
  } else {
    for (auto& peer : peers_) evaluate_interest(*peer);
  }
}

void Client::on_download_finished() {
  completed_notified_ = true;
  active_.clear();
  active_pieces_.clear();
  for (auto& peer : peers_) {
    return_outstanding(*peer);
    evaluate_interest(*peer);  // sends NotInterested
  }
  initiate_task(AnnounceEvent::kCompleted);
  WP2P_LOG(util::LogLevel::kInfo, sim::to_seconds(sim_.now()), kLog, "%s download complete",
           node_.name().c_str());
  if (on_complete) on_complete();
  if (!config_.seed_after_complete) stop();
}

// --- Integrity / banning ------------------------------------------------------------

void Client::record_contributor(PeerConnection& peer, int piece, int block) {
  auto [it, inserted] = contributors_.try_emplace(
      piece, static_cast<std::size_t>(store_.blocks_in_piece(piece)), PeerId{0});
  it->second[static_cast<std::size_t>(block)] = peer.remote_id;
}

void Client::handle_corrupt_piece(int piece) {
  ++stats_.corrupt_pieces;
  WP2P_TRACE(sim_, bt_event(trace::Kind::kBtPieceCorrupt, node_)
                       .with("piece", static_cast<double>(piece))
                       .with("wasted", static_cast<double>(store_.wasted_bytes())));
  WP2P_LOG(util::LogLevel::kInfo, sim::to_seconds(sim_.now()), kLog,
           "%s piece %d failed verification, resetting", node_.name().c_str(), piece);
  // Strike exactly the peers that supplied the damaged blocks (libtorrent's
  // "smart ban"): clean contributors to the same piece stay unblamed.
  if (auto it = contributors_.find(piece); it != contributors_.end()) {
    std::vector<PeerId> struck;  // one strike per peer per piece
    for (int block : store_.last_corrupt_blocks()) {
      const PeerId id = it->second[static_cast<std::size_t>(block)];
      if (id == 0) continue;
      if (std::find(struck.begin(), struck.end(), id) != struck.end()) continue;
      struck.push_back(id);
      strike_peer(id, piece);
    }
    contributors_.erase(it);
  }
  // The store already discarded the blocks; dropping the request state makes
  // the piece a fresh candidate for the selector again.
  active_.erase(piece);
  active_pieces_.reset(piece);
  WP2P_TRACE(sim_, bt_event(trace::Kind::kBtPieceReset, node_)
                       .with("piece", static_cast<double>(piece)));
}

void Client::strike_peer(PeerId id, int piece, const char* cause) {
  // An already-banned peer is beyond striking: pieces it contributed to may
  // keep completing after the ban, and those strikes would overshoot the
  // threshold under perfectly correct behaviour.
  if (is_banned(id)) return;
  const int strikes = ++strikes_[id];
  ++stats_.peer_strikes;
  WP2P_TRACE(sim_, bt_event(trace::Kind::kBtPeerStrike, node_)
                       .why(cause != nullptr ? cause : "")
                       .with("peer_id", static_cast<double>(id & 0xffffffffu))
                       .with("strikes", static_cast<double>(strikes))
                       .with("threshold", static_cast<double>(config_.ban_threshold))
                       .with("piece", static_cast<double>(piece)));
  if (config_.unsafe_no_peer_ban || strikes < config_.ban_threshold) return;
  banned_.insert(id);
  ++stats_.peers_banned;
  WP2P_TRACE(sim_, bt_event(trace::Kind::kBtPeerBan, node_)
                       .with("peer_id", static_cast<double>(id & 0xffffffffu))
                       .with("strikes", static_cast<double>(strikes)));
  WP2P_LOG(util::LogLevel::kInfo, sim::to_seconds(sim_.now()), kLog,
           "%s banned peer %llx after %d corruption strikes", node_.name().c_str(),
           static_cast<unsigned long long>(id), strikes);
  if (auto it = known_listen_endpoints_.find(id); it != known_listen_endpoints_.end()) {
    clear_reconnect(it->second);
  }
  bootstrap_.remove(id);  // a banned peer is never a bootstrap candidate
  // Cut every connection to the peer loose (collect first: aborting mutates
  // peers_ through on_closed).
  std::vector<PeerConnection*> victims;
  for (auto& peer : peers_) {
    if (peer->remote_id == id) victims.push_back(peer.get());
  }
  for (PeerConnection* victim : victims) victim->tcp().abort();
}

// --- Reconnect policy ---------------------------------------------------------------

void Client::consider_reconnect(net::Endpoint remote, tcp::CloseReason reason) {
  if (!config_.reconnect || !running_) return;
  for (const auto& [id, endpoint] : known_listen_endpoints_) {
    if (endpoint == remote && is_banned(id)) return;
  }
  ReconnectState& state = reconnects_[remote];
  if (state.event != sim::kInvalidEventId) return;  // a dial is already pending
  if (state.attempts >= config_.reconnect_max_attempts) return;
  state.backoff = state.attempts == 0
                      ? std::min(config_.reconnect_initial, config_.reconnect_cap)
                      : std::min(state.backoff * 2, config_.reconnect_cap);
  ++state.attempts;
  ++stats_.reconnect_attempts;
  WP2P_TRACE(sim_, bt_event(trace::Kind::kBtReconnect, node_)
                       .on(net::to_string(remote))
                       .why(tcp::to_string(reason))
                       .with("attempt", static_cast<double>(state.attempts))
                       .with("delay_s", sim::to_seconds(state.backoff))
                       .with("cap_s", sim::to_seconds(config_.reconnect_cap)));
  state.event = sim_.after(state.backoff, [this, alive = alive_, remote] {
    if (!*alive) return;
    if (auto it = reconnects_.find(remote); it != reconnects_.end()) {
      it->second.event = sim::kInvalidEventId;
    }
    if (!running_ || !node_.connected()) return;
    if (connected_to(remote)) return;
    if (static_cast<int>(peers_.size()) >= config_.max_peers) return;
    connect_to(remote);
  });
}

void Client::clear_reconnect(net::Endpoint remote) {
  auto it = reconnects_.find(remote);
  if (it == reconnects_.end()) return;
  if (it->second.event != sim::kInvalidEventId) sim_.cancel(it->second.event);
  reconnects_.erase(it);
}

void Client::cancel_reconnects() {
  for (auto& [endpoint, state] : reconnects_) {
    if (state.event != sim::kInvalidEventId) sim_.cancel(state.event);
  }
  reconnects_.clear();
}

// --- Choking ----------------------------------------------------------------------

double Client::unchoke_score(PeerConnection& peer) {
  const sim::SimTime now = sim_.now();
  if (!store_.complete()) {
    // A snubbed peer earns no reciprocation until it delivers again.
    if (peer.snubbed) return -1.0;
    // Leech policy: reciprocate recent upload rate, remember past identity.
    return peer.down_meter.rate(now).bytes_per_sec() +
           credit_.credit(peer.remote_id, now) / config_.credit_to_rate_seconds;
  }
  // Seed policy: rotate — serve the peer that has waited longest. (Rate-based
  // seed unchoking with deterministic tie-breaks degenerates into sticky
  // winners; real seeds cycle through their peers.)
  return peer.last_unchoked_at < 0
             ? 1e18
             : static_cast<double>(now - peer.last_unchoked_at);
}

void Client::run_choke_round() {
  // Work from the incremental interested set instead of rescanning peers_:
  // a choke round costs O(interested) rather than O(all peers). The seq sort
  // reproduces peers_ insertion order exactly, so the stable_sort below sees
  // the same input order (and emits the same messages) as a full scan would.
  std::vector<PeerConnection*> interested;
  for (PeerConnection* peer : snapshot_by_seq(interested_peers_)) {
    if (peer->app_established()) interested.push_back(peer);
  }
  std::stable_sort(interested.begin(), interested.end(), [this](auto* a, auto* b) {
    const double sa = unchoke_score(*a), sb = unchoke_score(*b);
    if (sa != sb) return sa > sb;
    return a->remote_id < b->remote_id;  // deterministic tie-break
  });
  const std::size_t slots = static_cast<std::size_t>(config_.unchoke_slots);
  for (std::size_t i = 0; i < interested.size(); ++i) {
    PeerConnection* peer = interested[i];
    if (peer == optimistic_peer_) continue;  // the optimistic slot is separate
    set_choke(*peer, i >= slots);
  }
  // Peers that stopped being interested get choked to free slots. Only
  // currently-unchoked peers can produce a state change, so the incremental
  // unchoked set covers every peer the old full scan would have touched.
  for (PeerConnection* peer : snapshot_by_seq(unchoked_peers_)) {
    if (peer->app_established() && !peer->peer_interested && peer != optimistic_peer_) {
      set_choke(*peer, true);
    }
  }
  pump_uploads();
}

void Client::rotate_optimistic() {
  std::vector<PeerConnection*> candidates;
  for (PeerConnection* peer : snapshot_by_seq(interested_peers_)) {
    if (peer->app_established() && peer->am_choking && peer != optimistic_peer_) {
      candidates.push_back(peer);
    }
  }
  PeerConnection* previous = optimistic_peer_;
  if (!candidates.empty()) {
    optimistic_peer_ =
        candidates[static_cast<std::size_t>(rng_.below(candidates.size()))];
    set_choke(*optimistic_peer_, false);
  } else {
    optimistic_peer_ = nullptr;
  }
  // The previous optimistic peer must now earn a regular slot.
  if (previous != nullptr && previous != optimistic_peer_) {
    run_choke_round();
  }
}

void Client::set_choke(PeerConnection& peer, bool choke) {
  if (peer.am_choking == choke) return;
  peer.am_choking = choke;
  if (!choke) {
    peer.last_unchoked_at = sim_.now();
    unchoked_peers_.push_back(&peer);
  } else {
    std::erase(unchoked_peers_, &peer);
    peer.choked_requests_since_flip = 0;  // fresh in-flight allowance per flip
  }
  WP2P_TRACE(sim_, bt_event(choke ? trace::Kind::kBtChoke : trace::Kind::kBtUnchoke, node_)
                       .on(net::to_string(peer.tcp().remote()))
                       .why(&peer == optimistic_peer_ ? "optimistic" : "tit-for-tat")
                       .with("peer_id", static_cast<double>(peer.remote_id & 0xffffffffu)));
  peer.send(WireMessage::simple(choke ? MsgType::kChoke : MsgType::kUnchoke));
  if (on_unchoke_change) on_unchoke_change(peer.remote_id, !choke);
  if (choke) {
    peer.upload_queue.clear();
    update_pending_upload(peer);
  }
}

// --- Upload side --------------------------------------------------------------------

void Client::pump_uploads() {
  const sim::SimTime now = sim_.now();
  if (peers_.empty()) return;
  // With nothing queued anywhere, a full idle cycle would advance the cursor
  // by exactly peers_.size() — a no-op mod size — so skipping it entirely is
  // behavior-identical and keeps idle pump ticks O(1) in swarm size.
  if (pending_upload_peers_ == 0) return;
  // Persistent round-robin cursor: with a tight token budget, starting from
  // index 0 every pump would starve later peers of upload service.
  std::size_t idle_streak = 0;
  while (idle_streak < peers_.size()) {
    PeerConnection& peer = *peers_[upload_cursor_ % peers_.size()];
    upload_cursor_ = (upload_cursor_ + 1) % peers_.size();
    bool served = false;
    if (!peer.upload_queue.empty() && !peer.am_choking &&
        peer.tcp().send_queue_bytes() <= config_.max_tcp_backlog) {
      const PeerConnection::PendingUpload job = peer.upload_queue.front();
      if (!upload_bucket_.try_consume(now, job.length)) return;  // pump tick retries
      peer.upload_queue.pop_front();
      update_pending_upload(peer);
      peer.send(WireMessage::piece_msg(job.piece, job.offset, job.length));
      peer.uploaded_payload += job.length;
      peer.up_meter.add(now, job.length);
      up_rate_.add(now, job.length);
      stats_.payload_uploaded += job.length;
      if (on_payload_sent) on_payload_sent(peer.remote_id, job.length);
      served = true;
    }
    idle_streak = served ? 0 : idle_streak + 1;
  }
}

// --- Mobility -----------------------------------------------------------------------

void Client::handle_address_change() {
  last_disconnect_ = sim_.now();
  if (!running_) return;
  WP2P_LOG(util::LogLevel::kInfo, sim::to_seconds(sim_.now()), kLog,
           "%s hand-off: address now %s", node_.name().c_str(),
           net::to_string(node_.address()).c_str());
  // Snapshot listen endpoints of live peers before the task dies (wP2P RR
  // "stores all the corresponding peers", Section 4.3).
  std::vector<net::Endpoint> stored;
  if (config_.role_reversal) {
    for (auto& peer : peers_) {
      auto it = known_listen_endpoints_.find(peer->remote_id);
      if (it != known_listen_endpoints_.end()) stored.push_back(it->second);
    }
  }
  // The hand-off killed every TCP connection of the old address: terminate
  // the task (the paper's "ongoing tasks are terminated and re-initiated").
  stack_.abort_all();
  ++stats_.task_reinitiations;
  WP2P_TRACE(sim_, bt_event(trace::Kind::kBtHandoff, node_)
                       .why(config_.role_reversal ? "role-reversal" : "reinit-delayed")
                       .with("retained_id", config_.retain_peer_id ? 1.0 : 0.0)
                       .with("stored_peers", static_cast<double>(stored.size())));

  if (config_.role_reversal) {
    if (!config_.retain_peer_id) peer_id_ = rng_.next_u64() | 1;
    initiate_task(AnnounceEvent::kStarted);  // tracker learns the new address now
    for (net::Endpoint ep : stored) {
      if (static_cast<int>(peers_.size()) < config_.max_peers && !connected_to(ep)) {
        connect_to(ep);
      }
    }
    if (on_reinitiated) on_reinitiated();
    return;
  }
  // Default client: notices after a delay, then re-initiates as a new peer.
  const sim::SimTime delay =
      store_.complete() ? config_.seed_reinit_delay : config_.leech_reinit_delay;
  if (reinit_event_ != sim::kInvalidEventId) sim_.cancel(reinit_event_);
  reinit_event_ = sim_.after(delay, [this, alive = alive_] {
    if (!*alive) return;
    reinit_event_ = sim::kInvalidEventId;
    reinitiate();
  });
}

void Client::reinitiate() {
  if (!running_) return;
  if (!config_.retain_peer_id) peer_id_ = rng_.next_u64() | 1;
  WP2P_TRACE(sim_, bt_event(trace::Kind::kBtHandoff, node_)
                       .why("reinit")
                       .with("retained_id", config_.retain_peer_id ? 1.0 : 0.0));
  initiate_task(AnnounceEvent::kStarted);
  if (on_reinitiated) on_reinitiated();
}

void Client::recover_from_disconnection() {
  if (!running_ || !node_.connected()) return;
  ++stats_.task_reinitiations;
  stack_.abort_all();
  if (!config_.retain_peer_id) peer_id_ = rng_.next_u64() | 1;
  WP2P_TRACE(sim_, bt_event(trace::Kind::kBtRecover, node_)
                       .why(config_.role_reversal ? "role-reversal" : "reannounce")
                       .with("retained_id", config_.retain_peer_id ? 1.0 : 0.0)
                       .with("known_endpoints",
                             static_cast<double>(known_listen_endpoints_.size())));
  initiate_task(AnnounceEvent::kStarted);
  if (config_.role_reversal) {
    for (const auto& [id, endpoint] : known_listen_endpoints_) {
      if (static_cast<int>(peers_.size()) >= config_.max_peers) break;
      // A ban outlives the hand-off: the identity stays banned even though
      // its remembered endpoint is still in the table (the mapping must
      // survive so consider_reconnect can keep refusing it too).
      if (is_banned(id)) continue;
      if (!connected_to(endpoint)) connect_to(endpoint);
    }
  }
  if (on_reinitiated) on_reinitiated();
}

// --- Protocol enforcement -------------------------------------------------------------

void Client::record_offense(PeerConnection& peer, Offense offense) {
  int threshold = 0;
  int* count = nullptr;
  int* charged = nullptr;
  trace::Kind kind = trace::Kind::kBtFloodDetect;
  const char* label = "";
  switch (offense) {
    case Offense::kFlood:
      threshold = config_.flood_strike_threshold;
      count = &peer.flood_count;
      charged = &peer.flood_strikes;
      kind = trace::Kind::kBtFloodDetect;
      label = "enforce-flood";
      break;
    case Offense::kMalformed:
      threshold = config_.malformed_budget;
      count = &peer.malformed_count;
      charged = &peer.malformed_strikes;
      kind = trace::Kind::kBtMalformed;
      label = "enforce-malformed";
      break;
    case Offense::kLiar:
      threshold = config_.liar_strike_threshold;
      count = &peer.liar_count;
      charged = &peer.liar_strikes;
      kind = trace::Kind::kBtLiarDetect;
      label = "enforce-liar";
      break;
    case Offense::kStall:
      threshold = 1;  // each audit already spans stall_audit_ticks ticks
      count = &peer.stall_count;
      charged = &peer.stall_strikes;
      kind = trace::Kind::kBtStallAudit;
      label = "enforce-stall";
      break;
    case Offense::kChurn:
      threshold = config_.churn_flip_threshold;
      count = &peer.churn_flips;
      charged = &peer.churn_strikes;
      kind = trace::Kind::kBtFloodDetect;
      label = "enforce-churn";
      break;
    case Offense::kPexSpam:
      threshold = config_.pex_spam_threshold;
      count = &peer.pex_spam_count;
      charged = &peer.pex_spam_strikes;
      kind = trace::Kind::kBtPexSpam;
      label = "enforce-pex";
      break;
  }
  ++*count;
  if (threshold <= 0) return;  // category disabled: evidence only
  if (*count / threshold <= *charged) return;  // next crossing not reached yet
  ++*charged;
  // The limit an enforced run can never exceed: ban_threshold crossings ban
  // the peer (ending the evidence stream), so counts stay within a couple of
  // threshold-steps of that — "a couple" because strikes land one event after
  // the crossing, so same-tick evidence bursts can overshoot by one step.
  // The invariant rules check count against the limit carried in the event.
  const int limit = threshold * (config_.ban_threshold + 2);
  WP2P_TRACE(sim_, bt_event(kind, node_)
                       .why(label)
                       .with("peer_id", static_cast<double>(peer.remote_id & 0xffffffffu))
                       .with("count", static_cast<double>(*count))
                       .with("limit", static_cast<double>(limit)));
  if (config_.unsafe_no_enforcement) return;  // detect + trace, never strike
  if (peer.remote_id == 0) return;  // pre-handshake offender: no identity to strike
  ++stats_.enforce_strikes;
  // Strike from a fresh event, never this stack: a strike can escalate to a
  // ban, which aborts the offender's connections and erases them from peers_
  // — fatal while a message handler still holds this PeerConnection or
  // periodic_maintenance is mid-iteration over peers_.
  sim_.after(0, [this, alive = alive_, id = peer.remote_id, label] {
    if (!*alive || !running_) return;
    strike_peer(id, -1, label);
  });
}

void Client::note_unchoke_churn(PeerConnection& peer) {
  if (config_.churn_flip_threshold <= 0) return;
  const sim::SimTime now = sim_.now();
  if (peer.churn_window_start < 0 || now - peer.churn_window_start > config_.churn_window) {
    peer.churn_window_start = now;
    peer.churn_window_flips = 0;
  }
  // The first churn_flip_threshold unchokes per window are free (honest
  // chokers flip a handful of times a minute); each one beyond is evidence.
  if (++peer.churn_window_flips > config_.churn_flip_threshold) {
    ++stats_.churn_detections;
    record_offense(peer, Offense::kChurn);
  }
}

bool Client::in_mobility_grace(PeerId id) const {
  if (id == 0) return false;
  auto it = grace_until_.find(id);
  return it != grace_until_.end() && sim_.now() < it->second;
}

void Client::grant_mobility_grace(PeerId id, const char* cause) {
  if (id == 0 || config_.mobility_grace <= 0) return;
  const sim::SimTime until = sim_.now() + config_.mobility_grace;
  auto [it, fresh] = grace_until_.try_emplace(id, until);
  if (!fresh) {
    if (it->second >= until) return;  // the current window already covers this
    it->second = until;
  }
  ++stats_.grace_grants;
  WP2P_TRACE(sim_, bt_event(trace::Kind::kBtGrace, node_)
                       .why(cause)
                       .with("peer_id", static_cast<double>(id & 0xffffffffu))
                       .with("until_s", sim::to_seconds(until)));
}

}  // namespace wp2p::bt
