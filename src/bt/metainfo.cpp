#include "bt/metainfo.hpp"

#include "util/assert.hpp"

namespace wp2p::bt {

std::uint64_t fnv1a(const std::string& data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

Metainfo Metainfo::create(std::string name, std::int64_t total_size,
                          std::int64_t piece_length, std::string announce,
                          std::uint64_t content_id) {
  WP2P_ASSERT(total_size > 0);
  WP2P_ASSERT(piece_length > 0);
  Metainfo m;
  m.name = std::move(name);
  m.announce = std::move(announce);
  m.piece_length = piece_length;
  m.total_size = total_size;
  const int pieces = static_cast<int>((total_size + piece_length - 1) / piece_length);
  m.piece_hashes.reserve(static_cast<std::size_t>(pieces));
  for (int i = 0; i < pieces; ++i) {
    m.piece_hashes.push_back(
        fnv1a(m.name + "#" + std::to_string(content_id) + "/" + std::to_string(i)));
  }
  // The real protocol hashes the bencoded info dict; we do the same with FNV.
  Bencode::Dict info;
  info["length"] = m.total_size;
  info["name"] = m.name;
  info["piece length"] = m.piece_length;
  std::string hashes;
  for (std::uint64_t h : m.piece_hashes) hashes += std::to_string(h) + ",";
  info["pieces"] = hashes;
  m.info_hash = fnv1a(Bencode{info}.encode());
  return m;
}

std::uint64_t Metainfo::block_tag(int piece, int block) const {
  std::uint64_t tag =
      fnv1a(name + "!" + std::to_string(piece) + ":" + std::to_string(block));
  // A single corrupt block must always perturb the accumulator; force a bit.
  return tag | 1;
}

Bencode Metainfo::to_bencode() const {
  Bencode::Dict info;
  info["length"] = total_size;
  info["name"] = name;
  info["piece length"] = piece_length;
  std::string hashes;
  for (std::uint64_t h : piece_hashes) hashes += std::to_string(h) + ",";
  info["pieces"] = hashes;

  Bencode::Dict root;
  root["announce"] = announce;
  root["info"] = Bencode{std::move(info)};
  root["info hash"] = static_cast<std::int64_t>(info_hash);
  return Bencode{std::move(root)};
}

Metainfo Metainfo::from_bencode(const Bencode& b) {
  Metainfo m;
  m.announce = b.at("announce").as_string();
  const Bencode& info = b.at("info");
  m.total_size = info.at("length").as_int();
  m.name = info.at("name").as_string();
  m.piece_length = info.at("piece length").as_int();
  m.info_hash = static_cast<InfoHash>(b.at("info hash").as_int());
  const std::string& hashes = info.at("pieces").as_string();
  std::size_t pos = 0;
  while (pos < hashes.size()) {
    std::size_t comma = hashes.find(',', pos);
    if (comma == std::string::npos) break;
    m.piece_hashes.push_back(std::stoull(hashes.substr(pos, comma - pos)));
    pos = comma + 1;
  }
  WP2P_ASSERT(static_cast<std::int64_t>(m.piece_hashes.size()) ==
              (m.total_size + m.piece_length - 1) / m.piece_length);
  return m;
}

}  // namespace wp2p::bt
